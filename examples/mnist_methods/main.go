// mnist_methods compares the paper's EASGD family against the existing
// methods it improves on (the Figure 6/8 story): same data, same simulated
// hardware, same hyperparameters — each method reports the simulated time
// it needs to reach a common test accuracy.
package main

import (
	"fmt"
	"log"
	"sort"

	"scaledl"
)

func main() {
	train, test := scaledl.SyntheticMNIST(7, 2048, 512)
	def := scaledl.TinyCNN(scaledl.Shape{C: 1, H: 28, W: 28}, 10)
	const target = 0.93

	type row struct {
		method string
		time   float64
		acc    float64
	}
	var rows []row

	for _, m := range []string{
		// existing methods
		"async-sgd", "hogwild-sgd", "original-easgd",
		// the paper's methods
		"async-easgd", "hogwild-easgd", "sync-easgd3",
	} {
		iters := 400 // parameter-server interactions (1 batch each)
		if m == "sync-easgd3" {
			iters = 100 // synchronous rounds (4 batches each)
		}
		// η=0.08 is the regime the paper studies: asynchronous SGD sits near
		// its staleness-amplified stability edge while elastic averaging
		// stays smooth (all methods share the same hyperparameters).
		cfg := scaledl.Config{
			Def: def, Train: train, Test: test,
			Workers: 4, Batch: 16, LR: 0.08,
			Iterations: iters, Seed: 7,
			Platform:  scaledl.DefaultGPUPlatform(true),
			EvalEvery: 10,
			TargetAcc: target,
		}
		if m == "original-easgd" {
			// The legacy implementation ships per-layer pageable transfers.
			cfg.Platform = scaledl.DefaultGPUPlatform(false)
		}
		res, err := scaledl.Train(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tt := res.SimTime
		for _, pt := range res.Curve {
			if pt.TestAcc >= target {
				tt = pt.SimTime
				break
			}
		}
		rows = append(rows, row{m, tt, res.FinalAcc})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].time < rows[j].time })
	fmt.Printf("time to reach %.2f test accuracy (4 simulated GPUs, equal hyperparameters):\n\n", target)
	fmt.Printf("%-16s %-14s %-10s\n", "method", "sim-time (s)", "final acc")
	for i, r := range rows {
		marker := ""
		if i == 0 {
			marker = "  <- fastest"
		}
		fmt.Printf("%-16s %-14.4f %-10.3f%s\n", r.method, r.time, r.acc, marker)
	}
	fmt.Println("\npaper: Sync EASGD and Hogwild EASGD are essentially tied fastest;")
	fmt.Println("       every EASGD variant beats its existing counterpart (Figs 6, 8).")
}
