// serve_quickstart: the full train → snapshot → serve loop in one file.
// A LeNet-scale model is trained on synthetic MNIST-shaped data, saved and
// reloaded through the public Model API, then put behind the micro-batching
// HTTP server (the same stack cmd/scaledl-serve runs). One hundred
// concurrent clients fire at once; the batcher coalesces them into a
// handful of batched forwards, and every response is checked against the
// model's own single-request answer.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"scaledl"
	"scaledl/internal/serve"
)

func main() {
	// 1. Train. TinyCNN keeps the example fast; swap in scaledl.LeNet for
	// the paper's full 431k-parameter network.
	train, test := scaledl.SyntheticMNIST(11, 2048, 256)
	res, err := scaledl.Train("sync-easgd3", scaledl.Config{
		Def:        scaledl.TinyCNN(scaledl.Shape{C: 1, H: 28, W: 28}, 10),
		Train:      train,
		Test:       test,
		Workers:    4,
		Batch:      32,
		LR:         0.05,
		Iterations: 60,
		Seed:       1,
		Platform:   scaledl.DefaultGPUPlatform(true),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained to %.3f accuracy in %.3f simulated seconds\n", res.FinalAcc, res.SimTime)

	// 2. Snapshot and reload — the artifact boundary between training and
	// serving. In production the bytes go to disk (see scaledl-serve -save).
	var snap bytes.Buffer
	if err := res.Model().Save(&snap); err != nil {
		log.Fatal(err)
	}
	model, err := scaledl.LoadModel(&snap)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Serve with dynamic micro-batching: up to 16 concurrent requests
	// coalesce into one batched forward, waiting at most 2ms for company.
	s, err := serve.NewServer(model, serve.Config{
		Batch: serve.BatchConfig{MaxBatch: 16, MaxDelay: 2 * time.Millisecond, QueueBound: 128},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 4. One hundred concurrent clients, answers checked against the model.
	// Expected argmaxes are computed up front: a Model is not
	// concurrency-safe, so it must not be called while the batcher serves.
	dim := model.InputDim()
	const n = 100
	want := make([]int, n)
	for i := range want {
		input := test.Images[(i%test.Len())*dim : (i%test.Len()+1)*dim]
		logits, err := model.Predict(input, 1)
		if err != nil {
			log.Fatal(err)
		}
		for j, v := range logits {
			if v > logits[want[i]] {
				want[i] = j
			}
		}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	agree := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			input := test.Images[(i%test.Len())*dim : (i%test.Len()+1)*dim]
			body, _ := json.Marshal(struct {
				Input []float32 `json:"input"`
			}{input})
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("request %d: status %d", i, resp.StatusCode)
			}
			var pr struct {
				Argmax int `json:"argmax"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				log.Fatal(err)
			}
			if pr.Argmax == want[i] {
				mu.Lock()
				agree++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	st := s.Batcher().Stats()
	fmt.Printf("served %d concurrent requests in %d batches (mean batch %.2f), %d/%d match the model exactly\n",
		n, st.Batches, st.MeanBatch, agree, n)
	s.Drain()
}
