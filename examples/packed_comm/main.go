// packed_comm demonstrates the paper's §5.2 single-layer (packed)
// communication (Figure 10): allocating all layers in one contiguous buffer
// and sending one message per exchange instead of one per layer. The win
// has two parts — (P-1) fewer latency terms and contiguous memory access —
// and grows with layer count and interconnect latency.
package main

import (
	"fmt"
	"log"

	"scaledl"
)

func main() {
	train, test := scaledl.SyntheticMNIST(5, 2048, 512)
	// A deeper network (8 parameter layers) makes per-layer latency visible.
	def := scaledl.NetDef{
		Name: "deep-demo", In: scaledl.Shape{C: 1, H: 28, W: 28}, Classes: 10,
		Specs: []scaledl.LayerSpec{
			{Kind: "conv", Filters: 6, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "conv", Filters: 6, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "conv", Filters: 12, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "dense", Units: 48},
			{Kind: "relu"},
			{Kind: "dense", Units: 10},
		},
	}

	fmt.Println("Sync SGD, 4 simulated GPUs, same seed — only the message plan differs:")
	fmt.Println()
	var times [2]float64
	for i, packed := range []bool{false, true} {
		cfg := scaledl.Config{
			Def: def, Train: train, Test: test,
			Workers: 4, Batch: 32, LR: 0.05,
			Iterations: 100, Seed: 5,
			Platform:  scaledl.DefaultGPUPlatform(packed),
			EvalEvery: 25,
		}
		res, err := scaledl.Train("sync-sgd", cfg)
		if err != nil {
			log.Fatal(err)
		}
		times[i] = res.SimTime
		name := "per-layer"
		if packed {
			name = "packed"
		}
		fmt.Printf("%-10s  sim-time %.4fs  accuracy %.3f  comm share %.0f%%\n",
			name, res.SimTime, res.FinalAcc, res.Breakdown.CommRatio()*100)
	}
	fmt.Printf("\npacked layout speedup at equal iterations: %.2fx\n", times[0]/times[1])
	fmt.Println("(paper Figure 10: the packed curve reaches each accuracy earlier)")
}
