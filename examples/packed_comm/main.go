// packed_comm demonstrates the paper's §5.2 communication design on the
// message-level collective engine: (1) packed single-buffer versus
// per-layer parameter messages in a real Sync SGD run — the per-layer
// plan's extra per-message α costs now *emerge* from the simulated message
// waves rather than being charged by a formula — and (2) the allreduce
// schedules the engine implements (selected by name), next to their
// analytic α-β oracles.
package main

import (
	"fmt"
	"log"

	"scaledl"
)

func main() {
	train, test := scaledl.SyntheticMNIST(5, 2048, 512)
	// A deeper network (8 parameter layers) makes per-layer latency visible.
	def := scaledl.NetDef{
		Name: "deep-demo", In: scaledl.Shape{C: 1, H: 28, W: 28}, Classes: 10,
		Specs: []scaledl.LayerSpec{
			{Kind: "conv", Filters: 6, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "conv", Filters: 6, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "conv", Filters: 12, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "dense", Units: 48},
			{Kind: "relu"},
			{Kind: "dense", Units: 10},
		},
	}

	fmt.Println("Sync SGD, 4 simulated GPUs, same seed — only the message plan differs:")
	fmt.Println()
	var times [2]float64
	for i, packed := range []bool{false, true} {
		cfg := scaledl.Config{
			Def: def, Train: train, Test: test,
			Workers: 4, Batch: 32, LR: 0.05,
			Iterations: 100, Seed: 5,
			Platform:  scaledl.DefaultGPUPlatform(packed),
			EvalEvery: 25,
		}
		res, err := scaledl.Train("sync-sgd", cfg)
		if err != nil {
			log.Fatal(err)
		}
		times[i] = res.SimTime
		name := "per-layer"
		if packed {
			name = "packed"
		}
		fmt.Printf("%-10s  sim-time %.4fs  accuracy %.3f  comm share %.0f%%  param traffic %.1f MB\n",
			name, res.SimTime, res.FinalAcc, res.Breakdown.CommRatio()*100,
			float64(res.Breakdown.ParamTraffic())/(1<<20))
	}
	fmt.Printf("\npacked layout speedup at equal iterations: %.2fx\n", times[0]/times[1])
	fmt.Println("(paper Figure 10: the packed curve reaches each accuracy earlier)")

	// The same engine, schedule by schedule: one packed allreduce of the
	// demo model over 16 parties on FDR InfiniBand (α=0.7µs, β=0.2ns/B),
	// simulated message-by-message versus the closed-form prediction.
	paramBytes := int64(def.Build(0).ParamBytes())
	fmt.Printf("\nallreduce schedules, |W| = %.1f KB, P=16, FDR IB (simulated vs analytic):\n", float64(paramBytes)/1024)
	for _, name := range scaledl.CollectiveSchedules() {
		simT, err := scaledl.SimulatedAllReduceTime(name, paramBytes, 16, 0.7e-6, 0.2e-9)
		if err != nil {
			log.Fatal(err)
		}
		oracle := "      (no closed form: pipelined chunks overlap)"
		if an, err := scaledl.AnalyticAllReduceTime(name, paramBytes, 16, 0.7e-6, 0.2e-9); err == nil {
			oracle = fmt.Sprintf("  analytic %.4f ms", an*1e3)
		}
		fmt.Printf("  %-7s simulated %.4f ms%s\n", name, simT*1e3, oracle)
	}
	fmt.Println("\n(select a schedule for training with Config.Schedule / ParseCollectiveSchedule)")
}
