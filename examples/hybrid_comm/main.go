// hybrid_comm demonstrates Poseidon-style hybrid communication: a dense
// layer's gradient is the outer product dW = dYᵀ·X, so instead of
// allreducing the full F·D+F gradient it can ship each party's B·(F+D)
// sufficient factors and let every receiver reconstruct the sum locally.
// The program first prints the per-layer cost-model verdicts
// (scaledl.SelectCommModes) for LeNet — conv layers have no factor form and
// stay dense; the big fc block crosses over to factors — then trains the
// same Sync SGD run under all three transports (the -comm-mode knob of
// cmd/scaledl-train) and shows the wire bytes fall while the training
// mathematics stays bit-identical.
package main

import (
	"fmt"
	"log"

	"scaledl"
)

func main() {
	train, test := scaledl.SyntheticMNIST(7, 2048, 512)
	// LeNet: 431K parameters, 93% of them in one 500×800 dense block — the
	// fc-heavy shape sufficient-factor broadcasting exists for.
	def := scaledl.LeNet(scaledl.Shape{C: 1, H: 28, W: 28}, 10)

	cfg := func(mode scaledl.CommMode) scaledl.Config {
		return scaledl.Config{
			Def:        def,
			Train:      train,
			Test:       test,
			Workers:    4,
			Batch:      32,
			LR:         0.01,
			Iterations: 10,
			Seed:       1,
			Platform:   scaledl.DefaultGPUPlatform(true),
			CommMode:   mode,
		}
	}

	sel, err := scaledl.SelectCommModes(cfg(scaledl.CommHybrid))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Per-layer transport verdicts of the hybrid selector (4 workers, batch 32):")
	for _, c := range sel.Choices {
		fmt.Println("  " + c.String())
	}
	fmt.Println()

	fmt.Printf("%-8s %-12s %-18s %-12s %-10s\n", "mode", "sim time(s)", "param traffic(MB)", "sfb recon(s)", "final loss")
	var base scaledl.Result
	for _, mode := range []scaledl.CommMode{scaledl.CommDense, scaledl.CommSFB, scaledl.CommHybrid} {
		res, err := scaledl.Train("sync-sgd", cfg(mode))
		if err != nil {
			log.Fatal(err)
		}
		if mode == scaledl.CommDense {
			base = res
		} else if res.FinalLoss != base.FinalLoss {
			log.Fatalf("%s changed the training math: %v vs %v", mode, res.FinalLoss, base.FinalLoss)
		}
		fmt.Printf("%-8s %-12.5f %-18.2f %-12.5f %-10.5f\n",
			mode, res.SimTime,
			float64(res.Breakdown.ParamTraffic())/(1<<20),
			res.Breakdown.Times[scaledl.CatSFBRecon],
			res.FinalLoss)
	}
	fmt.Println()
	fmt.Println("Factors cut the fc block's wire from O(F·D) to O(B·(F+D)); the sfb recon")
	fmt.Println("column is the receiver-side reconstruction compute the transport pays for it.")
	fmt.Println("The final loss is bit-identical in every row: the transport changes where")
	fmt.Println("bytes move, never what is summed.")
	fmt.Println()
	fmt.Println("Same knobs on the CLI:  scaledl-train -method sync-sgd -comm-mode hybrid -verbose-comm")
}
