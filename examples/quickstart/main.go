// Quickstart: train one model with the paper's best method (Sync EASGD3,
// the "Communication-Efficient EASGD") on four simulated GPUs, print the
// accuracy trajectory and the §6.1.1 time breakdown, then round-trip the
// trained model through the public Model API (Save → LoadModel → Predict).
package main

import (
	"bytes"
	"fmt"
	"log"

	"scaledl"
)

func main() {
	// Synthetic MNIST-shaped data (the real dataset is substituted per
	// DESIGN.md; geometry and learnability match).
	train, test := scaledl.SyntheticMNIST(1, 2048, 512)

	cfg := scaledl.Config{
		Def:        scaledl.TinyCNN(scaledl.Shape{C: 1, H: 28, W: 28}, 10),
		Train:      train,
		Test:       test,
		Workers:    4,    // four GPUs behind one PCIe switch
		Batch:      32,   // per-GPU minibatch
		LR:         0.05, // η
		Iterations: 100,  // synchronous rounds (4 batches each)
		Seed:       1,
		Platform:   scaledl.DefaultGPUPlatform(true), // packed §5.2 layout
		EvalEvery:  10,
	}

	res, err := scaledl.Train("sync-easgd3", cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Sync EASGD3 on 4 simulated GPUs (MNIST-regime):")
	for _, pt := range res.Curve {
		fmt.Printf("  round %3d  sim %.4fs  loss %.4f  accuracy %.3f\n",
			pt.Iter, pt.SimTime, pt.Loss, pt.TestAcc)
	}
	fmt.Printf("\nfinal accuracy %.3f in %.4f simulated seconds (%d samples)\n",
		res.FinalAcc, res.SimTime, res.Samples)
	fmt.Printf("communication share of iteration time: %.0f%% (paper: 14%% for Sync EASGD3)\n",
		res.Breakdown.CommRatio()*100)

	// The trained model is a first-class artifact: snapshot it, reload it,
	// and predict — the same path cmd/scaledl-serve serves over HTTP.
	model := res.Model()
	var snap bytes.Buffer
	if err := model.Save(&snap); err != nil {
		log.Fatal(err)
	}
	snapBytes := snap.Len()
	reloaded, err := scaledl.LoadModel(&snap)
	if err != nil {
		log.Fatal(err)
	}
	dim := reloaded.InputDim()
	logits, err := reloaded.Predict(test.Images[:dim], 1)
	if err != nil {
		log.Fatal(err)
	}
	argmax := 0
	for i, v := range logits {
		if v > logits[argmax] {
			argmax = i
		}
	}
	fmt.Printf("\nmodel snapshot: %d bytes; reloaded and predicted class %d (label %d) for the first test image\n",
		snapBytes, argmax, test.Labels[0])
}
