// hier_cluster demonstrates the hierarchical two-level cluster path: a
// multi-node machine built as per-node PCIe trees composed under an
// inter-node fabric, with collectives that reduce inside each node, combine
// one leader stream per node over the fabric, and fan back out locally.
//
// The program shows three things:
//
//  1. The composed closed-form oracle: the analytic two-level allreduce
//     cost for a few (intra, inter) schedule pairs — what the simulated
//     hierarchical collective completes at exactly on contention-free
//     topologies.
//  2. hier-sync-sgd training on a 2×2 cluster, bit-identical to the flat
//     4-worker SyncSGD (same losses, same accuracies): the topology
//     changes where the bytes travel, never what is summed — including the
//     overlapped bucketed pipeline.
//  3. hier-sync-easgd's τ pacing: rarer fabric syncs cut step time, the
//     node groups keep learning between them.
package main

import (
	"fmt"
	"log"

	"scaledl"
)

func main() {
	// 1. Composed oracle: LeNet-sized (1.72 MB) allreduce over 4 nodes × 8
	// GPUs; intra = PCIe peer DMA (α=6µs, 12 GB/s), inter = FDR InfiniBand
	// (α=0.7µs, 5 GB/s).
	const nBytes = 431080 * 4
	fmt.Println("two-level allreduce oracle, 4 nodes x 8 GPUs, 1.72 MB:")
	for _, pair := range [][2]string{{"tree", "tree"}, {"tree", "ring"}, {"tree", "rhd"}, {"linear", "tree"}} {
		t, err := scaledl.AnalyticHierAllReduceTime(pair[0], pair[1], nBytes, 4, 8,
			6e-6, 1.0/12e9, 0.7e-6, 0.2e-9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  intra=%-6s inter=%-5s  %.3f ms\n", pair[0], pair[1], t*1e3)
	}

	train, test := scaledl.SyntheticMNIST(7, 2048, 512)
	def := scaledl.TinyCNN(scaledl.Shape{C: 1, H: 28, W: 28}, 10)
	base := scaledl.Config{
		Def:        def,
		Train:      train,
		Test:       test,
		Batch:      32,
		LR:         0.05,
		Iterations: 12,
		Seed:       1,
		Platform:   scaledl.DefaultGPUPlatform(true),
	}

	// 2. Flat vs hierarchical data-parallel SGD: same four workers, same
	// mathematics, different wires.
	flatCfg := base
	flatCfg.Workers = 4
	flat, err := scaledl.Train("sync-sgd", flatCfg)
	if err != nil {
		log.Fatal(err)
	}
	hierSched, err := scaledl.ParseCollectiveSchedule("rhd")
	if err != nil {
		log.Fatal(err)
	}
	hierCfg := base
	hierCfg.Nodes, hierCfg.GPUsPerNode = 2, 2
	hierCfg.HierSchedule = hierSched
	hier, err := scaledl.Train("hier-sync-sgd", hierCfg)
	if err != nil {
		log.Fatal(err)
	}
	ovCfg := hierCfg
	ovCfg.Overlap = true
	ovCfg.BucketBytes = 8 << 10
	hierOv, err := scaledl.Train("hier-sync-sgd", ovCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflat vs hierarchical SyncSGD (4 workers = 2 nodes x 2 GPUs):")
	fmt.Printf("  %-28s step %8.1f µs   loss %.6f\n", "sync-sgd (flat PCIe tree)", flat.SimTime/12*1e6, flat.FinalLoss)
	fmt.Printf("  %-28s step %8.1f µs   loss %.6f\n", "hier-sync-sgd (rhd fabric)", hier.SimTime/12*1e6, hier.FinalLoss)
	fmt.Printf("  %-28s step %8.1f µs   loss %.6f\n", "hier-sync-sgd + overlap", hierOv.SimTime/12*1e6, hierOv.FinalLoss)
	if hier.FinalLoss == flat.FinalLoss && hierOv.FinalLoss == flat.FinalLoss {
		fmt.Println("  training mathematics bit-identical across all three ✓")
	} else {
		fmt.Println("  WARNING: mathematics diverged")
	}

	// 3. Node-group EASGD pacing: group sync every τ_local steps on the
	// PCIe tree, center sync every τ_global steps over the fabric.
	fmt.Println("\nhier-sync-easgd τ pacing (2 nodes x 2 GPUs, 12 steps):")
	for _, tau := range [][2]int{{1, 2}, {1, 4}, {2, 8}} {
		cfg := base
		cfg.Nodes, cfg.GPUsPerNode = 2, 2
		cfg.TauLocal, cfg.TauGlobal = tau[0], tau[1]
		res, err := scaledl.Train("hier-sync-easgd", cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tau_local=%d tau_global=%d  step %8.1f µs   acc %.3f\n",
			tau[0], tau[1], res.SimTime/12*1e6, res.FinalAcc)
	}
}
