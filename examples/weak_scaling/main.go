// weak_scaling reproduces the shape of the paper's Table 4: weak-scaling
// efficiency of ImageNet training (GoogleNet and VGG-19 cost tables) on a
// simulated Cori KNL cluster, from 68 to 4352 cores, for our packed
// tree-allreduce-with-overlap implementation. VGG's 575 MB model scales
// visibly worse than GoogleNet's 27 MB — exactly the paper's contrast.
package main

import (
	"fmt"
	"log"

	"scaledl"
)

func main() {
	fmt.Println("weak-scaling efficiency (Communication-Efficient EASGD on simulated Cori KNL):")
	fmt.Println()
	fmt.Printf("%-8s %-22s %-22s\n", "cores", "googlenet (27 MB)", "vgg19 (575 MB)")
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64} {
		gn, err := scaledl.WeakScalingEfficiency("googlenet", nodes)
		if err != nil {
			log.Fatal(err)
		}
		vgg, err := scaledl.WeakScalingEfficiency("vgg19", nodes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-22s %-22s\n", nodes*68,
			fmt.Sprintf("%.1f%%", gn*100), fmt.Sprintf("%.1f%%", vgg*100))
	}
	fmt.Println()
	fmt.Println("paper at 2176 cores: GoogleNet 92.3% (Intel Caffe 87%), VGG 78.5% (Intel Caffe 62%)")
	fmt.Println("run `scaledl-bench -exp table4` for the full table with the Intel Caffe baseline")

	// The model sizes driving the difference, from the exact-dimension
	// cost tables.
	gn := scaledl.GoogleNetCost()
	vgg := scaledl.VGG19Cost()
	fmt.Printf("\nmodel sizes: %s %.0f MB (%d params), %s %.0f MB (%d params)\n",
		gn.Name, float64(gn.ParamBytes())/(1<<20), gn.TotalParams(),
		vgg.Name, float64(vgg.ParamBytes())/(1<<20), vgg.TotalParams())
}
