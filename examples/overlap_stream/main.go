// overlap_stream demonstrates the layer-streaming backprop pipeline: the
// backward pass emits per-layer gradient-ready events, ready layers
// coalesce into ~BucketBytes buckets, and each bucket's allreduce launches
// the moment its last layer lands — so communication hides under the tail
// of backprop. The program runs the same Sync SGD training with overlap off
// and on across bucket sizes (the -overlap / -bucket knobs of
// cmd/scaledl-train) and shows that the time falls while the training
// mathematics stays bit-identical.
package main

import (
	"fmt"
	"log"

	"scaledl"
)

func main() {
	train, test := scaledl.SyntheticMNIST(7, 2048, 512)
	// LeNet: 1.72 MB of parameters, with the big dense block's gradient
	// ready first in the backward walk — the shape streaming exploits.
	def := scaledl.LeNet(scaledl.Shape{C: 1, H: 28, W: 28}, 10)

	run := func(overlap bool, bucketBytes int64) scaledl.Result {
		res, err := scaledl.Train("sync-sgd", scaledl.Config{
			Def:         def,
			Train:       train,
			Test:        test,
			Workers:     4,
			Batch:       32,
			LR:          0.01,
			Iterations:  10,
			Seed:        1,
			Platform:    scaledl.DefaultGPUPlatform(true),
			Overlap:     overlap,
			BucketBytes: bucketBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("Sync SGD on 4 simulated GPUs, LeNet, same seed — only the streaming knobs differ:")
	fmt.Println()
	fmt.Printf("%-22s %-12s %-14s %-14s %-10s\n", "configuration", "sim time(s)", "exposed comm", "hidden comm", "final loss")
	base := run(false, 0)
	print := func(name string, res scaledl.Result) {
		exposed := res.Breakdown.Times[scaledl.CatCPUGPUParam]
		fmt.Printf("%-22s %-12.5f %-14.5f %-14.5f %-10.5f\n",
			name, res.SimTime, exposed, res.Breakdown.HiddenComm, res.FinalLoss)
	}
	print("monolithic (off)", base)
	for _, bucket := range []int64{64 << 10, 256 << 10, 1 << 20} {
		res := run(true, bucket)
		print(fmt.Sprintf("overlap, %d KiB", bucket>>10), res)
		if res.FinalLoss != base.FinalLoss {
			log.Fatalf("streaming changed the training math: %v vs %v", res.FinalLoss, base.FinalLoss)
		}
	}
	fmt.Println()
	fmt.Println("The exposed communication collapses as buckets stream under the backward pass;")
	fmt.Println("the hidden column is where it went. The final loss is bit-identical in every row:")
	fmt.Println("bucketing changes when bytes move, never what is summed.")
	fmt.Println()
	fmt.Println("Same knobs on the CLI:  scaledl-train -method sync-sgd -overlap -bucket 65536")
}
