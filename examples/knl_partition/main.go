// knl_partition demonstrates the paper's §6.2 Knights Landing optimization
// (Figure 12): one KNL 7250 chip is partitioned into NUMA-local groups with
// replicated weights and data in MCDRAM. A fixed total batch is split over
// the groups, so the SGD semantics never change; small groups escape the
// chip-wide strong-scaling saturation, and time-to-accuracy improves until
// the MCDRAM fit limit (16 copies of AlexNet + CIFAR), after which spilling
// to DDR collapses the gain.
package main

import (
	"fmt"
	"log"

	"scaledl"
)

func main() {
	train, test := scaledl.SyntheticCIFAR(3, 2048, 256)
	def := scaledl.TinyCNN(scaledl.Shape{C: 3, H: 32, W: 32}, 10)
	chip := scaledl.NewKNL7250(0.1)

	const (
		totalBatch = 64
		target     = 0.80
	)

	fmt.Printf("KNL chip partitioning, total batch %d, target accuracy %.2f\n", totalBatch, target)
	fmt.Printf("MCDRAM fit limit for the paper's AlexNet+CIFAR: %d copies\n\n",
		scaledl.MaxKNLPartsFittingMCDRAM(249<<20, 687<<20))
	fmt.Printf("%-6s %-12s %-14s %-8s %-12s %-8s\n",
		"parts", "fits MCDRAM", "round cost(s)", "rounds", "time (s)", "speedup")

	var base float64
	for _, parts := range []int{1, 4, 8, 16, 32} {
		res, err := scaledl.RunKNLPartition(scaledl.KNLConfig{
			Chip:      chip,
			Parts:     parts,
			Def:       def,
			Train:     train,
			Test:      test,
			Batch:     totalBatch / parts,
			LR:        0.05,
			Rounds:    600,
			TargetAcc: target,
			Seed:      3,
			EvalEvery: 2,
			// Model the paper's true Figure 12 footprints while executing
			// the scaled-down network.
			WeightBytes:    249 << 20, // AlexNet
			DataCopyBytes:  687 << 20, // one CIFAR copy
			FLOPsPerSample: 360e6,
		})
		if err != nil {
			log.Fatal(err)
		}
		tt := res.TimeToTarget
		if tt == 0 {
			tt = res.SimTime
		}
		if parts == 1 {
			base = tt
		}
		fmt.Printf("%-6d %-12v %-14.4f %-8d %-12.3f %.2fx\n",
			parts, res.Cost.FitsMCDRAM, res.Cost.Total(), res.Rounds, tt, base/tt)
	}
	fmt.Println("\npaper: 1605s -> 1025s -> 823s -> 490s for 1/4/8/16 parts (3.3x), 16 = MCDRAM limit")
}
