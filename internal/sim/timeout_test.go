package sim

import "testing"

// TestRecvMatchTimeoutExpires pins that an unmatched receive returns after
// exactly the timeout with the queue untouched and the process fully
// unregistered — a later Send must not wake it out of an unrelated block.
func TestRecvMatchTimeoutExpires(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env, "q")
	var gotOK bool
	var at, after float64
	env.Spawn("rx", func(p *Proc) {
		_, gotOK = p.RecvMatchTimeout(q, 5, func(any) bool { return true })
		at = p.Now()
		// The expired registration must be gone: this send happens at t=7
		// (below) while we are mid-Delay, and must not cut the Delay short.
		p.Delay(10)
		after = p.Now()
	})
	env.Spawn("tx", func(p *Proc) {
		p.Delay(7)
		q.Send("late")
	})
	env.Run()
	if gotOK {
		t.Fatal("timeout receive reported a message")
	}
	if at != 5 {
		t.Fatalf("timed out at %v, want 5", at)
	}
	if after != 15 {
		t.Fatalf("post-timeout Delay ended at %v, want 15 (stale wake fired)", after)
	}
	if len(q.waiters) != 0 {
		t.Fatalf("queue still holds %d waiters after timeout", len(q.waiters))
	}
	if q.Len() != 1 {
		t.Fatalf("queue has %d messages, want the 1 late send", q.Len())
	}
}

// TestRecvMatchTimeoutDelivery pins the happy path: a matching message that
// arrives before the deadline is returned immediately, and the now-stale
// deadline timer does not fire into the process's next block.
func TestRecvMatchTimeoutDelivery(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env, "q")
	var got any
	var ok bool
	var at, after float64
	env.Spawn("rx", func(p *Proc) {
		got, ok = p.RecvMatchTimeout(q, 100, func(v any) bool { return v == "yes" })
		at = p.Now()
		p.Delay(1)
		after = p.Now()
	})
	env.Spawn("tx", func(p *Proc) {
		p.Delay(2)
		q.Send("no")
		p.Delay(1)
		q.Send("yes")
	})
	env.Run()
	if !ok || got != "yes" {
		t.Fatalf("got (%v, %v), want (yes, true)", got, ok)
	}
	if at != 3 {
		t.Fatalf("received at %v, want 3", at)
	}
	if after != 4 {
		t.Fatalf("post-receive Delay ended at %v, want 4 (stale deadline timer fired)", after)
	}
	if q.Len() != 1 {
		t.Fatalf("queue has %d messages, want the unmatched 1", q.Len())
	}
}

// TestSignalInterruptsSleep pins SleepInterruptible against a firing and a
// non-firing signal, and that a pre-fired signal returns instantly.
func TestSignalInterruptsSleep(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env, "dead")
	var cut, full, instant bool
	var cutAt, fullAt, instantAt float64
	env.Spawn("sleeper", func(p *Proc) {
		cut = p.SleepInterruptible(10, s)
		cutAt = p.Now()
		instant = p.SleepInterruptible(10, s)
		instantAt = p.Now()
	})
	env.Spawn("quiet", func(p *Proc) {
		full = p.SleepInterruptible(2, NewSignal(env, "never"))
		fullAt = p.Now()
	})
	env.Spawn("killer", func(p *Proc) {
		p.Delay(3)
		s.Fire()
	})
	env.Run()
	if !cut || cutAt != 3 {
		t.Fatalf("interrupted sleep: (%v, t=%v), want (true, 3)", cut, cutAt)
	}
	if !instant || instantAt != 3 {
		t.Fatalf("sleep on fired signal: (%v, t=%v), want (true, 3)", instant, instantAt)
	}
	if full || fullAt != 2 {
		t.Fatalf("undisturbed sleep: (%v, t=%v), want (false, 2)", full, fullAt)
	}
}

// TestCancelledTransferReleasesResource pins the cancellation contract a
// transfer path relies on: a process holding Resource segments whose
// occupancy sleep is interrupted mid-flight releases every held unit, so
// a dead destination leaks no capacity and the next transfer admits
// immediately.
func TestCancelledTransferReleasesResource(t *testing.T) {
	env := NewEnv()
	seg := NewResource(env, "switch", 1)
	dead := NewSignal(env, "dead")
	var nextAt float64
	env.Spawn("doomed", func(p *Proc) {
		p.Acquire(seg)
		if !p.SleepInterruptible(100, dead) {
			t.Error("transfer was not cancelled")
		}
		seg.Release()
	})
	env.Spawn("killer", func(p *Proc) {
		p.Delay(4)
		dead.Fire()
	})
	env.Spawn("next", func(p *Proc) {
		p.Delay(5)
		p.Acquire(seg)
		nextAt = p.Now()
		seg.Release()
	})
	env.Run()
	if seg.InUse() != 0 {
		t.Fatalf("resource leaked: InUse=%d after cancellation", seg.InUse())
	}
	if nextAt != 5 {
		t.Fatalf("next acquire at t=%v, want 5 (cancelled transfer held the segment)", nextAt)
	}
}

// TestDiceDeterministic pins that the seeded plan is a pure function of
// (seed, keys): equal seeds agree roll for roll in any order, distinct
// seeds disagree, and every roll lands in [0, 1).
func TestDiceDeterministic(t *testing.T) {
	a, b := NewDice(42), NewDice(42)
	other := NewDice(43)
	type key struct{ src, dst, n int64 }
	keys := []key{{0, 1, 0}, {0, 1, 1}, {1, 0, 0}, {5, 7, 900}, {7, 5, 900}}
	want := make(map[key]float64)
	for _, k := range keys {
		v := a.Roll(k.src, k.dst, k.n)
		if v < 0 || v >= 1 {
			t.Fatalf("roll %v out of [0,1): %v", k, v)
		}
		want[k] = v
	}
	differs := false
	for i := len(keys) - 1; i >= 0; i-- { // reversed order must not matter
		k := keys[i]
		if got := b.Roll(k.src, k.dst, k.n); got != want[k] {
			t.Fatalf("same-seed roll %v = %v, want %v", k, got, want[k])
		}
		if other.Roll(k.src, k.dst, k.n) != want[k] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seed 43 reproduced every seed-42 roll")
	}
}
