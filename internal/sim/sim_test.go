package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSingleProcessDelays(t *testing.T) {
	env := NewEnv()
	var ticks []float64
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Delay(1.5)
			ticks = append(ticks, p.Now())
		}
	})
	end := env.Run()
	if end != 4.5 {
		t.Errorf("end time %v, want 4.5", end)
	}
	want := []float64{1.5, 3.0, 4.5}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEventOrderingAcrossProcesses(t *testing.T) {
	env := NewEnv()
	var order []string
	for _, c := range []struct {
		name string
		d    float64
	}{{"b", 2}, {"a", 1}, {"c", 3}} {
		c := c
		env.Spawn(c.name, func(p *Proc) {
			p.Delay(c.d)
			order = append(order, p.Name())
		})
	}
	env.Run()
	if fmt.Sprint(order) != "[a b c]" {
		t.Errorf("order %v", order)
	}
}

func TestTieBreakIsSpawnOrderDeterministic(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("p%d", i)
			env.Spawn(name, func(p *Proc) {
				p.Delay(1) // all wake at the same instant
				order = append(order, p.Name())
			})
		}
		env.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tie-broken order nondeterministic: %v vs %v", a, b)
		}
	}
	// Equal-time events run in schedule order.
	for i := range a {
		if a[i] != fmt.Sprintf("p%d", i) {
			t.Fatalf("equal-time order not FIFO: %v", a)
		}
	}
}

func TestZeroDelayAndYield(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Spawn("x", func(p *Proc) {
		order = append(order, "x1")
		p.Yield()
		order = append(order, "x2")
	})
	env.Spawn("y", func(p *Proc) {
		order = append(order, "y1")
		p.Delay(0)
		order = append(order, "y2")
	})
	env.Run()
	if fmt.Sprint(order) != "[x1 y1 x2 y2]" {
		t.Errorf("order %v", order)
	}
	if env.Now() != 0 {
		t.Errorf("time advanced to %v on zero delays", env.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	env := NewEnv()
	env.Spawn("bad", func(p *Proc) { p.Delay(-1) })
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not propagate panic through Run")
		}
	}()
	env.Run()
}

func TestProcessPanicPropagates(t *testing.T) {
	env := NewEnv()
	env.Spawn("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("got %v", r)
		}
	}()
	env.Run()
}

func TestSpawnDuringRun(t *testing.T) {
	env := NewEnv()
	var childTime float64
	env.Spawn("parent", func(p *Proc) {
		p.Delay(2)
		p.Env().Spawn("child", func(c *Proc) {
			c.Delay(3)
			childTime = c.Now()
		})
	})
	env.Run()
	if childTime != 5 {
		t.Errorf("child finished at %v, want 5", childTime)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv()
	count := 0
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Delay(1)
			count++
		}
	})
	end := env.RunUntil(10)
	if end != 10 || count != 10 {
		t.Errorf("end=%v count=%d, want 10/10", end, count)
	}
	defer env.Close()
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env, "q")
	var got []int
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Delay(1)
			q.Send(i)
		}
	})
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, p.Recv(q).(int))
		}
	})
	env.Run()
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Errorf("got %v", got)
	}
}

func TestQueueMultipleWaitersServedInOrder(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env, "q")
	var served []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		env.Spawn(name, func(p *Proc) {
			p.Recv(q)
			served = append(served, p.Name())
		})
	}
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Delay(1)
			q.Send(i)
		}
	})
	env.Run()
	if fmt.Sprint(served) != "[w0 w1 w2]" {
		t.Errorf("served %v", served)
	}
}

func TestQueueTryRecv(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env, "q")
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue returned ok")
	}
	q.Send(42)
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryRecv()
	if !ok || v.(int) != 42 {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, "lock", 1)
	var trace []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("p%d", i)
		env.Spawn(name, func(p *Proc) {
			p.Acquire(r)
			trace = append(trace, p.Name()+"+")
			p.Delay(1)
			trace = append(trace, p.Name()+"-")
			r.Release()
		})
	}
	env.Run()
	want := "[p0+ p0- p1+ p1- p2+ p2-]"
	if fmt.Sprint(trace) != want {
		t.Errorf("trace %v, want %v", trace, want)
	}
	if env.Now() != 3 {
		t.Errorf("serialized critical sections should take 3s, got %v", env.Now())
	}
}

func TestResourceCapacityAllowsOverlap(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, "pool", 2)
	for i := 0; i < 4; i++ {
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Acquire(r)
			p.Delay(1)
			r.Release()
		})
	}
	if end := env.Run(); end != 2 {
		t.Errorf("capacity-2 pool of 4 unit jobs should take 2s, got %v", end)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, "r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestBarrierSynchronizes(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, "b", 3)
	var after []float64
	for i := 0; i < 3; i++ {
		d := float64(i + 1)
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Delay(d)
			p.Wait(b)
			after = append(after, p.Now())
		})
	}
	env.Run()
	for _, ts := range after {
		if ts != 3 {
			t.Errorf("process crossed barrier at %v, want 3", ts)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, "b", 2)
	var times []float64
	for i := 0; i < 2; i++ {
		d := float64(i + 1)
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Delay(d)
				p.Wait(b)
				if p.Name() == "p0" {
					times = append(times, p.Now())
				}
			}
		})
	}
	env.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("round %d crossed at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestCloseReapsBlockedProcesses(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env, "never")
	env.Spawn("stuck", func(p *Proc) {
		p.Recv(q) // never satisfied
		t.Error("stuck process ran past Recv")
	})
	env.Run()
	env.Close()
	// Close is idempotent.
	env.Close()
}

func TestSpawnAfterClosePanics(t *testing.T) {
	env := NewEnv()
	env.Run()
	env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Close did not panic")
		}
	}()
	env.Spawn("late", func(p *Proc) {})
}

func TestRecvMatchSelective(t *testing.T) {
	type tagged struct {
		tag int
		val string
	}
	env := NewEnv()
	q := NewQueue(env, "q")
	var got []string
	env.Spawn("producer", func(p *Proc) {
		q.Send(tagged{tag: 1, val: "first"})
		q.Send(tagged{tag: 2, val: "second"})
	})
	env.Spawn("consumer", func(p *Proc) {
		// Receive tag 2 first although tag 1 was enqueued earlier.
		m2 := p.RecvMatch(q, func(v any) bool { return v.(tagged).tag == 2 }).(tagged)
		m1 := p.RecvMatch(q, func(v any) bool { return v.(tagged).tag == 1 }).(tagged)
		got = append(got, m2.val, m1.val)
	})
	env.Run()
	if fmt.Sprint(got) != "[second first]" {
		t.Errorf("selective receive order wrong: %v", got)
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d left", q.Len())
	}
}

func TestRecvMatchInterleavedStreams(t *testing.T) {
	// Two receivers on one mailbox, each matching its own tag; messages
	// arrive interleaved and out of order relative to the receivers.
	type tagged struct{ tag, seq int }
	env := NewEnv()
	q := NewQueue(env, "q")
	var a, b []int
	env.Spawn("recvA", func(p *Proc) {
		for i := 0; i < 3; i++ {
			m := p.RecvMatch(q, func(v any) bool { return v.(tagged).tag == 'a' }).(tagged)
			a = append(a, m.seq)
		}
	})
	env.Spawn("recvB", func(p *Proc) {
		for i := 0; i < 3; i++ {
			m := p.RecvMatch(q, func(v any) bool { return v.(tagged).tag == 'b' }).(tagged)
			b = append(b, m.seq)
		}
	})
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Delay(1)
			q.Send(tagged{tag: 'b', seq: i})
			q.Send(tagged{tag: 'a', seq: i})
		}
	})
	env.Run()
	if fmt.Sprint(a) != "[0 1 2]" || fmt.Sprint(b) != "[0 1 2]" {
		t.Errorf("per-stream order broken: a=%v b=%v", a, b)
	}
}

func TestResourceFIFONoBarging(t *testing.T) {
	// p1 queues at t=0.5 while p0 holds the unit until t=1. p2 calls
	// Acquire at exactly t=1 — the release instant — and must not barge
	// past the queued p1.
	env := NewEnv()
	r := NewResource(env, "lock", 1)
	var order []string
	use := func(p *Proc) {
		p.Acquire(r)
		order = append(order, p.Name())
		p.Delay(1)
		r.Release()
	}
	env.Spawn("p0", use)
	env.Spawn("p1", func(p *Proc) { p.Delay(0.5); use(p) })
	env.Spawn("p2", func(p *Proc) { p.Delay(1); use(p) })
	env.Run()
	if fmt.Sprint(order) != "[p0 p1 p2]" {
		t.Errorf("admission order %v, want FIFO [p0 p1 p2]", order)
	}
	if env.Now() != 3 {
		t.Errorf("end %v, want 3", env.Now())
	}
}

func TestForkJoinExposesOnlyExcess(t *testing.T) {
	env := NewEnv()
	var joined float64
	env.Spawn("main", func(p *Proc) {
		c := p.Env().Fork("bg", func(bp *Proc) { bp.Delay(3) })
		p.Delay(2) // overlapped foreground work
		c.Wait(p)
		joined = p.Now()
		c.Wait(p) // idempotent
	})
	env.Run()
	if joined != 3 {
		t.Errorf("join at %v, want 3 (max of fork and foreground)", joined)
	}

	// The short-fork case: join returns at the foreground time.
	env2 := NewEnv()
	env2.Spawn("main", func(p *Proc) {
		c := p.Env().Fork("bg", func(bp *Proc) { bp.Delay(1) })
		p.Delay(2)
		c.Wait(p)
		joined = p.Now()
	})
	env2.Run()
	if joined != 2 {
		t.Errorf("join at %v, want 2", joined)
	}
}

// Property: for any set of delays, Run finishes at the maximum delay and
// every process observes its own delay exactly.
func TestRunEndsAtMaxDelayProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		env := NewEnv()
		defer env.Close()
		maxD := 0.0
		ok := true
		for _, r := range raw {
			d := float64(r) / 100
			if d > maxD {
				maxD = d
			}
			env.Spawn("p", func(p *Proc) {
				p.Delay(d)
				if p.Now() != d {
					ok = false
				}
			})
		}
		return env.Run() == maxD && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a capacity-c resource with n unit-time jobs takes ceil(n/c).
func TestResourceMakespanProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%20) + 1
		c := int(cRaw%5) + 1
		env := NewEnv()
		defer env.Close()
		r := NewResource(env, "r", c)
		for i := 0; i < n; i++ {
			env.Spawn("p", func(p *Proc) {
				p.Acquire(r)
				p.Delay(1)
				r.Release()
			})
		}
		want := float64((n + c - 1) / c)
		return env.Run() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSteadyStateZeroAllocs pins the kernel's headline property (promised in
// the package doc): once warmed up, the steady-state event path — Delay,
// queue ping-pong, resource hand-off, barrier crossing — performs no
// allocations. testing.AllocsPerRun includes its own warm-up invocation, and
// the first RunUntil below additionally grows every slice (heap, ready ring,
// waiter lists, queue storage) to its steady capacity. Zero-size payloads
// (struct{}{}) convert to interfaces without allocating.
func TestSteadyStateZeroAllocs(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	q1, q2 := NewQueue(env, "a"), NewQueue(env, "b")
	res := NewResource(env, "r", 1)
	bar := NewBarrier(env, "bar", 2)
	env.Spawn("p1", func(p *Proc) {
		for {
			p.Delay(1)
			q1.Send(struct{}{})
			p.Recv(q2)
			p.Acquire(res)
			p.Delay(0.5)
			res.Release()
			p.Wait(bar)
		}
	})
	env.Spawn("p2", func(p *Proc) {
		for {
			p.Recv(q1)
			q2.Send(struct{}{})
			p.Acquire(res)
			p.Delay(0.25)
			res.Release()
			p.Wait(bar)
		}
	})
	horizon := 1000.0
	env.RunUntil(horizon)
	allocs := testing.AllocsPerRun(20, func() {
		horizon += 1000
		env.RunUntil(horizon)
	})
	if allocs != 0 {
		t.Errorf("steady-state event path allocates: %v allocs per 1000 simulated seconds", allocs)
	}
}
