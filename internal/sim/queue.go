package sim

// Queue is an unbounded FIFO message queue between processes, the simulated
// analogue of a Go channel. Senders never block; receivers block until a
// message is available. Waiting receivers are served in arrival order, which
// is exactly the first-come-first-served discipline of the paper's
// parameter-server (Async SGD) master.
type Queue struct {
	env     *Env
	name    string
	items   []any
	waiters []*Proc
}

// NewQueue creates a queue bound to env.
func NewQueue(env *Env, name string) *Queue {
	return &Queue{env: env, name: name}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.items) }

// Send enqueues v and wakes every waiting receiver. All waiters are woken
// (rather than only the first) because selective receivers (RecvMatch) may
// decline the message; waiters resume in registration order — wake-ups are
// scheduled at the current instant with increasing sequence numbers — so
// plain Recv keeps its first-come-first-served discipline. Send may be
// called from any process without blocking.
func (q *Queue) Send(v any) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		ws := q.waiters
		q.waiters = nil
		for _, w := range ws {
			q.env.schedule(q.env.now, w)
		}
	}
}

// Recv blocks p until a message is available and returns it.
func (p *Proc) Recv(q *Queue) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// RecvMatch blocks p until a queued message satisfies match, removes it
// (preserving the order of the others) and returns it. It is the selective
// receive the collective engine uses to let one mailbox carry interleaved
// message streams — e.g. a broadcast of iteration t+1 overlapping the
// reduction of iteration t — without per-stream queues.
func (p *Proc) RecvMatch(q *Queue, match func(v any) bool) any {
	for {
		for i, v := range q.items {
			if match(v) {
				copy(q.items[i:], q.items[i+1:])
				q.items[len(q.items)-1] = nil
				q.items = q.items[:len(q.items)-1]
				return v
			}
		}
		q.waiters = append(q.waiters, p)
		p.block()
	}
}

// TryRecv returns (message, true) if one is queued, or (nil, false) without
// blocking.
func (q *Queue) TryRecv() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Resource is a counted resource with strict FIFO admission, the simulated
// analogue of a semaphore. Capacity 1 models the master-side lock that
// Async SGD holds during weight updates and Hogwild removes; capacity c
// models a shared interconnect segment (a PCIe switch, a memory bus) that
// admits c concurrent transfers.
//
// Fairness guarantee: Release hands the freed unit directly to the
// longest-waiting acquirer, so a process that calls Acquire at the same
// instant can never barge past a queued waiter. The collective engine
// relies on this to keep contention outcomes deterministic and
// arrival-ordered.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter
}

// resWaiter is one queued acquirer; granted marks a unit handed to it by
// Release before it resumes.
type resWaiter struct {
	p       *Proc
	granted bool
}

// NewResource creates a resource with the given capacity (≥1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks p until a unit is free, then takes it. Admission is strict
// FIFO: if anyone is already queued, p queues behind them even when a unit
// is technically free at this instant.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	w := &resWaiter{p: p}
	r.waiters = append(r.waiters, w)
	for !w.granted {
		p.block()
	}
}

// Release returns a unit. If acquirers are queued, the unit is handed
// directly to the longest-waiting one (inUse never dips, so a same-instant
// Acquire cannot steal it); otherwise the unit becomes free.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.granted = true
		r.env.schedule(r.env.now, w.p)
		return
	}
	r.inUse--
}

// Barrier blocks a fixed set of n processes until all have arrived, the
// simulated analogue of MPI_Barrier — the synchronization point of every
// Sync EASGD iteration.
type Barrier struct {
	env     *Env
	name    string
	n       int
	arrived int
	gen     int
	waiters []*Proc
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(env *Env, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{env: env, name: name, n: n}
}

// Wait blocks p until all n parties have called Wait for the current
// generation; the barrier then resets for reuse.
func (p *Proc) Wait(b *Barrier) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			b.env.schedule(b.env.now, w)
		}
		b.waiters = b.waiters[:0]
		return
	}
	gen := b.gen
	b.waiters = append(b.waiters, p)
	for b.gen == gen {
		p.block()
	}
}
