package sim

// Queue is an unbounded FIFO message queue between processes, the simulated
// analogue of a Go channel. Senders never block; receivers block until a
// message is available. Waiting receivers are served in arrival order, which
// is exactly the first-come-first-served discipline of the paper's
// parameter-server (Async SGD) master.
type Queue struct {
	env     *Env
	name    string
	items   []any
	waiters []*Proc
}

// NewQueue creates a queue bound to env.
func NewQueue(env *Env, name string) *Queue {
	return &Queue{env: env, name: name}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.items) }

// Send enqueues v and wakes the longest-waiting receiver, if any. It may be
// called from any process without blocking.
func (q *Queue) Send(v any) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.env.schedule(q.env.now, w)
	}
}

// Recv blocks p until a message is available and returns it.
func (p *Proc) Recv(q *Queue) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryRecv returns (message, true) if one is queued, or (nil, false) without
// blocking.
func (q *Queue) TryRecv() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Resource is a counted resource with FIFO admission, the simulated
// analogue of a semaphore. Capacity 1 models the master-side lock that
// Async SGD holds during weight updates and Hogwild removes.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource creates a resource with the given capacity (≥1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks p until a unit is free, then takes it.
func (p *Proc) Acquire(r *Resource) {
	for r.inUse >= r.capacity {
		r.waiters = append(r.waiters, p)
		p.block()
	}
	r.inUse++
}

// Release returns a unit and wakes the longest-waiting acquirer.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.env.schedule(r.env.now, w)
	}
}

// Barrier blocks a fixed set of n processes until all have arrived, the
// simulated analogue of MPI_Barrier — the synchronization point of every
// Sync EASGD iteration.
type Barrier struct {
	env     *Env
	name    string
	n       int
	arrived int
	gen     int
	waiters []*Proc
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(env *Env, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{env: env, name: name, n: n}
}

// Wait blocks p until all n parties have called Wait for the current
// generation; the barrier then resets for reuse.
func (p *Proc) Wait(b *Barrier) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			b.env.schedule(b.env.now, w)
		}
		b.waiters = b.waiters[:0]
		return
	}
	gen := b.gen
	b.waiters = append(b.waiters, p)
	for b.gen == gen {
		p.block()
	}
}
