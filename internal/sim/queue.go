package sim

// Queue is an unbounded FIFO message queue between processes, the simulated
// analogue of a Go channel. Senders never block; receivers block until a
// message is available. Waiting receivers are served in arrival order, which
// is exactly the first-come-first-served discipline of the paper's
// parameter-server (Async SGD) master.
//
// Storage is a head-indexed ring: consumed slots are nil'd and the backing
// array is reused once drained, so a steady-state send/recv cycle does not
// allocate.
type Queue struct {
	env     *Env
	name    string
	items   []any
	head    int
	waiters []*Proc
}

// NewQueue creates a queue bound to env.
func NewQueue(env *Env, name string) *Queue {
	return &Queue{env: env, name: name}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Send enqueues v and wakes every waiting receiver. All waiters are woken
// (rather than only the first) because selective receivers (RecvMatch) may
// decline the message; waiters resume in registration order — wake-ups are
// scheduled at the current instant with increasing sequence numbers — so
// plain Recv keeps its first-come-first-served discipline. Send may be
// called from any process without blocking.
func (q *Queue) Send(v any) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		// Exactly one process runs at a time, so the woken waiters cannot
		// re-register (and overwrite the backing array) before this loop
		// finishes; truncating instead of nil'ing keeps the capacity.
		ws := q.waiters
		q.waiters = q.waiters[:0]
		for _, w := range ws {
			q.env.schedule(q.env.now, w)
		}
	}
}

// take removes and returns the item at absolute index i (≥ q.head).
func (q *Queue) take(i int) any {
	v := q.items[i]
	if i == q.head {
		q.items[i] = nil
		q.head++
	} else {
		copy(q.items[i:], q.items[i+1:])
		q.items[len(q.items)-1] = nil
		q.items = q.items[:len(q.items)-1]
	}
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Recv blocks p until a message is available and returns it.
func (p *Proc) Recv(q *Queue) any {
	for q.Len() == 0 {
		q.waiters = append(q.waiters, p)
		p.block()
	}
	return q.take(q.head)
}

// RecvMatch blocks p until a queued message satisfies match, removes it
// (preserving the order of the others) and returns it. It is the selective
// receive the collective engine uses to let one mailbox carry interleaved
// message streams — e.g. a broadcast of iteration t+1 overlapping the
// reduction of iteration t — without per-stream queues.
func (p *Proc) RecvMatch(q *Queue, match func(v any) bool) any {
	for {
		for i := q.head; i < len(q.items); i++ {
			if match(q.items[i]) {
				return q.take(i)
			}
		}
		q.waiters = append(q.waiters, p)
		p.block()
	}
}

// RecvMatchTimeout is RecvMatch with a deadline: it blocks p until a queued
// message satisfies match — returning (message, true) — or until timeout
// simulated seconds have elapsed, returning (nil, false) with the queue
// unchanged. While blocked the process holds both its waiter registration
// and a deadline timer; whichever fires first wins and the generation stamp
// invalidates the loser (see Proc.gen). On timeout the process removes
// itself from the waiter list, so a later Send cannot wake it out of an
// unrelated block.
func (p *Proc) RecvMatchTimeout(q *Queue, timeout float64, match func(v any) bool) (any, bool) {
	if timeout < 0 {
		panic("sim: negative timeout in " + p.name)
	}
	deadline := p.env.now + timeout
	for {
		for i := q.head; i < len(q.items); i++ {
			if match(q.items[i]) {
				return q.take(i), true
			}
		}
		if p.env.now >= deadline {
			return nil, false
		}
		q.waiters = append(q.waiters, p)
		p.env.schedule(deadline, p)
		p.block()
		q.removeWaiter(p)
	}
}

// removeWaiter unregisters p if it is still waiting (a Send wake-up clears
// the whole list, so p may already be gone).
func (q *Queue) removeWaiter(p *Proc) {
	for i, w := range q.waiters {
		if w == p {
			copy(q.waiters[i:], q.waiters[i+1:])
			q.waiters[len(q.waiters)-1] = nil
			q.waiters = q.waiters[:len(q.waiters)-1]
			return
		}
	}
}

// Purge removes every queued message for which drop returns true,
// preserving the order of the rest, and returns how many were removed. It
// never blocks and wakes no one — the chaos layer uses it to discard
// delivered-but-corrupt payloads a receiver's checksum has rejected.
func (q *Queue) Purge(drop func(v any) bool) int {
	w := q.head
	for i := q.head; i < len(q.items); i++ {
		if drop(q.items[i]) {
			continue
		}
		q.items[w] = q.items[i]
		w++
	}
	n := len(q.items) - w
	for i := w; i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = q.items[:w]
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return n
}

// TryRecv returns (message, true) if one is queued, or (nil, false) without
// blocking.
func (q *Queue) TryRecv() (any, bool) {
	if q.Len() == 0 {
		return nil, false
	}
	return q.take(q.head), true
}

// Resource is a counted resource with strict FIFO admission, the simulated
// analogue of a semaphore. Capacity 1 models the master-side lock that
// Async SGD holds during weight updates and Hogwild removes; capacity c
// models a shared interconnect segment (a PCIe switch, a memory bus) that
// admits c concurrent transfers.
//
// Fairness guarantee: Release hands the freed unit directly to the
// longest-waiting acquirer, so a process that calls Acquire at the same
// instant can never barge past a queued waiter. The collective engine
// relies on this to keep contention outcomes deterministic and
// arrival-ordered.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
	whead    int
}

// NewResource creates a resource with the given capacity (≥1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks p until a unit is free, then takes it. Admission is strict
// FIFO: if anyone is already queued, p queues behind them even when a unit
// is technically free at this instant. A process waits on at most one
// resource at a time, so the hand-off flag lives on the Proc itself and
// queuing allocates nothing in steady state.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.capacity && r.whead == len(r.waiters) {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	for !p.granted {
		p.block()
	}
	p.granted = false
}

// Release returns a unit. If acquirers are queued, the unit is handed
// directly to the longest-waiting one (inUse never dips, so a same-instant
// Acquire cannot steal it); otherwise the unit becomes free.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	if r.whead < len(r.waiters) {
		w := r.waiters[r.whead]
		r.waiters[r.whead] = nil
		r.whead++
		if r.whead == len(r.waiters) {
			r.waiters = r.waiters[:0]
			r.whead = 0
		}
		w.granted = true
		r.env.schedule(r.env.now, w)
		return
	}
	r.inUse--
}

// Barrier blocks a fixed set of n processes until all have arrived, the
// simulated analogue of MPI_Barrier — the synchronization point of every
// Sync EASGD iteration. Generations are numbered from 0; generation g
// releases once every party has arrived for it (and g-1 has released).
type Barrier struct {
	env     *Env
	name    string
	n       int
	gen     int   // completed generations
	pending []int // pending[i] = arrivals for generation gen+i
	waiters []barrierWaiter
}

// barrierWaiter is one blocked party, to be woken when generation until-1
// (the last one it arrived for) releases.
type barrierWaiter struct {
	p     *Proc
	until int
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(env *Env, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{env: env, name: name, n: n}
}

// Gen returns the number of completed generations.
func (b *Barrier) Gen() int { return b.gen }

// Wait blocks p until all n parties have called Wait for the current
// generation; the barrier then resets for reuse.
func (p *Proc) Wait(b *Barrier) { p.WaitMany(b, 1) }

// WaitMany arrives for the next k consecutive generations at once and
// blocks p until the last of them releases. A party that does nothing
// between two barrier crossings would otherwise be woken at each one only
// to re-arrive at the next instantly; batching its arrivals removes those
// wake-ups without changing any release time — an idle party's arrival
// instant is exactly the previous generation's release instant, so it is
// never the arrival that completes a generation ahead of the active
// parties. Waiters wake in arrival order, preserving the deterministic
// same-instant event order of repeated single Waits.
func (p *Proc) WaitMany(b *Barrier, k int) {
	if k < 1 {
		panic("sim: WaitMany of " + b.name + " needs k >= 1")
	}
	for len(b.pending) < k {
		b.pending = append(b.pending, 0)
	}
	for i := 0; i < k; i++ {
		b.pending[i]++
	}
	target := b.gen + k
	b.release()
	if b.gen >= target {
		return
	}
	b.waiters = append(b.waiters, barrierWaiter{p: p, until: target})
	for b.gen < target {
		p.block()
	}
}

// release completes every generation whose arrivals are full, waking the
// parties whose batch ends at it.
func (b *Barrier) release() {
	for len(b.pending) > 0 && b.pending[0] == b.n {
		copy(b.pending, b.pending[1:])
		b.pending = b.pending[:len(b.pending)-1]
		b.gen++
		kept := b.waiters[:0]
		for _, w := range b.waiters {
			if w.until <= b.gen {
				b.env.schedule(b.env.now, w.p)
			} else {
				kept = append(kept, w)
			}
		}
		b.waiters = kept
	}
}
