package sim

import (
	"testing"
)

// BenchmarkSimThroughput measures the bare event-kernel cost: a ring of
// processes passing a token through queues, with each hop one Delay and one
// Recv — two scheduler events per hop and no payload work. events/sec is
// the headline metric the BENCH_sim.json gate pins; everything the comm
// engine simulates is built from exactly these hops.
func BenchmarkSimThroughput(b *testing.B) {
	const procs = 64
	hops := b.N
	env := NewEnv()
	qs := make([]*Queue, procs)
	for i := range qs {
		qs[i] = NewQueue(env, "q")
	}
	for i := 0; i < procs; i++ {
		i := i
		env.Spawn("p", func(p *Proc) {
			for {
				v := p.Recv(qs[i])
				n := v.(int)
				if n <= 0 {
					if n == 0 {
						qs[(i+1)%procs].Send(-1)
					}
					return
				}
				p.Delay(1e-6)
				qs[(i+1)%procs].Send(n - 1)
			}
		})
	}
	b.ResetTimer()
	qs[0].Send(hops)
	env.Run()
	b.StopTimer()
	env.Close()
	// Each hop is two events (queue wake-up + delay expiry).
	b.ReportMetric(float64(2*hops)*float64(1e9)/float64(b.Elapsed().Nanoseconds()), "events/sec")
}

// BenchmarkSimSteadyStateAllocs reports allocations per event on the
// kernel's hot path (ping-pong over a queue); the companion
// TestSteadyStateZeroAllocs pins it at zero.
func BenchmarkSimSteadyStateAllocs(b *testing.B) {
	env := NewEnv()
	q := NewQueue(env, "q")
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1e-6)
		}
		q.Send(struct{}{})
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
	b.StopTimer()
	env.Close()
}
