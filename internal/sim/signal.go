package sim

// Signal is a one-shot broadcast flag, the simulated analogue of closing a
// channel: it starts unfired, fires exactly once, and once fired it stays
// fired forever. Processes observe it either by polling Fired or by
// sleeping interruptibly against it — the cancellation primitive that lets
// an in-flight transfer be cut short when its destination is declared dead.
type Signal struct {
	env     *Env
	name    string
	fired   bool
	waiters []*Proc
}

// NewSignal creates an unfired signal bound to env.
func NewSignal(env *Env, name string) *Signal {
	return &Signal{env: env, name: name}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire fires the signal and wakes every process sleeping against it at the
// current instant. Firing twice is a no-op. Fire may be called from any
// process (or from outside the simulation, before Run).
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.env.schedule(s.env.now, w)
	}
}

// removeWaiter unregisters p if it is still waiting (Fire clears the whole
// list, so p may already be gone).
func (s *Signal) removeWaiter(p *Proc) {
	for i, w := range s.waiters {
		if w == p {
			copy(s.waiters[i:], s.waiters[i+1:])
			s.waiters[len(s.waiters)-1] = nil
			s.waiters = s.waiters[:len(s.waiters)-1]
			return
		}
	}
}

// SleepInterruptible advances p by up to d simulated seconds, returning
// early if s fires first. It reports whether the sleep was interrupted
// (true: s fired — possibly before the call — and less than d may have
// elapsed; false: the full d elapsed with s unfired). A nil signal makes it
// a plain Delay. The caller keeps responsibility for releasing anything it
// holds — an interrupted transfer must still release its Resource segments.
func (p *Proc) SleepInterruptible(d float64, s *Signal) bool {
	if s == nil {
		p.Delay(d)
		return false
	}
	if s.fired {
		return true
	}
	if d < 0 {
		panic("sim: negative delay in " + p.name)
	}
	deadline := p.env.now + d
	for !s.fired && p.env.now < deadline {
		s.waiters = append(s.waiters, p)
		p.env.schedule(deadline, p)
		p.block()
		s.removeWaiter(p)
	}
	return s.fired
}
