// Package sim is a deterministic discrete-event simulation kernel. Simulated
// entities (GPU workers, parameter-server masters, KNL nodes) run as
// goroutine-backed processes that advance a shared virtual clock by calling
// Delay and block on each other through Queues, Resources and Barriers.
//
// Exactly one process executes at any instant and the event heap breaks
// timestamp ties by schedule order, so a simulation is a pure function of
// its inputs: the same seeds produce bit-identical traces. This is what
// makes the paper's determinism claims (Sync EASGD is "deterministic and
// reproducible") testable, and what lets Hogwild's lock-free races be
// modeled reproducibly.
//
// The scheduler hands control directly from a blocking process to the next
// runnable one: whichever goroutine holds the execution token pops the next
// event itself and resumes its owner, so each event costs one goroutine
// hand-off rather than a round-trip through a central loop. Wake-ups
// scheduled for the current instant bypass the heap through a FIFO ready
// ring, and the heap stores concrete event values — the steady-state event
// path performs no allocations (pinned by TestSteadyStateZeroAllocs).
//
// Blocking waits compose with failure handling without giving up
// determinism: RecvMatchTimeout and Queue deadlines bound a wait by
// virtual time, Signal plus SleepInterruptible let one process cut
// another's sleep short (generation-stamped wake-ups keep a stale timer
// from firing into a later wait), and Dice derives per-decision random
// draws from a seed and explicit keys rather than from event order. These
// are the primitives the comm layer's ack/retry delivery and
// survivor-aware collectives are built on.
package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// abortSignal is panicked inside process goroutines woken by Close so they
// unwind and exit; the process wrapper recovers it.
type abortSignal struct{}

// Proc is a simulated process. All blocking operations must be called from
// the process's own goroutine.
type Proc struct {
	env  *Env
	name string
	done bool
	err  any // non-nil if the process panicked with a real error

	granted bool // a Resource unit was handed to this proc by Release

	// gen numbers the process's wake-ups. Every scheduled wake-up is
	// stamped with the gen current at schedule time and the gen advances
	// each time the process resumes, so when a process holds several
	// pending wake-ups at once — a deadline timer racing a queue delivery
	// or a cancellation signal — the first to fire invalidates the rest
	// and a process is never resumed twice for one block.
	gen int64

	// resume carries the execution token. Buffered so the holder can
	// enqueue the token and park itself without a rendezvous.
	resume chan struct{}
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create with NewEnv, add processes with Spawn, then call Run.
type Env struct {
	now float64
	seq int64

	events eventHeap // future wake-ups, min (at, seq) first

	// ready holds wake-ups scheduled for the current instant in seq order;
	// they bypass the heap (a barrier release or queue broadcast wakes many
	// processes at one instant, and each would otherwise pay a heap
	// push+pop). Entries before readyAt have been consumed.
	ready   []readyEntry
	readyAt int

	// driver receives the execution token when no event is runnable (heap
	// drained or horizon reached) or a process failed, returning control to
	// the Run caller.
	driver  chan struct{}
	failed  *Proc   // process whose panic Run must re-raise
	horizon float64 // active RunUntil horizon, -1 for none

	procs  []*Proc
	closed bool

	// fired counts executed wake-ups — every time a process is resumed by
	// the scheduler. The count is a pure function of the simulation's
	// inputs (it inherits the kernel's determinism), which makes it a
	// machine-independent proxy for scheduler work: the benchmark gate
	// pins the fault-free P=1024 collective's event count exactly, so any
	// machinery leaking extra events into the fast path (ack round-trips,
	// timeout timers) trips CI deterministically rather than hiding in
	// wall-clock noise.
	fired int64
}

type event struct {
	at  float64
	seq int64
	gen int64
	p   *Proc
}

type readyEntry struct {
	seq int64
	gen int64
	p   *Proc
}

// eventHeap is a concrete-typed binary min-heap ordered by (at, seq). It
// deliberately does not implement container/heap: the interface's
// any-typed Push/Pop box every event (one allocation each way), which
// dominated the kernel's steady-state cost.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// NewEnv creates an empty simulation environment at time 0.
func NewEnv() *Env {
	return &Env{driver: make(chan struct{}, 1), horizon: -1}
}

// Now returns the current simulated time in seconds.
func (e *Env) Now() float64 { return e.now }

// Events returns the number of wake-ups executed so far — the
// deterministic measure of scheduler work (see the fired field).
func (e *Env) Events() int64 { return e.fired }

// worker is a pooled goroutine that runs process bodies. Short simulations
// spawn thousands of processes (one per simulated rank); recycling the
// goroutines across Env instances amortizes both the spawn cost and —
// more importantly — the stack growth each process pays on its first deep
// call chain. A finalizer closes the task channel when the pool drops a
// worker, so its goroutine exits instead of leaking.
type worker struct {
	tasks chan func()
}

var workerPool sync.Pool

func init() {
	workerPool.New = func() any {
		w := &worker{tasks: make(chan func(), 1)}
		go func() {
			for fn := range w.tasks {
				fn()
				workerPool.Put(w)
			}
		}()
		runtime.SetFinalizer(w, func(w *worker) { close(w.tasks) })
		return w
	}
}

// Spawn registers a new process whose body starts executing at the current
// simulated time. It may be called before Run or from inside a running
// process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{}, 1)}
	e.procs = append(e.procs, p)
	w := workerPool.Get().(*worker)
	w.tasks <- func() {
		<-p.resume
		p.gen++
		defer func() {
			p.done = true
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					p.err = r
					e.failed = p
				}
				// Aborting or failed: hand the token straight back to the
				// driver (Close drives aborts; Run re-panics failures).
				e.driver <- struct{}{}
				return
			}
			e.dispatch()
		}()
		if e.closed {
			panic(abortSignal{})
		}
		fn(p)
	}
	e.schedule(e.now, p)
	return p
}

// schedule enqueues a wake-up for p at time at. Wake-ups for the current
// instant go to the ready ring; future ones to the heap. Each wake-up is
// stamped with p's current generation; it fires only if p has not resumed
// in the meantime.
func (e *Env) schedule(at float64, p *Proc) {
	e.seq++
	if at == e.now {
		e.ready = append(e.ready, readyEntry{seq: e.seq, gen: p.gen, p: p})
		return
	}
	e.events.push(event{at: at, seq: e.seq, gen: p.gen, p: p})
}

// next pops the earliest runnable wake-up in (at, seq) order, advancing the
// clock, skipping stale entries for finished processes and stopping at the
// active horizon. It returns nil when nothing is runnable.
func (e *Env) next() *Proc {
	for {
		if e.readyAt < len(e.ready) {
			if e.horizon >= 0 && e.now > e.horizon {
				return nil
			}
			re := e.ready[e.readyAt]
			// Heap events at the current instant with smaller seq were
			// scheduled earlier and run first.
			if len(e.events) == 0 || e.events[0].at > e.now || e.events[0].seq > re.seq {
				e.readyAt++
				if e.readyAt == len(e.ready) {
					e.ready = e.ready[:0]
					e.readyAt = 0
				}
				if re.p.done || re.gen != re.p.gen {
					continue
				}
				e.fired++
				return re.p
			}
		} else if len(e.events) == 0 {
			return nil
		}
		ev := e.events[0]
		if e.horizon >= 0 && ev.at > e.horizon {
			return nil
		}
		e.events.pop()
		if ev.p.done || ev.gen != ev.p.gen {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", e.now, ev.at))
		}
		e.now = ev.at
		e.fired++
		return ev.p
	}
}

// dispatch hands the execution token to the next runnable process, or back
// to the driver when none remains. Called by a process that is blocking or
// finishing, and by Run to start a chain.
func (e *Env) dispatch() {
	if p := e.next(); p != nil {
		p.resume <- struct{}{}
		return
	}
	e.driver <- struct{}{}
}

// Run executes events until none remain. It returns the final simulated
// time. If a process panicked, Run re-panics with its value. Processes that
// remain blocked on Queues or Resources when the event heap drains are left
// suspended; use Close to reap them.
func (e *Env) Run() float64 {
	return e.RunUntil(-1)
}

// RunUntil executes events until the heap is empty or the next event is
// later than horizon (horizon < 0 means no limit). The clock never exceeds
// the last executed event's time.
func (e *Env) RunUntil(horizon float64) float64 {
	if e.closed {
		panic("sim: Run on closed Env")
	}
	if horizon >= 0 {
		e.horizon = horizon
	} else {
		e.horizon = -1
	}
	for {
		p := e.next()
		if p == nil {
			e.horizon = -1
			return e.now
		}
		p.resume <- struct{}{}
		<-e.driver
		if e.failed != nil {
			f := e.failed
			e.failed = nil
			e.horizon = -1
			panic(f.err)
		}
	}
}

// Close wakes every still-blocked process with an abort so its goroutine
// exits, then marks the environment unusable. Call it when a simulation is
// abandoned early (or defensively after Run) to avoid leaking goroutines.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// Drain pending wake-ups first: resuming a proc that also has a stale
	// event would double-resume it.
	e.events = nil
	e.ready = nil
	e.readyAt = 0
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.driver
	}
}

// Completion is the join handle returned by Fork.
type Completion struct {
	q    *Queue
	done bool
}

// Wait blocks p until the forked process has finished. Calling it again
// after completion returns immediately. Only one process may wait on a
// Completion.
func (c *Completion) Wait(p *Proc) {
	if c.done {
		return
	}
	p.Recv(c.q)
	c.done = true
}

// Fork spawns fn as a new process starting at the current simulated time
// and returns a Completion another process can Wait on. It is the
// overlap primitive: Sync EASGD3 forks its broadcast so the message waves
// run concurrently with the data copy and forward/backward, and the join
// exposes only the excess.
func (e *Env) Fork(name string, fn func(p *Proc)) *Completion {
	c := &Completion{q: NewQueue(e, name+".done")}
	e.Spawn(name, func(p *Proc) {
		fn(p)
		c.q.Send(struct{}{})
	})
	return c
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.env.now }

// block suspends the process until the scheduler resumes it, handing the
// execution token to the next runnable process. All blocking primitives
// funnel through here so Close-aborts are handled uniformly.
func (p *Proc) block() {
	p.env.dispatch()
	<-p.resume
	p.gen++
	if p.env.closed {
		panic(abortSignal{})
	}
}

// Delay advances the process by d simulated seconds. Negative delays panic.
func (p *Proc) Delay(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v in %s", d, p.name))
	}
	p.env.schedule(p.env.now+d, p)
	p.block()
}

// Yield reschedules the process at the current time behind any other events
// already queued for this instant, giving cooperative round-robin among
// same-time processes.
func (p *Proc) Yield() {
	p.env.schedule(p.env.now, p)
	p.block()
}
