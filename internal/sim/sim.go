// Package sim is a deterministic discrete-event simulation kernel. Simulated
// entities (GPU workers, parameter-server masters, KNL nodes) run as
// goroutine-backed processes that advance a shared virtual clock by calling
// Delay and block on each other through Queues, Resources and Barriers.
//
// Exactly one process executes at any instant and the event heap breaks
// timestamp ties by schedule order, so a simulation is a pure function of
// its inputs: the same seeds produce bit-identical traces. This is what
// makes the paper's determinism claims (Sync EASGD is "deterministic and
// reproducible") testable, and what lets Hogwild's lock-free races be
// modeled reproducibly.
package sim

import (
	"container/heap"
	"fmt"
)

// errAbort is panicked inside process goroutines woken by Close so they
// unwind and exit; the process wrapper recovers it.
type abortSignal struct{}

// Proc is a simulated process. All blocking operations must be called from
// the process's own goroutine.
type Proc struct {
	env  *Env
	name string
	done bool
	err  any // non-nil if the process panicked with a real error

	resume chan struct{}
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create with NewEnv, add processes with Spawn, then call Run.
type Env struct {
	now    float64
	seq    int64
	events eventHeap
	yield  chan struct{}
	procs  []*Proc
	alive  int
	closed bool
}

type event struct {
	at  float64
	seq int64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEnv creates an empty simulation environment at time 0.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Env) Now() float64 { return e.now }

// Spawn registers a new process whose body starts executing at the current
// simulated time. It may be called before Run or from inside a running
// process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.alive++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					p.err = r
				}
			}
			p.done = true
			e.yield <- struct{}{}
		}()
		if e.closed {
			panic(abortSignal{})
		}
		fn(p)
	}()
	e.schedule(e.now, p)
	return p
}

// schedule enqueues a wake-up for p at time at.
func (e *Env) schedule(at float64, p *Proc) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, p: p})
}

// Run executes events until none remain. It returns the final simulated
// time. If a process panicked, Run re-panics with its value. Processes that
// remain blocked on Queues or Resources when the event heap drains are left
// suspended; use Close to reap them.
func (e *Env) Run() float64 {
	return e.RunUntil(-1)
}

// RunUntil executes events until the heap is empty or the next event is
// later than horizon (horizon < 0 means no limit). The clock never exceeds
// the last executed event's time.
func (e *Env) RunUntil(horizon float64) float64 {
	if e.closed {
		panic("sim: Run on closed Env")
	}
	for e.events.Len() > 0 {
		ev := e.events[0]
		if horizon >= 0 && ev.at > horizon {
			break
		}
		heap.Pop(&e.events)
		if ev.p.done {
			continue // stale wake-up for a finished process
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", e.now, ev.at))
		}
		e.now = ev.at
		ev.p.resume <- struct{}{}
		<-e.yield
		if ev.p.err != nil {
			panic(ev.p.err)
		}
	}
	return e.now
}

// Close wakes every still-blocked process with an abort so its goroutine
// exits, then marks the environment unusable. Call it when a simulation is
// abandoned early (or defensively after Run) to avoid leaking goroutines.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// Drain pending wake-ups first: resuming a proc that also has a stale
	// event would double-resume it.
	e.events = nil
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.yield
	}
}

// Completion is the join handle returned by Fork.
type Completion struct {
	q    *Queue
	done bool
}

// Wait blocks p until the forked process has finished. Calling it again
// after completion returns immediately. Only one process may wait on a
// Completion.
func (c *Completion) Wait(p *Proc) {
	if c.done {
		return
	}
	p.Recv(c.q)
	c.done = true
}

// Fork spawns fn as a new process starting at the current simulated time
// and returns a Completion another process can Wait on. It is the
// overlap primitive: Sync EASGD3 forks its broadcast so the message waves
// run concurrently with the data copy and forward/backward, and the join
// exposes only the excess.
func (e *Env) Fork(name string, fn func(p *Proc)) *Completion {
	c := &Completion{q: NewQueue(e, name+".done")}
	e.Spawn(name, func(p *Proc) {
		fn(p)
		c.q.Send(struct{}{})
	})
	return c
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.env.now }

// block suspends the process until the scheduler resumes it. All blocking
// primitives funnel through here so Close-aborts are handled uniformly.
func (p *Proc) block() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.env.closed {
		panic(abortSignal{})
	}
}

// Delay advances the process by d simulated seconds. Negative delays panic.
func (p *Proc) Delay(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v in %s", d, p.name))
	}
	p.env.schedule(p.env.now+d, p)
	p.block()
}

// Yield reschedules the process at the current time behind any other events
// already queued for this instant, giving cooperative round-robin among
// same-time processes.
func (p *Proc) Yield() {
	p.env.schedule(p.env.now, p)
	p.block()
}
