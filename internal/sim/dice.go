package sim

// Dice is a seeded, order-independent random plan. Each Roll hashes the
// seed together with the caller's identity keys (a splitmix64-style
// finalizer per key) to a uniform value in [0, 1), so the outcome of a
// decision — "is message #k from src to dst lost?" — depends only on the
// seed and the keys, never on the order rolls happen to be made in. That
// is what keeps injected chaos deterministic: two runs with the same seed
// lose and garble exactly the same messages even if retries and
// cancellations reorder every other event around them.
type Dice struct {
	seed uint64
}

// NewDice creates a dice plan from a seed. Equal seeds give identical
// plans; any seed (including 0) is valid.
func NewDice(seed int64) *Dice {
	return &Dice{seed: mix64(uint64(seed) ^ 0x9e3779b97f4a7c15)}
}

// Roll returns the uniform [0, 1) value assigned to the given keys.
func (d *Dice) Roll(keys ...int64) float64 {
	x := d.seed
	for _, k := range keys {
		x = mix64(x ^ uint64(k))
	}
	// 53 high-quality bits -> [0, 1).
	return float64(x>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
