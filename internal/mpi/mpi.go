// Package mpi is a rank-based message-passing runtime on top of the
// discrete-event simulator — the stand-in for the MPI library the paper's
// KNL-cluster code uses. Unlike the closed-form cost functions in
// internal/comm (which coordinator-style algorithms charge analytically),
// this package executes collectives as real message exchanges between
// simulated rank processes: a binomial-tree broadcast really sends
// log₂(P) waves of point-to-point messages, each paying the link's α-β
// cost, and the data really moves. Algorithms written against it (such as
// Algorithm 4, Communication-Efficient EASGD on a KNL cluster) therefore
// get both the timing and the data semantics of their MPI originals.
package mpi

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

// World is a communicator over P ranks.
type World struct {
	env   *sim.Env
	size  int
	link  comm.Transferer
	boxes [][]*sim.Queue // boxes[dst][src] is the queue src→dst
}

// NewWorld creates a communicator with the given link model. Every ordered
// rank pair gets its own mailbox, so matching is by (source, destination)
// exactly as in MPI point-to-point semantics.
func NewWorld(env *sim.Env, size int, link comm.Transferer) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{env: env, size: size, link: link, boxes: make([][]*sim.Queue, size)}
	for dst := 0; dst < size; dst++ {
		w.boxes[dst] = make([]*sim.Queue, size)
		for src := 0; src < size; src++ {
			w.boxes[dst][src] = sim.NewQueue(env, fmt.Sprintf("mpi-%d<-%d", dst, src))
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank is one process's endpoint into the world.
type Rank struct {
	w  *World
	id int
	p  *sim.Proc
}

// Spawn starts one goroutine-process per rank running body(rank). It
// returns after registering the processes; drive them with env.Run.
func (w *World) Spawn(name string, body func(r *Rank)) {
	for i := 0; i < w.size; i++ {
		id := i
		w.env.Spawn(fmt.Sprintf("%s-rank%d", name, id), func(p *sim.Proc) {
			body(&Rank{w: w, id: id, p: p})
		})
	}
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Proc exposes the underlying simulated process (for Delay etc.).
func (r *Rank) Proc() *sim.Proc { return r.p }

// Now returns the current simulated time.
func (r *Rank) Now() float64 { return r.p.Now() }

// message is what travels between ranks.
type message struct {
	tag  int
	data []float32
}

// Send transmits data to rank dst with the given tag. The sender blocks for
// the link transfer time of len(data) float32s; the payload is copied so
// the sender may reuse its buffer immediately (MPI buffered-send
// semantics).
func (r *Rank) Send(dst, tag int, data []float32) {
	if dst < 0 || dst >= r.w.size {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dst, r.w.size))
	}
	if dst == r.id {
		panic("mpi: send to self")
	}
	r.p.Delay(r.w.link.Time(int64(len(data)) * 4))
	r.w.boxes[dst][r.id].Send(message{tag: tag, data: append([]float32(nil), data...)})
}

// Recv blocks until a message with the given tag arrives from src and
// returns its payload. Out-of-order tags from the same source are an error
// (the algorithms here use strictly matched phases, like the paper's).
func (r *Rank) Recv(src, tag int) []float32 {
	m := r.p.Recv(r.w.boxes[r.id][src]).(message)
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", r.id, tag, src, m.tag))
	}
	return m.data
}

// Collective tags are spaced so phases never collide.
const (
	tagReduce = 1 << 20
	tagBcast  = 2 << 20
	tagGather = 3 << 20
)

// Reduce performs a binomial-tree sum-reduction to root. Every rank calls
// it with its contribution in buf; on the root, buf holds the elementwise
// sum afterwards (deterministic combine order: children are merged in
// increasing round order). Other ranks' buffers are unchanged. round
// identifies the collective instance (use the iteration number).
func (r *Rank) Reduce(root, round int, buf []float32) {
	if r.w.size == 1 {
		return
	}
	// Rotate ranks so the root acts as virtual rank 0.
	vr := (r.id - root + r.w.size) % r.w.size
	tag := tagReduce + round
	for step := 1; step < r.w.size; step <<= 1 {
		if vr&step != 0 {
			// Send to the partner below and exit the tree.
			partner := ((vr - step) + r.w.size) % r.w.size
			r.Send((partner+root)%r.w.size, tag, buf)
			return
		}
		partner := vr + step
		if partner < r.w.size {
			data := r.Recv((partner+root)%r.w.size, tag)
			tensor.AXPY(1, data, buf)
		}
	}
}

// Bcast distributes the root's buf to every rank's buf via a binomial tree
// (the classic MPICH algorithm: each rank receives once from the partner at
// its lowest set bit, then forwards to all lower-bit partners).
func (r *Rank) Bcast(root, round int, buf []float32) {
	if r.w.size == 1 {
		return
	}
	vr := (r.id - root + r.w.size) % r.w.size
	tag := tagBcast + round
	mask := 1
	for mask < r.w.size {
		if vr&mask != 0 {
			src := vr - mask
			data := r.Recv((src+root)%r.w.size, tag)
			copy(buf, data)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask >= 1 {
		if partner := vr + mask; partner < r.w.size {
			r.Send((partner+root)%r.w.size, tag, buf)
		}
		mask >>= 1
	}
}

// AllReduce is Reduce to rank 0 followed by Bcast from rank 0: the
// composite Sync EASGD / Algorithm 4 performs every iteration.
func (r *Rank) AllReduce(round int, buf []float32) {
	r.Reduce(0, round, buf)
	r.Bcast(0, round, buf)
}

// Gather collects every rank's buf at the root, which receives them in
// rank order into parts (len = world size; the root's own contribution is
// copied). Non-root ranks send directly (linear gather, as small control
// payloads use).
func (r *Rank) Gather(root, round int, buf []float32, parts [][]float32) {
	tag := tagGather + round
	if r.id != root {
		r.Send(root, tag, buf)
		return
	}
	for src := 0; src < r.w.size; src++ {
		if src == root {
			parts[src] = append(parts[src][:0], buf...)
			continue
		}
		parts[src] = append(parts[src][:0], r.Recv(src, tag)...)
	}
}

// Barrier synchronizes all ranks via a zero-byte allreduce.
func (r *Rank) Barrier(round int) {
	z := []float32{0}
	r.AllReduce(round, z)
}

// ---- size-only variants ----
//
// Cost-only experiments (Table 4 scale: 575 MB models × dozens of ranks)
// must not materialize payloads; these walk the same trees and charge the
// same α-β costs while moving no data.

// SendBytes transmits a size-only message.
func (r *Rank) SendBytes(dst, tag int, nbytes int64) {
	if dst < 0 || dst >= r.w.size || dst == r.id {
		panic(fmt.Sprintf("mpi: SendBytes to rank %d from %d of %d", dst, r.id, r.w.size))
	}
	r.p.Delay(r.w.link.Time(nbytes))
	r.w.boxes[dst][r.id].Send(message{tag: tag})
}

// RecvBytes receives a size-only message.
func (r *Rank) RecvBytes(src, tag int) {
	m := r.p.Recv(r.w.boxes[r.id][src]).(message)
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", r.id, tag, src, m.tag))
	}
}

// ReduceBytes walks the binomial reduction tree with size-only messages.
func (r *Rank) ReduceBytes(root, round int, nbytes int64) {
	if r.w.size == 1 {
		return
	}
	vr := (r.id - root + r.w.size) % r.w.size
	tag := tagReduce + round
	for step := 1; step < r.w.size; step <<= 1 {
		if vr&step != 0 {
			partner := ((vr - step) + r.w.size) % r.w.size
			r.SendBytes((partner+root)%r.w.size, tag, nbytes)
			return
		}
		if partner := vr + step; partner < r.w.size {
			r.RecvBytes((partner+root)%r.w.size, tag)
		}
	}
}

// BcastBytes walks the binomial broadcast tree with size-only messages.
func (r *Rank) BcastBytes(root, round int, nbytes int64) {
	if r.w.size == 1 {
		return
	}
	vr := (r.id - root + r.w.size) % r.w.size
	tag := tagBcast + round
	mask := 1
	for mask < r.w.size {
		if vr&mask != 0 {
			r.RecvBytes(((vr-mask)+root)%r.w.size, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask >= 1 {
		if partner := vr + mask; partner < r.w.size {
			r.SendBytes((partner+root)%r.w.size, tag, nbytes)
		}
		mask >>= 1
	}
}

// AllReduceBytes is ReduceBytes + BcastBytes.
func (r *Rank) AllReduceBytes(round int, nbytes int64) {
	r.ReduceBytes(0, round, nbytes)
	r.BcastBytes(0, round, nbytes)
}
