package mpi

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"scaledl/internal/hw"
	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

var testLink = hw.Link{Name: "test", Alpha: 1e-6, Beta: 1e-9}

func TestPointToPoint(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, testLink)
	var got []float32
	var recvAt float64
	w.Spawn("p2p", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []float32{1, 2, 3})
		} else {
			got = r.Recv(0, 7)
			recvAt = r.Now()
		}
	})
	env.Run()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("payload %v", got)
	}
	want := testLink.Time(12)
	if math.Abs(recvAt-want) > 1e-15 {
		t.Errorf("received at %v, want %v", recvAt, want)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, testLink)
	buf := []float32{42}
	var got []float32
	w.Spawn("copy", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, buf)
			buf[0] = -1 // mutate after send; receiver must see 42
		} else {
			got = r.Recv(0, 1)
		}
	})
	env.Run()
	if got[0] != 42 {
		t.Fatalf("send did not copy: got %v", got[0])
	}
}

func TestSendToSelfPanics(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, testLink)
	w.Spawn("self", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(0, 1, []float32{1})
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("send to self did not panic")
		}
	}()
	env.Run()
}

// reduceCase runs a Reduce over size ranks rooted at root and checks the
// root sees the elementwise sum.
func reduceCase(t *testing.T, size, root int) {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, size, testLink)
	n := 16
	var rootResult []float32
	w.Spawn("red", func(r *Rank) {
		buf := make([]float32, n)
		for i := range buf {
			buf[i] = float32(r.ID() + 1)
		}
		r.Reduce(root, 0, buf)
		if r.ID() == root {
			rootResult = append([]float32(nil), buf...)
		}
	})
	env.Run()
	want := float32(size * (size + 1) / 2)
	for i, v := range rootResult {
		if v != want {
			t.Fatalf("size=%d root=%d: sum[%d] = %v, want %v", size, root, i, v, want)
		}
	}
}

func TestReduceSums(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16} {
		for _, root := range []int{0, size - 1} {
			reduceCase(t, size, root)
		}
	}
}

func bcastCase(t *testing.T, size, root int) {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, size, testLink)
	n := 8
	results := make([][]float32, size)
	w.Spawn("bc", func(r *Rank) {
		buf := make([]float32, n)
		if r.ID() == root {
			for i := range buf {
				buf[i] = float32(100 + i)
			}
		}
		r.Bcast(root, 0, buf)
		results[r.ID()] = append([]float32(nil), buf...)
	})
	env.Run()
	for id, res := range results {
		for i, v := range res {
			if v != float32(100+i) {
				t.Fatalf("size=%d root=%d rank=%d: buf[%d]=%v", size, root, id, i, v)
			}
		}
	}
}

func TestBcastDistributes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		for _, root := range []int{0, size / 2, size - 1} {
			bcastCase(t, size, root)
		}
	}
}

func TestAllReduce(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	size := 6
	w := NewWorld(env, size, testLink)
	results := make([]float32, size)
	w.Spawn("ar", func(r *Rank) {
		buf := []float32{float32(r.ID() + 1)}
		r.AllReduce(0, buf)
		results[r.ID()] = buf[0]
	})
	env.Run()
	want := float32(size * (size + 1) / 2)
	for id, v := range results {
		if v != want {
			t.Fatalf("rank %d got %v, want %v", id, v, want)
		}
	}
}

func TestGather(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	size := 5
	w := NewWorld(env, size, testLink)
	parts := make([][]float32, size)
	w.Spawn("ga", func(r *Rank) {
		buf := []float32{float32(r.ID() * 10)}
		r.Gather(2, 0, buf, parts)
	})
	env.Run()
	for i, p := range parts {
		if len(p) != 1 || p[0] != float32(i*10) {
			t.Fatalf("parts[%d] = %v", i, p)
		}
	}
}

func TestBarrierSynchronizesRanks(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	size := 4
	w := NewWorld(env, size, testLink)
	var after []float64
	w.Spawn("bar", func(r *Rank) {
		r.Proc().Delay(float64(r.ID()+1) * 0.001)
		r.Barrier(0)
		after = append(after, r.Now())
	})
	env.Run()
	for _, ts := range after {
		if ts < 0.004 {
			t.Errorf("rank crossed barrier at %v before slowest arrival 0.004", ts)
		}
	}
}

// Property: the tree collectives complete in O(log P) link times, not
// O(P) — the paper's complexity claim, now measured on real message waves.
func TestTreeDepthScaling(t *testing.T) {
	n := int64(1 << 20)
	per := testLink.Time(n)
	for _, size := range []int{2, 4, 8, 16, 32, 64} {
		env := sim.NewEnv()
		w := NewWorld(env, size, testLink)
		w.Spawn("depth", func(r *Rank) {
			r.BcastBytes(0, 0, n)
		})
		end := env.Run()
		env.Close()
		rounds := math.Ceil(math.Log2(float64(size)))
		// Sends from one parent serialize, so depth can exceed log2(P)
		// slightly, but must stay far below the linear P-1.
		if end > (rounds+2)*per*1.5 {
			t.Errorf("size=%d: bcast took %v, more than ~log2(P) waves (%v each)", size, end, per)
		}
		if float64(size) > 4 && end > float64(size-1)*per*0.75 {
			t.Errorf("size=%d: bcast time %v looks linear in P", size, end)
		}
	}
}

// Property: reduce result is invariant to root choice (up to float
// association, exact here with integer-valued floats).
func TestReduceRootInvarianceProperty(t *testing.T) {
	f := func(sizeRaw, rootRaw uint8) bool {
		size := int(sizeRaw%12) + 1
		root := int(rootRaw) % size
		env := sim.NewEnv()
		defer env.Close()
		w := NewWorld(env, size, testLink)
		var got float32
		w.Spawn("ri", func(r *Rank) {
			buf := []float32{float32(r.ID() + 1)}
			r.Reduce(root, 0, buf)
			if r.ID() == root {
				got = buf[0]
			}
		})
		env.Run()
		return got == float32(size*(size+1)/2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: size-only collectives take exactly as long as the payload
// versions for equal byte counts.
func TestBytesVariantsMatchTimedCost(t *testing.T) {
	for _, size := range []int{2, 5, 8, 11} {
		elems := 1024
		runReal := func() float64 {
			env := sim.NewEnv()
			defer env.Close()
			w := NewWorld(env, size, testLink)
			w.Spawn("real", func(r *Rank) {
				buf := make([]float32, elems)
				r.AllReduce(0, buf)
			})
			return env.Run()
		}
		runBytes := func() float64 {
			env := sim.NewEnv()
			defer env.Close()
			w := NewWorld(env, size, testLink)
			w.Spawn("bytes", func(r *Rank) {
				r.AllReduceBytes(0, int64(elems)*4)
			})
			return env.Run()
		}
		a, b := runReal(), runBytes()
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("size=%d: payload allreduce %v != size-only %v", size, a, b)
		}
	}
}

func TestReduceDeterministicSummationOrder(t *testing.T) {
	// Float reduction order is fixed by the tree, so repeated runs give
	// bit-identical results even with values that do not associate.
	run := func() []float32 {
		env := sim.NewEnv()
		defer env.Close()
		size := 7
		w := NewWorld(env, size, testLink)
		var out []float32
		w.Spawn("det", func(r *Rank) {
			g := tensor.NewRNG(int64(r.ID()) + 1)
			buf := make([]float32, 64)
			g.FillNormal(buf, 0, 1e8) // magnitudes that expose association order
			r.Reduce(0, 0, buf)
			if r.ID() == 0 {
				out = append([]float32(nil), buf...)
			}
		})
		env.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reduction nondeterministic at %d", i)
		}
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(sim.NewEnv(), 0, testLink)
}

func TestMismatchedTagPanics(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 2, testLink)
	w.Spawn("tag", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, []float32{1})
		} else {
			r.Recv(0, 6)
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("tag mismatch did not panic")
		}
	}()
	env.Run()
}

func ExampleWorld() {
	env := sim.NewEnv()
	defer env.Close()
	w := NewWorld(env, 4, hw.MellanoxFDR)
	w.Spawn("example", func(r *Rank) {
		buf := []float32{float32(r.ID())}
		r.AllReduce(0, buf)
		if r.ID() == 0 {
			fmt.Printf("sum over ranks: %v\n", buf[0])
		}
	})
	env.Run()
	// Output: sum over ranks: 6
}
