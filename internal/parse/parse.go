// Package parse holds the one error type shared by every strict
// name-to-enum parser in the module (comm modes, collective schedules,
// compute precisions, compression schemes, fail modes). Each parser used
// to invent its own error text; routing them all through Error means
// scaledl-train and scaledl-serve print flag mistakes the same way, and
// callers can recover the allowed set programmatically instead of
// scraping the message.
package parse

import (
	"fmt"
	"strings"
)

// Error reports a value that is not in a parser's allowed set. It is
// exported through the facade as scaledl.ParseError; flag-parsing code
// can errors.As into it to retrieve the allowed names.
type Error struct {
	Field   string   // what was being parsed, e.g. "comm mode"
	Value   string   // the rejected input
	Allowed []string // the complete set of accepted names
}

// Errorf builds an *Error for the given field, rejected value and
// allowed names.
func Errorf(field, value string, allowed []string) *Error {
	return &Error{Field: field, Value: value, Allowed: allowed}
}

func (e *Error) Error() string {
	return fmt.Sprintf("unknown %s %q (one of %s)", e.Field, e.Value, strings.Join(e.Allowed, ", "))
}
