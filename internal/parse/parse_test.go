package parse

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorText(t *testing.T) {
	err := Errorf("comm mode", "warp", []string{"dense", "sfb", "hybrid"})
	want := `unknown comm mode "warp" (one of dense, sfb, hybrid)`
	if err.Error() != want {
		t.Errorf("got %q, want %q", err.Error(), want)
	}
}

func TestErrorsAs(t *testing.T) {
	var wrapped error = fmt.Errorf("flag -mode: %w", Errorf("mode", "x", []string{"a", "b"}))
	var pe *Error
	if !errors.As(wrapped, &pe) {
		t.Fatal("errors.As failed through wrapping")
	}
	if pe.Field != "mode" || pe.Value != "x" || len(pe.Allowed) != 2 {
		t.Errorf("fields lost through wrapping: %+v", pe)
	}
}
