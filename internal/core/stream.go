package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/nn"
	"scaledl/internal/sim"
)

// This file is the layer-streaming gradient pipeline (Config.Overlap): the
// glue between nn's per-layer gradient-ready events, comm's Bucketizer and
// Range collectives, and the algorithms in sync.go / async.go /
// roundrobin.go / knlcluster.go.
//
// The dependency structure the paper's overlap exploits — and that Poseidon
// (wait-free backprop) and FireCaffe (per-layer reduction trees) build
// whole systems on — is that layer L's parameter gradient is final the
// moment layer L's backward completes, while layers L−1…0 are still
// computing. streamPlan.walk turns that structure into simulated time: the
// worker's real backward records its GradEvent stream
// (nn.Net.LossAndGradStream), and the walk replays that exact emission
// sequence on the virtual clock — each event charges its layer's backward
// share (per-layer FLOP split of computeTime), and the instant an event
// completes a bucket, the algorithm launches that bucket's communication in
// a forked process. Overlap is then *emergent*: the simulated step time
// falls below compute + full-collective exactly when (and because) bucket
// wire time fits under the remaining backward, not because any algorithm
// asserts a max().

// maxInFlightBuckets bounds how many bucket collectives one worker keeps in
// flight at once (the DMA/channel depth of real implementations): bucket
// k+1's messages may overlap bucket k's wire time, but a worker never
// floods the fabric with its whole backlog at once.
const maxInFlightBuckets = 2

// streamPlan precomputes the streaming pipeline of one run: the bucket
// layout over the communicator's plan, the per-layer time shares that
// convert the real event stream into virtual instants, and the
// layer→segment mapping that feeds events into buckets.
type streamPlan struct {
	bz      *comm.Bucketizer
	buckets []comm.Bucket
	compute float64 // full forward+backward time (== worker.computeTime)
	fwd     float64 // forward share: computeTime/3 (the standard 1:2 split)

	flops      []float64 // per nn layer, floored at 1 so every event takes a step
	totalFlops float64
	segOfLayer []int // nn layer index -> plan segment, -1 for parameter-free layers

	// wholeModel marks plans whose segments do not correspond to the
	// model's parameter layers (the compressed single-residual plan): such
	// payloads need the complete gradient, so every bucket is ready only at
	// backward completion.
	wholeModel bool
}

// newStream builds the streaming plan for a communicator plan.
func (rc *runContext) newStream(plan comm.Plan) *streamPlan {
	return rc.newStreamMasked(plan, nil)
}

// newStreamMasked builds the streaming plan with some plan segments masked
// out of the bucket stream — the hybrid comm mode's SFB layers, whose
// factors ride their own collective and fire through walkHybrid's onFactor
// instead of completing a bucket.
func (rc *runContext) newStreamMasked(plan comm.Plan, skip []bool) *streamPlan {
	if len(plan.LayerBytes) == 0 {
		// A parameter-free model moves no gradients; stream one empty
		// bucket so the pipeline shape (and round numbering) still holds.
		plan.LayerBytes = []int64{0}
		skip = nil
	}
	bz := comm.NewBucketizerMasked(plan, rc.cfg.BucketBytes, skip)
	sp := &streamPlan{
		bz:      bz,
		buckets: bz.Buckets(),
		compute: rc.workers[0].computeTime,
	}
	sp.fwd = sp.compute / 3
	if len(plan.LayerBytes) != len(rc.paramLayers) {
		sp.wholeModel = true
		return sp
	}
	sp.flops = make([]float64, len(rc.layerFlops))
	for i, f := range rc.layerFlops {
		sp.flops[i] = float64(f)
		if sp.flops[i] <= 0 {
			sp.flops[i] = 1 // parameter-free/zero-cost layers still take a step
		}
		sp.totalFlops += sp.flops[i]
	}
	sp.segOfLayer = make([]int, len(rc.layerFlops))
	for i := range sp.segOfLayer {
		sp.segOfLayer[i] = -1
	}
	for seg, layer := range rc.paramLayers {
		sp.segOfLayer[layer] = seg
	}
	return sp
}

// walk advances p through the streaming schedule of one minibatch. It
// starts the worker's real forward/backward on the par pool (recording the
// GradEvent stream), delays out the forward share, joins — the pool work is
// complete and the event sequence final before any gradient value or event
// can be observed — then replays the recorded events on the virtual clock:
// each event advances time by its layer's backward share, and the event
// that completes a bucket triggers onBucket at that instant. The emission
// order is therefore the real backward's, not a schedule derived on the
// side; the instants land so the total delayed time is exactly computeTime.
// scale stretches the whole walk uniformly (1 for nominal speed) — the
// fault model's heterogeneity and straggler factors slow forward and
// backward alike, so bucket-ready instants shift proportionally.
func (sp *streamPlan) walk(p *sim.Proc, w *worker, scale float64, onBucket func(b int, bk comm.Bucket)) float64 {
	return sp.walkHybrid(p, w, scale, onBucket, nil)
}

// walkHybrid is walk with a second emission channel for masked segments:
// a plan segment the bucketizer skipped (an SFB layer of the hybrid comm
// mode) belongs to no bucket, so its gradient-ready event fires onFactor at
// the layer's own ready instant — same clock formula as a bucket completion
// — handing the caller the event (whose DY/X factor views are live) to
// launch the factor collective. onFactor may be nil when no segment is
// masked.
func (sp *streamPlan) walkHybrid(p *sim.Proc, w *worker, scale float64, onBucket func(b int, bk comm.Bucket), onFactor func(seg int, e nn.GradEvent)) float64 {
	compute := sp.compute * scale
	fwd := sp.fwd * scale
	w.recordEvents = !sp.wholeModel
	join := w.beginGradient()
	// Delay the forward share first: the yield lets every peer process
	// submit its own gradient before this goroutine blocks in the join, so
	// the replicas' real math still overlaps on the pool.
	p.Delay(fwd)
	loss := join()
	now := fwd
	if sp.wholeModel {
		p.Delay(compute - now)
		for b, bk := range sp.buckets {
			onBucket(b, bk)
		}
		return loss
	}
	pending := make([]int, len(sp.buckets))
	for b, bk := range sp.buckets {
		pending[b] = bk.SegHi - bk.SegLo + 1
	}
	cum := 0.0
	for _, e := range w.events {
		cum += sp.flops[e.Layer]
		seg := sp.segOfLayer[e.Layer]
		if seg < 0 {
			continue
		}
		// fwd + the backward shares of every layer emitted so far: the
		// instant this layer's gradient (and factor views) are final.
		at := compute * (1.0/3 + (2.0/3)*cum/sp.totalFlops)
		if sp.bz.Skipped(seg) {
			if onFactor != nil {
				if at > now {
					p.Delay(at - now)
					now = at
				}
				onFactor(seg, e)
			}
			continue
		}
		b := sp.bz.BucketOf(seg).ID
		pending[b]--
		if pending[b] == 0 {
			// This event completed bucket b.
			if at > now {
				p.Delay(at - now)
				now = at
			}
			onBucket(b, sp.buckets[b])
		}
	}
	if compute > now {
		p.Delay(compute - now)
	}
	return loss
}

// forkBroadcasts launches the bucketed broadcast of a payload that is ready
// now (EASGD3's and the KNL cluster's center weight, fixed by the previous
// master update): one BroadcastRange per bucket on rounds base+b, gated by
// the crew's in-flight bound, running beneath whatever the caller does next.
func (sp *streamPlan) forkBroadcasts(crew *bucketCrew, prefix string, base, root int, ep *comm.Endpoint, buf []float32) {
	for b, bk := range sp.buckets {
		b, bk := b, bk
		crew.fork(fmt.Sprintf("%s.%d", prefix, b), func(bp *sim.Proc) {
			ep.BroadcastRange(bp, base+b, root, buf, bk.Lo, bk.Hi)
		})
	}
}

// chargeOverlap attributes one overlapped phase at the coordinating rank:
// of the wall segment d, everything beyond the busy path is exposed
// communication (charged to cat), and the crew's active seconds beyond that
// exposed share ran hidden beneath the busy path (HiddenComm). Passing
// active = 0 degrades to plain exposed-excess accounting, so overlapped and
// monolithic variants share one formula.
func (rc *runContext) chargeOverlap(cat Category, d, busy, active float64) {
	exposed := d - busy
	if exposed > 0 {
		rc.bd.Add(cat, exposed)
	} else {
		exposed = 0
	}
	rc.bd.AddHidden(active - exposed)
}

// bucketCrew tracks one worker's in-flight bucket transfers within an
// iteration: forked processes gated to an in-flight bound, with the forked
// procs' busy seconds accumulated for hidden-communication accounting.
type bucketCrew struct {
	env   *sim.Env
	slots *sim.Resource
	comps []*sim.Completion
	busy  float64
}

// newBucketCrew creates the per-worker crew with the given in-flight depth
// (collectives use maxInFlightBuckets; single-DMA point-to-point streams use
// 1); slots persist across iterations so the bound spans them too.
func newBucketCrew(env *sim.Env, name string, inFlight int) *bucketCrew {
	return &bucketCrew{env: env, slots: sim.NewResource(env, name+".slots", inFlight)}
}

// fork launches one bucket transfer. body runs once an in-flight slot is
// free; its busy time (excluding the slot wait) accumulates.
func (bc *bucketCrew) fork(name string, body func(bp *sim.Proc)) {
	bc.comps = append(bc.comps, bc.env.Fork(name, func(bp *sim.Proc) {
		bp.Acquire(bc.slots)
		t0 := bp.Now()
		body(bp)
		bc.busy += bp.Now() - t0
		bc.slots.Release()
	}))
}

// wait joins every in-flight transfer and returns (and resets) the
// accumulated busy time.
func (bc *bucketCrew) wait(p *sim.Proc) float64 {
	for _, c := range bc.comps {
		c.Wait(p)
	}
	busy := bc.busy
	bc.comps = bc.comps[:0]
	bc.busy = 0
	return busy
}
