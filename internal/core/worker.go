package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/par"
	"scaledl/internal/quant"
	"scaledl/internal/tensor"
)

// worker is the per-device training state shared by all algorithms: a full
// replica of the network (data parallelism), a private batch sampler, and
// an optional momentum buffer.
type worker struct {
	id        int
	net       *nn.Net
	sampler   *data.Sampler
	batch     *data.Batch
	batchSize int
	velocity  []float32 // momentum buffer (lazily used)

	computeTime float64 // modeled seconds per forward+backward of one batch
	dataBytes   int64   // bytes of one minibatch copy
	lastLoss    float64

	// recordEvents makes gradientMath capture the backward walk's per-layer
	// gradient-ready stream into events (reused across iterations) — set by
	// streamPlan.walk, whose bucket launches replay the real emission order.
	recordEvents bool
	events       []nn.GradEvent
}

// runContext bundles everything an algorithm run needs: workers, timing
// constants derived from the platform, the center weight, and bookkeeping.
type runContext struct {
	cfg     Config
	workers []*worker
	center  []float32 // W̄, the center (global) weight
	probe   *nn.Net   // scratch net used for accuracy probes
	plan    comm.Plan

	paramBytes int64
	// commSel holds the hybrid-communication selector's per-layer transport
	// decisions when cfg.CommMode is sfb or hybrid (nil in dense mode); the
	// allreduce methods route each plan segment by it (see hybrid.go and
	// runSyncSGDWorkers).
	commSel *HybridSelector
	// layerFlops holds the per-layer forward FLOP counts of the model and
	// paramLayers the nn layer index of each plan segment (the parameter
	// layers, in order) — the inputs of the streaming pipeline's
	// gradient-ready schedule (stream.go).
	layerFlops  []int64
	paramLayers []int
	// Modeled cost of one minibatch CPU→GPU copy. Parameter transfers are
	// not precomputed: they run as simulated messages over the comm
	// topology, paying per-segment wire costs where the bytes move.
	dataXfer float64
	// Modeled cost of the elementwise updates.
	workerUpdate float64 // Eq. (1) on the worker device
	masterUpdate float64 // Eq. (2) on the master device

	// prevPrec is the GEMM compute precision that was active before this
	// run set cfg.ComputePrec; finish restores it.
	prevPrec tensor.Precision

	// faultsOn gates the per-step fault hooks; ckptTime is the modeled cost
	// of writing or reloading one model checkpoint over the data link.
	// chargeRecovery (default true) lets rank 0's fault stalls be charged
	// to CatRecovery; master-coordinated runs clear it (see injectFaults).
	faultsOn       bool
	ckptTime       float64
	chargeRecovery bool

	updates int64 // master-side updates performed
	samples int64 // training samples consumed
	stopped bool  // TargetAcc reached
	curve   []Point
	bd      Breakdown

	// Semantic-fault bookkeeping. droppedWait accumulates rank 0's
	// partial-aggregation deadline time (sampled into CatDropped by the
	// worker loop so the comm category is not double-charged); dropped is
	// the per-step drop log; failedRank is the rank killed by a
	// FailContinue fail-stop, or -1.
	droppedWait float64
	dropped     []DropRecord
	failedRank  int
}

// newRunContext validates cfg, builds P workers with private seeds, and
// precomputes the platform's per-operation costs. Callers must use rc.cfg
// from here on: Validate fills in defaults (such as ρ) that the caller's
// copy does not have.
func newRunContext(cfg Config) (*runContext, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rc := &runContext{cfg: cfg, failedRank: -1}
	// Apply the run's compute precision to the GEMM engine; finish restores
	// the previous setting so runs do not leak it into each other.
	prec, err := tensor.ParsePrecision(cfg.ComputePrec)
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	rc.prevPrec = tensor.SetComputePrecision(prec)
	base := tensor.NewRNG(cfg.Seed)
	// One shared initial model, copied to every worker (Algorithms 1-4:
	// initialize W once, copy to all).
	init := cfg.Def.Build(base.Int63())
	rc.center = append([]float32(nil), init.Params...)
	rc.probe = cfg.Def.Build(0)
	rc.paramBytes = init.ParamBytes()
	rc.plan = cfg.Platform.plan(init.LayerParamSizes())
	for i, l := range init.Layers {
		rc.layerFlops = append(rc.layerFlops, l.FwdFLOPsPerSample())
		if l.ParamCount() > 0 {
			rc.paramLayers = append(rc.paramLayers, i)
		}
	}
	if cfg.CommMode != CommDense {
		rc.commSel = selectCommModes(cfg, init.Layers)
	}

	flopsPerBatch := init.TrainFLOPsPerSample() * int64(cfg.Batch)
	// Activations + weights streamed per batch, a rough working-set touch.
	bytesTouched := init.ParamBytes()*3 + int64(cfg.Batch)*int64(cfg.Def.In.Dim())*4

	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:        i,
			net:       cfg.Def.Build(base.Int63()),
			sampler:   data.NewSampler(cfg.Train, base.Int63()),
			batchSize: cfg.Batch,
		}
		w.net.CopyParamsFrom(init)
		w.computeTime = cfg.Platform.Worker.ComputeTime(flopsPerBatch, bytesTouched)
		w.dataBytes = int64(cfg.Batch) * cfg.Train.Spec.SampleBytes()
		rc.workers = append(rc.workers, w)
	}

	dataLink := cfg.Platform.link("data", cfg.Platform.Data)
	rc.dataXfer = dataLink.Time(rc.workers[0].dataBytes)
	// Elementwise updates stream ~3 vectors of the model (read W, read
	// other, write W): 2 flops and 12 bytes per parameter.
	n := int64(len(rc.center))
	rc.workerUpdate = cfg.Platform.Worker.ComputeTime(2*n, 12*n)
	rc.masterUpdate = cfg.Platform.Master.ComputeTime(2*n, 12*n)
	rc.faultsOn = cfg.Faults.enabled()
	rc.chargeRecovery = true
	if rc.faultsOn {
		rc.ckptTime = dataLink.Time(rc.paramBytes)
	}
	return rc, nil
}

// gradientMath is the raw forward+backward; it touches only worker-owned
// state (net, sampler, batch, events) and defers the lastLoss commit to the
// caller, so it may run on a par pool goroutine while the owning simulated
// process is suspended. With recordEvents set it runs the streaming walk
// and captures the real gradient-ready event sequence; the mathematics is
// identical either way (LossAndGrad is the emit=nil wrapper).
func (w *worker) gradientMath() float64 {
	w.batch = w.sampler.Next(w.batchSize, w.batch)
	w.net.ZeroGrad()
	var loss float64
	if w.recordEvents {
		w.events = w.events[:0]
		loss, _ = w.net.LossAndGradStream(w.batch.X, w.batch.Labels, w.batch.B, func(e nn.GradEvent) {
			w.events = append(w.events, e)
		})
	} else {
		loss, _ = w.net.LossAndGrad(w.batch.X, w.batch.Labels, w.batch.B)
	}
	return loss
}

// beginGradient starts the worker's forward/backward on the shared par pool
// and returns a join function. Every algorithm runs its workers as separate
// simulated processes; each calls this, then yields virtual time
// (p.Delay(w.computeTime)) — during which its peers start their own
// gradients, so the real math of up to par.Width() workers overlaps — and
// invokes the join before the gradient or loss is used. The
// join commits w.lastLoss and returns the batch loss; until then no other
// simulated process may read this worker's state (none does: workers own
// their nets and samplers, and masters see only explicit message payloads).
func (w *worker) beginGradient() func() float64 {
	var loss float64
	h := par.Submit(func() { loss = w.gradientMath() })
	return func() float64 {
		h.Wait()
		w.lastLoss = loss
		return loss
	}
}

// snapshotWeights returns a pre-update weight snapshot and its wire size:
// the delta codec's reconstruction and compressed bytes when codec is
// non-nil, a raw fp32 copy otherwise. It is the single payload-preparation
// path of the weight-shipping algorithms (EASGD-style async, round-robin),
// shared by their streamed and monolithic branches so the two can never
// drift apart.
func (w *worker) snapshotWeights(codec *quant.DeltaCodec) ([]float32, int64) {
	snap := make([]float32, len(w.net.Params))
	wire := int64(len(snap)) * 4
	if codec != nil {
		wire = codec.Encode(w.net.Params, snap)
	} else {
		copy(snap, w.net.Params)
	}
	return snap, wire
}

// quantizeGrads applies the error-feedback quantizer in place (when q is
// non-nil) and returns the gradient payload's wire size — the shared
// preparation step of the gradient-shipping paths.
func (w *worker) quantizeGrads(q *quant.Quantizer) int64 {
	if q != nil {
		return q.Apply(w.net.Grads, w.net.Grads)
	}
	return int64(len(w.net.Grads)) * 4
}

// sgdLocal applies plain SGD to the worker replica: W ← W − η·G.
func (w *worker) sgdLocal(lr float32) { w.net.SGDStep(lr) }

// elasticLocal applies the paper's Equation (1):
// W_i ← W_i − η(∆W_i + ρ(W_i − W̄)).
func (w *worker) elasticLocal(lr, rho float32, center []float32) {
	p := w.net.Params
	g := w.net.Grads
	for i := range p {
		p[i] -= lr * (g[i] + rho*(p[i]-center[i]))
	}
}

// momentumElasticLocal applies Equations (5) and (6):
// V ← µV − η∆W;  W ← W + V − ηρ(W − W̄).
func (w *worker) momentumElasticLocal(lr, mu, rho float32, center []float32) {
	w.ensureVelocity()
	p := w.net.Params
	g := w.net.Grads
	v := w.velocity
	for i := range p {
		v[i] = mu*v[i] - lr*g[i]
		p[i] += v[i] - lr*rho*(p[i]-center[i])
	}
}

// momentumLocal applies Equations (3) and (4): V ← µV − η∆W; W ← W + V.
func (w *worker) momentumLocal(lr, mu float32) {
	w.ensureVelocity()
	p := w.net.Params
	g := w.net.Grads
	v := w.velocity
	for i := range p {
		v[i] = mu*v[i] - lr*g[i]
		p[i] += v[i]
	}
}

func (w *worker) ensureVelocity() {
	if w.velocity == nil {
		w.velocity = make([]float32, len(w.net.Params))
	}
}

// centerElasticUpdate applies the paper's Equation (2) for one worker
// contribution: W̄ ← W̄ + ηρ(W_i − W̄), reading W_i from wParams and the
// center snapshot from snap (which may alias center for the locked
// algorithms; Hogwild passes an older snapshot to model the race).
func centerElasticUpdate(center, wParams, snap []float32, lr, rho float32) {
	a := lr * rho
	for i := range center {
		center[i] += a * (wParams[i] - snap[i])
	}
}

// centerSGDUpdate applies W̄ ← W̄ − η·∆W.
func centerSGDUpdate(center, grad []float32, lr float32) {
	tensor.AXPY(-lr, grad, center)
}

// recordPoint probes test accuracy with the current center weights and
// reports whether the run's accuracy target has been met.
func (rc *runContext) recordPoint(iter int, simTime float64, loss float64) (stop bool) {
	if rc.cfg.EvalEvery <= 0 {
		return false
	}
	acc := rc.evalCenter()
	rc.curve = append(rc.curve, Point{
		Iter:    iter,
		SimTime: simTime,
		Loss:    loss,
		TestAcc: acc,
	})
	if rc.cfg.TargetAcc > 0 && acc >= rc.cfg.TargetAcc {
		rc.stopped = true
	}
	return rc.stopped
}

// evalCenter evaluates the center weight on the test set (0 if none).
func (rc *runContext) evalCenter() float64 {
	if rc.cfg.Test == nil || rc.cfg.Test.Len() == 0 {
		return 0
	}
	copy(rc.probe.Params, rc.center)
	return rc.probe.Evaluate(rc.cfg.Test.Images, rc.cfg.Test.Labels, rc.cfg.EvalBatch)
}

// finish assembles the Result common to all algorithms. A worker killed by
// a FailContinue fail-stop is excluded from the final-loss average — its
// last loss is frozen at the step before its death.
func (rc *runContext) finish(method string, simTime float64) Result {
	tensor.SetComputePrecision(rc.prevPrec)
	var lastLoss float64
	live := 0
	for _, w := range rc.workers {
		if w.id == rc.failedRank {
			continue
		}
		lastLoss += w.lastLoss
		live++
	}
	lastLoss /= float64(live)
	trained := rc.cfg.Def.Build(0)
	copy(trained.Params, rc.center)
	return Result{
		Method:        method,
		Workers:       rc.cfg.Workers,
		Iterations:    rc.cfg.Iterations,
		SimTime:       simTime,
		Breakdown:     rc.bd,
		FinalAcc:      rc.evalCenter(),
		FinalLoss:     lastLoss,
		Curve:         rc.curve,
		Samples:       rc.samples,
		MasterUpdates: rc.updates,
		Dropped:       rc.dropped,
		net:           trained,
	}
}
