package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/quant"
	"scaledl/internal/sim"
)

// The six asynchronous methods share two skeletons.
//
// SGD-style (Async SGD, Async MSGD, Hogwild SGD — the existing methods of
// §3.1/§3.2): the worker downloads W̄, computes a gradient on it, and ships
// the gradient; the master folds the gradient into W̄ and replies with the
// new W̄. The worker is idle during the round trip because its next gradient
// needs the fresh weights.
//
// EASGD-style (Async EASGD, Async MEASGD, Hogwild EASGD — the paper's
// methods of §5.1): the worker keeps local weights, ships them, and
// computes its next gradient *during* the round trip (steps (1)-(2) of
// §5.1 overlap); the master applies Equation (2) and replies with W̄, which
// the worker folds in via Equation (1) (or (5)-(6) with momentum).
//
// The lock-free (Hogwild) variants differ only at the master: instead of a
// FIFO critical section serializing updates, every arrival is served by a
// concurrent handler that reads a center snapshot at service start and
// commits additively — the deterministic model of componentwise-atomic
// lock-free updates (§3.2, §5.1, convergence proof referenced by the paper).
//
// Parameter messages travel the simulated PCIe topology: each transfer is
// a per-plan-segment message on the worker's host link, so per-layer plans
// pay their per-message α here too, and gradient compression
// (Config.Compression) shrinks each message's wire size — gradients ride
// per-worker error-feedback quantizers, weight streams (the EASGD payloads
// and every center reply) ride delta codecs.

// AsyncSGD is the parameter-server baseline (Dean et al.), FCFS with a
// master-side lock.
func AsyncSGD(cfg Config) (Result, error) {
	return runAsync(cfg, "async-sgd", asyncOpts{})
}

// AsyncMSGD is Async SGD with momentum applied at the master (Equations
// (3)-(4)).
func AsyncMSGD(cfg Config) (Result, error) {
	return runAsync(cfg, "async-msgd", asyncOpts{momentum: true})
}

// HogwildSGD removes the master lock from Async SGD (§3.2).
func HogwildSGD(cfg Config) (Result, error) {
	return runAsync(cfg, "hogwild-sgd", asyncOpts{lockFree: true})
}

// AsyncEASGD replaces Original EASGD's round-robin rule with
// first-come-first-served parameter-server scheduling (§5.1).
func AsyncEASGD(cfg Config) (Result, error) {
	return runAsync(cfg, "async-easgd", asyncOpts{elastic: true})
}

// AsyncMEASGD adds momentum to Async EASGD's local update (Equations
// (5)-(6)).
func AsyncMEASGD(cfg Config) (Result, error) {
	return runAsync(cfg, "async-measgd", asyncOpts{elastic: true, momentum: true})
}

// HogwildEASGD removes the master lock from Async EASGD: the master
// processes multiple local weights concurrently with lock-free elastic
// updates (§5.1), one of the paper's two headline algorithms.
func HogwildEASGD(cfg Config) (Result, error) {
	return runAsync(cfg, "hogwild-easgd", asyncOpts{elastic: true, lockFree: true})
}

type asyncOpts struct {
	elastic  bool // EASGD-style worker/master rules
	momentum bool
	lockFree bool
}

// psRequest travels worker→master. For SGD-style methods payload is the
// (possibly quantizer-reconstructed) gradient; for EASGD-style it is the
// worker's local weights. loss is the batch loss of the round that produced
// the payload (0 for an EASGD worker's first request, which ships the
// initial weights before any batch): carrying it in the message keeps the
// master's loss telemetry deterministic while the worker's next gradient is
// in flight on the par pool.
type psRequest struct {
	from    int
	loss    float64
	payload []float32
}

// psReply travels master→worker.
type psReply struct {
	center []float32 // snapshot of W̄ after the update (codec reconstruction)
	stop   bool
}

// Message tags on the parameter-server topology.
const (
	tagPSRequest = 1
	tagPSReply   = 2
)

// psCodecs bundles the per-stream compression state of one
// parameter-server-style run (async and round-robin): nil members mean
// raw fp32. Gradient streams get plain error-feedback quantizers; weight
// streams (EASGD payloads, center replies) get delta codecs.
type psCodecs struct {
	up   []*quant.Quantizer  // worker→master gradient streams (SGD-style)
	upW  []*quant.DeltaCodec // worker→master weight streams (EASGD-style)
	down []*quant.DeltaCodec // master→worker center streams
}

// codecAt indexes a per-worker codec slice (delta codecs, quantizers),
// tolerating the nil (uncompressed) bundle.
func codecAt[T any](s []*T, i int) *T {
	if s == nil {
		return nil
	}
	return s[i]
}

func newPSCodecs(cfg Config, n int, elastic bool) psCodecs {
	var c psCodecs
	if cfg.Compression == quant.None {
		return c
	}
	c.down = make([]*quant.DeltaCodec, cfg.Workers)
	for i := range c.down {
		c.down[i] = quant.NewDeltaCodec(cfg.Compression, n)
	}
	if elastic {
		c.upW = make([]*quant.DeltaCodec, cfg.Workers)
		for i := range c.upW {
			c.upW[i] = quant.NewDeltaCodec(cfg.Compression, n)
		}
	} else {
		c.up = make([]*quant.Quantizer, cfg.Workers)
		for i := range c.up {
			c.up[i] = quant.New(cfg.Compression, n)
		}
	}
	return c
}

func runAsync(cfg Config, name string, opt asyncOpts) (Result, error) {
	// The parameter-server transfers ride SendModel/DelayModel, outside
	// comm's guarded message path — semantic faults cannot be injected here.
	if err := cfg.Faults.requireTimingOnly(name); err != nil {
		return Result{}, err
	}
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg // validated copy with defaults applied
	env := sim.NewEnv()
	defer env.Close()

	topo := cfg.Platform.topology(env, cfg.Workers, false)
	master := topo.Host()
	codecs := newPSCodecs(cfg, len(rc.center), opt.elastic)
	// The streaming pipeline for SGD-style uploads (Config.Overlap): the
	// worker pushes one parameter-server message per gradient bucket as its
	// backward emits layers, so most of the upload's wire time hides under
	// the tail of backprop. EASGD-style workers already overlap the whole
	// round trip with their *next* gradient (§5.1 steps (1)-(2)) — their
	// payload is weights, ready before compute starts — so they keep that
	// stronger overlap untouched.
	stream := rc.newStream(rc.plan)
	var velocity []float32
	if opt.momentum && !opt.elastic {
		velocity = make([]float32, len(rc.center)) // master-side momentum
	}

	// Master: FIFO service off the host inbox. Locked variants hold the
	// critical section for update+reply; the lock-free variants dispatch a
	// concurrent handler per request, so service times overlap.
	dispatched := 0
	env.Spawn("master", func(p *sim.Proc) {
		stopsSent := 0
		for stopsSent < cfg.Workers {
			req := topo.RecvAny(p, master).Payload.(psRequest)
			if dispatched >= cfg.Iterations || rc.stopped {
				// Stop sentinels are zero-size control messages.
				topo.Send(p, master, req.from, tagPSReply, psReply{stop: true}, 0)
				stopsSent++
				continue
			}
			dispatched++
			if opt.lockFree {
				r := req
				env.Spawn(fmt.Sprintf("handler-%d", dispatched), func(h *sim.Proc) {
					serveOne(h, rc, cfg, opt, topo, codecs, r, velocity)
				})
			} else {
				serveOne(p, rc, cfg, opt, topo, codecs, req, velocity)
			}
		}
	})

	for i := 0; i < cfg.Workers; i++ {
		i := i
		w := rc.workers[i]
		var crew *bucketCrew
		if cfg.Overlap && !opt.elastic {
			// Capacity 1: a worker's host uplink is one DMA engine, so its
			// bucket uploads stream back to back, not in parallel.
			crew = newBucketCrew(env, fmt.Sprintf("worker%d", i), 1)
		}
		env.Spawn(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
			ship := func(loss float64, payload []float32, wire int64) {
				rc.bd.AddBytes(CatCPUGPUParam, wire)
				topo.SendModel(p, i, master, tagPSRequest,
					psRequest{from: i, loss: loss, payload: payload}, rc.plan, wire)
			}
			for iter := 0; ; iter++ {
				rc.injectFaults(p, i, iter+1)
				// Minibatch copy to the device.
				p.Delay(rc.dataXfer)
				if opt.elastic {
					// Ship local weights, then overlap the gradient with the
					// round trip (§5.1 steps (1)-(2)). The overlap is real as
					// well as simulated: the forward/backward runs on the par
					// pool while this process waits out the round trip, so
					// other workers' gradients execute concurrently with it.
					snap, wire := w.snapshotWeights(codecAt(codecs.upW, i))
					ship(w.lastLoss, snap, wire)
					join := w.beginGradient()
					p.Delay(rc.computeDelay(i, iter+1))
					join()
					rep := topo.Recv(p, i, master, tagPSReply).(psReply)
					if rep.stop {
						return
					}
					if opt.momentum {
						w.momentumElasticLocal(cfg.LR, cfg.Momentum, cfg.Rho, rep.center)
					} else {
						w.elasticLocal(cfg.LR, cfg.Rho, rep.center)
					}
					p.Delay(rc.workerUpdate)
				} else if cfg.Overlap {
					// Streaming upload: per-bucket wire charges fork as the
					// backward emits layers (one at a time — a worker's host
					// uplink is a single DMA engine), then the logical request
					// arrives as a zero-size control message whose bytes were
					// already paid bucket by bucket.
					prepared := false
					var wires []int64
					loss := stream.walk(p, w, rc.computeScale(i, iter+1), func(b int, bk comm.Bucket) {
						if !prepared {
							wires = stream.bz.SplitWire(w.quantizeGrads(codecAt(codecs.up, i)))
							prepared = true
						}
						sub := stream.bz.SubPlan(bk)
						crew.fork(fmt.Sprintf("up%d.%d.%d", i, iter, b), func(bp *sim.Proc) {
							rc.bd.AddBytes(CatCPUGPUParam, wires[b])
							topo.DelayModel(bp, i, master, sub, wires[b])
						})
					})
					// Upload seconds beyond the walk's end are exposed; the
					// rest ran hidden beneath the backward.
					tWalk := p.Now()
					busy := crew.wait(p)
					rc.bd.AddHidden(busy - (p.Now() - tWalk))
					topo.Send(p, i, master, tagPSRequest,
						psRequest{from: i, loss: loss, payload: w.net.Grads}, 0)
					rep := topo.Recv(p, i, master, tagPSReply).(psReply)
					if rep.stop {
						return
					}
					copy(w.net.Params, rep.center)
				} else {
					// Gradient on the freshly fetched weights, then wait. The
					// math overlaps (in real time) with the other workers'
					// in-flight gradients via the par pool; the join lands
					// before the gradient is shipped.
					join := w.beginGradient()
					p.Delay(rc.computeDelay(i, iter+1))
					loss := join()
					ship(loss, w.net.Grads, w.quantizeGrads(codecAt(codecs.up, i)))
					rep := topo.Recv(p, i, master, tagPSReply).(psReply)
					if rep.stop {
						return
					}
					copy(w.net.Params, rep.center)
				}
				rc.samples += int64(cfg.Batch)
			}
		})
	}

	end := env.Run()
	return rc.finish(name, end), nil
}

// serveOne performs one master-side service: the update rule, then the
// reply transfer back to the worker. In locked mode it runs inside the
// master's loop (serializing); in lock-free mode it runs in its own process.
func serveOne(p *sim.Proc, rc *runContext, cfg Config, opt asyncOpts, topo *comm.Topology, codecs psCodecs, req psRequest, velocity []float32) {
	if opt.elastic {
		// Equation (2) for one arrival. The center snapshot is taken at
		// service start; with the lock this equals the live center, without
		// it concurrent handlers read stale snapshots — the Hogwild race.
		snap := append([]float32(nil), rc.center...)
		p.Delay(rc.masterUpdate)
		rc.bd.Add(CatCPUUpdate, rc.masterUpdate)
		centerElasticUpdate(rc.center, req.payload, snap, cfg.LR, cfg.Rho)
	} else {
		p.Delay(rc.masterUpdate)
		rc.bd.Add(CatCPUUpdate, rc.masterUpdate)
		if opt.momentum {
			for i := range rc.center {
				velocity[i] = cfg.Momentum*velocity[i] - cfg.LR*req.payload[i]
				rc.center[i] += velocity[i]
			}
		} else {
			centerSGDUpdate(rc.center, req.payload, cfg.LR)
		}
	}
	rc.updates++
	if cfg.EvalEvery > 0 && rc.updates%int64(cfg.EvalEvery) == 0 {
		rc.recordPoint(int(rc.updates), p.Now(), req.loss)
	}
	// The reply transfer occupies the lock in the locked variants; in
	// Hogwild it is a concurrent DMA on the worker's own host link.
	reply := make([]float32, len(rc.center))
	wire := int64(len(reply)) * 4
	if codecs.down != nil {
		wire = codecs.down[req.from].Encode(rc.center, reply)
	} else {
		copy(reply, rc.center)
	}
	t0 := p.Now()
	rc.bd.AddBytes(CatCPUGPUParam, wire)
	topo.SendModel(p, topo.Host(), req.from, tagPSReply, psReply{center: reply}, rc.plan, wire)
	rc.bd.Add(CatCPUGPUParam, p.Now()-t0)
}
