package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/hw"
	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

// KNLClusterConfig configures Algorithm 4 of the paper: Communication-
// Efficient EASGD on a KNL cluster. One simulated process runs per node,
// and the broadcast and tree reduction execute as real message waves over
// the fabric through the collective engine — the closest structural
// analogue of the paper's MPI code.
type KNLClusterConfig struct {
	// Config supplies the workload, hyperparameters and budget. The
	// Platform's Worker device models one KNL node; parameter traffic uses
	// Fabric below rather than the platform links. Config.Schedule selects
	// the collective pattern (tree by default).
	Config
	// Fabric is the interconnect between nodes (e.g. Cori's Aries).
	Fabric comm.Transferer
}

// KNLClusterEASGD runs Algorithm 4: every KNL node holds a local weight
// and a full data copy; each iteration all nodes compute gradients in
// parallel, node 1 broadcasts the center weight W̄ while a binomial tree
// reduces ΣW_j to it, every node applies Equation (1) and the master
// applies Equation (2).
func KNLClusterEASGD(kcfg KNLClusterConfig) (Result, error) {
	// The chip-local partition sums bypass the guarded message path, so
	// only timing faults are meaningful here.
	if err := kcfg.Faults.requireTimingOnly("knl-cluster-easgd"); err != nil {
		return Result{}, err
	}
	rc, err := newRunContext(kcfg.Config)
	if err != nil {
		return Result{}, err
	}
	cfg := rc.cfg
	if kcfg.Fabric == nil {
		kcfg.Fabric = hw.Aries
	}
	env := sim.NewEnv()
	defer env.Close()

	n := len(rc.center)
	topo := comm.NewUniform(env, cfg.Workers, kcfg.Fabric)
	parties := comm.Ranks(cfg.Workers)
	// The plan keeps the per-layer segment structure under the packed
	// single-message layout: monolithic collectives still move one message
	// per hop (packed plans collapse to a single wire segment), while the
	// streaming pipeline can coalesce layers into buckets along the same
	// boundaries.
	plan := comm.Plan{LayerBytes: rc.plan.LayerBytes, Packed: true}
	cm := comm.NewCommunicator(topo, comm.CommConfig{
		Parties:  parties,
		Plan:     plan,
		Schedule: cfg.Schedule,
	})
	stream := rc.newStream(plan)
	nb := stream.bz.NumBuckets()
	bar := sim.NewBarrier(env, "round", cfg.Workers)

	for id := 0; id < cfg.Workers; id++ {
		id := id
		w := rc.workers[id]
		ep := cm.Endpoint(id)
		var crew *bucketCrew
		if cfg.Overlap {
			crew = newBucketCrew(env, fmt.Sprintf("knl-rank%d", id), maxInFlightBuckets)
		}
		env.Spawn(fmt.Sprintf("knl-rank%d", id), func(p *sim.Proc) {
			sum := make([]float32, n)
			centerBuf := make([]float32, n)
			if id == 0 {
				copy(centerBuf, rc.center)
			}
			for t := 0; t < cfg.Iterations; t++ {
				rc.injectFaults(p, id, t+1)
				t0 := p.Now()
				// Under Config.Overlap, line 12's broadcast streams through
				// the bucketed pipeline beneath line 10's compute: W̄_t was
				// fixed by the previous iteration's master update, so its
				// bucket waves can start immediately, and the join after
				// compute exposes only the excess.
				base := 2 * t // rounds: non-overlap bcast 2t, reduce 2t+1
				if cfg.Overlap {
					base = t * (nb + 1) // rounds: buckets base..base+nb−1, reduce base+nb
					stream.forkBroadcasts(crew, fmt.Sprintf("bcast%d.%d", id, t), base, 0, ep, centerBuf)
				}
				// Line 10: each node samples b from its local copy (local
				// memory, negligible on the fabric timeline) and computes the
				// gradient for real. The math runs on the par pool while this
				// rank waits out its compute delay, so all P ranks' gradients
				// overlap in real time exactly as the paper's nodes do; the
				// join lands before the weights enter the collectives.
				join := w.beginGradient()
				ct := rc.computeDelay(id, t+1)
				p.Delay(ct)
				roundLoss := join()
				if id == 0 {
					rc.bd.Add(CatForwardBackward, ct)
				}

				// The broadcast's exposed time is charged the same way in
				// both modes (chargeOverlap with active=0 is the monolithic
				// formula), so breakdowns stay comparable across the
				// Overlap knob — overlap hides time, it never re-labels it.
				reduceRound := base + 1
				if cfg.Overlap {
					busy := crew.wait(p)
					if id == 0 {
						rc.chargeOverlap(CatGPUGPUParam, p.Now()-t0, ct, busy)
					}
					reduceRound = base + nb
				} else {
					// Line 12: KNL1 broadcasts W̄_t (real message tree).
					ep.Broadcast(p, base, 0, centerBuf)
					if id == 0 {
						rc.chargeOverlap(CatGPUGPUParam, p.Now()-t0, ct, 0)
					}
				}
				// Line 13: tree-reduce ΣW_j^t to KNL1 (pre-update weights;
				// the engine combines contributions in rank order, so the
				// sum is bit-identical to comm.ReduceSum).
				tR := p.Now()
				copy(sum, w.net.Params)
				ep.Reduce(p, reduceRound, 0, sum)
				if id == 0 {
					rc.bd.Add(CatGPUGPUParam, p.Now()-tR)
				}

				// Line 14: every node applies Equation (1) with W̄_t.
				w.elasticLocal(cfg.LR, cfg.Rho, centerBuf)
				p.Delay(rc.workerUpdate)

				// Line 15: KNL1 applies Equation (2) with the reduced sum.
				if id == 0 {
					rc.bd.Add(CatGPUUpdate, rc.workerUpdate)
					a := cfg.LR * cfg.Rho
					pf := float32(cfg.Workers)
					for i := range centerBuf {
						centerBuf[i] += a * (sum[i] - pf*centerBuf[i])
					}
					p.Delay(rc.masterUpdate)
					rc.bd.Add(CatCPUUpdate, rc.masterUpdate)
					copy(rc.center, centerBuf)
					rc.updates++
					rc.samples += int64(cfg.Batch * cfg.Workers)
					rc.bd.AddBytes(CatGPUGPUParam, topo.BytesMoved()-rc.bd.Bytes[CatGPUGPUParam])
					if cfg.EvalEvery > 0 && (t+1)%cfg.EvalEvery == 0 {
						rc.recordPoint(t+1, p.Now(), roundLoss)
					}
				}
				// Round barrier: free in simulated time (the next broadcast
				// waits on rank 0 anyway), but it gives every rank a
				// consistent view of the early-stop flag — no phantom
				// gradient round after the target is reached.
				p.Wait(bar)
				if rc.stopped {
					return
				}
			}
		})
	}

	end := env.Run()
	res := rc.finish("knl-cluster-easgd", end)
	return res, nil
}

// KNLClusterWeakScaling runs the Algorithm 4 rank program in size-only
// mode (the same message waves, no payloads) to measure per-iteration time
// at a given node count for an arbitrary model size — the executable
// counterpart of Table 4's analytic model. It returns the simulated
// seconds per iteration.
func KNLClusterWeakScaling(nodes int, paramBytes int64, computePerIter float64, fabric comm.Transferer, iters int) (float64, error) {
	if nodes < 1 || iters < 1 {
		return 0, fmt.Errorf("core: nodes and iters must be >= 1")
	}
	env := sim.NewEnv()
	defer env.Close()
	topo := comm.NewUniform(env, nodes, fabric)
	parties := comm.Ranks(nodes)
	cm := comm.NewCommunicator(topo, comm.CommConfig{
		Parties: parties,
		Plan:    comm.Plan{LayerBytes: []int64{paramBytes}, Packed: true},
	})
	for id := 0; id < nodes; id++ {
		id := id
		ep := cm.Endpoint(id)
		env.Spawn(fmt.Sprintf("ws-rank%d", id), func(p *sim.Proc) {
			for t := 0; t < iters; t++ {
				p.Delay(computePerIter)
				ep.BroadcastSize(p, 2*t, 0)
				ep.ReduceSize(p, 2*t+1, 0)
			}
		})
	}
	end := env.Run()
	return end / float64(iters), nil
}

// Elastic center drift: a diagnostic used by tests and examples — the L2
// distance between the center and the mean of the local weights, which
// elastic averaging keeps bounded.
func CenterDrift(center []float32, locals ...[]float32) float64 {
	if len(locals) == 0 {
		return 0
	}
	mean := make([]float32, len(center))
	comm.Average(mean, locals...)
	tensor.Sub(mean, mean, center)
	return tensor.Norm2(mean)
}
