package core

import (
	"math"
	"strings"
	"testing"

	"scaledl/internal/comm"
	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/quant"
)

// lenetConfig is testConfig with LeNet — whose fc500 layer is the
// Poseidon-favorable shape (B·(F+D) ≪ F·D) — on a 28×28 synthetic set.
func lenetConfig(t *testing.T, iters int) Config {
	t.Helper()
	spec := data.Spec{Name: "mnistish", Channels: 1, Height: 28, Width: 28, Classes: 10}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 256, TestN: 64, Seed: 5})
	train.Normalize()
	test.Normalize()
	return Config{
		Def:        nn.LeNet(nn.Shape{C: 1, H: 28, W: 28}, 10),
		Train:      train,
		Test:       test,
		Workers:    4,
		Batch:      8,
		LR:         0.01,
		Iterations: iters,
		Seed:       3,
		Platform:   DefaultGPUPlatform(true),
	}
}

// The tentpole invariant end to end: a sync-sgd run in sfb or hybrid comm
// mode trains bit-identically to dense mode — for every schedule, at
// power-of-two and odd worker counts, monolithic and overlapped at several
// bucket sizes. Only where the bytes travel (and the time axis) may change.
func TestSFBBitIdenticalToDenseAllReduce(t *testing.T) {
	type variant struct {
		name        string
		overlap     bool
		bucketBytes int64
	}
	variants := []variant{
		{"monolithic", false, 0},
		{"overlap-tiny-buckets", true, 4},
		{"overlap-4k", true, 4096},
		{"overlap-whole-model", true, 1 << 30},
	}
	for _, sched := range []comm.Schedule{comm.ScheduleTree, comm.ScheduleRing, comm.ScheduleRHD, comm.ScheduleChain} {
		for _, workers := range []int{4, 3} {
			for _, mode := range []CommMode{CommSFB, CommHybrid} {
				run := func(cm CommMode, v variant) Result {
					cfg := testConfig(t, 10, true)
					cfg.Schedule = sched
					cfg.Workers = workers
					cfg.EvalEvery = 5
					cfg.CommMode = cm
					cfg.Overlap = v.overlap
					cfg.BucketBytes = v.bucketBytes
					res, err := SyncSGD(cfg)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				for _, v := range variants {
					base := run(CommDense, v)
					res := run(mode, v)
					label := sched.String() + "/" + mode.String() + "/" + v.name
					sameMath(t, label, res, base)
				}
			}
		}
	}
}

// The hierarchical composition keeps the invariant: hier-sync-sgd in sfb
// mode — factors gather at node leaders, allgather over the fabric, fan
// back out — trains bit-identically to its dense twin.
func TestHierSFBBitIdenticalToDense(t *testing.T) {
	run := func(mode CommMode, overlap bool) Result {
		cfg := testConfig(t, 10, true)
		cfg.Nodes, cfg.GPUsPerNode = 2, 2
		cfg.EvalEvery = 5
		cfg.CommMode = mode
		cfg.Overlap = overlap
		cfg.BucketBytes = 4096
		res, err := HierSyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, overlap := range []bool{false, true} {
		base := run(CommDense, overlap)
		for _, mode := range []CommMode{CommSFB, CommHybrid} {
			label := "hier/" + mode.String()
			if overlap {
				label += "/overlap"
			}
			sameMath(t, label, run(mode, overlap), base)
		}
	}
}

// expectedWire computes the run's exact per-iteration parameter wire from
// the selector's shapes: dense layers move the allreduce's 2(P−1) payloads,
// SFB layers the factor allgather's P(P−1) factor pairs — the O(B·(F+D))
// against O(F·D) trade.
func expectedWire(t *testing.T, cfg Config) (perIter, densePerIter int64) {
	t.Helper()
	sel, err := SelectCommModes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumSFB() == 0 {
		t.Fatal("config routes no layer to SFB; the traffic assertion would be vacuous")
	}
	for _, c := range sel.Choices {
		densePerIter += comm.DenseAllReduceBytes(cfg.Workers, c.Elems)
		if c.UseSFB {
			perIter += comm.FactorAllGatherBytes(cfg.Workers, c.B*(c.F+c.D))
		} else {
			perIter += comm.DenseAllReduceBytes(cfg.Workers, c.Elems)
		}
	}
	return perIter, densePerIter
}

// Exact wire accounting: a sync-sgd run in sfb mode moves exactly the
// formula bytes — FactorAllGatherBytes for the fc layers, the dense
// allreduce's bytes for the rest — monolithic and overlapped, tree and
// ring; and on LeNet's Poseidon-shaped fc layers that total undercuts the
// all-dense run's wire.
func TestSFBWireBytesExact(t *testing.T) {
	iters := 4
	for _, sched := range []comm.Schedule{comm.ScheduleTree, comm.ScheduleRing} {
		for _, overlap := range []bool{false, true} {
			cfg := lenetConfig(t, iters)
			cfg.Schedule = sched
			cfg.CommMode = CommSFB
			cfg.Overlap = overlap
			cfg.BucketBytes = 64 << 10
			perIter, densePerIter := expectedWire(t, cfg)
			if perIter >= densePerIter {
				t.Fatalf("LeNet at batch %d should cut wire with SFB: %d vs dense %d",
					cfg.Batch, perIter, densePerIter)
			}
			res, err := SyncSGD(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Breakdown.ParamTraffic()
			want := perIter * int64(iters)
			if got != want {
				t.Errorf("%v overlap=%v: wire %d bytes, want exactly %d", sched, overlap, got, want)
			}

			cfg = lenetConfig(t, iters)
			cfg.Schedule = sched
			cfg.Overlap = overlap
			cfg.BucketBytes = 64 << 10
			dres, err := SyncSGD(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if gotD := dres.Breakdown.ParamTraffic(); gotD != densePerIter*int64(iters) {
				t.Errorf("%v overlap=%v dense: wire %d bytes, want exactly %d",
					sched, overlap, gotD, densePerIter*int64(iters))
			}
		}
	}
}

// Under a lossy chaos plan the factor collectives retry like every other
// guarded message: the wire grows by the wasted attempts (every attempt is
// charged), the training mathematics stays bit-identical to the clean run,
// and the retry stalls land in CatRetry.
func TestSFBRetryBytesUnderLossyChaos(t *testing.T) {
	run := func(loss float64) Result {
		cfg := lenetConfig(t, 4)
		cfg.CommMode = CommSFB
		cfg.EvalEvery = 2
		cfg.Faults.LossRate = loss
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0)
	lossy := run(0.3)
	sameMath(t, "sfb lossy vs clean", lossy, clean)
	if lossy.Breakdown.ParamTraffic() <= clean.Breakdown.ParamTraffic() {
		t.Errorf("lossy SFB run moved %d bytes, clean %d — retries charge no wire?",
			lossy.Breakdown.ParamTraffic(), clean.Breakdown.ParamTraffic())
	}
	if lossy.SimTime <= clean.SimTime {
		t.Errorf("lossy SFB run not slower: %v vs %v", lossy.SimTime, clean.SimTime)
	}
}

// The selector picks per layer exactly as the cost model dictates: conv
// layers have no factor form and always stay dense; every factorable layer
// is routed by the strict SFBTime < DenseTime comparison; LeNet's big fc500
// (B·(F+D) ≪ F·D at batch 8) wins on both bytes and time; and the decision
// crosses over with batch size — the factor payload grows with B until the
// dense allreduce wins back the layer.
func TestHybridSelectorPicksPerLayer(t *testing.T) {
	cfg := lenetConfig(t, 1)
	cfg.CommMode = CommHybrid
	sel, err := SelectCommModes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fc, conv int
	var bigFC *LayerCommChoice
	for i, c := range sel.Choices {
		if c.SFBOK {
			fc++
			if want := c.SFBTime < c.DenseTime; c.UseSFB != want {
				t.Errorf("fc layer %d: UseSFB=%v disagrees with cost model (dense %.3gs vs sfb %.3gs)",
					c.Layer, c.UseSFB, c.DenseTime, c.SFBTime)
			}
			if c.Elems > 100000 {
				bigFC = &sel.Choices[i]
			}
		} else {
			conv++
			if c.UseSFB {
				t.Errorf("layer %d has no factor form but was routed to SFB", c.Layer)
			}
		}
		if c.String() == "" {
			t.Errorf("layer %d: empty choice rendering", c.Layer)
		}
	}
	if fc != 2 || conv != 2 {
		t.Fatalf("LeNet selector saw %d fc + %d conv layers, want 2 + 2", fc, conv)
	}
	if bigFC == nil {
		t.Fatal("LeNet's fc500 (400k+ params) missing from the choices")
	}
	if bigFC.SFBBytes >= bigFC.DenseBytes || bigFC.SFBTime >= bigFC.DenseTime || !bigFC.UseSFB {
		t.Errorf("fc500 should win on bytes and time at batch 8: %+v", *bigFC)
	}

	// Crossover in B: at batch 2048 the fc500 factor payload B·(F+D) ≈ 2.7M
	// elems dwarfs the 400k dense gradient; the selector must hand the
	// layer back to the dense allreduce.
	big := lenetConfig(t, 1)
	big.Batch = 2048
	big.CommMode = CommHybrid
	bsel, err := SelectCommModes(big)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range bsel.Choices {
		if c.SFBOK && c.Elems > 100000 && c.UseSFB {
			t.Errorf("fc500 still routed to SFB at batch 2048 (dense %.3gs vs sfb %.3gs)", c.DenseTime, c.SFBTime)
		}
	}

	// sfb mode overrides the cost model: every factorable layer ships
	// factors regardless of the comparison.
	all := lenetConfig(t, 1)
	all.CommMode = CommSFB
	asel, err := SelectCommModes(all)
	if err != nil {
		t.Fatal(err)
	}
	if asel.NumSFB() != 2 {
		t.Errorf("sfb mode routed %d of 2 factorable layers", asel.NumSFB())
	}
}

// Reconstruction compute is charged and attributed: an sfb run reports
// CatSFBRecon > 0, the category prints a name, and the breakdown still sums
// to the simulated wall time — monolithic and overlapped.
func TestSFBBreakdownSumsToWall(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		cfg := lenetConfig(t, 4)
		cfg.CommMode = CommSFB
		cfg.Overlap = overlap
		cfg.BucketBytes = 64 << 10
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Breakdown.Times[CatSFBRecon] <= 0 {
			t.Errorf("overlap=%v: no reconstruction time charged", overlap)
		}
		if res.Breakdown.Bytes[CatSFBRecon] != 0 {
			t.Errorf("overlap=%v: reconstruction charged %d wire bytes; it moves none",
				overlap, res.Breakdown.Bytes[CatSFBRecon])
		}
		sum := res.Breakdown.Total()
		if rel := math.Abs(sum-res.SimTime) / res.SimTime; rel > 0.02 {
			t.Errorf("overlap=%v: breakdown sum %.6f vs wall %.6f (rel %.4f)", overlap, sum, res.SimTime, rel)
		}
	}
}

// The hybrid mode's promise at the operating point: on the fc-heavy shape
// the best hybrid step time is no worse than the best dense step time (it
// strictly wins on wire; time may tie when communication is already
// hidden), and dense mode stays the default zero value.
func TestHybridNoWorseThanDenseOnFCHeavy(t *testing.T) {
	run := func(mode CommMode) Result {
		cfg := lenetConfig(t, 4)
		cfg.CommMode = mode
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dense := run(CommDense)
	hybrid := run(CommHybrid)
	if hybrid.SimTime > dense.SimTime*(1+1e-9) {
		t.Errorf("hybrid step time %v worse than dense %v on the fc-heavy shape", hybrid.SimTime, dense.SimTime)
	}
	if hybrid.Breakdown.ParamTraffic() >= dense.Breakdown.ParamTraffic() {
		t.Errorf("hybrid wire %d not below dense %d", hybrid.Breakdown.ParamTraffic(), dense.Breakdown.ParamTraffic())
	}
}

// Mode parsing and the validation fences: unknown names are rejected with
// the mode list, and sfb/hybrid refuse the combinations the factor
// transport has no form for.
func TestCommModeParsingAndValidation(t *testing.T) {
	for name, want := range map[string]CommMode{"": CommDense, "dense": CommDense, "sfb": CommSFB, "hybrid": CommHybrid} {
		got, err := ParseCommMode(name)
		if err != nil || got != want {
			t.Errorf("ParseCommMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseCommMode("bogus"); err == nil || !strings.Contains(err.Error(), "dense") {
		t.Errorf("ParseCommMode(bogus) error %v should name the valid modes", err)
	}
	for _, m := range []CommMode{CommDense, CommSFB, CommHybrid} {
		if ParseCommModeRoundTrip := m.String(); ParseCommModeRoundTrip == "" {
			t.Errorf("mode %d has empty name", int(m))
		}
	}

	bad := func(mut func(*Config), wantSub string) {
		t.Helper()
		cfg := testConfig(t, 2, true)
		cfg.CommMode = CommSFB
		mut(&cfg)
		_, err := SyncSGD(cfg)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("want error containing %q, got %v", wantSub, err)
		}
	}
	bad(func(c *Config) { c.Compression = quant.OneBit }, "compression")
	bad(func(c *Config) { c.Faults.PartialK = 2 }, "partial aggregation")
	bad(func(c *Config) {
		c.Faults.FailMode = FailContinue
		c.Faults.FailAtStep = 1
		c.Faults.FailRank = 1
	}, "fail-continue")
	bad(func(c *Config) { c.CommMode = CommMode(99) }, "comm mode")
}
