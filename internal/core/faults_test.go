package core

import (
	"testing"
)

// identicalMath asserts the fault-free invariant of FaultPlan: faults are
// timing-only, so losses, accuracies, sample counts and the curve's math
// columns must be bit-identical between a faulty run and its clean twin.
func identicalMath(t *testing.T, clean, faulty Result) {
	t.Helper()
	if clean.FinalLoss != faulty.FinalLoss {
		t.Errorf("final loss changed: %v vs %v", clean.FinalLoss, faulty.FinalLoss)
	}
	if clean.FinalAcc != faulty.FinalAcc {
		t.Errorf("final accuracy changed: %v vs %v", clean.FinalAcc, faulty.FinalAcc)
	}
	if clean.Samples != faulty.Samples {
		t.Errorf("sample count changed: %d vs %d", clean.Samples, faulty.Samples)
	}
	if clean.MasterUpdates != faulty.MasterUpdates {
		t.Errorf("update count changed: %d vs %d", clean.MasterUpdates, faulty.MasterUpdates)
	}
	if len(clean.Curve) != len(faulty.Curve) {
		t.Fatalf("curve length changed: %d vs %d", len(clean.Curve), len(faulty.Curve))
	}
	for i := range clean.Curve {
		if clean.Curve[i].Loss != faulty.Curve[i].Loss || clean.Curve[i].TestAcc != faulty.Curve[i].TestAcc {
			t.Errorf("curve point %d math changed: %+v vs %+v", i, clean.Curve[i], faulty.Curve[i])
		}
	}
}

// identicalResult additionally pins the timing: the two runs must be
// bit-identical in every respect, including SimTime and the breakdown.
func identicalResult(t *testing.T, clean, faulty Result) {
	t.Helper()
	identicalMath(t, clean, faulty)
	if clean.SimTime != faulty.SimTime {
		t.Errorf("sim time changed: %v vs %v", clean.SimTime, faulty.SimTime)
	}
	if clean.Breakdown != faulty.Breakdown {
		t.Errorf("breakdown changed:\n%+v\nvs\n%+v", clean.Breakdown, faulty.Breakdown)
	}
}

// A straggler factor of exactly 1 scales nothing; the run must be a
// bit-identical no-op even though the fault machinery is active.
func TestStragglerFactorOneIsNoOp(t *testing.T) {
	clean, err := SyncEASGD3(testConfig(t, 30, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 30, true)
	cfg.Faults = FaultPlan{StragglerFactor: 1, StragglerRanks: []int{1, 3}}
	faulty, err := SyncEASGD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalResult(t, clean, faulty)
}

// A fail-stop scheduled after the run's last step never fires; the Result
// must not change in any way.
func TestFailureAfterRunEndIsNoOp(t *testing.T) {
	clean, err := SyncSGD(testConfig(t, 30, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 30, true)
	cfg.Faults = FaultPlan{FailRank: 2, FailAtStep: cfg.Iterations + 5}
	faulty, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalResult(t, clean, faulty)
}

// Checkpoint/recovery is pure replay: the recovered run reaches exactly the
// same mathematical state (losses, accuracy, curve) while paying strictly
// more simulated time, and the coordinator's breakdown shows the recovery.
func TestRecoveryRestoresMathExactly(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(t, 30, true)
		cfg.EvalEvery = 10
		return cfg
	}
	clean, err := SyncEASGD3(mk())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	cfg.Faults = FaultPlan{FailRank: 0, FailAtStep: 11, CheckpointEvery: 4}
	faulty, err := SyncEASGD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalMath(t, clean, faulty)
	if faulty.SimTime <= clean.SimTime {
		t.Errorf("recovery did not cost time: %v vs clean %v", faulty.SimTime, clean.SimTime)
	}
	if got := faulty.Breakdown.Times[CatRecovery]; got <= 0 {
		t.Errorf("recovery category not charged, got %v", got)
	}
	if clean.Breakdown.Times[CatRecovery] != 0 {
		t.Errorf("clean run charged recovery: %v", clean.Breakdown.Times[CatRecovery])
	}
}

// A crash with no checkpoints replays from step 1 — strictly more expensive
// than the same crash with periodic checkpoints.
func TestCheckpointsShortenRecovery(t *testing.T) {
	run := func(every int) Result {
		cfg := testConfig(t, 30, true)
		cfg.Faults = FaultPlan{FailRank: 1, FailAtStep: 21, CheckpointEvery: every}
		r, err := SyncEASGD2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	scratch := run(0) // replay 20 steps
	ckpt := run(5)    // replay 0 steps (checkpoint after step 20), 5 writes
	if scratch.SimTime <= ckpt.SimTime {
		t.Errorf("restart from scratch (%v) should cost more than checkpointed recovery (%v)",
			scratch.SimTime, ckpt.SimTime)
	}
	identicalMath(t, scratch, ckpt)
}

// Link degradation slows the run without touching the math; factor 1 is a
// bit-identical no-op.
func TestLinkScaleDegradesTimeOnly(t *testing.T) {
	clean, err := SyncEASGD1(testConfig(t, 20, true))
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t, 20, true)
	cfg.Platform.LinkScale = map[string]float64{"host": 1, "data": 1}
	same, err := SyncEASGD1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalResult(t, clean, same)

	cfg = testConfig(t, 20, true)
	cfg.Platform.LinkScale = map[string]float64{"host": 4}
	slow, err := SyncEASGD1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalMath(t, clean, slow)
	if slow.SimTime <= clean.SimTime {
		t.Errorf("degraded host link did not slow the run: %v vs %v", slow.SimTime, clean.SimTime)
	}

	cfg = testConfig(t, 20, true)
	cfg.Platform.LinkScale = map[string]float64{"bogus": 2}
	if _, err := SyncEASGD1(cfg); err == nil {
		t.Error("unknown link-scale segment accepted")
	}
}

// The same straggler observably degrades every algorithm family: round-robin,
// asynchronous, tree-synchronous and hierarchical. Math stays bit-identical
// for the families whose schedule is unaffected by timing (the synchronous
// and round-robin ones); the asynchronous families may reorder service, so
// only the slowdown is asserted there.
func TestStragglerDegradesAllFamilies(t *testing.T) {
	// The round-robin family is represented by its serial variant: in the
	// overlapped one a straggler's compute hides behind the master's
	// exchanges with the other workers (a correct emergent property, but
	// not a timing observable at this scale).
	families := []struct {
		name      string
		exactMath bool
	}{
		{"original-easgd*", true},
		{"async-easgd", false},
		{"sync-easgd3", true},
		{"hier-sync-easgd", true},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			mk := func() Config {
				cfg := testConfig(t, 24, true)
				if f.name == "hier-sync-easgd" {
					cfg.Nodes, cfg.GPUsPerNode = 2, 2
				}
				return cfg
			}
			clean, err := Methods[f.name](mk())
			if err != nil {
				t.Fatal(err)
			}
			cfg := mk()
			cfg.Faults = FaultPlan{StragglerFactor: 5, StragglerRanks: []int{1}}
			slow, err := Methods[f.name](cfg)
			if err != nil {
				t.Fatal(err)
			}
			if slow.SimTime <= clean.SimTime {
				t.Errorf("straggler did not slow %s: %v vs %v", f.name, slow.SimTime, clean.SimTime)
			}
			if f.exactMath {
				identicalMath(t, clean, slow)
			}
		})
	}
}

// Heterogeneity cycles the profile across ranks and slows synchronized runs
// to the slowest device's pace.
func TestHeterogeneitySlowsSynchronousRuns(t *testing.T) {
	clean, err := SyncSGD(testConfig(t, 20, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 20, true)
	cfg.Faults = FaultPlan{Heterogeneity: []float64{1, 1.5}}
	het, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalMath(t, clean, het)
	if het.SimTime <= clean.SimTime {
		t.Errorf("heterogeneous fleet not slower: %v vs %v", het.SimTime, clean.SimTime)
	}
}

// The coordinated methods' exposed-time accounting must keep summing to
// wall-clock with faults active — recovery is a first-class category, not a
// leak.
func TestFaultyBreakdownSumsToWall(t *testing.T) {
	cfg := testConfig(t, 20, true)
	cfg.Faults = FaultPlan{FailRank: 0, FailAtStep: 7, CheckpointEvery: 3, StragglerFactor: 2, StragglerRanks: []int{2}}
	res, err := SyncEASGD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Breakdown.Total()
	if rel := (sum - res.SimTime) / res.SimTime; rel > 0.02 || rel < -0.02 {
		t.Errorf("faulty breakdown sum %v vs wall %v (rel %.3f)", sum, res.SimTime, rel)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	bad := []FaultPlan{
		{Heterogeneity: []float64{1, 0}},
		{StragglerFactor: -1},
		{StragglerFactor: 2, StragglerRanks: []int{9}},
		{StragglerFactor: 2, StragglerFrom: -1},
		{FailAtStep: 3, FailRank: 7},
		{FailAtStep: -2},
		{CheckpointEvery: -1},
	}
	for i, f := range bad {
		cfg := testConfig(t, 5, true)
		cfg.Faults = f
		if _, err := SyncSGD(cfg); err == nil {
			t.Errorf("bad fault plan %d accepted: %+v", i, f)
		}
	}
}
