package core

import (
	"testing"
)

// Tests of the semantic fault tier: message loss and corruption with
// retries, fail-stop-without-checkpoint continuation, and partial
// aggregation. Two invariants matter. Loss/corruption alone never changes
// the mathematics — every message is eventually delivered pristine, so the
// faulty run's losses and curves are bit-identical to the clean twin's and
// only time and wire bytes inflate. Membership-changing faults
// (fail-continue, partial drops) may change the mathematics, but
// deterministically: the same configuration and fault seed reproduce the
// run bit-for-bit.

// sameDrops asserts two runs dropped the same ranks at the same steps.
func sameDrops(t *testing.T, a, b Result) {
	t.Helper()
	if len(a.Dropped) != len(b.Dropped) {
		t.Fatalf("drop logs differ in length: %d vs %d", len(a.Dropped), len(b.Dropped))
	}
	for i := range a.Dropped {
		if a.Dropped[i].Step != b.Dropped[i].Step || len(a.Dropped[i].Ranks) != len(b.Dropped[i].Ranks) {
			t.Fatalf("drop record %d differs: %+v vs %+v", i, a.Dropped[i], b.Dropped[i])
		}
		for j := range a.Dropped[i].Ranks {
			if a.Dropped[i].Ranks[j] != b.Dropped[i].Ranks[j] {
				t.Fatalf("drop record %d differs: %+v vs %+v", i, a.Dropped[i], b.Dropped[i])
			}
		}
	}
}

// Message loss is absorbed by the retry protocol: the math is bit-identical
// to the clean twin, while the retries cost simulated time (surfaced as
// CatRetry at the root) and extra wire bytes (visible in Breakdown.Bytes).
func TestLossyRunKeepsMathPaysTimeAndBytes(t *testing.T) {
	clean, err := SyncSGD(testConfig(t, 30, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 30, true)
	cfg.Faults = FaultPlan{LossRate: 0.1, FaultSeed: 5}
	lossy, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalMath(t, clean, lossy)
	if lossy.SimTime <= clean.SimTime {
		t.Errorf("loss cost no time: %v vs clean %v", lossy.SimTime, clean.SimTime)
	}
	if lossy.Breakdown.ParamTraffic() <= clean.Breakdown.ParamTraffic() {
		t.Errorf("retry traffic not visible in Breakdown.Bytes: %d vs clean %d",
			lossy.Breakdown.ParamTraffic(), clean.Breakdown.ParamTraffic())
	}
	if lossy.Breakdown.Times[CatRetry] <= 0 {
		t.Errorf("no retry time surfaced at the root")
	}
	if clean.Breakdown.Times[CatRetry] != 0 || clean.Breakdown.Times[CatDropped] != 0 {
		t.Errorf("clean run charged fault categories: %+v", clean.Breakdown)
	}
}

// The fault plan is seed-deterministic: repeating a lossy run reproduces it
// bit-for-bit (timing included), and a different seed injects different
// faults.
func TestLossyRunDeterministicAcrossRepeats(t *testing.T) {
	mk := func(seed int64) Result {
		cfg := testConfig(t, 25, true)
		cfg.Faults = FaultPlan{LossRate: 0.12, CorruptRate: 0.05, FaultSeed: seed}
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(21), mk(21)
	identicalResult(t, a, b)
	if other := mk(22); other.SimTime == a.SimTime {
		t.Errorf("different fault seed reproduced the identical timing %v", a.SimTime)
	}
}

// A single corrupted-payload link (the "one bad cable"): checksums detect
// every garbled delivery and the resends keep the math clean.
func TestCorruptBadLinkKeepsMath(t *testing.T) {
	clean, err := SyncSGD(testConfig(t, 30, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 30, true)
	cfg.Faults = FaultPlan{
		BadLinks:  []BadLink{{From: 1, To: 0, Corrupt: 0.4}},
		FaultSeed: 9,
	}
	faulty, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalMath(t, clean, faulty)
	if faulty.SimTime <= clean.SimTime {
		t.Errorf("corruption cost no time: %v vs clean %v", faulty.SimTime, clean.SimTime)
	}
}

// The EASGD collectives ride the same guarded path — Sync EASGD3 (with its
// streamed broadcast pipeline) under loss keeps its math bit-identical too.
func TestEASGDLossyKeepsMath(t *testing.T) {
	clean, err := SyncEASGD3(testConfig(t, 25, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 25, true)
	cfg.Faults = FaultPlan{LossRate: 0.08, FaultSeed: 3}
	lossy, err := SyncEASGD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalMath(t, clean, lossy)
	if lossy.SimTime <= clean.SimTime {
		t.Errorf("loss cost no time: %v vs clean %v", lossy.SimTime, clean.SimTime)
	}
}

// Fail-stop without checkpoint: the rank dies for good, the survivors
// shrink the membership and finish the run — deterministically, with the
// sample stream reflecting the smaller fleet from the fail step on.
func TestFailContinueSurvivorsFinish(t *testing.T) {
	const iters, failAt = 30, 10
	mk := func() Result {
		cfg := testConfig(t, iters, true)
		cfg.Faults = FaultPlan{FailMode: FailContinue, FailRank: 2, FailAtStep: failAt}
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	identicalResult(t, a, b)
	// Steps 1..failAt-1 consume batch×P samples, the rest batch×(P−1).
	cfg := testConfig(t, iters, true)
	want := int64(cfg.Batch) * int64((failAt-1)*cfg.Workers+(iters-failAt+1)*(cfg.Workers-1))
	if a.Samples != want {
		t.Errorf("samples = %d, want %d (membership shrank at step %d)", a.Samples, want, failAt)
	}
	clean, err := SyncSGD(testConfig(t, iters, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss == clean.FinalLoss {
		t.Errorf("losing a worker's shard left the final loss unchanged (%v)", a.FinalLoss)
	}
}

// The hierarchical run shares the loop and the survivor machinery: a dead
// rank's group re-forms and the run completes.
func TestHierFailContinueSurvivorsFinish(t *testing.T) {
	mk := func() Result {
		cfg := testConfig(t, 20, true)
		cfg.Nodes, cfg.GPUsPerNode = 2, 2
		cfg.Faults = FaultPlan{FailMode: FailContinue, FailRank: 3, FailAtStep: 8}
		res, err := HierSyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	identicalResult(t, a, b)
}

// Partial aggregation with the full quorum required and no late ranks is
// mathematically the allreduce: same rank-ordered sum, bit-identical
// losses — only the gather's wire pattern (and so the timing) differs.
func TestPartialFullQuorumKeepsMath(t *testing.T) {
	clean, err := SyncSGD(testConfig(t, 25, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 25, true)
	cfg.Faults = FaultPlan{PartialK: cfg.Workers}
	partial, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalMath(t, clean, partial)
	if len(partial.Dropped) != 0 {
		t.Errorf("full-quorum run dropped gradients: %+v", partial.Dropped)
	}
}

// A hard straggler under partial aggregation misses the deadline: its
// gradient is dropped from (at least) the straggling steps, the drops are
// logged and seed-stable, and the coordinator's deadline wait surfaces as
// CatDropped.
func TestPartialAggregationDropsStraggler(t *testing.T) {
	mk := func() Result {
		cfg := testConfig(t, 20, true)
		cfg.Faults = FaultPlan{
			PartialK:        3,
			StragglerFactor: 40,
			StragglerRanks:  []int{1},
		}
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	identicalResult(t, a, b)
	sameDrops(t, a, b)
	if len(a.Dropped) == 0 {
		t.Fatal("straggler was never dropped")
	}
	for _, d := range a.Dropped {
		if len(d.Ranks) != 1 || d.Ranks[0] != 1 {
			t.Errorf("unexpected drop record %+v (want rank 1 only)", d)
		}
	}
	if a.Breakdown.Times[CatDropped] <= 0 {
		t.Errorf("no deadline wait surfaced as CatDropped")
	}
}

// The acceptance scenario: 5%% message loss, one corrupted-payload link and
// a mid-run fail-stop with no checkpoint, all at once. The run completes
// without deadlock and repeats bit-for-bit under the same fault seed.
func TestChaosAcceptanceScenario(t *testing.T) {
	mk := func() Result {
		cfg := testConfig(t, 30, true)
		cfg.Faults = FaultPlan{
			LossRate:   0.05,
			BadLinks:   []BadLink{{From: 1, To: 0, Corrupt: 0.3}},
			FaultSeed:  11,
			FailMode:   FailContinue,
			FailRank:   3,
			FailAtStep: 15,
		}
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	identicalResult(t, a, b)
	if a.SimTime <= 0 {
		t.Fatal("run did not advance")
	}
}

// Methods whose parameter traffic bypasses the guarded message path must
// reject semantic knobs instead of silently ignoring them; the collective
// families reject only the membership-changing knobs they cannot honor.
func TestSemanticKnobsRejectedWhereUnsupported(t *testing.T) {
	cases := []struct {
		method string
		faults FaultPlan
	}{
		{"async-sgd", FaultPlan{LossRate: 0.1}},
		{"hogwild-easgd", FaultPlan{CorruptRate: 0.1}},
		{"original-easgd*", FaultPlan{LossRate: 0.1}},
		{"async-sgd", FaultPlan{FailMode: FailContinue, FailRank: 1, FailAtStep: 5}},
		{"sync-easgd3", FaultPlan{FailMode: FailContinue, FailRank: 1, FailAtStep: 5}},
		{"sync-easgd3", FaultPlan{PartialK: 2}},
	}
	for _, c := range cases {
		cfg := testConfig(t, 5, true)
		cfg.Faults = c.faults
		if _, err := Methods[c.method](cfg); err == nil {
			t.Errorf("%s accepted %+v", c.method, c.faults)
		}
	}

	hier := testConfig(t, 5, true)
	hier.Nodes, hier.GPUsPerNode = 2, 2
	hier.Faults = FaultPlan{PartialK: 2}
	if _, err := HierSyncSGD(hier); err == nil {
		t.Error("hier-sync-sgd accepted partial aggregation")
	}
	hier.Faults = FaultPlan{LossRate: 0.1, BadLinks: []BadLink{{From: 0, To: 1, Loss: 0.1}}}
	if _, err := HierSyncSGD(hier); err == nil {
		t.Error("hier-sync-sgd accepted BadLinks")
	}
	overlap := testConfig(t, 5, true)
	overlap.Overlap = true
	overlap.Faults = FaultPlan{PartialK: 2}
	if _, err := SyncSGD(overlap); err == nil {
		t.Error("sync-sgd accepted PartialK with Overlap")
	}
}

// Semantic-knob validation, including the unconditional FailRank bound: a
// plan naming a rank the run does not have is rejected even while dormant.
func TestSemanticFaultPlanValidation(t *testing.T) {
	bad := []FaultPlan{
		{FailRank: 7}, // no FailAtStep — still out of range for 4 workers
		{FailRank: -1},
		{LossRate: 1.2},
		{CorruptRate: -0.1},
		{LossRate: 0.6, CorruptRate: 0.5},
		{FailMode: "bogus"},
		{FailMode: FailContinue}, // needs FailAtStep
		{FailMode: FailContinue, FailAtStep: 5, FailRank: 0},
		{PartialK: 9},
		{PartialK: -1},
		{PartialDeadline: -1},
		{MaxSendAttempts: -1},
		{BadLinks: []BadLink{{From: 0, To: 9, Loss: 0.1}}},
		{BadLinks: []BadLink{{From: 2, To: 2, Loss: 0.1}}},
		{LossRate: 0.5, BadLinks: []BadLink{{From: 0, To: 1, Loss: 0.5}}},
	}
	for i, f := range bad {
		cfg := testConfig(t, 5, true)
		cfg.Faults = f
		if _, err := SyncSGD(cfg); err == nil {
			t.Errorf("bad fault plan %d accepted: %+v", i, f)
		}
	}
}
