package core

import (
	"reflect"
	"testing"

	"scaledl/internal/hw"
	"scaledl/internal/par"
)

// runSerialAndParallel runs fn twice at a fixed pool width of 4 — once with
// every par fan-out forced inline (the bitwise reference) and once with the
// pool live — and returns both results. Width is pinned so chunk layouts
// and partial-merge orders are identical; the only variable is real
// concurrency.
func runSerialAndParallel(t *testing.T, fn func() (Result, error)) (serial, parallel Result) {
	t.Helper()
	par.SetWidth(4)
	defer par.SetWidth(0)

	par.SetSerial(true)
	serial, err := fn()
	par.SetSerial(false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err = fn()
	if err != nil {
		t.Fatal(err)
	}
	return serial, parallel
}

// TestParallelExecutionBitIdenticalToSerial is the contract of the par
// fan-out: for every algorithm, running the per-worker gradient math on the
// shared pool must produce a Result — loss curve, breakdown, accuracy,
// final loss, simulated time — bit-identical to inline execution, because
// work is assigned to fixed indices and all reductions happen in fixed
// slice order after the join.
func TestParallelExecutionBitIdenticalToSerial(t *testing.T) {
	for _, name := range MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			mk := func() (Result, error) {
				cfg := testConfig(t, 20, true)
				cfg.EvalEvery = 5
				if name == "async-msgd" || name == "async-measgd" {
					cfg.LR = 0.01
				}
				if name == "hier-sync-sgd" || name == "hier-sync-easgd" {
					cfg.Nodes, cfg.GPUsPerNode = 2, 2
				}
				return Methods[name](cfg)
			}
			serial, parallel := runSerialAndParallel(t, mk)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("parallel result differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}

// TestKNLClusterParallelBitIdenticalToSerial covers the rank-program
// algorithm, whose gradient fan-out overlaps via Submit/join rather than a
// single coordinator loop.
func TestKNLClusterParallelBitIdenticalToSerial(t *testing.T) {
	mk := func() (Result, error) {
		cfg := testConfig(t, 20, true)
		cfg.EvalEvery = 5
		return KNLClusterEASGD(KNLClusterConfig{
			Config: cfg,
			Fabric: hw.Link{Name: "fabric", Alpha: 1.5e-6, Beta: 1 / 8e9},
		})
	}
	serial, parallel := runSerialAndParallel(t, mk)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel result differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestRepeatedPoolRunsBitIdentical runs the same configuration twice with
// the pool live: goroutine scheduling varies between runs, results must
// not. (Dynamic index dispatch in par.For means *which* goroutine runs an
// index is nondeterministic — this checks that it never matters.)
func TestRepeatedPoolRunsBitIdentical(t *testing.T) {
	par.SetWidth(4)
	defer par.SetWidth(0)
	var results []Result
	for i := 0; i < 2; i++ {
		res, err := SyncEASGD3(testConfig(t, 15, true))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("repeated pool runs differ: %+v vs %+v", results[0], results[1])
	}
}
