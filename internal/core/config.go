package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/data"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
	"scaledl/internal/quant"
	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

// Platform is the simulated hardware a run executes on: the per-worker
// device, the master device, and the links parameters and data travel over.
// It also fixes the message plan (packed single-buffer versus per-layer),
// the knob of §5.2.
type Platform struct {
	// Worker is the per-worker accelerator (one GPU, or one KNL node).
	Worker hw.Device
	// Master is the device the center weight lives on in CPU-mastered
	// algorithms.
	Master hw.Device
	// HostParam carries CPU↔GPU parameter traffic.
	HostParam comm.Transferer
	// PeerParam carries GPU↔GPU parameter traffic (the PCIe-switch P2P path
	// Sync EASGD2/3 switch to).
	PeerParam comm.Transferer
	// Data carries CPU→GPU minibatch copies.
	Data comm.Transferer
	// Packed selects the §5.2 single-message layout for parameter traffic.
	Packed bool
	// GatherBW, if nonzero, is the staging bandwidth penalty per-layer
	// (unpacked) plans pay for noncontiguous memory access.
	GatherBW float64
	// SwitchConcurrency bounds how many parameter transfers the PCIe
	// switch carries at once; 0 (the default) is unconstrained, matching
	// the analytic model's assumption that a collective round's pair
	// transfers never queue. Setting it below Workers/2 makes switch
	// contention emerge in the simulated collectives.
	SwitchConcurrency int
	// Fabric joins nodes in hierarchical (Nodes × GPUsPerNode) runs: every
	// cross-node transfer rides it instead of the intra-node links. nil
	// defaults to Mellanox FDR InfiniBand (Table 2's fastest fabric).
	Fabric comm.Transferer
	// NICConcurrency bounds how many fabric transfers one node carries at
	// once (its network port; 2 models one full-duplex port). 0 is
	// unconstrained — the flat model's assumption that a collective's
	// concurrent per-GPU fabric streams never queue, which is exactly the
	// assumption the hierarchical collectives exist to drop.
	NICConcurrency int
	// LinkScale degrades named platform segments for failure scenarios:
	// every transfer on a listed segment takes factor times as long
	// (comm.ScaleLink). Keys: "host" (HostParam), "peer" (PeerParam),
	// "data" (the minibatch copy link) and "fabric" (the inter-node link).
	// Absent keys and factor 1 leave a segment untouched; factors must be
	// positive. Like every FaultPlan knob this is timing-only — the
	// training mathematics is bit-identical to the undegraded run.
	LinkScale map[string]float64
}

// linkScaleSegments are the segment names LinkScale accepts.
var linkScaleSegments = map[string]bool{"host": true, "peer": true, "data": true, "fabric": true}

// link applies any LinkScale degradation for segment name to l.
func (p Platform) link(name string, l comm.Transferer) comm.Transferer {
	f, ok := p.LinkScale[name]
	if !ok || f == 1 || l == nil {
		return l
	}
	return comm.ScaleLink(l, f)
}

// topology builds the simulated message fabric for a run: the paper's
// PCIe tree with the host as the extra node. hostStaged routes GPU↔GPU
// exchanges through host staging (the transfer mode of Sync EASGD1 and
// the data-parallel allreduce, whose parameter traffic rides HostParam);
// otherwise they use peer DMA through the switch (Sync EASGD2/3).
func (p Platform) topology(env *sim.Env, workers int, hostStaged bool) *comm.Topology {
	return comm.NewPCIeTree(env, comm.PCIeConfig{
		GPUs:              workers,
		Host:              p.link("host", p.HostParam),
		Peer:              p.link("peer", p.PeerParam),
		HostStaged:        hostStaged,
		SwitchConcurrency: p.SwitchConcurrency,
	})
}

// hierTopology composes the two-level cluster of the hierarchical
// algorithms: one PCIe tree per node (the single-node topology above,
// unchanged) under the platform's fabric, with the per-node NIC bound.
func (p Platform) hierTopology(env *sim.Env, nodes, gpusPerNode int, hostStaged bool) *comm.MultiLevel {
	fabric := p.Fabric
	if fabric == nil {
		fabric = hw.MellanoxFDR
	}
	return comm.NewMultiLevel(env, comm.MultiLevelConfig{
		Nodes: nodes,
		PerNode: func(env *sim.Env, node int) *comm.Topology {
			return comm.NewPCIeTree(env, comm.PCIeConfig{
				GPUs:              gpusPerNode,
				Host:              p.link("host", p.HostParam),
				Peer:              p.link("peer", p.PeerParam),
				HostStaged:        hostStaged,
				SwitchConcurrency: p.SwitchConcurrency,
			})
		},
		Fabric:         p.link("fabric", fabric),
		NICConcurrency: p.NICConcurrency,
	})
}

// DefaultGPUPlatform models the paper's 4-GPU experiment node (Tesla M40s
// behind a 96-lane PCIe switch): pageable per-layer host transfers for the
// legacy algorithms, pinned packed transfers plus peer-to-peer DMA for the
// redesigned ones. Packed toggles which parameter path the run uses.
func DefaultGPUPlatform(packed bool) Platform {
	p := Platform{
		Worker:    hw.TeslaM40,
		Master:    hw.XeonE5,
		PeerParam: hw.GPUPeer,
		Data:      hw.PCIePinned,
		Packed:    packed,
		GatherBW:  6e9,
		// Multi-node runs join these nodes over FDR InfiniBand through one
		// full-duplex port per node (the paper's 16-node GPU cluster).
		Fabric:         hw.MellanoxFDR,
		NICConcurrency: 2,
	}
	if packed {
		p.HostParam = hw.PCIePinned
	} else {
		p.HostParam = hw.PCIeUnpinned
	}
	// Tiny benchmark kernels run far below device peak; 4% of peak matches
	// LeNet-scale per-iteration times on the paper's hardware.
	p.Worker.Eff = 0.04
	return p
}

// Config describes one distributed training run.
type Config struct {
	// Def is the network definition every worker instantiates (data
	// parallelism, Figure 4.1 of the paper).
	Def nn.NetDef
	// Train and Test are the datasets. Workers sample Train with
	// replacement, as in Algorithms 1-4 line "randomly pick b samples".
	Train *data.Dataset
	Test  *data.Dataset
	// Workers is P, the number of worker devices.
	Workers int
	// Batch is b, the per-worker minibatch size.
	Batch int
	// LR is η.
	LR float32
	// Momentum is µ (used by the momentum variants; rule of thumb 0.9).
	Momentum float32
	// Rho is ρ, the elastic force connecting local and center weights; the
	// moving rate η·ρ follows the EASGD paper's 0.9/P guidance by default.
	Rho float32
	// Iterations is the run budget: master interactions for the round-robin
	// and asynchronous algorithms, synchronous rounds for the Sync family.
	Iterations int
	// Seed makes the whole run reproducible.
	Seed int64
	// Platform is the simulated hardware.
	Platform Platform
	// EvalEvery records a curve point every this many iterations (0 means
	// final-only). Evaluation is an observer: it consumes no simulated time,
	// matching the paper's reporting of training time separately from
	// testing.
	EvalEvery int
	// EvalBatch is the evaluation batch size (default 256).
	EvalBatch int
	// TargetAcc, when positive, stops the run at the first accuracy probe
	// reaching it (probes happen every EvalEvery iterations). The paper's
	// comparisons are at equal accuracy, so experiments set a target and
	// compare the stopping times.
	TargetAcc float64
	// Compression selects low-precision parameter transmission — the
	// extension the paper defers to future work in §3.4. SyncSGD
	// quantizes gradients per worker (1-bit SGD with error feedback);
	// the asynchronous and round-robin algorithms, whose payloads are
	// whole weights, delta-encode each directed stream (quant.DeltaCodec).
	// Quantization error enters the real training mathematics; per-message
	// wire sizes shrink accordingly in the simulated transfers.
	Compression quant.Scheme
	// ComputePrec selects the storage precision of the packed GEMM operand
	// panels for the run's real training mathematics: "fp32" (default),
	// "bf16" or "fp16" (tensor.ParsePrecision). Accumulation always stays
	// fp32 — only the packed copies of the operands are narrowed — so this
	// is the reduced-precision single-node compute lever the paper's KNL
	// discussion motivates, composable with every method and with
	// Compression (which narrows the wire instead). The setting is applied
	// for the duration of the run and restored afterwards.
	ComputePrec string
	// Schedule selects the collective message pattern for the allreduce
	// algorithms (SyncSGD, KNLClusterEASGD): tree (default), ring, rhd,
	// chain or linear — see comm.ParseSchedule. The Sync EASGD family
	// always uses the paper's binomial tree.
	Schedule comm.Schedule
	// CommMode selects the gradient transport of the allreduce methods
	// (sync-sgd, hier-sync-sgd): dense (every layer's gradient allreduces,
	// the default), sfb (factorable — dense — layers broadcast sufficient
	// factors, comm.FactorAllGather, and receivers reconstruct), or hybrid
	// (per-layer winner of the analytic cost model, SelectCommModes).
	// Reconstruction replays each party's exact gradient computation and
	// combines in rank order, so the trained mathematics is bit-identical
	// to dense mode for every schedule — only the wire bytes and the time
	// breakdown (CatSFBRecon) move. Composes with Overlap/BucketBytes: SFB
	// layers leave the bucket stream (their factors ride their own forked
	// collectives) while the remaining layers bucket as usual. Incompatible
	// with Compression, partial aggregation and fail-continue faults.
	// Methods that do not allreduce gradients ignore it.
	CommMode CommMode
	// Overlap enables the layer-streaming communication pipeline: the
	// backward pass emits per-layer gradient-ready events (nn.GradEvent),
	// ready layers coalesce into ~BucketBytes buckets (comm.Bucketizer),
	// and each bucket's communication launches the moment its last layer
	// lands — so wire time hides under the tail of backprop instead of
	// serializing after it. SyncSGD runs per-bucket overlapped allreduces
	// under Schedule; Async SGD-style workers and the round-robin master
	// stream per-bucket parameter-server transfers; KNLClusterEASGD streams
	// its center broadcast beneath compute. Gradient mathematics is
	// bit-identical with Overlap on or off — streaming changes when bytes
	// move, never what is summed. Sync EASGD3 always overlaps (that is its
	// definition) and honors BucketBytes regardless of this flag.
	Overlap bool
	// BucketBytes is the gradient-bucket coalescing size of the streaming
	// pipeline (default 1 MiB when 0). Buckets respect layer boundaries:
	// sizes below the smallest layer degrade to one bucket per layer, sizes
	// above the model total to the monolithic single bucket.
	BucketBytes int64
	// Nodes and GPUsPerNode select the hierarchical two-level cluster of
	// the hier methods (hier-sync-sgd, hier-sync-easgd): Nodes machines of
	// GPUsPerNode workers each, composed as per-node PCIe trees under the
	// platform's Fabric. Workers is then Nodes×GPUsPerNode (Validate fills
	// it in when zero and rejects a mismatch). Both zero means flat — every
	// other method ignores these.
	Nodes       int
	GPUsPerNode int
	// HierSchedule selects the inter-node (fabric) collective schedule of
	// the hierarchical methods; Schedule keeps selecting the intra-node
	// one. Recursive halving/doubling among leaders is the strong default
	// regime on saturating fabrics (see the hier harness experiment).
	HierSchedule comm.Schedule
	// TauLocal and TauGlobal pace hier-sync-easgd's node-group elastic
	// averaging: workers run local SGD steps, every TauLocal-th step each
	// node group syncs with its group center over the intra-node links, and
	// every TauGlobal-th step the group centers sync with the replicated
	// global center over the fabric. Defaults: TauLocal 1, TauGlobal
	// 4·TauLocal. TauGlobal must be ≥ TauLocal; hier-sync-sgd ignores both.
	TauLocal  int
	TauGlobal int
	// Faults injects failure scenarios — heterogeneous worker speeds,
	// stragglers, fail-stop with checkpoint/restart — into the run's timing
	// (see FaultPlan). The zero value is the fault-free run of the paper.
	// Link degradation is configured on Platform.LinkScale; both are
	// timing-only and leave the training mathematics bit-identical.
	Faults FaultPlan
}

// DefaultBucketBytes is the streaming pipeline's bucket coalescing default:
// 1 MiB, small enough that several buckets fit in a paper-scale model (so
// communication starts well before backprop ends), large enough to amortize
// the per-collective latency α.
const DefaultBucketBytes = 1 << 20

// Validate checks the configuration and applies documented defaults.
func (c *Config) Validate() error {
	if c.Train == nil || c.Train.Len() == 0 {
		return fmt.Errorf("core: config needs a non-empty training set")
	}
	if c.Nodes != 0 || c.GPUsPerNode != 0 {
		if c.Nodes < 1 || c.GPUsPerNode < 1 {
			return fmt.Errorf("core: hierarchical config needs both Nodes and GPUsPerNode >= 1, got %d x %d", c.Nodes, c.GPUsPerNode)
		}
		if c.Workers == 0 {
			c.Workers = c.Nodes * c.GPUsPerNode
		} else if c.Workers != c.Nodes*c.GPUsPerNode {
			return fmt.Errorf("core: workers %d does not match nodes x gpus-per-node %d x %d", c.Workers, c.Nodes, c.GPUsPerNode)
		}
	}
	if c.TauLocal == 0 {
		c.TauLocal = 1
	}
	if c.TauGlobal == 0 {
		c.TauGlobal = 4 * c.TauLocal
	}
	if c.TauLocal < 1 || c.TauGlobal < c.TauLocal {
		return fmt.Errorf("core: need TauGlobal >= TauLocal >= 1, got %d / %d", c.TauLocal, c.TauGlobal)
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: workers must be >= 1, got %d", c.Workers)
	}
	if c.Batch < 1 {
		return fmt.Errorf("core: batch must be >= 1, got %d", c.Batch)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("core: iterations must be >= 1, got %d", c.Iterations)
	}
	if c.LR <= 0 {
		return fmt.Errorf("core: learning rate must be positive, got %v", c.LR)
	}
	if c.Rho == 0 {
		// EASGD guidance: moving rate η·ρ ≈ 0.9/P.
		c.Rho = 0.9 / (float32(c.Workers) * c.LR)
	}
	if c.EvalBatch == 0 {
		c.EvalBatch = 256
	}
	if c.BucketBytes == 0 {
		c.BucketBytes = DefaultBucketBytes
	}
	if c.BucketBytes < 0 {
		return fmt.Errorf("core: bucket bytes must be positive, got %d", c.BucketBytes)
	}
	if c.Def.In.Dim() != c.Train.Spec.SampleDim() {
		return fmt.Errorf("core: net input %v does not match dataset dim %d", c.Def.In, c.Train.Spec.SampleDim())
	}
	if err := c.Faults.validate(c.Workers); err != nil {
		return err
	}
	switch c.CommMode {
	case CommDense, CommSFB, CommHybrid:
	default:
		return fmt.Errorf("core: unknown comm mode %d (one of %v)", int(c.CommMode), CommModes())
	}
	if c.CommMode != CommDense {
		// The factor transport carries rank-tagged (dY, X) views, not the
		// quantizable gradient vector, and its allgather has no partial or
		// shrinking-membership form here.
		if c.Compression != quant.None {
			return fmt.Errorf("core: comm mode %v is incompatible with gradient compression", c.CommMode)
		}
		if c.Faults.PartialK > 0 {
			return fmt.Errorf("core: comm mode %v is incompatible with partial aggregation (PartialK)", c.CommMode)
		}
		if c.Faults.failContinue() {
			return fmt.Errorf("core: comm mode %v is incompatible with fail-continue faults", c.CommMode)
		}
	}
	if _, err := tensor.ParsePrecision(c.ComputePrec); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	for name, f := range c.Platform.LinkScale {
		if !linkScaleSegments[name] {
			return fmt.Errorf("core: unknown link-scale segment %q (want host, peer, data or fabric)", name)
		}
		if f <= 0 {
			return fmt.Errorf("core: link-scale factor for %q must be positive, got %v", name, f)
		}
	}
	return nil
}

// plan builds the parameter message plan for a model's per-layer sizes.
func (p Platform) plan(layerParamCounts []int) comm.Plan {
	bytes := make([]int64, len(layerParamCounts))
	for i, c := range layerParamCounts {
		bytes[i] = int64(c) * 4
	}
	return comm.Plan{LayerBytes: bytes, Packed: p.Packed, GatherBW: p.GatherBW}
}

// Runner is a distributed training algorithm.
type Runner func(Config) (Result, error)

// Methods maps the paper's method names to their implementations. The
// first five rows are the existing methods the paper compares against; the
// rest are its contributions (Figure 9's taxonomy).
var Methods = map[string]Runner{
	"original-easgd*": OriginalEASGDSerial,
	"original-easgd":  OriginalEASGD,
	"async-sgd":       AsyncSGD,
	"async-msgd":      AsyncMSGD,
	"hogwild-sgd":     HogwildSGD,
	"sync-sgd":        SyncSGD,
	"async-easgd":     AsyncEASGD,
	"async-measgd":    AsyncMEASGD,
	"hogwild-easgd":   HogwildEASGD,
	"sync-easgd1":     SyncEASGD1,
	"sync-easgd2":     SyncEASGD2,
	"sync-easgd3":     SyncEASGD3,
	"hier-sync-sgd":   HierSyncSGD,
	"hier-sync-easgd": HierSyncEASGD,
}

// MethodNames lists the registry in the paper's presentation order, with
// the hierarchical multi-node extensions last.
func MethodNames() []string {
	return []string{
		"original-easgd*", "original-easgd",
		"async-sgd", "async-msgd", "hogwild-sgd", "sync-sgd",
		"async-easgd", "async-measgd", "hogwild-easgd",
		"sync-easgd1", "sync-easgd2", "sync-easgd3",
		"hier-sync-sgd", "hier-sync-easgd",
	}
}
