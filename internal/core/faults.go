package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/parse"
	"scaledl/internal/sim"
)

// FaultPlan opens the failure-scenario space around the paper's fault-free
// runs in two tiers.
//
// The timing-only knobs — heterogeneous worker speeds, transient
// stragglers, degraded links (Platform.LinkScale) and one fail-stop crash
// with checkpoint/restart recovery — scale simulated delays or insert
// stalls and never touch the gradient mathematics, so such a run produces
// bit-identical losses, accuracies and curves to its fault-free twin and
// differs exactly in where the simulated time goes.
//
// The semantic knobs — LossRate, CorruptRate, BadLinks, FailMode
// "continue", PartialK — change what happens: a message can vanish on the
// wire or arrive garbled (detected by ack timeout or checksum and resent
// by comm's guarded delivery), a failed worker's gradient permanently
// leaves the sum, and a partial-aggregation deadline can drop a late
// gradient from a step. The mathematics may then legitimately diverge from
// the clean twin — but deterministically: every fault outcome is a pure
// function of (FaultSeed, link endpoints, message id, attempt), never of
// event order, so two runs with the same configuration and seed are
// bit-identical in losses, drops and timing. The guarded delivery path is
// only entered when a semantic knob is set; otherwise every message takes
// the exact fault-free fast path.
//
// Semantic faults are supported by the collective-driven families —
// sync-sgd and hier-sync-sgd (everything), the Sync EASGD versions and
// hier-sync-easgd (loss/corruption only) — and rejected with an error by
// the methods whose parameter traffic bypasses the guarded message path
// (the asynchronous family, round-robin, the KNL cluster).
//
// Steps are counted per worker and 1-based: a worker's first iteration is
// step 1. For synchronous families a step is a global round; for the
// asynchronous and round-robin families it is that worker's own iteration
// count, so the same plan stays meaningful across all of them.
type FaultPlan struct {
	// Heterogeneity makes the fleet non-uniform: worker i's compute time is
	// scaled by Heterogeneity[i mod len]. Empty means homogeneous (all 1).
	// Factors must be positive; {1, 1.15} models every other device running
	// 15% slow — the silent thermal throttling of large clusters.
	Heterogeneity []float64

	// StragglerFactor > 0 multiplies the compute time of the ranks in
	// StragglerRanks during steps [StragglerFrom, StragglerUntil). Steps are
	// 1-based; StragglerFrom 0 means from the start and StragglerUntil 0
	// means to the end. A factor of exactly 1 is the degenerate no-op the
	// fault tests pin. Zero disables the straggler entirely.
	StragglerFactor float64
	StragglerRanks  []int
	StragglerFrom   int
	StragglerUntil  int

	// FailAtStep > 0 injects one fail-stop: worker FailRank crashes at the
	// start of that step and recovers by reloading the last checkpoint over
	// the data link and replaying every step since — data copy, compute and
	// local update per replayed step. With CheckpointEvery 0 there is no
	// checkpoint and the replay reaches back to step 1 (restart from
	// scratch). The recovered state is by construction identical to the
	// pre-crash state, so only time is lost — the stall surfaces on the
	// failed rank and, through collectives and barriers, as waiting on every
	// rank synchronized with it.
	FailRank   int
	FailAtStep int

	// CheckpointEvery > 0 makes every worker write a checkpoint (one model
	// copy over the data link) after each CheckpointEvery-th step — the
	// steady cost that buys a shorter replay after a crash.
	CheckpointEvery int

	// FailMode selects what a fail-stop means. Empty or FailRecover is the
	// timing-only behavior above: the rank reloads the latest checkpoint and
	// replays, the math is untouched. FailContinue is the semantic variant:
	// the rank dies at the start of step FailAtStep with no checkpoint and
	// no recovery, the survivors shrink the collective membership around it
	// (comm's survivor-aware schedules) and finish the run with P−1
	// contributions per step. It requires FailAtStep > 0, at least two
	// workers, and FailRank != 0 (rank 0 coordinates), and is supported by
	// sync-sgd and hier-sync-sgd.
	FailMode string

	// LossRate and CorruptRate are the topology-wide per-attempt
	// probabilities that a message vanishes on the wire or arrives garbled.
	// Either > 0 activates comm's guarded delivery on the run's topology:
	// checksummed payloads, per-message acks, timeout/exponential-backoff
	// retries (every attempt's bytes charged to the wire, so retry traffic
	// inflates Breakdown.Bytes), with the coordinator's own retry time
	// surfaced as CatRetry.
	LossRate    float64
	CorruptRate float64

	// BadLinks adds extra loss/corruption on specific directed worker→worker
	// links on top of the global rates — the "one bad cable" scenario. Flat
	// topologies only (worker ranks are topology nodes there).
	BadLinks []BadLink

	// FaultSeed seeds the deterministic fault plan; 0 uses Config.Seed.
	FaultSeed int64

	// MaxSendAttempts bounds per-message delivery attempts (0 = comm's
	// default of 8); exhausting them panics — an undeliverable message is a
	// configuration error, not a scenario.
	MaxSendAttempts int

	// PartialK > 0 switches sync-sgd to partial aggregation: rank 0 gathers
	// gradients and proceeds once K of the live ranks' contributions (its
	// own included) have arrived and the deadline has passed for the rest.
	// Ranks whose step-t gradient misses the window contribute zero to that
	// step (the averaged step keeps the live-worker divisor); every dropped
	// (step, rank) pair is recorded in Result.Dropped and the coordinator's
	// deadline wait in CatDropped. Incompatible with Config.Overlap.
	PartialK int

	// PartialDeadline scales the partial-aggregation window: rank 0 waits
	// PartialDeadline × (one gradient message's wire time into rank 0) past
	// the quorum before dropping stragglers. 0 means 3.
	PartialDeadline float64
}

// FailMode values.
const (
	// FailRecover reloads the latest checkpoint and replays (timing-only,
	// the default).
	FailRecover = "recover"
	// FailContinue kills the rank for good; survivors shrink the
	// collective membership and finish without it.
	FailContinue = "continue"
)

// FailModes lists every mode name accepted by ParseFailMode.
func FailModes() []string { return []string{FailRecover, FailContinue} }

// ParseFailMode validates a fail-mode name ("recover", "continue"); the
// empty string means recover. It is the strict-parser twin of
// ParseCommMode for the -fail-mode style flags.
func ParseFailMode(name string) (string, error) {
	switch name {
	case "":
		return FailRecover, nil
	case FailRecover, FailContinue:
		return name, nil
	default:
		return "", parse.Errorf("fail mode", name, FailModes())
	}
}

// BadLink adds per-link loss/corruption on the directed link From→To
// (worker ranks), on top of FaultPlan.LossRate/CorruptRate.
type BadLink struct {
	From, To      int
	Loss, Corrupt float64
}

// enabled reports whether any timing fault knob is active (the gate on the
// per-step fault hooks).
func (f *FaultPlan) enabled() bool {
	return len(f.Heterogeneity) > 0 || f.StragglerFactor != 0 ||
		f.FailAtStep > 0 || f.CheckpointEvery > 0
}

// semantic reports whether any knob that injects message-level faults is
// set — the condition under which a run's topology gets comm.Chaos
// installed.
func (f *FaultPlan) semantic() bool {
	return f.LossRate > 0 || f.CorruptRate > 0 || len(f.BadLinks) > 0
}

// failContinue reports whether the plan kills a rank for good.
func (f *FaultPlan) failContinue() bool {
	return f.FailMode == FailContinue && f.FailAtStep > 0
}

// validate checks the plan against the run's worker count.
func (f *FaultPlan) validate(workers int) error {
	for i, h := range f.Heterogeneity {
		if h <= 0 {
			return fmt.Errorf("core: heterogeneity factor %d must be positive, got %v", i, h)
		}
	}
	if f.StragglerFactor < 0 {
		return fmt.Errorf("core: straggler factor must be >= 0, got %v", f.StragglerFactor)
	}
	for _, r := range f.StragglerRanks {
		if r < 0 || r >= workers {
			return fmt.Errorf("core: straggler rank %d outside 0..%d", r, workers-1)
		}
	}
	if f.StragglerFrom < 0 || f.StragglerUntil < 0 {
		return fmt.Errorf("core: straggler step window must be non-negative, got [%d, %d)", f.StragglerFrom, f.StragglerUntil)
	}
	if f.FailAtStep < 0 {
		return fmt.Errorf("core: fail-at step must be >= 0, got %d", f.FailAtStep)
	}
	// The rank bound holds whenever FailRank is set, not only when a fail
	// step arms it: a plan naming a rank the run does not have is a mistake
	// worth rejecting even while dormant.
	if f.FailRank < 0 || f.FailRank >= workers {
		return fmt.Errorf("core: fail rank %d outside 0..%d", f.FailRank, workers-1)
	}
	if f.CheckpointEvery < 0 {
		return fmt.Errorf("core: checkpoint interval must be >= 0, got %d", f.CheckpointEvery)
	}
	switch f.FailMode {
	case "", FailRecover:
	case FailContinue:
		if f.FailAtStep <= 0 {
			return fmt.Errorf("core: fail mode %q needs FailAtStep > 0", f.FailMode)
		}
		if workers < 2 {
			return fmt.Errorf("core: fail mode %q needs at least 2 workers", f.FailMode)
		}
		if f.FailRank == 0 {
			return fmt.Errorf("core: fail mode %q cannot kill rank 0 (the coordinator)", f.FailMode)
		}
	default:
		return parse.Errorf("fail mode", f.FailMode, FailModes())
	}
	if f.LossRate < 0 || f.LossRate >= 1 {
		return fmt.Errorf("core: loss rate must be in [0, 1), got %v", f.LossRate)
	}
	if f.CorruptRate < 0 || f.CorruptRate >= 1 {
		return fmt.Errorf("core: corrupt rate must be in [0, 1), got %v", f.CorruptRate)
	}
	if f.LossRate+f.CorruptRate >= 1 {
		return fmt.Errorf("core: loss + corrupt rates must leave delivery possible, got %v", f.LossRate+f.CorruptRate)
	}
	for i, bl := range f.BadLinks {
		if bl.From < 0 || bl.From >= workers || bl.To < 0 || bl.To >= workers || bl.From == bl.To {
			return fmt.Errorf("core: bad link %d: %d->%d is not a worker pair of 0..%d", i, bl.From, bl.To, workers-1)
		}
		if bl.Loss < 0 || bl.Corrupt < 0 {
			return fmt.Errorf("core: bad link %d: negative rate", i)
		}
		if f.LossRate+bl.Loss+f.CorruptRate+bl.Corrupt >= 1 {
			return fmt.Errorf("core: bad link %d: combined rates must leave delivery possible", i)
		}
	}
	if f.MaxSendAttempts < 0 {
		return fmt.Errorf("core: max send attempts must be >= 0, got %d", f.MaxSendAttempts)
	}
	if f.PartialK < 0 || f.PartialK > workers {
		return fmt.Errorf("core: partial-aggregation K %d outside 1..%d", f.PartialK, workers)
	}
	if f.PartialDeadline < 0 {
		return fmt.Errorf("core: partial deadline must be >= 0, got %v", f.PartialDeadline)
	}
	return nil
}

// requireTimingOnly rejects semantic-fault knobs for methods whose
// parameter traffic bypasses comm's guarded message path (SendModel /
// DelayModel transfers): the chaos layer could not protect them, so the
// knobs are an error there rather than silently inert.
func (f *FaultPlan) requireTimingOnly(method string) error {
	if f.semantic() {
		return fmt.Errorf("core: %s does not support message loss/corruption (its parameter traffic bypasses the guarded message path)", method)
	}
	return f.requireNoMembershipChange(method)
}

// requireNoMembershipChange rejects the knobs that shrink or gate
// collective membership (fail-continue, partial aggregation) for methods
// whose center mathematics assumes all P workers every round.
func (f *FaultPlan) requireNoMembershipChange(method string) error {
	if f.failContinue() {
		return fmt.Errorf("core: %s does not support fail mode %q (its center update needs all %s workers); use sync-sgd or hier-sync-sgd", method, FailContinue, "P")
	}
	if f.PartialK > 0 {
		return fmt.Errorf("core: %s does not support partial aggregation (PartialK); use sync-sgd", method)
	}
	return nil
}

// requireFlatLinks rejects BadLinks for methods running on a composed
// hierarchical topology, where worker ranks are not topology node ids.
func (f *FaultPlan) requireFlatLinks(method string) error {
	if len(f.BadLinks) > 0 {
		return fmt.Errorf("core: %s does not support per-link BadLinks (hierarchical node ids are not worker ranks); use the global rates", method)
	}
	return nil
}

// chaos converts the plan's semantic knobs into the comm-layer
// configuration (nil when no semantic knob is set); seed is the run seed
// used when FaultSeed is 0.
func (f *FaultPlan) chaos(seed int64) *comm.Chaos {
	if !f.semantic() {
		return nil
	}
	s := f.FaultSeed
	if s == 0 {
		s = seed
	}
	return &comm.Chaos{
		Seed:        s,
		Loss:        f.LossRate,
		Corrupt:     f.CorruptRate,
		MaxAttempts: f.MaxSendAttempts,
	}
}

// installChaos arms topo with the plan's semantic faults: the seeded
// loss/corruption plan plus the per-link BadLinks wrappers. rankNode maps
// worker ranks to topology node ids (identity on the flat topologies).
// No-op when no semantic knob is set.
func (rc *runContext) installChaos(topo *comm.Topology, rankNode func(int) int) {
	f := &rc.cfg.Faults
	ch := f.chaos(rc.cfg.Seed)
	if ch == nil {
		return
	}
	topo.SetChaos(ch)
	for _, bl := range f.BadLinks {
		topo.WrapLossy(rankNode(bl.From), rankNode(bl.To), bl.Loss, bl.Corrupt)
	}
}

// hetScale returns worker id's steady speed factor from the heterogeneity
// profile.
func (rc *runContext) hetScale(id int) float64 {
	h := rc.cfg.Faults.Heterogeneity
	if len(h) == 0 {
		return 1
	}
	return h[id%len(h)]
}

// computeScale returns the factor on worker id's compute time at its step s
// (1-based): the steady heterogeneity factor times the straggler factor when
// id straggles during s.
func (rc *runContext) computeScale(id, s int) float64 {
	scale := rc.hetScale(id)
	f := &rc.cfg.Faults
	if f.StragglerFactor > 0 {
		from := f.StragglerFrom
		if from < 1 {
			from = 1
		}
		if s >= from && (f.StragglerUntil <= 0 || s < f.StragglerUntil) {
			for _, r := range f.StragglerRanks {
				if r == id {
					scale *= f.StragglerFactor
					break
				}
			}
		}
	}
	return scale
}

// computeDelay is worker id's modeled forward+backward time at step s with
// all fault scaling applied.
func (rc *runContext) computeDelay(id, s int) float64 {
	return rc.workers[id].computeTime * rc.computeScale(id, s)
}

// faultStall returns the stall worker id pays at the start of step s:
// the reload-plus-replay of a fail-stop at this step, plus the checkpoint
// write committed at the end of the previous step (charged here so a step's
// stall is a single delay at its start).
func (rc *runContext) faultStall(id, s int) float64 {
	f := &rc.cfg.Faults
	var d float64
	if f.CheckpointEvery > 0 && s > 1 && (s-1)%f.CheckpointEvery == 0 {
		d += rc.ckptTime
	}
	if f.FailAtStep > 0 && !f.failContinue() && s == f.FailAtStep && id == f.FailRank {
		last := 0
		if f.CheckpointEvery > 0 {
			last = (s - 1) / f.CheckpointEvery * f.CheckpointEvery
		}
		replay := float64(s - 1 - last)
		perStep := rc.dataXfer + rc.workers[id].computeTime*rc.hetScale(id) + rc.workerUpdate
		d += rc.ckptTime + replay*perStep
	}
	return d
}

// injectFaults delays p by worker id's fault stall at step s, if any. The
// stall is charged to CatRecovery from rank 0 only — the breakdown is the
// coordinating rank's exposed-time accounting, and a remote rank's stall
// already reaches rank 0 as collective or barrier wait. Runs whose
// coordinator is not a worker (the round-robin master, which charges its
// wait for every worker as exposed compute) clear chargeRecovery so the
// stall is not counted twice; there it surfaces in the master's wait.
func (rc *runContext) injectFaults(p *sim.Proc, id, s int) {
	if !rc.faultsOn {
		return
	}
	if d := rc.faultStall(id, s); d > 0 {
		p.Delay(d)
		if id == 0 && rc.chargeRecovery {
			rc.bd.Add(CatRecovery, d)
		}
	}
}
