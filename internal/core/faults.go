package core

import (
	"fmt"

	"scaledl/internal/sim"
)

// FaultPlan opens the failure-scenario space around the paper's fault-free
// runs: heterogeneous worker speeds, transient stragglers, degraded links
// (Platform.LinkScale) and one fail-stop crash with checkpoint/restart
// recovery. Every knob is timing-only — it scales simulated delays or
// inserts stalls, never touches the gradient mathematics — so a faulty run
// produces bit-identical losses, accuracies and curves to its fault-free
// twin and differs exactly in where the simulated time goes. That is the
// point: the four algorithm families (round-robin, asynchronous, tree-
// synchronous, hierarchical) respond to the *same* fault with visibly
// different wall-clock damage, which is the comparison the faults harness
// experiment tabulates.
//
// Steps are counted per worker and 1-based: a worker's first iteration is
// step 1. For synchronous families a step is a global round; for the
// asynchronous and round-robin families it is that worker's own iteration
// count, so the same plan stays meaningful across all of them.
type FaultPlan struct {
	// Heterogeneity makes the fleet non-uniform: worker i's compute time is
	// scaled by Heterogeneity[i mod len]. Empty means homogeneous (all 1).
	// Factors must be positive; {1, 1.15} models every other device running
	// 15% slow — the silent thermal throttling of large clusters.
	Heterogeneity []float64

	// StragglerFactor > 0 multiplies the compute time of the ranks in
	// StragglerRanks during steps [StragglerFrom, StragglerUntil). Steps are
	// 1-based; StragglerFrom 0 means from the start and StragglerUntil 0
	// means to the end. A factor of exactly 1 is the degenerate no-op the
	// fault tests pin. Zero disables the straggler entirely.
	StragglerFactor float64
	StragglerRanks  []int
	StragglerFrom   int
	StragglerUntil  int

	// FailAtStep > 0 injects one fail-stop: worker FailRank crashes at the
	// start of that step and recovers by reloading the last checkpoint over
	// the data link and replaying every step since — data copy, compute and
	// local update per replayed step. With CheckpointEvery 0 there is no
	// checkpoint and the replay reaches back to step 1 (restart from
	// scratch). The recovered state is by construction identical to the
	// pre-crash state, so only time is lost — the stall surfaces on the
	// failed rank and, through collectives and barriers, as waiting on every
	// rank synchronized with it.
	FailRank   int
	FailAtStep int

	// CheckpointEvery > 0 makes every worker write a checkpoint (one model
	// copy over the data link) after each CheckpointEvery-th step — the
	// steady cost that buys a shorter replay after a crash.
	CheckpointEvery int
}

// enabled reports whether any fault knob is active.
func (f *FaultPlan) enabled() bool {
	return len(f.Heterogeneity) > 0 || f.StragglerFactor != 0 ||
		f.FailAtStep > 0 || f.CheckpointEvery > 0
}

// validate checks the plan against the run's worker count.
func (f *FaultPlan) validate(workers int) error {
	for i, h := range f.Heterogeneity {
		if h <= 0 {
			return fmt.Errorf("core: heterogeneity factor %d must be positive, got %v", i, h)
		}
	}
	if f.StragglerFactor < 0 {
		return fmt.Errorf("core: straggler factor must be >= 0, got %v", f.StragglerFactor)
	}
	for _, r := range f.StragglerRanks {
		if r < 0 || r >= workers {
			return fmt.Errorf("core: straggler rank %d outside 0..%d", r, workers-1)
		}
	}
	if f.StragglerFrom < 0 || f.StragglerUntil < 0 {
		return fmt.Errorf("core: straggler step window must be non-negative, got [%d, %d)", f.StragglerFrom, f.StragglerUntil)
	}
	if f.FailAtStep < 0 {
		return fmt.Errorf("core: fail-at step must be >= 0, got %d", f.FailAtStep)
	}
	if f.FailAtStep > 0 && (f.FailRank < 0 || f.FailRank >= workers) {
		return fmt.Errorf("core: fail rank %d outside 0..%d", f.FailRank, workers-1)
	}
	if f.CheckpointEvery < 0 {
		return fmt.Errorf("core: checkpoint interval must be >= 0, got %d", f.CheckpointEvery)
	}
	return nil
}

// hetScale returns worker id's steady speed factor from the heterogeneity
// profile.
func (rc *runContext) hetScale(id int) float64 {
	h := rc.cfg.Faults.Heterogeneity
	if len(h) == 0 {
		return 1
	}
	return h[id%len(h)]
}

// computeScale returns the factor on worker id's compute time at its step s
// (1-based): the steady heterogeneity factor times the straggler factor when
// id straggles during s.
func (rc *runContext) computeScale(id, s int) float64 {
	scale := rc.hetScale(id)
	f := &rc.cfg.Faults
	if f.StragglerFactor > 0 {
		from := f.StragglerFrom
		if from < 1 {
			from = 1
		}
		if s >= from && (f.StragglerUntil <= 0 || s < f.StragglerUntil) {
			for _, r := range f.StragglerRanks {
				if r == id {
					scale *= f.StragglerFactor
					break
				}
			}
		}
	}
	return scale
}

// computeDelay is worker id's modeled forward+backward time at step s with
// all fault scaling applied.
func (rc *runContext) computeDelay(id, s int) float64 {
	return rc.workers[id].computeTime * rc.computeScale(id, s)
}

// faultStall returns the stall worker id pays at the start of step s:
// the reload-plus-replay of a fail-stop at this step, plus the checkpoint
// write committed at the end of the previous step (charged here so a step's
// stall is a single delay at its start).
func (rc *runContext) faultStall(id, s int) float64 {
	f := &rc.cfg.Faults
	var d float64
	if f.CheckpointEvery > 0 && s > 1 && (s-1)%f.CheckpointEvery == 0 {
		d += rc.ckptTime
	}
	if f.FailAtStep > 0 && s == f.FailAtStep && id == f.FailRank {
		last := 0
		if f.CheckpointEvery > 0 {
			last = (s - 1) / f.CheckpointEvery * f.CheckpointEvery
		}
		replay := float64(s - 1 - last)
		perStep := rc.dataXfer + rc.workers[id].computeTime*rc.hetScale(id) + rc.workerUpdate
		d += rc.ckptTime + replay*perStep
	}
	return d
}

// injectFaults delays p by worker id's fault stall at step s, if any. The
// stall is charged to CatRecovery from rank 0 only — the breakdown is the
// coordinating rank's exposed-time accounting, and a remote rank's stall
// already reaches rank 0 as collective or barrier wait. Runs whose
// coordinator is not a worker (the round-robin master, which charges its
// wait for every worker as exposed compute) clear chargeRecovery so the
// stall is not counted twice; there it surfaces in the master's wait.
func (rc *runContext) injectFaults(p *sim.Proc, id, s int) {
	if !rc.faultsOn {
		return
	}
	if d := rc.faultStall(id, s); d > 0 {
		p.Delay(d)
		if id == 0 && rc.chargeRecovery {
			rc.bd.Add(CatRecovery, d)
		}
	}
}
