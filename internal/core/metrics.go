// Package core implements the paper's contribution: the EASGD algorithm
// family redesigned for HPC systems (Async EASGD, Async MEASGD, Hogwild
// EASGD, Sync EASGD1/2/3) together with the baselines they are measured
// against (Original round-robin EASGD, Async SGD, Async MSGD, Hogwild SGD,
// Sync SGD). Every algorithm runs as a set of processes inside the
// deterministic simulator of internal/sim: gradient mathematics is executed
// for real (so accuracy curves are genuine) while time is charged by the
// hardware models of internal/hw (so the time axis reflects the paper's
// platforms rather than this machine).
//
// Beyond the paper's fault-free runs, Config.Faults (FaultPlan) and
// Platform.LinkScale open the failure-scenario space in two tiers. The
// timing-only knobs — per-worker compute heterogeneity, straggler
// injection, degraded links on named segments, fail-stop with
// checkpoint/recovery — stretch delays or insert stalls and never touch
// gradient math, so a faulty run's losses, accuracies and curves are
// bit-identical to its clean twin's for the deterministic schedules
// (pinned by faults_test.go) and only the simulated clock and the
// breakdown (CatRecovery) move. The semantic knobs — LossRate,
// CorruptRate, BadLinks, FailMode "continue", PartialK — change *what
// happens*: messages vanish or arrive garbled and are retried (CatRetry),
// a dead worker's gradient leaves the sum, a late gradient is dropped at
// the partial-aggregation deadline (CatDropped, Result.Dropped). A
// semantic-fault run may legitimately diverge from its clean twin, but the
// divergence is a pure function of the fault seed: two runs with the same
// configuration and FaultSeed are bit-identical (see faults.go).
//
// Config.CommMode (hybrid.go) reroutes the allreduce methods' gradient
// transport per layer: dense layers may ship B·(F+D) sufficient factors
// (Poseidon's SFB, comm.FactorAllGather) instead of the F·D+F dense
// payload, with each receiver reconstructing the summed gradient locally
// (charged as CatSFBRecon). The "hybrid" mode picks per layer from an
// analytic α-β cost model (SelectCommModes); whichever transport a layer
// rides, the reconstructed sum is bit-identical to the dense allreduce,
// monolithic or overlapped, flat or hierarchical.
package core

import (
	"fmt"

	"scaledl/internal/nn"
)

// Category is one of the time-consuming parts of §6.1.1 of the paper
// (parts 1-2, data I/O and initialization, are ignored there and here).
type Category int

const (
	// CatGPUGPUParam is GPU↔GPU parameter communication (part 3).
	CatGPUGPUParam Category = iota
	// CatCPUGPUData is CPU→GPU minibatch copying (part 4).
	CatCPUGPUData
	// CatCPUGPUParam is CPU↔GPU parameter communication (part 5).
	CatCPUGPUParam
	// CatForwardBackward is forward and backward propagation (part 6).
	CatForwardBackward
	// CatGPUUpdate is the worker-side weight update (part 7).
	CatGPUUpdate
	// CatCPUUpdate is the master-side center-weight update (part 8).
	CatCPUUpdate
	// CatRecovery is fault-handling time: checkpoint writes and the
	// reload-plus-replay stall after a fail-stop (FaultPlan). Not a Table 3
	// column — the paper's runs are fault-free — but charged through the
	// same exposed accounting so faulty runs still sum to wall time. It is
	// charged from the coordinating rank's own stalls; a *remote* rank's
	// stall reaches the coordinator as collective or barrier wait and lands
	// in the category that wait is charged to.
	CatRecovery
	// CatRetry is the coordinating rank's time lost to semantic message
	// faults as a sender: wasted wire time of lost or corrupted attempts
	// plus the ack-timeout backoff before each resend (FaultPlan.LossRate,
	// CorruptRate, BadLinks). Remote ranks' retry stalls reach the
	// coordinator as collective wait, like every remote stall.
	CatRetry
	// CatDropped is the partial-aggregation coordinator's deadline time:
	// what rank 0 spent waiting for gradients that never arrived in the
	// window and were dropped from the step (FaultPlan.PartialK); the
	// dropped ranks themselves are recorded in Result.Dropped.
	CatDropped
	// CatSFBRecon is the receiver-side reconstruction compute of
	// sufficient-factor broadcasting (Config.CommMode sfb/hybrid): turning
	// the gathered (dY, X) factor pairs back into the dense gradient
	// Σₚ dYₚᵀ·Xₚ on the worker device. It is the compute SFB trades wire
	// for, charged through the same exposed accounting so SFB runs still
	// sum to wall time; its Bytes column stays zero (reconstruction moves
	// no wire bytes — the factor traffic lands in the parameter category).
	CatSFBRecon

	numCategories
)

// String returns the Table 3 column name for the category.
func (c Category) String() string {
	switch c {
	case CatGPUGPUParam:
		return "gpu-gpu para"
	case CatCPUGPUData:
		return "cpu-gpu data"
	case CatCPUGPUParam:
		return "cpu-gpu para"
	case CatForwardBackward:
		return "for/backward"
	case CatGPUUpdate:
		return "gpu update"
	case CatCPUUpdate:
		return "cpu update"
	case CatRecovery:
		return "recovery"
	case CatRetry:
		return "retry"
	case CatDropped:
		return "dropped"
	case CatSFBRecon:
		return "sfb recon"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all breakdown categories in Table 3 column order.
func Categories() []Category {
	cs := make([]Category, numCategories)
	for i := range cs {
		cs[i] = Category(i)
	}
	return cs
}

// Breakdown accumulates exposed (critical-path) time per category, as seen
// from the coordinating process, so the parts sum to the simulated wall
// time just as the paper's Table 3 percentages sum to 100%. Bytes counts
// the wire traffic of each category — *all* bytes moved, including
// transfers hidden under compute overlap, so compressed-gradient runs show
// their full traffic reduction even where the time is already hidden.
type Breakdown struct {
	Times [numCategories]float64
	Bytes [numCategories]int64
	// HiddenComm is communication time that ran concurrently with (and was
	// hidden under) computation or other work on the critical path — the
	// streaming pipeline's overlapped bucket collectives, Sync EASGD3's
	// broadcast waves. It is a diagnostic alongside the exposed accounting,
	// NOT part of Total(): the Times categories alone sum to wall-clock,
	// with only the *exposed* (non-hidden) communication charged to the
	// comm categories.
	HiddenComm float64
}

// Add charges d seconds to category c.
func (b *Breakdown) Add(c Category, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("core: negative time %v for %v", d, c))
	}
	b.Times[c] += d
}

// AddHidden records d seconds of communication hidden under computation.
// Negative values clamp to zero (a collective fully covered by its exposed
// share hides nothing).
func (b *Breakdown) AddHidden(d float64) {
	if d > 0 {
		b.HiddenComm += d
	}
}

// AddBytes records n wire bytes against category c.
func (b *Breakdown) AddBytes(c Category, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("core: negative bytes %d for %v", n, c))
	}
	b.Bytes[c] += n
}

// ParamTraffic returns the wire bytes of the two parameter-communication
// categories — the quantity gradient compression shrinks.
func (b Breakdown) ParamTraffic() int64 {
	return b.Bytes[CatGPUGPUParam] + b.Bytes[CatCPUGPUParam]
}

// Total returns the sum over categories.
func (b Breakdown) Total() float64 {
	var s float64
	for _, t := range b.Times {
		s += t
	}
	return s
}

// Share returns category c's fraction of the total (0 when empty).
func (b Breakdown) Share(c Category) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Times[c] / t
}

// CommRatio is the paper's "comm ratio": the share of time spent in the
// three communication categories (parts 3-5).
func (b Breakdown) CommRatio() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.Times[CatGPUGPUParam] + b.Times[CatCPUGPUData] + b.Times[CatCPUGPUParam]) / t
}

// Point is one sample of a training trajectory.
type Point struct {
	Iter    int     // master iterations (or rounds) completed
	SimTime float64 // simulated seconds
	Loss    float64 // training loss at the probe
	TestAcc float64 // center-weight accuracy on the test set
}

// Result is the outcome of one simulated distributed training run.
type Result struct {
	Method     string
	Workers    int
	Iterations int
	SimTime    float64 // simulated wall-clock seconds
	Breakdown  Breakdown
	FinalAcc   float64
	FinalLoss  float64
	Curve      []Point
	Samples    int64 // total training samples consumed
	// MasterUpdates counts center-weight updates performed (global-center
	// syncs for the hierarchical EASGD, master iterations elsewhere).
	MasterUpdates int64
	// Dropped records, per step that dropped anything, which ranks'
	// gradients missed the partial-aggregation deadline and were excluded
	// from that step's sum (FaultPlan.PartialK). Deterministic: the same
	// configuration and fault seed drop the same ranks at the same steps.
	Dropped []DropRecord

	// net is the trained network at the final center weights, behind the
	// Model accessor so Train → serve composes through the facade without
	// exposing internals.
	net *nn.Net
}

// Model returns the trained model (the network at the final center
// weights) — the handle the serving path loads, saves and predicts with.
// Nil for zero-value Results.
func (r Result) Model() *nn.Model {
	if r.net == nil {
		return nil
	}
	return nn.NewModel(r.net)
}

// DropRecord names the ranks whose gradients were dropped at one step.
type DropRecord struct {
	Step  int   // 1-based step whose aggregation excluded them
	Ranks []int // ascending rank ids
}

// Updates returns the master-side update count.
func (r Result) Updates() int64 { return r.MasterUpdates }

// ErrorRate returns 1 − FinalAcc, the quantity Figure 8 plots (log10).
func (r Result) ErrorRate() float64 { return 1 - r.FinalAcc }
