package core

import (
	"testing"

	"scaledl/internal/comm"
)

// TestSyncSGDScheduleInvariantMath is the ordered-reduction guarantee at
// the algorithm level: the allreduce schedule changes message timing, never
// training mathematics. All schedules must produce bit-identical accuracy
// and loss, with tree ≠ ring timing on the latency-dominated toy model.
func TestSyncSGDScheduleInvariantMath(t *testing.T) {
	times := map[comm.Schedule]float64{}
	var ref Result
	for i, sched := range []comm.Schedule{comm.ScheduleTree, comm.ScheduleRing, comm.ScheduleRHD, comm.ScheduleChain, comm.ScheduleLinear} {
		cfg := testConfig(t, 30, true)
		cfg.Schedule = sched
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if i == 0 {
			ref = res
		} else if res.FinalAcc != ref.FinalAcc || res.FinalLoss != ref.FinalLoss {
			t.Errorf("%v: training result differs from tree (acc %v vs %v, loss %v vs %v)",
				sched, res.FinalAcc, ref.FinalAcc, res.FinalLoss, ref.FinalLoss)
		}
		times[sched] = res.SimTime
	}
	// Latency-dominated small model: the tree's log2(P) rounds beat the
	// ring's 2(P−1) steps and the linear exchange's Θ(P).
	if !(times[comm.ScheduleTree] < times[comm.ScheduleRing]) {
		t.Errorf("tree (%v) should beat ring (%v) on a small model", times[comm.ScheduleTree], times[comm.ScheduleRing])
	}
	if !(times[comm.ScheduleTree] < times[comm.ScheduleLinear]) {
		t.Errorf("tree (%v) should beat linear (%v)", times[comm.ScheduleTree], times[comm.ScheduleLinear])
	}
}

// KNL cluster runs honor the schedule too, with identical math. (Its
// collectives are a rooted broadcast and reduce, so the applicable
// alternatives are chain and linear; ring/RHD are allreduce shapes and
// fall back to the tree.)
func TestKNLClusterScheduleInvariantMath(t *testing.T) {
	run := func(sched comm.Schedule) Result {
		cfg := testConfig(t, 20, true)
		cfg.Schedule = sched
		res, err := KNLClusterEASGD(KNLClusterConfig{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tree, linear := run(comm.ScheduleTree), run(comm.ScheduleLinear)
	if tree.FinalAcc != linear.FinalAcc || tree.FinalLoss != linear.FinalLoss {
		t.Error("KNL cluster math depends on schedule")
	}
	if tree.SimTime >= linear.SimTime {
		t.Errorf("tree (%v) should beat the linear schedule (%v)", tree.SimTime, linear.SimTime)
	}
}

// The chain schedule's pipeline drain (root finishes its hops before the
// tail of the line) must be attributed, so the breakdown still sums to the
// simulated wall time.
func TestChainScheduleBreakdownSumsToWall(t *testing.T) {
	cfg := testConfig(t, 20, true)
	cfg.Schedule = comm.ScheduleChain
	res, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Breakdown.Total()
	if rel := (res.SimTime - sum) / res.SimTime; rel > 0.02 || rel < -0.02 {
		t.Errorf("chain breakdown sum %.6f vs wall %.6f (rel %.4f)", sum, res.SimTime, rel)
	}
}

// Early stop ends the KNL cluster run at the probe that reached the
// target: no rank burns a phantom gradient round past the stop flag.
func TestKNLClusterEarlyStopEndsAtLastProbe(t *testing.T) {
	cfg := testConfig(t, 400, true)
	cfg.TargetAcc = 0.7
	cfg.EvalEvery = 5
	res, err := KNLClusterEASGD(KNLClusterConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve points")
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Iter >= 400 {
		t.Error("run did not stop early")
	}
	if res.SimTime != last.SimTime {
		t.Errorf("SimTime %v extends past the stopping probe at %v (phantom round)", res.SimTime, last.SimTime)
	}
}

// The switch-concurrency knob makes contention emerge in a full training
// run: bounding the PCIe switch to one transfer slows Sync EASGD2's
// collectives without changing its mathematics.
func TestSwitchContentionSlowsSyncRun(t *testing.T) {
	run := func(cap_ int) Result {
		cfg := testConfig(t, 15, true)
		cfg.Platform.SwitchConcurrency = cap_
		res, err := SyncEASGD2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free, bounded := run(0), run(1)
	if bounded.SimTime <= free.SimTime {
		t.Errorf("capacity-1 switch (%v) not slower than unconstrained (%v)", bounded.SimTime, free.SimTime)
	}
	if free.FinalAcc != bounded.FinalAcc {
		t.Error("switch contention changed training mathematics")
	}
}
