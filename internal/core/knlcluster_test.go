package core

import (
	"math"
	"testing"

	"scaledl/internal/hw"
)

func TestKNLClusterEASGDLearnsAndIsDeterministic(t *testing.T) {
	mk := func() KNLClusterConfig {
		cfg := testConfig(t, 40, true)
		cfg.EvalEvery = 10
		return KNLClusterConfig{
			Config: cfg,
			Fabric: hw.Link{Name: "fabric", Alpha: 1.5e-6, Beta: 1 / 8e9},
		}
	}
	r1, err := KNLClusterEASGD(mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalAcc < 0.5 {
		t.Errorf("accuracy %.3f too low", r1.FinalAcc)
	}
	if r1.SimTime <= 0 || len(r1.Curve) == 0 {
		t.Errorf("incomplete result: %+v", r1)
	}
	r2, err := KNLClusterEASGD(mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalAcc != r2.FinalAcc || r1.SimTime != r2.SimTime {
		t.Error("same-seed cluster runs differ")
	}
}

func TestKNLClusterMatchesCoordinatorSemantics(t *testing.T) {
	// The rank-program Algorithm 4 and Sync EASGD use the same update
	// equations, and the collective engine's ordered reduction gives both
	// the identical (rank-ordered) summation. With the same seed their
	// centers should track closely — not bit-identical, because the GPU
	// run's timeline differs (overlap, eval points), but well within the
	// same accuracy band.
	cfg := testConfig(t, 25, true)
	sync3, err := SyncEASGD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := KNLClusterEASGD(KNLClusterConfig{Config: testConfig(t, 25, true)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sync3.FinalAcc-cluster.FinalAcc) > 0.15 {
		t.Errorf("accuracies diverge: sync3 %.3f vs cluster %.3f", sync3.FinalAcc, cluster.FinalAcc)
	}
}

func TestKNLClusterWeakScalingPerIter(t *testing.T) {
	fabric := hw.Link{Name: "fabric", Alpha: 1.5e-6, Beta: 1e-9}
	compute := 0.1
	t1, err := KNLClusterWeakScaling(1, 28<<20, compute, fabric, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-compute) > 1e-9 {
		t.Errorf("single node per-iter %v, want pure compute %v", t1, compute)
	}
	prev := t1
	for _, nodes := range []int{2, 8, 32} {
		ti, err := KNLClusterWeakScaling(nodes, 28<<20, compute, fabric, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ti <= prev {
			t.Errorf("per-iter time should grow with nodes: %v at %d", ti, nodes)
		}
		prev = ti
	}
	// Growth must be logarithmic-ish: 32 nodes adds ~5 bcast+5 reduce waves
	// of 28 MB over 1 GB/s ≈ 0.28s, not the ~0.9s a linear chain would.
	t32, _ := KNLClusterWeakScaling(32, 28<<20, compute, fabric, 3)
	overhead := t32 - compute
	waves := 28.0 * 1024 * 1024 * 1e-9 // one full-model wave
	if overhead > 14*waves {
		t.Errorf("32-node overhead %v exceeds ~2·log2(32)+slack waves (%v each)", overhead, waves)
	}
	if _, err := KNLClusterWeakScaling(0, 1, 1, fabric, 1); err == nil {
		t.Error("0 nodes did not error")
	}
}

func TestCenterDrift(t *testing.T) {
	center := []float32{1, 1}
	a := []float32{2, 0}
	b := []float32{0, 2}
	// mean(a,b) = (1,1) = center → drift 0.
	if d := CenterDrift(center, a, b); d > 1e-9 {
		t.Errorf("drift %v, want 0", d)
	}
	if d := CenterDrift(center, []float32{3, 1}); math.Abs(d-2) > 1e-6 {
		t.Errorf("drift %v, want 2", d)
	}
	if d := CenterDrift(center); d != 0 {
		t.Errorf("no locals drift %v", d)
	}
}
