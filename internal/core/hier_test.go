package core

import (
	"math"
	"reflect"
	"testing"

	"scaledl/internal/comm"
)

// hierConfig builds the 2-node × 2-GPU composed-cluster counterpart of
// testConfig (same 4 workers, same seeds — so flat and hierarchical runs
// are comparable sample for sample).
func hierConfig(t *testing.T, iters int) Config {
	t.Helper()
	cfg := testConfig(t, iters, true)
	cfg.Nodes, cfg.GPUsPerNode = 2, 2
	return cfg
}

// The hierarchical allreduce is bit-identical to ReduceSum, so hier-sync-sgd
// must reproduce the flat SyncSGD's training mathematics exactly — losses,
// accuracies and curves — with only the simulated time differing (the bytes
// travel a two-level topology instead of one PCIe tree).
func TestHierSyncSGDMatchesFlatMath(t *testing.T) {
	flatCfg := testConfig(t, 25, true)
	flatCfg.EvalEvery = 5
	flat, err := SyncSGD(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct{ intra, inter comm.Schedule }{
		{comm.ScheduleTree, comm.ScheduleTree},
		{comm.ScheduleRing, comm.ScheduleRHD},
		{comm.ScheduleChain, comm.ScheduleRing},
	} {
		cfg := hierConfig(t, 25)
		cfg.EvalEvery = 5
		cfg.Schedule = pair.intra
		cfg.HierSchedule = pair.inter
		hier, err := HierSyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hier.FinalLoss != flat.FinalLoss || hier.FinalAcc != flat.FinalAcc {
			t.Errorf("%v/%v: hier loss/acc %v/%v differ from flat %v/%v",
				pair.intra, pair.inter, hier.FinalLoss, hier.FinalAcc, flat.FinalLoss, flat.FinalAcc)
		}
		if len(hier.Curve) != len(flat.Curve) {
			t.Fatalf("curve lengths differ: %d vs %d", len(hier.Curve), len(flat.Curve))
		}
		for i := range hier.Curve {
			if hier.Curve[i].Loss != flat.Curve[i].Loss || hier.Curve[i].TestAcc != flat.Curve[i].TestAcc {
				t.Errorf("%v/%v: curve point %d diverged", pair.intra, pair.inter, i)
			}
		}
	}
}

// The streaming pipeline's bucketed Range collectives are hierarchical for
// free: overlap on, any bucket size, the mathematics stays bit-identical to
// the monolithic flat run.
func TestHierSyncSGDOverlapBitIdentical(t *testing.T) {
	base, err := SyncSGD(testConfig(t, 20, true))
	if err != nil {
		t.Fatal(err)
	}
	for _, bucketBytes := range []int64{0, 4 << 10, 64 << 10} {
		cfg := hierConfig(t, 20)
		cfg.Overlap = true
		cfg.BucketBytes = bucketBytes
		cfg.HierSchedule = comm.ScheduleRHD
		res, err := HierSyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalLoss != base.FinalLoss || res.FinalAcc != base.FinalAcc {
			t.Errorf("bucket=%d: overlapped hier math diverged from flat monolithic", bucketBytes)
		}
	}
}

// hier-sync-sgd is deterministic and the composed topology actually routes
// parameter traffic (nonzero wire bytes).
func TestHierSyncSGDDeterministicAndMovesBytes(t *testing.T) {
	r1, err1 := HierSyncSGD(hierConfig(t, 15))
	r2, err2 := HierSyncSGD(hierConfig(t, 15))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.SimTime != r2.SimTime || r1.FinalLoss != r2.FinalLoss {
		t.Error("hier-sync-sgd not deterministic across identical runs")
	}
	if r1.Breakdown.ParamTraffic() == 0 {
		t.Error("no parameter traffic recorded")
	}
}

// hier-sync-easgd: group syncs every TauLocal steps, center syncs every
// TauGlobal steps — the fabric sees 1/TauGlobal of the rounds — and the
// run learns, deterministically.
func TestHierSyncEASGDTauStructure(t *testing.T) {
	cfg := hierConfig(t, 24)
	cfg.TauLocal, cfg.TauGlobal = 2, 6
	res, err := HierSyncEASGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(24 / 6); res.Updates() != want {
		t.Errorf("global center updates %d, want iterations/TauGlobal = %d", res.Updates(), want)
	}
	if res.FinalAcc < 0.5 {
		t.Errorf("hier-sync-easgd accuracy %.3f, should beat 0.5", res.FinalAcc)
	}
	again, err := HierSyncEASGD(func() Config {
		c := hierConfig(t, 24)
		c.TauLocal, c.TauGlobal = 2, 6
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if again.SimTime != res.SimTime || again.FinalLoss != res.FinalLoss {
		t.Error("hier-sync-easgd not deterministic")
	}

	// Rarer center syncs spend less simulated time for the same steps.
	lazy := hierConfig(t, 24)
	lazy.TauLocal, lazy.TauGlobal = 2, 12
	lazyRes, err := HierSyncEASGD(lazy)
	if err != nil {
		t.Fatal(err)
	}
	if lazyRes.SimTime >= res.SimTime {
		t.Errorf("TauGlobal 12 (%v) not faster than 6 (%v)", lazyRes.SimTime, res.SimTime)
	}
}

// The first recorded curve point averages every worker's *current-step*
// loss: before any update, the four workers compute exactly the same first
// batches as flat SyncSGD (same seeds, same initial weights), so the two
// methods' first eval points must agree bit for bit. (Guards the eval
// barrier: without it rank 0 could read peers' losses before they were
// written on steps with no collective.)
func TestHierSyncEASGDFirstCurvePointFresh(t *testing.T) {
	cfg := hierConfig(t, 6)
	cfg.EvalEvery = 1
	cfg.TauLocal, cfg.TauGlobal = 3, 6 // step 1 runs no collective at all
	res, err := HierSyncEASGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flatCfg := testConfig(t, 6, true)
	flatCfg.EvalEvery = 1
	flat, err := SyncSGD(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 || len(flat.Curve) == 0 {
		t.Fatal("missing curve points")
	}
	if res.Curve[0].Loss != flat.Curve[0].Loss {
		t.Errorf("first eval point %v != flat SyncSGD's %v (stale loss read?)",
			res.Curve[0].Loss, flat.Curve[0].Loss)
	}
}

// Wire traffic is attributed per level: intra-node bytes to gpu-gpu para,
// fabric bytes to cpu-gpu para, and the two together equal the topology's
// total parameter traffic.
func TestHierSyncEASGDByteAttribution(t *testing.T) {
	cfg := hierConfig(t, 12)
	cfg.TauLocal, cfg.TauGlobal = 2, 4
	res, err := HierSyncEASGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intra := res.Breakdown.Bytes[CatGPUGPUParam]
	fabric := res.Breakdown.Bytes[CatCPUGPUParam]
	if intra == 0 || fabric == 0 {
		t.Errorf("missing per-level traffic: intra %d, fabric %d", intra, fabric)
	}
	// 6 group syncs move more intra bytes than 3 fabric allreduces move
	// fabric bytes (4 leaders vs 2... 2 nodes here: reduce+bcast per group
	// of 2 vs allreduce over 2 leaders), and both scale with the model.
	if fabric >= intra {
		t.Errorf("fabric traffic %d not below intra traffic %d for tau 2/4", fabric, intra)
	}
}

// The exposed-time breakdown of the hierarchical algorithms still sums to
// the simulated wall clock.
func TestHierBreakdownSumsToWall(t *testing.T) {
	for _, name := range []string{"hier-sync-sgd", "hier-sync-easgd"} {
		cfg := hierConfig(t, 18)
		cfg.TauLocal, cfg.TauGlobal = 1, 3
		res, err := Methods[name](cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := res.Breakdown.Total()
		if rel := math.Abs(sum-res.SimTime) / res.SimTime; rel > 0.02 {
			t.Errorf("%s: breakdown sum %.6f vs wall %.6f (rel %.3f)", name, sum, res.SimTime, rel)
		}
	}
}

// Validate's hierarchical plumbing: Workers derived from Nodes×GPUsPerNode,
// mismatches and bad τ rejected, flat methods needing no hier fields, hier
// methods rejecting flat configs.
func TestHierConfigValidation(t *testing.T) {
	cfg := hierConfig(t, 5)
	cfg.Workers = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 {
		t.Errorf("Workers not derived: %d", cfg.Workers)
	}
	if cfg.TauLocal != 1 || cfg.TauGlobal != 4 {
		t.Errorf("tau defaults %d/%d, want 1/4", cfg.TauLocal, cfg.TauGlobal)
	}

	bad := hierConfig(t, 5)
	bad.Workers = 3
	if err := bad.Validate(); err == nil {
		t.Error("workers/nodes mismatch not rejected")
	}
	bad2 := hierConfig(t, 5)
	bad2.TauLocal, bad2.TauGlobal = 4, 2
	if err := bad2.Validate(); err == nil {
		t.Error("TauGlobal < TauLocal not rejected")
	}
	bad3 := hierConfig(t, 5)
	bad3.GPUsPerNode = 0
	if err := bad3.Validate(); err == nil {
		t.Error("Nodes without GPUsPerNode not rejected")
	}
	if _, err := HierSyncSGD(testConfig(t, 5, true)); err == nil {
		t.Error("hier-sync-sgd accepted a flat config")
	}
	if _, err := HierSyncEASGD(testConfig(t, 5, true)); err == nil {
		t.Error("hier-sync-easgd accepted a flat config")
	}
}

// Single-node degenerate case: 1×P hierarchical training equals the flat
// mathematics and runs without fabric traffic surprises.
func TestHierSingleNodeDegenerate(t *testing.T) {
	cfg := testConfig(t, 10, true)
	cfg.Nodes, cfg.GPUsPerNode = 1, 4
	res, err := HierSyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := SyncSGD(testConfig(t, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss != flat.FinalLoss {
		t.Error("1-node hier-sync-sgd diverged from flat math")
	}
	if !reflect.DeepEqual(res.Curve, flat.Curve) && len(res.Curve) != len(flat.Curve) {
		t.Error("curves diverged")
	}
}
