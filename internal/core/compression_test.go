package core

import (
	"testing"

	"scaledl/internal/quant"
)

func TestCompressedSyncSGDStillLearns(t *testing.T) {
	// The §3.4 extension: quantized gradients with error feedback must not
	// break convergence, and 1-bit transmission must cut the allreduce time.
	results := map[quant.Scheme]Result{}
	for _, scheme := range []quant.Scheme{quant.None, quant.Uniform8, quant.OneBit} {
		cfg := testConfig(t, 60, true)
		cfg.Compression = scheme
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.FinalAcc < 0.5 {
			t.Errorf("%v: accuracy %.3f too low", scheme, res.FinalAcc)
		}
		results[scheme] = res
	}
	if results[quant.OneBit].SimTime >= results[quant.None].SimTime {
		t.Errorf("1-bit run (%v) not faster than fp32 (%v)", results[quant.OneBit].SimTime, results[quant.None].SimTime)
	}
	if results[quant.Uniform8].SimTime >= results[quant.None].SimTime {
		t.Errorf("uint8 run (%v) not faster than fp32 (%v)", results[quant.Uniform8].SimTime, results[quant.None].SimTime)
	}
}

// TestOneBitTrafficIsThirtySecondOfFP32 pins the wire-size accounting of
// the simulated allreduce: every 1-bit message is n/8+8 bytes against 4n
// raw, so the parameter-traffic breakdown of a OneBit run must be ~1/32 of
// the fp32 run's (the +8-byte reconstruction header keeps it just under).
func TestOneBitTrafficIsThirtySecondOfFP32(t *testing.T) {
	traffic := func(scheme quant.Scheme) int64 {
		cfg := testConfig(t, 25, true)
		cfg.Compression = scheme
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Breakdown.ParamTraffic() <= 0 {
			t.Fatalf("%v: no parameter traffic recorded", scheme)
		}
		return res.Breakdown.ParamTraffic()
	}
	raw, onebit := traffic(quant.None), traffic(quant.OneBit)
	ratio := float64(raw) / float64(onebit)
	if ratio < 25 || ratio > 33 {
		t.Errorf("fp32/1-bit traffic ratio %.1f, want ~32 (raw %d, 1-bit %d)", ratio, raw, onebit)
	}
	u8 := traffic(quant.Uniform8)
	if r := float64(raw) / float64(u8); r < 3.5 || r > 4.1 {
		t.Errorf("fp32/uint8 traffic ratio %.1f, want ~4", r)
	}
}

// The asynchronous path now charges quantized wire sizes per message too:
// weight streams are delta-encoded (raw key frame, then 1-bit deltas), so
// traffic collapses after the first round trip and the run still learns.
func TestAsyncCompressionCutsTrafficAndLearns(t *testing.T) {
	run := func(scheme quant.Scheme) Result {
		cfg := testConfig(t, 120, true)
		cfg.Compression = scheme
		res, err := AsyncEASGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	raw, onebit := run(quant.None), run(quant.OneBit)
	ratio := float64(raw.Breakdown.ParamTraffic()) / float64(onebit.Breakdown.ParamTraffic())
	// 8 key frames (one per directed stream) ride raw; the remaining ~232
	// messages are 1/32 — the blended ratio must clear 8x.
	if ratio < 8 {
		t.Errorf("async fp32/1-bit traffic ratio %.1f, want > 8", ratio)
	}
	if onebit.SimTime >= raw.SimTime {
		t.Errorf("1-bit async run (%v) not faster than fp32 (%v)", onebit.SimTime, raw.SimTime)
	}
	if onebit.FinalAcc < 0.5 {
		t.Errorf("1-bit async accuracy %.3f too low", onebit.FinalAcc)
	}
	// Round-robin compresses both weight streams as well.
	rrRaw, rrOne := Result{}, Result{}
	for scheme, dst := range map[quant.Scheme]*Result{quant.None: &rrRaw, quant.OneBit: &rrOne} {
		cfg := testConfig(t, 120, true)
		cfg.Compression = scheme
		res, err := OriginalEASGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		*dst = res
	}
	if r := float64(rrRaw.Breakdown.ParamTraffic()) / float64(rrOne.Breakdown.ParamTraffic()); r < 8 {
		t.Errorf("round-robin fp32/1-bit traffic ratio %.1f, want > 8", r)
	}
}

func TestCompressedRunsAreDeterministic(t *testing.T) {
	run := func() Result {
		cfg := testConfig(t, 25, true)
		cfg.Compression = quant.OneBit
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalAcc != b.FinalAcc || a.SimTime != b.SimTime || a.FinalLoss != b.FinalLoss {
		t.Error("compressed runs nondeterministic")
	}
}
