package core

import (
	"testing"

	"scaledl/internal/quant"
)

func TestCompressedSyncSGDStillLearns(t *testing.T) {
	// The §3.4 extension: quantized gradients with error feedback must not
	// break convergence, and 1-bit transmission must cut the allreduce time.
	results := map[quant.Scheme]Result{}
	for _, scheme := range []quant.Scheme{quant.None, quant.Uniform8, quant.OneBit} {
		cfg := testConfig(t, 60, true)
		cfg.Compression = scheme
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.FinalAcc < 0.5 {
			t.Errorf("%v: accuracy %.3f too low", scheme, res.FinalAcc)
		}
		results[scheme] = res
	}
	if results[quant.OneBit].SimTime >= results[quant.None].SimTime {
		t.Errorf("1-bit run (%v) not faster than fp32 (%v)", results[quant.OneBit].SimTime, results[quant.None].SimTime)
	}
	if results[quant.Uniform8].SimTime >= results[quant.None].SimTime {
		t.Errorf("uint8 run (%v) not faster than fp32 (%v)", results[quant.Uniform8].SimTime, results[quant.None].SimTime)
	}
}

func TestCompressedRunsAreDeterministic(t *testing.T) {
	run := func() Result {
		cfg := testConfig(t, 25, true)
		cfg.Compression = quant.OneBit
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalAcc != b.FinalAcc || a.SimTime != b.SimTime || a.FinalLoss != b.FinalLoss {
		t.Error("compressed runs nondeterministic")
	}
}
