package core

import (
	"scaledl/internal/comm"
	"scaledl/internal/sim"
)

// Partial aggregation (FaultPlan.PartialK): the semantic-fault variant of
// sync-sgd's gradient combine. Instead of an allreduce that waits for all
// P contributions, rank 0 gathers gradients parameter-server style and
// proceeds once K live contributions (its own included) have arrived and
// the deadline has passed for the rest; a rank whose step-t gradient
// misses the window contributes zero to step t. Every replica still
// applies the identical averaged step — rank 0 sends the accepted sum back
// to all live ranks — so the replicas never drift from each other, only
// (deterministically) from the full-aggregation twin.
//
// Determinism: message arrival order is a pure function of the simulation,
// and the accepted gradients are combined in ascending rank order
// regardless of when they arrived, so the same configuration and fault
// seed drop the same ranks at the same steps and produce bit-identical
// sums. The drop log lands in Result.Dropped and rank 0's deadline wait in
// CatDropped.

// partialAgg is the shared state of the gather; one per run, driven
// through per-rank partialEndpoint handles that satisfy gradAllReducer.
type partialAgg struct {
	rc   *runContext
	topo *comm.Topology
	k    int
	// deadline is the drop window in simulated seconds past the quorum:
	// PartialDeadline × one gradient message's wire time into rank 0.
	deadline float64
	wb       int64 // wire bytes of one gradient (or compressed) message
	n        int
	dead     []bool
	sum      []float32
	got      [][]float32 // per-rank payload refs of the current step
	snaps    [][]float32 // per-sender payload scratch (reused every step)
}

func newPartialAgg(rc *runContext, topo *comm.Topology, wire comm.WireFunc) *partialAgg {
	cfg := rc.cfg
	n := len(rc.center)
	wb := int64(n) * 4
	if wire != nil {
		wb = wire(n)
	}
	dl := cfg.Faults.PartialDeadline
	if dl == 0 {
		dl = 3
	}
	pa := &partialAgg{
		rc:   rc,
		topo: topo,
		k:    cfg.Faults.PartialK,
		wb:   wb,
		n:    cfg.Workers,
		dead: make([]bool, cfg.Workers),
		sum:  make([]float32, n),
		got:  make([][]float32, cfg.Workers),
	}
	if cfg.Workers > 1 {
		pa.deadline = dl * topo.TransferTime(1, 0, wb)
	}
	pa.snaps = make([][]float32, cfg.Workers)
	for i := 1; i < cfg.Workers; i++ {
		pa.snaps[i] = make([]float32, n)
	}
	return pa
}

// Tags: step t's gradients travel as 2t, its result as 2t+1, so a dropped
// rank's stale gradient is recognizable (and discardable) by its older tag
// at any later step.
func gradTag(round int) int   { return 2 * round }
func resultTag(round int) int { return 2*round + 1 }

func (pa *partialAgg) allReduce(p *sim.Proc, round, rank int, buf []float32) {
	if rank != 0 {
		// Send a snapshot (buf is overwritten by the result below; a
		// dropped message's payload must stay readable as stale) and block
		// for the step's accepted sum.
		snap := pa.snaps[rank]
		copy(snap, buf)
		pa.topo.Send(p, rank, 0, gradTag(round), snap, pa.wb)
		res := pa.topo.Recv(p, rank, 0, resultTag(round)).([]float32)
		copy(buf, res)
		return
	}

	// Rank 0: gather until K contributions are in (blocking), then give the
	// rest the deadline window, then drop whoever is still missing.
	for i := range pa.got {
		pa.got[i] = nil
	}
	live := 0
	for r := 1; r < pa.n; r++ {
		if !pa.dead[r] {
			live++
		}
	}
	need := pa.k - 1 // beyond rank 0's own contribution
	if need > live {
		need = live
	}
	tag := gradTag(round)
	match := func(m comm.Message) bool { return m.Tag <= tag }
	count := 0
	start := p.Now()
	for count < live {
		var m comm.Message
		if count < need {
			m = pa.topo.RecvMatch(p, 0, match)
		} else {
			remaining := pa.deadline - (p.Now() - start)
			if remaining <= 0 {
				break
			}
			tw := p.Now()
			var ok bool
			m, ok = pa.topo.RecvMatchTimeout(p, 0, remaining, match)
			if !ok {
				// The window expired empty-handed: that wait is the cost of
				// the ranks about to be dropped.
				pa.rc.droppedWait += p.Now() - tw
				break
			}
		}
		if m.Tag != tag {
			continue // a dropped rank's stale gradient from an earlier step
		}
		pa.got[m.Src] = m.Payload.([]float32)
		count++
	}

	// Combine in ascending rank order — independent of arrival order, so
	// the sum is bit-stable — and log the drops.
	copy(pa.sum, buf)
	var droppedRanks []int
	for r := 1; r < pa.n; r++ {
		if pa.dead[r] {
			continue
		}
		g := pa.got[r]
		if g == nil {
			droppedRanks = append(droppedRanks, r)
			continue
		}
		for j, v := range g {
			pa.sum[j] += v
		}
	}
	if len(droppedRanks) > 0 {
		pa.rc.dropped = append(pa.rc.dropped, DropRecord{Step: round + 1, Ranks: droppedRanks})
	}
	copy(buf, pa.sum)

	// Every live rank — dropped ones included — receives the identical
	// accepted sum, so all surviving replicas take the same step. The
	// iteration barrier keeps pa.sum stable until everyone has copied it.
	for r := 1; r < pa.n; r++ {
		if !pa.dead[r] {
			pa.topo.Send(p, 0, r, resultTag(round), pa.sum, pa.wb)
		}
	}
}

// markDead removes rank from the gather (fail-continue): rank 0 stops
// expecting its gradients and stops sending it results, and the topology
// drops any traffic still aimed at it.
func (pa *partialAgg) markDead(rank int) {
	if pa.dead[rank] {
		return
	}
	pa.dead[rank] = true
	pa.topo.MarkDead(rank)
}

// endpoints returns the per-rank gradAllReducer handles the worker loop
// drives.
func (pa *partialAgg) endpoints() []gradAllReducer {
	eps := make([]gradAllReducer, pa.n)
	for i := range eps {
		eps[i] = partialEndpoint{pa: pa, rank: i}
	}
	return eps
}

type partialEndpoint struct {
	pa   *partialAgg
	rank int
}

func (ep partialEndpoint) AllReduce(p *sim.Proc, round int, buf []float32) {
	ep.pa.allReduce(p, round, ep.rank, buf)
}

func (ep partialEndpoint) AllReduceRange(p *sim.Proc, round int, buf []float32, lo, hi int) {
	panic("core: partial aggregation does not stream (PartialK is incompatible with Overlap)")
}

func (ep partialEndpoint) MarkDead(rank int) { ep.pa.markDead(rank) }
