package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/nn"
	"scaledl/internal/quant"
	"scaledl/internal/sim"
)

// The synchronous family. Each round, all P workers compute gradients in
// parallel on their own replicas and data; the center weight is combined by
// tree collectives in Θ(log P)(α + |W|β) instead of the round-robin's
// Θ(P)(α + |W|β). The three Sync EASGD versions are the paper's §6.1
// co-design steps:
//
//	Sync EASGD1 (Algorithm 2): center on the CPU; packed pinned transfers and
//	  a tree reduction replace P ordered exchanges.
//	Sync EASGD2 (Algorithm 3): center moves to GPU1; parameter traffic rides
//	  GPU↔GPU peer DMA through the PCIe switch, removing host staging.
//	Sync EASGD3 (Algorithm 3 + overlap): the broadcast of W̄ streams through
//	  the bucketed pipeline (stream.go) — per-bucket message waves forked
//	  beneath the data copy + forward/backward, bounded in-flight — and
//	  only the excess is exposed at the join. This is the paper's
//	  "Communication-Efficient EASGD", with its overlap emerging from the
//	  streaming machinery rather than a single hand-built fork.
//
// Every worker runs as its own simulated process, and the collectives are
// executed by the message-level engine in internal/comm: a broadcast is
// log2(P) synchronized waves of real point-to-point messages over the PCIe
// topology, a reduction carries the workers' actual weight segments to the
// root, and the packed-versus-per-layer gap (Figure 10) emerges from the
// per-message α each layer of an unpacked plan pays. No collective is
// charged as a precomputed scalar delay.
//
// SyncSGD is classic synchronous data parallelism (gradient allreduce),
// used by Figure 10's packed-vs-unpacked comparison; its allreduce
// schedule (tree, ring, recursive halving/doubling, pipelined chain,
// linear) is selected by Config.Schedule.

// SyncEASGD1 runs Algorithm 2 (tree reduction, CPU-resident center).
func SyncEASGD1(cfg Config) (Result, error) {
	return runSyncEASGD(cfg, "sync-easgd1", syncOpts{master: masterCPU})
}

// SyncEASGD2 runs Algorithm 3 (GPU-resident center, peer DMA).
func SyncEASGD2(cfg Config) (Result, error) {
	return runSyncEASGD(cfg, "sync-easgd2", syncOpts{master: masterGPU})
}

// SyncEASGD3 runs Algorithm 3 with communication/computation overlap — the
// paper's Communication-Efficient EASGD and its best method.
func SyncEASGD3(cfg Config) (Result, error) {
	return runSyncEASGD(cfg, "sync-easgd3", syncOpts{master: masterGPU, overlap: true})
}

// SyncEASGD is an alias for SyncEASGD3; Figures 6.4 and 8 plot "Sync
// EASGD" meaning the EASGD3 implementation (§5.1).
func SyncEASGD(cfg Config) (Result, error) { return SyncEASGD3(cfg) }

type masterKind int

const (
	masterCPU masterKind = iota
	masterGPU
)

type syncOpts struct {
	master  masterKind
	overlap bool
}

func runSyncEASGD(cfg Config, name string, opt syncOpts) (Result, error) {
	// Loss/corruption is supported — every parameter byte here moves through
	// the guarded collective engine — but the center update needs all P
	// contributions, so membership-shrinking knobs are not.
	if err := cfg.Faults.requireNoMembershipChange(name); err != nil {
		return Result{}, err
	}
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg // validated copy with defaults applied
	env := sim.NewEnv()
	defer env.Close()

	// Sync EASGD1 stages GPU↔GPU exchanges through the host (and keeps the
	// center on the CPU); EASGD2/3 ride peer DMA through the PCIe switch.
	staged := opt.master == masterCPU
	paramCat := CatGPUGPUParam
	if staged {
		paramCat = CatCPUGPUParam
	}
	topo := cfg.Platform.topology(env, cfg.Workers, staged)
	rc.installChaos(topo, func(r int) int { return r })
	parties := comm.Ranks(cfg.Workers)
	cm := comm.NewCommunicator(topo, comm.CommConfig{Parties: parties, Plan: rc.plan})
	stream := rc.newStream(rc.plan)
	nb := stream.bz.NumBuckets()

	const root = 0
	n := len(rc.center)
	sum := make([]float32, n)
	losses := make([]float64, cfg.Workers)
	centerBufs := make([][]float32, cfg.Workers)
	for i := range centerBufs {
		centerBufs[i] = make([]float32, n)
	}
	bar := sim.NewBarrier(env, "iteration", cfg.Workers)

	for i := 0; i < cfg.Workers; i++ {
		i := i
		w := rc.workers[i]
		ep := cm.Endpoint(i)
		var crew *bucketCrew
		if opt.overlap {
			crew = newBucketCrew(env, fmt.Sprintf("gpu%d", i), maxInFlightBuckets)
		}
		env.Spawn(fmt.Sprintf("gpu%d", i), func(p *sim.Proc) {
			for t := 0; t < cfg.Iterations; t++ {
				rc.injectFaults(p, i, t+1)
				t0 := p.Now()
				if i == root {
					// W̄_t was fixed by the master update of iteration t−1;
					// the broadcast distributes it (lines 11 of Algorithm 2/3).
					copy(centerBufs[root], rc.center)
				}
				// Under overlap (Sync EASGD3) the broadcast streams through
				// the bucketed pipeline: one forked message-wave process per
				// ~BucketBytes bucket of W̄ (at most maxInFlightBuckets in
				// flight), running beneath the data copy and forward/backward.
				// The join exposes only the excess — overlap is the pipeline's
				// consequence, not a hand-built max().
				base := 2 * t // rounds: non-overlap bcast 2t, reduce 2t+1
				if opt.overlap {
					base = t * (nb + 1) // rounds: buckets base..base+nb−1, reduce base+nb
					stream.forkBroadcasts(crew, fmt.Sprintf("bcast%d.%d", i, t), base, root, ep, centerBufs[i])
				}

				// Lines 7-9: the CPU posts the minibatch copies as concurrent
				// async DMAs — each worker's data link carries its own copy.
				p.Delay(rc.dataXfer)
				// Line 10: forward/backward. The real math runs on the par
				// pool while this process waits out its compute delay, so all
				// P replicas' gradients overlap in wall-clock time too.
				join := w.beginGradient()
				ct := rc.computeDelay(i, t+1)
				p.Delay(ct)
				losses[i] = join()

				var hidden float64
				if opt.overlap {
					hidden = crew.wait(p)
				} else {
					ep.Broadcast(p, base, root, centerBufs[i])
				}
				if i == root {
					rc.bd.Add(CatCPUGPUData, rc.dataXfer)
					rc.bd.Add(CatForwardBackward, ct)
					rc.chargeOverlap(paramCat, p.Now()-t0, rc.dataXfer+ct, hidden)
				}

				// Line 12: tree-reduce ΣW_j^t of the pre-update local weights
				// to the master's device.
				reduceRound := base + 1
				if opt.overlap {
					reduceRound = base + nb
				}
				tR := p.Now()
				if i == root {
					copy(sum, w.net.Params)
					ep.Reduce(p, reduceRound, root, sum)
					rc.bd.Add(paramCat, p.Now()-tR)
				} else {
					ep.Reduce(p, reduceRound, root, w.net.Params)
				}

				// Line 13: every worker applies Equation (1) with the W̄_t it
				// received.
				w.elasticLocal(cfg.LR, cfg.Rho, centerBufs[i])
				p.Delay(rc.workerUpdate)

				if i == root {
					// Line 14: the master applies Equation (2):
					// W̄ ← W̄ + ηρ(ΣW_j − P·W̄).
					a := cfg.LR * cfg.Rho
					pf := float32(cfg.Workers)
					for k := range rc.center {
						rc.center[k] += a * (sum[k] - pf*rc.center[k])
					}
					rc.updates++
					rc.samples += int64(cfg.Batch * cfg.Workers)
					rc.bd.Add(CatGPUUpdate, rc.workerUpdate)
					// Steps (4) and (5) overlap (§5.1): with a GPU master both
					// updates run on GPUs and the master's excess is zero; the
					// CPU master exposes its slower update's excess.
					if opt.master == masterCPU && rc.masterUpdate > rc.workerUpdate {
						excess := rc.masterUpdate - rc.workerUpdate
						p.Delay(excess)
						rc.bd.Add(CatCPUUpdate, excess)
					}
					if cfg.EvalEvery > 0 && (t+1)%cfg.EvalEvery == 0 {
						var roundLoss float64
						for _, l := range losses {
							roundLoss += l
						}
						roundLoss /= float64(cfg.Workers)
						rc.recordPoint(t+1, p.Now(), roundLoss)
					}
				}
				p.Wait(bar)
				if i == root {
					// Every worker has passed the barrier, so all of this
					// iteration's sends (including any pipelined tail hops)
					// have been charged; attribute the new wire traffic.
					rc.bd.AddBytes(paramCat, topo.BytesMoved()-rc.bd.ParamTraffic())
				}
				if rc.stopped {
					return
				}
			}
		})
	}

	end := env.Run()
	return rc.finish(name, end), nil
}

// gradAllReducer is the collective surface the data-parallel SGD loop
// drives: a flat comm.Endpoint, a hierarchical comm.HierEndpoint, or the
// partial-aggregation endpoint — the worker loop is identical either way,
// which is what makes the hierarchical variant bit-identical to the flat
// one by construction. MarkDead declares a rank fail-stopped: subsequent
// collectives re-form over the survivors (shrunken contribution lists,
// rebuilt schedules) instead of deadlocking on the missing party.
type gradAllReducer interface {
	AllReduce(p *sim.Proc, round int, buf []float32)
	AllReduceRange(p *sim.Proc, round int, buf []float32, lo, hi int)
	MarkDead(rank int)
}

// factorAllGatherer is the additional collective surface the sfb/hybrid
// comm modes need: the flat and hierarchical endpoints both provide it;
// the partial-aggregation endpoint does not (Validate rejects that combo).
type factorAllGatherer interface {
	FactorAllGather(p *sim.Proc, round int, self comm.Factors, out []comm.Factors) []comm.Factors
}

// syncSGDWire prepares the gradient message plan of a data-parallel run:
// the run plan, or the packed single-residual plan plus per-worker
// error-feedback quantizers under Config.Compression.
func (rc *runContext) syncSGDWire() (comm.Plan, comm.WireFunc, []*quant.Quantizer) {
	cfg := rc.cfg
	if cfg.Compression == quant.None {
		return rc.plan, nil, nil
	}
	// Compressed gradients travel as one packed message (the residual
	// layout of 1-bit SGD); each message's wire size is the scheme's.
	plan := comm.Plan{LayerBytes: []int64{rc.paramBytes}, Packed: true}
	wire := func(elems int) int64 { return quant.WireBytes(cfg.Compression, elems) }
	quantizers := make([]*quant.Quantizer, cfg.Workers)
	for i := range quantizers {
		quantizers[i] = quant.New(cfg.Compression, len(rc.center))
	}
	return plan, wire, quantizers
}

// SyncSGD is synchronous data-parallel SGD: gradients are allreduced under
// Config.Schedule (tree by default) and all replicas take the same
// averaged step. The center weight is the (identical) replica weight.
// Figure 10 runs it with packed and per-layer plans to isolate the §5.2
// effect. Low-precision gradients (§3.4 extension) quantize per worker
// with error feedback; the compressed wire size is charged on every
// simulated message the schedule sends. With Config.Overlap the allreduce
// streams: each ~BucketBytes bucket's collective forks at its
// gradient-ready instant during the backward walk, so its wire time hides
// under the remaining backprop — same schedule per bucket, reduced values
// bit-identical to the monolithic path.
func SyncSGD(cfg Config) (Result, error) {
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg // validated copy with defaults applied
	if cfg.Faults.PartialK > 0 && cfg.Overlap {
		return Result{}, fmt.Errorf("core: partial aggregation (PartialK) is incompatible with Overlap streaming")
	}
	env := sim.NewEnv()
	defer env.Close()

	topo := cfg.Platform.topology(env, cfg.Workers, true)
	// Ranks are topology nodes 0..P-1 on the flat PCIe tree.
	rc.installChaos(topo, func(r int) int { return r })
	plan, wire, quantizers := rc.syncSGDWire()
	var eps []gradAllReducer
	if cfg.Faults.PartialK > 0 {
		eps = newPartialAgg(rc, topo, wire).endpoints()
	} else {
		cm := comm.NewCommunicator(topo, comm.CommConfig{
			Parties: comm.Ranks(cfg.Workers), Plan: plan, Schedule: cfg.Schedule, Wire: wire,
		})
		eps = make([]gradAllReducer, cfg.Workers)
		for i := range eps {
			eps[i] = cm.Endpoint(i)
		}
	}
	end := rc.runSyncSGDWorkers(env, plan, eps, quantizers, topo.BytesMoved,
		func() float64 { return topo.RetryWait(0) })
	return rc.finish("sync-sgd", end), nil
}

// runSyncSGDWorkers spawns the data-parallel worker processes and runs the
// iteration loop over the given collective endpoints (flat, hierarchical
// or partial-aggregation), returning the simulated end time. retryWait
// reads the coordinating rank's cumulative sender-side retry time (nil
// when the topology cannot retry); the loop samples its deltas so retry
// time lands in CatRetry instead of the parameter-communication category.
func (rc *runContext) runSyncSGDWorkers(env *sim.Env, plan comm.Plan, eps []gradAllReducer, quantizers []*quant.Quantizer, bytesMoved func() int64, retryWait func() float64) float64 {
	cfg := rc.cfg
	// The hybrid comm layout (nil in dense mode): SFB layers leave the
	// bucketed allreduce stream and ride factor allgathers of their own;
	// their reconstruction replays each rank's gradient computation in rank
	// order, so every path below ends with gradients bit-identical to the
	// dense allreduce.
	hy := rc.hybridRun(plan)
	var stream *streamPlan
	var fgs []factorAllGatherer
	if hy != nil {
		stream = rc.newStreamMasked(plan, hy.skip)
		fgs = make([]factorAllGatherer, len(eps))
		for i, ep := range eps {
			fg, ok := ep.(factorAllGatherer)
			if !ok {
				panic(fmt.Sprintf("core: comm mode %v endpoint %T cannot gather factors", cfg.CommMode, ep))
			}
			fgs[i] = fg
		}
	} else {
		stream = rc.newStream(plan)
	}
	nb := stream.bz.NumBuckets()
	// Collective rounds consumed per iteration, so round numbers never
	// collide across an iteration's buckets, dense runs and factor
	// allgathers.
	perIterOverlap := nb
	perIterMono := 1
	if hy != nil {
		perIterOverlap = nb + len(hy.segs)
		perIterMono = len(hy.denseRuns) + len(hy.segs)
	}
	if retryWait == nil {
		retryWait = func() float64 { return 0 }
	}

	const root = 0
	losses := make([]float64, cfg.Workers)
	gbufs := make([][]float32, cfg.Workers)
	for i := range gbufs {
		gbufs[i] = make([]float32, len(rc.center))
	}
	bar := sim.NewBarrier(env, "iteration", cfg.Workers)

	// Fail-continue (FaultPlan.FailMode "continue"): worker failRank dies
	// for good at the start of step failStep; the survivors mark it dead
	// (the collectives re-form over P−1 live ranks), switch to a smaller
	// barrier, and the averaged step divides by the live count from that
	// step on. No checkpoint, no replay — the dead rank's data shard simply
	// leaves the sample stream.
	faults := &cfg.Faults
	failStep := 0
	if faults.failContinue() {
		failStep = faults.FailAtStep
	}
	barLive := bar
	if failStep > 0 {
		barLive = sim.NewBarrier(env, "iteration-live", cfg.Workers-1)
	}
	liveAt := func(s int) int {
		if failStep > 0 && s >= failStep {
			return cfg.Workers - 1
		}
		return cfg.Workers
	}

	for i := 0; i < cfg.Workers; i++ {
		i := i
		w := rc.workers[i]
		ep := eps[i]
		var crew *bucketCrew
		if cfg.Overlap {
			crew = newBucketCrew(env, fmt.Sprintf("gpu%d", i), maxInFlightBuckets)
		}
		env.Spawn(fmt.Sprintf("gpu%d", i), func(p *sim.Proc) {
			for t := 0; t < cfg.Iterations; t++ {
				s := t + 1
				if failStep > 0 && s >= failStep {
					if i == faults.FailRank {
						// Fail-stop without checkpoint: this worker is gone.
						rc.failedRank = i
						return
					}
					if s == failStep {
						ep.MarkDead(faults.FailRank) // idempotent across survivors
					}
				}
				rc.injectFaults(p, i, s)
				t0 := p.Now()
				p.Delay(rc.dataXfer) // concurrent async DMAs to all workers

				if cfg.Overlap {
					// The streaming pipeline: the backward walk emits bucket-
					// ready instants; each bucket's allreduce is forked the
					// moment its last layer's gradient lands, so its message
					// waves (same per-bucket schedule) run beneath the tail
					// of backprop and beneath each other (bounded in-flight).
					// The reduced values stay bit-identical to the monolithic
					// allreduce: same elements, same rank-ordered sums.
					prepared := false
					scale := rc.computeScale(i, t+1)
					ready := func() {
						if !prepared {
							// First emission: the pool join has landed, the
							// full gradient is final; quantize (error
							// feedback) and snapshot once, exactly as the
							// monolithic path does after its compute delay.
							if quantizers != nil {
								quantizers[i].Apply(w.net.Grads, w.net.Grads)
							}
							copy(gbufs[i], w.net.Grads)
							prepared = true
						}
					}
					var onFactor func(seg int, e nn.GradEvent)
					if hy != nil {
						onFactor = func(seg int, e nn.GradEvent) {
							// An SFB layer's gradient-ready instant: its
							// factor views are live; the forked allgather
							// snapshots them at send time, so the collective
							// streams beneath the remaining backward exactly
							// like a bucket's allreduce.
							ready()
							k := hy.bySeg[seg]
							self := comm.Factors{DY: e.DY, X: e.X, B: e.B, F: e.F, D: e.D}
							crew.fork(fmt.Sprintf("fg%d.%d.%d", i, t, k), func(bp *sim.Proc) {
								hy.outs[i][k] = fgs[i].FactorAllGather(bp, t*perIterOverlap+nb+k, self, hy.outs[i][k])
							})
						}
					}
					losses[i] = stream.walkHybrid(p, w, scale, func(b int, bk comm.Bucket) {
						ready()
						crew.fork(fmt.Sprintf("ar%d.%d.%d", i, t, b), func(bp *sim.Proc) {
							ep.AllReduceRange(bp, t*perIterOverlap+b, gbufs[i], bk.Lo, bk.Hi)
						})
					}, onFactor)
					hidden := crew.wait(p)
					if hy != nil {
						// Every factor list is in; reconstruction is
						// receiver-side compute after the joins (it needs
						// all P pairs), charged to the virtual clock here
						// and attributed to CatSFBRecon at the root.
						for k, sg := range hy.segs {
							hy.scratch[i] = comm.ReconstructFactors(gbufs[i][sg.lo:sg.hi], hy.outs[i][k], hy.scratch[i])
						}
						p.Delay(hy.reconTime)
					}
					if i == root {
						ct := w.computeTime * scale
						rc.bd.Add(CatCPUGPUData, rc.dataXfer)
						rc.bd.Add(CatForwardBackward, ct)
						busy := rc.dataXfer + ct
						if hy != nil {
							rc.bd.Add(CatSFBRecon, hy.reconTime)
							busy += hy.reconTime
						}
						rc.chargeOverlap(CatCPUGPUParam, p.Now()-t0, busy, hidden)
					}
				} else {
					join := w.beginGradient()
					ct := rc.computeDelay(i, t+1)
					p.Delay(ct)
					losses[i] = join()

					// The allreduce: real gradient segments move under the
					// selected schedule; every worker ends with the rank-ordered
					// sum, bit-identical to comm.ReduceSum.
					if quantizers != nil {
						quantizers[i].Apply(w.net.Grads, w.net.Grads)
					}
					copy(gbufs[i], w.net.Grads)
					tA := p.Now()
					rw0, dw0 := retryWait(), rc.droppedWait
					if hy == nil {
						ep.AllReduce(p, t*perIterMono, gbufs[i])
					} else {
						// Hybrid monolithic: each contiguous run of dense
						// segments allreduces as a range, each SFB layer's
						// factors allgather and reconstruct in place — the
						// concatenation covers the model exactly once, in
						// rank order everywhere, so the result matches the
						// whole-model allreduce bit for bit.
						base := t * perIterMono
						for j, dr := range hy.denseRuns {
							ep.AllReduceRange(p, base+j, gbufs[i], dr.lo, dr.hi)
						}
						nd := len(hy.denseRuns)
						for k, sg := range hy.segs {
							dy, x, fb, ff, fd := w.net.Layers[sg.layer].(nn.FactorLayer).BackwardFactors()
							self := comm.Factors{DY: dy, X: x, B: fb, F: ff, D: fd}
							hy.outs[i][k] = fgs[i].FactorAllGather(p, base+nd+k, self, hy.outs[i][k])
							hy.scratch[i] = comm.ReconstructFactors(gbufs[i][sg.lo:sg.hi], hy.outs[i][k], hy.scratch[i])
						}
						p.Delay(hy.reconTime)
					}
					if i == root {
						rc.bd.Add(CatCPUGPUData, rc.dataXfer)
						rc.bd.Add(CatForwardBackward, ct)
						// The collective's wall time splits four ways: the
						// root's own retry stalls (CatRetry), its partial-
						// aggregation deadline waits (CatDropped), the SFB
						// reconstruction compute (CatSFBRecon), and the
						// rest — the communication proper.
						retryD := retryWait() - rw0
						dropD := rc.droppedWait - dw0
						reconD := 0.0
						if hy != nil {
							reconD = hy.reconTime
						}
						commT := p.Now() - tA - retryD - dropD - reconD
						if commT < 0 {
							commT = 0
						}
						rc.bd.Add(CatCPUGPUParam, commT)
						rc.bd.Add(CatRetry, retryD)
						rc.bd.Add(CatDropped, dropD)
						rc.bd.Add(CatSFBRecon, reconD)
					}
				}

				// Every live replica takes the same averaged step.
				live := liveAt(s)
				step := cfg.LR / float32(live)
				for k, g := range gbufs[i] {
					w.net.Params[k] -= step * g
				}
				p.Delay(rc.workerUpdate)

				if i == root {
					copy(rc.center, w.net.Params)
					rc.updates++
					rc.samples += int64(cfg.Batch * live)
					rc.bd.Add(CatGPUUpdate, rc.workerUpdate)
					if cfg.EvalEvery > 0 && s%cfg.EvalEvery == 0 {
						var roundLoss float64
						for j, l := range losses {
							if failStep > 0 && s >= failStep && j == faults.FailRank {
								continue
							}
							roundLoss += l
						}
						roundLoss /= float64(live)
						rc.recordPoint(s, p.Now(), roundLoss)
					}
				}
				tB := p.Now()
				b := bar
				if failStep > 0 && s >= failStep {
					b = barLive
				}
				p.Wait(b)
				if i == root {
					// The root's barrier wait is the pipeline drain: under
					// the eager chain schedule rank 0 finishes its hops
					// before the tail of the line does, and that exposed
					// time is still communication. (Synchronized schedules
					// release everyone together, so the wait is zero.)
					rc.bd.Add(CatCPUGPUParam, p.Now()-tB)
					// Post-barrier, every rank's sends — including the chain
					// tail hops — have been charged.
					rc.bd.AddBytes(CatCPUGPUParam, bytesMoved()-rc.bd.ParamTraffic())
				}
				if rc.stopped {
					return
				}
			}
		})
	}

	return env.Run()
}
