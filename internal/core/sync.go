package core

import (
	"scaledl/internal/comm"
	"scaledl/internal/par"
	"scaledl/internal/quant"
	"scaledl/internal/sim"
)

// The synchronous family. Each round, all P workers compute gradients in
// parallel on their own replicas and data; the center weight is combined by
// tree collectives in Θ(log P)(α + |W|β) instead of the round-robin's
// Θ(P)(α + |W|β). The three Sync EASGD versions are the paper's §6.1
// co-design steps:
//
//	Sync EASGD1 (Algorithm 2): center on the CPU; packed pinned transfers and
//	  a tree reduction replace P ordered exchanges.
//	Sync EASGD2 (Algorithm 3): center moves to GPU1; parameter traffic rides
//	  GPU↔GPU peer DMA through the PCIe switch, removing host staging.
//	Sync EASGD3 (Algorithm 3 + overlap): the broadcast of W̄ hides under the
//	  data copy + forward/backward; the reduction stays exposed. This is the
//	  paper's "Communication-Efficient EASGD".
//
// SyncSGD is classic synchronous data parallelism (gradient allreduce),
// used by Figure 10's packed-vs-unpacked comparison.

// SyncEASGD1 runs Algorithm 2 (tree reduction, CPU-resident center).
func SyncEASGD1(cfg Config) (Result, error) {
	return runSyncEASGD(cfg, "sync-easgd1", syncOpts{master: masterCPU})
}

// SyncEASGD2 runs Algorithm 3 (GPU-resident center, peer DMA).
func SyncEASGD2(cfg Config) (Result, error) {
	return runSyncEASGD(cfg, "sync-easgd2", syncOpts{master: masterGPU})
}

// SyncEASGD3 runs Algorithm 3 with communication/computation overlap — the
// paper's Communication-Efficient EASGD and its best method.
func SyncEASGD3(cfg Config) (Result, error) {
	return runSyncEASGD(cfg, "sync-easgd3", syncOpts{master: masterGPU, overlap: true})
}

// SyncEASGD is an alias for SyncEASGD3; Figures 6.4 and 8 plot "Sync
// EASGD" meaning the EASGD3 implementation (§5.1).
func SyncEASGD(cfg Config) (Result, error) { return SyncEASGD3(cfg) }

type masterKind int

const (
	masterCPU masterKind = iota
	masterGPU
)

type syncOpts struct {
	master  masterKind
	overlap bool
}

func runSyncEASGD(cfg Config, name string, opt syncOpts) (Result, error) {
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg // validated copy with defaults applied
	env := sim.NewEnv()
	defer env.Close()

	paramLink := cfg.Platform.PeerParam
	paramCat := CatGPUGPUParam
	if opt.master == masterCPU {
		paramLink = cfg.Platform.HostParam
		paramCat = CatCPUGPUParam
	}
	bcastCost := treePlanTime(rc.plan, paramLink, cfg.Workers)
	reduceCost := treePlanTime(rc.plan, paramLink, cfg.Workers)

	sum := make([]float32, len(rc.center))
	losses := make([]float64, cfg.Workers)

	env.Spawn("coordinator", func(p *sim.Proc) {
		for t := 0; t < cfg.Iterations && !rc.stopped; t++ {
			// Lines 7-9: CPU picks b samples per GPU and posts the copies as
			// concurrent async DMAs (Algorithm 2 line 9), so the exposed
			// data phase is one transfer, not G.
			dataPhase := rc.dataXfer
			p.Delay(dataPhase)
			rc.bd.Add(CatCPUGPUData, dataPhase)

			// Line 10: forward/backward on all GPUs in parallel (real math
			// per replica, fanned out across the par pool; one parallel
			// delay since workers are homogeneous).
			computeGradients(rc.workers, losses)
			var roundLoss float64
			for _, l := range losses {
				roundLoss += l
			}
			roundLoss /= float64(cfg.Workers)
			p.Delay(rc.workers[0].computeTime)
			rc.bd.Add(CatForwardBackward, rc.workers[0].computeTime)
			rc.samples += int64(cfg.Batch * cfg.Workers)

			// Lines 11-12: broadcast W̄_t; tree-reduce ΣW_j. Under overlap
			// (Sync EASGD3) the broadcast hides beneath data+compute and only
			// its excess is exposed; the reduction is always exposed.
			if opt.overlap {
				exposed := bcastCost - (dataPhase + rc.workers[0].computeTime)
				if exposed > 0 {
					p.Delay(exposed)
					rc.bd.Add(paramCat, exposed)
				}
			} else {
				p.Delay(bcastCost)
				rc.bd.Add(paramCat, bcastCost)
			}
			p.Delay(reduceCost)
			rc.bd.Add(paramCat, reduceCost)

			// Gather ΣW_j^t of the pre-update local weights.
			for i := range sum {
				sum[i] = 0
			}
			for _, w := range rc.workers {
				comm.ReduceSum(sum, w.net.Params)
			}

			// Line 13: every worker applies Equation (1) with W̄_t. Each
			// replica updates its own parameters against the read-only
			// center, so the loop fans out like the gradient phase.
			par.For(len(rc.workers), func(i int) {
				rc.workers[i].elasticLocal(cfg.LR, cfg.Rho, rc.center)
			})
			// Line 14: the master applies Equation (2):
			// W̄ ← W̄ + ηρ(ΣW_j − P·W̄).
			a := cfg.LR * cfg.Rho
			pf := float32(cfg.Workers)
			for i := range rc.center {
				rc.center[i] += a * (sum[i] - pf*rc.center[i])
			}
			rc.updates++

			// Steps (4) and (5) overlap (§5.1): the exposed cost is the
			// worker update plus any master-update excess. With a GPU master
			// both run on GPUs and the excess is zero.
			p.Delay(rc.workerUpdate)
			rc.bd.Add(CatGPUUpdate, rc.workerUpdate)
			mu := rc.masterUpdate
			if opt.master == masterGPU {
				mu = rc.workerUpdate
			}
			if mu > rc.workerUpdate {
				excess := mu - rc.workerUpdate
				p.Delay(excess)
				rc.bd.Add(CatCPUUpdate, excess)
			}

			if cfg.EvalEvery > 0 && (t+1)%cfg.EvalEvery == 0 {
				rc.recordPoint(t+1, p.Now(), roundLoss)
			}
		}
	})

	end := env.Run()
	return rc.finish(name, end), nil
}

// SyncSGD is synchronous data-parallel SGD: gradients are tree-allreduced
// and all replicas take the same averaged step. The center weight is the
// (identical) replica weight. Figure 10 runs it with packed and per-layer
// plans to isolate the §5.2 effect.
func SyncSGD(cfg Config) (Result, error) {
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg // validated copy with defaults applied
	env := sim.NewEnv()
	defer env.Close()

	allreduce := rc.plan.AllReduceTime(cfg.Platform.HostParam, cfg.Workers)
	// Low-precision gradients (§3.4 extension): the allreduce moves the
	// compressed representation, and each worker's quantization error is
	// carried by per-worker error feedback into its next gradient.
	var quantizers []*quant.Quantizer
	if cfg.Compression != quant.None {
		wire := quant.WireBytes(cfg.Compression, len(rc.center))
		allreduce = comm.TreeAllReduceTime(cfg.Platform.HostParam, wire, cfg.Workers)
		quantizers = make([]*quant.Quantizer, cfg.Workers)
		for i := range quantizers {
			quantizers[i] = quant.New(cfg.Compression, len(rc.center))
		}
	}
	sum := make([]float32, len(rc.center))
	losses := make([]float64, cfg.Workers)

	env.Spawn("coordinator", func(p *sim.Proc) {
		for t := 0; t < cfg.Iterations && !rc.stopped; t++ {
			dataPhase := rc.dataXfer // concurrent async DMAs to all workers
			p.Delay(dataPhase)
			rc.bd.Add(CatCPUGPUData, dataPhase)

			computeGradients(rc.workers, losses)
			var roundLoss float64
			for _, l := range losses {
				roundLoss += l
			}
			roundLoss /= float64(cfg.Workers)
			p.Delay(rc.workers[0].computeTime)
			rc.bd.Add(CatForwardBackward, rc.workers[0].computeTime)
			rc.samples += int64(cfg.Batch * cfg.Workers)

			p.Delay(allreduce)
			rc.bd.Add(CatCPUGPUParam, allreduce)

			for i := range sum {
				sum[i] = 0
			}
			for wi, w := range rc.workers {
				if quantizers != nil {
					quantizers[wi].Apply(w.net.Grads, w.net.Grads)
				}
				comm.ReduceSum(sum, w.net.Grads)
			}
			// Every replica takes the same averaged step; each writes only
			// its own parameters, reading the shared gradient sum.
			step := cfg.LR / float32(cfg.Workers)
			par.For(len(rc.workers), func(wi int) {
				w := rc.workers[wi]
				for i, g := range sum {
					w.net.Params[i] -= step * g
				}
			})
			copy(rc.center, rc.workers[0].net.Params)
			rc.updates++

			p.Delay(rc.workerUpdate)
			rc.bd.Add(CatGPUUpdate, rc.workerUpdate)

			if cfg.EvalEvery > 0 && (t+1)%cfg.EvalEvery == 0 {
				rc.recordPoint(t+1, p.Now(), roundLoss)
			}
		}
	})

	end := env.Run()
	return rc.finish("sync-sgd", end), nil
}

// treePlanTime is the cost of one tree collective (broadcast or reduce)
// over the plan: packed plans run ceil(log2 P) rounds of one message; per-
// layer plans run a tree per layer, paying latency per layer per round.
func treePlanTime(p comm.Plan, l comm.Transferer, parties int) float64 {
	if p.Packed {
		return comm.TreeBroadcastTime(l, p.TotalBytes(), parties)
	}
	var t float64
	for _, b := range p.LayerBytes {
		t += comm.TreeBroadcastTime(l, b, parties)
	}
	if p.GatherBW > 0 {
		t += float64(p.TotalBytes()) / p.GatherBW
	}
	return t
}
