package core

import (
	"math"
	"testing"

	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/tensor"
)

// testConfig builds a small but real training setup: 4 simulated GPUs on
// the default platform, TinyCNN on a learnable 4-class synthetic set.
func testConfig(t *testing.T, iters int, packed bool) Config {
	t.Helper()
	spec := data.Spec{Name: "toy", Channels: 1, Height: 12, Width: 12, Classes: 4}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 512, TestN: 256, Seed: 99})
	train.Normalize()
	test.Normalize()
	return Config{
		Def:        nn.TinyCNN(nn.Shape{C: 1, H: 12, W: 12}, 4),
		Train:      train,
		Test:       test,
		Workers:    4,
		Batch:      8,
		LR:         0.05,
		Momentum:   0.9,
		Iterations: iters,
		Seed:       7,
		Platform:   DefaultGPUPlatform(packed),
	}
}

func TestAllMethodsRunAndLearn(t *testing.T) {
	for _, name := range MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, 60, true)
			if name == "original-easgd" || name == "original-easgd*" {
				cfg.Iterations = 200 // round-robin does 1 batch per iteration
				cfg.Platform = DefaultGPUPlatform(false)
			}
			if name == "async-msgd" || name == "async-measgd" {
				// Momentum amplifies the effective step ~1/(1-µ); the same η
				// that plain SGD uses diverges (the instability Figure 6.2
				// reports for Async MSGD). Use a stable step for this test.
				cfg.LR = 0.01
			}
			if name == "hier-sync-sgd" || name == "hier-sync-easgd" {
				// The hierarchical methods train over a 2-node × 2-GPU
				// composed cluster (same 4 workers as the flat runs).
				cfg.Nodes, cfg.GPUsPerNode = 2, 2
			}
			res, err := Methods[name](cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Method != name {
				t.Errorf("method name %q", res.Method)
			}
			if res.SimTime <= 0 {
				t.Errorf("sim time %v", res.SimTime)
			}
			if res.Samples <= 0 {
				t.Errorf("no samples consumed")
			}
			if res.FinalAcc < 0.5 {
				t.Errorf("%s: final accuracy %.3f, should beat 0.5 on separable 4-class data", name, res.FinalAcc)
			}
			if res.ErrorRate() != 1-res.FinalAcc {
				t.Errorf("ErrorRate inconsistent")
			}
		})
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// The paper's claim: Sync EASGD is deterministic and reproducible. Our
	// simulator makes every method reproducible; verify bit-equality of the
	// full result for a representative subset.
	for _, name := range []string{"sync-easgd3", "hogwild-easgd", "original-easgd", "async-sgd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg1 := testConfig(t, 30, true)
			cfg2 := testConfig(t, 30, true)
			r1, err1 := Methods[name](cfg1)
			r2, err2 := Methods[name](cfg2)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if r1.SimTime != r2.SimTime {
				t.Errorf("sim times differ: %v vs %v", r1.SimTime, r2.SimTime)
			}
			if r1.FinalAcc != r2.FinalAcc {
				t.Errorf("accuracies differ: %v vs %v", r1.FinalAcc, r2.FinalAcc)
			}
			if r1.FinalLoss != r2.FinalLoss {
				t.Errorf("losses differ: %v vs %v", r1.FinalLoss, r2.FinalLoss)
			}
		})
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg1 := testConfig(t, 20, true)
	cfg2 := testConfig(t, 20, true)
	cfg2.Seed = 8
	r1, _ := SyncEASGD3(cfg1)
	r2, _ := SyncEASGD3(cfg2)
	if r1.FinalLoss == r2.FinalLoss {
		t.Error("different seeds produced identical losses")
	}
}

// The paper's Table 3 structure: Sync EASGD variants process the same
// number of samples far faster than round-robin EASGD, and the co-design
// steps are ordered EASGD* ≥ EASGD > Sync1 > Sync2 ≥ Sync3 in time.
func TestSyncBeatsRoundRobinPerSample(t *testing.T) {
	g := 4
	rounds := 25
	// Equal sample budgets: round-robin does 1 batch/iter, sync does G.
	rrCfg := testConfig(t, rounds*g, false) // legacy per-layer platform
	serial, err := OriginalEASGDSerial(rrCfg)
	if err != nil {
		t.Fatal(err)
	}
	rrCfg2 := testConfig(t, rounds*g, false)
	pipelined, err := OriginalEASGD(rrCfg2)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{"original-easgd*": serial.SimTime, "original-easgd": pipelined.SimTime}
	for _, name := range []string{"sync-easgd1", "sync-easgd2", "sync-easgd3"} {
		cfg := testConfig(t, rounds, true)
		res, err := Methods[name](cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Samples != serial.Samples {
			t.Fatalf("%s consumed %d samples, round-robin %d — not comparable", name, res.Samples, serial.Samples)
		}
		times[name] = res.SimTime
	}
	if !(times["original-easgd"] <= times["original-easgd*"]) {
		t.Errorf("pipelined EASGD (%v) should not be slower than serial (%v)", times["original-easgd"], times["original-easgd*"])
	}
	if !(times["sync-easgd1"] < times["original-easgd"]) {
		t.Errorf("sync1 (%v) should beat round-robin (%v)", times["sync-easgd1"], times["original-easgd"])
	}
	if !(times["sync-easgd2"] < times["sync-easgd1"]) {
		t.Errorf("sync2 (%v) should beat sync1 (%v)", times["sync-easgd2"], times["sync-easgd1"])
	}
	if !(times["sync-easgd3"] <= times["sync-easgd2"]) {
		t.Errorf("sync3 (%v) should not be slower than sync2 (%v)", times["sync-easgd3"], times["sync-easgd2"])
	}
	speedup := times["original-easgd"] / times["sync-easgd3"]
	if speedup < 2 {
		t.Errorf("sync3 speedup over round-robin %.2f×; paper reports ≈5.3× (≥2 required)", speedup)
	}
	t.Logf("per-sample-equal times: %v (sync3 speedup %.1f×)", times, speedup)
}

func TestHogwildFasterThanLockedThroughput(t *testing.T) {
	// Same number of master updates; the lock-free master should finish in
	// less simulated time because services overlap.
	locked, err := AsyncEASGD(testConfig(t, 80, true))
	if err != nil {
		t.Fatal(err)
	}
	free, err := HogwildEASGD(testConfig(t, 80, true))
	if err != nil {
		t.Fatal(err)
	}
	if free.SimTime >= locked.SimTime {
		t.Errorf("hogwild %.4fs not faster than locked %.4fs", free.SimTime, locked.SimTime)
	}
}

func TestAsyncEASGDOverlapBeatsAsyncSGD(t *testing.T) {
	// EASGD workers overlap gradient computation with the round trip, so for
	// the same update budget the run finishes sooner.
	sgd, err := AsyncSGD(testConfig(t, 80, true))
	if err != nil {
		t.Fatal(err)
	}
	easgd, err := AsyncEASGD(testConfig(t, 80, true))
	if err != nil {
		t.Fatal(err)
	}
	if easgd.SimTime >= sgd.SimTime {
		t.Errorf("async-easgd %.4fs not faster than async-sgd %.4fs", easgd.SimTime, sgd.SimTime)
	}
}

func TestBreakdownSumsToWallForCoordinatedMethods(t *testing.T) {
	// For the round-robin and sync algorithms the breakdown uses exposed
	// (critical-path) accounting from the coordinator, so the category sum
	// must equal the simulated wall time.
	for _, name := range []string{"original-easgd*", "sync-easgd1", "sync-easgd2", "sync-easgd3", "sync-sgd"} {
		cfg := testConfig(t, 20, true)
		if name == "original-easgd*" {
			cfg.Platform = DefaultGPUPlatform(false)
			cfg.Iterations = 80
		}
		res, err := Methods[name](cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := res.Breakdown.Total()
		if rel := math.Abs(sum-res.SimTime) / res.SimTime; rel > 0.02 {
			t.Errorf("%s: breakdown sum %.5f vs wall %.5f (rel %.3f)", name, sum, res.SimTime, rel)
		}
	}
}

// realisticConfig is a LeNet-regime setup: 28×28 inputs and batch 32 put
// per-iteration compute in the hundreds of microseconds, the regime where
// Table 3's comm-versus-compute shares are meaningful. (The toy 12×12 config
// is latency-dominated, which is physically right for toy models but not
// the paper's operating point.)
func realisticConfig(t *testing.T, iters int, packed bool) Config {
	t.Helper()
	spec := data.Spec{Name: "mnistish", Channels: 1, Height: 28, Width: 28, Classes: 10}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 512, TestN: 128, Seed: 5})
	train.Normalize()
	test.Normalize()
	return Config{
		Def:        nn.TinyCNN(nn.Shape{C: 1, H: 28, W: 28}, 10),
		Train:      train,
		Test:       test,
		Workers:    4,
		Batch:      32,
		LR:         0.05,
		Iterations: iters,
		Seed:       3,
		Platform:   DefaultGPUPlatform(packed),
	}
}

func TestCommRatioDropsAcrossCodesign(t *testing.T) {
	// Table 3's headline: communication share falls from ~87% (original) to
	// ~14% (sync3).
	rrCfg := realisticConfig(t, 40, false)
	rr, err := OriginalEASGD(rrCfg)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := SyncEASGD3(realisticConfig(t, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Breakdown.CommRatio() < 0.5 {
		t.Errorf("original EASGD comm ratio %.2f, expected communication-dominated (>0.5)", rr.Breakdown.CommRatio())
	}
	if s3.Breakdown.CommRatio() > 0.5 {
		t.Errorf("sync EASGD3 comm ratio %.2f, expected compute-dominated (<0.5)", s3.Breakdown.CommRatio())
	}
	if s3.Breakdown.CommRatio() >= rr.Breakdown.CommRatio() {
		t.Errorf("comm ratio did not drop: %.2f -> %.2f", rr.Breakdown.CommRatio(), s3.Breakdown.CommRatio())
	}
}

func TestCurveRecording(t *testing.T) {
	cfg := testConfig(t, 30, true)
	cfg.EvalEvery = 10
	res, err := SyncEASGD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(res.Curve))
	}
	prevT := -1.0
	for _, pt := range res.Curve {
		if pt.SimTime <= prevT {
			t.Errorf("curve times not increasing: %v", res.Curve)
		}
		prevT = pt.SimTime
		if pt.TestAcc < 0 || pt.TestAcc > 1 {
			t.Errorf("accuracy %v out of range", pt.TestAcc)
		}
	}
	if res.Curve[len(res.Curve)-1].Iter != 30 {
		t.Errorf("last point iter %d", res.Curve[len(res.Curve)-1].Iter)
	}
}

func TestSingleWorkerDegenerateCase(t *testing.T) {
	for _, name := range []string{"sync-easgd3", "async-easgd", "hogwild-sgd", "original-easgd"} {
		cfg := testConfig(t, 15, true)
		cfg.Workers = 1
		res, err := Methods[name](cfg)
		if err != nil {
			t.Fatalf("%s with 1 worker: %v", name, err)
		}
		if res.SimTime <= 0 {
			t.Errorf("%s: no time elapsed", name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(t, 10, true)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-train", func(c *Config) { c.Train = nil }},
		{"zero-workers", func(c *Config) { c.Workers = 0 }},
		{"zero-batch", func(c *Config) { c.Batch = 0 }},
		{"zero-iters", func(c *Config) { c.Iterations = 0 }},
		{"bad-lr", func(c *Config) { c.LR = 0 }},
		{"shape-mismatch", func(c *Config) { c.Def = nn.TinyCNN(nn.Shape{C: 3, H: 12, W: 12}, 4) }},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		if _, err := SyncEASGD3(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRhoDefaultFollowsEASGDGuidance(t *testing.T) {
	cfg := testConfig(t, 10, true)
	cfg.Rho = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// η·ρ should equal 0.9/P.
	got := float64(cfg.LR * cfg.Rho)
	want := 0.9 / float64(cfg.Workers)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("η·ρ = %v, want %v", got, want)
	}
}

func TestElasticUpdateMovesCenterTowardWorkers(t *testing.T) {
	// Equation (2) property: if all workers sit at the same point X, the
	// center moves strictly toward X and never overshoots (for ηρP < 1).
	n := 32
	center := make([]float32, n)
	x := make([]float32, n)
	for i := range x {
		x[i] = 1
	}
	var lr, rho float32 = 0.05, 2 // ηρ = 0.1
	for step := 0; step < 100; step++ {
		before := append([]float32(nil), center...)
		centerElasticUpdate(center, x, center, lr, rho)
		for i := range center {
			if (center[i]-before[i])*(x[i]-before[i]) < 0 {
				t.Fatalf("center moved away from worker at %d", i)
			}
			if center[i] > x[i] {
				t.Fatalf("center overshot worker at %d: %v", i, center[i])
			}
		}
	}
	if center[0] < 0.99 {
		t.Errorf("center should converge to worker position, got %v", center[0])
	}
}

func TestBreakdownNegativePanics(t *testing.T) {
	var b Breakdown
	defer func() {
		if recover() == nil {
			t.Fatal("negative breakdown time did not panic")
		}
	}()
	b.Add(CatCPUUpdate, -1)
}

func TestCategoryStrings(t *testing.T) {
	if len(Categories()) != 10 {
		t.Fatalf("want 10 categories")
	}
	for _, c := range Categories() {
		if c.String() == "" {
			t.Errorf("category %d has empty name", c)
		}
	}
	if Category(99).String() == "" {
		t.Error("unknown category should still print")
	}
}

func TestMethodRegistryComplete(t *testing.T) {
	if len(Methods) != len(MethodNames()) {
		t.Errorf("registry has %d methods, names list %d", len(Methods), len(MethodNames()))
	}
	for _, n := range MethodNames() {
		if Methods[n] == nil {
			t.Errorf("method %q missing from registry", n)
		}
	}
}

// TestComputePrecKnob checks the GEMM storage-precision plumbing: a bf16 run
// trains (and differs from the fp32 trajectory — the narrowing is real), the
// process-wide setting is restored after the run, and an unknown name is
// rejected by Validate.
func TestComputePrecKnob(t *testing.T) {
	before := tensor.ComputePrecision()
	cfg := testConfig(t, 10, true)
	full, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = testConfig(t, 10, true)
	cfg.ComputePrec = "bf16"
	res, err := SyncSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tensor.ComputePrecision(); got != before {
		t.Fatalf("precision not restored after run: %v (was %v)", got, before)
	}
	if res.FinalLoss == full.FinalLoss {
		t.Error("bf16 trajectory identical to fp32 — precision knob had no effect")
	}
	bad := testConfig(t, 10, true)
	bad.ComputePrec = "int8"
	if err := bad.Validate(); err == nil {
		t.Error("Validate must reject unknown precision")
	}
}
