package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/sim"
)

// OriginalEASGDSerial is Algorithm 1 of the paper with no overlap (the
// "Original EASGD*" row of Table 3): per iteration the master interacts
// with exactly one GPU, and every step — data copy, center-weight download,
// forward/backward, local-weight upload, both updates — sits on the
// master's critical path. Communication is ordered by rank (round-robin),
// so only one GPU computes at a time.
func OriginalEASGDSerial(cfg Config) (Result, error) {
	return runRoundRobin(cfg, "original-easgd*", false)
}

// OriginalEASGD is Algorithm 1 as deployed (the "Original EASGD" row):
// identical round-robin schedule, but the j-th GPU's forward/backward
// overlaps with the master's parameter exchange for neighbouring
// iterations, hiding most of the compute behind communication. It remains
// Θ(P) per sweep, the inefficiency the paper's Sync EASGD removes.
//
// Parameter traffic rides the simulated PCIe topology: the center download
// is a per-plan-segment message wave on worker j's host link (per-layer
// plans pay one α per layer — the pageable, unpacked mode the original
// code used), and the upload is a master-driven pull with the same shape.
// Config.Compression delta-encodes both weight streams per worker.
func OriginalEASGD(cfg Config) (Result, error) {
	return runRoundRobin(cfg, "original-easgd", true)
}

// rrCmd travels master→worker: a center snapshot, or the stop sentinel.
type rrCmd struct {
	center []float32
	stop   bool
}

// rrDone is the completion a worker posts after its local step: the
// pre-update weight snapshot (codec reconstruction under compression) and
// the wire size the master's pull will cost. The posting itself is a free
// control signal — the upload's time is charged on the master's critical
// path when it collects, exactly Algorithm 1's ordered exchange. Under the
// streaming pipeline (Config.Overlap) the worker posts one rrDone per
// gradient bucket as its backward emits layers, the last one carrying the
// weights and loss, so the master's pull of bucket k overlaps the compute
// of the layers still ahead of bucket k+1.
type rrDone struct {
	weights []float32 // nil for all but the final bucket of a streamed step
	loss    float64
	wire    int64
	bucket  int // bucket ID of a streamed completion (0 for monolithic)
}

const tagRRCenter = 3

func runRoundRobin(cfg Config, name string, overlap bool) (Result, error) {
	// The master's ordered pulls ride DelayModel, outside comm's guarded
	// message path — semantic faults cannot be injected here.
	if err := cfg.Faults.requireTimingOnly(name); err != nil {
		return Result{}, err
	}
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg // validated copy with defaults applied
	// The master is the coordinator here and charges its wait for every
	// worker's completion as exposed compute; a worker's fault stall already
	// lands there, so it must not also be charged to CatRecovery.
	rc.chargeRecovery = false
	env := sim.NewEnv()
	defer env.Close()

	g := cfg.Workers
	topo := cfg.Platform.topology(env, g, true)
	master := topo.Host()
	done := make([]*sim.Queue, g)
	for j := 0; j < g; j++ {
		done[j] = sim.NewQueue(env, fmt.Sprintf("done%d", j))
	}
	// Both directions carry weights, so the codec bundle is the EASGD-style
	// (elastic) one: delta codecs per directed stream.
	codecs := newPSCodecs(cfg, len(rc.center), true)
	up, down := codecs.upW, codecs.down
	stream := rc.newStream(rc.plan)
	nb := stream.bz.NumBuckets()

	// Workers: wait for a center-weight message, run one real minibatch
	// forward/backward, post the pre-update weights, then apply Eq. (1)
	// locally. Worker time runs concurrently with the master's pipeline,
	// and in the overlapped schedule several workers' compute windows
	// coincide — their gradient math genuinely overlaps on the par pool
	// while each simulated process waits out its compute delay.
	for j := 0; j < g; j++ {
		j := j
		w := rc.workers[j]
		env.Spawn(fmt.Sprintf("gpu%d", j), func(p *sim.Proc) {
			for step := 1; ; step++ {
				cmd := topo.Recv(p, j, master, tagRRCenter).(rrCmd)
				if cmd.stop {
					return
				}
				rc.injectFaults(p, j, step)
				if cfg.Overlap {
					// Streaming: post one free bucket completion per
					// gradient-ready instant; the pre-update weight snapshot
					// (identical to the monolithic one — Params do not change
					// during compute) rides the final bucket.
					var snap []float32
					var wires []int64
					prepared := false
					emitted := 0
					stream.walk(p, w, rc.computeScale(j, step), func(b int, bk comm.Bucket) {
						if !prepared {
							var wire int64
							snap, wire = w.snapshotWeights(codecAt(up, j))
							wires = stream.bz.SplitWire(wire)
							prepared = true
						}
						d := rrDone{wire: wires[b], bucket: b}
						if emitted++; emitted == nb {
							// The last emission carries the snapshot + loss.
							d.weights = snap
							d.loss = w.lastLoss
						}
						done[j].Send(d)
					})
				} else {
					join := w.beginGradient()
					p.Delay(rc.computeDelay(j, step))
					loss := join()
					snap, wire := w.snapshotWeights(codecAt(up, j))
					done[j].Send(rrDone{weights: snap, loss: loss, wire: wire})
				}
				w.elasticLocal(cfg.LR, cfg.Rho, cmd.center)
				p.Delay(rc.workerUpdate)
			}
		})
	}

	// Master: the round-robin loop of Algorithm 1. With overlap enabled the
	// completion of worker j is collected just before j's next turn, G
	// iterations later, so its compute hides behind the other workers'
	// parameter exchanges.
	pending := make([]bool, g)
	env.Spawn("master", func(p *sim.Proc) {
		sendCenter := func(j int) {
			center := make([]float32, len(rc.center))
			wire := int64(len(center)) * 4
			if down != nil {
				wire = down[j].Encode(rc.center, center)
			} else {
				copy(center, rc.center)
			}
			t0 := p.Now()
			rc.bd.AddBytes(CatCPUGPUParam, wire)
			topo.SendModel(p, master, j, tagRRCenter, rrCmd{center: center}, rc.plan, wire)
			rc.bd.Add(CatCPUGPUParam, p.Now()-t0)
		}
		collect := func(j int) {
			// Upload W_j to the CPU (line 12): a master-driven pull over j's
			// host link — per gradient bucket under the streaming pipeline
			// (each pull starts the moment its bucket's layers are ready,
			// overlapping the worker's remaining backward), in one piece
			// otherwise. Exposed wait is compute, pull time is parameter
			// communication, so the breakdown still sums to wall-clock.
			var m rrDone
			pull := func(bk rrDone, plan comm.Plan) {
				rc.bd.AddBytes(CatCPUGPUParam, bk.wire)
				t1 := p.Now()
				topo.DelayModel(p, j, master, plan, bk.wire)
				rc.bd.Add(CatCPUGPUParam, p.Now()-t1)
			}
			if cfg.Overlap {
				for range stream.buckets {
					t0 := p.Now()
					mb := p.Recv(done[j]).(rrDone)
					rc.bd.Add(CatForwardBackward, p.Now()-t0) // exposed compute = wait time
					pull(mb, stream.bz.SubPlan(stream.buckets[mb.bucket]))
					if mb.weights != nil {
						m = mb
					}
				}
			} else {
				t0 := p.Now()
				m = p.Recv(done[j]).(rrDone)
				rc.bd.Add(CatForwardBackward, p.Now()-t0) // exposed compute = wait time
				pull(m, rc.plan)
			}
			// Line 14: W̄ ← W̄ + ηρ(W_j − W̄) with the pre-update W_j.
			centerElasticUpdate(rc.center, m.weights, rc.center, cfg.LR, cfg.Rho)
			p.Delay(rc.masterUpdate)
			rc.bd.Add(CatCPUUpdate, rc.masterUpdate)
			rc.updates++
			pending[j] = false
		}
		for t := 0; t < cfg.Iterations && !rc.stopped; t++ {
			j := t % g
			if pending[j] {
				collect(j)
			}
			// Lines 8-9: pick b samples, async copy to GPU j.
			p.Delay(rc.dataXfer)
			rc.bd.Add(CatCPUGPUData, rc.dataXfer)
			// Line 10: send W̄ down.
			sendCenter(j)
			rc.samples += int64(cfg.Batch)
			if !overlap {
				collect(j)
			} else {
				pending[j] = true
			}
			if cfg.EvalEvery > 0 && (t+1)%cfg.EvalEvery == 0 {
				rc.recordPoint(t+1, p.Now(), rc.workers[j].lastLoss)
			}
		}
		for j := 0; j < g; j++ {
			if pending[j] {
				collect(j)
			}
			topo.Send(p, master, j, tagRRCenter, rrCmd{stop: true}, 0)
		}
	})

	end := env.Run()
	return rc.finish(name, end), nil
}
