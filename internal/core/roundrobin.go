package core

import (
	"fmt"

	"scaledl/internal/sim"
)

// OriginalEASGDSerial is Algorithm 1 of the paper with no overlap (the
// "Original EASGD*" row of Table 3): per iteration the master interacts
// with exactly one GPU, and every step — data copy, center-weight download,
// forward/backward, local-weight upload, both updates — sits on the
// master's critical path. Communication is ordered by rank (round-robin),
// so only one GPU computes at a time.
func OriginalEASGDSerial(cfg Config) (Result, error) {
	return runRoundRobin(cfg, "original-easgd*", false)
}

// OriginalEASGD is Algorithm 1 as deployed (the "Original EASGD" row):
// identical round-robin schedule, but the j-th GPU's forward/backward
// overlaps with the master's parameter exchange for neighbouring
// iterations, hiding most of the compute behind communication. It remains
// Θ(P) per sweep, the inefficiency the paper's Sync EASGD removes.
func OriginalEASGD(cfg Config) (Result, error) {
	return runRoundRobin(cfg, "original-easgd", true)
}

// rrDone is the completion message a worker posts after its local step.
type rrDone struct {
	weights []float32 // snapshot of W_j after backprop, before Eq. (1)
	loss    float64
}

func runRoundRobin(cfg Config, name string, overlap bool) (Result, error) {
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg // validated copy with defaults applied
	env := sim.NewEnv()
	defer env.Close()

	g := cfg.Workers
	// Per-worker command and completion queues.
	cmd := make([]*sim.Queue, g)
	done := make([]*sim.Queue, g)
	for j := 0; j < g; j++ {
		cmd[j] = sim.NewQueue(env, fmt.Sprintf("cmd%d", j))
		done[j] = sim.NewQueue(env, fmt.Sprintf("done%d", j))
	}

	// Workers: wait for a center-weight copy, run one real minibatch
	// forward/backward, post the pre-update weights, then apply Eq. (1)
	// locally. Worker time runs concurrently with the master's pipeline,
	// and in the overlapped schedule several workers' compute windows
	// coincide — their gradient math genuinely overlaps on the par pool
	// while each simulated process waits out its compute delay.
	for j := 0; j < g; j++ {
		w := rc.workers[j]
		dq, cq := done[j], cmd[j]
		env.Spawn(fmt.Sprintf("gpu%d", j), func(p *sim.Proc) {
			for {
				m := p.Recv(cq)
				center, ok := m.([]float32)
				if !ok {
					return // stop sentinel
				}
				join := w.beginGradient()
				p.Delay(w.computeTime)
				loss := join()
				snap := append([]float32(nil), w.net.Params...)
				dq.Send(rrDone{weights: snap, loss: loss})
				w.elasticLocal(cfg.LR, cfg.Rho, center)
				p.Delay(rc.workerUpdate)
			}
		})
	}

	// Master: the round-robin loop of Algorithm 1. With overlap enabled the
	// completion of worker j is collected just before j's next turn, G
	// iterations later, so its compute hides behind the other workers'
	// parameter exchanges.
	pending := make([]bool, g)
	env.Spawn("master", func(p *sim.Proc) {
		collect := func(j int) {
			t0 := p.Now()
			m := p.Recv(done[j]).(rrDone)
			rc.bd.Add(CatForwardBackward, p.Now()-t0) // exposed compute = wait time
			// Upload W_j to the CPU (line 12).
			p.Delay(rc.hostXfer)
			rc.bd.Add(CatCPUGPUParam, rc.hostXfer)
			// Line 14: W̄ ← W̄ + ηρ(W_j − W̄) with the pre-update W_j.
			centerElasticUpdate(rc.center, m.weights, rc.center, cfg.LR, cfg.Rho)
			p.Delay(rc.masterUpdate)
			rc.bd.Add(CatCPUUpdate, rc.masterUpdate)
			rc.updates++
			pending[j] = false
		}
		for t := 0; t < cfg.Iterations && !rc.stopped; t++ {
			j := t % g
			if pending[j] {
				collect(j)
			}
			// Lines 8-9: pick b samples, async copy to GPU j.
			p.Delay(rc.dataXfer)
			rc.bd.Add(CatCPUGPUData, rc.dataXfer)
			// Line 10: send W̄ down.
			p.Delay(rc.hostXfer)
			rc.bd.Add(CatCPUGPUParam, rc.hostXfer)
			cmd[j].Send(append([]float32(nil), rc.center...))
			rc.samples += int64(cfg.Batch)
			if !overlap {
				collect(j)
			} else {
				pending[j] = true
			}
			if cfg.EvalEvery > 0 && (t+1)%cfg.EvalEvery == 0 {
				rc.recordPoint(t+1, p.Now(), rc.workers[j].lastLoss)
			}
		}
		for j := 0; j < g; j++ {
			if pending[j] {
				collect(j)
			}
			cmd[j].Send(nil) // stop
		}
	})

	end := env.Run()
	return rc.finish(name, end), nil
}
