package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"scaledl/internal/comm"
	"scaledl/internal/data"
	"scaledl/internal/nn"
)

// sameMath asserts two runs produced bit-identical training mathematics:
// final loss/accuracy, sample counts and the whole probe trajectory
// (ignoring the time axis, which overlap legitimately changes).
func sameMath(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.FinalLoss != b.FinalLoss || a.FinalAcc != b.FinalAcc || a.Samples != b.Samples {
		t.Errorf("%s: math differs: loss %v vs %v, acc %v vs %v, samples %d vs %d",
			label, a.FinalLoss, b.FinalLoss, a.FinalAcc, b.FinalAcc, a.Samples, b.Samples)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths differ: %d vs %d", label, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i].Loss != b.Curve[i].Loss || a.Curve[i].TestAcc != b.Curve[i].TestAcc {
			t.Errorf("%s: curve point %d differs: %+v vs %+v", label, i, a.Curve[i], b.Curve[i])
		}
	}
}

// The acceptance criterion of the streaming refactor: with Overlap on,
// SyncSGD's simulated step time at a paper-scale (compute-dominated,
// LeNet-regime) configuration is measurably below compute + full allreduce,
// while staying at least max(compute-side busy time, full allreduce) — the
// overlap is emergent from the bucket pipeline, not asserted — and all
// gradient math is bit-identical to the non-overlapped path.
func TestOverlapEmergentStepTime(t *testing.T) {
	if testing.Short() {
		t.Skip("trains LeNet for real")
	}
	// LeNet at batch 32 is the paper's MNIST operating point: 1.72 MB of
	// parameters make the allreduce bandwidth-dominated (its wire time
	// dwarfs the per-round α), and conv compute dominates the step.
	iters := 8
	mk := func(overlap bool, bucketBytes int64) Result {
		spec := data.Spec{Name: "mnistish", Channels: 1, Height: 28, Width: 28, Classes: 10}
		train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 256, TestN: 64, Seed: 5})
		train.Normalize()
		test.Normalize()
		cfg := Config{
			Def:         nn.LeNet(nn.Shape{C: 1, H: 28, W: 28}, 10),
			Train:       train,
			Test:        test,
			Workers:     4,
			Batch:       32,
			LR:          0.01,
			Iterations:  iters,
			Seed:        3,
			Platform:    DefaultGPUPlatform(true),
			EvalEvery:   4,
			Overlap:     overlap,
			BucketBytes: bucketBytes,
		}
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := mk(false, 0)
	on := mk(true, 256<<10) // 256 KB buckets: the big dense block streams early

	sameMath(t, "overlap on vs off", on, off)

	fi := float64(iters)
	// Per-iteration decomposition of the monolithic run: busy is the
	// compute-side critical path (data copy + forward/backward + update),
	// allreduce its fully exposed collective.
	busy := (off.Breakdown.Times[CatCPUGPUData] + off.Breakdown.Times[CatForwardBackward] +
		off.Breakdown.Times[CatGPUUpdate]) / fi
	allreduce := off.Breakdown.Times[CatCPUGPUParam] / fi
	stepOff := off.SimTime / fi
	stepOn := on.SimTime / fi
	if allreduce >= busy {
		t.Fatalf("config not compute-dominated (allreduce %v >= busy %v); not the paper's regime", allreduce, busy)
	}
	if stepOn >= stepOff {
		t.Errorf("overlap did not help: step %v vs monolithic %v", stepOn, stepOff)
	}
	// Measurably below compute + full allreduce…
	if stepOn > busy+0.5*allreduce {
		t.Errorf("step %v hides less than half the allreduce (busy %v, allreduce %v)", stepOn, busy, allreduce)
	}
	// …but no cheating: the step can never undercut the busy path or the
	// full allreduce.
	if lower := math.Max(busy, allreduce); stepOn < lower*(1-1e-9) {
		t.Errorf("step %v below max(busy %v, allreduce %v) — overlap created time out of nothing", stepOn, busy, allreduce)
	}
	// The hidden share is reported, and categories still sum to wall.
	if on.Breakdown.HiddenComm <= 0 {
		t.Error("overlapped run reports no hidden communication")
	}
	if off.Breakdown.HiddenComm != 0 {
		t.Errorf("monolithic run reports hidden communication %v", off.Breakdown.HiddenComm)
	}
	t.Logf("step: off %.6f on %.6f (busy %.6f, allreduce %.6f, hidden/iter %.6f)",
		stepOff, stepOn, busy, allreduce, on.Breakdown.HiddenComm/fi)
}

// Degenerate bucket sizes through the full training stack: smaller than one
// layer, larger than the whole model, and exactly on a layer boundary all
// produce bit-identical math to the monolithic path, for every schedule.
func TestOverlapDegenerateBucketSizes(t *testing.T) {
	ref := func(sched comm.Schedule) Result {
		cfg := testConfig(t, 15, true)
		cfg.Schedule = sched
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// TinyCNN(12×12): layer sizes 80, 1168, 1444 params ⇒ 320, 4672, 5776
	// bytes. 5776 is exactly the last layer's boundary.
	for _, sched := range []comm.Schedule{comm.ScheduleTree, comm.ScheduleRing, comm.ScheduleChain} {
		base := ref(sched)
		for _, bucketBytes := range []int64{4, 1 << 30, 5776, 4096} {
			cfg := testConfig(t, 15, true)
			cfg.Schedule = sched
			cfg.Overlap = true
			cfg.BucketBytes = bucketBytes
			res, err := SyncSGD(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameMath(t, fmt.Sprintf("%v bucket=%d", sched, bucketBytes), res, base)
			if res.SimTime <= 0 {
				t.Errorf("%v bucket=%d: no simulated time", sched, bucketBytes)
			}
			// No time assertion here: per-layer buckets on this
			// latency-dominated toy model honestly pay more collective α
			// than one packed message — the regime where bucketing wins is
			// pinned by TestOverlapEmergentStepTime.
		}
	}
}

// Every streamed algorithm family keeps its mathematics bit-identical with
// Overlap on, and none gets slower.
func TestOverlapInvariantMathAcrossFamilies(t *testing.T) {
	for _, name := range []string{"sync-sgd", "async-sgd", "hogwild-sgd", "original-easgd", "original-easgd*", "sync-easgd3"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(overlap bool) Result {
				cfg := testConfig(t, 30, true)
				cfg.EvalEvery = 10
				cfg.Overlap = overlap
				cfg.BucketBytes = 4096
				if name == "original-easgd" || name == "original-easgd*" {
					cfg.Platform = DefaultGPUPlatform(false)
				}
				res, err := Methods[name](cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			off, on := run(false), run(true)
			sameMath(t, name, on, off)
			// The coordinated families may not get slower even on this
			// latency-dominated toy model (round-robin pulls pay one extra α
			// per bucket on the master's critical path — allow that margin).
			// The async parameter-server families trade per-bucket latency
			// for hidden wire time, which only pays off when there is wire
			// time to hide — TestAsyncStreamedUploadOverlaps pins their win
			// in that regime.
			switch name {
			case "async-sgd", "hogwild-sgd":
			default:
				if on.SimTime > off.SimTime*1.01 {
					t.Errorf("%s: overlapped %v slower than monolithic %v", name, on.SimTime, off.SimTime)
				}
			}
		})
	}
}

// The async SGD-style streamed upload wins where it should: with a
// per-layer (unpacked) plan and a compute-heavy model, the per-bucket
// messages hide under the tail of backprop, beating the monolithic
// ship-after-compute by more than the request latency they add.
func TestAsyncStreamedUploadOverlaps(t *testing.T) {
	run := func(overlap bool) Result {
		cfg := realisticConfig(t, 40, false) // per-layer pageable plan
		cfg.Overlap = overlap
		cfg.BucketBytes = 8 << 10 // several buckets per model, so layers stream
		res, err := AsyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	sameMath(t, "async-sgd streamed", on, off)
	if on.SimTime >= off.SimTime {
		t.Errorf("streamed upload did not overlap: %v vs monolithic %v", on.SimTime, off.SimTime)
	}
}

// KNL cluster: the streamed center broadcast hides under compute, with
// identical math and reported hidden communication.
func TestKNLClusterOverlap(t *testing.T) {
	run := func(overlap bool) Result {
		cfg := testConfig(t, 20, true)
		cfg.EvalEvery = 10
		cfg.Overlap = overlap
		cfg.BucketBytes = 4096
		res, err := KNLClusterEASGD(KNLClusterConfig{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	sameMath(t, "knl-cluster", on, off)
	if on.SimTime >= off.SimTime {
		t.Errorf("streamed broadcast did not hide: %v vs %v", on.SimTime, off.SimTime)
	}
	if on.Breakdown.HiddenComm <= 0 {
		t.Error("no hidden communication reported")
	}
}

// The satellite accounting invariant: with overlap on, only exposed comm is
// charged to the categories, HiddenComm rides separately, and the category
// sum still equals the simulated wall time for every coordinated algorithm.
func TestOverlapBreakdownSumsToWall(t *testing.T) {
	cases := []struct {
		name string
		run  func(cfg Config) (Result, error)
	}{
		{"sync-sgd", SyncSGD},
		{"sync-sgd-ring", func(cfg Config) (Result, error) {
			cfg.Schedule = comm.ScheduleRing
			return SyncSGD(cfg)
		}},
		{"sync-easgd3", SyncEASGD3},
		{"original-easgd*", OriginalEASGDSerial},
		{"original-easgd", OriginalEASGD},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := testConfig(t, 20, true)
			cfg.Overlap = true
			cfg.BucketBytes = 4096
			if c.name == "original-easgd" || c.name == "original-easgd*" {
				cfg.Platform = DefaultGPUPlatform(false)
				cfg.Iterations = 80
			}
			res, err := c.run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum := res.Breakdown.Total()
			if rel := math.Abs(sum-res.SimTime) / res.SimTime; rel > 0.02 {
				t.Errorf("%s: breakdown sum %.6f vs wall %.6f (rel %.4f)", c.name, sum, res.SimTime, rel)
			}
		})
	}
}

// Overlapped runs stay deterministic: repeated runs are bit-identical
// (Result-deep), like every other algorithm configuration.
func TestOverlapDeterministicAcrossRuns(t *testing.T) {
	mk := func() Result {
		cfg := testConfig(t, 15, true)
		cfg.Overlap = true
		cfg.BucketBytes = 4096
		cfg.EvalEvery = 5
		res, err := SyncSGD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated overlapped runs differ:\n%+v\n%+v", a, b)
	}
}

// Overlapped runs are bit-identical between pooled and serial execution —
// the streaming forks hand no new state to the par pool.
func TestOverlapParallelBitIdenticalToSerial(t *testing.T) {
	for _, name := range []string{"sync-sgd", "sync-easgd3", "async-sgd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mk := func() (Result, error) {
				cfg := testConfig(t, 15, true)
				cfg.Overlap = true
				cfg.BucketBytes = 4096
				cfg.EvalEvery = 5
				return Methods[name](cfg)
			}
			serial, parallel := runSerialAndParallel(t, mk)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("parallel overlapped result differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}
