package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
	"scaledl/internal/parse"
)

// This file is the hybrid communication selector — Poseidon's observation
// threaded through the run configuration. A dense layer's gradient is the
// outer product dW = dYᵀ·X, so it can travel as sufficient factors
// (O(B·(F+D)) wire per party, comm.FactorAllGather) instead of the dense
// F·D+F allreduce payload; a conv layer's gradient has no such form and
// always rides the allreduce. Which transport wins per layer depends on the
// shape: fc layers (F, D in the thousands, B in the tens) favor factors,
// while small dense layers — and every layer once B·(F+D) outgrows F·D —
// favor the dense collective. Config.CommMode picks the policy: dense
// (everything allreduces, the default), sfb (every factorable layer ships
// factors), or hybrid (per-layer winner of the analytic α-β cost model
// below, the Poseidon paper's hybrid communication). The choice changes
// only where bytes move: the reconstructed gradients are bit-identical to
// the dense allreduce for every schedule, flat or hierarchical.

// CommMode selects the gradient transport of the data-parallel allreduce
// methods (sync-sgd, hier-sync-sgd); methods that do not allreduce
// gradients ignore it.
type CommMode int

const (
	// CommDense allreduces every layer's dense gradient (the default).
	CommDense CommMode = iota
	// CommSFB ships sufficient factors for every factorable (dense) layer
	// and allreduces the rest.
	CommSFB
	// CommHybrid picks per layer: factors where the analytic cost model
	// says they are cheaper, the dense allreduce elsewhere.
	CommHybrid
)

// String names the mode as ParseCommMode accepts it.
func (m CommMode) String() string {
	switch m {
	case CommDense:
		return "dense"
	case CommSFB:
		return "sfb"
	case CommHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("CommMode(%d)", int(m))
	}
}

// CommModes lists every mode name accepted by ParseCommMode.
func CommModes() []string { return []string{"dense", "sfb", "hybrid"} }

// ParseCommMode converts a name ("dense", "sfb", "hybrid") to a CommMode;
// the empty string means dense.
func ParseCommMode(name string) (CommMode, error) {
	switch name {
	case "", "dense":
		return CommDense, nil
	case "sfb":
		return CommSFB, nil
	case "hybrid":
		return CommHybrid, nil
	default:
		return 0, parse.Errorf("comm mode", name, CommModes())
	}
}

// LayerCommChoice is the selector's verdict for one parameter layer: the
// analytic wire bytes and times of both transports and the transport the
// run will use. Seg indexes the communicator plan segment (parameter
// layers in order), Layer the nn layer.
type LayerCommChoice struct {
	Seg   int
	Layer int
	Kind  string // layer type name, for display
	Elems int    // dense gradient elements (F·D+F for a factorable layer)

	// Factor shape; zero for layers with no factor form.
	B, F, D int

	SFBOK  bool // the layer can ship factors at all
	UseSFB bool // the transport this run uses

	DenseBytes int64   // total allreduce wire, 2(P−1)·4·Elems
	SFBBytes   int64   // total factor-allgather wire, P(P−1)·4·B(F+D)
	DenseTime  float64 // analytic allreduce seconds on the parameter link
	SFBTime    float64 // analytic factor allgather + reconstruction seconds
	ReconTime  float64 // reconstruction compute share of SFBTime
}

// String renders the choice as one table row for verbose selector output.
func (c LayerCommChoice) String() string {
	if !c.SFBOK {
		return fmt.Sprintf("layer %2d %-12s %9d elems  dense (no factor form)  %8.3fms %8dB",
			c.Layer, c.Kind, c.Elems, c.DenseTime*1e3, c.DenseBytes)
	}
	mode := "dense"
	if c.UseSFB {
		mode = "sfb"
	}
	return fmt.Sprintf("layer %2d %-12s %9d elems  %-5s  dense %8.3fms %10dB | sfb %8.3fms %10dB (recon %6.3fms)",
		c.Layer, c.Kind, c.Elems, mode, c.DenseTime*1e3, c.DenseBytes, c.SFBTime*1e3, c.SFBBytes, c.ReconTime*1e3)
}

// HybridSelector holds the per-layer transport decisions of one run
// configuration, in plan-segment order.
type HybridSelector struct {
	Mode    CommMode
	Workers int
	Choices []LayerCommChoice
}

// NumSFB counts the layers routed to the factor transport.
func (hs *HybridSelector) NumSFB() int {
	n := 0
	for _, c := range hs.Choices {
		if c.UseSFB {
			n++
		}
	}
	return n
}

// Skip returns the per-plan-segment mask of SFB layers — the segments the
// bucketed allreduce stream must not carry (comm.NewBucketizerMasked).
func (hs *HybridSelector) Skip() []bool {
	skip := make([]bool, len(hs.Choices))
	for i, c := range hs.Choices {
		skip[i] = c.UseSFB
	}
	return skip
}

// SelectCommModes runs the hybrid selector for a configuration without
// running the training: per parameter layer, the analytic cost of the dense
// allreduce versus the factor allgather plus reconstruction, and the
// transport Config.CommMode routes it to. This is the cost-model entry
// point the CLI's verbose mode and the hybrid harness experiment print.
func SelectCommModes(cfg Config) (*HybridSelector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := cfg.Def.Build(0)
	return selectCommModes(cfg, net.Layers), nil
}

// selectCommModes is the engine behind SelectCommModes, for callers that
// already validated cfg and built the model. The α-β link of the cost model
// is the link the run's gradient collective actually rides: the host
// parameter link for flat runs, the fabric for hierarchical ones (where the
// inter-node hop dominates); the schedule is likewise the run's flat or
// inter-node schedule.
func selectCommModes(cfg Config, layers []nn.Layer) *HybridSelector {
	link := cfg.Platform.link("host", cfg.Platform.HostParam)
	sched := cfg.Schedule
	if cfg.Nodes > 0 {
		fabric := cfg.Platform.Fabric
		if fabric == nil {
			fabric = hw.MellanoxFDR
		}
		link = cfg.Platform.link("fabric", fabric)
		sched = cfg.HierSchedule
	}
	p := cfg.Workers
	hs := &HybridSelector{Mode: cfg.CommMode, Workers: p}
	for li, l := range layers {
		if l.ParamCount() == 0 {
			continue
		}
		c := LayerCommChoice{
			Seg:   len(hs.Choices),
			Layer: li,
			Kind:  fmt.Sprintf("%T", l),
			Elems: l.ParamCount(),
		}
		if len(c.Kind) > 4 && c.Kind[:4] == "*nn." {
			c.Kind = c.Kind[4:]
		}
		c.DenseBytes = comm.DenseAllReduceBytes(p, c.Elems)
		c.DenseTime = denseAllReduceTime(sched, link, int64(c.Elems)*4, p)
		if fl, ok := l.(nn.FactorLayer); ok {
			c.SFBOK = true
			c.F, c.D = fl.FactorShape()
			c.B = cfg.Batch
			entry := c.B * (c.F + c.D)
			c.SFBBytes = comm.FactorAllGatherBytes(p, entry)
			c.ReconTime = cfg.Platform.Worker.ComputeTime(
				comm.FactorReconFLOPsFor(p, c.B, c.F, c.D), factorReconBytes(p, c.B, c.F, c.D))
			c.SFBTime = comm.AnalyticFactorAllGatherTime(sched, link, int64(entry)*4, p) + c.ReconTime
			switch cfg.CommMode {
			case CommSFB:
				c.UseSFB = true
			case CommHybrid:
				c.UseSFB = c.SFBTime < c.DenseTime
			}
		}
		hs.Choices = append(hs.Choices, c)
	}
	return hs
}

// hybridSeg is one SFB-routed plan segment at run time: its packed element
// range, the nn layer whose factor views feed the collective, and its
// reconstruction compute charge.
type hybridSeg struct {
	seg, layer int // plan segment / nn layer index
	lo, hi     int // element range within the packed model vector
	reconTime  float64
}

// elemRange is a contiguous [lo,hi) element run of non-SFB segments — one
// dense allreduce unit of the hybrid monolithic path.
type elemRange struct{ lo, hi int }

// hybridRun realizes the selector's decisions against one communicator
// plan: the SFB segments (ascending), the dense runs between them, the skip
// mask for the bucketizer, and per-worker reusable factor/scratch buffers.
type hybridRun struct {
	segs      []hybridSeg
	denseRuns []elemRange
	skip      []bool
	reconTime float64     // per-iteration reconstruction compute, all segs
	bySeg     map[int]int // plan segment -> ordinal in segs

	outs    [][][]comm.Factors // [worker][sfb ordinal] gathered lists
	scratch [][]float32        // [worker] reconstruction scratch
}

// hybridRun builds the run-time hybrid layout, or nil when every layer
// rides the dense allreduce (dense mode, or a selector that picked no SFB
// layer). The plan must be the per-layer parameter plan — guaranteed by
// Validate, which rejects CommMode≠dense with Compression (whose packed
// single-residual plan has no per-layer segments).
func (rc *runContext) hybridRun(plan comm.Plan) *hybridRun {
	sel := rc.commSel
	if sel == nil || sel.NumSFB() == 0 || len(plan.LayerBytes) != len(sel.Choices) {
		return nil
	}
	offs := make([]int, len(plan.LayerBytes)+1)
	for i, b := range plan.LayerBytes {
		offs[i+1] = offs[i] + int(b/4)
	}
	hy := &hybridRun{skip: sel.Skip(), bySeg: make(map[int]int)}
	runLo := -1
	for seg, c := range sel.Choices {
		if c.UseSFB {
			if runLo >= 0 {
				hy.denseRuns = append(hy.denseRuns, elemRange{offs[runLo], offs[seg]})
				runLo = -1
			}
			hy.bySeg[seg] = len(hy.segs)
			hy.segs = append(hy.segs, hybridSeg{
				seg: seg, layer: c.Layer, lo: offs[seg], hi: offs[seg+1], reconTime: c.ReconTime,
			})
			hy.reconTime += c.ReconTime
			continue
		}
		if runLo < 0 {
			runLo = seg
		}
	}
	if runLo >= 0 {
		hy.denseRuns = append(hy.denseRuns, elemRange{offs[runLo], offs[len(sel.Choices)]})
	}
	hy.outs = make([][][]comm.Factors, rc.cfg.Workers)
	hy.scratch = make([][]float32, rc.cfg.Workers)
	for i := range hy.outs {
		hy.outs[i] = make([][]comm.Factors, len(hy.segs))
	}
	return hy
}

// denseAllReduceTime is the schedule's closed-form allreduce prediction,
// falling back to the binomial tree for the pipelined chain (whose chunk
// overlap has no closed form — the selector only needs a ranking oracle).
func denseAllReduceTime(s comm.Schedule, l comm.Transferer, bytes int64, p int) float64 {
	if t, ok := s.AnalyticAllReduceTime(l, bytes, p); ok {
		return t
	}
	t, _ := comm.ScheduleTree.AnalyticAllReduceTime(l, bytes, p)
	return t
}

// factorReconBytes is the reconstruction's working-set touch: read each
// party's factor pair, write the scratch gradient and accumulate into dst.
func factorReconBytes(p, b, f, d int) int64 {
	return int64(p) * (int64(b)*(int64(f)+int64(d)) + 2*(int64(f)*int64(d)+int64(f))) * 4
}
