package core

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/sim"
)

// This file is the hierarchical (multi-node) configuration path: the two
// paper algorithms most worth scaling past one machine, run over
// Config.Nodes × Config.GPUsPerNode workers on a composed PCIe-trees-under-
// fabric topology (Platform.hierTopology / comm.NewMultiLevel).
//
//	hier-sync-sgd    — synchronous data parallelism whose gradient
//	  allreduce is the two-level HierAllReduce (intra-node reduce →
//	  inter-node allreduce among leaders → intra-node broadcast). The
//	  worker loop is *shared* with the flat SyncSGD (runSyncSGDWorkers
//	  drives a gradAllReducer), and the hierarchical collective is
//	  bit-identical to ReduceSum, so the training mathematics is exactly
//	  the flat run's — including the Overlap/BucketBytes streaming
//	  pipeline, whose per-bucket Range collectives stream hierarchically
//	  for free.
//	hier-sync-easgd  — node-group elastic averaging: every worker runs
//	  local SGD; every TauLocal steps a node's workers sync with their
//	  group center over the intra-node links (broadcast + reduce +
//	  elastic updates — the Sync EASGD round, scoped to one node); every
//	  TauGlobal steps the group centers sync with a replicated global
//	  center over the fabric (leader allreduce). This is the two-level
//	  τ structure Poseidon-style hybrid communication and the EASGD
//	  paper's communication-period analysis point at: the fabric sees
//	  1/TauGlobal of the traffic a flat EASGD would put on it.

// hierSetup builds the run's composed topology and two-level communicator;
// hostStaged selects the intra-node GPU↔GPU transfer mode exactly as in
// the flat algorithms.
func hierSetup(rc *runContext, env *sim.Env, plan comm.Plan, wire comm.WireFunc, hostStaged bool) (*comm.MultiLevel, *comm.HierCommunicator) {
	cfg := rc.cfg
	ml := cfg.Platform.hierTopology(env, cfg.Nodes, cfg.GPUsPerNode, hostStaged)
	locals := make([]int, cfg.GPUsPerNode)
	for i := range locals {
		locals[i] = i
	}
	hc := comm.NewHierCommunicator(ml.Topology(), comm.HierConfig{
		Groups: ml.Groups(locals...),
		Plan:   plan,
		Intra:  cfg.Schedule,
		Inter:  cfg.HierSchedule,
		Wire:   wire,
	})
	return ml, hc
}

// checkHier rejects configs that did not select a hierarchical cluster.
func checkHier(cfg Config, method string) error {
	if cfg.Nodes < 1 || cfg.GPUsPerNode < 1 {
		return fmt.Errorf("core: %s needs Nodes and GPUsPerNode >= 1 (got %d x %d)", method, cfg.Nodes, cfg.GPUsPerNode)
	}
	return nil
}

// HierSyncSGD is synchronous data-parallel SGD over Nodes × GPUsPerNode
// workers with the two-level hierarchical allreduce. Mathematics is
// bit-identical to SyncSGD at the same worker count, schedule pair and
// bucketing notwithstanding — only where the bytes travel changes.
func HierSyncSGD(cfg Config) (Result, error) {
	if err := checkHier(cfg, "hier-sync-sgd"); err != nil {
		return Result{}, err
	}
	// Semantic loss/corruption and fail-continue ride the same guarded
	// collective path as the flat run; only the flat-topology-keyed knobs
	// are out of scope here.
	if err := cfg.Faults.requireFlatLinks("hier-sync-sgd"); err != nil {
		return Result{}, err
	}
	if cfg.Faults.PartialK > 0 {
		return Result{}, fmt.Errorf("core: hier-sync-sgd does not support partial aggregation (PartialK); use sync-sgd")
	}
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg
	env := sim.NewEnv()
	defer env.Close()

	plan, wire, quantizers := rc.syncSGDWire()
	ml, hc := hierSetup(rc, env, plan, wire, true)
	topo := ml.Topology()
	rc.installChaos(topo, nil) // BadLinks rejected above; no rank→node map needed
	eps := make([]gradAllReducer, cfg.Workers)
	for i := range eps {
		eps[i] = hc.Endpoint(i)
	}
	rootNode := ml.GlobalID(0, 0)
	end := rc.runSyncSGDWorkers(env, plan, eps, quantizers, topo.BytesMoved,
		func() float64 { return topo.RetryWait(rootNode) })
	return rc.finish("hier-sync-sgd", end), nil
}

// elasticPull applies W ← W − a·(W − C), the elastic attraction of
// Equation (1) with the gradient term already applied by the local step.
func elasticPull(params, center []float32, a float32) {
	for i := range params {
		params[i] -= a * (params[i] - center[i])
	}
}

// HierSyncEASGD is the node-group EASGD of the hierarchical path: local
// SGD between syncs, intra-node elastic group averaging every TauLocal
// steps, inter-node elastic center averaging among group leaders every
// TauGlobal steps. The reported center is the replicated global center
// (refreshed from group 0's view between global syncs, so accuracy probes
// track training between fabric rounds).
func HierSyncEASGD(cfg Config) (Result, error) {
	if err := checkHier(cfg, "hier-sync-easgd"); err != nil {
		return Result{}, err
	}
	if err := cfg.Faults.requireNoMembershipChange("hier-sync-easgd"); err != nil {
		return Result{}, err
	}
	if err := cfg.Faults.requireFlatLinks("hier-sync-easgd"); err != nil {
		return Result{}, err
	}
	rc, err := newRunContext(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = rc.cfg
	env := sim.NewEnv()
	defer env.Close()

	// Group syncs ride peer DMA inside each node (the EASGD2/3 transfer
	// mode); center syncs ride the fabric between leaders.
	ml, hc := hierSetup(rc, env, rc.plan, nil, false)
	topo := ml.Topology()
	rc.installChaos(topo, nil)
	n := len(rc.center)
	nodes, perNode := cfg.Nodes, cfg.GPUsPerNode

	// Per-group leader state: the group center C_g and the replicated
	// global center W̄ (identical at every leader: the leader allreduce is
	// bit-identical across ranks, so the replicas never drift).
	groupCenter := make([][]float32, nodes)
	globalCenter := make([][]float32, nodes)
	groupSum := make([][]float32, nodes)
	interBuf := make([][]float32, nodes)
	for g := 0; g < nodes; g++ {
		groupCenter[g] = append([]float32(nil), rc.center...)
		globalCenter[g] = append([]float32(nil), rc.center...)
		groupSum[g] = make([]float32, n)
		interBuf[g] = make([]float32, n)
	}
	centerBufs := make([][]float32, cfg.Workers)
	for i := range centerBufs {
		centerBufs[i] = make([]float32, n)
	}
	losses := make([]float64, cfg.Workers)
	bar := sim.NewBarrier(env, "iteration", cfg.Workers)
	// evalBar synchronizes eval steps before rank 0 reads the loss slice:
	// without it, workers in other node groups may not have committed this
	// step's loss yet (no collective orders them relative to rank 0 on
	// non-sync steps). Free in simulated time, joined only on eval steps —
	// uniformly across workers, so the join pattern stays deterministic.
	evalBar := sim.NewBarrier(env, "eval", cfg.Workers)
	a := cfg.LR * cfg.Rho

	for r := 0; r < cfg.Workers; r++ {
		r := r
		w := rc.workers[r]
		g, local := hc.GroupOf(r), hc.LocalOf(r)
		iep := hc.Intra(g).Endpoint(local)
		const leaderLocal = 0
		leader := local == leaderLocal
		env.Spawn(fmt.Sprintf("node%d.gpu%d", g, local), func(p *sim.Proc) {
			for t := 0; t < cfg.Iterations; t++ {
				s := t + 1
				rc.injectFaults(p, r, s)
				// Local step: minibatch copy, gradient, plain SGD.
				p.Delay(rc.dataXfer)
				join := w.beginGradient()
				ct := rc.computeDelay(r, s)
				p.Delay(ct)
				losses[r] = join()
				w.sgdLocal(cfg.LR)
				p.Delay(rc.workerUpdate)
				if r == 0 {
					rc.bd.Add(CatCPUGPUData, rc.dataXfer)
					rc.bd.Add(CatForwardBackward, ct)
					rc.bd.Add(CatGPUUpdate, rc.workerUpdate)
				}

				if s%cfg.TauLocal == 0 {
					// Group sync: broadcast C_g, reduce ΣW_j to the leader,
					// elastic pulls on workers and the group center — the
					// Sync EASGD round scoped to one node's PCIe tree.
					base := 2 * t
					tC := p.Now()
					if leader {
						copy(centerBufs[r], groupCenter[g])
					}
					iep.Broadcast(p, base, leaderLocal, centerBufs[r])
					if leader {
						copy(groupSum[g], w.net.Params)
						iep.Reduce(p, base+1, leaderLocal, groupSum[g])
					} else {
						iep.Reduce(p, base+1, leaderLocal, w.net.Params)
					}
					if r == 0 {
						rc.bd.Add(CatGPUGPUParam, p.Now()-tC)
					}
					elasticPull(w.net.Params, centerBufs[r], a)
					p.Delay(rc.workerUpdate)
					if leader {
						// C_g ← C_g + ηρ(ΣW − K·C_g), Equation (2) over the group.
						kf := float32(perNode)
						for k := range groupCenter[g] {
							groupCenter[g][k] += a * (groupSum[g][k] - kf*groupCenter[g][k])
						}
					}
					if r == 0 {
						rc.bd.Add(CatGPUUpdate, rc.workerUpdate)
						copy(rc.center, groupCenter[0])
					}
				}

				if s%cfg.TauGlobal == 0 && leader {
					// Center sync: leaders allreduce ΣC_g over the fabric
					// and every leader applies the identical global update —
					// the replicated center needs no extra broadcast.
					tF := p.Now()
					preInter := topo.BytesMoved()
					copy(interBuf[g], groupCenter[g])
					hc.Inter().Endpoint(g).AllReduce(p, t, interBuf[g])
					if r == 0 {
						// The fabric column: inter-node parameter time AND
						// traffic are charged to cpu-gpu para in hierarchical
						// runs. The byte sample around rank 0's collective
						// covers the whole fabric round: the workers are in
						// lockstep (identical compute times), so no intra
						// traffic is in flight during it.
						rc.bd.Add(CatCPUGPUParam, p.Now()-tF)
						rc.bd.AddBytes(CatCPUGPUParam, topo.BytesMoved()-preInter)
					}
					nf := float32(nodes)
					for k := range globalCenter[g] {
						globalCenter[g][k] += a * (interBuf[g][k] - nf*globalCenter[g][k])
					}
					elasticPull(groupCenter[g], globalCenter[g], a)
					p.Delay(rc.masterUpdate)
					if r == 0 {
						rc.bd.Add(CatCPUUpdate, rc.masterUpdate)
						copy(rc.center, globalCenter[0])
						rc.updates++
					}
				}

				if cfg.EvalEvery > 0 && s%cfg.EvalEvery == 0 {
					// Every worker has committed this step's loss once the
					// eval barrier releases.
					p.Wait(evalBar)
				}
				if r == 0 {
					rc.samples += int64(cfg.Batch * cfg.Workers)
					if cfg.EvalEvery > 0 && s%cfg.EvalEvery == 0 {
						var roundLoss float64
						for _, l := range losses {
							roundLoss += l
						}
						roundLoss /= float64(cfg.Workers)
						rc.recordPoint(s, p.Now(), roundLoss)
					}
				}
				tB := p.Now()
				p.Wait(bar)
				if r == 0 {
					// Rank 0 (group 0's leader) owns the longest path except
					// when another group's tail drains later; the residual
					// barrier wait is fabric-side communication.
					rc.bd.Add(CatCPUGPUParam, p.Now()-tB)
					rc.bd.AddBytes(CatGPUGPUParam, topo.BytesMoved()-rc.bd.ParamTraffic())
				}
				if rc.stopped {
					return
				}
			}
		})
	}

	end := env.Run()
	return rc.finish("hier-sync-easgd", end), nil
}
