package serve

import (
	"sync"
	"testing"
	"time"

	"scaledl/internal/par"
)

// benchBatcher builds a lightly trained TinyCNN batcher for benchmarking.
func benchBatcher(b *testing.B, cfg BatchConfig) (*Batcher, []float32) {
	m, test := toyModel(b, 5)
	bt, err := NewBatcher(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(bt.Drain)
	return bt, test.Images[:m.InputDim()]
}

// BenchmarkServeSolo measures the sequential request path — one request at
// a time through admission, dispatch, a batch-of-1 forward and the reply —
// at par width 1. Its req/s and allocs/op feed BENCH_serve.json: allocs/op
// is gated exact at 0 (the zero-alloc contract as a benchmark number).
func BenchmarkServeSolo(b *testing.B) {
	par.SetWidth(1)
	defer par.SetWidth(0)
	bt, in := benchBatcher(b, BatchConfig{MaxBatch: 1, MaxDelay: time.Millisecond})
	out := make([]float32, len(bt.batchOut))
	for i := 0; i < 50; i++ { // warm buffers and the free list
		if err := bt.Do(in, out, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Do(in, out, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeCoalesced measures throughput with 16 concurrent senders
// feeding an 8-wide batcher — the coalescing win over Solo is the point of
// the micro-batching design.
func BenchmarkServeCoalesced(b *testing.B) {
	bt, in := benchBatcher(b, BatchConfig{MaxBatch: 8, MaxDelay: 500 * time.Microsecond})
	const senders = 16
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / senders
	for w := 0; w < senders; w++ {
		n := per
		if w == 0 {
			n += b.N % senders
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			out := make([]float32, bt.classes)
			for i := 0; i < n; i++ {
				if err := bt.Do(in, out, time.Time{}); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if st := bt.Stats(); st.Batches > 0 {
		b.ReportMetric(st.MeanBatch, "mean-batch")
	}
}
