package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, []float32) {
	t.Helper()
	m, test := toyModel(t, 30)
	s, err := NewServer(m, Config{Batch: BatchConfig{MaxBatch: 8, MaxDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, test.Images[:m.InputDim()]
}

func postPredict(t *testing.T, url string, input []float32, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(predictRequest{Input: input})
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestPredictEndpoint(t *testing.T) {
	s, ts, input := newTestServer(t)
	resp, body := postPredict(t, ts.URL, input, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Logits) != s.model.Classes() {
		t.Fatalf("got %d logits", len(pr.Logits))
	}
	// The response argmax must agree with the model's own answer.
	want, _ := s.model.Predict(input, 1)
	wi := 0
	for i, v := range want {
		if v > want[wi] {
			wi = i
		}
	}
	if pr.Argmax != wi {
		t.Errorf("argmax %d, model says %d", pr.Argmax, wi)
	}
	for i := range want {
		if pr.Logits[i] != want[i] {
			t.Errorf("logit %d: %v != %v", i, pr.Logits[i], want[i])
		}
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	_, ts, input := newTestServer(t)
	cases := []struct {
		name string
		do   func() (*http.Response, []byte)
	}{
		{"wrong dim", func() (*http.Response, []byte) {
			return postPredict(t, ts.URL, input[:5], nil)
		}},
		{"bad deadline header", func() (*http.Response, []byte) {
			return postPredict(t, ts.URL, input, map[string]string{"X-Deadline-Ms": "soon"})
		}},
		{"bad json", func() (*http.Response, []byte) {
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{")))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp, nil
		}},
	}
	for _, c := range cases {
		resp, _ := c.do()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d, want 405", resp.StatusCode)
	}
}

func TestPredictDeadlineHeader(t *testing.T) {
	_, ts, input := newTestServer(t)
	// A generous deadline succeeds.
	resp, body := postPredict(t, ts.URL, input, map[string]string{"X-Deadline-Ms": "5000"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d: %s", resp.StatusCode, body)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s, ts, input := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz %d %v", resp.StatusCode, h)
	}
	postPredict(t, ts.URL, input, nil)
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Served < 1 || st.Batches < 1 {
		t.Errorf("stats after a served request: %+v", st)
	}

	// Draining flips healthz to 503 and predict to 503.
	s.Drain()
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", resp.StatusCode)
	}
	resp, _ = postPredict(t, ts.URL, input, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining predict status %d, want 503", resp.StatusCode)
	}
}

// Overload over HTTP: requests hitting a full queue get 429 with
// Retry-After, while admitted requests still get real answers. The
// dispatcher is parked inside the first batch (see parkDispatcher) so the
// overload state is pinned rather than raced.
func TestPredictShedsWith429(t *testing.T) {
	m, test := toyModel(t, 1)
	s, err := NewServer(m, Config{
		Batch:      BatchConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueBound: 2},
		RetryAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := parkDispatcher(s.Batcher(), release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	input := test.Images[:m.InputDim()]
	const admitted = 3 // 1 in flight + QueueBound queued
	codes := make([]int, admitted)
	var wg sync.WaitGroup
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postPredict(t, ts.URL, input, nil)
			codes[i] = resp.StatusCode
		}()
	}
	submit(0)
	<-entered // dispatcher is stuck inside request 0's batch
	submit(1)
	submit(2)
	waitQueueDepth(t, s.Batcher(), 2)
	// Queue provably full: every further request is answered 429 at once.
	const floods = 8
	for i := 0; i < floods; i++ {
		resp, body := postPredict(t, ts.URL, input, nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("flood %d with a full queue: status %d (%s), want 429", i, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Errorf("flood %d Retry-After %q, want \"2\"", i, ra)
		}
	}
	close(release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, c)
		}
	}
	if st := s.Batcher().Stats(); st.Shed != floods || st.Served != admitted {
		t.Errorf("stats: %+v, want shed=%d served=%d", st, floods, admitted)
	}
}

// 100 concurrent requests through the full HTTP stack all succeed and all
// match the model's own answers — the serve_quickstart scenario as a test.
func TestHundredConcurrentRequests(t *testing.T) {
	m, _ := toyModel(t, 30)
	// The queue must hold the full burst: all 100 requests are admitted, so
	// every one of them is answered with logits, never shed.
	s, err := NewServer(m, Config{Batch: BatchConfig{MaxBatch: 8, MaxDelay: time.Millisecond, QueueBound: 128}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	dim := m.InputDim()
	const n = 100
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = make([]float32, dim)
		for j := range inputs[i] {
			inputs[i][j] = float32((i*31+j*17)%97) / 97
		}
	}
	want := make([]int, n)
	for i := range inputs {
		logits, err := m.Predict(inputs[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		wi := 0
		for j, v := range logits {
			if v > logits[wi] {
				wi = j
			}
		}
		want[i] = wi
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postPredict(t, ts.URL, inputs[i], nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var pr predictResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				t.Error(err)
				return
			}
			if pr.Argmax != want[i] {
				t.Errorf("request %d: argmax %d, want %d", i, pr.Argmax, want[i])
			}
		}(i)
	}
	wg.Wait()
	if st := s.Batcher().Stats(); st.Served < n {
		t.Errorf("served %d of %d", st.Served, n)
	}
}
