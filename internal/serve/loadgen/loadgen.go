// Package loadgen generates synthetic inference load against a serving
// target and reports the latency distribution, achieved throughput, batch
// coalescing and shed rate — the measurement side of the serving
// experiment and of scaledl-serve -loadtest.
//
// Two generator shapes, selected by Options.Rate:
//
//   - Closed loop (Rate == 0): Concurrency workers fire back-to-back, each
//     sending its next request the moment the previous answer lands. This
//     measures the system's capacity at a fixed concurrency — offered
//     load adapts to service time, so it never sheds a well-sized queue.
//   - Open loop (Rate > 0): arrivals are paced at Rate requests/second
//     regardless of completions — the shape real traffic has, and the one
//     that exposes the batching knee: below the knee p50 sits near one
//     MaxDelay, past it the queue fills and the shed rate climbs. At most
//     Concurrency requests are outstanding; an arrival finding all slots
//     busy is counted as shed without being sent (the client-side image
//     of the server's own backpressure).
package loadgen

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scaledl/internal/serve"
)

// Target submits one sample and blocks until logits land in out (the
// Batcher.Do signature): the experiment drives a Batcher directly, while
// scaledl-serve -loadtest wraps an HTTP client in one of these.
type Target func(in, out []float32, deadline time.Time) error

// Options shapes one load-generation run.
type Options struct {
	// Dim and Classes are the target model's input/output widths.
	Dim, Classes int
	// Duration bounds the run (default 1s).
	Duration time.Duration
	// Rate is the open-loop offered load in requests/second; 0 selects the
	// closed loop.
	Rate float64
	// Concurrency is the closed loop's worker count, and the open loop's
	// outstanding-request cap (default 4; open-loop default 256).
	Concurrency int
	// Deadline is the per-request deadline (0 = none).
	Deadline time.Duration
	// Seed draws the synthetic sample contents.
	Seed int64
}

// Result aggregates one run.
type Result struct {
	Offered  float64 // requests/second offered (open loop: Rate; closed loop: achieved)
	Achieved float64 // successful answers per second
	Sent     int64   // requests submitted to the target
	OK       int64
	Shed     int64 // ErrShed answers plus open-loop arrivals dropped at the outstanding cap
	Expired  int64 // ErrDeadline answers
	Errors   int64 // anything else
	// Latency quantiles over successful answers.
	P50, P90, P99, P999, Max time.Duration
}

// ShedRate is the shed fraction of all request outcomes (every offered
// request ends as exactly one of OK, Shed, Expired or Errors).
func (r Result) ShedRate() float64 {
	total := r.OK + r.Shed + r.Expired + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Shed) / float64(total)
}

// Run drives the target under the given options.
func Run(target Target, o Options) Result {
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Concurrency <= 0 {
		if o.Rate > 0 {
			o.Concurrency = 256
		} else {
			o.Concurrency = 4
		}
	}
	if o.Rate > 0 {
		return runOpen(target, o)
	}
	return runClosed(target, o)
}

// recorder accumulates per-request outcomes from many workers.
type recorder struct {
	mu        sync.Mutex
	latencies []time.Duration
	ok        atomic.Int64
	shed      atomic.Int64
	expired   atomic.Int64
	errs      atomic.Int64
	sent      atomic.Int64
}

func (rec *recorder) observe(err error, d time.Duration) {
	switch {
	case err == nil:
		rec.ok.Add(1)
		rec.mu.Lock()
		rec.latencies = append(rec.latencies, d)
		rec.mu.Unlock()
	case errors.Is(err, serve.ErrShed):
		rec.shed.Add(1)
	case errors.Is(err, serve.ErrDeadline):
		rec.expired.Add(1)
	default:
		rec.errs.Add(1)
	}
}

func (rec *recorder) result(elapsed time.Duration, offered float64) Result {
	r := Result{
		Offered: offered,
		Sent:    rec.sent.Load(),
		OK:      rec.ok.Load(),
		Shed:    rec.shed.Load(),
		Expired: rec.expired.Load(),
		Errors:  rec.errs.Load(),
	}
	if elapsed > 0 {
		r.Achieved = float64(r.OK) / elapsed.Seconds()
		if offered <= 0 {
			r.Offered = float64(r.Sent) / elapsed.Seconds()
		}
	}
	ls := rec.latencies
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	if n := len(ls); n > 0 {
		r.P50 = ls[quantileIdx(n, 0.50)]
		r.P90 = ls[quantileIdx(n, 0.90)]
		r.P99 = ls[quantileIdx(n, 0.99)]
		r.P999 = ls[quantileIdx(n, 0.999)]
		r.Max = ls[n-1]
	}
	return r
}

func quantileIdx(n int, q float64) int {
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// sample fills in with deterministic noise — content is irrelevant to
// timing, but keep it non-constant so nothing short-circuits.
func sample(in []float32, rng *rand.Rand) {
	for i := range in {
		in[i] = rng.Float32()*2 - 1
	}
}

func runClosed(target Target, o Options) Result {
	rec := &recorder{latencies: make([]time.Duration, 0, 1<<16)}
	stop := time.Now().Add(o.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)))
			in := make([]float32, o.Dim)
			out := make([]float32, o.Classes)
			for time.Now().Before(stop) {
				sample(in, rng)
				var deadline time.Time
				if o.Deadline > 0 {
					deadline = time.Now().Add(o.Deadline)
				}
				t0 := time.Now()
				err := target(in, out, deadline)
				rec.sent.Add(1)
				rec.observe(err, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	return rec.result(time.Since(start), 0)
}

func runOpen(target Target, o Options) Result {
	rec := &recorder{latencies: make([]time.Duration, 0, 1<<16)}
	interval := time.Duration(float64(time.Second) / o.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	slots := make(chan int, o.Concurrency)
	type slot struct {
		in  []float32
		out []float32
		rng *rand.Rand
	}
	pool := make([]slot, o.Concurrency)
	for i := range pool {
		pool[i] = slot{
			in:  make([]float32, o.Dim),
			out: make([]float32, o.Classes),
			rng: rand.New(rand.NewSource(o.Seed + int64(i))),
		}
		slots <- i
	}
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(o.Duration)
	next := start
	for {
		now := time.Now()
		if !now.Before(stop) {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
			continue
		}
		next = next.Add(interval)
		select {
		case i := <-slots:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s := &pool[i]
				sample(s.in, s.rng)
				var deadline time.Time
				if o.Deadline > 0 {
					deadline = time.Now().Add(o.Deadline)
				}
				t0 := time.Now()
				err := target(s.in, s.out, deadline)
				rec.sent.Add(1)
				rec.observe(err, time.Since(t0))
				slots <- i
			}(i)
		default:
			// All outstanding slots busy: the arrival is dropped client-side,
			// the open-loop mirror of the server shedding.
			rec.shed.Add(1)
		}
	}
	wg.Wait()
	return rec.result(time.Since(start), o.Rate)
}
