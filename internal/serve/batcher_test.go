package serve

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/par"
)

// toyModel trains a small TinyCNN for a few steps so logits are
// non-trivial, and returns it with its test set.
func toyModel(t testing.TB, iters int) (*nn.Model, *data.Dataset) {
	t.Helper()
	spec := data.Spec{Name: "toy", Channels: 1, Height: 12, Width: 12, Classes: 4}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 256, TestN: 128, Seed: 9})
	train.Normalize()
	test.Normalize()
	net := nn.TinyCNN(nn.Shape{C: 1, H: 12, W: 12}, 4).Build(3)
	s := data.NewSampler(train, 11)
	var batch *data.Batch
	for i := 0; i < iters; i++ {
		batch = s.Next(16, batch)
		net.ZeroGrad()
		net.LossAndGrad(batch.X, batch.Labels, 16)
		net.SGDStep(0.05)
	}
	return nn.NewModel(net), test
}

// slowModel is LeNet at MNIST scale: one forward takes long enough that a
// flood of concurrent requests reliably overflows a small queue.
func slowModel(t testing.TB) *nn.Model {
	t.Helper()
	return nn.NewModel(nn.LeNet(nn.Shape{C: 1, H: 28, W: 28}, 10).Build(1))
}

// Coalescing must be invisible: whatever batches the dispatcher happens to
// form under concurrency, every reply equals the model's own batch-of-1
// answer bit for bit.
func TestBatcherBitIdenticalUnderConcurrency(t *testing.T) {
	m, test := toyModel(t, 20)
	dim, classes := m.InputDim(), m.Classes()
	const n = 96
	// Reference answers first (the batcher owns the model afterwards).
	want := make([][]float32, n)
	for i := 0; i < n; i++ {
		out, err := m.Predict(test.Images[i*dim:(i+1)*dim], 1)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	b, err := NewBatcher(m, BatchConfig{MaxBatch: 8, MaxDelay: 500 * time.Microsecond, QueueBound: n})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	var wg sync.WaitGroup
	outs := make([][]float32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = make([]float32, classes)
			errs[i] = b.Do(test.Images[i*dim:(i+1)*dim], outs[i], time.Time{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		for j := range want[i] {
			if outs[i][j] != want[i][j] {
				t.Fatalf("request %d logit %d: coalesced %v != solo %v", i, j, outs[i][j], want[i][j])
			}
		}
	}
	st := b.Stats()
	if st.Served != n || st.Batches == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.MeanBatch <= 1 {
		t.Errorf("no coalescing happened under %d concurrent requests (mean batch %.2f)", n, st.MeanBatch)
	}
}

// A lone request under idle load must be served as a batch of 1 after
// MaxDelay, not wait for company that never comes.
func TestBatchOfOneUnderIdleLoad(t *testing.T) {
	m, test := toyModel(t, 5)
	b, err := NewBatcher(m, BatchConfig{MaxBatch: 32, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	out := make([]float32, m.Classes())
	start := time.Now()
	if err := b.Do(test.Images[:m.InputDim()], out, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("idle batch-of-1 took %v", waited)
	}
	st := b.Stats()
	if st.Batches != 1 || st.Served != 1 || st.BatchHist[0] != 1 {
		t.Errorf("stats after one idle request: %+v", st)
	}
}

// Requests paced right at the flush cadence — each arriving around the
// moment the previous batch's MaxDelay timer fires — must all be answered
// exactly once, whether they land in the closing batch or open the next.
func TestRequestAtFlushDeadline(t *testing.T) {
	m, test := toyModel(t, 5)
	const delay = time.Millisecond
	b, err := NewBatcher(m, BatchConfig{MaxBatch: 32, MaxDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	const n = 40
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make([]float32, m.Classes())
			errs[i] = b.Do(test.Images[:m.InputDim()], out, time.Time{})
		}(i)
		time.Sleep(delay) // next request lands at the previous flush boundary
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d lost at flush boundary: %v", i, err)
		}
	}
	if st := b.Stats(); st.Served != n {
		t.Errorf("served %d of %d", st.Served, n)
	}
}

// parkDispatcher installs the onBatchStart test seam on b: the dispatcher
// blocks at the top of its first batch until release is closed (later
// batches pass straight through). It returns a channel closed once the
// dispatcher has parked. Must be called before the first request.
func parkDispatcher(b *Batcher, release chan struct{}) chan struct{} {
	entered := make(chan struct{})
	var once sync.Once
	b.onBatchStart = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	return entered
}

// waitQueueDepth polls until the admission queue holds want requests.
func waitQueueDepth(t *testing.T, b *Batcher, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", b.Stats().QueueDepth, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Queue overflow must shed with ErrShed — and never lose a request: every
// Do returns either logits or a sentinel. The dispatcher is parked inside
// its first batch so "one batch in flight, queue full" is a pinned state,
// not a race against the forward pass.
func TestQueueOverflowShed(t *testing.T) {
	m, test := toyModel(t, 1)
	b, err := NewBatcher(m, BatchConfig{MaxBatch: 1, MaxDelay: time.Millisecond, QueueBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	release := make(chan struct{})
	entered := parkDispatcher(b, release)
	in := test.Images[:m.InputDim()]
	const admitted = 3 // 1 in flight + QueueBound queued
	var wg sync.WaitGroup
	errs := make([]error, admitted)
	outs := make([][]float32, admitted)
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i] = make([]float32, m.Classes())
			errs[i] = b.Do(in, outs[i], time.Time{})
		}()
	}
	submit(0)
	<-entered // dispatcher is now stuck inside request 0's batch
	submit(1)
	submit(2)
	waitQueueDepth(t, b, 2)
	// The queue is provably full: every further arrival sheds, synchronously.
	const floods = 8
	for i := 0; i < floods; i++ {
		if err := b.Do(in, make([]float32, m.Classes()), time.Time{}); !errors.Is(err, ErrShed) {
			t.Fatalf("flood %d with a full queue got %v, want ErrShed", i, err)
		}
	}
	close(release)
	wg.Wait()
	want, err := m.Predict(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < admitted; i++ {
		if errs[i] != nil {
			t.Fatalf("admitted request %d: %v", i, errs[i])
		}
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("admitted request %d logit %d: %v != %v", i, j, outs[i][j], want[j])
			}
		}
	}
	st := b.Stats()
	if st.Shed != floods || st.Served != admitted {
		t.Errorf("stats: %+v, want shed=%d served=%d", st, floods, admitted)
	}
}

// Drain during an in-flight batch: everything admitted before Drain is
// answered with real logits, everything after gets ErrDraining, and Drain
// itself returns only once the queue is empty.
func TestDrainDuringInflightBatch(t *testing.T) {
	m := slowModel(t)
	b, err := NewBatcher(m, BatchConfig{MaxBatch: 4, MaxDelay: time.Millisecond, QueueBound: 32})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	in := make([]float32, m.InputDim())
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make([]float32, m.Classes())
			errs[i] = b.Do(in, out, time.Time{})
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let batches get in flight
	b.Drain()
	// After Drain returns, every admitted request has its answer.
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrShed) && !errors.Is(err, ErrDraining) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := b.Do(in, make([]float32, m.Classes()), time.Time{}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain request got %v, want ErrDraining", err)
	}
	if !b.Draining() {
		t.Error("Draining() false after Drain")
	}
	b.Drain() // idempotent, returns immediately
}

// Deadlines propagate: an already-expired request is rejected at
// admission, and one that expires while queued is dropped at batch
// launch without spending a forward on it.
func TestDeadlinePropagation(t *testing.T) {
	m, test := toyModel(t, 5)
	b, err := NewBatcher(m, BatchConfig{MaxBatch: 32, MaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	in := test.Images[:m.InputDim()]
	out := make([]float32, m.Classes())
	if err := b.Do(in, out, time.Now().Add(-time.Second)); !errors.Is(err, ErrDeadline) {
		t.Errorf("expired-at-admission got %v", err)
	}
	// Deadline (1ms) shorter than the flush delay (50ms): the request dies
	// in the queue.
	start := time.Now()
	if err := b.Do(in, out, time.Now().Add(time.Millisecond)); !errors.Is(err, ErrDeadline) {
		t.Errorf("expired-in-queue got %v", err)
	}
	if waited := time.Since(start); waited < time.Millisecond {
		t.Errorf("in-queue expiry answered after %v, before the deadline", waited)
	}
	batchesBefore := b.Stats().Batches
	if batchesBefore != 0 {
		t.Errorf("expired requests consumed %d forwards", batchesBefore)
	}
}

func TestDoValidatesShapes(t *testing.T) {
	m, _ := toyModel(t, 1)
	b, err := NewBatcher(m, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	if err := b.Do(make([]float32, 3), make([]float32, m.Classes()), time.Time{}); err == nil {
		t.Error("short input accepted")
	}
	if err := b.Do(make([]float32, m.InputDim()), nil, time.Time{}); err == nil {
		t.Error("nil output accepted")
	}
}

// The zero-alloc contract: once warmed, the full request path — admission,
// dispatch, batched forward, reply — allocates nothing, at par width 1
// (wider settings spawn helper goroutines by design; the GEMM engine
// already guards its chunking the same way).
func TestBatcherAllocFree(t *testing.T) {
	par.SetWidth(1)
	defer par.SetWidth(0)
	m, test := toyModel(t, 5)
	b, err := NewBatcher(m, BatchConfig{MaxBatch: 1, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	in := test.Images[:m.InputDim()]
	out := make([]float32, m.Classes())
	for i := 0; i < 50; i++ { // warm every buffer and the free list
		if err := b.Do(in, out, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := b.Do(in, out, time.Time{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("batching hot path allocates %.2f objects per request, want 0", allocs)
	}
}

// Quantized models serve through the same batcher; answers match the
// quantized model's own forwards.
func TestBatcherServesQuantizedModel(t *testing.T) {
	m, test := toyModel(t, 30)
	m.QuantizeInt8()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := loaded.Predict(test.Images[:m.InputDim()], 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(loaded, BatchConfig{MaxBatch: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	out := make([]float32, m.Classes())
	if err := b.Do(test.Images[:m.InputDim()], out, time.Time{}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("logit %d: %v != %v", i, out[i], want[i])
		}
	}
}
