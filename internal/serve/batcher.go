package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"scaledl/internal/nn"
)

// The admission-queue outcomes, distinguished so the HTTP layer can map
// them to status codes (429, 504, 503) and load generators can count them
// without string matching.
var (
	// ErrShed rejects a request because the admission queue is at
	// QueueBound — backpressure instead of unbounded latency.
	ErrShed = errors.New("serve: overloaded, request shed")
	// ErrDeadline rejects a request whose deadline passed before its batch
	// ran; no compute is spent on it.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrDraining rejects a request that arrived after Drain.
	ErrDraining = errors.New("serve: draining")
)

// BatchConfig tunes the micro-batcher.
type BatchConfig struct {
	// MaxBatch is the coalescing limit: a batch launches as soon as it has
	// this many requests. Default 32.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company before the batch launches anyway. Default 2ms.
	MaxDelay time.Duration
	// QueueBound caps the admission queue; a request arriving with the
	// queue full is shed (ErrShed). Default 4×MaxBatch.
	QueueBound int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 4 * c.MaxBatch
	}
	return c
}

// request is the pooled envelope one Do call rides through the queue. The
// done channel is buffered and owned by the envelope for its lifetime, so
// the dispatcher's reply never blocks and nothing is allocated per call.
type request struct {
	in       []float32
	out      []float32
	deadline time.Time
	done     chan error
}

// Batcher coalesces concurrent single-sample Do calls into batched
// forward passes through one dispatcher goroutine (which also serializes
// access to the model's layer buffers — nn.Model is not concurrency-safe
// by itself). See the package comment for the admission, deadline, shed
// and drain semantics and the zero-alloc/bit-identity contracts.
type Batcher struct {
	model        *nn.Model
	cfg          BatchConfig
	dim, classes int

	queue chan *request

	// mu guards the draining flag against racing enqueues: Do sends while
	// read-locked, Drain flips the flag write-locked, so once Drain holds
	// the lock no further request can slip in behind the sentinel.
	mu       sync.RWMutex
	draining bool

	freeMu sync.Mutex
	free   []*request

	// dispatcher-owned batch state, preallocated at MaxBatch
	batchIn  []float32
	batchOut []float32
	live     []*request

	sentinel request
	drained  chan struct{}
	stats    stats

	// onBatchStart, when set before the first request, runs at the top of
	// every runBatch on the dispatcher goroutine. It is a test seam: overload
	// tests park the dispatcher here to make queue overflow deterministic
	// instead of racing a flood against the forward pass.
	onBatchStart func()
}

// NewBatcher starts a batcher (and its dispatcher goroutine) for the
// model. It preallocates every buffer the steady state needs, including
// warming the model's layer buffers with one MaxBatch forward, so the hot
// path never allocates.
func NewBatcher(model *nn.Model, cfg BatchConfig) (*Batcher, error) {
	if model == nil {
		return nil, errors.New("serve: nil model")
	}
	cfg = cfg.withDefaults()
	b := &Batcher{
		model:    model,
		cfg:      cfg,
		dim:      model.InputDim(),
		classes:  model.Classes(),
		queue:    make(chan *request, cfg.QueueBound),
		batchIn:  make([]float32, cfg.MaxBatch*model.InputDim()),
		batchOut: make([]float32, cfg.MaxBatch*model.Classes()),
		live:     make([]*request, 0, cfg.MaxBatch),
		drained:  make(chan struct{}),
	}
	b.stats.init(cfg.MaxBatch)
	b.free = make([]*request, 0, cfg.QueueBound+cfg.MaxBatch)
	for i := 0; i < cfg.QueueBound+cfg.MaxBatch; i++ {
		b.free = append(b.free, &request{done: make(chan error, 1)})
	}
	// Warm the net's internal buffers at the largest batch so the first
	// real batches don't grow them.
	if err := model.PredictInto(b.batchIn, cfg.MaxBatch, b.batchOut); err != nil {
		return nil, fmt.Errorf("serve: model rejects batch forward: %w", err)
	}
	go b.dispatch()
	return b, nil
}

// Config returns the effective (defaulted) configuration.
func (b *Batcher) Config() BatchConfig { return b.cfg }

// Do submits one sample (len InputDim) and blocks until its logits are in
// out (len Classes) or the request is rejected: ErrShed on a full queue,
// ErrDeadline if deadline (zero = none) passes before its batch runs,
// ErrDraining after Drain. Safe for concurrent use; allocation-free.
func (b *Batcher) Do(in, out []float32, deadline time.Time) error {
	if len(in) != b.dim || len(out) != b.classes {
		return errBadShape
	}
	b.stats.accepted.Add(1)
	if !deadline.IsZero() && time.Now().After(deadline) {
		b.stats.expired.Add(1)
		return ErrDeadline
	}
	req := b.getReq()
	req.in, req.out, req.deadline = in, out, deadline
	b.mu.RLock()
	if b.draining {
		b.mu.RUnlock()
		b.putReq(req)
		return ErrDraining
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.putReq(req)
		b.stats.shed.Add(1)
		return ErrShed
	}
	err := <-req.done
	b.putReq(req)
	return err
}

var errBadShape = errors.New("serve: input/output length does not match the model")

// Drain stops admission, lets the dispatcher finish every request already
// in the queue (including any batch in flight), and returns once the
// queue is empty and answered. Idempotent; concurrent callers all block
// until the drain completes.
func (b *Batcher) Drain() {
	b.mu.Lock()
	first := !b.draining
	b.draining = true
	b.mu.Unlock()
	if first {
		// The write lock above waited out every in-flight enqueue, and no
		// new one can pass the flag — the sentinel is the queue's last item.
		b.queue <- &b.sentinel
	}
	<-b.drained
}

// Draining reports whether Drain has been called.
func (b *Batcher) Draining() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.draining
}

func (b *Batcher) getReq() *request {
	b.freeMu.Lock()
	n := len(b.free)
	if n == 0 {
		b.freeMu.Unlock()
		// More concurrent callers than queue slots + one batch: the excess
		// would have been shed anyway, but stay correct for them.
		return &request{done: make(chan error, 1)}
	}
	req := b.free[n-1]
	b.free = b.free[:n-1]
	b.freeMu.Unlock()
	return req
}

func (b *Batcher) putReq(req *request) {
	req.in, req.out = nil, nil
	b.freeMu.Lock()
	if len(b.free) < cap(b.free) {
		b.free = append(b.free, req)
	}
	b.freeMu.Unlock()
}

// dispatch is the single consumer: it opens a batch on the first arrival,
// tops it up until MaxBatch or MaxDelay, runs one batched forward, and
// fans the logit rows back out.
func (b *Batcher) dispatch() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopping := false
	for !stopping {
		req := <-b.queue
		if req == &b.sentinel {
			break
		}
		b.live = append(b.live[:0], req)
		timer.Reset(b.cfg.MaxDelay)
		fired := false
	fill:
		for len(b.live) < b.cfg.MaxBatch {
			select {
			case r := <-b.queue:
				if r == &b.sentinel {
					stopping = true
					break fill
				}
				b.live = append(b.live, r)
			case <-timer.C:
				fired = true
				break fill
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		b.runBatch()
	}
	close(b.drained)
}

// runBatch executes the collected batch: expired requests are answered
// ErrDeadline without touching the model, the rest share one forward.
func (b *Batcher) runBatch() {
	if b.onBatchStart != nil {
		b.onBatchStart()
	}
	now := time.Now()
	n := 0
	for _, r := range b.live {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			b.stats.expired.Add(1)
			r.done <- ErrDeadline
			continue
		}
		copy(b.batchIn[n*b.dim:(n+1)*b.dim], r.in)
		b.live[n] = r
		n++
	}
	if n == 0 {
		return
	}
	err := b.model.PredictInto(b.batchIn[:n*b.dim], n, b.batchOut[:n*b.classes])
	for i := 0; i < n; i++ {
		r := b.live[i]
		if err == nil {
			copy(r.out, b.batchOut[i*b.classes:(i+1)*b.classes])
		}
		r.done <- err
	}
	if err == nil {
		b.stats.record(n)
	}
}
