package serve

import "sync/atomic"

// stats holds the batcher's hot-path counters: plain atomics, updated
// without locks or allocation.
type stats struct {
	accepted atomic.Int64 // Do calls past the shape check
	shed     atomic.Int64 // rejected on a full queue
	expired  atomic.Int64 // rejected on a passed deadline (at admission or in-batch)
	served   atomic.Int64 // answered with logits
	batches  atomic.Int64 // forward passes run
	hist     []atomic.Int64
}

func (s *stats) init(maxBatch int) {
	s.hist = make([]atomic.Int64, maxBatch)
}

func (s *stats) record(n int) {
	s.batches.Add(1)
	s.served.Add(int64(n))
	s.hist[n-1].Add(1)
}

// Stats is a consistent-enough snapshot of the batching counters (each
// counter is read atomically; the set is not fenced against in-flight
// requests).
type Stats struct {
	// Requests counts everything submitted; Shed, Expired and Served
	// partition the finished ones (in-flight requests are the gap).
	Requests int64 `json:"requests"`
	Shed     int64 `json:"shed"`
	Expired  int64 `json:"expired"`
	Served   int64 `json:"served"`
	// Batches counts forward passes; MeanBatch is Served/Batches — the
	// coalescing the load level actually achieved.
	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	// BatchHist[i] counts batches of size i+1 (len = MaxBatch).
	BatchHist []int64 `json:"batch_hist"`
	// QueueDepth is the admission-queue occupancy at snapshot time.
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining"`
}

// Stats snapshots the batcher's counters.
func (b *Batcher) Stats() Stats {
	s := Stats{
		Requests:   b.stats.accepted.Load(),
		Shed:       b.stats.shed.Load(),
		Expired:    b.stats.expired.Load(),
		Served:     b.stats.served.Load(),
		Batches:    b.stats.batches.Load(),
		BatchHist:  make([]int64, len(b.stats.hist)),
		QueueDepth: len(b.queue),
		Draining:   b.Draining(),
	}
	for i := range b.stats.hist {
		s.BatchHist[i] = b.stats.hist[i].Load()
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Served) / float64(s.Batches)
	}
	return s
}
