// Package serve is the inference side of the system: it takes a trained
// model (nn.Model — what training's Result.Model() returns and snapshots
// reload) and serves predictions over HTTP with dynamic micro-batching.
//
// The paper's training stack earns its throughput by batching GEMMs;
// serving earns it the same way, but the batch has to be assembled from
// concurrent single-sample requests at runtime. The Batcher is that
// assembly: an admission queue bounded by Config.QueueBound (overflow is
// shed immediately — HTTP 429 with Retry-After — so latency stays bounded
// under overload instead of growing without limit), a dispatcher that
// coalesces up to MaxBatch requests or whatever arrived within MaxDelay
// of the batch opening, per-request deadline propagation (a request whose
// deadline passed while queued is dropped without spending compute on
// it), and graceful drain (Drain stops admission, finishes everything
// already admitted, then returns — the SIGTERM path).
//
// Two contracts are pinned by tests and the BENCH_serve.json gate:
//
//   - Bit-identity: coalescing is invisible to the math. A batch-of-N
//     forward equals N independent batch-of-1 forwards exactly at fp32,
//     because every layer handles samples row-disjointly and the GEMM's
//     K-accumulation order per output row does not depend on the batch
//     dimension. Batching is purely a throughput lever.
//   - Zero allocation: the batching hot path (Do → dispatch → forward →
//     reply) allocates nothing in steady state. Request envelopes come
//     from a free list, batch tensors are preallocated at MaxBatch, and
//     the net's layer buffers are warmed at construction
//     (testing.AllocsPerRun pins 0 at par width 1; wider settings spawn
//     helper goroutines inside the GEMM and conv loops, which allocates
//     by design).
//
// The HTTP layer (Server) is deliberately thin: POST /v1/predict decodes
// one sample, rides the Batcher, returns argmax+logits; GET /v1/healthz
// and GET /v1/stats expose liveness and the batching counters. JSON
// encoding allocates — only the batching core is allocation-free.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"scaledl/internal/nn"
)

// Config configures a Server.
type Config struct {
	// Batch configures the micro-batcher (see BatchConfig defaults).
	Batch BatchConfig
	// DefaultDeadline is applied to requests that carry no X-Deadline-Ms
	// header; 0 means no deadline.
	DefaultDeadline time.Duration
	// RetryAfter is the hint returned with 429 responses; 0 means 1s.
	RetryAfter time.Duration
}

// Server serves a model over HTTP through a Batcher.
type Server struct {
	model *nn.Model
	b     *Batcher
	cfg   Config
	mux   *http.ServeMux
	start time.Time
}

// NewServer builds a server (and its running Batcher) around a model.
func NewServer(model *nn.Model, cfg Config) (*Server, error) {
	b, err := NewBatcher(model, cfg.Batch)
	if err != nil {
		return nil, err
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{model: model, b: b, cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the HTTP handler (for http.Server or tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Batcher exposes the admission queue, for in-process load generation.
func (s *Server) Batcher() *Batcher { return s.b }

// Drain stops admission and blocks until every admitted request has been
// answered — the SIGTERM path. After Drain, predict returns 503 and
// healthz reports draining.
func (s *Server) Drain() { s.b.Drain() }

type predictRequest struct {
	Input []float32 `json:"input"`
}

type predictResponse struct {
	Argmax int       `json:"argmax"`
	Logits []float32 `json:"logits"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Input) != s.model.InputDim() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("input has %d values, model wants %d", len(req.Input), s.model.InputDim()))
		return
	}
	var deadline time.Time
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, "X-Deadline-Ms must be a positive integer")
			return
		}
		deadline = time.Now().Add(time.Duration(ms) * time.Millisecond)
	} else if s.cfg.DefaultDeadline > 0 {
		deadline = time.Now().Add(s.cfg.DefaultDeadline)
	}
	out := make([]float32, s.model.Classes())
	switch err := s.b.Do(req.Input, out, deadline); err {
	case nil:
	case ErrShed:
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case ErrDraining:
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case ErrDeadline:
		writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	argmax := 0
	for i, v := range out {
		if v > out[argmax] {
			argmax = i
		}
	}
	writeJSON(w, http.StatusOK, predictResponse{Argmax: argmax, Logits: out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status    string  `json:"status"`
		Model     string  `json:"model"`
		Params    int     `json:"params"`
		Quantized bool    `json:"quantized"`
		UptimeSec float64 `json:"uptime_s"`
	}
	h := health{
		Status:    "ok",
		Model:     s.model.Def().Name,
		Params:    s.model.ParamCount(),
		Quantized: s.model.Quantized(),
		UptimeSec: time.Since(s.start).Seconds(),
	}
	code := http.StatusOK
	if s.b.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
