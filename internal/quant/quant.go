// Package quant implements low-precision gradient compression — the
// direction the paper explicitly defers ("low-precision representation …
// we reserve this for future study", §3.4, citing 1-bit SGD and QNN). Two
// schemes are provided:
//
//   - OneBit: Seide et al.'s 1-bit SGD. Each gradient element is replaced
//     by one of two per-vector reconstruction levels (the mean of the
//     positive and of the negative entries) chosen by sign, and the
//     quantization error is fed back into the next step's gradient
//     (error feedback), which is what makes the scheme converge.
//   - Uniform8: linear 8-bit quantization between the vector's min and max.
//
// Apply returns the wire size of the compressed message, so the simulated
// communication layer charges 1/32 (OneBit) or 1/4 (Uniform8) of the
// float32 volume, while the *reconstructed* values carry the real
// quantization error into the training mathematics.
package quant

import (
	"fmt"

	"scaledl/internal/parse"
	"scaledl/internal/tensor"
)

// Scheme selects a compression method.
type Scheme int

const (
	// None transmits raw float32 values.
	None Scheme = iota
	// OneBit is sign quantization with two reconstruction levels and error
	// feedback.
	OneBit
	// Uniform8 is linear 8-bit quantization.
	Uniform8
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case None:
		return "fp32"
	case OneBit:
		return "1-bit"
	case Uniform8:
		return "uint8"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists the canonical compression-scheme names accepted by
// ParseScheme.
func Schemes() []string { return []string{"fp32", "1-bit", "uint8"} }

// ParseScheme converts a name to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "", "fp32", "none":
		return None, nil
	case "1-bit", "onebit":
		return OneBit, nil
	case "uint8", "uniform8":
		return Uniform8, nil
	default:
		return None, parse.Errorf("compression scheme", name, Schemes())
	}
}

// Quantizer applies a scheme to successive gradient vectors of a fixed
// length, carrying error-feedback state between calls (one Quantizer per
// worker, like one residual buffer per GPU in 1-bit SGD).
type Quantizer struct {
	scheme   Scheme
	residual []float32 // error feedback for OneBit
}

// New creates a quantizer for vectors of length n.
func New(scheme Scheme, n int) *Quantizer {
	q := &Quantizer{scheme: scheme}
	if scheme == OneBit {
		q.residual = make([]float32, n)
	}
	return q
}

// Scheme returns the configured scheme.
func (q *Quantizer) Scheme() Scheme { return q.scheme }

// Apply compresses v and writes the receiver-side reconstruction into out
// (out may alias v). It returns the wire size in bytes of the compressed
// representation.
func (q *Quantizer) Apply(v []float32, out []float32) int64 {
	if len(out) != len(v) {
		panic("quant: Apply length mismatch")
	}
	switch q.scheme {
	case None:
		copy(out, v)
		return int64(len(v)) * 4
	case OneBit:
		return q.oneBit(v, out)
	case Uniform8:
		return uniform8(v, out)
	default:
		panic(fmt.Sprintf("quant: bad scheme %d", q.scheme))
	}
}

// WireBytes returns the compressed size for an n-element vector without
// compressing anything (for cost-only planning).
func WireBytes(s Scheme, n int) int64 {
	switch s {
	case None:
		return int64(n) * 4
	case OneBit:
		// 1 bit per element plus two float32 reconstruction levels.
		return int64((n+7)/8) + 8
	case Uniform8:
		// 1 byte per element plus min and scale.
		return int64(n) + 8
	default:
		panic(fmt.Sprintf("quant: bad scheme %d", s))
	}
}

func (q *Quantizer) oneBit(v, out []float32) int64 {
	if len(v) != len(q.residual) {
		panic(fmt.Sprintf("quant: vector length %d does not match quantizer length %d", len(v), len(q.residual)))
	}
	// Compensated gradient: g = v + residual. The float64 level sums stay
	// scalar deliberately: a vectorized reduction would change summation
	// order, and the reconstruction levels feed error feedback — a chaotic
	// training trajectory where any reordering shifts golden values.
	var posSum, negSum float64
	var posN, negN int
	for i, x := range v {
		g := x + q.residual[i]
		if g >= 0 {
			posSum += float64(g)
			posN++
		} else {
			negSum += float64(g)
			negN++
		}
	}
	var posLevel, negLevel float32
	if posN > 0 {
		posLevel = float32(posSum / float64(posN))
	}
	if negN > 0 {
		negLevel = float32(negSum / float64(negN))
	}
	for i, x := range v {
		g := x + q.residual[i]
		var r float32
		if g >= 0 {
			r = posLevel
		} else {
			r = negLevel
		}
		q.residual[i] = g - r // error feedback
		out[i] = r
	}
	return WireBytes(OneBit, len(v))
}

// uniform8 rides the tensor package's vectorized helpers: the min/max
// reduction and the quantize-reconstruct map run through the same
// CPU-feature dispatch as the GEMM kernels, and both are bit-identical
// across tiers (min/max is order-free, the map element-wise with a fixed
// unfused op sequence) — so unlike OneBit there is no trajectory risk.
func uniform8(v, out []float32) int64 {
	lo, hi := tensor.MinMax(v)
	scale := (hi - lo) / 255
	if scale == 0 {
		for i := range out {
			out[i] = lo
		}
		return WireBytes(Uniform8, len(v))
	}
	tensor.QuantizeUniform8(v, out, lo, scale, 1/scale)
	return WireBytes(Uniform8, len(v))
}

// Uniform8Grid snaps v onto its 256-level uniform grid into out (out may
// alias v), returning the grid's (lo, scale). It is the Uniform8 gradient
// codec applied as a one-shot transform — post-training int8 weight
// quantization for the serving path rides exactly the gradient-compression
// machinery (tensor.MinMax + tensor.QuantizeUniform8), so the grid values
// are bit-identical across kernel tiers. A zero scale (constant vector)
// maps every element to lo.
func Uniform8Grid(v, out []float32) (lo, scale float32) {
	var hi float32
	lo, hi = tensor.MinMax(v)
	scale = (hi - lo) / 255
	if scale == 0 {
		for i := range out {
			out[i] = lo
		}
		return lo, 0
	}
	tensor.QuantizeUniform8(v, out, lo, scale, 1/scale)
	return lo, scale
}

// Uniform8Codes extracts the one-byte level indices of v on the (lo, scale)
// grid — the snapshot form whose reconstruction (Dequant8) rebuilds exactly
// the values Uniform8Grid produced. The level rule mirrors
// tensor.QuantizeUniform8's unfused op sequence bit for bit: subtract,
// scale, +0.5, truncate, clamp.
func Uniform8Codes(v []float32, codes []uint8, lo, scale float32) {
	if len(codes) != len(v) {
		panic("quant: Uniform8Codes length mismatch")
	}
	if scale == 0 {
		for i := range codes {
			codes[i] = 0
		}
		return
	}
	inv := 1 / scale
	for i, x := range v {
		level := int32((x-lo)*inv + 0.5)
		if level < 0 {
			level = 0
		} else if level > 255 {
			level = 255
		}
		codes[i] = uint8(level)
	}
}

// Dequant8 reconstructs grid values from codes: out[i] = lo + code·scale,
// the same unfused expression QuantizeUniform8 stores, so a code round
// trip is bitwise exact.
func Dequant8(codes []uint8, out []float32, lo, scale float32) {
	if len(out) != len(codes) {
		panic("quant: Dequant8 length mismatch")
	}
	for i, c := range codes {
		out[i] = lo + float32(c)*scale
	}
}

// CompressionRatio returns the float32-to-wire size ratio for n elements.
func CompressionRatio(s Scheme, n int) float64 {
	return float64(4*n) / float64(WireBytes(s, n))
}

// DeltaCodec compresses a stream of whole-weight vectors (the payloads of
// the asynchronous and round-robin algorithms, which ship weights rather
// than gradients) by quantizing the *difference* from the receiver's last
// reconstruction. Weight deltas are gradient-sized, so the same 1-bit /
// 8-bit schemes that work on gradients work on them, and the underlying
// Quantizer's error feedback keeps the reconstruction tracking the true
// weights. The first message is a raw fp32 key frame that seeds both ends.
//
// One codec models one directed stream (sender plus receiver state, which
// the simulation can share since both ends live in one address space);
// use one codec per (sender, receiver) pair.
type DeltaCodec struct {
	q      *Quantizer
	scheme Scheme
	recon  []float32 // receiver-side reconstruction both ends track
	delta  []float32 // scratch
	primed bool
}

// NewDeltaCodec creates a codec for length-n vectors.
func NewDeltaCodec(scheme Scheme, n int) *DeltaCodec {
	return &DeltaCodec{q: New(scheme, n), scheme: scheme, recon: make([]float32, n), delta: make([]float32, n)}
}

// Encode compresses v against the stream state, writes the receiver-side
// reconstruction into out (which may alias v) and returns the wire size of
// the message. With Scheme None it degrades to a raw copy.
func (c *DeltaCodec) Encode(v, out []float32) int64 {
	if len(v) != len(c.recon) || len(out) != len(v) {
		panic("quant: DeltaCodec length mismatch")
	}
	if c.scheme == None {
		copy(out, v)
		return int64(len(v)) * 4
	}
	if !c.primed {
		copy(c.recon, v)
		copy(out, v)
		c.primed = true
		return int64(len(v)) * 4 // key frame
	}
	for i, x := range v {
		c.delta[i] = x - c.recon[i]
	}
	wire := c.q.Apply(c.delta, c.delta)
	for i, d := range c.delta {
		c.recon[i] += d
	}
	copy(out, c.recon)
	return wire
}
