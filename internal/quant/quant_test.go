package quant

import (
	"math"
	"testing"
	"testing/quick"

	"scaledl/internal/tensor"
)

func TestSchemeStringsAndParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scheme
	}{{"", None}, {"fp32", None}, {"none", None}, {"1-bit", OneBit}, {"onebit", OneBit}, {"uint8", Uniform8}, {"uniform8", Uniform8}} {
		got, err := ParseScheme(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScheme(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseScheme("fp64"); err == nil {
		t.Error("unknown scheme parsed")
	}
	if OneBit.String() != "1-bit" || None.String() != "fp32" || Uniform8.String() != "uint8" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should still print")
	}
}

func TestWireBytes(t *testing.T) {
	n := 1000
	if got := WireBytes(None, n); got != 4000 {
		t.Errorf("fp32 wire %d", got)
	}
	if got := WireBytes(OneBit, n); got != 125+8 {
		t.Errorf("1-bit wire %d", got)
	}
	if got := WireBytes(Uniform8, n); got != 1008 {
		t.Errorf("uint8 wire %d", got)
	}
	if r := CompressionRatio(OneBit, n); r < 25 || r > 32 {
		t.Errorf("1-bit ratio %v, want ≈30", r)
	}
}

func TestNoneIsIdentity(t *testing.T) {
	q := New(None, 4)
	v := []float32{1, -2, 3, -4}
	out := make([]float32, 4)
	if bytes := q.Apply(v, out); bytes != 16 {
		t.Errorf("wire %d", bytes)
	}
	for i := range v {
		if out[i] != v[i] {
			t.Fatalf("None modified values: %v", out)
		}
	}
}

func TestUniform8BoundedError(t *testing.T) {
	g := tensor.NewRNG(1)
	v := make([]float32, 4096)
	g.FillNormal(v, 0, 3)
	out := make([]float32, len(v))
	New(Uniform8, len(v)).Apply(v, out)
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	maxErr := float64(hi-lo) / 255 / 2 * 1.01
	for i := range v {
		if math.Abs(float64(v[i]-out[i])) > maxErr {
			t.Fatalf("uint8 error %v at %d exceeds half-step %v", v[i]-out[i], i, maxErr)
		}
	}
}

func TestUniform8ConstantVector(t *testing.T) {
	v := []float32{5, 5, 5}
	out := make([]float32, 3)
	New(Uniform8, 3).Apply(v, out)
	for _, x := range out {
		if x != 5 {
			t.Fatalf("constant vector reconstructed as %v", out)
		}
	}
}

func TestOneBitTwoLevels(t *testing.T) {
	v := []float32{1, 2, 3, -1, -3}
	out := make([]float32, len(v))
	New(OneBit, len(v)).Apply(v, out)
	// Positives map to mean(1,2,3)=2, negatives to mean(-1,-3)=-2.
	want := []float32{2, 2, 2, -2, -2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("one-bit out %v, want %v", out, want)
		}
	}
}

// The defining property of error feedback: the cumulative transmitted
// signal tracks the cumulative true signal; the residual never grows
// without bound, so no gradient information is permanently lost.
func TestOneBitErrorFeedbackConservation(t *testing.T) {
	g := tensor.NewRNG(7)
	n := 256
	q := New(OneBit, n)
	v := make([]float32, n)
	out := make([]float32, n)
	var sumTrue, sumSent []float64
	sumTrue = make([]float64, n)
	sumSent = make([]float64, n)
	for step := 0; step < 200; step++ {
		g.FillNormal(v, 0.1, 1) // biased gradients, like a real descent
		q.Apply(v, out)
		for i := range v {
			sumTrue[i] += float64(v[i])
			sumSent[i] += float64(out[i])
		}
	}
	// Σ sent = Σ true − residual_T (exactly, by construction).
	for i := range sumTrue {
		diff := sumTrue[i] - sumSent[i]
		if math.Abs(diff-float64(q.residual[i])) > 1e-3 {
			t.Fatalf("conservation broken at %d: gap %v vs residual %v", i, diff, q.residual[i])
		}
	}
	// Residuals stay bounded (order of one quantization step).
	if norm := tensor.Norm2(q.residual); norm > 10*math.Sqrt(float64(n)) {
		t.Errorf("residual norm %v grew unboundedly", norm)
	}
}

// Property: Apply never changes the input slice when out != v, and the
// wire size matches WireBytes for every scheme and length.
func TestApplyContractProperty(t *testing.T) {
	f := func(seed int64, schemeRaw uint8) bool {
		scheme := Scheme(schemeRaw % 3)
		g := tensor.NewRNG(seed)
		n := 1 + g.Intn(500)
		q := New(scheme, n)
		v := make([]float32, n)
		g.FillNormal(v, 0, 1)
		orig := append([]float32(nil), v...)
		out := make([]float32, n)
		bytes := q.Apply(v, out)
		if bytes != WireBytes(scheme, n) {
			return false
		}
		for i := range v {
			if v[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestApplyAliasedInPlace(t *testing.T) {
	v := []float32{1, -1, 2, -2}
	New(OneBit, 4).Apply(v, v)
	if v[0] != 1.5 || v[1] != -1.5 {
		t.Errorf("in-place apply wrong: %v", v)
	}
}

func TestApplyLengthMismatchPanics(t *testing.T) {
	q := New(OneBit, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	q.Apply(make([]float32, 3), make([]float32, 3))
}

func TestDeltaCodecTracksWeightStream(t *testing.T) {
	n := 2000
	g := tensor.NewRNG(17)
	w := make([]float32, n)
	g.FillNormal(w, 0, 1)
	codec := NewDeltaCodec(OneBit, n)
	out := make([]float32, n)

	// Key frame: raw fp32, exact.
	if wire := codec.Encode(w, out); wire != int64(n)*4 {
		t.Errorf("key frame wire %d, want %d", wire, n*4)
	}
	for i := range w {
		if out[i] != w[i] {
			t.Fatal("key frame not exact")
		}
	}

	// Subsequent small steps: compressed wire, bounded tracking error.
	step := make([]float32, n)
	var wire int64
	for it := 0; it < 50; it++ {
		g.FillNormal(step, 0, 0.01)
		for i := range w {
			w[i] += step[i]
		}
		wire = codec.Encode(w, out)
	}
	if want := WireBytes(OneBit, n); wire != want {
		t.Errorf("delta wire %d, want %d", wire, want)
	}
	var errSum, magSum float64
	for i := range w {
		errSum += math.Abs(float64(out[i] - w[i]))
		magSum += math.Abs(float64(w[i]))
	}
	if errSum/magSum > 0.15 {
		t.Errorf("reconstruction drift %.3f of signal magnitude", errSum/magSum)
	}
}

func TestDeltaCodecNoneIsExactRawCopy(t *testing.T) {
	codec := NewDeltaCodec(None, 4)
	v := []float32{1, -2, 3, -4}
	out := make([]float32, 4)
	for i := 0; i < 3; i++ {
		if wire := codec.Encode(v, out); wire != 16 {
			t.Errorf("None wire %d", wire)
		}
		for j := range v {
			if out[j] != v[j] {
				t.Fatal("None codec not exact")
			}
		}
	}
}

func TestDeltaCodecLengthMismatchPanics(t *testing.T) {
	codec := NewDeltaCodec(OneBit, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	codec.Encode([]float32{1}, []float32{1})
}
