package nn

import (
	"fmt"

	"scaledl/internal/tensor"
)

// LayerSpec declares one layer of a network definition. Exactly one
// constructor field set applies depending on Kind.
type LayerSpec struct {
	Kind    string  // "conv", "dense", "maxpool", "avgpool", "globalavgpool", "relu", "tanh", "sigmoid", "dropout", "lrn", "parallel"
	Filters int     // conv
	Units   int     // dense
	Kernel  int     // conv/pool
	Stride  int     // conv/pool
	Pad     int     // conv/pool
	P       float64 // dropout probability
	N       int     // lrn window
	// Branches holds the sub-chains of a "parallel" (inception) layer; the
	// branch outputs are concatenated along the channel axis.
	Branches [][]LayerSpec `json:",omitempty"`
}

// NetDef is a reusable network definition: the paper's distributed workers
// each instantiate their own copy of the same definition (data parallelism
// replicates the network per machine, Figure 4.1).
type NetDef struct {
	Name    string
	In      Shape
	Classes int
	Specs   []LayerSpec
}

// Net is an instantiated network. All parameters live in one contiguous
// Params buffer and all gradients in one contiguous Grads buffer, with
// layers holding views — this is the paper's §5.2 single-layer (packed)
// layout: one communication per iteration moves the whole model, and memory
// access is sequential.
type Net struct {
	Def     NetDef
	Layers  []Layer
	Params  []float32
	Grads   []float32
	Offsets []int // Offsets[i] is the start of layer i's parameters; len = len(Layers)+1
	// Quant holds the per-layer int8 weight grids after QuantizeInt8; empty
	// for fp32 nets. Params always hold the values inference runs on —
	// quantized nets store the dequantized grid values there.
	Quant []LayerQuant
	loss  SoftmaxXent
}

// Build instantiates a network from its definition with Xavier-initialized
// weights drawn from the given seed.
func (d NetDef) Build(seed int64) *Net {
	layers := make([]Layer, 0, len(d.Specs))
	shape := d.In
	for _, s := range d.Specs {
		l := buildLayer(shape, s)
		layers = append(layers, l)
		shape = l.OutShape()
	}
	if shape.Dim() != d.Classes {
		panic(fmt.Sprintf("nn: %s final shape %v does not match %d classes", d.Name, shape, d.Classes))
	}
	total := 0
	offsets := make([]int, len(layers)+1)
	for i, l := range layers {
		offsets[i] = total
		total += l.ParamCount()
	}
	offsets[len(layers)] = total
	n := &Net{
		Def:     d,
		Layers:  layers,
		Params:  make([]float32, total),
		Grads:   make([]float32, total),
		Offsets: offsets,
	}
	for i, l := range layers {
		l.Bind(n.Params[offsets[i]:offsets[i+1]], n.Grads[offsets[i]:offsets[i+1]])
	}
	g := tensor.NewRNG(seed)
	for _, l := range layers {
		l.Init(g)
	}
	return n
}

// buildLayer constructs one layer from its spec at the given input shape.
func buildLayer(shape Shape, s LayerSpec) Layer {
	switch s.Kind {
	case "conv":
		return NewConv2D(shape, s.Filters, s.Kernel, s.Stride, s.Pad)
	case "dense":
		return NewDense(shape, s.Units)
	case "maxpool":
		return NewPool2DPad(shape, MaxPool, s.Kernel, s.Stride, s.Pad)
	case "avgpool":
		return NewPool2DPad(shape, AvgPool, s.Kernel, s.Stride, s.Pad)
	case "globalavgpool":
		k := shape.H
		if shape.W > k {
			k = shape.W
		}
		return NewPool2D(shape, AvgPool, k, k)
	case "relu":
		return NewReLU(shape)
	case "tanh":
		return NewTanh(shape)
	case "sigmoid":
		return NewSigmoid(shape)
	case "dropout":
		return NewDropout(shape, s.P)
	case "lrn":
		return NewLRN(shape, s.N, 0, 0, 0)
	case "parallel":
		branches := make([][]Layer, len(s.Branches))
		for i, b := range s.Branches {
			branches[i] = buildChain(shape, b)
		}
		return NewParallel(shape, branches)
	default:
		panic(fmt.Sprintf("nn: unknown layer kind %q", s.Kind))
	}
}

// ParamCount returns the total number of parameters.
func (n *Net) ParamCount() int { return len(n.Params) }

// ParamBytes returns the float32 byte size of the model, the |W| that the
// α-β communication model charges.
func (n *Net) ParamBytes() int64 { return int64(len(n.Params)) * 4 }

// LayerParamSizes returns the per-layer parameter counts for layers that
// have parameters; this is what the unpacked (per-layer) communication plan
// of Figure 10 sends as separate messages.
func (n *Net) LayerParamSizes() []int {
	var sizes []int
	for i := range n.Layers {
		if c := n.Offsets[i+1] - n.Offsets[i]; c > 0 {
			sizes = append(sizes, c)
		}
	}
	return sizes
}

// ZeroGrad clears the packed gradient buffer.
func (n *Net) ZeroGrad() {
	for i := range n.Grads {
		n.Grads[i] = 0
	}
}

// Forward runs the network on a batch, returning the logits (b × Classes).
func (n *Net) Forward(x []float32, b int, train bool) []float32 {
	cur := x
	for _, l := range n.Layers {
		cur = l.Forward(cur, b, train)
	}
	return cur
}

// GradEvent announces that one layer's parameter gradients are final: the
// backward walk has run the layer's Backward, and — because every layer
// accumulates only into its own disjoint [Lo,Hi) view of the packed Grads
// buffer — Grads[Lo:Hi] will not change again this minibatch. This is the
// per-layer readiness signal wait-free backprop (Poseidon) keys on: the
// communication of a layer's gradient can start the moment its event fires,
// while earlier layers are still computing.
type GradEvent struct {
	Layer  int // index into Net.Layers; events fire in descending order
	Lo, Hi int // the layer's element range within Grads ([Lo,Hi) = Offsets[Layer], Offsets[Layer+1])

	// Sufficient factors, filled for layers implementing FactorLayer (dense
	// layers): zero-copy views of the backward activations whose outer
	// product dYᵀ·X is the layer's weight gradient. DY is B×F, X is B×D; nil
	// for layers without factors. The views alias live net buffers — valid
	// until the net's next forward/backward — so consumers that need them
	// past this iteration must snapshot.
	DY, X   []float32
	B, F, D int
}

// LossAndGradStream computes gradients for one minibatch exactly like
// LossAndGrad, but emits a GradEvent after each layer's Backward — the
// per-layer gradient-ready stream the overlapped (bucketed) communication
// path consumes. Events fire last layer first, covering every layer
// (parameter-free layers emit an empty range). A nil emit streams nowhere,
// which is the monolithic path; the gradients are bit-identical either way
// because the walk is the same code.
func (n *Net) LossAndGradStream(x []float32, labels []int, b int, emit func(GradEvent)) (loss float64, correct int) {
	logits := n.Forward(x, b, true)
	loss, correct = n.loss.Forward(logits, labels, n.Def.Classes)
	dy := n.loss.Grad()
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy, b)
		if emit != nil {
			e := GradEvent{Layer: i, Lo: n.Offsets[i], Hi: n.Offsets[i+1]}
			if fl, ok := n.Layers[i].(FactorLayer); ok {
				e.DY, e.X, e.B, e.F, e.D = fl.BackwardFactors()
			}
			emit(e)
		}
	}
	return loss, correct
}

// LossAndGrad computes gradients for one minibatch: a full forward, softmax
// cross-entropy, and a full backward accumulating into Grads (which the
// caller usually zeroes first). It returns the mean loss and the number of
// correct argmax predictions. It is the monolithic wrapper over
// LossAndGradStream.
func (n *Net) LossAndGrad(x []float32, labels []int, b int) (loss float64, correct int) {
	return n.LossAndGradStream(x, labels, b, nil)
}

// Loss computes the loss of a batch without touching gradients.
func (n *Net) Loss(x []float32, labels []int, b int) (loss float64, correct int) {
	logits := n.Forward(x, b, false)
	var s SoftmaxXent
	return s.Forward(logits, labels, n.Def.Classes)
}

// SGDStep applies W ← W − η·G to the packed parameters.
func (n *Net) SGDStep(lr float32) {
	tensor.AXPY(-lr, n.Grads, n.Params)
}

// CopyParamsFrom overwrites this net's parameters with src's.
func (n *Net) CopyParamsFrom(src *Net) {
	if len(src.Params) != len(n.Params) {
		panic("nn: CopyParamsFrom parameter count mismatch")
	}
	copy(n.Params, src.Params)
}

// FwdFLOPsPerSample sums the per-layer forward FLOP counts.
func (n *Net) FwdFLOPsPerSample() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.FwdFLOPsPerSample()
	}
	return s
}

// TrainFLOPsPerSample estimates forward+backward cost with the standard
// 1:2 fwd:bwd ratio.
func (n *Net) TrainFLOPsPerSample() int64 { return 3 * n.FwdFLOPsPerSample() }

// Cost exposes the network as a ModelCost for the simulator, so real
// networks and cost-table-only networks (VGG, GoogleNet) are interchangeable
// to the hardware model.
func (n *Net) Cost() ModelCost {
	m := ModelCost{Name: n.Def.Name, Classes: n.Def.Classes, InputDim: n.Def.In.Dim()}
	for i, l := range n.Layers {
		m.Layers = append(m.Layers, LayerCost{
			Name:     l.Name(),
			Params:   int64(n.Offsets[i+1] - n.Offsets[i]),
			FwdFLOPs: l.FwdFLOPsPerSample(),
		})
	}
	return m
}

// Evaluate computes classification accuracy over the given samples in
// batches of evalBatch.
func (n *Net) Evaluate(images []float32, labels []int, evalBatch int) float64 {
	dim := n.Def.In.Dim()
	total := len(labels)
	if total == 0 {
		return 0
	}
	correct := 0
	for lo := 0; lo < total; lo += evalBatch {
		hi := lo + evalBatch
		if hi > total {
			hi = total
		}
		b := hi - lo
		logits := n.Forward(images[lo*dim:hi*dim], b, false)
		for i := 0; i < b; i++ {
			row := logits[i*n.Def.Classes : (i+1)*n.Def.Classes]
			if tensor.MaxIndex(row) == labels[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}
