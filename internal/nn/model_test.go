package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"

	"scaledl/internal/data"
	"scaledl/internal/par"
	"scaledl/internal/tensor"
)

// trainToy trains a TinyCNN on separable synthetic data and returns the
// model plus the test set — the fixture for quantization and serving
// tests.
func trainToy(t *testing.T, iters int) (*Model, *data.Dataset) {
	t.Helper()
	spec := data.Spec{Name: "toy", Channels: 1, Height: 12, Width: 12, Classes: 4}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 512, TestN: 256, Seed: 21})
	train.Normalize()
	test.Normalize()
	net := TinyCNN(Shape{C: 1, H: 12, W: 12}, 4).Build(3)
	s := data.NewSampler(train, 11)
	var batch *data.Batch
	for i := 0; i < iters; i++ {
		batch = s.Next(16, batch)
		net.ZeroGrad()
		net.LossAndGrad(batch.X, batch.Labels, 16)
		net.SGDStep(0.05)
	}
	return NewModel(net), test
}

// A coalesced batch-of-N forward must equal N independent batch-of-1
// forwards bit for bit at fp32 — the contract that makes the serving
// batcher's coalescing invisible to callers. Checked at par widths 1 and
// 4: the batch dimension is split across workers at width 4, so this also
// pins that the chunked conv path never mixes rows.
func TestBatchForwardBitIdentical(t *testing.T) {
	for _, width := range []int{1, 4} {
		par.SetWidth(width)
		m, test := trainToy(t, 20)
		const n = 13 // not a multiple of the chunk width, exercises ragged chunks
		dim, classes := m.InputDim(), m.Classes()
		batched, err := m.Predict(test.Images[:n*dim], n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			single, err := m.Predict(test.Images[i*dim:(i+1)*dim], 1)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range single {
				if batched[i*classes+j] != v {
					t.Fatalf("width %d sample %d logit %d: batched %v != single %v",
						width, i, j, batched[i*classes+j], v)
				}
			}
		}
	}
	par.SetWidth(0)
}

func TestPredictValidatesShapes(t *testing.T) {
	m, _ := trainToy(t, 1)
	if _, err := m.Predict(make([]float32, 10), 1); err == nil {
		t.Error("short input accepted")
	}
	if _, err := m.Predict(nil, 0); err == nil {
		t.Error("zero batch accepted")
	}
	if err := m.PredictInto(make([]float32, m.InputDim()), 1, make([]float32, 1)); err == nil {
		t.Error("short output accepted")
	}
}

// An fp32 model snapshot must be byte-identical to what the version-1
// writer always produced — old snapshots load, new snapshots open under
// old readers. The expected bytes are built here from the documented v1
// layout rather than by calling Save.
func TestSaveV1ByteCompatible(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 8, W: 8}, 3)
	net := def.Build(5)
	// The v1 format: uint32 LE header length, JSON {magic, version, def,
	// params}, then each param as LE float32.
	hdr := struct {
		Magic   string `json:"magic"`
		Version int    `json:"version"`
		Def     NetDef `json:"def"`
		Params  int    `json:"params"`
	}{Magic: "scaledl-net", Version: 1, Def: def, Params: len(net.Params)}
	hj, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	binary.Write(&want, binary.LittleEndian, uint32(len(hj)))
	want.Write(hj)
	for _, v := range net.Params {
		binary.Write(&want, binary.LittleEndian, math.Float32bits(v))
	}

	var got bytes.Buffer
	if err := net.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("fp32 snapshot not byte-identical to the v1 format (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if _, err := Load(bytes.NewReader(want.Bytes())); err != nil {
		t.Fatalf("v1 bytes rejected: %v", err)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, test := trainToy(t, 30)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.Predict(test.Images[:m.InputDim()], 1)
	b, _ := got.Predict(test.Images[:m.InputDim()], 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d: %v != %v", i, a[i], b[i])
		}
	}
}

// Quantized weights must land exactly on the grid the Uniform8 gradient
// codec produces — the "reuses the uniform8 machinery" claim, pinned
// against tensor.QuantizeUniform8 directly.
func TestQuantizeMatchesUniform8Codec(t *testing.T) {
	m, _ := trainToy(t, 20)
	net := m.Net()
	// Reference grids from the raw codec, before quantizing.
	refs := make(map[int][]float32)
	for i, l := range net.Layers {
		ql, ok := l.(QuantizableLayer)
		if !ok {
			continue
		}
		w := net.Params[net.Offsets[i] : net.Offsets[i]+ql.WeightCount()]
		ref := make([]float32, len(w))
		lo, hi := tensor.MinMax(w)
		scale := (hi - lo) / 255
		tensor.QuantizeUniform8(w, ref, lo, scale, 1/scale)
		refs[i] = ref
	}
	if n := m.QuantizeInt8(); n != len(refs) || n == 0 {
		t.Fatalf("quantized %d layers, want %d", n, len(refs))
	}
	for i, ref := range refs {
		w := net.Params[net.Offsets[i] : net.Offsets[i]+len(ref)]
		for j := range ref {
			if w[j] != ref[j] {
				t.Fatalf("layer %d weight %d: %v != codec %v", i, j, w[j], ref[j])
			}
		}
	}
	if m.QuantizeInt8() != len(refs) {
		t.Error("second QuantizeInt8 not a no-op")
	}
}

// An int8 snapshot stores one byte per weight and reconstructs the exact
// float values the quantized model was serving.
func TestInt8SnapshotRoundTrip(t *testing.T) {
	m, test := trainToy(t, 30)
	var fp32Buf bytes.Buffer
	if err := m.Save(&fp32Buf); err != nil {
		t.Fatal(err)
	}
	m.QuantizeInt8()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// ~4× smaller than fp32 on the weight-dominated payload.
	if buf.Len() >= fp32Buf.Len()*2/3 {
		t.Errorf("int8 snapshot %d bytes vs fp32 %d — not compressed", buf.Len(), fp32Buf.Len())
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Quantized() {
		t.Fatal("loaded model lost its quantized state")
	}
	net, gotNet := m.Net(), got.Net()
	for i := range net.Params {
		if net.Params[i] != gotNet.Params[i] {
			t.Fatalf("param %d: %v != %v", i, net.Params[i], gotNet.Params[i])
		}
	}
	a, _ := m.Predict(test.Images[:m.InputDim()], 1)
	b, _ := got.Predict(test.Images[:m.InputDim()], 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d: %v != %v", i, a[i], b[i])
		}
	}
}

// The accuracy envelope: int8 post-training quantization on a trained
// synthetic-MNIST-style model must stay within 3 points of fp32.
func TestInt8AccuracyEnvelope(t *testing.T) {
	m, test := trainToy(t, 150)
	fp32Acc := m.Evaluate(test.Images, test.Labels, 64)
	if fp32Acc < 0.8 {
		t.Fatalf("fp32 baseline %.3f too weak for an envelope test", fp32Acc)
	}
	m.QuantizeInt8()
	int8Acc := m.Evaluate(test.Images, test.Labels, 64)
	if int8Acc < fp32Acc-0.03 {
		t.Errorf("int8 accuracy %.3f fell more than 3 points below fp32 %.3f", int8Acc, fp32Acc)
	}
}
