package nn

import (
	"fmt"

	"scaledl/internal/tensor"
)

// PoolKind selects max or average pooling.
type PoolKind int

const (
	// MaxPool takes the maximum of each window.
	MaxPool PoolKind = iota
	// AvgPool takes the arithmetic mean of each window.
	AvgPool
)

// Pool2D is a spatial pooling layer over square windows, with optional
// zero-free padding: out-of-bounds taps are skipped (max ignores them,
// average divides by the actual tap count), so a 3×3/1 pad-1 max pool — the
// inception pooling branch — preserves spatial dimensions.
type Pool2D struct {
	name    string
	kind    PoolKind
	in, out Shape
	kernel  int
	stride  int
	pad     int
	outBuf  []float32
	dxBuf   []float32
	argmax  []int32 // winners for max pooling, b × outDim
	lastB   int
}

// NewPool2D creates an unpadded pooling layer.
func NewPool2D(in Shape, kind PoolKind, kernel, stride int) *Pool2D {
	return NewPool2DPad(in, kind, kernel, stride, 0)
}

// NewPool2DPad creates a pooling layer with padding.
func NewPool2DPad(in Shape, kind PoolKind, kernel, stride, pad int) *Pool2D {
	if kernel <= 0 || stride <= 0 || pad < 0 || pad >= kernel {
		panic("nn: invalid pool geometry")
	}
	oh := tensor.OutDim(in.H, kernel, stride, pad)
	ow := tensor.OutDim(in.W, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: pool output %dx%d for input %v", oh, ow, in))
	}
	kindName := "max"
	if kind == AvgPool {
		kindName = "avg"
	}
	return &Pool2D{
		name:   fmt.Sprintf("%spool%d/%d", kindName, kernel, stride),
		kind:   kind,
		in:     in,
		out:    Shape{C: in.C, H: oh, W: ow},
		kernel: kernel,
		stride: stride,
		pad:    pad,
	}
}

func (l *Pool2D) Name() string                 { return l.name }
func (l *Pool2D) OutShape() Shape              { return l.out }
func (l *Pool2D) ParamCount() int              { return 0 }
func (l *Pool2D) Bind(params, grads []float32) {}
func (l *Pool2D) Init(g *tensor.RNG)           {}

func (l *Pool2D) Forward(x []float32, b int, train bool) []float32 {
	inDim, outDim := l.in.Dim(), l.out.Dim()
	if len(x) != b*inDim {
		panic(fmt.Sprintf("nn: %s forward input %d for batch %d×%d", l.name, len(x), b, inDim))
	}
	out := buf(&l.outBuf, b*outDim)
	if l.kind == MaxPool && train {
		if cap(l.argmax) < b*outDim {
			l.argmax = make([]int32, b*outDim)
		}
		l.argmax = l.argmax[:b*outDim]
	}
	h, w := l.in.H, l.in.W
	oh, ow := l.out.H, l.out.W
	for i := 0; i < b; i++ {
		for c := 0; c < l.in.C; c++ {
			plane := x[i*inDim+c*h*w : i*inDim+(c+1)*h*w]
			outPlane := out[i*outDim+c*oh*ow : i*outDim+(c+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*l.stride-l.pad, ox*l.stride-l.pad
					switch l.kind {
					case MaxPool:
						var best float32
						bestIdx := int32(-1)
						for ky := 0; ky < l.kernel; ky++ {
							yy := y0 + ky
							if yy < 0 {
								continue
							}
							if yy >= h {
								break
							}
							for kx := 0; kx < l.kernel; kx++ {
								xx := x0 + kx
								if xx < 0 {
									continue
								}
								if xx >= w {
									break
								}
								if v := plane[yy*w+xx]; bestIdx < 0 || v > best {
									best = v
									bestIdx = int32(yy*w + xx)
								}
							}
						}
						outPlane[oy*ow+ox] = best
						if train {
							l.argmax[i*outDim+c*oh*ow+oy*ow+ox] = bestIdx
						}
					case AvgPool:
						var s float32
						var cnt float32
						for ky := 0; ky < l.kernel; ky++ {
							yy := y0 + ky
							if yy < 0 {
								continue
							}
							if yy >= h {
								break
							}
							for kx := 0; kx < l.kernel; kx++ {
								xx := x0 + kx
								if xx < 0 {
									continue
								}
								if xx >= w {
									break
								}
								s += plane[yy*w+xx]
								cnt++
							}
						}
						outPlane[oy*ow+ox] = s / cnt
					}
				}
			}
		}
	}
	l.lastB = b
	return out
}

func (l *Pool2D) Backward(dy []float32, b int) []float32 {
	if l.lastB != b {
		panic("nn: pool Backward batch mismatch with Forward")
	}
	inDim, outDim := l.in.Dim(), l.out.Dim()
	dx := buf(&l.dxBuf, b*inDim)
	for i := range dx {
		dx[i] = 0
	}
	h, w := l.in.H, l.in.W
	oh, ow := l.out.H, l.out.W
	for i := 0; i < b; i++ {
		for c := 0; c < l.in.C; c++ {
			dxPlane := dx[i*inDim+c*h*w : i*inDim+(c+1)*h*w]
			dyPlane := dy[i*outDim+c*oh*ow : i*outDim+(c+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dyPlane[oy*ow+ox]
					switch l.kind {
					case MaxPool:
						if idx := l.argmax[i*outDim+c*oh*ow+oy*ow+ox]; idx >= 0 {
							dxPlane[idx] += g
						}
					case AvgPool:
						y0, x0 := oy*l.stride-l.pad, ox*l.stride-l.pad
						cnt := 0
						for ky := 0; ky < l.kernel; ky++ {
							yy := y0 + ky
							if yy < 0 {
								continue
							}
							if yy >= h {
								break
							}
							for kx := 0; kx < l.kernel; kx++ {
								xx := x0 + kx
								if xx < 0 {
									continue
								}
								if xx >= w {
									break
								}
								cnt++
							}
						}
						share := g / float32(cnt)
						for ky := 0; ky < l.kernel; ky++ {
							yy := y0 + ky
							if yy < 0 {
								continue
							}
							if yy >= h {
								break
							}
							for kx := 0; kx < l.kernel; kx++ {
								xx := x0 + kx
								if xx < 0 {
									continue
								}
								if xx >= w {
									break
								}
								dxPlane[yy*w+xx] += share
							}
						}
					}
				}
			}
		}
	}
	return dx
}

func (l *Pool2D) FwdFLOPsPerSample() int64 {
	return int64(l.out.Dim()) * int64(l.kernel) * int64(l.kernel)
}
