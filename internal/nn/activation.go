package nn

import (
	"fmt"
	"math"

	"scaledl/internal/tensor"
)

// ReLU is the rectified linear activation used throughout the paper's
// networks.
type ReLU struct {
	in     Shape
	outBuf []float32
	dxBuf  []float32
	lastB  int
}

// NewReLU creates an elementwise ReLU layer.
func NewReLU(in Shape) *ReLU { return &ReLU{in: in} }

func (l *ReLU) Name() string                 { return "relu" }
func (l *ReLU) OutShape() Shape              { return l.in }
func (l *ReLU) ParamCount() int              { return 0 }
func (l *ReLU) Bind(params, grads []float32) {}
func (l *ReLU) Init(g *tensor.RNG)           {}

func (l *ReLU) Forward(x []float32, b int, train bool) []float32 {
	out := buf(&l.outBuf, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	l.lastB = b
	return out
}

func (l *ReLU) Backward(dy []float32, b int) []float32 {
	dx := buf(&l.dxBuf, len(dy))
	for i, v := range dy {
		if l.outBuf[i] > 0 {
			dx[i] = v
		} else {
			dx[i] = 0
		}
	}
	return dx
}

func (l *ReLU) FwdFLOPsPerSample() int64 { return int64(l.in.Dim()) }

// Tanh is the hyperbolic-tangent activation (classic LeNet used it).
type Tanh struct {
	in     Shape
	outBuf []float32
	dxBuf  []float32
}

// NewTanh creates an elementwise tanh layer.
func NewTanh(in Shape) *Tanh { return &Tanh{in: in} }

func (l *Tanh) Name() string                 { return "tanh" }
func (l *Tanh) OutShape() Shape              { return l.in }
func (l *Tanh) ParamCount() int              { return 0 }
func (l *Tanh) Bind(params, grads []float32) {}
func (l *Tanh) Init(g *tensor.RNG)           {}

func (l *Tanh) Forward(x []float32, b int, train bool) []float32 {
	out := buf(&l.outBuf, len(x))
	for i, v := range x {
		out[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

func (l *Tanh) Backward(dy []float32, b int) []float32 {
	dx := buf(&l.dxBuf, len(dy))
	for i, v := range dy {
		y := l.outBuf[i]
		dx[i] = v * (1 - y*y)
	}
	return dx
}

func (l *Tanh) FwdFLOPsPerSample() int64 { return 4 * int64(l.in.Dim()) }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	in     Shape
	outBuf []float32
	dxBuf  []float32
}

// NewSigmoid creates an elementwise sigmoid layer.
func NewSigmoid(in Shape) *Sigmoid { return &Sigmoid{in: in} }

func (l *Sigmoid) Name() string                 { return "sigmoid" }
func (l *Sigmoid) OutShape() Shape              { return l.in }
func (l *Sigmoid) ParamCount() int              { return 0 }
func (l *Sigmoid) Bind(params, grads []float32) {}
func (l *Sigmoid) Init(g *tensor.RNG)           {}

func (l *Sigmoid) Forward(x []float32, b int, train bool) []float32 {
	out := buf(&l.outBuf, len(x))
	for i, v := range x {
		out[i] = float32(1.0 / (1.0 + math.Exp(-float64(v))))
	}
	return out
}

func (l *Sigmoid) Backward(dy []float32, b int) []float32 {
	dx := buf(&l.dxBuf, len(dy))
	for i, v := range dy {
		y := l.outBuf[i]
		dx[i] = v * y * (1 - y)
	}
	return dx
}

func (l *Sigmoid) FwdFLOPsPerSample() int64 { return 4 * int64(l.in.Dim()) }

// Dropout randomly zeroes activations during training with probability p and
// scales survivors by 1/(1-p) (inverted dropout). Its mask stream is seeded
// per network, keeping distributed runs reproducible.
type Dropout struct {
	in     Shape
	p      float32
	g      *tensor.RNG
	mask   []float32
	outBuf []float32
	dxBuf  []float32
}

// NewDropout creates a dropout layer with drop probability p in [0, 1).
func NewDropout(in Shape, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout p=%v out of [0,1)", p))
	}
	return &Dropout{in: in, p: float32(p)}
}

func (l *Dropout) Name() string                 { return fmt.Sprintf("dropout%.2f", l.p) }
func (l *Dropout) OutShape() Shape              { return l.in }
func (l *Dropout) ParamCount() int              { return 0 }
func (l *Dropout) Bind(params, grads []float32) {}
func (l *Dropout) Init(g *tensor.RNG)           { l.g = g.Fork() }

func (l *Dropout) Forward(x []float32, b int, train bool) []float32 {
	out := buf(&l.outBuf, len(x))
	if !train || l.p == 0 {
		copy(out, x)
		return out
	}
	if cap(l.mask) < len(x) {
		l.mask = make([]float32, len(x))
	}
	l.mask = l.mask[:len(x)]
	keep := 1 - l.p
	scale := 1 / keep
	for i := range x {
		if l.g.Float32() < keep {
			l.mask[i] = scale
		} else {
			l.mask[i] = 0
		}
		out[i] = x[i] * l.mask[i]
	}
	return out
}

func (l *Dropout) Backward(dy []float32, b int) []float32 {
	dx := buf(&l.dxBuf, len(dy))
	for i, v := range dy {
		dx[i] = v * l.mask[i]
	}
	return dx
}

func (l *Dropout) FwdFLOPsPerSample() int64 { return int64(l.in.Dim()) }
