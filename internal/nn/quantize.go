package nn

import "scaledl/internal/quant"

// Post-training int8 quantization for the serving path: each weight matrix
// is snapped onto its own 256-level uniform grid (quant.Uniform8Grid — the
// same codec the gradient-compression extension ships over the wire), the
// level codes are kept so snapshots store one byte per weight, and
// inference keeps running through the packed fp32 GEMM engine on the
// dequantized grid values — dequant-on-pack with fp32 accumulation, so no
// kernel changes and no new numeric paths. Biases stay fp32: they are a
// vanishing fraction of the parameters and disproportionately
// accuracy-sensitive.

// QuantizableLayer marks a layer whose packed parameter view starts with a
// dense weight matrix eligible for int8 post-training quantization.
// WeightCount is the element count of that matrix; anything behind it
// (biases) stays fp32. Dense and Conv2D implement it; composite layers
// (Parallel) do not — their branch parameters stay fp32.
type QuantizableLayer interface {
	WeightCount() int
}

// LayerQuant records one layer's int8 weight grid: the grid origin and
// step, and the per-weight level codes. Params already hold the
// reconstructed grid values; Codes exist so Save can write one byte per
// weight and Load can rebuild those values bitwise.
type LayerQuant struct {
	Layer     int // index into Net.Layers
	Lo, Scale float32
	Codes     []uint8
}

// Quantized reports whether QuantizeInt8 has run on this net.
func (n *Net) Quantized() bool { return len(n.Quant) > 0 }

// QuantizeInt8 snaps every quantizable layer's weights onto a per-layer
// 256-level uniform grid in place, returning the number of layers
// quantized. Idempotent: a second call is a no-op (re-deriving a grid
// from grid values would wobble at the last ulp). Gradients and biases
// are untouched — this is a serving-time transform, not a training
// scheme.
func (n *Net) QuantizeInt8() int {
	if n.Quantized() {
		return len(n.Quant)
	}
	for i, l := range n.Layers {
		ql, ok := l.(QuantizableLayer)
		if !ok {
			continue
		}
		wc := ql.WeightCount()
		if wc == 0 {
			continue
		}
		w := n.Params[n.Offsets[i] : n.Offsets[i]+wc]
		lq := LayerQuant{Layer: i, Codes: make([]uint8, wc)}
		lq.Lo, lq.Scale = quant.Uniform8Grid(w, w)
		quant.Uniform8Codes(w, lq.Codes, lq.Lo, lq.Scale)
		// Re-dequantize from the codes so the params are exactly what a
		// snapshot round trip reconstructs.
		quant.Dequant8(lq.Codes, w, lq.Lo, lq.Scale)
		n.Quant = append(n.Quant, lq)
	}
	return len(n.Quant)
}
