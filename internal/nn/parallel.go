package nn

import (
	"fmt"

	"scaledl/internal/tensor"
)

// Parallel runs several layer chains (branches) on the same input and
// concatenates their outputs along the channel axis — the structure of
// GoogleNet's inception module, which the paper's ImageNet experiments
// train. All branches must preserve the spatial dimensions.
type Parallel struct {
	name     string
	in       Shape
	out      Shape
	branches [][]Layer
	chans    []int // output channels per branch

	outBuf []float32
	dxBuf  []float32
	dyBuf  []float32
	lastB  int
}

// NewParallel builds a parallel layer from per-branch layer chains.
func NewParallel(in Shape, branches [][]Layer) *Parallel {
	if len(branches) == 0 {
		panic("nn: parallel layer needs at least one branch")
	}
	p := &Parallel{name: fmt.Sprintf("parallel-%d", len(branches)), in: in, branches: branches}
	h, w := 0, 0
	for bi, chain := range branches {
		shape := in
		for _, l := range chain {
			shape = l.OutShape()
		}
		if bi == 0 {
			h, w = shape.H, shape.W
		} else if shape.H != h || shape.W != w {
			panic(fmt.Sprintf("nn: parallel branch %d output %v mismatches %dx%d", bi, shape, h, w))
		}
		p.chans = append(p.chans, shape.C)
		p.out.C += shape.C
	}
	p.out.H, p.out.W = h, w
	return p
}

func (p *Parallel) Name() string    { return p.name }
func (p *Parallel) OutShape() Shape { return p.out }

func (p *Parallel) ParamCount() int {
	total := 0
	for _, chain := range p.branches {
		for _, l := range chain {
			total += l.ParamCount()
		}
	}
	return total
}

func (p *Parallel) Bind(params, grads []float32) {
	off := 0
	for _, chain := range p.branches {
		for _, l := range chain {
			n := l.ParamCount()
			l.Bind(params[off:off+n], grads[off:off+n])
			off += n
		}
	}
}

func (p *Parallel) Init(g *tensor.RNG) {
	for _, chain := range p.branches {
		for _, l := range chain {
			l.Init(g)
		}
	}
}

func (p *Parallel) Forward(x []float32, b int, train bool) []float32 {
	outDim := p.out.Dim()
	out := buf(&p.outBuf, b*outDim)
	spatial := p.out.H * p.out.W
	chOff := 0
	for bi, chain := range p.branches {
		cur := x
		for _, l := range chain {
			cur = l.Forward(cur, b, train)
		}
		// Concatenate along channels: per sample, branch bi's block starts
		// at channel chOff.
		bc := p.chans[bi]
		for i := 0; i < b; i++ {
			src := cur[i*bc*spatial : (i+1)*bc*spatial]
			dst := out[i*outDim+chOff*spatial : i*outDim+(chOff+bc)*spatial]
			copy(dst, src)
		}
		chOff += bc
	}
	p.lastB = b
	return out
}

func (p *Parallel) Backward(dy []float32, b int) []float32 {
	if p.lastB != b {
		panic("nn: parallel Backward batch mismatch with Forward")
	}
	inDim, outDim := p.in.Dim(), p.out.Dim()
	spatial := p.out.H * p.out.W
	dx := buf(&p.dxBuf, b*inDim)
	for i := range dx {
		dx[i] = 0
	}
	chOff := 0
	for bi, chain := range p.branches {
		bc := p.chans[bi]
		// Slice this branch's channel block out of dy.
		bdy := buf(&p.dyBuf, b*bc*spatial)
		for i := 0; i < b; i++ {
			src := dy[i*outDim+chOff*spatial : i*outDim+(chOff+bc)*spatial]
			copy(bdy[i*bc*spatial:(i+1)*bc*spatial], src)
		}
		cur := bdy
		for li := len(chain) - 1; li >= 0; li-- {
			cur = chain[li].Backward(cur, b)
		}
		tensor.AXPY(1, cur, dx) // branches share the input: gradients add
		chOff += bc
	}
	return dx
}

func (p *Parallel) FwdFLOPsPerSample() int64 {
	var s int64
	for _, chain := range p.branches {
		for _, l := range chain {
			s += l.FwdFLOPsPerSample()
		}
	}
	return s
}

// buildChain constructs a branch from specs starting at the given shape.
func buildChain(in Shape, specs []LayerSpec) []Layer {
	var chain []Layer
	shape := in
	for _, s := range specs {
		l := buildLayer(shape, s)
		chain = append(chain, l)
		shape = l.OutShape()
	}
	return chain
}

// Inception returns the LayerSpec of a GoogleNet inception module with the
// standard four branches: 1×1, 1×1→3×3, 1×1→5×5 and 3×3maxpool→1×1
// projection.
func Inception(c1, r3, c3, r5, c5, pp int) LayerSpec {
	return LayerSpec{
		Kind: "parallel",
		Branches: [][]LayerSpec{
			{{Kind: "conv", Filters: c1, Kernel: 1, Stride: 1}, {Kind: "relu"}},
			{{Kind: "conv", Filters: r3, Kernel: 1, Stride: 1}, {Kind: "relu"},
				{Kind: "conv", Filters: c3, Kernel: 3, Stride: 1, Pad: 1}, {Kind: "relu"}},
			{{Kind: "conv", Filters: r5, Kernel: 1, Stride: 1}, {Kind: "relu"},
				{Kind: "conv", Filters: c5, Kernel: 5, Stride: 1, Pad: 2}, {Kind: "relu"}},
			{{Kind: "maxpool", Kernel: 3, Stride: 1, Pad: 1},
				{Kind: "conv", Filters: pp, Kernel: 1, Stride: 1}, {Kind: "relu"}},
		},
	}
}

// MiniGoogleNet is a small executable inception network: a conv stem, two
// inception modules with a pool between them, global average pooling and a
// classifier. It is the runnable counterpart of the GoogleNetCost table
// (which keeps the full published dimensions for the simulator).
func MiniGoogleNet(in Shape, classes int) NetDef {
	return NetDef{
		Name:    "mini-googlenet",
		In:      in,
		Classes: classes,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 8, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			Inception(4, 4, 8, 2, 4, 4), // out 20 channels
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			Inception(8, 6, 12, 2, 6, 6), // out 32 channels
			{Kind: "globalavgpool"},
			{Kind: "dense", Units: classes},
		},
	}
}
