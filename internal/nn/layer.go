// Package nn is the neural-network framework substrate: layers with real
// forward/backward passes, networks whose parameters live in one contiguous
// packed buffer (the paper's §5.2 "single-layer layout" optimization), and a
// model zoo covering the paper's workloads (LeNet, CIFAR AlexNet executed
// for real; ImageNet AlexNet, VGG-19 and GoogleNet as exact-dimension cost
// tables for the simulator).
//
// Layers expose per-sample FLOP counts and parameter sizes so the hardware
// model in internal/hw can charge simulated compute time and the
// communication planner in internal/comm can build per-layer or packed
// message plans.
package nn

import (
	"fmt"

	"scaledl/internal/tensor"
)

// Shape is a CHW activation shape.
type Shape struct {
	C, H, W int
}

// Dim returns the flattened element count.
func (s Shape) Dim() int { return s.C * s.H * s.W }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Layer is one differentiable stage of a network. Forward and Backward
// operate on flattened batches: x is b × InShape.Dim() row-major, the return
// of Forward is b × OutShape().Dim(). Backward consumes dL/dy and returns
// dL/dx, accumulating parameter gradients into the packed gradient views
// bound by Bind.
type Layer interface {
	// Name identifies the layer in breakdowns and message plans.
	Name() string
	// OutShape is the activation shape produced by the layer.
	OutShape() Shape
	// ParamCount is the number of float32 parameters (0 for stateless layers).
	ParamCount() int
	// Bind points the layer at its slices of the network's packed parameter
	// and gradient buffers. Called once by Net construction.
	Bind(params, grads []float32)
	// Init fills bound parameters (Xavier for weights, zero for biases).
	Init(g *tensor.RNG)
	// Forward runs the layer on a batch of b samples. When train is false
	// the layer may skip bookkeeping needed only for Backward.
	Forward(x []float32, b int, train bool) []float32
	// Backward propagates gradients; must be called after a Forward with
	// train=true on the same batch.
	Backward(dy []float32, b int) []float32
	// FwdFLOPsPerSample is the forward multiply-add cost (2·MACs) of one
	// sample; the backward pass is charged 2× this by the cost model,
	// matching the usual fwd:bwd ≈ 1:2 ratio.
	FwdFLOPsPerSample() int64
}

// FactorLayer is implemented by layers whose weight gradient is a low-rank
// outer product of two backward-pass activations — dW = dYᵀ·X for a dense
// layer with batch b: dY is b×F, X is b×D, dW is F×D. Communicating the
// factors costs O(b·(F+D)) wire instead of O(F·D), the sufficient-factor
// observation of Poseidon; the comm tier reconstructs the dense gradient on
// the receiver through the same GEMM the layer itself used, so the result is
// bit-identical to shipping dW.
type FactorLayer interface {
	// BackwardFactors returns zero-copy views of the factors from the most
	// recent Backward call: dy (b×F), x (b×D), plus their dimensions. Valid
	// until the layer's next Forward/Backward.
	BackwardFactors() (dy, x []float32, b, f, d int)
	// FactorShape returns the static factor dimensions (F, D) — available
	// before any Backward, for cost models sizing the factor payload
	// b·(F+D) against the dense gradient F·D+F.
	FactorShape() (f, d int)
}

// buf grows a scratch slice to n elements, reusing capacity.
func buf(p *[]float32, n int) []float32 {
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return *p
}
