package nn

import (
	"fmt"
	"io"
)

// Model is the opaque inference-side handle on a trained network — the
// type the facade exports so training output composes with the serving
// path without external importers ever naming *Net. It owns the net's
// forward buffers: Predict and PredictInto are cheap (no per-call
// allocation once the layer buffers have warmed to the largest batch
// seen), but NOT safe for concurrent use — the serving batcher serializes
// all inference through one dispatcher goroutine for exactly this reason.
type Model struct {
	net *Net
}

// NewModel wraps an instantiated network. The model aliases the net (no
// copy): training code that keeps mutating the net mutates what the model
// serves.
func NewModel(n *Net) *Model {
	if n == nil {
		panic("nn: NewModel on nil net")
	}
	return &Model{net: n}
}

// LoadModel restores a model from a snapshot written by Save (either the
// fp32 or the int8 format).
func LoadModel(r io.Reader) (*Model, error) {
	n, err := Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{net: n}, nil
}

// Save writes the model to w: the fp32 snapshot format, or the int8
// format after QuantizeInt8. Both round-trip through LoadModel exactly.
func (m *Model) Save(w io.Writer) error { return m.net.Save(w) }

// Net exposes the underlying network for in-module plumbing (the facade
// does not re-export it).
func (m *Model) Net() *Net { return m.net }

// Def returns the architecture definition.
func (m *Model) Def() NetDef { return m.net.Def }

// InputDim is the flattened per-sample input length Predict expects.
func (m *Model) InputDim() int { return m.net.Def.In.Dim() }

// Classes is the per-sample output length (logits per prediction).
func (m *Model) Classes() int { return m.net.Def.Classes }

// ParamCount is the total trainable-parameter count.
func (m *Model) ParamCount() int { return m.net.ParamCount() }

// Quantized reports whether QuantizeInt8 has run.
func (m *Model) Quantized() bool { return m.net.Quantized() }

// QuantizeInt8 applies post-training int8 quantization to the model's
// dense and conv weight matrices in place (per-layer 256-level uniform
// grids, biases kept fp32, inference still fp32-accumulate on the
// dequantized values) and returns the number of layers quantized. A
// second call is a no-op.
func (m *Model) QuantizeInt8() int { return m.net.QuantizeInt8() }

// Predict runs a batched forward pass over b samples packed row-major in
// x (len b×InputDim) and returns a fresh b×Classes logit slice. The
// batch is a pure throughput lever: at fp32 a batch-of-N forward is
// bit-identical to N batch-of-1 forwards (per-sample rows never mix —
// pinned by TestBatchForwardBitIdentical), so callers can coalesce freely.
func (m *Model) Predict(x []float32, b int) ([]float32, error) {
	out := make([]float32, b*m.Classes())
	if err := m.PredictInto(x, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictInto is Predict writing the logits into out (len b×Classes) —
// the allocation-free form the serving batcher's hot path uses.
func (m *Model) PredictInto(x []float32, b int, out []float32) error {
	if b <= 0 {
		return fmt.Errorf("nn: predict batch %d", b)
	}
	if len(x) != b*m.InputDim() {
		return fmt.Errorf("nn: predict input %d, want %d×%d", len(x), b, m.InputDim())
	}
	if len(out) != b*m.Classes() {
		return fmt.Errorf("nn: predict output %d, want %d×%d", len(out), b, m.Classes())
	}
	copy(out, m.net.Forward(x, b, false))
	return nil
}

// Evaluate computes classification accuracy over the given samples in
// batches of evalBatch.
func (m *Model) Evaluate(images []float32, labels []int, evalBatch int) float64 {
	return m.net.Evaluate(images, labels, evalBatch)
}
