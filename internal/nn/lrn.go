package nn

import (
	"fmt"
	"math"

	"scaledl/internal/tensor"
)

// LRN is AlexNet's local response normalization across channels:
//
//	y_i = x_i / (k + (alpha/n) * Σ_{j∈window(i)} x_j²)^beta
//
// with the sum over a window of n adjacent channels at the same spatial
// position.
type LRN struct {
	in          Shape
	n           int
	alpha, beta float64
	k           float64
	outBuf      []float32
	dxBuf       []float32
	denom       []float32 // (k + α/n·Σx²) per activation
	lastX       []float32
	lastB       int
}

// NewLRN creates an LRN layer with the standard AlexNet constants when zero
// values are passed (n=5, alpha=1e-4, beta=0.75, k=2... Caffe uses k=1).
func NewLRN(in Shape, n int, alpha, beta, k float64) *LRN {
	if n <= 0 {
		n = 5
	}
	if alpha == 0 {
		alpha = 1e-4
	}
	if beta == 0 {
		beta = 0.75
	}
	if k == 0 {
		k = 1
	}
	return &LRN{in: in, n: n, alpha: alpha, beta: beta, k: k}
}

func (l *LRN) Name() string                 { return fmt.Sprintf("lrn%d", l.n) }
func (l *LRN) OutShape() Shape              { return l.in }
func (l *LRN) ParamCount() int              { return 0 }
func (l *LRN) Bind(params, grads []float32) {}
func (l *LRN) Init(g *tensor.RNG)           {}

func (l *LRN) Forward(x []float32, b int, train bool) []float32 {
	dim := l.in.Dim()
	if len(x) != b*dim {
		panic("nn: lrn forward size mismatch")
	}
	out := buf(&l.outBuf, len(x))
	den := buf(&l.denom, len(x))
	c, spatial := l.in.C, l.in.H*l.in.W
	half := l.n / 2
	scale := l.alpha / float64(l.n)
	for i := 0; i < b; i++ {
		base := i * dim
		for s := 0; s < spatial; s++ {
			for ch := 0; ch < c; ch++ {
				lo := ch - half
				hi := ch + half
				if lo < 0 {
					lo = 0
				}
				if hi >= c {
					hi = c - 1
				}
				var ss float64
				for j := lo; j <= hi; j++ {
					v := float64(x[base+j*spatial+s])
					ss += v * v
				}
				d := l.k + scale*ss
				den[base+ch*spatial+s] = float32(d)
				out[base+ch*spatial+s] = x[base+ch*spatial+s] * float32(math.Pow(d, -l.beta))
			}
		}
	}
	if train {
		l.lastX, l.lastB = x, b
	}
	return out
}

func (l *LRN) Backward(dy []float32, b int) []float32 {
	if l.lastB != b {
		panic("nn: lrn Backward batch mismatch with Forward")
	}
	dim := l.in.Dim()
	dx := buf(&l.dxBuf, len(dy))
	c, spatial := l.in.C, l.in.H*l.in.W
	half := l.n / 2
	scale := l.alpha / float64(l.n)
	for i := 0; i < b; i++ {
		base := i * dim
		for s := 0; s < spatial; s++ {
			// dx_i = dy_i·d_i^-β − 2αβ/n · x_i · Σ_{j: i∈window(j)} dy_j·y_j/d_j
			// where y_j = x_j·d_j^-β, so dy_j·y_j/d_j = dy_j·x_j·d_j^{-β-1}.
			for ch := 0; ch < c; ch++ {
				idx := base + ch*spatial + s
				d := float64(l.denom[idx])
				grad := float64(dy[idx]) * math.Pow(d, -l.beta)
				var cross float64
				lo := ch - half
				hi := ch + half
				if lo < 0 {
					lo = 0
				}
				if hi >= c {
					hi = c - 1
				}
				for j := lo; j <= hi; j++ {
					jdx := base + j*spatial + s
					dj := float64(l.denom[jdx])
					cross += float64(dy[jdx]) * float64(l.lastX[jdx]) * math.Pow(dj, -l.beta-1)
				}
				grad -= 2 * scale * l.beta * float64(l.lastX[idx]) * cross
				dx[idx] = float32(grad)
			}
		}
	}
	return dx
}

func (l *LRN) FwdFLOPsPerSample() int64 {
	return int64(l.in.Dim()) * int64(2*l.n+4)
}
