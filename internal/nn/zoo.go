package nn

import "fmt"

// This file is the model zoo. LeNet and the CIFAR networks are fully
// executable (real forward/backward); AlexNet, VGG-19 and GoogleNet are
// defined as exact-dimension cost tables used by the simulator, with
// parameter counts matching the published architectures (AlexNet ≈ 61.0M
// params ≈ 244 MB and VGG-19 ≈ 143.7M ≈ 575 MB — the sizes the paper quotes
// as "249 MB" and "575 MB"; GoogleNet ≈ 7.0M ≈ 27 MB).

// LeNet returns the classic Caffe LeNet definition used by the paper for
// MNIST: conv20-5, pool2, conv50-5, pool2, fc500, relu, fc10 (431,080
// parameters).
func LeNet(in Shape, classes int) NetDef {
	return NetDef{
		Name:    "lenet",
		In:      in,
		Classes: classes,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 20, Kernel: 5, Stride: 1, Pad: 0},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "conv", Filters: 50, Kernel: 5, Stride: 1, Pad: 0},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "dense", Units: 500},
			{Kind: "relu"},
			{Kind: "dense", Units: classes},
		},
	}
}

// TinyCNN returns a small convnet that adapts to any input shape:
// conv8-3/p1, relu, pool2, conv16-3/p1, relu, pool2, fc-classes. It is the
// scaled-down stand-in used when experiments need thousands of real training
// iterations in seconds of wall clock (the accuracy-versus-time figures);
// DESIGN.md documents this substitution.
func TinyCNN(in Shape, classes int) NetDef {
	return NetDef{
		Name:    "tinycnn",
		In:      in,
		Classes: classes,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 8, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "conv", Filters: 16, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "dense", Units: classes},
		},
	}
}

// CIFARQuick returns the Caffe cifar10_quick-style network the paper's KNL
// CIFAR runs build on: three 5×5 conv stages with pooling, then fc64, fc10.
func CIFARQuick(in Shape, classes int) NetDef {
	return NetDef{
		Name:    "cifar-quick",
		In:      in,
		Classes: classes,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 32, Kernel: 5, Stride: 1, Pad: 2},
			{Kind: "maxpool", Kernel: 3, Stride: 2},
			{Kind: "relu"},
			{Kind: "conv", Filters: 32, Kernel: 5, Stride: 1, Pad: 2},
			{Kind: "relu"},
			{Kind: "avgpool", Kernel: 3, Stride: 2},
			{Kind: "conv", Filters: 64, Kernel: 5, Stride: 1, Pad: 2},
			{Kind: "relu"},
			{Kind: "avgpool", Kernel: 3, Stride: 2},
			{Kind: "dense", Units: 64},
			{Kind: "dense", Units: classes},
		},
	}
}

// AlexNetCost returns the cost table of BVLC AlexNet for 227×227 ImageNet
// input, with the original grouped convolutions. 60,965,224 parameters.
func AlexNetCost() ModelCost {
	return ModelCost{
		Name:     "alexnet",
		Classes:  1000,
		InputDim: 3 * 227 * 227,
		Layers: []LayerCost{
			convCost("conv1-96x11/4", 3, 96, 11, 55, 55, 1),
			{Name: "lrn1", FwdFLOPs: 96 * 55 * 55 * 14},
			poolCost("pool1-3/2", 96, 27, 27, 3),
			convCost("conv2-256x5g2", 96, 256, 5, 27, 27, 2),
			{Name: "lrn2", FwdFLOPs: 256 * 27 * 27 * 14},
			poolCost("pool2-3/2", 256, 13, 13, 3),
			convCost("conv3-384x3", 256, 384, 3, 13, 13, 1),
			convCost("conv4-384x3g2", 384, 384, 3, 13, 13, 2),
			convCost("conv5-256x3g2", 384, 256, 3, 13, 13, 2),
			poolCost("pool5-3/2", 256, 6, 6, 3),
			denseCost("fc6", 256*6*6, 4096),
			denseCost("fc7", 4096, 4096),
			denseCost("fc8", 4096, 1000),
		},
	}
}

// VGG19Cost returns the cost table of VGG-19 (configuration E) for 224×224
// input: 143,667,240 parameters ≈ 575 MB float32, the paper's headline
// "large DNN model".
func VGG19Cost() ModelCost {
	m := ModelCost{Name: "vgg19", Classes: 1000, InputDim: 3 * 224 * 224}
	type stage struct {
		convs, channels, spatial int
	}
	in := 3
	spatialIn := 224
	for si, st := range []stage{{2, 64, 224}, {2, 128, 112}, {4, 256, 56}, {4, 512, 28}, {4, 512, 14}} {
		for c := 0; c < st.convs; c++ {
			m.Layers = append(m.Layers, convCost(
				fmt.Sprintf("conv%d_%d-%dx3", si+1, c+1, st.channels),
				in, st.channels, 3, st.spatial, st.spatial, 1))
			in = st.channels
		}
		m.Layers = append(m.Layers, poolCost(fmt.Sprintf("pool%d", si+1), st.channels, st.spatial/2, st.spatial/2, 2))
		spatialIn = st.spatial / 2
	}
	m.Layers = append(m.Layers,
		denseCost("fc6", 512*spatialIn*spatialIn, 4096),
		denseCost("fc7", 4096, 4096),
		denseCost("fc8", 4096, 1000),
	)
	return m
}

// inceptionCost emits the cost entries of one GoogleNet inception module.
func inceptionCost(name string, in, c1, r3, c3, r5, c5, pp, spatial int) []LayerCost {
	return []LayerCost{
		convCost(name+"-1x1", in, c1, 1, spatial, spatial, 1),
		convCost(name+"-3x3r", in, r3, 1, spatial, spatial, 1),
		convCost(name+"-3x3", r3, c3, 3, spatial, spatial, 1),
		convCost(name+"-5x5r", in, r5, 1, spatial, spatial, 1),
		convCost(name+"-5x5", r5, c5, 5, spatial, spatial, 1),
		poolCost(name+"-pool", in, spatial, spatial, 3),
		convCost(name+"-poolproj", in, pp, 1, spatial, spatial, 1),
	}
}

// GoogleNetCost returns the cost table of GoogleNet (Inception v1, 22
// layers) for 224×224 input: ≈ 7.0M parameters ≈ 27 MB float32. Auxiliary
// classifier heads are excluded, as in deploy-time Caffe models.
func GoogleNetCost() ModelCost {
	m := ModelCost{Name: "googlenet", Classes: 1000, InputDim: 3 * 224 * 224}
	m.Layers = append(m.Layers,
		convCost("conv1-64x7/2", 3, 64, 7, 112, 112, 1),
		poolCost("pool1-3/2", 64, 56, 56, 3),
		convCost("conv2r-64x1", 64, 64, 1, 56, 56, 1),
		convCost("conv2-192x3", 64, 192, 3, 56, 56, 1),
		poolCost("pool2-3/2", 192, 28, 28, 3),
	)
	m.Layers = append(m.Layers, inceptionCost("inc3a", 192, 64, 96, 128, 16, 32, 32, 28)...)
	m.Layers = append(m.Layers, inceptionCost("inc3b", 256, 128, 128, 192, 32, 96, 64, 28)...)
	m.Layers = append(m.Layers, poolCost("pool3-3/2", 480, 14, 14, 3))
	m.Layers = append(m.Layers, inceptionCost("inc4a", 480, 192, 96, 208, 16, 48, 64, 14)...)
	m.Layers = append(m.Layers, inceptionCost("inc4b", 512, 160, 112, 224, 24, 64, 64, 14)...)
	m.Layers = append(m.Layers, inceptionCost("inc4c", 512, 128, 128, 256, 24, 64, 64, 14)...)
	m.Layers = append(m.Layers, inceptionCost("inc4d", 512, 112, 144, 288, 32, 64, 64, 14)...)
	m.Layers = append(m.Layers, inceptionCost("inc4e", 528, 256, 160, 320, 32, 128, 128, 14)...)
	m.Layers = append(m.Layers, poolCost("pool4-3/2", 832, 7, 7, 3))
	m.Layers = append(m.Layers, inceptionCost("inc5a", 832, 256, 160, 320, 32, 128, 128, 7)...)
	m.Layers = append(m.Layers, inceptionCost("inc5b", 832, 384, 192, 384, 48, 128, 128, 7)...)
	m.Layers = append(m.Layers,
		poolCost("pool5-7x7", 1024, 1, 1, 7),
		denseCost("fc", 1024, 1000),
	)
	return m
}

// LeNetCost returns LeNet's cost table without instantiating weights.
func LeNetCost() ModelCost {
	return ModelCost{
		Name:     "lenet",
		Classes:  10,
		InputDim: 28 * 28,
		Layers: []LayerCost{
			convCost("conv1-20x5", 1, 20, 5, 24, 24, 1),
			poolCost("pool1-2/2", 20, 12, 12, 2),
			convCost("conv2-50x5", 20, 50, 5, 8, 8, 1),
			poolCost("pool2-2/2", 50, 4, 4, 2),
			denseCost("fc1", 800, 500),
			denseCost("fc2", 500, 10),
		},
	}
}
