package nn

import (
	"math"
	"testing"

	"scaledl/internal/tensor"
)

// numericalGradCheck verifies a whole network's analytic gradients (both
// parameter and input gradients) against central finite differences on a
// tiny batch. This is the strongest correctness evidence the framework has:
// if it passes for a net containing a layer type, that layer's backward pass
// is consistent with its forward pass.
func numericalGradCheck(t *testing.T, def NetDef, b int, tol float64) {
	t.Helper()
	net := def.Build(123)
	g := tensor.NewRNG(77)
	x := make([]float32, b*def.In.Dim())
	g.FillNormal(x, 0, 1)
	labels := make([]int, b)
	for i := range labels {
		labels[i] = g.Intn(def.Classes)
	}

	net.ZeroGrad()
	net.LossAndGrad(x, labels, b)
	analytic := append([]float32(nil), net.Grads...)

	const eps = 1e-3
	// Check a deterministic subset of parameters (all if small).
	checkEvery := 1
	if len(net.Params) > 400 {
		checkEvery = len(net.Params) / 400
	}
	bad := 0
	for i := 0; i < len(net.Params); i += checkEvery {
		orig := net.Params[i]
		net.Params[i] = orig + eps
		lp, _ := net.Loss(x, labels, b)
		net.Params[i] = orig - eps
		lm, _ := net.Loss(x, labels, b)
		net.Params[i] = orig
		numeric := (lp - lm) / (2 * eps)
		diff := math.Abs(numeric - float64(analytic[i]))
		// float32 forward passes limit finite-difference resolution to about
		// 1e-4; below that, disagreement is numerical noise, not a bug.
		if diff < 2e-4 {
			continue
		}
		scale := math.Max(1e-4, math.Abs(numeric)+math.Abs(float64(analytic[i])))
		if diff/scale > tol {
			bad++
			if bad <= 5 {
				t.Errorf("%s: param %d: numeric %.6g vs analytic %.6g", def.Name, i, numeric, analytic[i])
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d parameter gradients out of tolerance", def.Name, bad)
	}
}

func TestGradCheckConvDense(t *testing.T) {
	// Smooth activations only: ReLU/maxpool kinks make finite differences
	// unreliable near ties, so those layers get dedicated routing tests
	// below instead.
	def := NetDef{
		Name: "gc-conv", In: Shape{C: 2, H: 7, W: 7}, Classes: 3,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 4, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "tanh"},
			{Kind: "avgpool", Kernel: 2, Stride: 2},
			{Kind: "dense", Units: 3},
		},
	}
	numericalGradCheck(t, def, 3, 0.05)
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	// 1×4×4 input, 2×2/2 pooling: the gradient of each output cell must land
	// exactly on that window's argmax and nowhere else.
	l := NewPool2D(Shape{C: 1, H: 4, W: 4}, MaxPool, 2, 2)
	x := []float32{
		1, 2, 0, 0,
		3, 4, 0, 9,
		5, 0, 0, 0,
		0, 6, 7, 8,
	}
	out := l.Forward(x, 1, true)
	want := []float32{4, 9, 6, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("maxpool forward[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	dy := []float32{10, 20, 30, 40}
	dx := l.Backward(dy, 1)
	wantDx := []float32{
		0, 0, 0, 0,
		0, 10, 0, 20,
		0, 0, 0, 0,
		0, 30, 0, 40,
	}
	for i := range wantDx {
		if dx[i] != wantDx[i] {
			t.Fatalf("maxpool backward[%d] = %v, want %v", i, dx[i], wantDx[i])
		}
	}
}

func TestReLUBackwardMask(t *testing.T) {
	l := NewReLU(Shape{C: 1, H: 1, W: 4})
	x := []float32{-1, 2, -3, 4}
	out := l.Forward(x, 1, true)
	if out[0] != 0 || out[1] != 2 || out[2] != 0 || out[3] != 4 {
		t.Fatalf("relu forward %v", out)
	}
	dx := l.Backward([]float32{5, 6, 7, 8}, 1)
	if dx[0] != 0 || dx[1] != 6 || dx[2] != 0 || dx[3] != 8 {
		t.Fatalf("relu backward %v", dx)
	}
}

func TestGradCheckStridedPaddedConv(t *testing.T) {
	def := NetDef{
		Name: "gc-stride", In: Shape{C: 1, H: 9, W: 9}, Classes: 4,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 3, Kernel: 3, Stride: 2, Pad: 1},
			{Kind: "tanh"},
			{Kind: "dense", Units: 4},
		},
	}
	numericalGradCheck(t, def, 2, 0.05)
}

func TestGradCheckAvgPoolSigmoid(t *testing.T) {
	def := NetDef{
		Name: "gc-avg", In: Shape{C: 2, H: 8, W: 8}, Classes: 3,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 3, Kernel: 3, Stride: 1, Pad: 0},
			{Kind: "sigmoid"},
			{Kind: "avgpool", Kernel: 3, Stride: 2},
			{Kind: "dense", Units: 3},
		},
	}
	numericalGradCheck(t, def, 2, 0.05)
}

func TestGradCheckLRN(t *testing.T) {
	def := NetDef{
		Name: "gc-lrn", In: Shape{C: 6, H: 4, W: 4}, Classes: 3,
		Specs: []LayerSpec{
			{Kind: "conv", Filters: 6, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "lrn", N: 5},
			{Kind: "dense", Units: 3},
		},
	}
	numericalGradCheck(t, def, 2, 0.06)
}

func TestGradCheckDenseStack(t *testing.T) {
	def := NetDef{
		Name: "gc-mlp", In: Shape{C: 1, H: 4, W: 5}, Classes: 5,
		Specs: []LayerSpec{
			{Kind: "dense", Units: 16},
			{Kind: "relu"},
			{Kind: "dense", Units: 8},
			{Kind: "tanh"},
			{Kind: "dense", Units: 5},
		},
	}
	numericalGradCheck(t, def, 4, 0.05)
}

// Dropout in eval mode must be the identity; in train mode the expected
// activation magnitude is preserved by inverted scaling.
func TestDropoutSemantics(t *testing.T) {
	in := Shape{C: 1, H: 10, W: 10}
	l := NewDropout(in, 0.5)
	l.Init(tensor.NewRNG(9))
	x := make([]float32, 100)
	for i := range x {
		x[i] = 1
	}
	out := l.Forward(x, 1, false)
	for i, v := range out {
		if v != 1 {
			t.Fatalf("eval-mode dropout modified activation %d: %v", i, v)
		}
	}
	var kept, sum float64
	trials := 200
	for trial := 0; trial < trials; trial++ {
		out = l.Forward(x, 1, true)
		for _, v := range out {
			if v != 0 {
				kept++
			}
			sum += float64(v)
		}
	}
	total := float64(trials * 100)
	if r := kept / total; r < 0.45 || r > 0.55 {
		t.Errorf("keep rate %.3f, want ≈0.5", r)
	}
	if m := sum / total; m < 0.9 || m > 1.1 {
		t.Errorf("mean activation %.3f after inverted dropout, want ≈1", m)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	in := Shape{C: 1, H: 4, W: 4}
	l := NewDropout(in, 0.5)
	l.Init(tensor.NewRNG(3))
	x := make([]float32, 16)
	for i := range x {
		x[i] = 1
	}
	out := l.Forward(x, 1, true)
	dy := make([]float32, 16)
	for i := range dy {
		dy[i] = 1
	}
	dx := l.Backward(dy, 1)
	for i := range dx {
		if (out[i] == 0) != (dx[i] == 0) {
			t.Fatalf("gradient mask inconsistent with forward mask at %d", i)
		}
	}
}
