package nn

import (
	"testing"

	"scaledl/internal/data"
	"scaledl/internal/par"
)

// trainParams runs a short real training loop and returns the final
// parameter vector. Used to compare pooled against inline execution of the
// conv batch fan-out and the GEMM row fan-out at a fixed width.
func trainParams(train *data.Dataset, def NetDef) []float32 {
	net := def.Build(99)
	s := data.NewSampler(train, 7)
	var batch *data.Batch
	for i := 0; i < 8; i++ {
		batch = s.Next(8, batch)
		net.ZeroGrad()
		net.LossAndGrad(batch.X, batch.Labels, 8)
		net.SGDStep(0.05)
	}
	return append([]float32(nil), net.Params...)
}

// TestPooledTrainingBitIdenticalToSerial pins the par width to 4 — so
// conv/GEMM chunk layouts and partial-merge orders are fixed — and checks
// that running the fan-outs on live pool goroutines produces bit-identical
// parameters to inline execution. With -race this also exercises the
// layer-level concurrency (nested worker × conv-chunk × GEMM-row fan-outs)
// even on a single-core host, where the default width of 1 would keep
// everything inline.
func TestPooledTrainingBitIdenticalToSerial(t *testing.T) {
	spec := data.Spec{Name: "toy", Channels: 1, Height: 12, Width: 12, Classes: 4}
	train, _ := data.Synthetic(data.Config{Spec: spec, TrainN: 128, TestN: 32, Seed: 5})

	for _, def := range []NetDef{
		TinyCNN(Shape{C: 1, H: 12, W: 12}, 4),
		MiniGoogleNet(Shape{C: 1, H: 12, W: 12}, 4), // inception: parallel branches
	} {
		par.SetWidth(4)
		par.SetSerial(true)
		serial := trainParams(train, def)
		par.SetSerial(false)
		pooled := trainParams(train, def)
		par.SetWidth(0)
		for i := range serial {
			if serial[i] != pooled[i] {
				t.Fatalf("%s: pooled training diverges from serial at param %d: %v vs %v",
					def.Name, i, pooled[i], serial[i])
			}
		}
	}
}
