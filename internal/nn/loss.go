package nn

import "math"

// SoftmaxXent combines a softmax with cross-entropy loss against integer
// class labels, returning the mean loss over the batch and the gradient with
// respect to the logits ((softmax − onehot)/b).
type SoftmaxXent struct {
	probs []float32
	grad  []float32
}

// Forward computes the mean cross-entropy loss and the number of correctly
// argmax-classified samples. logits is b × classes.
func (s *SoftmaxXent) Forward(logits []float32, labels []int, classes int) (loss float64, correct int) {
	b := len(labels)
	if len(logits) != b*classes {
		panic("nn: softmax logits size mismatch")
	}
	if cap(s.probs) < len(logits) {
		s.probs = make([]float32, len(logits))
		s.grad = make([]float32, len(logits))
	}
	s.probs = s.probs[:len(logits)]
	s.grad = s.grad[:len(logits)]
	var total float64
	for i := 0; i < b; i++ {
		row := logits[i*classes : (i+1)*classes]
		probs := s.probs[i*classes : (i+1)*classes]
		maxV := row[0]
		argmax := 0
		for j, v := range row {
			if v > maxV {
				maxV = v
				argmax = j
			}
		}
		if argmax == labels[i] {
			correct++
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			probs[j] = float32(e)
			sum += e
		}
		inv := float32(1.0 / sum)
		for j := range probs {
			probs[j] *= inv
		}
		p := float64(probs[labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	// Gradient of mean loss w.r.t. logits.
	invB := float32(1.0 / float64(b))
	copy(s.grad, s.probs)
	for i := 0; i < b; i++ {
		s.grad[i*classes+labels[i]] -= 1
	}
	for j := range s.grad {
		s.grad[j] *= invB
	}
	return total / float64(b), correct
}

// Grad returns the logits gradient from the most recent Forward. The slice
// is reused across calls.
func (s *SoftmaxXent) Grad() []float32 { return s.grad }

// Probs returns the softmax probabilities from the most recent Forward.
func (s *SoftmaxXent) Probs() []float32 { return s.probs }
