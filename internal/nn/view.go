package nn

import "scaledl/internal/tensor"

// view reshapes t in place as an r×c matrix over data and returns it — the
// layers' replacement for tensor.Wrap on their forward/backward hot paths.
// Wrap allocates the Tensor and its shape per call; view reuses a Tensor the
// layer owns, which is what keeps the serving batcher's request path
// allocation-free in steady state. The returned pointer must not outlive the
// next view call on the same Tensor.
func view(t *tensor.Tensor, data []float32, r, c int) *tensor.Tensor {
	if len(data) != r*c {
		panic("nn: view dimensions do not cover the buffer")
	}
	if len(t.Shape) != 2 {
		t.Shape = make([]int, 2)
	}
	t.Shape[0], t.Shape[1] = r, c
	t.Data = data
	return t
}
