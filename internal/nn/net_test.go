package nn

import (
	"math"
	"testing"

	"scaledl/internal/data"
	"scaledl/internal/tensor"
)

func TestPackedLayoutContiguity(t *testing.T) {
	def := LeNet(Shape{C: 1, H: 28, W: 28}, 10)
	net := def.Build(1)
	// Offsets must be monotone and cover the whole packed buffer.
	if net.Offsets[0] != 0 || net.Offsets[len(net.Offsets)-1] != len(net.Params) {
		t.Fatalf("offsets %v do not span params (%d)", net.Offsets, len(net.Params))
	}
	for i := 1; i < len(net.Offsets); i++ {
		if net.Offsets[i] < net.Offsets[i-1] {
			t.Fatalf("offsets not monotone: %v", net.Offsets)
		}
	}
	// Writing via a layer view must land inside the packed buffer: mutate the
	// conv1 weights through the packed buffer and check a forward changes.
	x := make([]float32, 28*28)
	for i := range x {
		x[i] = 1
	}
	y1 := append([]float32(nil), net.Forward(x, 1, false)...)
	net.Params[0] += 10
	y2 := net.Forward(x, 1, false)
	same := true
	for i := range y1 {
		if y1[i] != y2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mutating packed buffer did not affect layer output; views not aliased")
	}
}

func TestLeNetParamCount(t *testing.T) {
	def := LeNet(Shape{C: 1, H: 28, W: 28}, 10)
	net := def.Build(1)
	// Classic Caffe LeNet: 431,080 parameters.
	if net.ParamCount() != 431080 {
		t.Errorf("LeNet params = %d, want 431080", net.ParamCount())
	}
	if net.ParamBytes() != 431080*4 {
		t.Errorf("LeNet bytes = %d", net.ParamBytes())
	}
}

func TestZooCostTables(t *testing.T) {
	cases := []struct {
		m        ModelCost
		wantLo   int64
		wantHi   int64
		paperRef string
	}{
		{AlexNetCost(), 60_000_000, 62_000_000, "AlexNet ≈ 61M params (paper: 249 MB)"},
		{VGG19Cost(), 143_000_000, 144_500_000, "VGG-19 ≈ 143.7M params (paper: 575 MB)"},
		{GoogleNetCost(), 6_000_000, 8_000_000, "GoogleNet ≈ 7M params"},
		{LeNetCost(), 431_080, 431_080, "LeNet exactly 431,080"},
	}
	for _, c := range cases {
		got := c.m.TotalParams()
		if got < c.wantLo || got > c.wantHi {
			t.Errorf("%s: params = %d, want in [%d, %d] (%s)", c.m.Name, got, c.wantLo, c.wantHi, c.paperRef)
		}
		if c.m.FwdFLOPsPerSample() <= 0 {
			t.Errorf("%s: nonpositive FLOPs", c.m.Name)
		}
	}
	// Paper quotes VGG-19 at 575 MB.
	mb := float64(VGG19Cost().ParamBytes()) / (1 << 20)
	if mb < 540 || mb < 0 || mb > 580 {
		t.Errorf("VGG-19 size %.1f MB, paper says ≈575 MB", mb)
	}
	// AlexNet ≈ 244 MB float32 (paper rounds to 249 MB).
	mb = float64(AlexNetCost().ParamBytes()) / (1 << 20)
	if mb < 230 || mb > 260 {
		t.Errorf("AlexNet size %.1f MB, paper says ≈249 MB", mb)
	}
}

func TestNetCostMatchesNet(t *testing.T) {
	def := LeNet(Shape{C: 1, H: 28, W: 28}, 10)
	net := def.Build(1)
	cost := net.Cost()
	if cost.TotalParams() != int64(net.ParamCount()) {
		t.Errorf("Cost params %d != net %d", cost.TotalParams(), net.ParamCount())
	}
	if cost.FwdFLOPsPerSample() != net.FwdFLOPsPerSample() {
		t.Errorf("Cost FLOPs %d != net %d", cost.FwdFLOPsPerSample(), net.FwdFLOPsPerSample())
	}
	ref := LeNetCost()
	if cost.TotalParams() != ref.TotalParams() {
		t.Errorf("instantiated LeNet params %d != table %d", cost.TotalParams(), ref.TotalParams())
	}
}

func TestLayerParamSizesSumToTotal(t *testing.T) {
	def := LeNet(Shape{C: 1, H: 28, W: 28}, 10)
	net := def.Build(1)
	sum := 0
	for _, s := range net.LayerParamSizes() {
		sum += s
	}
	if sum != net.ParamCount() {
		t.Errorf("per-layer sizes sum %d != total %d", sum, net.ParamCount())
	}
}

func TestBuildPanicsOnShapeMismatch(t *testing.T) {
	def := NetDef{Name: "bad", In: Shape{C: 1, H: 4, W: 4}, Classes: 10,
		Specs: []LayerSpec{{Kind: "dense", Units: 7}}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched classes did not panic")
		}
	}()
	def.Build(1)
}

func TestBuildPanicsOnUnknownKind(t *testing.T) {
	def := NetDef{Name: "bad", In: Shape{C: 1, H: 4, W: 4}, Classes: 10,
		Specs: []LayerSpec{{Kind: "wat"}}}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	def.Build(1)
}

func TestDeterministicBuildAndTraining(t *testing.T) {
	spec := data.Spec{Name: "toy", Channels: 1, Height: 12, Width: 12, Classes: 4}
	train, _ := data.Synthetic(data.Config{Spec: spec, TrainN: 128, TestN: 32, Seed: 5})
	def := TinyCNN(Shape{C: 1, H: 12, W: 12}, 4)

	run := func() []float32 {
		net := def.Build(99)
		s := data.NewSampler(train, 7)
		var batch *data.Batch
		for i := 0; i < 10; i++ {
			batch = s.Next(8, batch)
			net.ZeroGrad()
			net.LossAndGrad(batch.X, batch.Labels, 8)
			net.SGDStep(0.05)
		}
		return append([]float32(nil), net.Params...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training nondeterministic at param %d", i)
		}
	}
}

func TestSGDTrainingLearnsSynthetic(t *testing.T) {
	spec := data.Spec{Name: "toy", Channels: 1, Height: 12, Width: 12, Classes: 4}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 512, TestN: 256, Seed: 21})
	train.Normalize()
	test.Normalize()
	def := TinyCNN(Shape{C: 1, H: 12, W: 12}, 4)
	net := def.Build(3)
	s := data.NewSampler(train, 11)
	var batch *data.Batch
	var loss0, lossN float64
	for i := 0; i < 150; i++ {
		batch = s.Next(16, batch)
		net.ZeroGrad()
		l, _ := net.LossAndGrad(batch.X, batch.Labels, 16)
		if i == 0 {
			loss0 = l
		}
		lossN = l
		net.SGDStep(0.05)
	}
	if lossN >= loss0 {
		t.Errorf("loss did not decrease: %.4f -> %.4f", loss0, lossN)
	}
	acc := net.Evaluate(test.Images, test.Labels, 64)
	if acc < 0.8 {
		t.Errorf("test accuracy %.3f after 150 iters; expected > 0.8 on separable data", acc)
	}
}

func TestCopyParamsFrom(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 8, W: 8}, 3)
	a := def.Build(1)
	b := def.Build(2)
	b.CopyParamsFrom(a)
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			t.Fatal("CopyParamsFrom incomplete")
		}
	}
}

func TestSoftmaxXentGradientSumsToZero(t *testing.T) {
	// Softmax-xent gradient rows must sum to zero (probabilities sum to 1,
	// one-hot subtracts 1).
	var s SoftmaxXent
	g := tensor.NewRNG(4)
	logits := make([]float32, 6*5)
	g.FillNormal(logits, 0, 2)
	labels := []int{0, 1, 2, 3, 4, 0}
	loss, _ := s.Forward(logits, labels, 5)
	if loss <= 0 {
		t.Errorf("loss %v", loss)
	}
	grad := s.Grad()
	for i := 0; i < 6; i++ {
		var sum float64
		for j := 0; j < 5; j++ {
			sum += float64(grad[i*5+j])
		}
		if math.Abs(sum) > 1e-5 {
			t.Errorf("row %d gradient sum %v", i, sum)
		}
	}
}

func TestSoftmaxXentPerfectPrediction(t *testing.T) {
	var s SoftmaxXent
	logits := []float32{100, 0, 0, 0, 100, 0}
	loss, correct := s.Forward(logits, []int{0, 1}, 3)
	if correct != 2 {
		t.Errorf("correct = %d", correct)
	}
	if loss > 1e-6 {
		t.Errorf("loss %v for perfect prediction", loss)
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 8, W: 8}, 3)
	net := def.Build(1)
	if acc := net.Evaluate(nil, nil, 16); acc != 0 {
		t.Errorf("empty Evaluate = %v", acc)
	}
}
