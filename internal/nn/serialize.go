package nn

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Serialization: a Net is stored as a JSON header (its NetDef, so the
// architecture travels with the weights) followed by the packed float32
// parameter buffer in little-endian order. The packed §5.2 layout makes
// the payload a single contiguous write.

// serializedHeader is the on-disk header.
type serializedHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Def     NetDef `json:"def"`
	Params  int    `json:"params"`
}

const (
	serializeMagic   = "scaledl-net"
	serializeVersion = 1
)

// Save writes the network definition and parameters to w.
func (n *Net) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := serializedHeader{
		Magic:   serializeMagic,
		Version: serializeVersion,
		Def:     n.Def,
		Params:  len(n.Params),
	}
	hj, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("nn: marshal header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hj))); err != nil {
		return err
	}
	if _, err := bw.Write(hj); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, v := range n.Params {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a network saved with Save, rebuilding the architecture from
// the stored definition and restoring the parameters.
func Load(r io.Reader) (*Net, error) {
	br := bufio.NewReader(r)
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("nn: read header length: %w", err)
	}
	if hlen == 0 || hlen > 1<<20 {
		return nil, fmt.Errorf("nn: implausible header length %d", hlen)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, fmt.Errorf("nn: read header: %w", err)
	}
	var hdr serializedHeader
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return nil, fmt.Errorf("nn: decode header: %w", err)
	}
	if hdr.Magic != serializeMagic {
		return nil, fmt.Errorf("nn: bad magic %q", hdr.Magic)
	}
	if hdr.Version != serializeVersion {
		return nil, fmt.Errorf("nn: unsupported version %d", hdr.Version)
	}
	net := hdr.Def.Build(0)
	if len(net.Params) != hdr.Params {
		return nil, fmt.Errorf("nn: definition rebuilds to %d params, file has %d", len(net.Params), hdr.Params)
	}
	buf := make([]byte, 4)
	for i := range net.Params {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("nn: read param %d: %w", i, err)
		}
		net.Params[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	return net, nil
}
