package nn

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"scaledl/internal/quant"
)

// Serialization: a Net is stored as a JSON header (its NetDef, so the
// architecture travels with the weights) followed by the packed parameter
// payload. Version 1 is the fp32 format: every parameter as a
// little-endian float32, one contiguous write thanks to the packed §5.2
// layout. Version 2 is the int8 format written for quantized nets
// (QuantizeInt8): quantized layers store one byte per weight (the grid
// level codes) plus fp32 biases, everything else stays fp32, and the
// per-layer grid (lo, scale) rides in the header — load reconstructs the
// exact same float values the quantized net was serving (Dequant8 is
// bitwise deterministic), so a round trip changes nothing. Version 1
// files are written byte-identically to what this package always wrote.

// serializedHeader is the on-disk header. The quantization fields are
// empty (and omitted from the JSON) for version-1 fp32 snapshots, keeping
// those files byte-compatible with earlier writers.
type serializedHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Def     NetDef `json:"def"`
	Params  int    `json:"params"`
	// Codec names the payload encoding for version 2 ("int8"); Quant holds
	// the per-layer grids, in layer order.
	Codec string       `json:"codec,omitempty"`
	Quant []quantEntry `json:"quant,omitempty"`
}

// quantEntry is one quantized layer's grid in the header: the layer index,
// the grid origin and step, and the weight count (= byte count of its code
// block in the payload).
type quantEntry struct {
	Layer   int     `json:"layer"`
	Lo      float32 `json:"lo"`
	Scale   float32 `json:"scale"`
	Weights int     `json:"weights"`
}

const (
	serializeMagic       = "scaledl-net"
	serializeVersion     = 1
	serializeVersionInt8 = 2
	serializeCodecInt8   = "int8"
)

// Save writes the network definition and parameters to w: version 1 for
// fp32 nets (byte-compatible with every earlier snapshot), version 2 with
// the int8 codec for quantized nets.
func (n *Net) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := serializedHeader{
		Magic:   serializeMagic,
		Version: serializeVersion,
		Def:     n.Def,
		Params:  len(n.Params),
	}
	if n.Quantized() {
		hdr.Version = serializeVersionInt8
		hdr.Codec = serializeCodecInt8
		for _, lq := range n.Quant {
			hdr.Quant = append(hdr.Quant, quantEntry{
				Layer: lq.Layer, Lo: lq.Lo, Scale: lq.Scale, Weights: len(lq.Codes),
			})
		}
	}
	hj, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("nn: marshal header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hj))); err != nil {
		return err
	}
	if _, err := bw.Write(hj); err != nil {
		return err
	}
	if !n.Quantized() {
		if err := writeF32(bw, n.Params); err != nil {
			return err
		}
		return bw.Flush()
	}
	// Version 2: walk layers in order; quantized layers write their code
	// block then their fp32 tail (biases), others write fp32 params.
	qi := 0
	for i := range n.Layers {
		lo, hi := n.Offsets[i], n.Offsets[i+1]
		if qi < len(n.Quant) && n.Quant[qi].Layer == i {
			codes := n.Quant[qi].Codes
			if _, err := bw.Write(codes); err != nil {
				return err
			}
			lo += len(codes)
			qi++
		}
		if err := writeF32(bw, n.Params[lo:hi]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeF32(bw *bufio.Writer, vs []float32) error {
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a network saved with Save, rebuilding the architecture from
// the stored definition and restoring the parameters. Version-2 int8
// snapshots reconstruct the exact dequantized values (and the net's Quant
// state) the saved net was serving.
func Load(r io.Reader) (*Net, error) {
	br := bufio.NewReader(r)
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("nn: read header length: %w", err)
	}
	if hlen == 0 || hlen > 1<<20 {
		return nil, fmt.Errorf("nn: implausible header length %d", hlen)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, fmt.Errorf("nn: read header: %w", err)
	}
	var hdr serializedHeader
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return nil, fmt.Errorf("nn: decode header: %w", err)
	}
	if hdr.Magic != serializeMagic {
		return nil, fmt.Errorf("nn: bad magic %q", hdr.Magic)
	}
	net := hdr.Def.Build(0)
	if len(net.Params) != hdr.Params {
		return nil, fmt.Errorf("nn: definition rebuilds to %d params, file has %d", len(net.Params), hdr.Params)
	}
	switch hdr.Version {
	case serializeVersion:
		if err := readF32(br, net.Params, 0); err != nil {
			return nil, err
		}
	case serializeVersionInt8:
		if hdr.Codec != serializeCodecInt8 {
			return nil, fmt.Errorf("nn: version %d with unknown codec %q", hdr.Version, hdr.Codec)
		}
		qi := 0
		for i := range net.Layers {
			lo, hi := net.Offsets[i], net.Offsets[i+1]
			if qi < len(hdr.Quant) && hdr.Quant[qi].Layer == i {
				q := hdr.Quant[qi]
				if q.Weights < 0 || lo+q.Weights > hi {
					return nil, fmt.Errorf("nn: layer %d quant block %d exceeds its %d params", i, q.Weights, hi-lo)
				}
				lq := LayerQuant{Layer: i, Lo: q.Lo, Scale: q.Scale, Codes: make([]uint8, q.Weights)}
				if _, err := io.ReadFull(br, lq.Codes); err != nil {
					return nil, fmt.Errorf("nn: read layer %d codes: %w", i, err)
				}
				quant.Dequant8(lq.Codes, net.Params[lo:lo+q.Weights], q.Lo, q.Scale)
				net.Quant = append(net.Quant, lq)
				lo += q.Weights
				qi++
			}
			if err := readF32(br, net.Params[lo:hi], lo); err != nil {
				return nil, err
			}
		}
		if qi != len(hdr.Quant) {
			return nil, fmt.Errorf("nn: %d quant entries reference missing layers", len(hdr.Quant)-qi)
		}
	default:
		return nil, fmt.Errorf("nn: unsupported version %d", hdr.Version)
	}
	return net, nil
}

func readF32(br *bufio.Reader, dst []float32, base int) error {
	var buf [4]byte
	for i := range dst {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("nn: read param %d: %w", base+i, err)
		}
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
	}
	return nil
}
