package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 12, W: 12}, 4)
	net := def.Build(42)
	// Train-ish perturbation so params are not just the init.
	for i := range net.Params {
		net.Params[i] += float32(i%7) * 0.01
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Def.Name != def.Name || got.ParamCount() != net.ParamCount() {
		t.Fatalf("definition mismatch: %+v", got.Def)
	}
	for i := range net.Params {
		if got.Params[i] != net.Params[i] {
			t.Fatalf("param %d: %v != %v", i, got.Params[i], net.Params[i])
		}
	}
	// The loaded network must be functional: same forward output.
	x := make([]float32, 144)
	for i := range x {
		x[i] = float32(i) / 144
	}
	a := net.Forward(x, 1, false)
	b := got.Forward(x, 1, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forward mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2}},
		{"huge-header", []byte{0xff, 0xff, 0xff, 0xff, 0, 0}},
		{"not-json", append([]byte{5, 0, 0, 0}, []byte("hello")...)},
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: Load accepted garbage", c.name)
		}
	}
}

func TestLoadRejectsWrongMagicAndVersion(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 8, W: 8}, 3)
	net := def.Build(1)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic inside the JSON header.
	data := buf.Bytes()
	s := string(data)
	s = strings.Replace(s, "scaledl-net", "scaledl-NOT", 1)
	if _, err := Load(strings.NewReader(s)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("wrong magic accepted: %v", err)
	}
}

func TestLoadRejectsTruncatedParams(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 8, W: 8}, 3)
	net := def.Build(1)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestSchedules(t *testing.T) {
	if ConstantLR(0.1).At(500) != 0.1 {
		t.Error("constant schedule moved")
	}
	sd := StepDecay{Base: 0.1, Gamma: 0.1, StepSize: 100}
	if sd.At(0) != 0.1 {
		t.Errorf("step at 0: %v", sd.At(0))
	}
	if got := sd.At(100); math.Abs(float64(got)-0.01) > 1e-9 {
		t.Errorf("step at 100: %v", got)
	}
	if got := sd.At(250); math.Abs(float64(got)-0.001) > 1e-9 {
		t.Errorf("step at 250: %v", got)
	}
	pd := PolyDecay{Base: 0.1, MaxIter: 100, Power: 1}
	if got := pd.At(50); math.Abs(float64(got)-0.05) > 1e-7 {
		t.Errorf("poly at 50: %v", got)
	}
	if pd.At(200) != 0 {
		t.Errorf("poly past max: %v", pd.At(200))
	}
}

func TestWarmupRampsThenDelegates(t *testing.T) {
	w := Warmup{Base: 0.4, Div: 10, WarmupIters: 100, After: ConstantLR(0.4)}
	if got := w.At(0); math.Abs(float64(got)-0.04) > 1e-6 {
		t.Errorf("warmup start %v, want base/10", got)
	}
	mid := w.At(50)
	if mid <= w.At(0) || mid >= 0.4 {
		t.Errorf("warmup mid %v not between start and base", mid)
	}
	if got := w.At(100); got != 0.4 {
		t.Errorf("post-warmup %v", got)
	}
	if got := w.At(5000); got != 0.4 {
		t.Errorf("late %v", got)
	}
	prev := float32(0)
	for tt := 0; tt < 100; tt += 10 {
		v := w.At(tt)
		if v < prev {
			t.Fatalf("warmup not monotone at %d", tt)
		}
		prev = v
	}
}

func TestLRScalingRules(t *testing.T) {
	lin, err := LinearScaledLR(0.1, 64, 1024)
	if err != nil || math.Abs(float64(lin)-1.6) > 1e-6 {
		t.Errorf("linear scaling: %v, %v", lin, err)
	}
	sqrt, err := SqrtScaledLR(0.1, 64, 1024)
	if err != nil || math.Abs(float64(sqrt)-0.4) > 1e-6 {
		t.Errorf("sqrt scaling: %v, %v", sqrt, err)
	}
	if _, err := LinearScaledLR(0.1, 0, 64); err == nil {
		t.Error("zero ref batch accepted")
	}
	if _, err := SqrtScaledLR(0.1, 64, 0); err == nil {
		t.Error("zero batch accepted")
	}
}
