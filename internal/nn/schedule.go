package nn

import (
	"fmt"
	"math"
)

// LRSchedule maps an iteration number to a learning rate. The paper's §7.2
// observes that batch size, learning rate and momentum must be retuned
// together; these schedules are the standard tools for that retuning
// (linear scaling with warmup became the canon for the large-batch regime
// the paper's weak-scaling pushes into).
type LRSchedule interface {
	// At returns the learning rate for iteration t (0-based).
	At(t int) float32
}

// ConstantLR is a fixed learning rate.
type ConstantLR float32

// At implements LRSchedule.
func (c ConstantLR) At(int) float32 { return float32(c) }

// StepDecay multiplies the base rate by Gamma every StepSize iterations
// (Caffe's "step" policy, used by the paper-era ImageNet recipes).
type StepDecay struct {
	Base     float32
	Gamma    float64
	StepSize int
}

// At implements LRSchedule.
func (s StepDecay) At(t int) float32 {
	if s.StepSize <= 0 {
		return s.Base
	}
	return s.Base * float32(math.Pow(s.Gamma, float64(t/s.StepSize)))
}

// PolyDecay is Caffe's "poly" policy: base·(1−t/max)^power.
type PolyDecay struct {
	Base    float32
	MaxIter int
	Power   float64
}

// At implements LRSchedule.
func (p PolyDecay) At(t int) float32 {
	if p.MaxIter <= 0 {
		return p.Base
	}
	frac := 1 - float64(t)/float64(p.MaxIter)
	if frac < 0 {
		frac = 0
	}
	return p.Base * float32(math.Pow(frac, p.Power))
}

// Warmup ramps linearly from Base/Div to Base over WarmupIters, then
// delegates to After — the gradual-warmup recipe that makes the linearly
// scaled rates of large effective batches trainable.
type Warmup struct {
	Base        float32
	Div         float32 // starting divisor (e.g. 10)
	WarmupIters int
	After       LRSchedule
}

// At implements LRSchedule.
func (w Warmup) At(t int) float32 {
	if w.WarmupIters > 0 && t < w.WarmupIters {
		start := w.Base / maxf(w.Div, 1)
		frac := float32(t) / float32(w.WarmupIters)
		return start + (w.Base-start)*frac
	}
	if w.After != nil {
		return w.After.At(t - w.WarmupIters)
	}
	return w.Base
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// LinearScaledLR applies the linear scaling rule for an effective batch
// grown by factor k over the reference batch: η' = k·η (the retuning §7.2
// prescribes when batch size changes).
func LinearScaledLR(baseLR float32, refBatch, batch int) (float32, error) {
	if refBatch <= 0 || batch <= 0 {
		return 0, fmt.Errorf("nn: batches must be positive, got %d and %d", refBatch, batch)
	}
	return baseLR * float32(batch) / float32(refBatch), nil
}

// SqrtScaledLR applies the square-root scaling rule, the conservative
// alternative for very large batches: η' = √k·η.
func SqrtScaledLR(baseLR float32, refBatch, batch int) (float32, error) {
	if refBatch <= 0 || batch <= 0 {
		return 0, fmt.Errorf("nn: batches must be positive, got %d and %d", refBatch, batch)
	}
	return baseLR * float32(math.Sqrt(float64(batch)/float64(refBatch))), nil
}
