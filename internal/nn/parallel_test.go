package nn

import (
	"bytes"
	"testing"

	"scaledl/internal/data"
	"scaledl/internal/tensor"
)

func TestParallelConcatShapes(t *testing.T) {
	def := NetDef{
		Name: "par", In: Shape{C: 2, H: 8, W: 8}, Classes: 3,
		Specs: []LayerSpec{
			{Kind: "parallel", Branches: [][]LayerSpec{
				{{Kind: "conv", Filters: 3, Kernel: 1, Stride: 1}},
				{{Kind: "conv", Filters: 5, Kernel: 3, Stride: 1, Pad: 1}},
			}},
			{Kind: "globalavgpool"},
			{Kind: "dense", Units: 3},
		},
	}
	net := def.Build(1)
	// Parallel output channels: 3 + 5 = 8; spatial preserved.
	par := net.Layers[0]
	if got := par.OutShape(); got.C != 8 || got.H != 8 || got.W != 8 {
		t.Fatalf("parallel out shape %v", got)
	}
	x := make([]float32, 2*64)
	tensor.NewRNG(2).FillNormal(x, 0, 1)
	out := net.Forward(x, 1, false)
	if len(out) != 3 {
		t.Fatalf("final output %d", len(out))
	}
}

func TestParallelConcatOrder(t *testing.T) {
	// Two identity-ish 1×1 conv branches with hand-set weights: branch 0
	// multiplies by 2, branch 1 by 3; the concatenated output must hold
	// branch 0's channels first.
	par := NewParallel(Shape{C: 1, H: 2, W: 2}, [][]Layer{
		{NewConv2D(Shape{C: 1, H: 2, W: 2}, 1, 1, 1, 0)},
		{NewConv2D(Shape{C: 1, H: 2, W: 2}, 1, 1, 1, 0)},
	})
	params := make([]float32, par.ParamCount())
	grads := make([]float32, par.ParamCount())
	par.Bind(params, grads)
	params[0] = 2 // branch 0 weight (w then bias)
	params[2] = 3 // branch 1 weight
	x := []float32{1, 2, 3, 4}
	out := par.Forward(x, 1, true)
	want := []float32{2, 4, 6, 8, 3, 6, 9, 12}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("concat out %v, want %v", out, want)
		}
	}
	// Backward: dx sums branch contributions: dy of ones → 2+3 = 5 per px.
	dy := []float32{1, 1, 1, 1, 1, 1, 1, 1}
	dx := par.Backward(dy, 1)
	for i, v := range dx {
		if v != 5 {
			t.Fatalf("dx[%d] = %v, want 5", i, v)
		}
	}
}

func TestParallelMismatchedSpatialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched branch spatial dims did not panic")
		}
	}()
	NewParallel(Shape{C: 1, H: 8, W: 8}, [][]Layer{
		{NewConv2D(Shape{C: 1, H: 8, W: 8}, 1, 1, 1, 0)},
		{NewPool2D(Shape{C: 1, H: 8, W: 8}, MaxPool, 2, 2)},
	})
}

func TestGradCheckInception(t *testing.T) {
	// Full numerical gradient check through an inception module (smooth
	// activations for finite-difference stability: replace relu with tanh).
	inc := Inception(2, 2, 3, 2, 2, 2)
	for i := range inc.Branches {
		for j := range inc.Branches[i] {
			if inc.Branches[i][j].Kind == "relu" {
				inc.Branches[i][j].Kind = "tanh"
			}
		}
	}
	def := NetDef{
		Name: "gc-inception", In: Shape{C: 2, H: 6, W: 6}, Classes: 3,
		Specs: []LayerSpec{
			inc,
			{Kind: "globalavgpool"},
			{Kind: "dense", Units: 3},
		},
	}
	numericalGradCheck(t, def, 2, 0.06)
}

func TestPaddedMaxPoolPreservesSpatial(t *testing.T) {
	l := NewPool2DPad(Shape{C: 1, H: 4, W: 4}, MaxPool, 3, 1, 1)
	if got := l.OutShape(); got.H != 4 || got.W != 4 {
		t.Fatalf("padded pool out %v, want 4x4", got)
	}
	x := []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	out := l.Forward(x, 1, true)
	// Corner (0,0) window covers {1,2,5,6} → 6; center (1,1) covers 1..11 → 11.
	if out[0] != 6 {
		t.Errorf("corner max %v, want 6", out[0])
	}
	if out[5] != 11 {
		t.Errorf("center max %v, want 11", out[5])
	}
	// Backward routes to valid argmax positions only.
	dy := make([]float32, 16)
	for i := range dy {
		dy[i] = 1
	}
	dx := l.Backward(dy, 1)
	var sum float32
	for _, v := range dx {
		sum += v
	}
	if sum != 16 {
		t.Errorf("gradient mass %v, want 16", sum)
	}
}

func TestPaddedAvgPoolCountsActualTaps(t *testing.T) {
	l := NewPool2DPad(Shape{C: 1, H: 2, W: 2}, AvgPool, 3, 1, 1)
	x := []float32{4, 8, 12, 16}
	out := l.Forward(x, 1, true)
	// Every 3×3 window clipped to the 2×2 image covers all four pixels →
	// mean 10 everywhere.
	for i, v := range out {
		if v != 10 {
			t.Fatalf("avg[%d] = %v, want 10", i, v)
		}
	}
}

func TestMiniGoogleNetTrains(t *testing.T) {
	spec := data.Spec{Name: "toy", Channels: 3, Height: 16, Width: 16, Classes: 4}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 256, TestN: 128, Seed: 9})
	train.Normalize()
	test.Normalize()
	def := MiniGoogleNet(Shape{C: 3, H: 16, W: 16}, 4)
	net := def.Build(3)
	if net.ParamCount() == 0 {
		t.Fatal("no parameters")
	}
	s := data.NewSampler(train, 4)
	var batch *data.Batch
	for i := 0; i < 120; i++ {
		batch = s.Next(16, batch)
		net.ZeroGrad()
		net.LossAndGrad(batch.X, batch.Labels, 16)
		net.SGDStep(0.05)
	}
	if acc := net.Evaluate(test.Images, test.Labels, 64); acc < 0.7 {
		t.Errorf("mini-googlenet accuracy %.3f after 120 iters", acc)
	}
}

func TestMiniGoogleNetSerializationRoundTrip(t *testing.T) {
	// Inception definitions must survive Save/Load (nested Branches).
	def := MiniGoogleNet(Shape{C: 3, H: 16, W: 16}, 4)
	net := def.Build(7)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ParamCount() != net.ParamCount() {
		t.Fatalf("params %d vs %d", got.ParamCount(), net.ParamCount())
	}
	for i := range net.Params {
		if got.Params[i] != net.Params[i] {
			t.Fatal("params differ after round trip")
		}
	}
}
