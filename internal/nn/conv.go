package nn

import (
	"fmt"

	"scaledl/internal/par"
	"scaledl/internal/tensor"
)

// Conv2D is a 2-D convolution implemented with im2col + GEMM, the same
// strategy as cuDNN's GEMM algorithm that the paper's GPU code relied on.
// Forward and backward parallelize across the batch dimension on the shared
// par pool with a fixed chunk assignment and a fixed-order partial-gradient
// merge, so results are bit-deterministic for a given par.Width().
type Conv2D struct {
	name            string
	in, out         Shape
	filters, kernel int
	stride, pad     int

	w, b   []float32 // views into packed params: w is F×(C·k·k), b is F
	dw, db []float32 // views into packed grads

	cols   []float32 // im2col scratch: b × (C·k·k) × (oh·ow)
	outBuf []float32
	dxBuf  []float32
	lastX  []float32
	lastB  int
	chunks [][2]int // batch chunk assignment, reused across calls

	// per-chunk backward scratch, reused across calls
	partialDW [][]float32
	partialDB [][]float32
	dcolsBuf  [][]float32

	// Hot-path reuse: tensor.Wrap and a fresh par.For closure would each
	// allocate per call, which the serving batcher's zero-alloc contract
	// forbids. The chunk workers instead run cached method closures that
	// read the call's inputs from fwdX/bwdDY and wrap matrices through
	// per-chunk view slots (fwdV, bwdV) plus the shared weight view wV.
	wV    tensor.Tensor
	fwdV  [][2]tensor.Tensor // per-chunk {cols, out} views
	bwdV  [][4]tensor.Tensor // per-chunk {dy, cols, dcols, partialDW} views
	fwdX  []float32
	bwdDY []float32
	fwdFn func(int)
	bwdFn func(int)
}

// NewConv2D creates a convolution with the given filter count, square kernel,
// stride and zero padding.
func NewConv2D(in Shape, filters, kernel, stride, pad int) *Conv2D {
	if stride <= 0 || kernel <= 0 || filters <= 0 {
		panic("nn: invalid conv geometry")
	}
	oh := tensor.OutDim(in.H, kernel, stride, pad)
	ow := tensor.OutDim(in.W, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output %dx%d for input %v", oh, ow, in))
	}
	return &Conv2D{
		name:    fmt.Sprintf("conv%dx%d-%d", kernel, kernel, filters),
		in:      in,
		out:     Shape{C: filters, H: oh, W: ow},
		filters: filters,
		kernel:  kernel,
		stride:  stride,
		pad:     pad,
	}
}

func (l *Conv2D) Name() string    { return l.name }
func (l *Conv2D) OutShape() Shape { return l.out }

func (l *Conv2D) ParamCount() int {
	return l.filters*l.in.C*l.kernel*l.kernel + l.filters
}

func (l *Conv2D) Bind(params, grads []float32) {
	wn := l.filters * l.in.C * l.kernel * l.kernel
	l.w, l.b = params[:wn], params[wn:]
	l.dw, l.db = grads[:wn], grads[wn:]
}

func (l *Conv2D) Init(g *tensor.RNG) {
	fanIn := l.in.C * l.kernel * l.kernel
	fanOut := l.filters * l.kernel * l.kernel
	g.XavierFill(l.w, fanIn, fanOut)
	for i := range l.b {
		l.b[i] = 0
	}
}

func (l *Conv2D) colSize() int {
	return l.in.C * l.kernel * l.kernel * l.out.H * l.out.W
}

func (l *Conv2D) Forward(x []float32, b int, train bool) []float32 {
	inDim, outDim := l.in.Dim(), l.out.Dim()
	if len(x) != b*inDim {
		panic(fmt.Sprintf("nn: %s forward input %d for batch %d×%d", l.name, len(x), b, inDim))
	}
	cs := l.colSize()
	buf(&l.cols, b*cs)
	out := buf(&l.outBuf, b*outDim)
	kcc := l.in.C * l.kernel * l.kernel
	l.chunks = par.AppendChunkRanges(l.chunks[:0], b)
	l.ensureViews(len(l.chunks))
	view(&l.wV, l.w, l.filters, kcc)
	l.fwdX = x
	if l.fwdFn == nil {
		l.fwdFn = l.forwardChunk
	}
	par.For(len(l.chunks), l.fwdFn)
	if train {
		l.lastX, l.lastB = x, b
	}
	return out
}

// forwardChunk runs the im2col + GEMM forward for one batch chunk; the
// call's input rides in l.fwdX (set before par.For fans out).
func (l *Conv2D) forwardChunk(c int) {
	inDim, outDim := l.in.Dim(), l.out.Dim()
	cs := l.colSize()
	kcc := l.in.C * l.kernel * l.kernel
	spatial := l.out.H * l.out.W
	lo, hi := l.chunks[c][0], l.chunks[c][1]
	v := &l.fwdV[c]
	for i := lo; i < hi; i++ {
		ci := l.cols[i*cs : (i+1)*cs]
		tensor.Im2col(ci, l.fwdX[i*inDim:(i+1)*inDim], l.in.C, l.in.H, l.in.W, l.kernel, l.kernel, l.stride, l.pad)
		cm := view(&v[0], ci, kcc, spatial)
		om := view(&v[1], l.outBuf[i*outDim:(i+1)*outDim], l.filters, spatial)
		// Per-filter bias rides in the GEMM store epilogue instead of a
		// second pass over the output.
		tensor.MatMulBiasRow(om, &l.wV, cm, l.b)
	}
}

func (l *Conv2D) Backward(dy []float32, b int) []float32 {
	if l.lastB != b {
		panic("nn: conv Backward batch mismatch with Forward")
	}
	inDim := l.in.Dim()
	cs := l.colSize()
	kcc := l.in.C * l.kernel * l.kernel
	dx := buf(&l.dxBuf, b*inDim)
	for i := range dx {
		dx[i] = 0
	}
	l.chunks = par.AppendChunkRanges(l.chunks[:0], b)
	l.ensureScratch(len(l.chunks), kcc, cs)
	l.ensureViews(len(l.chunks))
	view(&l.wV, l.w, l.filters, kcc)
	l.bwdDY = dy
	if l.bwdFn == nil {
		l.bwdFn = l.backwardChunk
	}
	par.For(len(l.chunks), l.bwdFn)
	// Merge partials in fixed chunk order: deterministic accumulation.
	for w := range l.chunks {
		tensor.AXPY(1, l.partialDW[w], l.dw)
		tensor.AXPY(1, l.partialDB[w], l.db)
	}
	return dx
}

// backwardChunk accumulates one batch chunk's weight/bias partials and its
// slice of dX; the upstream gradient rides in l.bwdDY.
func (l *Conv2D) backwardChunk(w int) {
	inDim, outDim := l.in.Dim(), l.out.Dim()
	cs := l.colSize()
	kcc := l.in.C * l.kernel * l.kernel
	spatial := l.out.H * l.out.W
	lo, hi := l.chunks[w][0], l.chunks[w][1]
	pdw := l.partialDW[w]
	pdb := l.partialDB[w]
	for i := range pdw {
		pdw[i] = 0
	}
	for i := range pdb {
		pdb[i] = 0
	}
	dcols := l.dcolsBuf[w]
	v := &l.bwdV[w]
	pdwMat := view(&v[3], pdw, l.filters, kcc)
	for i := lo; i < hi; i++ {
		dyi := view(&v[0], l.bwdDY[i*outDim:(i+1)*outDim], l.filters, spatial)
		ci := view(&v[1], l.cols[i*cs:(i+1)*cs], kcc, spatial)
		// dW_chunk += dy · colsᵀ
		tensor.MatMulAdd2TransB(pdwMat, dyi, ci)
		// db_chunk += row sums of dy
		for f := 0; f < l.filters; f++ {
			var s float32
			row := dyi.Data[f*spatial : (f+1)*spatial]
			for _, vv := range row {
				s += vv
			}
			pdb[f] += s
		}
		// dcols = Wᵀ · dy ; dx += col2im(dcols)
		dcm := view(&v[2], dcols[:cs], kcc, spatial)
		tensor.MatMulTransA(dcm, &l.wV, dyi)
		tensor.Col2im(l.dxBuf[i*inDim:(i+1)*inDim], dcols, l.in.C, l.in.H, l.in.W, l.kernel, l.kernel, l.stride, l.pad)
	}
}

// ensureViews grows the per-chunk view slots to nChunks.
func (l *Conv2D) ensureViews(nChunks int) {
	for len(l.fwdV) < nChunks {
		l.fwdV = append(l.fwdV, [2]tensor.Tensor{})
		l.bwdV = append(l.bwdV, [4]tensor.Tensor{})
	}
}

func (l *Conv2D) ensureScratch(nChunks, kcc, cs int) {
	for len(l.partialDW) < nChunks {
		l.partialDW = append(l.partialDW, make([]float32, l.filters*kcc))
		l.partialDB = append(l.partialDB, make([]float32, l.filters))
		l.dcolsBuf = append(l.dcolsBuf, make([]float32, cs))
	}
	for i := range l.dcolsBuf {
		if len(l.dcolsBuf[i]) < cs {
			l.dcolsBuf[i] = make([]float32, cs)
		}
	}
}

// WeightCount reports the weight-matrix element count at the front of the
// layer's packed parameter view (QuantizableLayer); the F biases behind it
// stay fp32 under int8 quantization.
func (l *Conv2D) WeightCount() int { return l.filters * l.in.C * l.kernel * l.kernel }

func (l *Conv2D) FwdFLOPsPerSample() int64 {
	macs := int64(l.filters) * int64(l.in.C) * int64(l.kernel) * int64(l.kernel) * int64(l.out.H) * int64(l.out.W)
	return 2 * macs
}
