package nn

// LayerCost describes one layer's footprint for the simulator: parameter
// count (drives communication volume and memory) and forward FLOPs per
// sample (drives compute time).
type LayerCost struct {
	Name     string
	Params   int64
	FwdFLOPs int64
}

// ModelCost is the cost-table view of a network. Real executed networks
// (LeNet, CIFAR nets) derive it via Net.Cost; ImageNet-scale networks
// (AlexNet, VGG-19, GoogleNet) are defined directly as tables with their
// true published dimensions because training them for real in Go would take
// weeks — exactly the substitution DESIGN.md documents. The paper itself
// only reports time (not accuracy) at that scale.
type ModelCost struct {
	Name     string
	Classes  int
	InputDim int
	Layers   []LayerCost
}

// TotalParams sums parameters over all layers.
func (m ModelCost) TotalParams() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.Params
	}
	return s
}

// ParamBytes is the float32 model size in bytes (the |W| of the α-β model).
func (m ModelCost) ParamBytes() int64 { return m.TotalParams() * 4 }

// FwdFLOPsPerSample sums forward FLOPs over all layers.
func (m ModelCost) FwdFLOPsPerSample() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.FwdFLOPs
	}
	return s
}

// TrainFLOPsPerSample estimates forward+backward at the usual 1:2 ratio.
func (m ModelCost) TrainFLOPsPerSample() int64 { return 3 * m.FwdFLOPsPerSample() }

// LayerParamSizes lists per-layer parameter counts for layers that carry
// parameters, in order — the message sizes of an unpacked communication plan.
func (m ModelCost) LayerParamSizes() []int64 {
	var out []int64
	for _, l := range m.Layers {
		if l.Params > 0 {
			out = append(out, l.Params)
		}
	}
	return out
}

// convCost builds the cost entry for a conv layer given input channels,
// output channels, kernel, output spatial size and group count (AlexNet uses
// grouped convolutions; groups divide the per-filter input channels).
func convCost(name string, inC, outC, k, outH, outW, groups int) LayerCost {
	params := int64(outC)*int64(inC/groups)*int64(k)*int64(k) + int64(outC)
	macs := int64(outC) * int64(inC/groups) * int64(k) * int64(k) * int64(outH) * int64(outW)
	return LayerCost{Name: name, Params: params, FwdFLOPs: 2 * macs}
}

// denseCost builds the cost entry for a fully connected layer.
func denseCost(name string, in, out int) LayerCost {
	return LayerCost{
		Name:     name,
		Params:   int64(out)*int64(in) + int64(out),
		FwdFLOPs: 2 * int64(out) * int64(in),
	}
}

// poolCost builds the (parameter-free) cost entry for pooling.
func poolCost(name string, c, outH, outW, k int) LayerCost {
	return LayerCost{Name: name, FwdFLOPs: int64(c) * int64(outH) * int64(outW) * int64(k) * int64(k)}
}
