package nn

import (
	"testing"

	"scaledl/internal/tensor"
)

// streamBatch builds a deterministic batch for the given input shape.
func streamBatch(def NetDef, b int, seed int64) (x []float32, labels []int) {
	g := tensor.NewRNG(seed)
	x = make([]float32, b*def.In.Dim())
	g.FillNormal(x, 0, 1)
	labels = make([]int, b)
	for i := range labels {
		labels[i] = int(g.Int63() % int64(def.Classes))
	}
	return x, labels
}

// The tentpole invariant on the nn side: the streaming backward is the same
// walk as the monolithic one, so gradients, loss and correct count are
// bit-identical, and the event stream announces each layer exactly once, in
// descending order, with offsets matching the packed layout.
func TestStreamingBackwardBitIdenticalToMonolithic(t *testing.T) {
	for _, def := range []NetDef{
		TinyCNN(Shape{C: 1, H: 12, W: 12}, 4),
		LeNet(Shape{C: 1, H: 28, W: 28}, 10),
		MiniGoogleNet(Shape{C: 3, H: 16, W: 16}, 10),
	} {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			mono := def.Build(42)
			stream := def.Build(42)
			x, labels := streamBatch(def, 6, 7)

			mono.ZeroGrad()
			lossM, correctM := mono.LossAndGrad(x, labels, 6)

			stream.ZeroGrad()
			var events []GradEvent
			lossS, correctS := stream.LossAndGradStream(x, labels, 6, func(e GradEvent) {
				// The layer's gradient slice must already be final when its
				// event fires: snapshot and compare after the walk.
				events = append(events, e)
			})

			if lossM != lossS || correctM != correctS {
				t.Fatalf("loss/correct differ: mono (%v, %d) vs stream (%v, %d)", lossM, correctM, lossS, correctS)
			}
			for i := range mono.Grads {
				if mono.Grads[i] != stream.Grads[i] {
					t.Fatalf("Grads[%d] differ: %v vs %v", i, mono.Grads[i], stream.Grads[i])
				}
			}
			if len(events) != len(stream.Layers) {
				t.Fatalf("%d events for %d layers", len(events), len(stream.Layers))
			}
			for k, e := range events {
				wantLayer := len(stream.Layers) - 1 - k
				if e.Layer != wantLayer {
					t.Errorf("event %d announces layer %d, want %d (descending order)", k, e.Layer, wantLayer)
				}
				if e.Lo != stream.Offsets[e.Layer] || e.Hi != stream.Offsets[e.Layer+1] {
					t.Errorf("event for layer %d has range [%d,%d), offsets say [%d,%d)",
						e.Layer, e.Lo, e.Hi, stream.Offsets[e.Layer], stream.Offsets[e.Layer+1])
				}
			}
		})
	}
}

// Dense-layer events carry the sufficient factors (dY, X) whose outer
// product is the layer's weight gradient. Reconstructing dW from the views
// after the full walk must match the packed gradient bit-for-bit — which
// both pins the factor math and proves the views are not mutated by the
// remainder of the backward walk.
func TestGradEventFactorsReconstructDenseGradient(t *testing.T) {
	def := LeNet(Shape{C: 1, H: 28, W: 28}, 10)
	n := def.Build(42)
	x, labels := streamBatch(def, 5, 9)
	n.ZeroGrad()
	var factorEvents []GradEvent
	n.LossAndGradStream(x, labels, 5, func(e GradEvent) {
		if e.DY != nil {
			factorEvents = append(factorEvents, e)
		}
	})
	if len(factorEvents) == 0 {
		t.Fatal("LeNet has dense layers but no event carried factors")
	}
	for _, e := range factorEvents {
		if len(e.DY) != e.B*e.F || len(e.X) != e.B*e.D {
			t.Fatalf("layer %d factor dims: |dY|=%d want %d·%d, |X|=%d want %d·%d",
				e.Layer, len(e.DY), e.B, e.F, len(e.X), e.B, e.D)
		}
		if e.Hi-e.Lo != e.F*e.D+e.F {
			t.Fatalf("layer %d param range %d does not match F·D+F = %d·%d+%d",
				e.Layer, e.Hi-e.Lo, e.F, e.D, e.F)
		}
		// dW via the same packed GEMM the layer used, from a zero buffer.
		scratch := make([]float32, e.F*e.D)
		tensor.MatMulAddTransA(tensor.Wrap(scratch, e.F, e.D),
			tensor.Wrap(e.DY, e.B, e.F), tensor.Wrap(e.X, e.B, e.D))
		for i, v := range scratch {
			if got := n.Grads[e.Lo+i]; got != v {
				t.Fatalf("layer %d dW[%d]: reconstructed %v, packed %v", e.Layer, i, v, got)
			}
		}
		// db = column sums of dY, in the layer's own accumulation order.
		db := make([]float32, e.F)
		for i := 0; i < e.B; i++ {
			row := e.DY[i*e.F : (i+1)*e.F]
			for j, v := range row {
				db[j] += v
			}
		}
		for j, v := range db {
			if got := n.Grads[e.Lo+e.F*e.D+j]; got != v {
				t.Fatalf("layer %d db[%d]: reconstructed %v, packed %v", e.Layer, j, v, got)
			}
		}
	}
}

// Hoisting the factor views into GradEvent must not copy: the streaming walk
// allocates nothing beyond what the factor-free walk does.
func TestFactorEmissionZeroExtraAllocs(t *testing.T) {
	def := LeNet(Shape{C: 1, H: 28, W: 28}, 10)
	n := def.Build(1)
	x, labels := streamBatch(def, 4, 2)
	// Warm every scratch buffer in the net and the loss head.
	n.ZeroGrad()
	n.LossAndGrad(x, labels, 4)

	base := testing.AllocsPerRun(10, func() {
		n.ZeroGrad()
		n.LossAndGradStream(x, labels, 4, nil)
	})
	events := make([]GradEvent, len(n.Layers))
	k := 0
	emit := func(e GradEvent) { events[k] = e; k++ }
	withFactors := testing.AllocsPerRun(10, func() {
		k = 0
		n.ZeroGrad()
		n.LossAndGradStream(x, labels, 4, emit)
	})
	if withFactors > base {
		t.Fatalf("factor emission allocates: %v allocs/run vs %v without emit", withFactors, base)
	}
}

// A layer's gradient slice is final at emission time: capturing the slice
// contents inside the callback and comparing after the full walk must show
// no later mutation (layers own disjoint views of the packed buffer).
func TestGradientSliceFinalAtEmission(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 12, W: 12}, 4)
	n := def.Build(3)
	x, labels := streamBatch(def, 4, 11)
	n.ZeroGrad()
	snaps := map[int][]float32{}
	n.LossAndGradStream(x, labels, 4, func(e GradEvent) {
		snaps[e.Layer] = append([]float32(nil), n.Grads[e.Lo:e.Hi]...)
	})
	for layer, snap := range snaps {
		lo := n.Offsets[layer]
		for i, v := range snap {
			if n.Grads[lo+i] != v {
				t.Fatalf("layer %d grad[%d] changed after its ready event: %v -> %v",
					layer, i, v, n.Grads[lo+i])
			}
		}
	}
}
