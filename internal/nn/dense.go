package nn

import (
	"fmt"

	"scaledl/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b with W stored F×D.
type Dense struct {
	name   string
	in     Shape
	inDim  int
	units  int
	w, b   []float32
	dw, db []float32
	outBuf []float32
	dxBuf  []float32
	lastX  []float32
	lastDY []float32
	lastB  int
	views  [5]tensor.Tensor // reusable matrix views; see view()
}

// NewDense creates a fully connected layer with the given output units. The
// input shape is flattened.
func NewDense(in Shape, units int) *Dense {
	if units <= 0 {
		panic("nn: dense units must be positive")
	}
	return &Dense{
		name:  fmt.Sprintf("fc-%d", units),
		in:    in,
		inDim: in.Dim(),
		units: units,
	}
}

func (l *Dense) Name() string    { return l.name }
func (l *Dense) OutShape() Shape { return Shape{C: l.units, H: 1, W: 1} }

func (l *Dense) ParamCount() int { return l.units*l.inDim + l.units }

func (l *Dense) Bind(params, grads []float32) {
	wn := l.units * l.inDim
	l.w, l.b = params[:wn], params[wn:]
	l.dw, l.db = grads[:wn], grads[wn:]
}

func (l *Dense) Init(g *tensor.RNG) {
	g.XavierFill(l.w, l.inDim, l.units)
	for i := range l.b {
		l.b[i] = 0
	}
}

func (l *Dense) Forward(x []float32, b int, train bool) []float32 {
	if len(x) != b*l.inDim {
		panic(fmt.Sprintf("nn: %s forward input %d for batch %d×%d", l.name, len(x), b, l.inDim))
	}
	out := buf(&l.outBuf, b*l.units)
	xm := view(&l.views[0], x, b, l.inDim)
	wm := view(&l.views[1], l.w, l.units, l.inDim)
	om := view(&l.views[2], out, b, l.units)
	// (b×D)·(F×D)ᵀ = b×F, with the per-unit bias fused into the GEMM store.
	tensor.MatMulTransBBiasCol(om, xm, wm, l.b)
	if train {
		l.lastX, l.lastB = x, b
	}
	return out
}

func (l *Dense) Backward(dy []float32, b int) []float32 {
	if l.lastB != b {
		panic("nn: dense Backward batch mismatch with Forward")
	}
	l.lastDY = dy
	dym := view(&l.views[0], dy, b, l.units)
	xm := view(&l.views[1], l.lastX, b, l.inDim)
	// dW += dYᵀ·X (F×D), accumulated in-place by the engine — no temporary.
	dwm := view(&l.views[2], l.dw, l.units, l.inDim)
	tensor.MatMulAddTransA(dwm, dym, xm)
	// db += column sums of dY
	for i := 0; i < b; i++ {
		row := dy[i*l.units : (i+1)*l.units]
		for j, v := range row {
			l.db[j] += v
		}
	}
	// dX = dY·W (b×D)
	dx := buf(&l.dxBuf, b*l.inDim)
	dxm := view(&l.views[3], dx, b, l.inDim)
	wm := view(&l.views[4], l.w, l.units, l.inDim)
	tensor.MatMul(dxm, dym, wm)
	return dx
}

// WeightCount reports the weight-matrix element count at the front of the
// layer's packed parameter view (QuantizableLayer); the F biases behind it
// stay fp32 under int8 quantization.
func (l *Dense) WeightCount() int { return l.units * l.inDim }

func (l *Dense) FwdFLOPsPerSample() int64 {
	return 2 * int64(l.units) * int64(l.inDim)
}

// BackwardFactors exposes the sufficient factors of the last Backward: the
// (dY, X) views whose outer product dYᵀ·X is exactly the weight-gradient
// contribution the call accumulated (plus the column sums of dY for the
// bias). Both are live views into existing buffers — no copy — valid until
// the next Forward/Backward on this layer. This is what sufficient-factor
// broadcasting (Poseidon) sends over the wire instead of the F×D gradient.
func (l *Dense) BackwardFactors() (dy, x []float32, b, f, d int) {
	return l.lastDY, l.lastX, l.lastB, l.units, l.inDim
}

// FactorShape reports the factor dimensions (F, D) without needing a
// Backward first — the static input of the hybrid comm selector's cost model.
func (l *Dense) FactorShape() (f, d int) { return l.units, l.inDim }
