package nn

import (
	"testing"

	"scaledl/internal/tensor"
)

// LeNet conv2 geometry: the hottest layer of the training harness.
func benchConv() (*Conv2D, []float32, int) {
	in := Shape{C: 20, H: 12, W: 12}
	l := NewConv2D(in, 50, 5, 1, 0)
	params := make([]float32, l.ParamCount())
	grads := make([]float32, l.ParamCount())
	l.Bind(params, grads)
	l.Init(tensor.NewRNG(31))
	const b = 16
	x := make([]float32, b*in.Dim())
	tensor.NewRNG(32).FillNormal(x, 0, 1)
	return l, x, b
}

func BenchmarkConv2DForward(b *testing.B) {
	l, x, batch := benchConv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Forward(x, batch, true)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	l, x, batch := benchConv()
	out := l.Forward(x, batch, true)
	dy := make([]float32, len(out))
	tensor.NewRNG(33).FillNormal(dy, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Backward(dy, batch)
	}
}
