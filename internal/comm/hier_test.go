package comm

import (
	"fmt"
	"reflect"
	"testing"

	"scaledl/internal/hw"
	"scaledl/internal/sim"
)

// fabricLink is a deliberately slower inter-node link, so composed runs
// exercise the intra/inter asymmetry the multi-level topology exists for.
var fabricLink = hw.Link{Name: "test-fabric", Alpha: 5e-6, Beta: 4e-9}

// uniformCluster composes nodes×perNode contention-free uniform
// sub-topologies under the fabric — the composed analogue of NewUniform,
// which the oracle-equality tests run on.
func uniformCluster(env *sim.Env, nodes, perNode, nic int) *MultiLevel {
	return NewMultiLevel(env, MultiLevelConfig{
		Nodes: nodes,
		PerNode: func(env *sim.Env, node int) *Topology {
			return NewUniform(env, perNode, testLink)
		},
		Fabric:         fabricLink,
		NICConcurrency: nic,
	})
}

// hierComm builds a HierCommunicator over every sub-node of the cluster.
func hierComm(ml *MultiLevel, plan Plan, intra, inter Schedule) *HierCommunicator {
	locals := make([]int, ml.PerNode())
	for i := range locals {
		locals[i] = i
	}
	return NewHierCommunicator(ml.Topology(), HierConfig{
		Groups: ml.Groups(locals...),
		Plan:   plan,
		Intra:  intra,
		Inter:  inter,
	})
}

// runHier spawns one process per party and returns the completion time.
func runHier(t *testing.T, env *sim.Env, hc *HierCommunicator, body func(p *sim.Proc, rank int)) float64 {
	t.Helper()
	for r := 0; r < hc.Size(); r++ {
		rank := r
		env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) { body(p, rank) })
	}
	end := env.Run()
	env.Close()
	return end
}

// Invariant 1 extended: on a contention-free composed topology the
// hierarchical allreduce completes at exactly the composed closed-form
// oracle — intra reduce + inter allreduce + intra broadcast — for every
// round-synchronized (intra, inter) schedule pair.
func TestHierAllReduceMatchesComposedOracle(t *testing.T) {
	synced := []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleLinear}
	shapes := []struct{ nodes, perNode int }{{2, 3}, {4, 4}, {3, 2}}
	for _, sh := range shapes {
		for _, intra := range synced {
			for _, inter := range synced {
				for _, elems := range []int{1, 257, 4096} {
					env := sim.NewEnv()
					ml := uniformCluster(env, sh.nodes, sh.perNode, 0)
					hc := hierComm(ml, packedPlan(elems), intra, inter)
					end := runHier(t, env, hc, func(p *sim.Proc, rank int) {
						hc.Endpoint(rank).AllReduceSize(p, 0)
					})
					want, ok := HierAllReduceTime(testLink, fabricLink, int64(elems)*4,
						sh.nodes, sh.perNode, intra, inter)
					if !ok {
						t.Fatalf("no oracle for %v/%v", intra, inter)
					}
					if relErr(end, want) > 1e-9 {
						t.Errorf("%dx%d %v/%v elems=%d: simulated %v, composed oracle %v",
							sh.nodes, sh.perNode, intra, inter, elems, end, want)
					}
				}
			}
		}
	}
}

// Invariant 2 extended: HierAllReduce leaves every party bit-identical to
// ReduceSum over all parties in global rank order, for every (intra, inter)
// schedule pair × bucket size — so the schedule pair (and the bucketing of
// the streaming pipeline) can never change training mathematics.
func TestHierAllReduceBitIdenticalToReduceSum(t *testing.T) {
	all := []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleChain, ScheduleLinear}
	// Uneven per-layer plan; 2 nodes × 2 GPUs with a non-power case below.
	layers := []int64{40 * 4, 90 * 4, 17 * 4, 110 * 4}
	plan := Plan{LayerBytes: layers, Packed: true}
	elems := int(plan.TotalBytes() / 4)
	for _, sh := range []struct{ nodes, perNode int }{{2, 2}, {3, 2}} {
		P := sh.nodes * sh.perNode
		inputs := randInputs(P, elems, int64(P)*13)
		want := make([]float32, elems)
		ReduceSum(want, inputs...)
		for _, intra := range all {
			for _, inter := range all {
				// bucketBytes 0 = monolithic whole-plan AllReduce; otherwise
				// one forked AllReduceRange per Bucketizer bucket, every
				// bucket a distinct concurrent round.
				for _, bucketBytes := range []int64{0, 1, 256, 1 << 20} {
					env := sim.NewEnv()
					ml := uniformCluster(env, sh.nodes, sh.perNode, 0)
					hc := hierComm(ml, plan, intra, inter)
					bufs := make([][]float32, P)
					for i := range bufs {
						bufs[i] = append([]float32(nil), inputs[i]...)
					}
					runHier(t, env, hc, func(p *sim.Proc, rank int) {
						ep := hc.Endpoint(rank)
						if bucketBytes == 0 {
							ep.AllReduce(p, 0, bufs[rank])
							return
						}
						var comps []*sim.Completion
						for _, bk := range NewBucketizer(plan, bucketBytes).Buckets() {
							bk := bk
							comps = append(comps, p.Env().Fork(fmt.Sprintf("b%d.%d", rank, bk.ID), func(bp *sim.Proc) {
								ep.AllReduceRange(bp, bk.ID, bufs[rank], bk.Lo, bk.Hi)
							}))
						}
						for _, cm := range comps {
							cm.Wait(p)
						}
					})
					for rank, buf := range bufs {
						if !reflect.DeepEqual(buf, want) {
							t.Fatalf("%dx%d %v/%v bucket=%d rank %d: not bit-identical to ReduceSum",
								sh.nodes, sh.perNode, intra, inter, bucketBytes, rank)
						}
					}
				}
			}
		}
	}
}

// HierBroadcast replicates the root's values everywhere and HierReduce
// leaves the rank-ordered sum at the root only — for leader and non-leader
// roots, across schedule pairs.
func TestHierBroadcastAndReduceData(t *testing.T) {
	const nodes, perNode, elems = 3, 2, 129
	P := nodes * perNode
	pairs := []struct{ intra, inter Schedule }{
		{ScheduleTree, ScheduleTree},
		{ScheduleRing, ScheduleChain},
		{ScheduleChain, ScheduleLinear},
		{ScheduleLinear, ScheduleRHD},
	}
	for _, pr := range pairs {
		for _, root := range []int{0, 3} { // leader of group 1 is rank 2; rank 3 is a non-leader
			inputs := randInputs(P, elems, int64(root)*29+int64(pr.intra)+7)
			want := make([]float32, elems)
			ReduceSum(want, inputs...)

			env := sim.NewEnv()
			ml := uniformCluster(env, nodes, perNode, 0)
			hc := hierComm(ml, packedPlan(elems), pr.intra, pr.inter)
			bufs := make([][]float32, P)
			for i := range bufs {
				bufs[i] = append([]float32(nil), inputs[i]...)
			}
			runHier(t, env, hc, func(p *sim.Proc, rank int) {
				ep := hc.Endpoint(rank)
				ep.Reduce(p, 0, root, bufs[rank])
				ep.Broadcast(p, 1, root, bufs[rank])
			})
			// After reduce at root then broadcast from root, every buffer
			// holds the rank-ordered sum.
			for rank := range bufs {
				if !reflect.DeepEqual(bufs[rank], want) {
					t.Fatalf("%v/%v root=%d rank %d: reduce+bcast differs from ordered sum",
						pr.intra, pr.inter, root, rank)
				}
			}
		}
	}
}

// The composed topology routes intra-node hops over the sub-topology's link
// and cross-node hops over the fabric, and GlobalID/LeaderID address it.
func TestMultiLevelComposedRouting(t *testing.T) {
	env := sim.NewEnv()
	ml := NewMultiLevel(env, MultiLevelConfig{
		Nodes: 2,
		PerNode: func(env *sim.Env, node int) *Topology {
			return NewPCIeTree(env, PCIeConfig{GPUs: 2, Host: hw.PCIePinned, Peer: hw.GPUPeer})
		},
		Fabric: fabricLink,
	})
	if ml.NodeCount() != 2 || ml.PerNode() != 3 { // 2 GPUs + host per node
		t.Fatalf("nodes=%d perNode=%d", ml.NodeCount(), ml.PerNode())
	}
	if ml.GlobalID(1, 0) != 3 || ml.LeaderID(1) != 3 {
		t.Fatalf("GlobalID(1,0)=%d LeaderID(1)=%d", ml.GlobalID(1, 0), ml.LeaderID(1))
	}
	topo := ml.Topology()
	var peerAt, fabricAt float64
	env.Spawn("probe", func(p *sim.Proc) {
		topo.Send(p, ml.GlobalID(0, 0), ml.GlobalID(0, 1), 0, nil, 1<<20)
		peerAt = p.Now()
		topo.Send(p, ml.GlobalID(0, 0), ml.GlobalID(1, 1), 0, nil, 1<<20)
		fabricAt = p.Now() - peerAt
	})
	env.Run()
	env.Close()
	if relErr(peerAt, hw.GPUPeer.Time(1<<20)) > 1e-9 {
		t.Errorf("intra hop %v, want %v", peerAt, hw.GPUPeer.Time(1<<20))
	}
	if relErr(fabricAt, fabricLink.Time(1<<20)) > 1e-9 {
		t.Errorf("fabric hop %v, want %v", fabricAt, fabricLink.Time(1<<20))
	}
}

// A bounded NIC makes one node's concurrent fabric streams serialize — the
// single-port effect that penalizes flat collectives at scale — while
// leaving a single stream untouched.
func TestMultiLevelNICContention(t *testing.T) {
	run := func(nic, streams int) float64 {
		env := sim.NewEnv()
		ml := uniformCluster(env, 2, streams, nic)
		topo := ml.Topology()
		for s := 0; s < streams; s++ {
			s := s
			env.Spawn(fmt.Sprintf("stream%d", s), func(p *sim.Proc) {
				topo.Send(p, ml.GlobalID(0, s), ml.GlobalID(1, s), 0, nil, 1<<20)
			})
		}
		end := env.Run()
		env.Close()
		return end
	}
	unit := fabricLink.Time(1 << 20)
	if free := run(0, 4); relErr(free, unit) > 1e-9 {
		t.Errorf("unbounded NIC: 4 streams took %v, want one transfer %v", free, unit)
	}
	if bounded := run(1, 4); relErr(bounded, 4*unit) > 1e-9 {
		t.Errorf("NIC=1: 4 streams took %v, want 4 serialized transfers %v", bounded, 4*unit)
	}
	if half := run(2, 4); relErr(half, 2*unit) > 1e-9 {
		t.Errorf("NIC=2: 4 streams took %v, want 2 waves %v", half, 2*unit)
	}
}

// saturatingCluster composes uniform peer-link nodes under a saturating
// single-port fabric — the paper's Aries regime, where per-stage bandwidth
// only materializes on large messages and each node has one network port.
func saturatingCluster(env *sim.Env, nodes, perNode int) *MultiLevel {
	fabric := hw.SaturatingLink{Name: "aries-like", Alpha: 1.5e-6, BWMax: 0.8e9, HalfSize: 28e6}
	return NewMultiLevel(env, MultiLevelConfig{
		Nodes: nodes,
		PerNode: func(env *sim.Env, node int) *Topology {
			return NewUniform(env, perNode, hw.GPUPeer)
		},
		Fabric:         fabric,
		NICConcurrency: 2, // one full-duplex port: an in+out exchange fits, a flood serializes
	})
}

// On a single-port saturating fabric the best hierarchical schedule pair
// beats every flat schedule run over all GPUs. A rank-aligned flat binomial
// tree is itself hierarchical in shape (it ties hier tree/tree exactly),
// but the two-level structure can mix levels — recursive halving among
// leaders keeps the fabric's large-message bandwidth while flat RHD/ring
// flood each NIC with perNode concurrent streams (or chop the model into
// chunks the saturating fabric charges nearly full price for). This is the
// FireCaffe/Poseidon regime; the harness `hier` experiment reports the full
// sweep at paper scale, and this pins it at CI size.
func TestHierBeatsFlatOnSaturatingFabric(t *testing.T) {
	const nodes, perNode, elems = 4, 4, 1 << 20 // 4 MB
	env := sim.NewEnv()
	ml := saturatingCluster(env, nodes, perNode)
	hc := hierComm(ml, packedPlan(elems), ScheduleTree, ScheduleRHD)
	hierEnd := runHier(t, env, hc, func(p *sim.Proc, rank int) {
		hc.Endpoint(rank).AllReduceSize(p, 0)
	})
	for _, sched := range []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleChain} {
		env := sim.NewEnv()
		ml := saturatingCluster(env, nodes, perNode)
		var parties []int
		for g := 0; g < nodes; g++ {
			for l := 0; l < perNode; l++ {
				parties = append(parties, ml.GlobalID(g, l))
			}
		}
		c := NewCommunicator(ml.Topology(), CommConfig{
			Parties: parties, Plan: packedPlan(elems), Schedule: sched,
		})
		for r := 0; r < len(parties); r++ {
			rank := r
			env.Spawn(fmt.Sprintf("flat%d", rank), func(p *sim.Proc) {
				c.Endpoint(rank).AllReduceSize(p, 0)
			})
		}
		flatEnd := env.Run()
		env.Close()
		if hierEnd >= flatEnd {
			t.Errorf("hier tree/rhd allreduce (%v) not faster than flat %v (%v) on saturating fabric",
				hierEnd, sched, flatEnd)
		}
	}
}

// Hierarchical and flat communicators share one topology without cross-talk
// (distinct message tags), and concurrent hierarchical rounds interleave.
func TestHierConcurrentRoundsAndTagIsolation(t *testing.T) {
	const nodes, perNode, elems = 2, 2, 64
	P := nodes * perNode
	inputs := randInputs(P, elems, 41)
	env := sim.NewEnv()
	ml := uniformCluster(env, nodes, perNode, 0)
	hc := hierComm(ml, packedPlan(elems), ScheduleTree, ScheduleTree)
	var parties []int
	for g := 0; g < nodes; g++ {
		for l := 0; l < perNode; l++ {
			parties = append(parties, ml.GlobalID(g, l))
		}
	}
	flat := NewCommunicator(ml.Topology(), CommConfig{Parties: parties, Plan: packedPlan(elems)})
	hierBufs := make([][]float32, P)
	flatBufs := make([][]float32, P)
	for i := range hierBufs {
		hierBufs[i] = append([]float32(nil), inputs[i]...)
		flatBufs[i] = append([]float32(nil), inputs[i]...)
	}
	runHier(t, env, hc, func(p *sim.Proc, rank int) {
		// Fork a flat allreduce (tag 0) and two concurrent hierarchical
		// rounds (tags 1/2) over the same wires.
		fc := p.Env().Fork(fmt.Sprintf("flat%d", rank), func(fp *sim.Proc) {
			flat.Endpoint(rank).AllReduce(fp, 0, flatBufs[rank])
		})
		ep := hc.Endpoint(rank)
		half := elems / 2
		c1 := p.Env().Fork(fmt.Sprintf("lo%d", rank), func(bp *sim.Proc) {
			ep.AllReduceRange(bp, 1, hierBufs[rank], 0, half)
		})
		ep.AllReduceRange(p, 2, hierBufs[rank], half, elems)
		c1.Wait(p)
		fc.Wait(p)
	})
	want := make([]float32, elems)
	ReduceSum(want, inputs...)
	for rank := 0; rank < P; rank++ {
		if !reflect.DeepEqual(hierBufs[rank], want) {
			t.Fatalf("rank %d: concurrent hier rounds diverged from ordered sum", rank)
		}
		if !reflect.DeepEqual(flatBufs[rank], want) {
			t.Fatalf("rank %d: flat allreduce corrupted by hier traffic", rank)
		}
	}
}
