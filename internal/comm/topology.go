package comm

import (
	"fmt"
	"strconv"

	"scaledl/internal/sim"
)

// Topology is the message fabric of the simulation: a set of nodes (GPUs,
// the host CPU, KNL nodes) and a directed α-β path between every
// communicating pair. A path may route through shared segments — a PCIe
// switch, a host uplink, a memory bus — modeled as sim.Resources that a
// transfer holds for its duration, so bandwidth contention between
// concurrent messages *emerges* from the simulation instead of being
// asserted by a closed-form factor. A topology with no shared segments is
// contention-free: every message costs exactly its link's α + nβ, which is
// what lets the collective engine be checked against the analytic cost
// functions in this package.
type Topology struct {
	env *sim.Env
	n   int
	// paths holds explicitly installed routes; rows are allocated lazily so
	// a large rule-wired topology (NewUniform at P=1024, a multi-level
	// cluster) never materializes its O(n²) path matrix.
	paths [][]Path
	// rule computes the route for pairs with no explicit entry. Regular
	// fabrics (uniform cliques, composed clusters) are wired by rule in
	// O(1), which is what makes thousand-party topologies cheap to build.
	rule  func(src, dst int) Path
	inbox []*sim.Queue
	bytes int64
	// msgPool recycles delivered Message boxes: inboxes store *Message so a
	// send boxes a pooled pointer instead of allocating a fresh interface
	// value per message (the simulation is single-threaded by construction,
	// so a plain free list suffices).
	msgPool []*Message
	// Semantic fault state (chaos.go). chaos == nil && !hasDead is the
	// fault-free fast path: Send runs the exact pre-chaos code with no
	// per-message overhead.
	chaos     *Chaos
	dice      *sim.Dice
	sendSeq   int64
	hasDead   bool
	dead      []bool
	deadSig   []*sim.Signal
	retryWait []float64
	stats     ChaosStats
}

// getMsg takes a Message box from the pool.
func (t *Topology) getMsg() *Message {
	if n := len(t.msgPool); n > 0 {
		m := t.msgPool[n-1]
		t.msgPool = t.msgPool[:n-1]
		return m
	}
	return new(Message)
}

// putMsg returns a consumed box to the pool.
func (t *Topology) putMsg(m *Message) {
	*m = Message{}
	t.msgPool = append(t.msgPool, m)
}

// Path is one directed src→dst route: an α-β (or saturating) link plus the
// shared segments the transfer occupies while in flight. Segments are
// acquired in slice order and released in reverse; topologies must list
// shared segments in a consistent global order to stay deadlock-free (the
// built-in constructors use at most one segment per path).
type Path struct {
	Link Transferer
	Via  []*sim.Resource
}

// Message is one delivered payload, tagged with its source node and an
// application-chosen tag.
type Message struct {
	Src, Tag int
	Payload  any
}

// NewTopology creates n nodes with no paths; wire them with SetPath and/or
// SetPathRule.
func NewTopology(env *sim.Env, n int) *Topology {
	if n < 1 {
		panic("comm: topology needs at least one node")
	}
	t := &Topology{env: env, n: n, paths: make([][]Path, n), inbox: make([]*sim.Queue, n)}
	for i := 0; i < n; i++ {
		t.inbox[i] = sim.NewQueue(env, "node"+strconv.Itoa(i))
	}
	return t
}

// Env returns the simulation environment the topology runs in.
func (t *Topology) Env() *sim.Env { return t.env }

// Nodes returns the number of nodes.
func (t *Topology) Nodes() int { return t.n }

// BytesMoved returns the cumulative wire bytes of every transfer so far;
// algorithms sample deltas to attribute traffic to phases.
func (t *Topology) BytesMoved() int64 { return t.bytes }

// SetPath installs the directed route src→dst. Explicit routes override the
// topology's path rule.
func (t *Topology) SetPath(src, dst int, l Transferer, via ...*sim.Resource) {
	t.checkNode(src)
	t.checkNode(dst)
	if t.paths[src] == nil {
		t.paths[src] = make([]Path, t.n)
	}
	t.paths[src][dst] = Path{Link: l, Via: via}
}

// SetPathRule installs a fallback rule consulted for pairs without an
// explicit SetPath entry; returning a Path with a nil Link means no route.
// Rules keep regular large fabrics O(1) to construct. The rule must be
// pure: the same pair always yields the same route.
func (t *Topology) SetPathRule(rule func(src, dst int) Path) { t.rule = rule }

// pathFor resolves the route src→dst: an explicit entry if present,
// otherwise the path rule.
func (t *Topology) pathFor(src, dst int) Path {
	if row := t.paths[src]; row != nil && row[dst].Link != nil {
		return row[dst]
	}
	if t.rule != nil {
		return t.rule(src, dst)
	}
	return Path{}
}

func (t *Topology) checkNode(id int) {
	if id < 0 || id >= t.n {
		panic(fmt.Sprintf("comm: node %d outside topology of %d", id, t.n))
	}
}

// occupy charges p the transfer of wireBytes along src→dst: it acquires
// the path's shared segments, delays for the link time and releases. It is
// the one place simulated time is spent on communication.
func (t *Topology) occupy(p *sim.Proc, src, dst int, wireBytes int64) {
	t.checkNode(src)
	t.checkNode(dst)
	path := t.pathFor(src, dst)
	if path.Link == nil {
		panic(fmt.Sprintf("comm: no path %d->%d", src, dst))
	}
	for _, r := range path.Via {
		p.Acquire(r)
	}
	p.Delay(path.Link.Time(wireBytes))
	for i := len(path.Via) - 1; i >= 0; i-- {
		path.Via[i].Release()
	}
	t.bytes += wireBytes
}

// Send transmits payload from src to dst: the calling process pays the
// wire time (holding any shared segments), then the message is delivered
// to dst's mailbox. Payloads are delivered by reference; senders that
// mutate a buffer after sending must pass a snapshot. With chaos installed
// or a dead node present, delivery runs the guarded protocol (chaos.go):
// seeded loss/corruption, ack/timeout/retry, cancellation on destination
// death.
func (t *Topology) Send(p *sim.Proc, src, dst, tag int, payload any, wireBytes int64) {
	if t.chaos != nil || t.hasDead {
		t.checkNode(src)
		t.checkNode(dst)
		t.sendGuarded(p, src, dst, tag, payload, wireBytes)
		return
	}
	t.occupy(p, src, dst, wireBytes)
	m := t.getMsg()
	*m = Message{Src: src, Tag: tag, Payload: payload}
	t.inbox[dst].Send(m)
}

// Recv blocks until a message with the given source and tag arrives at
// node `at` and returns its payload, leaving other queued messages intact
// (selective receive). Under chaos, payloads failing their checksum are
// never matched — the sender's ack timeout resends them pristine.
func (t *Topology) Recv(p *sim.Proc, at, src, tag int) any {
	t.checkNode(at)
	t.purgeCorrupt(at)
	m := p.RecvMatch(t.inbox[at], func(v any) bool {
		msg := v.(*Message)
		return msg.Src == src && msg.Tag == tag && !t.rejectCorrupt(msg.Payload)
	}).(*Message)
	payload := m.Payload
	t.putMsg(m)
	return payload
}

// RecvMatch blocks until a message at node `at` satisfies match. Corrupt
// payloads are rejected before match sees them.
func (t *Topology) RecvMatch(p *sim.Proc, at int, match func(Message) bool) Message {
	t.checkNode(at)
	t.purgeCorrupt(at)
	m := p.RecvMatch(t.inbox[at], func(v any) bool {
		msg := v.(*Message)
		return !t.rejectCorrupt(msg.Payload) && match(*msg)
	}).(*Message)
	out := *m
	t.putMsg(m)
	return out
}

// RecvMatchTimeout is RecvMatch with a deadline in simulated seconds: it
// returns (message, true) when a match arrives in time, or (Message{},
// false) once the deadline passes — the primitive behind partial
// aggregation, where a coordinator stops waiting for stragglers.
func (t *Topology) RecvMatchTimeout(p *sim.Proc, at int, timeout float64, match func(Message) bool) (Message, bool) {
	t.checkNode(at)
	t.purgeCorrupt(at)
	v, ok := p.RecvMatchTimeout(t.inbox[at], timeout, func(v any) bool {
		msg := v.(*Message)
		return !t.rejectCorrupt(msg.Payload) && match(*msg)
	})
	if !ok {
		return Message{}, false
	}
	m := v.(*Message)
	out := *m
	t.putMsg(m)
	return out, true
}

// RecvAny blocks until any message arrives at node `at` and returns it in
// arrival order — the first-come-first-served inbox of a parameter-server
// master. Corrupt payloads are skipped.
func (t *Topology) RecvAny(p *sim.Proc, at int) Message {
	t.checkNode(at)
	if t.chaos != nil {
		return t.RecvMatch(p, at, func(Message) bool { return true })
	}
	m := p.Recv(t.inbox[at]).(*Message)
	out := *m
	t.putMsg(m)
	return out
}

// DelayModel charges p one whole-model transfer src→dst under the plan
// without delivering a message: per-segment wire messages (so per-layer
// plans pay one α per layer) plus the plan's gather staging, with
// wireBytes distributed across segments pro rata. It models transfers the
// *receiving* side drives (the round-robin master pulling W_j up), where
// the payload hand-off happens through another channel.
func (t *Topology) DelayModel(p *sim.Proc, src, dst int, plan Plan, wireBytes int64) {
	if plan.GatherBW > 0 && !plan.Packed {
		p.Delay(float64(plan.TotalBytes()) / plan.GatherBW)
	}
	for _, seg := range planWire(plan, wireBytes) {
		t.occupy(p, src, dst, seg)
	}
}

// SendModel transmits a whole-model payload src→dst with DelayModel's cost
// shape, then delivers it to dst's mailbox. It returns the wire bytes
// charged (= wireBytes).
func (t *Topology) SendModel(p *sim.Proc, src, dst, tag int, payload any, plan Plan, wireBytes int64) int64 {
	t.DelayModel(p, src, dst, plan, wireBytes)
	m := t.getMsg()
	*m = Message{Src: src, Tag: tag, Payload: payload}
	t.inbox[dst].Send(m)
	return wireBytes
}

// planWire splits a total wire size across the plan's segments pro rata to
// their raw sizes: an uncompressed model transfers exactly its per-layer
// byte counts; a quantized one shrinks every segment by the same ratio.
func planWire(plan Plan, wireBytes int64) []int64 {
	total := plan.TotalBytes()
	if plan.Packed || len(plan.LayerBytes) <= 1 || total == 0 {
		return []int64{wireBytes}
	}
	out := make([]int64, len(plan.LayerBytes))
	var used int64
	for i, b := range plan.LayerBytes[:len(plan.LayerBytes)-1] {
		out[i] = wireBytes * b / total
		used += out[i]
	}
	out[len(out)-1] = wireBytes - used
	return out
}

// NewUniform builds an n-node contention-free clique: every ordered pair
// gets a dedicated copy of link l. This is the analytic model's topology —
// message waves of a round never queue on each other — and the one the
// oracle-equality tests run on. It also models switched fabrics (KNL's
// Aries) at collective scale, where per-stage bandwidth is already folded
// into the link model.
func NewUniform(env *sim.Env, n int, l Transferer) *Topology {
	t := NewTopology(env, n)
	t.SetPathRule(func(src, dst int) Path {
		if src == dst {
			return Path{}
		}
		return Path{Link: l}
	})
	return t
}

// NewBus builds an n-node topology whose every transfer serializes on one
// shared capacity-cap segment — a memory bus or fully shared medium. With
// cap=1 a tree reduction degenerates to (n−1) sequential transfers, which
// is how the KNL chip's partition-sum (a bandwidth-bound shared-memory
// combine) is modeled.
func NewBus(env *sim.Env, n int, l Transferer, cap_ int) *Topology {
	if cap_ < 1 {
		panic("comm: bus capacity must be >= 1")
	}
	bus := sim.NewResource(env, "bus", cap_)
	via := []*sim.Resource{bus}
	t := NewTopology(env, n)
	t.SetPathRule(func(src, dst int) Path {
		if src == dst {
			return Path{}
		}
		return Path{Link: l, Via: via}
	})
	return t
}

// PCIeConfig describes the paper's single-node multi-GPU topology.
type PCIeConfig struct {
	// GPUs is the worker count; they are nodes 0..GPUs-1 and the host is
	// node GPUs (see Topology.Host).
	GPUs int
	// Host carries GPU↔host parameter traffic (pageable or pinned PCIe).
	Host Transferer
	// Peer carries direct GPU↔GPU P2P DMA through the switch.
	Peer Transferer
	// HostStaged, when true, routes GPU↔GPU exchanges through host staging
	// (the pre-§5.2 transfer mode of Sync EASGD1 and the original code):
	// each pair hop then costs one Host-link transfer instead of peer DMA.
	HostStaged bool
	// SwitchConcurrency bounds how many transfers the PCIe switch carries
	// at once; 0 means unconstrained (the analytic model's assumption that
	// a round's pair transfers never queue — the 96-lane switch of the
	// paper's M40 nodes sustains a full round in parallel).
	SwitchConcurrency int
}

// NewPCIeTree builds the PCIe tree of the paper's GPU systems: GPUs
// 0..g-1 behind a shared switch, the host as node g. All paths optionally
// share the switch segment, so SwitchConcurrency < g/2 makes collective
// rounds contend — the knob for studying switch oversubscription.
func NewPCIeTree(env *sim.Env, cfg PCIeConfig) *Topology {
	if cfg.GPUs < 1 {
		panic("comm: PCIe tree needs at least one GPU")
	}
	var via []*sim.Resource
	if cfg.SwitchConcurrency > 0 {
		via = []*sim.Resource{sim.NewResource(env, "pcie-switch", cfg.SwitchConcurrency)}
	}
	t := NewTopology(env, cfg.GPUs+1)
	host := cfg.GPUs
	gg := cfg.Peer
	if cfg.HostStaged {
		gg = cfg.Host
	}
	for i := 0; i < cfg.GPUs; i++ {
		t.SetPath(i, host, cfg.Host, via...)
		t.SetPath(host, i, cfg.Host, via...)
		for j := 0; j < cfg.GPUs; j++ {
			if i != j {
				t.SetPath(i, j, gg, via...)
			}
		}
	}
	return t
}

// Host returns the host node id of a topology built by NewPCIeTree.
func (t *Topology) Host() int { return t.n - 1 }
