package comm

import (
	"math"
	"testing"
	"testing/quick"

	"scaledl/internal/hw"
	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

var testLink = hw.Link{Name: "test", Alpha: 1e-6, Beta: 1e-9}

func TestRounds(t *testing.T) {
	cases := []struct{ p, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {64, 6}, {1000, 10},
	}
	for _, c := range cases {
		if got := rounds(c.p); got != c.want {
			t.Errorf("rounds(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestLinearVsTreeScaling(t *testing.T) {
	n := int64(1 << 20)
	// Exact formulas: linear is (P-1)·T, tree is ceil(log2 P)·T.
	unit := testLink.Time(n)
	for _, p := range []int{2, 4, 8, 16, 64} {
		lin := LinearReduceTime(testLink, n, p)
		tree := TreeReduceTime(testLink, n, p)
		if math.Abs(lin-float64(p-1)*unit) > 1e-12 {
			t.Errorf("linear P=%d: %v", p, lin)
		}
		wantTree := float64(rounds(p)) * unit
		if math.Abs(tree-wantTree) > 1e-12 {
			t.Errorf("tree P=%d: %v want %v", p, tree, wantTree)
		}
	}
	// The paper's headline: Θ(log P) ≪ Θ(P). At P=64 the ratio must be
	// (P-1)/log2(P) = 10.5×.
	ratio := LinearReduceTime(testLink, n, 64) / TreeReduceTime(testLink, n, 64)
	if math.Abs(ratio-63.0/6.0) > 1e-9 {
		t.Errorf("linear/tree ratio at P=64: %v", ratio)
	}
}

func TestDegenerateSingleParty(t *testing.T) {
	if LinearReduceTime(testLink, 100, 1) != 0 {
		t.Error("P=1 linear reduce should be free")
	}
	if TreeReduceTime(testLink, 100, 1) != 0 {
		t.Error("P=1 tree reduce should be free")
	}
	if RingAllReduceTime(testLink, 100, 1) != 0 {
		t.Error("P=1 ring should be free")
	}
}

// Property: tree time never exceeds linear time, for any size and party count.
func TestTreeNeverSlowerThanLinearProperty(t *testing.T) {
	f := func(nRaw uint32, pRaw uint8) bool {
		n := int64(nRaw) + 1
		p := int(pRaw%200) + 1
		return TreeReduceTime(testLink, n, p) <= LinearReduceTime(testLink, n, p)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRingBeatsTreeOnLargeMessages(t *testing.T) {
	p := 16
	small := int64(1 << 10)
	big := int64(256 << 20)
	if RingAllReduceTime(testLink, small, p) < TreeAllReduceTime(testLink, small, p) {
		t.Error("ring should lose on small (latency-bound) messages")
	}
	if RingAllReduceTime(testLink, big, p) > TreeAllReduceTime(testLink, big, p) {
		t.Error("ring should win on large (bandwidth-bound) messages")
	}
	cross := CrossoverBytes(testLink, p)
	if cross <= small || cross >= big {
		t.Errorf("crossover %d outside (%d, %d)", cross, small, big)
	}
	// At the crossover, ring wins; just below, tree wins.
	if RingAllReduceTime(testLink, cross, p) >= TreeAllReduceTime(testLink, cross, p) {
		t.Error("ring does not win at the crossover point")
	}
	if RingAllReduceTime(testLink, cross-1, p) < TreeAllReduceTime(testLink, cross-1, p) {
		t.Error("ring wins below the crossover point")
	}
}

func TestReduceSumDeterministicOrder(t *testing.T) {
	g := tensor.NewRNG(1)
	n := 100
	srcs := make([][]float32, 5)
	for i := range srcs {
		srcs[i] = make([]float32, n)
		g.FillNormal(srcs[i], 0, 1)
	}
	run := func() []float32 {
		dst := make([]float32, n)
		ReduceSum(dst, srcs...)
		return dst
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ReduceSum nondeterministic")
		}
	}
	// Correctness against float64 reference.
	for i := 0; i < n; i++ {
		var want float64
		for _, s := range srcs {
			want += float64(s[i])
		}
		if math.Abs(want-float64(a[i])) > 1e-4 {
			t.Fatalf("ReduceSum[%d] = %v, want %v", i, a[i], want)
		}
	}
}

func TestAverage(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{3, 4, 5}
	dst := make([]float32, 3)
	Average(dst, a, b)
	for i, want := range []float32{2, 3, 4} {
		if dst[i] != want {
			t.Fatalf("Average = %v", dst)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Average() of nothing did not panic")
		}
	}()
	Average(dst)
}

func TestPlanPackedBeatsPerLayer(t *testing.T) {
	// LeNet-like sizes: a few small layers and one big one.
	sizes := []int64{2080, 100200, 1602000, 20040}
	packed := Plan{LayerBytes: sizes, Packed: true}
	perLayer := Plan{LayerBytes: sizes, Packed: false}
	if packed.TotalBytes() != perLayer.TotalBytes() {
		t.Fatal("plans disagree on payload")
	}
	pt := packed.TransferTime(testLink)
	ut := perLayer.TransferTime(testLink)
	if pt >= ut {
		t.Errorf("packed %v not faster than per-layer %v", pt, ut)
	}
	// The difference is exactly (k-1) α with no gather penalty.
	want := float64(len(sizes)-1) * testLink.Alpha
	if math.Abs((ut-pt)-want) > 1e-12 {
		t.Errorf("latency gap %v, want %v", ut-pt, want)
	}
}

func TestPlanGatherPenaltyOnlyUnpacked(t *testing.T) {
	sizes := []int64{1 << 20, 1 << 20}
	gatherBW := 5e9
	packed := Plan{LayerBytes: sizes, Packed: true, GatherBW: gatherBW}
	unpacked := Plan{LayerBytes: sizes, Packed: false, GatherBW: gatherBW}
	basePacked := Plan{LayerBytes: sizes, Packed: true}
	baseUnpacked := Plan{LayerBytes: sizes, Packed: false}
	if packed.TransferTime(testLink) != basePacked.TransferTime(testLink) {
		t.Error("packed plan charged a gather penalty")
	}
	penalty := unpacked.TransferTime(testLink) - baseUnpacked.TransferTime(testLink)
	want := float64(2<<20) / gatherBW
	if math.Abs(penalty-want) > 1e-12 {
		t.Errorf("gather penalty %v, want %v", penalty, want)
	}
}

func TestPlanAllReducePerLayerPaysLatencyPerLayer(t *testing.T) {
	sizes := []int64{1000, 1000, 1000, 1000}
	p := 8
	packed := Plan{LayerBytes: sizes, Packed: true}
	unpacked := Plan{LayerBytes: sizes, Packed: false}
	pt := packed.AllReduceTime(testLink, p)
	ut := unpacked.AllReduceTime(testLink, p)
	if pt >= ut {
		t.Errorf("packed allreduce %v not faster than per-layer %v", pt, ut)
	}
	// Per-layer pays 2·log2(8)·α per extra layer: 3 extra layers × 6 α.
	want := float64(len(sizes)-1) * 2 * 3 * testLink.Alpha
	if math.Abs((ut-pt)-want) > 1e-12 {
		t.Errorf("allreduce latency gap %v, want %v", ut-pt, want)
	}
}

// Property: packed plans are never slower, for random layer splits.
func TestPackedPlanNeverSlowerProperty(t *testing.T) {
	f := func(sizesRaw []uint16, parties uint8) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 40 {
			return true
		}
		sizes := make([]int64, len(sizesRaw))
		for i, s := range sizesRaw {
			sizes[i] = int64(s) + 1
		}
		p := int(parties%30) + 2
		packed := Plan{LayerBytes: sizes, Packed: true}
		unpacked := Plan{LayerBytes: sizes, Packed: false}
		return packed.TransferTime(testLink) <= unpacked.TransferTime(testLink)+1e-15 &&
			packed.AllReduceTime(testLink, p) <= unpacked.AllReduceTime(testLink, p)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalAllReduceBeatsFlatOnFabric(t *testing.T) {
	// 16 nodes × 4 GPUs: a flat 64-party tree over the slow fabric pays
	// log2(64) fabric waves; the hierarchical version pays log2(4) fast
	// local waves plus log2(16) fabric waves.
	intra := hw.GPUPeer
	inter := hw.Link{Name: "fabric", Alpha: 1.5e-6, Beta: 1e-9}
	n := int64(4 << 20)
	flat := TreeAllReduceTime(inter, n, 64)
	hier := HierarchicalAllReduceTime(intra, inter, n, 16, 4)
	if hier >= flat {
		t.Errorf("hierarchical %v not faster than flat-over-fabric %v", hier, flat)
	}
	// Degenerate cases.
	if got := HierarchicalAllReduceTime(intra, inter, n, 1, 1); got != 0 {
		t.Errorf("1×1 hierarchy should be free, got %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("0 nodes did not panic")
			}
		}()
		HierarchicalAllReduceTime(intra, inter, n, 0, 4)
	}()
}

// TestTopologyPointToPointTiming replaces the old Mailbox tests: the
// topology's point-to-point sends pay the link's α-β cost and deliver
// in-order per source, FCFS across sources.
func TestTopologyPointToPointTiming(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	topo := NewUniform(env, 2, testLink)
	var recvAt float64
	env.Spawn("sender", func(p *sim.Proc) {
		topo.Send(p, 0, 1, 7, "weights", 1<<20)
	})
	env.Spawn("receiver", func(p *sim.Proc) {
		if got := topo.Recv(p, 1, 0, 7); got.(string) != "weights" {
			t.Errorf("got %v", got)
		}
		recvAt = p.Now()
	})
	env.Run()
	want := testLink.Time(1 << 20)
	if math.Abs(recvAt-want) > 1e-12 {
		t.Errorf("received at %v, want %v", recvAt, want)
	}
	if topo.BytesMoved() != 1<<20 {
		t.Errorf("BytesMoved = %d", topo.BytesMoved())
	}
}

func TestTopologyRecvAnyFCFS(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	topo := NewUniform(env, 4, testLink)
	var got []int
	for i := 0; i < 3; i++ {
		id := i
		env.Spawn("w", func(p *sim.Proc) {
			p.Delay(float64(3 - id)) // node 2 sends first, then 1, then 0
			topo.Send(p, id, 3, 0, id, 0)
		})
	}
	env.Spawn("master", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, topo.RecvAny(p, 3).Payload.(int))
		}
	})
	env.Run()
	if got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Errorf("FCFS order broken: %v", got)
	}
}
