// Package comm is the MPI/NCCL stand-in: a message-level collective engine
// (Topology + Communicator, see topology.go and collective.go) that
// executes broadcast/reduce/allreduce as actual simulated message
// exchanges of real float32 segments, plus the closed-form α-β cost
// functions below that serve as its analytic oracle.
//
// The paper's central communication claim is that replacing the round-robin
// (linear, Θ(P)) exchange with a tree reduction costs Θ(log P)(α + |W|β)
// instead of Θ(P)(α + |W|β); these are exactly LinearReduceTime and
// TreeReduceTime. The engine's round-synchronized schedules reproduce
// these formulas to the last bit on contention-free topologies (the
// property the collective tests pin), and diverge from them exactly where
// the analytic model cannot follow: shared-segment contention, pipelined
// chunk overlap, and per-message compressed wire sizes.
//
// The engine survives faults (chaos.go): when a Chaos plan is installed on
// a Topology, every point-to-point send runs a guarded delivery protocol —
// checksummed payloads, per-message acks, timeout/exponential-backoff
// retries — that absorbs seeded message loss and corruption without
// changing what arrives, and MarkDead lets collectives shrink their
// membership around a fail-stopped rank mid-run (survivor-aware schedule
// re-forming in collective.go and hier.go). Every fault outcome is a pure
// function of the chaos seed and the message identity, never of event
// arrival order, so faulty runs stay bit-reproducible; with no Chaos
// installed, sends take the exact fault-free fast path.
//
// Beyond the dense collectives, sfb.go carries Poseidon-style
// sufficient-factor broadcasting: FactorAllGather moves each party's
// B·(F+D)-element (dY, X) factor pair of a dense layer to every peer —
// ring or recursive-doubling pattern over the same guarded transport,
// with a leader relay on hierarchical topologies — and
// ReconstructFactors rebuilds Σₚ dYₚᵀ·Xₚ in ascending rank order,
// bit-identical to the dense allreduce of the same gradient. The α-β
// oracles (AnalyticFactorAllGatherTime, FactorAllGatherBytes vs
// DenseAllReduceBytes) feed core's per-layer hybrid transport selector.
package comm

import (
	"math"
	"math/bits"

	"scaledl/internal/tensor"
)

// Transferer is any channel with an n-byte transfer cost; hw.Link and
// hw.SaturatingLink satisfy it.
type Transferer interface {
	Time(n int64) float64
}

// ScaleLink wraps base so every transfer takes factor times as long — the
// degraded-segment model of the failure scenarios (a flapping NIC, a
// congested switch, a PCIe link trained down to fewer lanes). factor must
// be positive; values below 1 model a faster-than-nominal link.
func ScaleLink(base Transferer, factor float64) Transferer {
	if factor <= 0 {
		panic("comm: link scale factor must be positive")
	}
	if factor == 1 {
		return base
	}
	return scaledLink{base: base, factor: factor}
}

type scaledLink struct {
	base   Transferer
	factor float64
}

func (s scaledLink) Time(n int64) float64 { return s.base.Time(n) * s.factor }

// rounds returns ceil(log2(p)), the depth of a binomial tree over p nodes.
func rounds(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// LinearReduceTime is the cost of the round-robin exchange the original
// EASGD uses: the master interacts with the P workers one at a time,
// (P−1 transfers for a reduction rooted at one of them): Θ(P)(α + nβ).
func LinearReduceTime(l Transferer, n int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * l.Time(n)
}

// LinearBroadcastTime mirrors LinearReduceTime for the downstream direction.
func LinearBroadcastTime(l Transferer, n int64, p int) float64 {
	return LinearReduceTime(l, n, p)
}

// TreeReduceTime is the cost of a binomial-tree reduction over p nodes:
// ceil(log2 P) rounds, each moving the full n bytes in parallel pairs —
// Θ(log P)(α + nβ), the paper's replacement for round-robin.
func TreeReduceTime(l Transferer, n int64, p int) float64 {
	return float64(rounds(p)) * l.Time(n)
}

// TreeBroadcastTime is the cost of a binomial-tree broadcast (same shape).
func TreeBroadcastTime(l Transferer, n int64, p int) float64 {
	return TreeReduceTime(l, n, p)
}

// TreeAllReduceTime is reduce-to-root plus broadcast-from-root, the
// composite Sync EASGD performs every iteration (steps 2-3 of §5.1).
func TreeAllReduceTime(l Transferer, n int64, p int) float64 {
	return TreeReduceTime(l, n, p) + TreeBroadcastTime(l, n, p)
}

// RingAllReduceTime is the bandwidth-optimal ring allreduce cost,
// 2(P−1)(α + chunk·β) with float32-element-granular chunks
// (chunk = 4·ceil(ceil(n/4)/P) bytes, the largest chunk in flight per
// synchronized step — exactly what the simulated ring pays); included as
// the ablation alternative to the tree (better for huge n, worse for
// small n because of its 2(P−1) latency term).
func RingAllReduceTime(l Transferer, n int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	elems := (n + 3) / 4
	chunkElems := (elems + int64(p) - 1) / int64(p)
	return 2 * float64(p-1) * l.Time(4*chunkElems)
}

// RHDAllReduceTime is the recursive halving/doubling allreduce cost for a
// power-of-two party count: log2(P) halving steps of sizes n/2, n/4, …,
// n/P mirrored by log2(P) doubling steps — 2(log2(P)·α + n(1−1/P)β).
// Sizes are float32-element-granular with ceil halving, matching the
// simulated schedule's largest in-flight message per step. Non-power-of-
// two counts fall back to the binomial tree, as the engine does.
func RHDAllReduceTime(l Transferer, n int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	if p&(p-1) != 0 {
		return TreeAllReduceTime(l, n, p)
	}
	elems := (n + 3) / 4
	var t float64
	for parts := p; parts > 1; parts >>= 1 {
		elems = (elems + 1) / 2
		t += 2 * l.Time(4*elems)
	}
	return t
}

// HierarchicalAllReduceTime is a two-level allreduce: each node first
// combines its local workers over the fast intra-node link (tree over
// perNode parties), one leader per node runs the inter-node allreduce over
// the fabric (tree over nodes), then the result fans back out locally.
// This is how multi-GPU multi-node systems (the paper's 16-node × 2-K80
// cluster) avoid putting every GPU on the fabric. It is the tree/tree case
// of HierAllReduceTime.
func HierarchicalAllReduceTime(intra, inter Transferer, n int64, nodes, perNode int) float64 {
	t, _ := HierAllReduceTime(intra, inter, n, nodes, perNode, ScheduleTree, ScheduleTree)
	return t
}

// HierAllReduceTime is the composed closed-form oracle of the hierarchical
// allreduce: intra-node reduce + inter-node allreduce among leaders +
// intra-node broadcast, under the given schedule pair. It is what the
// simulated HierAllReduce completes at exactly on contention-free composed
// topologies (the extension of invariant 1 to two levels). The second
// return is false when either level's schedule has no closed form (the
// pipelined chain).
func HierAllReduceTime(intra, inter Transferer, n int64, nodes, perNode int, intraSched, interSched Schedule) (float64, bool) {
	if nodes < 1 || perNode < 1 {
		panic("comm: hierarchical allreduce needs nodes, perNode >= 1")
	}
	red, ok1 := intraSched.AnalyticReduceTime(intra, n, perNode)
	bc, ok2 := intraSched.AnalyticBroadcastTime(intra, n, perNode)
	fabric, ok3 := interSched.AnalyticAllReduceTime(inter, n, nodes)
	if !ok1 || !ok2 || !ok3 {
		return 0, false
	}
	return red + fabric + bc, true
}

// ReduceSum accumulates src vectors into dst elementwise, in slice order
// (deterministic summation). dst must be pre-initialized (typically to the
// first contribution or zeros).
func ReduceSum(dst []float32, srcs ...[]float32) {
	for _, s := range srcs {
		tensor.AXPY(1, s, dst)
	}
}

// Average overwrites dst with the elementwise mean of the srcs.
func Average(dst []float32, srcs ...[]float32) {
	if len(srcs) == 0 {
		panic("comm: Average of nothing")
	}
	copy(dst, srcs[0])
	for _, s := range srcs[1:] {
		tensor.AXPY(1, s, dst)
	}
	tensor.Scale(1/float32(len(srcs)), dst)
}

// Plan describes how a model's parameters travel: as one packed message
// (the §5.2 contiguous layout) or as one message per layer (the layout of
// conventional frameworks the paper improves on).
type Plan struct {
	// LayerBytes holds the per-layer parameter sizes in bytes.
	LayerBytes []int64
	// Packed selects the single-message plan.
	Packed bool
	// GatherBW, when nonzero, charges the per-layer plan a staging pass at
	// this bandwidth for gathering/scattering noncontiguous layer buffers
	// (the paper's "continuous memory access has a higher cache-hit ratio"
	// effect). The packed plan never pays it.
	GatherBW float64
}

// TotalBytes sums the plan's payload.
func (p Plan) TotalBytes() int64 {
	var n int64
	for _, b := range p.LayerBytes {
		n += b
	}
	return n
}

// TransferTime is the cost of moving the whole model once across l.
func (p Plan) TransferTime(l Transferer) float64 {
	if p.Packed {
		return l.Time(p.TotalBytes())
	}
	var t float64
	for _, b := range p.LayerBytes {
		t += l.Time(b)
	}
	if p.GatherBW > 0 {
		t += float64(p.TotalBytes()) / p.GatherBW
	}
	return t
}

// AllReduceTime is the cost of a tree allreduce of the whole model under
// this plan: the packed plan runs one tree over the packed buffer; the
// per-layer plan runs one tree per layer (how layer-at-a-time frameworks
// communicate), paying the latency term once per layer per round.
func (p Plan) AllReduceTime(l Transferer, parties int) float64 {
	if p.Packed {
		return TreeAllReduceTime(l, p.TotalBytes(), parties)
	}
	var t float64
	for _, b := range p.LayerBytes {
		t += TreeAllReduceTime(l, b, parties)
	}
	if p.GatherBW > 0 {
		t += float64(p.TotalBytes()) / p.GatherBW
	}
	return t
}

// CrossoverBytes returns the message size above which a ring allreduce
// beats a tree allreduce on link l for p parties, found by bisection; the
// ablation experiment reports it. Returns math.MaxInt64 if the ring never
// wins below 1 GiB.
func CrossoverBytes(l Transferer, p int) int64 {
	lo, hi := int64(1), int64(1)<<30
	if RingAllReduceTime(l, hi, p) >= TreeAllReduceTime(l, hi, p) {
		return math.MaxInt64
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if RingAllReduceTime(l, mid, p) < TreeAllReduceTime(l, mid, p) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
