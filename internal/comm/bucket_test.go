package comm

import (
	"fmt"
	"reflect"
	"testing"

	"scaledl/internal/sim"
)

// layeredPlan is a per-layer plan over the given element counts.
func layeredPlan(elems ...int) Plan {
	bytes := make([]int64, len(elems))
	for i, e := range elems {
		bytes[i] = int64(e) * 4
	}
	return Plan{LayerBytes: bytes, Packed: true}
}

// TestBucketizerLayout pins the coalescing rule: backward (descending)
// segment order, buckets close at bucketBytes, segments never split, and
// the bucket ranges tile the model vector exactly.
func TestBucketizerLayout(t *testing.T) {
	plan := layeredPlan(100, 300, 50, 600) // offsets 0,100,400,450,1050
	cases := []struct {
		bucketBytes int64
		wantRanges  [][2]int // emission order: last layers first
	}{
		// Degenerate: smaller than every layer — one bucket per segment.
		{4, [][2]int{{450, 1050}, {400, 450}, {100, 400}, {0, 100}}},
		// Degenerate: larger than the whole model — single monolithic bucket.
		{1 << 30, [][2]int{{0, 1050}}},
		// Zero (and negative) mean monolithic too.
		{0, [][2]int{{0, 1050}}},
		// Exactly on a segment boundary: 600 elems = 2400 bytes closes the
		// first bucket at layer 3 alone; the next closes at layers 1+2
		// (300+50=350 elems=1400 bytes < 2400, so it keeps absorbing layer 0).
		{2400, [][2]int{{450, 1050}, {0, 450}}},
		// Mid-segment threshold: 160 bytes = 40 elems; every segment alone
		// already exceeds it.
		{160, [][2]int{{450, 1050}, {400, 450}, {100, 400}, {0, 100}}},
	}
	for _, c := range cases {
		bz := NewBucketizer(plan, c.bucketBytes)
		var got [][2]int
		for _, b := range bz.Buckets() {
			got = append(got, [2]int{b.Lo, b.Hi})
		}
		if !reflect.DeepEqual(got, c.wantRanges) {
			t.Errorf("bucketBytes=%d: ranges %v, want %v", c.bucketBytes, got, c.wantRanges)
		}
		// Tiling: emission order is descending and contiguous from the top.
		bs := bz.Buckets()
		if bs[0].Hi != 1050 || bs[len(bs)-1].Lo != 0 {
			t.Errorf("bucketBytes=%d: buckets do not span the model", c.bucketBytes)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].Hi != bs[i-1].Lo {
				t.Errorf("bucketBytes=%d: gap between buckets %d and %d", c.bucketBytes, i-1, i)
			}
		}
		// Segment mapping and sub-plans are consistent.
		for seg := range plan.LayerBytes {
			b := bz.BucketOf(seg)
			if seg < b.SegLo || seg > b.SegHi {
				t.Errorf("BucketOf(%d) returned bucket over segs [%d,%d]", seg, b.SegLo, b.SegHi)
			}
		}
		for _, b := range bs {
			if got, want := bz.SubPlan(b).TotalBytes(), b.Bytes(); got != want {
				t.Errorf("SubPlan of bucket %d totals %d bytes, bucket says %d", b.ID, got, want)
			}
		}
	}
}

// TestBucketizerSplitWire pins the pro-rata wire split: raw wire splits
// into exactly the bucket sizes, compressed wire preserves the total.
func TestBucketizerSplitWire(t *testing.T) {
	plan := layeredPlan(100, 300, 600)
	bz := NewBucketizer(plan, 1) // one bucket per segment
	raw := bz.SplitWire(plan.TotalBytes())
	if !reflect.DeepEqual(raw, []int64{2400, 1200, 400}) {
		t.Errorf("raw wire split %v", raw)
	}
	comp := bz.SplitWire(101)
	var sum int64
	for _, w := range comp {
		sum += w
	}
	if sum != 101 {
		t.Errorf("compressed wire split %v does not sum to 101", comp)
	}
}

// bucketedAllReduce runs one allreduce as overlapped per-bucket Range
// collectives: every party forks one process per bucket, so multiple rounds
// of the same communicator are in flight concurrently.
func bucketedAllReduce(t *testing.T, sched Schedule, parties int, plan Plan, bucketBytes int64, inputs [][]float32) (float64, [][]float32) {
	t.Helper()
	env := sim.NewEnv()
	topo := NewUniform(env, parties, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(parties), Plan: plan, Schedule: sched})
	bz := NewBucketizer(plan, bucketBytes)
	bufs := make([][]float32, parties)
	for i := range bufs {
		bufs[i] = append([]float32(nil), inputs[i]...)
	}
	for r := 0; r < parties; r++ {
		rank := r
		env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
			comps := make([]*sim.Completion, 0, bz.NumBuckets())
			for _, bk := range bz.Buckets() {
				bk := bk
				comps = append(comps, env.Fork(fmt.Sprintf("b%d.%d", rank, bk.ID), func(bp *sim.Proc) {
					c.Endpoint(rank).AllReduceRange(bp, bk.ID, bufs[rank], bk.Lo, bk.Hi)
				}))
			}
			for _, cm := range comps {
				cm.Wait(p)
			}
		})
	}
	end := env.Run()
	env.Close()
	return end, bufs
}

// The satellite invariant: bucketed, overlapped allreduce produces
// bit-identical reduced gradients to the monolithic path for every schedule
// and bucket size — including the degenerate sizes (smaller than one layer,
// larger than the whole model, exactly on a segment boundary).
func TestBucketedAllReduceBitIdenticalToMonolithic(t *testing.T) {
	layers := []int{64, 7, 129, 256, 31} // offsets: boundary at 200*4=800 bytes nowhere round — use explicit cases
	total := 0
	for _, l := range layers {
		total += l
	}
	plan := layeredPlan(layers...)
	for _, sched := range []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleChain, ScheduleLinear} {
		for _, p := range []int{2, 3, 4, 8} {
			inputs := randInputs(p, total, int64(p)*13+int64(sched))
			monoEnd, mono := simAllReduce(t, sched, p, total, inputs)
			// The ordered-reduction invariant extends to buckets: like the
			// monolithic schedules (TestAllReduceBitIdenticalToReduceSum),
			// every bucketed result must equal ReduceSum in rank order.
			want := make([]float32, total)
			ReduceSum(want, inputs...)
			if !reflect.DeepEqual(mono[0], want) {
				t.Fatalf("%v P=%d: monolithic reference differs from ReduceSum", sched, p)
			}
			for _, bucketBytes := range []int64{
				1,                   // smaller than every layer: one bucket per layer
				int64(total)*4 + 64, // larger than the whole model: monolithic bucket
				int64(31+256) * 4,   // exactly the last-two-layers boundary
				1024,                // mid-segment threshold
			} {
				end, bufs := bucketedAllReduce(t, sched, p, plan, bucketBytes, inputs)
				for rank := range bufs {
					if !reflect.DeepEqual(bufs[rank], mono[rank]) {
						t.Fatalf("%v P=%d bucketBytes=%d rank %d: bucketed result differs from monolithic",
							sched, p, bucketBytes, rank)
					}
				}
				if end <= 0 {
					t.Fatalf("%v P=%d bucketBytes=%d: no simulated time elapsed", sched, p, bucketBytes)
				}
				_ = monoEnd
			}
		}
	}
}

// A single Range allreduce over [lo,hi) completes at exactly the analytic
// oracle of the range's bytes — the Range entry points keep the
// oracle-equality invariant of the monolithic collectives.
func TestAllReduceRangeMatchesOracle(t *testing.T) {
	plan := layeredPlan(1000, 2000, 3000)
	lo, hi := 1000, 3000 // the middle segment
	for _, sched := range []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleLinear} {
		p := 4
		inputs := randInputs(p, 6000, int64(sched)+3)
		env := sim.NewEnv()
		topo := NewUniform(env, p, testLink)
		c := NewCommunicator(topo, CommConfig{Parties: Ranks(p), Plan: plan, Schedule: sched})
		bufs := make([][]float32, p)
		for i := range bufs {
			bufs[i] = append([]float32(nil), inputs[i]...)
		}
		end := runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
			c.Endpoint(rank).AllReduceRange(pr, 0, bufs[rank], lo, hi)
		})
		want, ok := sched.AnalyticAllReduceTime(testLink, int64(hi-lo)*4, p)
		if !ok {
			t.Fatalf("%v has no oracle", sched)
		}
		if relErr(end, want) > 1e-9 {
			t.Errorf("%v: range allreduce %v, oracle %v", sched, end, want)
		}
		// Elements outside the range are untouched.
		for rank := range bufs {
			for i := 0; i < lo; i++ {
				if bufs[rank][i] != inputs[rank][i] {
					t.Fatalf("%v rank %d: element %d outside range changed", sched, rank, i)
				}
			}
			for i := hi; i < 6000; i++ {
				if bufs[rank][i] != inputs[rank][i] {
					t.Fatalf("%v rank %d: element %d outside range changed", sched, rank, i)
				}
			}
		}
	}
}

// ReduceRange and BroadcastRange move only the range, with reduce results
// bit-identical to ReduceSum over the range.
func TestReduceBroadcastRange(t *testing.T) {
	plan := layeredPlan(100, 200, 300)
	p, total := 5, 600
	lo, hi := 300, 600
	inputs := randInputs(p, total, 21)
	env := sim.NewEnv()
	topo := NewUniform(env, p, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(p), Plan: plan})
	bufs := make([][]float32, p)
	for i := range bufs {
		bufs[i] = append([]float32(nil), inputs[i]...)
	}
	runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
		c.Endpoint(rank).ReduceRange(pr, 0, 1, bufs[rank], lo, hi)
		c.Endpoint(rank).BroadcastRange(pr, 1, 1, bufs[rank], lo, hi)
	})
	want := make([]float32, hi-lo)
	srcs := make([][]float32, p)
	for i := range srcs {
		srcs[i] = inputs[i][lo:hi]
	}
	ReduceSum(want, srcs...)
	for rank := range bufs {
		if !reflect.DeepEqual(bufs[rank][lo:hi], want) {
			t.Fatalf("rank %d: reduce+bcast range differs from ordered sum", rank)
		}
		for i := 0; i < lo; i++ {
			if bufs[rank][i] != inputs[rank][i] {
				t.Fatalf("rank %d: element %d outside range changed", rank, i)
			}
		}
	}
}

// Unpacked plans pay gather staging pro rata over buckets: the bucketed
// staging total equals the monolithic pass.
func TestRangeStagingProRata(t *testing.T) {
	plan := Plan{LayerBytes: []int64{4000, 8000, 12000}, Packed: false, GatherBW: 1e6}
	p := 2
	run := func(body func(c *Communicator, pr *sim.Proc, rank int)) float64 {
		env := sim.NewEnv()
		topo := NewUniform(env, p, testLink)
		c := NewCommunicator(topo, CommConfig{Parties: Ranks(p), Plan: plan})
		return runCollective(t, topo, c, func(pr *sim.Proc, rank int) { body(c, pr, rank) })
	}
	bz := NewBucketizer(plan, 1)
	whole := run(func(c *Communicator, pr *sim.Proc, rank int) {
		buf := make([]float32, 6000)
		c.Endpoint(rank).AllReduce(pr, 0, buf)
	})
	bucketed := run(func(c *Communicator, pr *sim.Proc, rank int) {
		buf := make([]float32, 6000)
		for _, bk := range bz.Buckets() {
			c.Endpoint(rank).AllReduceRange(pr, bk.ID, buf, bk.Lo, bk.Hi)
		}
	})
	// Sequentially-issued bucketed collectives pay the same staging and the
	// same per-segment wire, so the end times agree to float tolerance.
	if relErr(bucketed, whole) > 1e-9 {
		t.Errorf("sequential bucketed allreduce %v, monolithic %v", bucketed, whole)
	}
}

func TestRangeValidation(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	topo := NewUniform(env, 2, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(2), Plan: layeredPlan(10)})
	for _, rng := range [][2]int{{-1, 5}, {5, 3}, {0, 11}} {
		rng := rng
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v did not panic", rng)
				}
			}()
			c.Endpoint(0).AllReduceRange(nil, 0, nil, rng[0], rng[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty-plan bucketizer did not panic")
			}
		}()
		NewBucketizer(Plan{}, 4)
	}()
}

// TestBucketizerMasked pins the hybrid mode's layout rule: skipped segments
// belong to no bucket, buckets never span a skipped segment, and the
// surviving ranges still tile exactly the unskipped elements.
func TestBucketizerMasked(t *testing.T) {
	plan := layeredPlan(100, 300, 50, 600) // offsets 0,100,400,450,1050
	cases := []struct {
		bucketBytes int64
		skip        []bool
		wantRanges  [][2]int
	}{
		// Middle segment skipped: the runs {3} and {1}, {0} bucket apart.
		{4, []bool{false, false, true, false}, [][2]int{{450, 1050}, {100, 400}, {0, 100}}},
		// Huge buckets cannot bridge the skipped segment.
		{1 << 30, []bool{false, false, true, false}, [][2]int{{450, 1050}, {0, 400}}},
		// Skipping the ends leaves the middle run.
		{1 << 30, []bool{true, false, false, true}, [][2]int{{100, 450}}},
		// nil mask is the plain bucketizer.
		{1 << 30, nil, [][2]int{{0, 1050}}},
	}
	for _, c := range cases {
		bz := NewBucketizerMasked(plan, c.bucketBytes, c.skip)
		var got [][2]int
		for _, b := range bz.Buckets() {
			got = append(got, [2]int{b.Lo, b.Hi})
		}
		if !reflect.DeepEqual(got, c.wantRanges) {
			t.Errorf("bucketBytes=%d skip=%v: ranges %v, want %v", c.bucketBytes, c.skip, got, c.wantRanges)
		}
		for seg := range plan.LayerBytes {
			skipped := c.skip != nil && c.skip[seg]
			if got := bz.Skipped(seg); got != skipped {
				t.Errorf("skip=%v: Skipped(%d) = %v", c.skip, seg, got)
			}
			if !skipped {
				if b := bz.BucketOf(seg); seg < b.SegLo || seg > b.SegHi {
					t.Errorf("BucketOf(%d) bucket spans [%d,%d]", seg, b.SegLo, b.SegHi)
				}
			}
		}
	}
	// All segments skipped: no buckets; BucketOf panics on a masked segment.
	bz := NewBucketizerMasked(plan, 0, []bool{true, true, true, true})
	if bz.NumBuckets() != 0 {
		t.Errorf("all-skipped layout has %d buckets", bz.NumBuckets())
	}
	defer func() {
		if recover() == nil {
			t.Error("BucketOf on a masked segment did not panic")
		}
	}()
	bz.BucketOf(1)
}
