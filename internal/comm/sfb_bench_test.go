package comm

import (
	"fmt"
	"testing"

	"scaledl/internal/hw"
	"scaledl/internal/sim"
)

// Sufficient-factor versus dense microbenchmarks for the Poseidon operating
// point: one fc 4096×4096 layer (16.8M gradient elements, 67 MB dense
// payload) at batch 32 over 8 parties on FDR InfiniBand. The dense path
// allreduces F·D+F elements; the SFB path allgathers each party's B·(F+D)
// factor entries (1 MB each — a 16× wire cut at this shape). Both run
// size-only (the traffic/clock machinery without payload math — the
// reconstruction compute is charged by core, not here), so sim_ms is a pure
// function of the cost models and BENCH_comm.json pins it: the gate fails CI
// if either transport's simulated time drifts, i.e. if the crossover the
// hybrid selector banks on moves silently. Bit-identity of the two paths is
// pinned separately by core's TestSFBBitIdenticalToDenseAllReduce.
const (
	benchFCF = 4096 // fc units (F)
	benchFCD = 4096 // fc input dim (D)
	benchFCB = 32   // minibatch per party
	benchFCP = 8    // parties
)

// BenchmarkFCDenseAllReduce is the dense transport: a tree allreduce of the
// full F·D+F gradient.
func BenchmarkFCDenseAllReduce(b *testing.B) {
	elems := benchFCF*benchFCD + benchFCF
	var simTime float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		env := sim.NewEnv()
		topo := NewUniform(env, benchFCP, hw.MellanoxFDR)
		c := NewCommunicator(topo, CommConfig{
			Parties: Ranks(benchFCP), Plan: packedPlan(elems), Schedule: ScheduleTree,
		})
		for r := 0; r < benchFCP; r++ {
			rank := r
			env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
				c.Endpoint(rank).AllReduceSize(p, 0)
			})
		}
		simTime = env.Run()
		env.Close()
	}
	b.ReportMetric(simTime*1e3, "sim_ms")
}

// BenchmarkFCSFBFactorAllGather is the factor transport for the same layer:
// every party broadcasts its B·(F+D)-element factor pair to all peers
// (recursive-doubling allgather at a power-of-two party count).
func BenchmarkFCSFBFactorAllGather(b *testing.B) {
	entry := benchFCB * (benchFCF + benchFCD)
	var simTime float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		env := sim.NewEnv()
		topo := NewUniform(env, benchFCP, hw.MellanoxFDR)
		c := NewCommunicator(topo, CommConfig{
			Parties: Ranks(benchFCP), Plan: packedPlan(entry), Schedule: ScheduleTree,
		})
		for r := 0; r < benchFCP; r++ {
			rank := r
			env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
				c.Endpoint(rank).FactorAllGatherSize(p, 0, entry)
			})
		}
		simTime = env.Run()
		env.Close()
	}
	b.ReportMetric(simTime*1e3, "sim_ms")
}
