package comm

import (
	"fmt"

	"scaledl/internal/sim"
)

// This file composes flat intra-node topologies into the two-level clusters
// the paper runs on: multi-GPU nodes whose GPUs sit behind a PCIe tree,
// joined by an Aries or InfiniBand fabric. Every topology the repo
// simulated before this was flat — intra-node and inter-node bytes were
// charged identically — whereas the paper's Fig. 12/13-style multi-node
// efficiencies hinge on exactly that asymmetry. NewMultiLevel grafts one
// sub-topology per node (built by any existing constructor: NewPCIeTree,
// NewUniform, NewBus) under an inter-node α-β fabric, with an optional
// per-node NIC concurrency bound so a node's concurrent fabric streams
// contend for its single port — the effect that makes flat collectives
// collapse at scale and hierarchical ones win (FireCaffe's reduction-tree
// argument, Poseidon's hybrid intra/inter-node communication).

// MultiLevelConfig describes a two-level cluster composition.
type MultiLevelConfig struct {
	// Nodes is the machine count; PerNode is invoked once per node to build
	// its intra-node sub-topology on the shared environment. Every node's
	// sub-topology must have the same size (homogeneous cluster).
	Nodes   int
	PerNode func(env *sim.Env, node int) *Topology
	// Fabric is the inter-node link: every cross-node pair of sub-topology
	// nodes is wired through it (the model charges the fabric end to end;
	// the intra-node hops to reach the NIC are folded into its α).
	Fabric Transferer
	// Leader is the local rank that acts as each node's fabric endpoint in
	// hierarchical collectives (default 0; metadata consumed by
	// HierConfig/LeaderID, the fabric itself connects all pairs).
	Leader int
	// NICConcurrency bounds how many fabric transfers one node carries at
	// once (its network port). 0 means unconstrained — the analytic model's
	// assumption; 1 models the single-port nodes of the paper's clusters,
	// making a flat collective's many concurrent per-GPU fabric streams
	// serialize while a hierarchical one sends a single leader stream.
	NICConcurrency int
}

// MultiLevel is a composed two-level topology: nodes×perNode sub-nodes with
// intra-node paths taken from the per-node sub-topologies and cross-node
// paths riding the fabric. The underlying flat Topology is exposed so both
// flat communicators (every GPU on the fabric — the baseline) and
// hierarchical ones (leaders only) can run on the same wires.
type MultiLevel struct {
	topo    *Topology
	nodes   int
	perNode int
	leader  int
}

// NewMultiLevel builds the composed topology.
func NewMultiLevel(env *sim.Env, cfg MultiLevelConfig) *MultiLevel {
	if cfg.Nodes < 1 {
		panic("comm: multi-level topology needs at least one node")
	}
	if cfg.PerNode == nil || cfg.Fabric == nil {
		panic("comm: multi-level topology needs a PerNode builder and a Fabric link")
	}
	subs := make([]*Topology, cfg.Nodes)
	for i := range subs {
		subs[i] = cfg.PerNode(env, i)
		if subs[i].Nodes() != subs[0].Nodes() {
			panic(fmt.Sprintf("comm: per-node sub-topologies differ in size (%d vs %d)",
				subs[i].Nodes(), subs[0].Nodes()))
		}
	}
	k := subs[0].Nodes()
	if cfg.Leader < 0 || cfg.Leader >= k {
		panic(fmt.Sprintf("comm: leader rank %d outside sub-topology of %d", cfg.Leader, k))
	}
	t := NewTopology(env, cfg.Nodes*k)
	// Cross-node transfers ride the fabric, through both endpoints' NICs
	// when bounded. NICs are acquired in ascending node order — a global
	// order over the shared segments — so concurrent transfers cannot
	// deadlock. Via pairs are built once per ordered node pair; the path
	// rule below keeps construction O(nodes²) in machines rather than
	// O(P²) in parties, which is what makes P=1024 clusters cheap.
	var crossVia [][]*sim.Resource
	if cfg.NICConcurrency > 0 {
		nics := make([]*sim.Resource, cfg.Nodes)
		for i := range nics {
			nics[i] = sim.NewResource(env, fmt.Sprintf("nic%d", i), cfg.NICConcurrency)
		}
		crossVia = make([][]*sim.Resource, cfg.Nodes*cfg.Nodes)
		for a := 0; a < cfg.Nodes; a++ {
			for b := 0; b < cfg.Nodes; b++ {
				if a == b {
					continue
				}
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				crossVia[a*cfg.Nodes+b] = []*sim.Resource{nics[lo], nics[hi]}
			}
		}
	}
	// Intra-node pairs delegate to their node's sub-topology (links and
	// shared segments carry over, so switch contention inside a node
	// survives the composition); cross-node pairs take the fabric.
	fabric := cfg.Fabric
	nodes := cfg.Nodes
	t.SetPathRule(func(src, dst int) Path {
		a, b := src/k, dst/k
		if a == b {
			return subs[a].pathFor(src-a*k, dst-b*k)
		}
		var via []*sim.Resource
		if crossVia != nil {
			via = crossVia[a*nodes+b]
		}
		return Path{Link: fabric, Via: via}
	})
	return &MultiLevel{topo: t, nodes: cfg.Nodes, perNode: k, leader: cfg.Leader}
}

// Topology returns the composed flat topology the collectives run on.
func (m *MultiLevel) Topology() *Topology { return m.topo }

// NodeCount returns the machine count (the number of sub-topologies).
func (m *MultiLevel) NodeCount() int { return m.nodes }

// PerNode returns the size of one node's sub-topology.
func (m *MultiLevel) PerNode() int { return m.perNode }

// GlobalID maps (node, local sub-topology rank) to the composed node id.
func (m *MultiLevel) GlobalID(node, local int) int {
	if node < 0 || node >= m.nodes || local < 0 || local >= m.perNode {
		panic(fmt.Sprintf("comm: (%d,%d) outside %d nodes of %d", node, local, m.nodes, m.perNode))
	}
	return node*m.perNode + local
}

// LeaderID returns the composed node id of a node's fabric leader.
func (m *MultiLevel) LeaderID(node int) int { return m.GlobalID(node, m.leader) }

// Group maps a list of local ranks to one node's composed ids — the party
// list of that node's intra communicator.
func (m *MultiLevel) Group(node int, locals ...int) []int {
	out := make([]int, len(locals))
	for i, l := range locals {
		out[i] = m.GlobalID(node, l)
	}
	return out
}

// Groups builds every node's party list from the same local ranks — the
// Groups field of a HierConfig over a homogeneous cluster.
func (m *MultiLevel) Groups(locals ...int) [][]int {
	out := make([][]int, m.nodes)
	for g := range out {
		out[g] = m.Group(g, locals...)
	}
	return out
}
