package comm

import (
	"fmt"
	"math"

	"scaledl/internal/sim"
)

// This file is the semantic fault layer of the message fabric: seeded
// message loss and payload corruption, per-message acknowledgement with
// timeout/retry/exponential backoff, cancellation of transfers to dead
// nodes, and fail-stop node death. Unlike the timing-only knobs of PR 6
// (stragglers, degraded links), these faults change *what happens* — a
// message can vanish or arrive garbled — and the fabric recovers instead
// of deadlocking: every lost or corrupt attempt is detected (by the
// sender's ack timeout, or the receiver's checksum) and resent, with each
// attempt's bytes charged to the wire so retry traffic is visible in
// Breakdown.Bytes.
//
// Determinism contract: whether attempt a of message m on link src→dst is
// lost or garbled is a pure function of (Chaos.Seed, src, dst, m, a) via
// sim.Dice — never of event order — so two runs with the same seed and
// configuration inject exactly the same faults and produce bit-identical
// traces. With Chaos unset and no dead nodes, Send takes the exact pre-PR
// fast path: fault-free runs are bit-identical to builds without this
// layer.

// Chaos configures seeded semantic fault injection on a Topology. Zero
// rates with a non-nil Chaos still activate the acknowledgement protocol
// (every delivery pays an AckBytes reverse-path message).
type Chaos struct {
	// Seed drives the deterministic fault plan (sim.Dice).
	Seed int64
	// Loss is the per-attempt probability a message vanishes on the wire.
	Loss float64
	// Corrupt is the per-attempt probability a message arrives garbled;
	// the receiver's checksum rejects it and the sender's ack timeout
	// triggers the resend. Payloads that carry no checksum (raw buffers)
	// are dropped instead — the corruption is still detected, by the
	// frame, just never delivered.
	Corrupt float64
	// MaxAttempts bounds retries per message (default 8); exhausting them
	// panics — an undeliverable message under a survivor-aware collective
	// is a configuration error, not a scenario.
	MaxAttempts int
	// Backoff is the exponential backoff base between attempts (default 2):
	// attempt a waits (link+ack time) × Backoff^a before resending.
	Backoff float64
	// AckBytes is the acknowledgement's wire size (default 16).
	AckBytes int64
}

// withDefaults fills the zero-value knobs.
func (c Chaos) withDefaults() Chaos {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.Backoff <= 0 {
		c.Backoff = 2
	}
	if c.AckBytes <= 0 {
		c.AckBytes = 16
	}
	return c
}

// ChaosStats counts the fault layer's activity on a topology.
type ChaosStats struct {
	Attempts    int64 // message send attempts, including retries
	Losses      int64 // attempts dropped on the wire
	Corruptions int64 // attempts delivered garbled and rejected by checksum
	Cancelled   int64 // transfers cut short by the destination's death
}

// LossyLink wraps a Transferer with extra per-link loss and corruption
// rates, added on top of the topology-wide Chaos rates for messages routed
// over it — the "one bad cable" model. It must be the outermost wrapper on
// the path's link (the fabric detects it by type), and it only takes
// effect on a topology with Chaos set (the seeded plan and the retry
// protocol live there).
type LossyLink struct {
	Base          Transferer
	Loss, Corrupt float64
}

// Time returns the underlying link's transfer time.
func (l LossyLink) Time(n int64) float64 { return l.Base.Time(n) }

// WrapLossy replaces the installed src→dst route's link with a LossyLink
// carrying the extra rates, keeping the route's shared segments — the
// one-call way to degrade a single cable of a built topology.
func (t *Topology) WrapLossy(src, dst int, loss, corrupt float64) {
	t.checkNode(src)
	t.checkNode(dst)
	path := t.pathFor(src, dst)
	if path.Link == nil {
		panic(fmt.Sprintf("comm: no path %d->%d to wrap", src, dst))
	}
	t.SetPath(src, dst, LossyLink{Base: path.Link, Loss: loss, Corrupt: corrupt}, path.Via...)
}

// TransferTime returns the modeled wire time of n bytes on the src→dst
// route's link, ignoring contention — the sizing primitive for timeouts
// and deadlines.
func (t *Topology) TransferTime(src, dst int, n int64) float64 {
	t.checkNode(src)
	t.checkNode(dst)
	path := t.pathFor(src, dst)
	if path.Link == nil {
		panic(fmt.Sprintf("comm: no path %d->%d", src, dst))
	}
	return path.Link.Time(n)
}

// Sealed is a payload carrying an end-to-end checksum. The fault layer
// seals payloads at first send, delivers corrupted attempts as garbled
// deep copies (stale checksum), and receivers reject any payload whose
// Verify fails — comm's collective messages implement it.
type Sealed interface {
	// Seal computes and stores the checksum over the current contents.
	Seal()
	// Verify reports whether the contents still match the checksum
	// (unsealed payloads verify trivially).
	Verify() bool
	// Garble returns a corrupted deep copy with the stale checksum; the
	// original is untouched so a retry resends pristine data.
	Garble() any
}

// SetChaos installs (or, with nil, removes) seeded fault injection on the
// topology. Call it before any traffic flows.
func (t *Topology) SetChaos(c *Chaos) {
	if c == nil {
		t.chaos = nil
		return
	}
	cc := c.withDefaults()
	t.chaos = &cc
	t.dice = sim.NewDice(cc.Seed)
	if t.retryWait == nil {
		t.retryWait = make([]float64, t.n)
	}
}

// ChaosEnabled reports whether fault injection is active.
func (t *Topology) ChaosEnabled() bool { return t.chaos != nil }

// ChaosStats returns the fault layer's counters so far.
func (t *Topology) ChaosStats() ChaosStats { return t.stats }

// RetryWait returns the cumulative simulated seconds node has spent on
// failed attempts and backoff waits as a *sender* — the retry time a clean
// run would not pay. Coordinating ranks sample deltas to attribute it.
func (t *Topology) RetryWait(node int) float64 {
	if t.retryWait == nil {
		return 0
	}
	return t.retryWait[node]
}

// MarkDead declares node fail-stopped: transfers to it currently in flight
// are cancelled mid-wire (their shared segments released), future sends to
// it are dropped without wire time, and its queued inbox is discarded.
// Idempotent; there is no recovery.
func (t *Topology) MarkDead(node int) {
	t.checkNode(node)
	if t.dead == nil {
		t.dead = make([]bool, t.n)
		t.deadSig = make([]*sim.Signal, t.n)
	}
	if t.dead[node] {
		return
	}
	t.dead[node] = true
	t.hasDead = true
	t.deadSigFor(node).Fire()
	t.inbox[node].Purge(func(v any) bool {
		t.putMsg(v.(*Message))
		return true
	})
}

// IsDead reports whether node has been marked dead.
func (t *Topology) IsDead(node int) bool { return t.dead != nil && t.dead[node] }

// deadSigFor returns node's death signal, creating it on first use so
// in-flight transfers can register against a node that is still alive.
func (t *Topology) deadSigFor(node int) *sim.Signal {
	if t.dead == nil {
		t.dead = make([]bool, t.n)
		t.deadSig = make([]*sim.Signal, t.n)
	}
	if t.deadSig[node] == nil {
		t.deadSig[node] = sim.NewSignal(t.env, "dead")
	}
	return t.deadSig[node]
}

// occupyCancel is occupy with cancellation: the wire delay is interruptible
// by cancel, and a cancelled transfer still releases every held segment —
// no capacity leaks past a death. The attempt's bytes are charged either
// way (the wire was reserved). Returns whether the transfer ran to
// completion.
func (t *Topology) occupyCancel(p *sim.Proc, src, dst int, wireBytes int64, cancel *sim.Signal) bool {
	path := t.pathFor(src, dst)
	if path.Link == nil {
		panic(fmt.Sprintf("comm: no path %d->%d", src, dst))
	}
	for _, r := range path.Via {
		p.Acquire(r)
	}
	interrupted := p.SleepInterruptible(path.Link.Time(wireBytes), cancel)
	for i := len(path.Via) - 1; i >= 0; i-- {
		path.Via[i].Release()
	}
	t.bytes += wireBytes
	return !interrupted
}

// sendGuarded is the slow Send path, taken when chaos is set or any node
// has died. It drops sends to dead destinations, cancels mid-flight on the
// destination's death, and — under chaos — runs the seeded
// loss/corruption plan with acknowledgement, timeout, exponential backoff
// and bounded retries.
func (t *Topology) sendGuarded(p *sim.Proc, src, dst, tag int, payload any, wireBytes int64) {
	if t.IsDead(dst) {
		return
	}
	cancel := t.deadSigFor(dst)
	if t.chaos == nil {
		// Fail-stop only: ordinary delivery, but cancellable.
		if t.occupyCancel(p, src, dst, wireBytes, cancel) && !t.IsDead(dst) {
			t.deliver(src, dst, tag, payload)
		} else {
			t.stats.Cancelled++
		}
		return
	}
	ch := t.chaos
	loss, corrupt := ch.Loss, ch.Corrupt
	path := t.pathFor(src, dst)
	if path.Link == nil {
		panic(fmt.Sprintf("comm: no path %d->%d", src, dst))
	}
	if ll, ok := path.Link.(LossyLink); ok {
		loss += ll.Loss
		corrupt += ll.Corrupt
	}
	sealed, _ := payload.(Sealed)
	if sealed != nil {
		sealed.Seal()
	}
	msgID := t.sendSeq
	t.sendSeq++
	rtt := path.Link.Time(wireBytes) + path.Link.Time(ch.AckBytes)
	for attempt := 0; ; attempt++ {
		t.stats.Attempts++
		start := p.Now()
		if !t.occupyCancel(p, src, dst, wireBytes, cancel) || t.IsDead(dst) {
			t.stats.Cancelled++
			return
		}
		roll := t.dice.Roll(int64(src), int64(dst), msgID, int64(attempt))
		switch {
		case roll < loss:
			t.stats.Losses++
		case roll < loss+corrupt:
			if sealed != nil {
				// Delivered garbled: the receiver's checksum rejects it,
				// so no ack comes back and the timeout resends.
				t.deliver(src, dst, tag, sealed.Garble())
				t.stats.Corruptions++
			} else {
				// No end-to-end checksum to stale: the frame check drops
				// it on arrival, indistinguishable from a loss.
				t.stats.Losses++
			}
		default:
			t.deliver(src, dst, tag, payload)
			// The acknowledgement rides the reverse path (paid by the
			// sender, which is waiting on it).
			t.occupy(p, dst, src, ch.AckBytes)
			return
		}
		// Failed attempt: the wire time was wasted and the sender waits
		// out the ack window with exponential backoff before resending.
		if attempt+1 >= ch.MaxAttempts {
			panic(fmt.Sprintf("comm: message %d->%d undeliverable after %d attempts (loss %.2f, corrupt %.2f)",
				src, dst, ch.MaxAttempts, loss, corrupt))
		}
		if p.SleepInterruptible(rtt*math.Pow(ch.Backoff, float64(attempt)), cancel) || t.IsDead(dst) {
			t.stats.Cancelled++
			return
		}
		t.retryWait[src] += p.Now() - start
	}
}

// deliver places payload in dst's mailbox (no wire time; callers pay it).
func (t *Topology) deliver(src, dst, tag int, payload any) {
	m := t.getMsg()
	*m = Message{Src: src, Tag: tag, Payload: payload}
	t.inbox[dst].Send(m)
}

// rejectCorrupt reports whether a received payload fails its checksum and
// must be ignored (chaos mode only).
func (t *Topology) rejectCorrupt(payload any) bool {
	if t.chaos == nil {
		return false
	}
	s, ok := payload.(Sealed)
	return ok && !s.Verify()
}

// purgeCorrupt sweeps node at's inbox, discarding payloads whose checksum
// fails, so rejected deliveries cannot accumulate behind selective
// receives.
func (t *Topology) purgeCorrupt(at int) {
	if t.chaos == nil {
		return
	}
	t.inbox[at].Purge(func(v any) bool {
		m := v.(*Message)
		if t.rejectCorrupt(m.Payload) {
			t.putMsg(m)
			return true
		}
		return false
	})
}
