package comm

import (
	"fmt"

	"scaledl/internal/sim"
)

// This file is the hierarchical (two-level) collective layer: collectives
// over nodes×GPUs parties on a composed topology (NewMultiLevel) that never
// put every GPU on the fabric. HierAllReduce is the classic structure of
// multi-node multi-GPU training (the paper's 16-node clusters, FireCaffe's
// reduction trees, NCCL's intra/inter split):
//
//	intra-node reduce  → the node's contributions gather at its leader
//	inter-node allreduce → leaders combine over the fabric (any schedule)
//	intra-node broadcast → the result fans back out inside each node
//
// Both pinned engine invariants extend to the composition:
//
//  1. Composed-oracle equality. On contention-free topologies the
//     hierarchical collectives complete at exactly
//     intra-reduce + inter-allreduce + intra-broadcast of the closed-form
//     α-β formulas (HierAllReduceTime), for every round-synchronized
//     (intra, inter) schedule pair.
//  2. Ordered reduction. The intra phase gathers rank-tagged contribution
//     lists (tagged with *global* ranks) instead of partial sums, the
//     inter phase carries whole lists through any schedule
//     (allReduceListSeg), and the final combine runs in ascending global
//     rank order — so HierAllReduce is bit-identical to ReduceSum over all
//     parties in rank order, for EVERY (intra, inter) schedule pair,
//     including the Range/bucketed variants the streaming pipeline uses.
//     Wire cost still charges one partial-sum-sized payload per message,
//     exactly like the real algorithm the timing models.

// HierConfig configures a HierCommunicator.
type HierConfig struct {
	// Groups lists each node's party topology ids in local-rank order;
	// global rank is position in the concatenation (MultiLevel.Groups
	// builds this for a homogeneous cluster).
	Groups [][]int
	// Leader is the local rank of each group's fabric endpoint (default 0).
	Leader int
	// Leaders, when non-nil, overrides Leader with a per-group local rank —
	// the survivor rebuild uses it to keep each original leader in place
	// even as deaths shift local indices.
	Leaders []int
	// GroupTags, when non-nil, overrides the sequential global-rank
	// contribution tags with explicit per-group tags (same shape as
	// Groups). The survivor rebuild tags live members with their original
	// global ranks, preserving the ascending-global-rank combine order.
	GroupTags [][]int
	// Plan is the shared message plan (same semantics as CommConfig.Plan).
	Plan Plan
	// Intra and Inter select the schedules of the two levels: Intra shapes
	// the node-local reduce/broadcast (ring and RHD, allreduce shapes, fall
	// back to the tree there, as in the flat engine), Inter the leader
	// allreduce over the fabric.
	Intra, Inter Schedule
	// ChunkElems is the chain schedules' pipeline granularity.
	ChunkElems int
	// Wire is the per-message wire-size model (nil = raw fp32).
	Wire WireFunc
	// Tag namespaces the composed communicators' messages; the hier
	// communicator uses Tag+1 (intra) and Tag+2 (inter), leaving Tag+0 for
	// a flat communicator sharing the topology. Default 0.
	Tag int
}

// HierCommunicator runs two-level collectives among nodes×group parties.
// Round-number semantics match Communicator: every party issues the same
// sequence with matching rounds, and distinct concurrent collectives
// (e.g. overlapped buckets) use distinct rounds.
type HierCommunicator struct {
	topo     *Topology
	cfg      HierConfig
	plan     Plan
	leaderOf []int // group index -> leader's local rank
	intra    []*Communicator
	inter    *Communicator
	groupOf  []int // global rank -> group index
	localOf  []int // global rank -> local rank within the group
	rankOf   [][]int
	// Survivor state (MarkDead): sub is a fresh two-level communicator over
	// the live membership, rebuilt from the original config at each death
	// (so sub itself never has a sub); liveOf remaps global ranks into it.
	dead   map[int]bool
	sub    *HierCommunicator
	liveOf []int
}

// NewHierCommunicator composes intra-node communicators (one per group,
// contributions tagged with global ranks) and an inter-node communicator
// over the group leaders.
func NewHierCommunicator(t *Topology, cfg HierConfig) *HierCommunicator {
	if len(cfg.Groups) < 1 {
		panic("comm: hierarchical communicator needs at least one group")
	}
	if cfg.Leaders != nil && len(cfg.Leaders) != len(cfg.Groups) {
		panic(fmt.Sprintf("comm: %d leaders for %d groups", len(cfg.Leaders), len(cfg.Groups)))
	}
	if cfg.GroupTags != nil && len(cfg.GroupTags) != len(cfg.Groups) {
		panic(fmt.Sprintf("comm: %d tag groups for %d groups", len(cfg.GroupTags), len(cfg.Groups)))
	}
	hc := &HierCommunicator{topo: t, cfg: cfg, plan: cfg.Plan}
	var leaders, leaderTags []int
	next := 0
	for g, group := range cfg.Groups {
		if len(group) < 1 {
			panic(fmt.Sprintf("comm: group %d is empty", g))
		}
		lead := cfg.Leader
		if cfg.Leaders != nil {
			lead = cfg.Leaders[g]
		}
		if lead < 0 || lead >= len(group) {
			panic(fmt.Sprintf("comm: leader rank %d outside group %d of %d", lead, g, len(group)))
		}
		hc.leaderOf = append(hc.leaderOf, lead)
		tags := make([]int, len(group))
		ranks := make([]int, len(group))
		for l := range group {
			tags[l] = next
			if cfg.GroupTags != nil {
				tags[l] = cfg.GroupTags[g][l]
			}
			ranks[l] = next
			hc.groupOf = append(hc.groupOf, g)
			hc.localOf = append(hc.localOf, l)
			next++
		}
		hc.rankOf = append(hc.rankOf, ranks)
		hc.intra = append(hc.intra, NewCommunicator(t, CommConfig{
			Parties:    group,
			Plan:       cfg.Plan,
			Schedule:   cfg.Intra,
			ChunkElems: cfg.ChunkElems,
			Wire:       cfg.Wire,
			Tag:        cfg.Tag + 1,
			RankTags:   tags,
		}))
		leaders = append(leaders, group[lead])
		leaderTags = append(leaderTags, tags[lead])
	}
	hc.inter = NewCommunicator(t, CommConfig{
		Parties:    leaders,
		Plan:       cfg.Plan,
		Schedule:   cfg.Inter,
		ChunkElems: cfg.ChunkElems,
		Wire:       cfg.Wire,
		Tag:        cfg.Tag + 2,
		RankTags:   leaderTags,
	})
	return hc
}

// Live returns the number of surviving parties.
func (hc *HierCommunicator) Live() int { return hc.Size() - len(hc.dead) }

// MarkDead declares global rank fail-stopped: the topology drops traffic
// to its node and a fresh two-level communicator is rebuilt over the live
// membership — live members keep their original local order and global-
// rank contribution tags, groups emptied by death drop out, and each
// group's original leader stays leader while it lives (its group falls
// back to its first survivor). Subsequent collectives delegate into the
// rebuild, so both levels' schedules re-form over the survivors. As with
// the flat engine, every surviving party calls MarkDead (idempotent)
// between rounds; root death is unsupported.
func (hc *HierCommunicator) MarkDead(rank int) {
	if rank < 0 || rank >= hc.Size() {
		panic(fmt.Sprintf("comm: MarkDead rank %d of %d parties", rank, hc.Size()))
	}
	if hc.dead == nil {
		hc.dead = map[int]bool{}
	}
	if hc.dead[rank] {
		return
	}
	hc.dead[rank] = true
	hc.topo.MarkDead(hc.cfg.Groups[hc.groupOf[rank]][hc.localOf[rank]])
	if hc.Live() < 1 {
		panic("comm: every party of the hierarchical communicator is dead")
	}
	var groups, groupTags [][]int
	var leaders []int
	liveOf := make([]int, hc.Size())
	next := 0
	for g, group := range hc.cfg.Groups {
		var members, tags []int
		lead := -1
		for l, node := range group {
			r := hc.rankOf[g][l]
			if hc.dead[r] {
				liveOf[r] = -1
				continue
			}
			if l == hc.leaderOf[g] {
				lead = len(members)
			}
			liveOf[r] = next + len(members)
			members = append(members, node)
			tags = append(tags, hc.intra[g].tagOf(l))
		}
		if len(members) == 0 {
			continue
		}
		if lead < 0 {
			lead = 0
		}
		next += len(members)
		groups = append(groups, members)
		groupTags = append(groupTags, tags)
		leaders = append(leaders, lead)
	}
	hc.liveOf = liveOf
	hc.sub = NewHierCommunicator(hc.topo, HierConfig{
		Groups:     groups,
		Leaders:    leaders,
		GroupTags:  groupTags,
		Plan:       hc.cfg.Plan,
		Intra:      hc.cfg.Intra,
		Inter:      hc.cfg.Inter,
		ChunkElems: hc.cfg.ChunkElems,
		Wire:       hc.cfg.Wire,
		Tag:        hc.cfg.Tag, // rounds only move forward, so reuse is collision-free
	})
}

// subRankOf maps an original global rank to its survivor-rebuild rank.
func (hc *HierCommunicator) subRankOf(rank int) int {
	sr := hc.liveOf[rank]
	if sr < 0 {
		panic(fmt.Sprintf("comm: dead rank %d used in a collective", rank))
	}
	return sr
}

// Size returns the total party count over all groups.
func (hc *HierCommunicator) Size() int { return len(hc.groupOf) }

// NumGroups returns the node-group count.
func (hc *HierCommunicator) NumGroups() int { return len(hc.intra) }

// Plan returns the shared message plan.
func (hc *HierCommunicator) Plan() Plan { return hc.plan }

// Intra returns group g's node-local communicator — the building block the
// hierarchical EASGD algorithms drive directly for group-center syncs.
func (hc *HierCommunicator) Intra(g int) *Communicator { return hc.intra[g] }

// Inter returns the leader communicator over the fabric.
func (hc *HierCommunicator) Inter() *Communicator { return hc.inter }

// GroupOf returns the group index of a global rank.
func (hc *HierCommunicator) GroupOf(rank int) int { return hc.groupOf[rank] }

// LocalOf returns the local (within-group) rank of a global rank.
func (hc *HierCommunicator) LocalOf(rank int) int { return hc.localOf[rank] }

// IsLeader reports whether the global rank is its group's fabric leader.
func (hc *HierCommunicator) IsLeader(rank int) bool {
	return hc.localOf[rank] == hc.leaderOf[hc.groupOf[rank]]
}

// LeaderRank returns the global rank of group g's leader.
func (hc *HierCommunicator) LeaderRank(g int) int { return hc.rankOf[g][hc.leaderOf[g]] }

// BytesMoved reports the underlying topology's cumulative wire bytes.
func (hc *HierCommunicator) BytesMoved() int64 { return hc.inter.topo.BytesMoved() }

// Endpoint returns global rank's handle.
func (hc *HierCommunicator) Endpoint(rank int) *HierEndpoint {
	if rank < 0 || rank >= hc.Size() {
		panic(fmt.Sprintf("comm: endpoint %d of %d parties", rank, hc.Size()))
	}
	return &HierEndpoint{hc: hc, rank: rank}
}

// HierEndpoint is one party's handle into a HierCommunicator. It mirrors
// Endpoint's collective surface (AllReduce / Broadcast / Reduce plus Size
// and Range variants), so the streaming pipeline can drive hierarchical
// collectives exactly as it drives flat ones.
type HierEndpoint struct {
	hc   *HierCommunicator
	rank int
}

// Rank returns the global party rank.
func (ep *HierEndpoint) Rank() int { return ep.rank }

// MarkDead declares global rank dead on the endpoint's communicator (see
// HierCommunicator.MarkDead); every surviving party must call it.
func (ep *HierEndpoint) MarkDead(rank int) { ep.hc.MarkDead(rank) }

// delegate returns the survivor rebuild's endpoint for this party, or nil
// while every party is alive.
func (ep *HierEndpoint) delegate() *HierEndpoint {
	if ep.hc.sub == nil {
		return nil
	}
	return ep.hc.sub.Endpoint(ep.hc.subRankOf(ep.rank))
}

// phHand is the extra phase of the hierarchical root hand-off hops (a
// non-leader root passing its payload to — or receiving the gathered list
// from — its group's leader).
const phHand = 2

// stage charges the unpacked plan's gather staging for n bytes (every party
// concurrently), mirroring Communicator.stageBytes.
func (hc *HierCommunicator) stageBytes(p *sim.Proc, n int64) {
	if !hc.plan.Packed && hc.plan.GatherBW > 0 && len(hc.plan.LayerBytes) > 0 {
		p.Delay(float64(n) / hc.plan.GatherBW)
	}
}

func (hc *HierCommunicator) checkBuf(buf []float32) {
	if buf != nil && int64(len(buf))*4 != hc.plan.TotalBytes() {
		panic(fmt.Sprintf("comm: buffer of %d elements does not match plan of %d bytes",
			len(buf), hc.plan.TotalBytes()))
	}
}

func (hc *HierCommunicator) checkRange(buf []float32, lo, hi int) {
	hc.checkBuf(buf)
	if lo < 0 || hi < lo || int64(hi)*4 > hc.plan.TotalBytes() {
		panic(fmt.Sprintf("comm: range [%d,%d) outside plan of %d bytes", lo, hi, hc.plan.TotalBytes()))
	}
}

// ---- public collectives ----

// AllReduce leaves every party's buf holding the rank-ordered sum of all
// parties' contributions — bit-identical to the flat engine's AllReduce
// (and to ReduceSum in rank order) for every (intra, inter) schedule pair.
func (ep *HierEndpoint) AllReduce(p *sim.Proc, round int, buf []float32) {
	if d := ep.delegate(); d != nil {
		d.AllReduce(p, round, buf)
		return
	}
	ep.hc.checkBuf(buf)
	ep.hc.allReduce(p, ep.rank, round, buf)
}

// AllReduceSize walks the same message schedule moving no data.
func (ep *HierEndpoint) AllReduceSize(p *sim.Proc, round int) {
	if d := ep.delegate(); d != nil {
		d.AllReduceSize(p, round)
		return
	}
	ep.hc.allReduce(p, ep.rank, round, nil)
}

// AllReduceRange allreduces buf[lo:hi] as one segment — the streaming
// pipeline's bucketed collective, hierarchical for free.
func (ep *HierEndpoint) AllReduceRange(p *sim.Proc, round int, buf []float32, lo, hi int) {
	if d := ep.delegate(); d != nil {
		d.AllReduceRange(p, round, buf, lo, hi)
		return
	}
	ep.hc.checkRange(buf, lo, hi)
	if ep.hc.Size() == 1 {
		return
	}
	ep.hc.stageBytes(p, int64(hi-lo)*4)
	ep.hc.allReduceSeg(p, ep.rank, round, 0, buf, [2]int{lo, hi})
}

// Broadcast distributes root's buf to every party: the root hands its
// payload to its group leader (free when the root is a leader), leaders
// broadcast over the fabric, and every group fans out locally.
func (ep *HierEndpoint) Broadcast(p *sim.Proc, round, root int, buf []float32) {
	if d := ep.delegate(); d != nil {
		d.Broadcast(p, round, ep.hc.subRankOf(root), buf)
		return
	}
	ep.hc.checkBuf(buf)
	ep.hc.bcast(p, ep.rank, round, root, buf)
}

// BroadcastSize is the size-only Broadcast.
func (ep *HierEndpoint) BroadcastSize(p *sim.Proc, round, root int) {
	if d := ep.delegate(); d != nil {
		d.BroadcastSize(p, round, ep.hc.subRankOf(root))
		return
	}
	ep.hc.bcast(p, ep.rank, round, root, nil)
}

// BroadcastRange distributes root's buf[lo:hi] as one segment.
func (ep *HierEndpoint) BroadcastRange(p *sim.Proc, round, root int, buf []float32, lo, hi int) {
	if d := ep.delegate(); d != nil {
		d.BroadcastRange(p, round, ep.hc.subRankOf(root), buf, lo, hi)
		return
	}
	ep.hc.checkRange(buf, lo, hi)
	if ep.hc.Size() == 1 {
		return
	}
	ep.hc.stageBytes(p, int64(hi-lo)*4)
	ep.hc.bcastSeg(p, ep.rank, round, 0, root, buf, [2]int{lo, hi})
}

// Reduce combines every party's contribution at root (rank-ordered sum,
// bit-identical to ReduceSum; other bufs unchanged): intra gathers to the
// leaders, leaders gather over the fabric to the root's leader, which hands
// the assembled list to a non-leader root.
func (ep *HierEndpoint) Reduce(p *sim.Proc, round, root int, buf []float32) {
	if d := ep.delegate(); d != nil {
		d.Reduce(p, round, ep.hc.subRankOf(root), buf)
		return
	}
	ep.hc.checkBuf(buf)
	ep.hc.reduce(p, ep.rank, round, root, buf)
}

// ReduceSize is the size-only Reduce.
func (ep *HierEndpoint) ReduceSize(p *sim.Proc, round, root int) {
	if d := ep.delegate(); d != nil {
		d.ReduceSize(p, round, ep.hc.subRankOf(root))
		return
	}
	ep.hc.reduce(p, ep.rank, round, root, nil)
}

// ReduceRange reduces buf[lo:hi] to root as one segment.
func (ep *HierEndpoint) ReduceRange(p *sim.Proc, round, root int, buf []float32, lo, hi int) {
	if d := ep.delegate(); d != nil {
		d.ReduceRange(p, round, ep.hc.subRankOf(root), buf, lo, hi)
		return
	}
	ep.hc.checkRange(buf, lo, hi)
	if ep.hc.Size() == 1 {
		return
	}
	ep.hc.stageBytes(p, int64(hi-lo)*4)
	ep.hc.reduceSeg(p, ep.rank, round, 0, root, buf, [2]int{lo, hi})
}

// ---- dispatch ----

func (hc *HierCommunicator) allReduce(p *sim.Proc, rank, round int, buf []float32) {
	if hc.Size() == 1 {
		return
	}
	hc.stageBytes(p, hc.plan.TotalBytes())
	for si, seg := range planSegments(hc.plan) {
		hc.allReduceSeg(p, rank, round, si, buf, seg)
	}
}

// allReduceSeg runs one segment's two-level allreduce: intra gather to the
// leader, inter allreduce of the gathered lists among leaders, intra
// broadcast of the combined range.
func (hc *HierCommunicator) allReduceSeg(p *sim.Proc, rank, round, si int, buf []float32, seg [2]int) {
	g, local := hc.groupOf[rank], hc.localOf[rank]
	lead := hc.leaderOf[g]
	ic := hc.intra[g]
	self := ic.selfContrib(local, buf, seg)
	list := ic.gatherSeg(p, local, round, phReduce, si, lead, self, seg)
	if local == lead {
		hc.inter.allReduceListSeg(p, g, round, si, list, buf, seg)
	}
	ic.bcastSeg(p, local, round, si, lead, buf, seg)
}

func (hc *HierCommunicator) bcast(p *sim.Proc, rank, round, root int, buf []float32) {
	if hc.Size() == 1 {
		return
	}
	hc.stageBytes(p, hc.plan.TotalBytes())
	for si, seg := range planSegments(hc.plan) {
		hc.bcastSeg(p, rank, round, si, root, buf, seg)
	}
}

func (hc *HierCommunicator) bcastSeg(p *sim.Proc, rank, round, si, root int, buf []float32, seg [2]int) {
	g, local := hc.groupOf[rank], hc.localOf[rank]
	lead := hc.leaderOf[g]
	rg := hc.groupOf[root]
	ic := hc.intra[g]
	elems := seg[1] - seg[0]
	// Hand-off: a non-leader root passes the segment to its group's leader.
	if !hc.IsLeader(root) {
		key := collKey{round, phHand, si, 0, 0}
		switch rank {
		case root:
			var data []float32
			if buf != nil {
				data = snapshot(buf[seg[0]:seg[1]])
			}
			ic.send(p, local, lead, collMsg{key: key, data: data}, ic.wireOf(elems))
		case hc.LeaderRank(rg):
			m := ic.recv(p, local, hc.localOf[root], key)
			if buf != nil {
				copy(buf[seg[0]:seg[1]], m.data)
			}
		}
	}
	// Leaders broadcast over the fabric from the root's group.
	if local == lead {
		hc.inter.bcastSeg(p, g, round, si, rg, buf, seg)
	}
	// Every group fans out locally from its leader.
	ic.bcastSeg(p, local, round, si, lead, buf, seg)
}

func (hc *HierCommunicator) reduce(p *sim.Proc, rank, round, root int, buf []float32) {
	if hc.Size() == 1 {
		return
	}
	hc.stageBytes(p, hc.plan.TotalBytes())
	for si, seg := range planSegments(hc.plan) {
		hc.reduceSeg(p, rank, round, si, root, buf, seg)
	}
}

func (hc *HierCommunicator) reduceSeg(p *sim.Proc, rank, round, si, root int, buf []float32, seg [2]int) {
	g, local := hc.groupOf[rank], hc.localOf[rank]
	lead := hc.leaderOf[g]
	rg := hc.groupOf[root]
	ic := hc.intra[g]
	self := ic.selfContrib(local, buf, seg)
	list := ic.gatherSeg(p, local, round, phReduce, si, lead, self, seg)
	if local == lead {
		list = hc.inter.gatherSeg(p, g, round, phReduce, si, rg, list, seg)
	}
	// Hand-off: the root group's leader passes the assembled list to a
	// non-leader root (one segment-sized wire message, like the real
	// partial-sum hop it models).
	if !hc.IsLeader(root) {
		key := collKey{round, phHand, si, 1, 0} // step 1: distinct from the broadcast hand-off
		switch rank {
		case hc.LeaderRank(rg):
			ic.send(p, local, hc.localOf[root], collMsg{key: key, contribs: list}, ic.wireOf(seg[1]-seg[0]))
		case root:
			list = ic.recv(p, local, lead, key).contribs
		}
	}
	if rank == root && buf != nil {
		orderedSum(buf[seg[0]:seg[1]], list)
	}
}
