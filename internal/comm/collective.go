package comm

import (
	"fmt"
	"math"

	"scaledl/internal/parse"
	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

// This file is the message-level collective engine: Broadcast, Reduce and
// AllReduce executed as actual simulated message exchanges between party
// processes over a Topology, under a selectable schedule. Where the
// closed-form functions in comm.go *predict* a collective's cost, the
// engine *performs* it — every hop pays its path's α-β (and queues on
// shared segments), real float32 segments move, and per-message wire sizes
// flow through an optional WireFunc so gradient compression is charged
// where the bytes travel.
//
// Two invariants tie the engine to the rest of the repo:
//
//  1. Analytic-oracle equality. Tree, linear, ring and
//     recursive-halving/doubling collectives synchronize their message
//     rounds (a free sim.Barrier per round — the bulk-synchronous
//     assumption the α-β formulas make), so on a contention-free topology
//     the simulated completion time equals TreeReduceTime /
//     LinearReduceTime / RingAllReduceTime / RHDAllReduceTime exactly.
//     The pipelined chain schedule is deliberately eager (no round
//     barriers): its chunks overlap down the chain, which is the
//     optimization the barriers would destroy.
//  2. Ordered reduction. Messages carry the constituent contributions
//     (rank-tagged segments) rather than eagerly-combined partial sums,
//     and the final combine always runs in ascending party-rank order —
//     so reduced values are bit-identical to comm.ReduceSum over the
//     inputs in rank order, for every schedule, which keeps training
//     results independent of the schedule choice. Wire cost still charges
//     one partial-sum-sized payload per message, exactly like the real
//     algorithm the timing models.

// Schedule selects the message pattern of a collective.
type Schedule int

const (
	// ScheduleTree is the binomial tree — the paper's Θ(log P) choice.
	ScheduleTree Schedule = iota
	// ScheduleRing is the bandwidth-optimal ring allreduce
	// (reduce-scatter + allgather of P chunks).
	ScheduleRing
	// ScheduleRHD is recursive halving/doubling (power-of-two parties;
	// other counts fall back to the tree, as MPI implementations do).
	ScheduleRHD
	// ScheduleChain is a chunked, pipelined chain: chunks stream down a
	// line of parties with no round synchronization, overlapping hops.
	ScheduleChain
	// ScheduleLinear is the Θ(P) one-party-at-a-time exchange of the
	// original round-robin EASGD — the baseline the paper replaces.
	ScheduleLinear
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleTree:
		return "tree"
	case ScheduleRing:
		return "ring"
	case ScheduleRHD:
		return "rhd"
	case ScheduleChain:
		return "chain"
	case ScheduleLinear:
		return "linear"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Schedules lists every schedule name accepted by ParseSchedule.
func Schedules() []string { return []string{"tree", "ring", "rhd", "chain", "linear"} }

// AnalyticAllReduceTime returns the closed-form α-β prediction for the
// schedule's allreduce of n bytes over p parties, and whether one exists.
// It is the single source of the schedule→oracle mapping; the pipelined
// chain returns false — its chunk overlap is exactly what the formulas
// cannot express.
func (s Schedule) AnalyticAllReduceTime(l Transferer, n int64, p int) (float64, bool) {
	switch s {
	case ScheduleTree:
		return TreeAllReduceTime(l, n, p), true
	case ScheduleRing:
		return RingAllReduceTime(l, n, p), true
	case ScheduleRHD:
		return RHDAllReduceTime(l, n, p), true
	case ScheduleLinear:
		return LinearReduceTime(l, n, p) + LinearBroadcastTime(l, n, p), true
	default:
		return 0, false
	}
}

// AnalyticReduceTime returns the closed-form α-β prediction of the
// schedule's *reduce shape* over p parties — the pattern reduceSeg (and the
// hierarchical intra-node gather) actually walks: ring and RHD, which are
// allreduce shapes, fall back to the binomial tree exactly as the engine
// does; the pipelined chain returns false.
func (s Schedule) AnalyticReduceTime(l Transferer, n int64, p int) (float64, bool) {
	switch s {
	case ScheduleLinear:
		return LinearReduceTime(l, n, p), true
	case ScheduleChain:
		return 0, false
	default:
		return TreeReduceTime(l, n, p), true
	}
}

// AnalyticBroadcastTime mirrors AnalyticReduceTime for the broadcast shape.
func (s Schedule) AnalyticBroadcastTime(l Transferer, n int64, p int) (float64, bool) {
	switch s {
	case ScheduleLinear:
		return LinearBroadcastTime(l, n, p), true
	case ScheduleChain:
		return 0, false
	default:
		return TreeBroadcastTime(l, n, p), true
	}
}

// ParseSchedule converts a name ("tree", "ring", "rhd", "chain", "linear")
// to a Schedule; the empty string means tree.
func ParseSchedule(name string) (Schedule, error) {
	switch name {
	case "", "tree":
		return ScheduleTree, nil
	case "ring":
		return ScheduleRing, nil
	case "rhd":
		return ScheduleRHD, nil
	case "chain":
		return ScheduleChain, nil
	case "linear":
		return ScheduleLinear, nil
	default:
		return 0, parse.Errorf("collective schedule", name, Schedules())
	}
}

// Ranks returns the identity party list [0, 1, …, n−1] — the common case
// of a communicator spanning a topology's first n nodes in node order.
func Ranks(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// WireFunc maps a message's float32 element count to its wire size in
// bytes. nil means raw fp32 (4 bytes per element); quant.WireBytes curried
// over a Scheme charges compressed traffic.
type WireFunc func(elems int) int64

// CommConfig configures a Communicator.
type CommConfig struct {
	// Parties lists the topology node ids participating, in rank order.
	Parties []int
	// Plan is the message plan: packed single-segment or per-layer, with
	// the gather staging penalty for unpacked layouts.
	Plan Plan
	// Schedule selects the allreduce message pattern (default tree).
	Schedule Schedule
	// ChunkElems is the chain schedule's pipeline granularity in elements
	// (default 8192 ≈ 32 KB of fp32).
	ChunkElems int
	// Wire is the per-message wire-size model (nil = raw fp32).
	Wire WireFunc
	// Tag namespaces this communicator's messages on the topology.
	// Communicators whose parties share topology nodes (the hierarchical
	// composition: a leader belongs to its node's intra communicator AND
	// the inter-node one) must use distinct tags so selective receive can
	// keep their message streams apart. Default 0.
	Tag int
	// RankTags, when non-nil, relabels the rank carried inside reduce
	// contributions (one tag per party, ascending). The hierarchical
	// collectives tag intra-node contributions with *global* ranks so the
	// final combine — which merges whole node groups — still runs in
	// ascending global-rank order, bit-identical to a flat ReduceSum.
	// nil means the identity (party rank), the flat communicator's order.
	RankTags []int
}

// Communicator runs collectives among a fixed set of parties over a
// Topology. Collective calls are identified by a caller-chosen round
// number; every party must issue the same sequence of collectives with
// matching rounds (MPI semantics). Distinct rounds may be in flight
// concurrently (e.g. an overlapped broadcast forked beside a reduction).
type Communicator struct {
	topo    *Topology
	parties []int
	plan    Plan
	sched   Schedule
	chunk   int
	wire    WireFunc
	tag     int
	tags    []int
	bars    map[collKey]*sim.Barrier
	msgPool []*collMsg
	// Survivor state (MarkDead). sub, once a party dies, is a fresh
	// communicator over the live membership; every collective delegates to
	// it with ranks remapped through liveOf, so schedules re-form over the
	// survivors instead of deadlocking on the dead rank.
	dead   map[int]bool
	sub    *Communicator
	liveOf []int // original rank -> sub rank, -1 for dead
}

// NewCommunicator creates a communicator. The plan's byte counts must be
// multiples of 4 (float32 payloads).
func NewCommunicator(t *Topology, cfg CommConfig) *Communicator {
	if len(cfg.Parties) < 1 {
		panic("comm: communicator needs at least one party")
	}
	for _, id := range cfg.Parties {
		t.checkNode(id)
	}
	for _, b := range cfg.Plan.LayerBytes {
		if b%4 != 0 {
			panic(fmt.Sprintf("comm: plan segment of %d bytes is not whole float32s", b))
		}
	}
	chunk := cfg.ChunkElems
	if chunk <= 0 {
		chunk = 8192
	}
	if cfg.RankTags != nil && len(cfg.RankTags) != len(cfg.Parties) {
		panic(fmt.Sprintf("comm: %d rank tags for %d parties", len(cfg.RankTags), len(cfg.Parties)))
	}
	return &Communicator{
		topo:    t,
		parties: append([]int(nil), cfg.Parties...),
		plan:    cfg.Plan,
		sched:   cfg.Schedule,
		chunk:   chunk,
		wire:    cfg.Wire,
		tag:     cfg.Tag,
		tags:    append([]int(nil), cfg.RankTags...),
		bars:    map[collKey]*sim.Barrier{},
	}
}

// tagOf returns the contribution tag of party rank (RankTags or identity).
func (c *Communicator) tagOf(rank int) int {
	if c.tags != nil {
		return c.tags[rank]
	}
	return rank
}

// Size returns the number of parties the communicator was built over,
// including any that have since died; see Live.
func (c *Communicator) Size() int { return len(c.parties) }

// Live returns the number of surviving parties.
func (c *Communicator) Live() int { return len(c.parties) - len(c.dead) }

// MarkDead declares party rank fail-stopped. The topology drops traffic to
// its node (cancelling in-flight transfers), and every subsequent
// collective runs over a fresh communicator spanning only the survivors —
// tree, ring, RHD, chain and linear schedules all re-form over the live
// membership, reduce contribution lists shrink to the survivors (results
// are bit-identical to a fresh communicator built over the live parties
// with their original rank tags), and collectives complete with P−1
// parties instead of deadlocking. Callers must quiesce the dead rank's
// in-progress collectives first: every party calls MarkDead between
// collective rounds (it is idempotent), and from the next round on the
// survivor schedule is in effect. Root death is unsupported.
func (c *Communicator) MarkDead(rank int) {
	if rank < 0 || rank >= len(c.parties) {
		panic(fmt.Sprintf("comm: MarkDead rank %d of %d parties", rank, len(c.parties)))
	}
	if c.dead == nil {
		c.dead = map[int]bool{}
	}
	if c.dead[rank] {
		return
	}
	c.dead[rank] = true
	c.topo.MarkDead(c.parties[rank])
	if c.sub != nil {
		c.sub.MarkDead(c.liveOf[rank])
		return
	}
	if c.Live() < 1 {
		panic("comm: every party of the communicator is dead")
	}
	live := make([]int, 0, c.Live())
	liveTags := make([]int, 0, c.Live())
	liveOf := make([]int, len(c.parties))
	for r := range c.parties {
		if c.dead[r] {
			liveOf[r] = -1
			continue
		}
		liveOf[r] = len(live)
		live = append(live, c.parties[r])
		liveTags = append(liveTags, c.tagOf(r))
	}
	c.liveOf = liveOf
	c.sub = NewCommunicator(c.topo, CommConfig{
		Parties:    live,
		Plan:       c.plan,
		Schedule:   c.sched,
		ChunkElems: c.chunk,
		Wire:       c.wire,
		Tag:        c.tag, // rounds only move forward, so reuse is collision-free
		RankTags:   liveTags,
	})
}

// subRankOf maps an original rank to its survivor-communicator rank.
func (c *Communicator) subRankOf(rank int) int {
	sr := c.liveOf[rank]
	if sr < 0 {
		panic(fmt.Sprintf("comm: dead rank %d used in a collective", rank))
	}
	return sr
}

// Plan returns the communicator's message plan.
func (c *Communicator) Plan() Plan { return c.plan }

// Schedule returns the configured allreduce schedule.
func (c *Communicator) Schedule() Schedule { return c.sched }

// BytesMoved reports the underlying topology's cumulative wire bytes.
func (c *Communicator) BytesMoved() int64 { return c.topo.BytesMoved() }

// Endpoint returns party rank's handle; collective methods are issued
// through it from the party's own simulated process.
func (c *Communicator) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= len(c.parties) {
		panic(fmt.Sprintf("comm: endpoint %d of %d parties", rank, len(c.parties)))
	}
	return &Endpoint{c: c, rank: rank}
}

// Endpoint is one party's handle into a Communicator.
type Endpoint struct {
	c    *Communicator
	rank int
}

// Rank returns the party rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// MarkDead declares party rank dead on the endpoint's communicator (see
// Communicator.MarkDead); every surviving party must call it.
func (ep *Endpoint) MarkDead(rank int) { ep.c.MarkDead(rank) }

// delegate returns the survivor communicator's endpoint for this party, or
// nil while every party is alive. Collective methods re-issue themselves
// through it (recursively, if deaths have stacked) so the schedule always
// spans exactly the live membership.
func (ep *Endpoint) delegate() *Endpoint {
	if ep.c.sub == nil {
		return nil
	}
	return ep.c.sub.Endpoint(ep.c.subRankOf(ep.rank))
}

// phases keep concurrent collectives of the same round apart.
const (
	phReduce = iota
	phBcast
)

// collKey identifies one message (or round barrier) of one collective.
type collKey struct {
	round, phase, seg, step, chunk int
}

// contrib is one party's (possibly quantizer-reconstructed) values for the
// element range a reduce message covers, tagged with its origin rank so
// the final combine can run in ascending rank order.
type contrib struct {
	rank int
	vals []float32
}

// collMsg is the engine's wire format.
type collMsg struct {
	src      int
	key      collKey
	lo       int       // element offset of data within the segment (RHD allgather)
	data     []float32 // broadcast / allgather payload (nil in size-only mode)
	contribs []contrib // reduce payload, ascending rank order
	factors  []Factors // sufficient-factor payload (sfb.go; nil elsewhere)
	// Checksum state (chaos mode only; see the Sealed interface). sum is
	// the sealed content hash; verdict memoizes Verify (0 unset, 1 ok,
	// -1 bad); poison marks a payload with no flippable bits whose frame
	// itself is corrupt.
	sum     uint64
	sealed  bool
	poison  bool
	verdict int8
}

// hash folds the message's semantic content — key, offset, data bits,
// contribution ranks and bits — through FNV-1a.
func (m *collMsg) hash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(m.key.round))
	mix(uint64(m.key.phase))
	mix(uint64(m.key.seg))
	mix(uint64(m.key.step))
	mix(uint64(m.key.chunk))
	mix(uint64(m.lo))
	for _, v := range m.data {
		mix(uint64(math.Float32bits(v)))
	}
	for _, cb := range m.contribs {
		mix(uint64(cb.rank))
		for _, v := range cb.vals {
			mix(uint64(math.Float32bits(v)))
		}
	}
	for _, f := range m.factors {
		mix(uint64(f.Rank))
		mix(uint64(f.B))
		for _, v := range f.DY {
			mix(uint64(math.Float32bits(v)))
		}
		for _, v := range f.X {
			mix(uint64(math.Float32bits(v)))
		}
	}
	return h
}

// Seal implements Sealed: it stamps the end-to-end checksum the receiver
// verifies. Called by the chaos layer at first send; never on the
// fault-free path.
func (m *collMsg) Seal() {
	m.sum = m.hash()
	m.sealed = true
	m.verdict = 0
}

// Verify implements Sealed, memoized — a rejected payload may be probed by
// several blocked receivers before the purge sweeps it.
func (m *collMsg) Verify() bool {
	if m.poison {
		return false
	}
	if !m.sealed {
		return true
	}
	if m.verdict == 0 {
		if m.hash() == m.sum {
			m.verdict = 1
		} else {
			m.verdict = -1
		}
	}
	return m.verdict == 1
}

// Garble implements Sealed: a corrupted deep copy carrying the stale
// checksum. The flipped slice is fresh so the sender's pristine buffer
// survives for the resend; payloads with no data bits (size-only mode)
// are poisoned instead — the frame CRC catches those.
func (m *collMsg) Garble() any {
	g := &collMsg{src: m.src, key: m.key, lo: m.lo, sum: m.sum, sealed: m.sealed}
	flip := func(v float32) float32 {
		return math.Float32frombits(math.Float32bits(v) ^ 1)
	}
	switch {
	case len(m.data) > 0:
		g.data = append([]float32(nil), m.data...)
		g.data[0] = flip(g.data[0])
	case len(m.contribs) > 0:
		g.contribs = append([]contrib(nil), m.contribs...)
		for i := range g.contribs {
			if vals := g.contribs[i].vals; len(vals) > 0 {
				vals = append([]float32(nil), vals...)
				vals[0] = flip(vals[0])
				g.contribs[i].vals = vals
				return g
			}
		}
		g.poison = true
	case len(m.factors) > 0:
		g.factors = append([]Factors(nil), m.factors...)
		for i := range g.factors {
			if vals := g.factors[i].DY; len(vals) > 0 {
				vals = append([]float32(nil), vals...)
				vals[0] = flip(vals[0])
				g.factors[i].DY = vals
				return g
			}
		}
		g.poison = true
	default:
		g.poison = true
	}
	return g
}

func (c *Communicator) wireOf(elems int) int64 {
	if c.wire != nil {
		return c.wire(elems)
	}
	return int64(elems) * 4
}

// segments returns the plan's element ranges over the model vector.
func (c *Communicator) segments() [][2]int { return planSegments(c.plan) }

// planSegments returns a plan's message-segment element ranges: one packed
// whole-model range, or one range per layer.
func planSegments(plan Plan) [][2]int {
	var segs [][2]int
	if plan.Packed || len(plan.LayerBytes) <= 1 {
		segs = append(segs, [2]int{0, int(plan.TotalBytes() / 4)})
		return segs
	}
	lo := 0
	for _, b := range plan.LayerBytes {
		hi := lo + int(b/4)
		segs = append(segs, [2]int{lo, hi})
		lo = hi
	}
	return segs
}

// stage charges the unpacked plan's gather/scatter staging pass (the cost
// packed single-buffer layouts avoid — §5.2's second effect). Every party
// stages concurrently, so one collective exposes exactly one staging time.
func (c *Communicator) stage(p *sim.Proc) {
	c.stageBytes(p, c.plan.TotalBytes())
}

// stageBytes charges the gather/scatter staging for n bytes of an unpacked
// plan — the Range collectives' pro-rata share of stage(), so bucketed
// staging sums to exactly the monolithic pass.
func (c *Communicator) stageBytes(p *sim.Proc, n int64) {
	if !c.plan.Packed && c.plan.GatherBW > 0 && len(c.plan.LayerBytes) > 0 {
		p.Delay(float64(n) / c.plan.GatherBW)
	}
}

// checkBuf validates a data-mode buffer against the plan.
func (c *Communicator) checkBuf(buf []float32) {
	if int64(len(buf))*4 != c.plan.TotalBytes() {
		panic(fmt.Sprintf("comm: buffer of %d elements does not match plan of %d bytes",
			len(buf), c.plan.TotalBytes()))
	}
}

// checkRange validates a Range collective's buffer and element range. A nil
// buf selects size-only mode.
func (c *Communicator) checkRange(buf []float32, lo, hi int) {
	if buf != nil {
		c.checkBuf(buf)
	}
	if lo < 0 || hi < lo || int64(hi)*4 > c.plan.TotalBytes() {
		panic(fmt.Sprintf("comm: range [%d,%d) outside plan of %d bytes", lo, hi, c.plan.TotalBytes()))
	}
}

// send transmits m from party rank `from` to `to`, charging wireBytes. The
// wire format travels as a pooled *collMsg so the per-message payload box
// is recycled instead of allocated (see Topology.msgPool for the same
// treatment of the envelope).
func (c *Communicator) send(p *sim.Proc, from, to int, m collMsg, wireBytes int64) {
	m.src = from
	cm := c.getMsg()
	*cm = m
	c.topo.Send(p, c.parties[from], c.parties[to], c.tag, cm, wireBytes)
}

// recv blocks until the message with the given key arrives from party
// rank `from` on this communicator's tag.
func (c *Communicator) recv(p *sim.Proc, at, from int, key collKey) collMsg {
	raw := c.topo.RecvMatch(p, c.parties[at], func(msg Message) bool {
		cm, ok := msg.Payload.(*collMsg)
		return ok && msg.Tag == c.tag && cm.src == from && cm.key == key
	})
	pm := raw.Payload.(*collMsg)
	m := *pm
	c.putMsg(pm)
	return m
}

// getMsg takes a collMsg box from the communicator's free list.
func (c *Communicator) getMsg() *collMsg {
	if n := len(c.msgPool); n > 0 {
		m := c.msgPool[n-1]
		c.msgPool = c.msgPool[:n-1]
		return m
	}
	return new(collMsg)
}

// putMsg returns a consumed box; the contribution and data slices it
// referenced live on with the receiver, only the box is recycled.
func (c *Communicator) putMsg(m *collMsg) {
	*m = collMsg{}
	c.msgPool = append(c.msgPool, m)
}

// sync joins the round barrier identified by key; all parties pass it at
// the same simulated instant (the bulk-synchronous round boundary of the
// α-β model). Barriers are created lazily and deleted after use.
func (c *Communicator) sync(p *sim.Proc, key collKey) {
	b, ok := c.bars[key]
	if !ok {
		b = sim.NewBarrier(c.topo.env, "coll-round", len(c.parties))
		c.bars[key] = b
	}
	p.Wait(b)
	delete(c.bars, key)
}

// syncRounds arrives at the per-round barriers [from, to) of one phase in a
// single batch, blocking until round to-1 releases. The tree schedules use
// it for a party's idle run — the rounds after a gather leaf has sent, or
// before a broadcast target receives — where repeated sync() calls would
// wake the party once per round just to re-arrive. One phase shares one
// generation barrier (step -1 keys it apart from per-step barriers); the
// party that observes the final round released deletes it.
func (c *Communicator) syncRounds(p *sim.Proc, key collKey, from, to, total int) {
	if from >= to {
		return
	}
	key.step = -1
	b, ok := c.bars[key]
	if !ok {
		b = sim.NewBarrier(c.topo.env, "coll-phase", len(c.parties))
		c.bars[key] = b
	}
	p.WaitMany(b, to-from)
	if b.Gen() >= total {
		delete(c.bars, key)
	}
}

// vrOf rotates rank so that root acts as virtual rank 0.
func (c *Communicator) vrOf(rank, root int) int {
	p := len(c.parties)
	return (rank - root + p) % p
}

// realOf inverts vrOf.
func (c *Communicator) realOf(vr, root int) int {
	p := len(c.parties)
	return (vr + root) % p
}

func snapshot(v []float32) []float32 { return append([]float32(nil), v...) }

// selfContrib builds a party's initial contribution list for one segment:
// its own tagged snapshot, or nil in size-only mode.
func (c *Communicator) selfContrib(rank int, buf []float32, seg [2]int) []contrib {
	if buf == nil {
		return nil
	}
	return []contrib{{rank: c.tagOf(rank), vals: snapshot(buf[seg[0]:seg[1]])}}
}

// clipContribs restricts every contribution of a [seg]-covering list to the
// subrange ch (no copying: the clipped values alias the originals).
func clipContribs(list []contrib, seg, ch [2]int) []contrib {
	if list == nil {
		return nil
	}
	out := make([]contrib, len(list))
	for i, cb := range list {
		out[i] = contrib{rank: cb.rank, vals: cb.vals[ch[0]-seg[0] : ch[1]-seg[0]]}
	}
	return out
}

// mergeContribs merges two rank-sorted contribution lists.
func mergeContribs(a, b []contrib) []contrib {
	out := make([]contrib, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].rank < b[j].rank {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// orderedSum overwrites dst with the rank-ordered sum of the contributions
// — the exact association order of ReduceSum over rank-ascending inputs.
func orderedSum(dst []float32, list []contrib) {
	for i := range dst {
		dst[i] = 0
	}
	for _, cb := range list {
		tensor.AXPY(1, cb.vals, dst)
	}
}

// ---- public collectives ----

// Broadcast distributes root's buf to every party's buf. The schedule is
// the communicator's (ring and RHD, which are allreduce shapes, fall back
// to the tree for a plain broadcast).
func (ep *Endpoint) Broadcast(p *sim.Proc, round, root int, buf []float32) {
	if d := ep.delegate(); d != nil {
		d.Broadcast(p, round, ep.c.subRankOf(root), buf)
		return
	}
	ep.c.checkBuf(buf)
	ep.c.bcast(p, ep.rank, round, root, buf)
}

// BroadcastSize walks the same message schedule moving no data — for
// cost-only experiments at sizes too large to materialize.
func (ep *Endpoint) BroadcastSize(p *sim.Proc, round, root int) {
	if d := ep.delegate(); d != nil {
		d.BroadcastSize(p, round, ep.c.subRankOf(root))
		return
	}
	ep.c.bcast(p, ep.rank, round, root, nil)
}

// Reduce combines every party's buf contribution at root: root's buf
// becomes the rank-ordered elementwise sum (bit-identical to ReduceSum
// over the parties in rank order); other parties' bufs are unchanged.
func (ep *Endpoint) Reduce(p *sim.Proc, round, root int, buf []float32) {
	if d := ep.delegate(); d != nil {
		d.Reduce(p, round, ep.c.subRankOf(root), buf)
		return
	}
	ep.c.checkBuf(buf)
	ep.c.reduce(p, ep.rank, round, root, buf)
}

// ReduceSize is the size-only Reduce.
func (ep *Endpoint) ReduceSize(p *sim.Proc, round, root int) {
	if d := ep.delegate(); d != nil {
		d.ReduceSize(p, round, ep.c.subRankOf(root))
		return
	}
	ep.c.reduce(p, ep.rank, round, root, nil)
}

// AllReduce leaves every party's buf holding the rank-ordered sum of all
// contributions, under the communicator's schedule.
func (ep *Endpoint) AllReduce(p *sim.Proc, round int, buf []float32) {
	if d := ep.delegate(); d != nil {
		d.AllReduce(p, round, buf)
		return
	}
	ep.c.checkBuf(buf)
	ep.c.allReduce(p, ep.rank, round, buf)
}

// AllReduceSize is the size-only AllReduce.
func (ep *Endpoint) AllReduceSize(p *sim.Proc, round int) {
	if d := ep.delegate(); d != nil {
		d.AllReduceSize(p, round)
		return
	}
	ep.c.allReduce(p, ep.rank, round, nil)
}

// ---- bucketed (range) collectives ----
//
// The Range entry points are the streaming path's collectives: each moves
// one [lo,hi) element subrange of the model vector — typically one
// Bucketizer bucket — as a single message segment under the communicator's
// schedule. Distinct concurrent calls must use distinct round numbers;
// selective receive and per-key round barriers keep any number of rounds in
// flight apart, which is what lets bucket k+1's collective overlap bucket
// k's wire time and the tail of backprop. A nil buf walks the schedule
// size-only. Unpacked plans pay their gather staging pro rata to the
// range's bytes, so the staging total over all buckets equals the
// monolithic collective's.

// AllReduceRange allreduces buf[lo:hi]: every party ends with the
// rank-ordered sum of the range's contributions, bit-identical to the same
// range of a monolithic AllReduce.
func (ep *Endpoint) AllReduceRange(p *sim.Proc, round int, buf []float32, lo, hi int) {
	if d := ep.delegate(); d != nil {
		d.AllReduceRange(p, round, buf, lo, hi)
		return
	}
	ep.c.checkRange(buf, lo, hi)
	c := ep.c
	if len(c.parties) == 1 {
		return
	}
	c.stageBytes(p, int64(hi-lo)*4)
	c.allReduceSeg(p, ep.rank, round, 0, buf, [2]int{lo, hi})
}

// ReduceRange reduces buf[lo:hi] to root (rank-ordered sum at root, other
// bufs unchanged).
func (ep *Endpoint) ReduceRange(p *sim.Proc, round, root int, buf []float32, lo, hi int) {
	if d := ep.delegate(); d != nil {
		d.ReduceRange(p, round, ep.c.subRankOf(root), buf, lo, hi)
		return
	}
	ep.c.checkRange(buf, lo, hi)
	c := ep.c
	if len(c.parties) == 1 {
		return
	}
	c.stageBytes(p, int64(hi-lo)*4)
	c.reduceSeg(p, ep.rank, round, 0, root, buf, [2]int{lo, hi})
}

// BroadcastRange distributes root's buf[lo:hi] to every party.
func (ep *Endpoint) BroadcastRange(p *sim.Proc, round, root int, buf []float32, lo, hi int) {
	if d := ep.delegate(); d != nil {
		d.BroadcastRange(p, round, ep.c.subRankOf(root), buf, lo, hi)
		return
	}
	ep.c.checkRange(buf, lo, hi)
	c := ep.c
	if len(c.parties) == 1 {
		return
	}
	c.stageBytes(p, int64(hi-lo)*4)
	c.bcastSeg(p, ep.rank, round, 0, root, buf, [2]int{lo, hi})
}

// ---- dispatch ----

func (c *Communicator) bcast(p *sim.Proc, rank, round, root int, buf []float32) {
	if len(c.parties) == 1 {
		return
	}
	c.stage(p)
	for si, seg := range c.segments() {
		c.bcastSeg(p, rank, round, si, root, buf, seg)
	}
}

// bcastSeg runs one segment's broadcast under the schedule (ring and RHD,
// which are allreduce shapes, fall back to the tree).
func (c *Communicator) bcastSeg(p *sim.Proc, rank, round, si, root int, buf []float32, seg [2]int) {
	switch c.sched {
	case ScheduleLinear:
		c.linearBcast(p, rank, round, phBcast, si, root, buf, seg)
	case ScheduleChain:
		c.chainBcast(p, rank, round, phBcast, si, root, buf, seg)
	default:
		c.treeBcast(p, rank, round, phBcast, si, root, buf, seg)
	}
}

func (c *Communicator) reduce(p *sim.Proc, rank, round, root int, buf []float32) {
	if len(c.parties) == 1 {
		return
	}
	c.stage(p)
	for si, seg := range c.segments() {
		c.reduceSeg(p, rank, round, si, root, buf, seg)
	}
}

// reduceSeg runs one segment's reduction toward root under the schedule.
func (c *Communicator) reduceSeg(p *sim.Proc, rank, round, si, root int, buf []float32, seg [2]int) {
	self := c.selfContrib(rank, buf, seg)
	list := c.gatherSeg(p, rank, round, phReduce, si, root, self, seg)
	if rank == root && buf != nil {
		orderedSum(buf[seg[0]:seg[1]], list)
	}
}

// gatherSeg runs one segment's reduction-shaped gather toward root under the
// schedule (ring and RHD, which are allreduce shapes, fall back to the tree):
// the parties' contribution lists travel the reduce pattern unmerged with
// partial sums — each message still charges one partial-sum-sized payload —
// and root ends holding the full rank-sorted list (everyone else nil). It is
// the half-collective the hierarchical composition needs: an intra-node
// gather hands the node's contributions to its leader, who feeds them, still
// rank-tagged, into the inter-node allreduce.
func (c *Communicator) gatherSeg(p *sim.Proc, rank, round, phase, si, root int, self []contrib, seg [2]int) []contrib {
	switch c.sched {
	case ScheduleLinear:
		return c.linearGather(p, rank, round, phase, si, root, self, seg)
	case ScheduleChain:
		return c.chainGather(p, rank, round, phase, si, root, self, seg)
	default:
		return c.treeGather(p, rank, round, phase, si, root, self, seg)
	}
}

func (c *Communicator) allReduce(p *sim.Proc, rank, round int, buf []float32) {
	if len(c.parties) == 1 {
		return
	}
	c.stage(p)
	for si, seg := range c.segments() {
		c.allReduceSeg(p, rank, round, si, buf, seg)
	}
}

// allReduceSeg runs one segment's allreduce under the schedule.
func (c *Communicator) allReduceSeg(p *sim.Proc, rank, round, si int, buf []float32, seg [2]int) {
	c.allReduceListSeg(p, rank, round, si, c.selfContrib(rank, buf, seg), buf, seg)
}

// allReduceListSeg runs one segment's allreduce where each party's input is
// a whole contribution *list* (self) rather than a single buffer snapshot:
// every party's buf range ends holding the rank-ordered sum of the union of
// all lists. With the default single-contribution self this is exactly the
// flat allreduce; the hierarchical inter-node phase passes each leader its
// node's gathered list, so the final combine still runs over every global
// party in ascending tag order — the bit-identity invariant composes.
// nil self and buf select size-only mode.
func (c *Communicator) allReduceListSeg(p *sim.Proc, rank, round, si int, self []contrib, buf []float32, seg [2]int) {
	pow2 := len(c.parties)&(len(c.parties)-1) == 0
	switch {
	case c.sched == ScheduleRing:
		c.ringAllReduce(p, rank, round, si, self, buf, seg)
	case c.sched == ScheduleRHD && pow2:
		c.rhdAllReduce(p, rank, round, si, self, buf, seg)
	case c.sched == ScheduleChain:
		list := c.chainGather(p, rank, round, phReduce, si, 0, self, seg)
		if rank == 0 && buf != nil {
			orderedSum(buf[seg[0]:seg[1]], list)
		}
		c.chainBcast(p, rank, round, phBcast, si, 0, buf, seg)
	case c.sched == ScheduleLinear:
		list := c.linearGather(p, rank, round, phReduce, si, 0, self, seg)
		if rank == 0 && buf != nil {
			orderedSum(buf[seg[0]:seg[1]], list)
		}
		c.linearBcast(p, rank, round, phBcast, si, 0, buf, seg)
	default: // tree, and RHD's non-power-of-two fallback
		list := c.treeGather(p, rank, round, phReduce, si, 0, self, seg)
		if rank == 0 && buf != nil {
			orderedSum(buf[seg[0]:seg[1]], list)
		}
		c.treeBcast(p, rank, round, phBcast, si, 0, buf, seg)
	}
}

// ---- binomial tree ----

// treeBcast runs the binomial broadcast: ceil(log2 P) synchronized rounds,
// each pair moving the full segment — Θ(log P)(α + nβ).
func (c *Communicator) treeBcast(p *sim.Proc, rank, round, phase, si, root int, buf []float32, seg [2]int) {
	P := len(c.parties)
	vr := c.vrOf(rank, root)
	R := rounds(P)
	elems := seg[1] - seg[0]
	base := collKey{round, phase, si, 0, 0}
	synced := 0 // rounds whose barrier this party has arrived at
	for r := 0; r < R; r++ {
		mask := 1 << (R - 1 - r)
		key := collKey{round, phase, si, r, 0}
		var acted bool
		switch {
		case vr%(2*mask) == 0:
			if partner := vr + mask; partner < P {
				c.syncRounds(p, base, synced, r, R)
				var data []float32
				if buf != nil {
					data = snapshot(buf[seg[0]:seg[1]])
				}
				c.send(p, rank, c.realOf(partner, root), collMsg{key: key, data: data}, c.wireOf(elems))
				acted = true
			}
		case vr%(2*mask) == mask:
			c.syncRounds(p, base, synced, r, R)
			m := c.recv(p, rank, c.realOf(vr-mask, root), key)
			if buf != nil {
				copy(buf[seg[0]:seg[1]], m.data)
			}
			acted = true
		}
		if acted {
			c.syncRounds(p, base, r, r+1, R)
			synced = r + 1
		}
	}
	c.syncRounds(p, base, synced, R, R)
}

// treeGather runs the binomial reduction pattern toward root, carrying
// rank-sorted contribution lists unmerged; root returns the full list (the
// combine order of ReduceSum), everyone else nil. self is this party's
// initial list (nil = size-only).
func (c *Communicator) treeGather(p *sim.Proc, rank, round, phase, si, root int, self []contrib, seg [2]int) []contrib {
	P := len(c.parties)
	vr := c.vrOf(rank, root)
	R := rounds(P)
	elems := seg[1] - seg[0]
	base := collKey{round, phase, si, 0, 0}
	list := self
	sent := false
	synced := 0 // rounds whose barrier this party has arrived at
	for r := 0; r < R; r++ {
		mask := 1 << r
		key := collKey{round, phase, si, r, 0}
		if !sent {
			var acted bool
			if vr&mask != 0 {
				c.syncRounds(p, base, synced, r, R)
				c.send(p, rank, c.realOf(vr-mask, root), collMsg{key: key, contribs: list}, c.wireOf(elems))
				sent = true
				acted = true
			} else if partner := vr + mask; partner < P {
				c.syncRounds(p, base, synced, r, R)
				m := c.recv(p, rank, c.realOf(partner, root), key)
				list = mergeContribs(list, m.contribs)
				acted = true
			}
			if acted {
				c.syncRounds(p, base, r, r+1, R)
				synced = r + 1
			}
		}
	}
	c.syncRounds(p, base, synced, R, R)
	if vr == 0 {
		return list
	}
	return nil
}

// ---- linear (round-robin) ----

// linearBcast sends the segment to one party per synchronized step —
// Θ(P)(α + nβ), the baseline exchange.
func (c *Communicator) linearBcast(p *sim.Proc, rank, round, phase, si, root int, buf []float32, seg [2]int) {
	P := len(c.parties)
	vr := c.vrOf(rank, root)
	elems := seg[1] - seg[0]
	for s := 1; s < P; s++ {
		key := collKey{round, phase, si, s, 0}
		if vr == 0 {
			var data []float32
			if buf != nil {
				data = snapshot(buf[seg[0]:seg[1]])
			}
			c.send(p, rank, c.realOf(s, root), collMsg{key: key, data: data}, c.wireOf(elems))
		} else if vr == s {
			m := c.recv(p, rank, root, key)
			if buf != nil {
				copy(buf[seg[0]:seg[1]], m.data)
			}
		}
		c.sync(p, key)
	}
}

// linearGather receives one party's contribution list per synchronized step;
// root returns the merged list, everyone else nil.
func (c *Communicator) linearGather(p *sim.Proc, rank, round, phase, si, root int, self []contrib, seg [2]int) []contrib {
	P := len(c.parties)
	vr := c.vrOf(rank, root)
	elems := seg[1] - seg[0]
	list := self
	for s := 1; s < P; s++ {
		key := collKey{round, phase, si, s, 0}
		if vr == s {
			c.send(p, rank, root, collMsg{key: key, contribs: list}, c.wireOf(elems))
		} else if vr == 0 {
			m := c.recv(p, rank, c.realOf(s, root), key)
			list = mergeContribs(list, m.contribs)
		}
		c.sync(p, key)
	}
	if vr == 0 {
		return list
	}
	return nil
}

// ---- ring allreduce ----

// ringChunks splits the segment's elements into P contiguous chunks, the
// first (elems mod P) of them one element larger.
func ringChunks(seg [2]int, P int) [][2]int {
	elems := seg[1] - seg[0]
	base, rem := elems/P, elems%P
	out := make([][2]int, P)
	lo := seg[0]
	for i := 0; i < P; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out[i] = [2]int{lo, lo + sz}
		lo += sz
	}
	return out
}

// ringAllReduce runs the bandwidth-optimal ring: P−1 reduce-scatter steps
// carrying contribution lists, a local rank-ordered combine of the owned
// chunk, then P−1 allgather steps distributing the sums. Every step is
// synchronized, and all P chunks are in flight per step, so the step time
// is the largest chunk's wire time — 2(P−1)(α + ceil(n/P)β) total. self is
// this party's initial contribution list (nil = size-only); the per-element
// combine order is the tag order of the union of lists, so chunking never
// changes the mathematics.
func (c *Communicator) ringAllReduce(p *sim.Proc, rank, round, si int, self []contrib, buf []float32, seg [2]int) {
	P := len(c.parties)
	chunks := ringChunks(seg, P)
	next, prev := (rank+1)%P, (rank+P-1)%P
	mod := func(x int) int { return ((x % P) + P) % P }

	lists := make([][]contrib, P)
	if self != nil {
		for i, ch := range chunks {
			lists[i] = clipContribs(self, seg, ch)
		}
	}
	// Reduce-scatter: at step s, rank r forwards chunk (r−s)'s accumulated
	// list to r+1 and receives chunk (r−1−s)'s from r−1; after P−1 steps
	// rank r holds every contribution for chunk r.
	for s := 1; s < P; s++ {
		key := collKey{round, phReduce, si, s, 0}
		cs := mod(rank - s)
		cr := mod(rank - s - 1)
		c.send(p, rank, next, collMsg{key: key, contribs: lists[cs]},
			c.wireOf(chunks[cs][1]-chunks[cs][0]))
		m := c.recv(p, rank, prev, key)
		if self != nil {
			lists[cr] = mergeContribs(lists[cr], m.contribs)
		}
		c.sync(p, key)
	}
	if buf != nil {
		own := chunks[rank]
		orderedSum(buf[own[0]:own[1]], lists[rank])
	}
	// Allgather: summed chunks travel the ring once more.
	for s := 1; s < P; s++ {
		key := collKey{round, phBcast, si, s, 0}
		cs := mod(rank - s + 1)
		cr := mod(rank - s)
		var data []float32
		if buf != nil {
			data = snapshot(buf[chunks[cs][0]:chunks[cs][1]])
		}
		c.send(p, rank, next, collMsg{key: key, data: data},
			c.wireOf(chunks[cs][1]-chunks[cs][0]))
		m := c.recv(p, rank, prev, key)
		if buf != nil {
			copy(buf[chunks[cr][0]:chunks[cr][1]], m.data)
		}
		c.sync(p, key)
	}
}

// ---- recursive halving / doubling ----

// rhdAllReduce (power-of-two parties): reduce-scatter by recursive
// halving — partners exchange opposite halves of their current range, so
// message sizes fall n/2, n/4, … n/P — then allgather by recursive
// doubling, mirroring the sizes back up. Contribution lists ride the
// halving so each element is still combined in ascending tag order. self is
// this party's initial contribution list (nil = size-only).
func (c *Communicator) rhdAllReduce(p *sim.Proc, rank, round, si int, self []contrib, buf []float32, seg [2]int) {
	P := len(c.parties)
	lo, hi := seg[0], seg[1]
	list := self
	// restrict clips a contribution list to [nlo, nhi), given the list
	// currently covers [lo, hi).
	restrict := func(list []contrib, lo, nlo, nhi int) []contrib {
		out := make([]contrib, len(list))
		for i, cb := range list {
			out[i] = contrib{rank: cb.rank, vals: cb.vals[nlo-lo : nhi-lo]}
		}
		return out
	}

	type span struct{ lo, hi int }
	var trail []span // range at entry of each halving step, for the doubling phase
	step := 0
	for mask := P / 2; mask >= 1; mask >>= 1 {
		partner := rank ^ mask
		mid := lo + (hi-lo+1)/2
		var keepLo, keepHi, sendLo, sendHi int
		if rank&mask == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		key := collKey{round, phReduce, si, step, 0}
		var out []contrib
		if self != nil {
			out = restrict(list, lo, sendLo, sendHi)
		}
		c.send(p, rank, partner, collMsg{key: key, contribs: out}, c.wireOf(sendHi-sendLo))
		m := c.recv(p, rank, partner, key)
		if self != nil {
			list = mergeContribs(restrict(list, lo, keepLo, keepHi), m.contribs)
		}
		trail = append(trail, span{lo, hi})
		lo, hi = keepLo, keepHi
		c.sync(p, key)
		step++
	}
	if buf != nil {
		orderedSum(buf[lo:hi], list)
	}
	// Doubling: walk the halving steps in reverse; each exchange restores
	// the range the corresponding halving step split.
	for j := 0; (1 << j) <= P/2; j++ {
		partner := rank ^ (1 << j)
		key := collKey{round, phBcast, si, step, 0}
		var data []float32
		if buf != nil {
			data = snapshot(buf[lo:hi])
		}
		c.send(p, rank, partner, collMsg{key: key, lo: lo, data: data}, c.wireOf(hi-lo))
		m := c.recv(p, rank, partner, key)
		if buf != nil {
			copy(buf[m.lo:m.lo+len(m.data)], m.data)
		}
		merged := trail[len(trail)-1-j]
		lo, hi = merged.lo, merged.hi
		c.sync(p, key)
		step++
	}
}

// ---- pipelined chain ----

// chainChunks splits the segment into pipeline chunks of ChunkElems.
func (c *Communicator) chainChunks(seg [2]int) [][2]int {
	var out [][2]int
	for lo := seg[0]; lo < seg[1]; lo += c.chunk {
		hi := lo + c.chunk
		if hi > seg[1] {
			hi = seg[1]
		}
		out = append(out, [2]int{lo, hi})
	}
	if len(out) == 0 {
		out = append(out, seg)
	}
	return out
}

// chainBcast streams chunks down the chain root→…→last with no round
// synchronization: hop h forwards chunk k while hop h−1 is already
// sending chunk k+1, so for C chunks the cost approaches
// (P−2+C)(α + (n/C)β) instead of the tree's log2(P)(α + nβ) — the
// pipelined variant large packed buffers want.
func (c *Communicator) chainBcast(p *sim.Proc, rank, round, phase, si, root int, buf []float32, seg [2]int) {
	P := len(c.parties)
	vr := c.vrOf(rank, root)
	for k, ch := range c.chainChunks(seg) {
		key := collKey{round, phase, si, 0, k}
		if vr > 0 {
			m := c.recv(p, rank, c.realOf(vr-1, root), key)
			if buf != nil {
				copy(buf[ch[0]:ch[1]], m.data)
			}
		}
		if vr < P-1 {
			var data []float32
			if buf != nil {
				data = snapshot(buf[ch[0]:ch[1]])
			}
			c.send(p, rank, c.realOf(vr+1, root), collMsg{key: key, data: data}, c.wireOf(ch[1]-ch[0]))
		}
	}
}

// chainGather streams contribution chunks up the chain last→…→root with no
// round synchronization; root reassembles the chunk streams into full-range
// contributions and returns the merged list, everyone else nil. Every chunk
// carries the same tag set (each party's self covers the whole segment), so
// the reassembly just concatenates each tag's chunk pieces in order.
func (c *Communicator) chainGather(p *sim.Proc, rank, round, phase, si, root int, self []contrib, seg [2]int) []contrib {
	P := len(c.parties)
	vr := c.vrOf(rank, root)
	var assembled []contrib
	for k, ch := range c.chainChunks(seg) {
		key := collKey{round, phase, si, 0, k}
		list := clipContribs(self, seg, ch)
		if vr < P-1 {
			m := c.recv(p, rank, c.realOf(vr+1, root), key)
			list = mergeContribs(list, m.contribs)
		}
		if vr > 0 {
			c.send(p, rank, c.realOf(vr-1, root), collMsg{key: key, contribs: list}, c.wireOf(ch[1]-ch[0]))
		} else if list != nil {
			if assembled == nil {
				assembled = make([]contrib, len(list))
				for i, cb := range list {
					assembled[i] = contrib{rank: cb.rank, vals: make([]float32, seg[1]-seg[0])}
				}
			}
			for i, cb := range list {
				copy(assembled[i].vals[ch[0]-seg[0]:ch[1]-seg[0]], cb.vals)
			}
		}
	}
	return assembled
}
