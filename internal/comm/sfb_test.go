package comm

import (
	"fmt"
	"testing"

	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

// randFactors builds P deterministic pseudo-random factor pairs of one
// dense-layer shape (dY is b×f, X is b×d).
func randFactors(parties, b, f, d int, seed int64) []Factors {
	g := tensor.NewRNG(seed)
	out := make([]Factors, parties)
	for i := range out {
		dy := make([]float32, b*f)
		x := make([]float32, b*d)
		g.FillNormal(dy, 0, 1)
		g.FillNormal(x, 0, 1)
		out[i] = Factors{DY: dy, X: x, B: b, F: f, D: d}
	}
	return out
}

// localDenseGrad computes one party's packed [W | b] gradient from its
// factors exactly the way internal/nn's dense layer does: dW = dYᵀ·X via
// the packed GEMM from a zero buffer, db = column sums of dY.
func localDenseGrad(f Factors) []float32 {
	g := make([]float32, f.F*f.D+f.F)
	tensor.MatMulAddTransA(tensor.Wrap(g[:f.F*f.D], f.F, f.D),
		tensor.Wrap(f.DY, f.B, f.F), tensor.Wrap(f.X, f.B, f.D))
	db := g[f.F*f.D:]
	for i := 0; i < f.B; i++ {
		row := f.DY[i*f.F : (i+1)*f.F]
		for j, v := range row {
			db[j] += v
		}
	}
	return g
}

// runFactorAllGather runs one factor allgather + reconstruction per party
// and returns (end time, wire bytes, per-rank reconstructions, chaos stats).
func runFactorAllGather(t *testing.T, ch *Chaos, sched Schedule, parties int, fs []Factors) (float64, int64, [][]float32, ChaosStats) {
	t.Helper()
	env := sim.NewEnv()
	topo := NewUniform(env, parties, testLink)
	if ch != nil {
		topo.SetChaos(ch)
	}
	n := fs[0].F*fs[0].D + fs[0].F
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(parties), Plan: packedPlan(n), Schedule: sched})
	recon := make([][]float32, parties)
	end := runCollective(t, topo, c, func(p *sim.Proc, rank int) {
		out := c.Endpoint(rank).FactorAllGather(p, 0, fs[rank], nil)
		recon[rank] = make([]float32, n)
		ReconstructFactors(recon[rank], out, nil)
	})
	return end, topo.BytesMoved(), recon, topo.ChaosStats()
}

// The tentpole invariant (comm half): reconstructing from the factor
// allgather is bit-identical to the dense allreduce of the same parties'
// gradients, for every schedule and party count — CommMode can never change
// training mathematics.
func TestFactorReconstructBitIdenticalToDenseAllReduce(t *testing.T) {
	b, f, d := 3, 7, 5
	for _, sched := range []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleChain, ScheduleLinear} {
		for _, p := range []int{2, 3, 4, 5, 8} {
			fs := randFactors(p, b, f, d, int64(p)*13+int64(sched))
			grads := make([][]float32, p)
			for i := range grads {
				grads[i] = localDenseGrad(fs[i])
			}
			_, denseBufs := simAllReduce(t, sched, p, f*d+f, grads)
			_, _, recon, _ := runFactorAllGather(t, nil, sched, p, fs)
			for rank := range recon {
				for i := range recon[rank] {
					if recon[rank][i] != denseBufs[rank][i] {
						t.Fatalf("%v P=%d rank %d elem %d: sfb %v, dense allreduce %v (not bit-identical)",
							sched, p, rank, i, recon[rank][i], denseBufs[rank][i])
					}
				}
			}
		}
	}
}

// Exact wire accounting: both allgather patterns move exactly P·(P−1)
// factor payloads — the O(B·(F+D)) wire cut SFB exists for.
func TestFactorAllGatherWireBytesExact(t *testing.T) {
	b, f, d := 4, 9, 6
	for _, tc := range []struct {
		sched Schedule
		p     int
	}{
		{ScheduleRing, 5}, {ScheduleRing, 8}, {ScheduleTree, 8},
		{ScheduleTree, 5}, {ScheduleRHD, 4}, {ScheduleChain, 4},
	} {
		fs := randFactors(tc.p, b, f, d, 3)
		_, bytes, _, _ := runFactorAllGather(t, nil, tc.sched, tc.p, fs)
		if want := FactorAllGatherBytes(tc.p, b*(f+d)); bytes != want {
			t.Errorf("%v P=%d: moved %d bytes, want exactly %d", tc.sched, tc.p, bytes, want)
		}
	}
}

// On a contention-free topology the factor allgather completes at exactly
// its closed α-β form, for both patterns.
func TestFactorAllGatherMatchesAnalytic(t *testing.T) {
	b, f, d := 2, 33, 17
	entry := int64(b*(f+d)) * 4
	for _, tc := range []struct {
		sched Schedule
		p     int
	}{
		{ScheduleRing, 4}, {ScheduleRing, 7}, {ScheduleTree, 8},
		{ScheduleTree, 5}, {ScheduleRHD, 16}, {ScheduleLinear, 3},
	} {
		fs := randFactors(tc.p, b, f, d, 9)
		end, _, _, _ := runFactorAllGather(t, nil, tc.sched, tc.p, fs)
		want := AnalyticFactorAllGatherTime(tc.sched, testLink, entry, tc.p)
		if relErr(end, want) > 1e-9 {
			t.Errorf("%v P=%d: simulated %v, closed-form %v", tc.sched, tc.p, end, want)
		}
	}
}

// Size-only walks the identical message schedule: same completion time and
// same wire bytes as the data-carrying call, and it scales to party counts
// too large to materialize (the P=1024 fast path).
func TestFactorAllGatherSizeOnlyMatchesData(t *testing.T) {
	b, f, d := 2, 10, 8
	elems := b * (f + d)
	for _, tc := range []struct {
		sched Schedule
		p     int
	}{
		{ScheduleTree, 8}, {ScheduleRing, 5},
	} {
		fs := randFactors(tc.p, b, f, d, 5)
		dataEnd, dataBytes, _, _ := runFactorAllGather(t, nil, tc.sched, tc.p, fs)
		env := sim.NewEnv()
		topo := NewUniform(env, tc.p, testLink)
		c := NewCommunicator(topo, CommConfig{Parties: Ranks(tc.p), Plan: packedPlan(f*d + f), Schedule: tc.sched})
		sizeEnd := runCollective(t, topo, c, func(p *sim.Proc, rank int) {
			c.Endpoint(rank).FactorAllGatherSize(p, 0, elems)
		})
		if sizeEnd != dataEnd || topo.BytesMoved() != dataBytes {
			t.Errorf("%v P=%d: size-only (%v, %d B) vs data (%v, %d B)",
				tc.sched, tc.p, sizeEnd, topo.BytesMoved(), dataEnd, dataBytes)
		}
	}

	// P=1024: size-only at a scale the data path could never allocate.
	p := 1024
	env := sim.NewEnv()
	topo := NewUniform(env, p, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(p), Plan: packedPlan(64), Schedule: ScheduleTree})
	end := runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
		c.Endpoint(rank).FactorAllGatherSize(pr, 0, elems)
	})
	if want := AnalyticFactorAllGatherTime(ScheduleTree, testLink, int64(elems)*4, p); relErr(end, want) > 1e-9 {
		t.Errorf("P=1024 size-only %v, closed-form %v", end, want)
	}
	if want := FactorAllGatherBytes(p, elems); topo.BytesMoved() != want {
		t.Errorf("P=1024 size-only moved %d bytes, want %d", topo.BytesMoved(), want)
	}
}

// Factor payloads ride the chaos tier's guarded delivery: losses are
// retried (and the retry wire charged), corruptions are checksum-detected
// and resent, and the reconstruction still lands bit-identical.
func TestFactorAllGatherUnderChaos(t *testing.T) {
	b, f, d, p := 3, 6, 4, 4
	fs := randFactors(p, b, f, d, 7)
	grads := make([][]float32, p)
	for i := range grads {
		grads[i] = localDenseGrad(fs[i])
	}
	want := make([]float32, f*d+f)
	ReduceSum(want, grads...)

	_, cleanBytes, cleanRecon, _ := runFactorAllGather(t, &Chaos{Seed: 5}, ScheduleTree, p, fs)
	_, lossyBytes, lossyRecon, lossyStats := runFactorAllGather(t, &Chaos{Seed: 5, Loss: 0.3}, ScheduleTree, p, fs)
	if lossyStats.Losses == 0 {
		t.Fatal("loss 0.3 injected no losses")
	}
	if lossyBytes <= cleanBytes {
		t.Fatalf("lossy run moved %d bytes, clean run %d — factor retries not charged", lossyBytes, cleanBytes)
	}
	_, _, corruptRecon, corruptStats := runFactorAllGather(t, &Chaos{Seed: 9, Corrupt: 0.5, MaxAttempts: 16}, ScheduleRing, p, fs)
	if corruptStats.Corruptions == 0 {
		t.Fatal("corrupt 0.5 injected no corruptions")
	}
	for rank := 0; rank < p; rank++ {
		for i := range want {
			if cleanRecon[rank][i] != want[i] || lossyRecon[rank][i] != want[i] || corruptRecon[rank][i] != want[i] {
				t.Fatalf("rank %d elem %d: clean %v lossy %v corrupt %v, want %v",
					rank, i, cleanRecon[rank][i], lossyRecon[rank][i], corruptRecon[rank][i], want[i])
			}
		}
	}
}

// The hierarchical factor allgather (intra gather → inter allgather →
// intra broadcast) reconstructs bit-identically to the flat dense sum, for
// mixed (intra, inter) schedule pairs.
func TestHierFactorAllGatherBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		nodes, perNode int
		intra, inter   Schedule
	}{
		{3, 2, ScheduleTree, ScheduleTree},
		{4, 2, ScheduleTree, ScheduleRing},
		{4, 3, ScheduleRing, ScheduleRHD},
	} {
		parties := tc.nodes * tc.perNode
		b, f, d := 2, 5, 4
		fs := randFactors(parties, b, f, d, int64(parties)*3)
		ml := uniformCluster(sim.NewEnv(), tc.nodes, tc.perNode, 0)
		hc := hierComm(ml, packedPlan(f*d+f), tc.intra, tc.inter)
		env := ml.Topology().Env()
		recon := make([][]float32, parties)
		for r := 0; r < parties; r++ {
			rank := r
			env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
				out := hc.Endpoint(rank).FactorAllGather(p, 0, fs[rank], nil)
				recon[rank] = make([]float32, f*d+f)
				ReconstructFactors(recon[rank], out, nil)
			})
		}
		env.Run()
		env.Close()
		grads := make([][]float32, parties)
		for i := range grads {
			grads[i] = localDenseGrad(fs[i])
		}
		want := make([]float32, f*d+f)
		ReduceSum(want, grads...)
		for rank := range recon {
			for i := range want {
				if recon[rank][i] != want[i] {
					t.Fatalf("%d×%d %v/%v rank %d elem %d: %v, want %v",
						tc.nodes, tc.perNode, tc.intra, tc.inter, rank, i, recon[rank][i], want[i])
				}
			}
		}
	}
}

// Degenerate single party: the allgather returns the party's own snapshot,
// moves nothing, and reconstruction equals the local gradient.
func TestFactorAllGatherSingleParty(t *testing.T) {
	fs := randFactors(1, 2, 3, 4, 1)
	end, bytes, recon, _ := runFactorAllGather(t, nil, ScheduleTree, 1, fs)
	if end != 0 || bytes != 0 {
		t.Fatalf("single-party allgather took %v and moved %d bytes", end, bytes)
	}
	want := localDenseGrad(fs[0])
	for i := range want {
		if recon[0][i] != want[i] {
			t.Fatalf("elem %d: %v, want %v", i, recon[0][i], want[i])
		}
	}
}

// Malformed factor dimensions are rejected before any message moves.
func TestFactorValidation(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	topo := NewUniform(env, 2, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(2), Plan: packedPlan(8)})
	defer func() {
		if recover() == nil {
			t.Error("mismatched factor dims did not panic")
		}
	}()
	c.Endpoint(0).FactorAllGather(nil, 0, Factors{DY: make([]float32, 5), X: make([]float32, 4), B: 2, F: 3, D: 2}, nil)
}
