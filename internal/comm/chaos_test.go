package comm

import (
	"fmt"
	"testing"

	"scaledl/internal/sim"
)

// survivorAllReduce runs a P-party allreduce in which deadRank fail-stops
// before the round: its process never shows up, every survivor calls
// MarkDead then the collective through the ORIGINAL P-party endpoints.
// Returns the survivors' buffers indexed by original rank (dead slot nil).
func survivorAllReduce(t *testing.T, sched Schedule, parties, deadRank, elems int, inputs [][]float32) [][]float32 {
	t.Helper()
	env := sim.NewEnv()
	topo := NewUniform(env, parties, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(parties), Plan: packedPlan(elems), Schedule: sched})
	bufs := make([][]float32, parties)
	for r := 0; r < parties; r++ {
		if r == deadRank {
			continue
		}
		rank := r
		bufs[rank] = append([]float32(nil), inputs[rank]...)
		env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
			ep := c.Endpoint(rank)
			ep.MarkDead(deadRank)
			ep.AllReduce(p, 1, bufs[rank])
		})
	}
	env.Run()
	env.Close()
	if got := c.Live(); got != parties-1 {
		t.Fatalf("Live() = %d after one death of %d parties", got, parties)
	}
	return bufs
}

// freshAllReduce runs the reference: a communicator built directly over the
// live ranks (with their original ranks as contribution tags), on an
// equally-sized topology.
func freshAllReduce(t *testing.T, sched Schedule, parties, deadRank, elems int, inputs [][]float32) [][]float32 {
	t.Helper()
	env := sim.NewEnv()
	topo := NewUniform(env, parties, testLink)
	var live []int
	for r := 0; r < parties; r++ {
		if r != deadRank {
			live = append(live, r)
		}
	}
	c := NewCommunicator(topo, CommConfig{
		Parties: live, Plan: packedPlan(elems), Schedule: sched, RankTags: live,
	})
	bufs := make([][]float32, parties)
	for i, orig := range live {
		bufs[orig] = append([]float32(nil), inputs[orig]...)
		sub, origRank := i, orig
		env.Spawn(fmt.Sprintf("party%d", origRank), func(p *sim.Proc) {
			c.Endpoint(sub).AllReduce(p, 1, bufs[origRank])
		})
	}
	env.Run()
	env.Close()
	return bufs
}

// The survivor invariant (satellite 3): for every schedule, a P-party
// collective with one dead rank completes and is bit-identical to a fresh
// (P−1)-party collective over the same live ranks. RHD gets a 9→8 case so
// the survivor membership is the power of two that keeps it off the tree
// fallback.
func TestSurvivorAllReduceBitIdenticalToFresh(t *testing.T) {
	cases := []struct {
		sched         Schedule
		parties, dead int
	}{
		{ScheduleTree, 5, 2},
		{ScheduleRing, 5, 2},
		{ScheduleChain, 5, 2},
		{ScheduleLinear, 5, 2},
		{ScheduleRHD, 5, 2}, // 4 live: pow2 RHD
		{ScheduleRHD, 9, 4}, // 8 live
		{ScheduleTree, 5, 4},
		{ScheduleRing, 4, 1},
	}
	for _, tc := range cases {
		elems := 97
		inputs := randInputs(tc.parties, elems, int64(tc.parties)*31+int64(tc.dead))
		got := survivorAllReduce(t, tc.sched, tc.parties, tc.dead, elems, inputs)
		want := freshAllReduce(t, tc.sched, tc.parties, tc.dead, elems, inputs)
		var liveIn [][]float32
		for r, in := range inputs {
			if r != tc.dead {
				liveIn = append(liveIn, in)
			}
		}
		sum := make([]float32, elems)
		ReduceSum(sum, liveIn...)
		for r := 0; r < tc.parties; r++ {
			if r == tc.dead {
				continue
			}
			for i := range sum {
				if got[r][i] != want[r][i] || got[r][i] != sum[i] {
					t.Fatalf("%v P=%d dead=%d rank %d elem %d: survivor %v, fresh %v, ReduceSum %v",
						tc.sched, tc.parties, tc.dead, r, i, got[r][i], want[r][i], sum[i])
				}
			}
		}
	}
}

// Two stacked deaths: the delegation recurses and the result still matches
// the rank-ordered sum of the remaining survivors; root-bearing collectives
// remap their root through the live membership.
func TestSurvivorStackedDeathsAndRootRemap(t *testing.T) {
	parties, elems := 6, 64
	inputs := randInputs(parties, elems, 77)
	env := sim.NewEnv()
	topo := NewUniform(env, parties, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(parties), Plan: packedPlan(elems)})
	bufs := make([][]float32, parties)
	for r := 0; r < parties; r++ {
		if r == 2 || r == 4 {
			continue
		}
		rank := r
		bufs[rank] = append([]float32(nil), inputs[rank]...)
		env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
			ep := c.Endpoint(rank)
			ep.MarkDead(2)
			ep.MarkDead(4)
			ep.Reduce(p, 1, 0, bufs[rank])
			ep.Broadcast(p, 2, 0, bufs[rank])
		})
	}
	env.Run()
	env.Close()
	var liveIn [][]float32
	for r, in := range inputs {
		if r != 2 && r != 4 {
			liveIn = append(liveIn, in)
		}
	}
	sum := make([]float32, elems)
	ReduceSum(sum, liveIn...)
	for r := 0; r < parties; r++ {
		if r == 2 || r == 4 {
			continue
		}
		for i := range sum {
			if bufs[r][i] != sum[i] {
				t.Fatalf("rank %d elem %d: %v, want %v", r, i, bufs[r][i], sum[i])
			}
		}
	}
}

// The hierarchical survivor invariant: a death inside one group (here the
// group's LEADER) re-forms both levels over the live membership and the
// result stays bit-identical to the survivors' rank-ordered sum.
func TestHierSurvivorAllReduce(t *testing.T) {
	nodes, perNode := 3, 2
	parties := nodes * perNode
	elems := 48
	dead := 2 // group 1's leader (local 0)
	inputs := randInputs(parties, elems, 55)
	ml := uniformCluster(sim.NewEnv(), nodes, perNode, 0)
	hc := hierComm(ml, packedPlan(elems), ScheduleTree, ScheduleTree)
	bufs := make([][]float32, parties)
	env := ml.Topology().Env()
	for r := 0; r < parties; r++ {
		if r == dead {
			continue
		}
		rank := r
		bufs[rank] = append([]float32(nil), inputs[rank]...)
		env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
			ep := hc.Endpoint(rank)
			ep.MarkDead(dead)
			ep.AllReduce(p, 1, bufs[rank])
		})
	}
	env.Run()
	env.Close()
	if got := hc.Live(); got != parties-1 {
		t.Fatalf("Live() = %d, want %d", got, parties-1)
	}
	var liveIn [][]float32
	for r, in := range inputs {
		if r != dead {
			liveIn = append(liveIn, in)
		}
	}
	sum := make([]float32, elems)
	ReduceSum(sum, liveIn...)
	for r := 0; r < parties; r++ {
		if r == dead {
			continue
		}
		for i := range sum {
			if bufs[r][i] != sum[i] {
				t.Fatalf("rank %d elem %d: %v, want %v", r, i, bufs[r][i], sum[i])
			}
		}
	}
}

// chaosAllReduce runs one allreduce under the given chaos plan and returns
// (wire bytes, buffers, stats, end time).
func chaosAllReduce(t *testing.T, ch *Chaos, sched Schedule, parties, elems int, inputs [][]float32, badLink func(*Topology)) (int64, [][]float32, ChaosStats, float64) {
	t.Helper()
	env := sim.NewEnv()
	topo := NewUniform(env, parties, testLink)
	if badLink != nil {
		badLink(topo)
	}
	topo.SetChaos(ch)
	c := NewCommunicator(topo, CommConfig{Parties: Ranks(parties), Plan: packedPlan(elems), Schedule: sched})
	bufs := make([][]float32, parties)
	for i := range bufs {
		bufs[i] = append([]float32(nil), inputs[i]...)
	}
	end := runCollective(t, topo, c, func(p *sim.Proc, rank int) {
		c.Endpoint(rank).AllReduce(p, 0, bufs[rank])
	})
	return topo.BytesMoved(), bufs, topo.ChaosStats(), end
}

// Satellite 2 (comm half): retry traffic is charged to the wire — a lossy
// run moves strictly more bytes than the identical clean run — and the
// retries recover the exact clean result.
func TestRetryTrafficChargedToWire(t *testing.T) {
	parties, elems := 4, 129
	inputs := randInputs(parties, elems, 11)
	cleanBytes, cleanBufs, _, _ := chaosAllReduce(t, &Chaos{Seed: 5}, ScheduleTree, parties, elems, inputs, nil)
	lossyBytes, lossyBufs, stats, _ := chaosAllReduce(t, &Chaos{Seed: 5, Loss: 0.3}, ScheduleTree, parties, elems, inputs, nil)
	if stats.Losses == 0 {
		t.Fatal("loss 0.3 injected no losses")
	}
	if lossyBytes <= cleanBytes {
		t.Fatalf("lossy run moved %d bytes, clean (ack-only) run %d — retries not charged", lossyBytes, cleanBytes)
	}
	sum := make([]float32, elems)
	ReduceSum(sum, inputs...)
	for r := range lossyBufs {
		for i := range sum {
			if lossyBufs[r][i] != sum[i] || cleanBufs[r][i] != sum[i] {
				t.Fatalf("rank %d elem %d: lossy %v clean %v want %v", r, i, lossyBufs[r][i], cleanBufs[r][i], sum[i])
			}
		}
	}
	// And against the no-chaos baseline: the ack protocol itself is extra wire.
	_, plainBufs := simAllReduce(t, ScheduleTree, parties, elems, inputs)
	for r := range plainBufs {
		for i := range sum {
			if plainBufs[r][i] != sum[i] {
				t.Fatalf("fault-free baseline diverged at rank %d elem %d", r, i)
			}
		}
	}
}

// Corrupted payloads are delivered garbled, detected by checksum, never
// accepted by a receiver, and resent until the pristine copy lands — the
// final result is still bit-identical to the clean sum.
func TestCorruptionDetectedAndResent(t *testing.T) {
	parties, elems := 4, 65
	inputs := randInputs(parties, elems, 23)
	_, bufs, stats, _ := chaosAllReduce(t, &Chaos{Seed: 9, Corrupt: 0.5, MaxAttempts: 16}, ScheduleTree, parties, elems, inputs, nil)
	if stats.Corruptions == 0 {
		t.Fatal("corrupt 0.4 injected no corruptions")
	}
	sum := make([]float32, elems)
	ReduceSum(sum, inputs...)
	for r := range bufs {
		for i := range sum {
			if bufs[r][i] != sum[i] {
				t.Fatalf("rank %d elem %d: %v, want %v (corruption leaked into the result)", r, i, bufs[r][i], sum[i])
			}
		}
	}
}

// A single LossyLink-wrapped path injects corruption with the global rates
// at zero — the "one bad cable" model — and the collective still converges
// to the clean sum.
func TestLossyLinkSinglePath(t *testing.T) {
	parties, elems := 4, 33
	inputs := randInputs(parties, elems, 41)
	bad := func(topo *Topology) {
		topo.SetPath(1, 0, LossyLink{Base: testLink, Corrupt: 0.6})
	}
	_, bufs, stats, _ := chaosAllReduce(t, &Chaos{Seed: 3}, ScheduleTree, parties, elems, inputs, bad)
	if stats.Corruptions == 0 {
		t.Fatal("corrupted link 1->0 injected nothing")
	}
	sum := make([]float32, elems)
	ReduceSum(sum, inputs...)
	for r := range bufs {
		for i := range sum {
			if bufs[r][i] != sum[i] {
				t.Fatalf("rank %d elem %d: %v, want %v", r, i, bufs[r][i], sum[i])
			}
		}
	}
}

// The determinism contract: the same fault seed reproduces the run bit for
// bit — values and completion time — and a different seed lands a
// different fault plan (different timing).
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	parties, elems := 4, 65
	inputs := randInputs(parties, elems, 13)
	ch := &Chaos{Seed: 21, Loss: 0.2, Corrupt: 0.1}
	b1, bufs1, s1, end1 := chaosAllReduce(t, ch, ScheduleRing, parties, elems, inputs, nil)
	b2, bufs2, s2, end2 := chaosAllReduce(t, ch, ScheduleRing, parties, elems, inputs, nil)
	if b1 != b2 || s1 != s2 || end1 != end2 {
		t.Fatalf("same seed: bytes %d/%d stats %+v/%+v end %v/%v", b1, b2, s1, s2, end1, end2)
	}
	for r := range bufs1 {
		for i := range bufs1[r] {
			if bufs1[r][i] != bufs2[r][i] {
				t.Fatalf("same seed diverged at rank %d elem %d", r, i)
			}
		}
	}
	_, _, s3, end3 := chaosAllReduce(t, &Chaos{Seed: 22, Loss: 0.2, Corrupt: 0.1}, ScheduleRing, parties, elems, inputs, nil)
	if s3 == s1 && end3 == end1 {
		t.Fatal("seed 22 reproduced seed 21's entire fault plan")
	}
}

// Satellite 2 (comm level): a guarded transfer to a node that dies
// mid-flight is cancelled, releases its shared segment immediately, and the
// sender moves on instead of retrying into a black hole.
func TestDeadDestinationCancelsInFlight(t *testing.T) {
	env := sim.NewEnv()
	topo := NewTopology(env, 3)
	seg := sim.NewResource(env, "switch", 1)
	slow := LossyLink{Base: testLink} // zero extra rates, just a wrapped link
	topo.SetPath(0, 1, slow, seg)
	topo.SetPath(1, 0, testLink)
	topo.SetChaos(&Chaos{Seed: 1})
	const bytes = int64(1 << 30) // ~1.07 s on testLink: plenty of flight time
	var sendDone, probeAt float64
	env.Spawn("sender", func(p *sim.Proc) {
		topo.Send(p, 0, 1, 0, "payload", bytes)
		sendDone = p.Now()
	})
	env.Spawn("killer", func(p *sim.Proc) {
		p.Delay(0.5)
		topo.MarkDead(1)
	})
	env.Spawn("prober", func(p *sim.Proc) {
		p.Delay(0.6)
		p.Acquire(seg)
		probeAt = p.Now()
		seg.Release()
	})
	env.Run()
	env.Close()
	if sendDone != 0.5 {
		t.Fatalf("cancelled send returned at t=%v, want 0.5", sendDone)
	}
	if probeAt != 0.6 {
		t.Fatalf("segment re-acquired at t=%v, want 0.6 (cancellation leaked the segment)", probeAt)
	}
	if st := topo.ChaosStats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
	if seg.InUse() != 0 {
		t.Fatalf("segment InUse = %d after cancellation", seg.InUse())
	}
}

// Fault-free invariance: installing no chaos and killing no one leaves
// Send on the exact original code path — byte counts and completion times
// of a plain allreduce are unchanged (the <5% CPU gate in BENCH_sim.json
// pins the host-side cost; this pins the simulated side).
func TestFaultFreePathUnchanged(t *testing.T) {
	parties, elems := 4, 257
	inputs := randInputs(parties, elems, 3)
	end, bufs := simAllReduce(t, ScheduleTree, parties, elems, inputs)
	want := TreeAllReduceTime(testLink, int64(elems)*4, parties)
	if relErr(end, want) > 1e-9 {
		t.Fatalf("fault-free allreduce %v, oracle %v", end, want)
	}
	sum := make([]float32, elems)
	ReduceSum(sum, inputs...)
	for r := range bufs {
		for i := range sum {
			if bufs[r][i] != sum[i] {
				t.Fatalf("rank %d elem %d diverged", r, i)
			}
		}
	}
}
