package comm

import (
	"fmt"

	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

// This file is the sufficient-factor broadcasting (SFB) transport —
// Poseidon's observation applied to the engine. A dense layer's weight
// gradient is the outer product dW = dYᵀ·X of two backward activations
// (dY is B×F, X is B×D), so instead of allreducing the F×D gradient each
// party broadcasts its factor pair — O(B·(F+D)) wire per peer instead of
// O(F·D) — and every receiver reconstructs Σₚ dYₚᵀ·Xₚ locally. At the fc
// shapes of the paper's models (F, D in the thousands, B in the tens) the
// factor payload is orders of magnitude smaller than the gradient.
//
// The transport is a factor *allgather*: after one call every party holds
// all P parties' factor pairs, in ascending contribution-rank order. Two
// message patterns implement it, selected by the communicator's schedule:
// ScheduleRing (and any schedule at non-power-of-two P) walks the classic
// ring allgather — P−1 synchronized steps, each forwarding one party's
// payload — while the remaining schedules use recursive doubling — log2 P
// steps of pairwise exchange with doubling payloads. Both move exactly
// P·(P−1) factor payloads of wire in total (FactorAllGatherBytes), and both
// have closed α-β forms (AnalyticFactorAllGatherTime). Messages ride the
// same Topology.Send path as every other collective, so chaos-tier guarded
// delivery (loss, corruption, retries, per-attempt wire accounting) applies
// unchanged; collMsg's checksum and garbling cover factor payloads.
//
// The engine's ordered-reduction invariant extends to SFB: receivers
// reconstruct through ReconstructFactors, which replays each party's own
// gradient computation (the same packed GEMM and bias column sums the dense
// layer ran, from a zero buffer) and then combines the per-party results in
// ascending rank order with the exact association order of orderedSum — so
// the reconstructed gradient is bit-identical to the dense allreduce of the
// same contributions, for every schedule, flat or hierarchical.

// Factors is one party's sufficient-factor pair for one dense layer: the
// backward activations whose outer product dYᵀ·X is the party's weight
// gradient (dY is B×F, X is B×D), plus the column sums of dY for the bias.
type Factors struct {
	// Rank is the contribution tag ordering the reconstruction combine —
	// party rank on a flat communicator, global rank hierarchically.
	Rank    int
	DY, X   []float32 // B×F and B×D row-major
	B, F, D int
}

// Elems is the factor pair's element count B·(F+D) — the per-party wire
// payload, against the F·D+F elements of the dense gradient it replaces.
func (f Factors) Elems() int { return f.B * (f.F + f.D) }

// factorsElems sums a list's element counts.
func factorsElems(fs []Factors) int {
	n := 0
	for _, f := range fs {
		n += f.Elems()
	}
	return n
}

// sortFactors orders a list ascending by Rank (insertion sort: lists are
// short — one entry per party — and usually already ordered).
func sortFactors(fs []Factors) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Rank < fs[j-1].Rank; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// checkFactors validates a factor pair's dimensions.
func checkFactors(f Factors) {
	if f.B <= 0 || f.F <= 0 || f.D <= 0 || len(f.DY) != f.B*f.F || len(f.X) != f.B*f.D {
		panic(fmt.Sprintf("comm: factors |dY|=%d |X|=%d for B=%d F=%d D=%d",
			len(f.DY), len(f.X), f.B, f.F, f.D))
	}
}

// snapFactors snapshots a party's factor views at send time (the same
// capture point selfContrib applies to dense contributions) and stamps the
// contribution tag.
func snapFactors(tag int, f Factors) Factors {
	return Factors{Rank: tag, DY: snapshot(f.DY), X: snapshot(f.X), B: f.B, F: f.F, D: f.D}
}

// phFactor keys factor-collective messages apart from the reduce, broadcast
// and hierarchical hand-off phases sharing a round number.
const phFactor = phHand + 1

// factorPatternIsRing reports whether the schedule maps to the ring
// allgather pattern: ScheduleRing always, and every schedule at
// non-power-of-two P (recursive doubling needs pairs, like rhdAllReduce).
func factorPatternIsRing(s Schedule, p int) bool {
	return s == ScheduleRing || p&(p-1) != 0
}

// FactorAllGather shares every party's factor pair: each party passes its
// own (self; Rank is stamped by the engine) and returns all P parties'
// pairs in ascending Rank order, ready for ReconstructFactors. out, when
// non-nil, provides reusable backing for the returned slice. Concurrent
// calls must use distinct round numbers, like every other collective.
func (ep *Endpoint) FactorAllGather(p *sim.Proc, round int, self Factors, out []Factors) []Factors {
	if d := ep.delegate(); d != nil {
		return d.FactorAllGather(p, round, self, out)
	}
	checkFactors(self)
	c := ep.c
	snap := snapFactors(c.tagOf(ep.rank), self)
	return c.factorAllGatherList(p, ep.rank, round, []Factors{snap}, snap.Elems(), false, out)
}

// FactorAllGatherSize walks the same message schedule moving no data, with
// every party contributing elemsPerParty factor elements — the cost-only
// path for scales too large to materialize.
func (ep *Endpoint) FactorAllGatherSize(p *sim.Proc, round, elemsPerParty int) {
	if d := ep.delegate(); d != nil {
		d.FactorAllGatherSize(p, round, elemsPerParty)
		return
	}
	ep.c.factorAllGatherList(p, ep.rank, round, nil, elemsPerParty, true, nil)
}

// factorAllGatherList is the engine: an allgather whose per-party input is a
// factor *list* (one entry flat; a node's gathered entries hierarchically).
// Every party returns the union of all lists, ascending by Rank. sizeOnly
// charges wire as if each party contributed elems factor elements.
func (c *Communicator) factorAllGatherList(p *sim.Proc, rank, round int, self []Factors, elems int, sizeOnly bool, out []Factors) []Factors {
	P := len(c.parties)
	if P == 1 {
		return append(out[:0], self...)
	}
	if factorPatternIsRing(c.sched, P) {
		return c.factorRingAllGather(p, rank, round, self, elems, sizeOnly, out)
	}
	return c.factorRDAllGather(p, rank, round, self, elems, sizeOnly, out)
}

// factorRingAllGather: P−1 synchronized steps; at step s every party
// forwards the list it received at step s−1 (its own at step 1) to its
// successor — the bandwidth-optimal allgather, (P−1)(α + Sβ) for equal
// payloads S.
func (c *Communicator) factorRingAllGather(p *sim.Proc, rank, round int, self []Factors, elems int, sizeOnly bool, out []Factors) []Factors {
	P := len(c.parties)
	next, prev := (rank+1)%P, (rank+P-1)%P
	mod := func(x int) int { return ((x % P) + P) % P }
	lists := make([][]Factors, P)
	lists[rank] = self
	for s := 1; s < P; s++ {
		key := collKey{round, phFactor, 0, s, 0}
		cs, cr := mod(rank-s+1), mod(rank-s)
		wireElems := elems
		if !sizeOnly {
			wireElems = factorsElems(lists[cs])
		}
		c.send(p, rank, next, collMsg{key: key, factors: lists[cs]}, c.wireOf(wireElems))
		m := c.recv(p, rank, prev, key)
		lists[cr] = m.factors
		c.sync(p, key)
	}
	if sizeOnly {
		return nil
	}
	out = out[:0]
	for _, l := range lists {
		out = append(out, l...)
	}
	sortFactors(out)
	return out
}

// factorRDAllGather: recursive doubling (power-of-two P) — log2 P
// synchronized steps of pairwise exchange, each sending everything held so
// far, so payloads double S, 2S, … P/2·S and the total wire matches the
// ring's exactly.
func (c *Communicator) factorRDAllGather(p *sim.Proc, rank, round int, self []Factors, elems int, sizeOnly bool, out []Factors) []Factors {
	P := len(c.parties)
	held := append(out[:0], self...)
	step := 0
	for mask := 1; mask < P; mask <<= 1 {
		partner := rank ^ mask
		key := collKey{round, phFactor, 0, step, 0}
		wireElems := mask * elems
		payload := held
		if !sizeOnly {
			wireElems = factorsElems(held)
			// The payload must be stable while held keeps growing.
			payload = append([]Factors(nil), held...)
		}
		c.send(p, rank, partner, collMsg{key: key, factors: payload}, c.wireOf(wireElems))
		m := c.recv(p, rank, partner, key)
		held = append(held, m.factors...)
		c.sync(p, key)
		step++
	}
	if sizeOnly {
		return nil
	}
	sortFactors(held)
	return held
}

// ---- hierarchical composition ----

// FactorAllGather is the two-level factor allgather: each group's entries
// gather at its leader (binomial pattern, factor-sized messages), leaders
// allgather the group lists over the fabric, and the full P-entry list fans
// back out locally — so every party returns all parties' factors in
// ascending global-rank order, never putting every GPU on the fabric.
func (ep *HierEndpoint) FactorAllGather(p *sim.Proc, round int, self Factors, out []Factors) []Factors {
	if d := ep.delegate(); d != nil {
		return d.FactorAllGather(p, round, self, out)
	}
	checkFactors(self)
	hc := ep.hc
	g, local := hc.groupOf[ep.rank], hc.localOf[ep.rank]
	ic := hc.intra[g]
	snap := snapFactors(ic.tagOf(local), self)
	if hc.Size() == 1 {
		return append(out[:0], snap)
	}
	lead := hc.leaderOf[g]
	list := ic.factorGather(p, local, round, lead, []Factors{snap})
	if local == lead {
		list = hc.inter.factorAllGatherList(p, g, round, list, 0, false, out)
	}
	list = ic.factorBcast(p, local, round, lead, list)
	sortFactors(list)
	return list
}

// factorGather walks the binomial reduction pattern toward root with factor
// lists as payloads; root returns the concatenation, everyone else nil.
func (c *Communicator) factorGather(p *sim.Proc, rank, round, root int, self []Factors) []Factors {
	P := len(c.parties)
	if P == 1 {
		return self
	}
	vr := c.vrOf(rank, root)
	R := rounds(P)
	list := self
	sent := false
	for r := 0; r < R; r++ {
		mask := 1 << r
		key := collKey{round, phFactor, 1, r, 0}
		if !sent {
			if vr&mask != 0 {
				c.send(p, rank, c.realOf(vr-mask, root), collMsg{key: key, factors: list}, c.wireOf(factorsElems(list)))
				sent = true
			} else if partner := vr + mask; partner < P {
				m := c.recv(p, rank, c.realOf(partner, root), key)
				list = append(list, m.factors...)
			}
		}
		c.sync(p, key)
	}
	if vr == 0 {
		return list
	}
	return nil
}

// factorBcast distributes root's factor list down the binomial tree; every
// party returns the list.
func (c *Communicator) factorBcast(p *sim.Proc, rank, round, root int, list []Factors) []Factors {
	P := len(c.parties)
	if P == 1 {
		return list
	}
	vr := c.vrOf(rank, root)
	R := rounds(P)
	for r := 0; r < R; r++ {
		mask := 1 << (R - 1 - r)
		key := collKey{round, phFactor, 2, r, 0}
		switch {
		case vr%(2*mask) == 0:
			if partner := vr + mask; partner < P {
				c.send(p, rank, c.realOf(partner, root), collMsg{key: key, factors: list}, c.wireOf(factorsElems(list)))
			}
		case vr%(2*mask) == mask:
			m := c.recv(p, rank, c.realOf(vr-mask, root), key)
			list = m.factors
		}
		c.sync(p, key)
	}
	return list
}

// ---- reconstruction ----

// ReconstructFactors overwrites dst — one dense layer's packed [W | b]
// gradient range, length F·D+F — with the rank-ordered sum of the parties'
// gradients recomputed from their factors. For each entry, ascending by
// Rank (the list FactorAllGather returns is already ordered), it replays
// exactly the computation the owning party ran: dW = dYᵀ·X through the same
// packed GEMM from a zero buffer, db = column sums of dY in the same order
// — then combines with the association order of orderedSum. The result is
// therefore bit-identical to the dense allreduce of the same contributions.
// scratch must hold F·D+F elements (it is grown if short) and is returned
// for reuse.
func ReconstructFactors(dst []float32, factors []Factors, scratch []float32) []float32 {
	for i := range dst {
		dst[i] = 0
	}
	for _, f := range factors {
		wn := f.F * f.D
		n := wn + f.F
		if len(dst) != n {
			panic(fmt.Sprintf("comm: reconstruct dst of %d elements for F=%d D=%d (want %d)",
				len(dst), f.F, f.D, n))
		}
		if cap(scratch) < n {
			scratch = make([]float32, n)
		}
		s := scratch[:n]
		for i := range s {
			s[i] = 0
		}
		tensor.MatMulAddTransA(tensor.Wrap(s[:wn], f.F, f.D),
			tensor.Wrap(f.DY, f.B, f.F), tensor.Wrap(f.X, f.B, f.D))
		db := s[wn:]
		for i := 0; i < f.B; i++ {
			row := f.DY[i*f.F : (i+1)*f.F]
			for j, v := range row {
				db[j] += v
			}
		}
		tensor.AXPY(1, s, dst)
	}
	return scratch
}

// FactorReconFLOPs is the reconstruction's multiply-add cost: one B×F·D
// GEMM (2·B·F·D) plus the bias column sums per entry — what the virtual
// clock charges a receiver for turning factors back into gradients.
func FactorReconFLOPs(factors []Factors) int64 {
	var t int64
	for _, f := range factors {
		t += factorReconFLOPsOne(f.B, f.F, f.D)
	}
	return t
}

// FactorReconFLOPsFor is the shape-form of FactorReconFLOPs for p parties —
// the selector's cost-model term.
func FactorReconFLOPsFor(p, b, f, d int) int64 {
	return int64(p) * factorReconFLOPsOne(b, f, d)
}

func factorReconFLOPsOne(b, f, d int) int64 {
	return 2*int64(b)*int64(f)*int64(d) + int64(b)*int64(f)
}

// DenseAllReduceBytes is the exact total wire a dense fp32 allreduce of
// elems elements moves over p parties: 2·(P−1) model payloads, for *every*
// schedule — tree (P−1 reduce + P−1 broadcast messages of the model), ring
// (two phases of P chunk waves, each totalling (P−1)/P of the model per
// party), recursive halving/doubling (halving + doubling, same total), chain
// and linear alike. It is the quantity FactorAllGatherBytes undercuts when
// B·(F+D) ≪ F·D: the factor allgather moves P/2 × the per-party payload
// ratio more messages but each is the factor pair, not the gradient.
func DenseAllReduceBytes(p, elems int) int64 {
	if p <= 1 {
		return 0
	}
	return 2 * int64(p-1) * 4 * int64(elems)
}

// FactorAllGatherBytes is the exact total wire a factor allgather moves:
// P·(P−1) payloads of 4·elemsPerParty bytes, identical for the ring and
// recursive-doubling patterns.
func FactorAllGatherBytes(p, elemsPerParty int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(p) * int64(p-1) * 4 * int64(elemsPerParty)
}

// AnalyticFactorAllGatherTime is the closed-form α-β prediction of the
// factor allgather over p parties with entryBytes of payload per party:
// (P−1)(α + Sβ) for the ring pattern, Σₖ (α + 2ᵏSβ) for recursive
// doubling. The simulated collective completes at exactly this time on a
// contention-free topology (every step is round-synchronized).
func AnalyticFactorAllGatherTime(s Schedule, l Transferer, entryBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	if factorPatternIsRing(s, p) {
		return float64(p-1) * l.Time(entryBytes)
	}
	var t float64
	for mask := 1; mask < p; mask <<= 1 {
		t += l.Time(int64(mask) * entryBytes)
	}
	return t
}
