package comm

import (
	"fmt"
	"testing"

	"scaledl/internal/hw"
	"scaledl/internal/sim"
)

// Allreduce schedule microbenchmarks: each op simulates one full allreduce
// of a 1M-element (4 MB) packed buffer over 8 parties on FDR InfiniBand.
// ns/op measures the engine's real cost (how expensive simulating a
// collective is); the sim_ms metric reports the simulated completion time
// of the schedule itself — the number the paper's analysis is about. The
// CI bench job records both next to the GEMM benchmarks; BENCH_comm.json
// holds the checked-in baseline.
func benchmarkAllReduce(b *testing.B, sched Schedule, parties, elems int) {
	b.Helper()
	inputs := make([][]float32, parties)
	for i := range inputs {
		inputs[i] = make([]float32, elems)
		for j := range inputs[i] {
			inputs[i][j] = float32(i + j)
		}
	}
	ids := make([]int, parties)
	for i := range ids {
		ids[i] = i
	}
	var simTime float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		env := sim.NewEnv()
		topo := NewUniform(env, parties, hw.MellanoxFDR)
		c := NewCommunicator(topo, CommConfig{Parties: ids, Plan: packedPlan(elems), Schedule: sched})
		bufs := make([][]float32, parties)
		for i := range bufs {
			bufs[i] = append([]float32(nil), inputs[i]...)
		}
		for r := 0; r < parties; r++ {
			rank := r
			env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
				c.Endpoint(rank).AllReduce(p, 0, bufs[rank])
			})
		}
		simTime = env.Run()
		env.Close()
	}
	b.ReportMetric(simTime*1e3, "sim_ms")
}

func BenchmarkAllReduceTree(b *testing.B)  { benchmarkAllReduce(b, ScheduleTree, 8, 1<<20) }
func BenchmarkAllReduceRing(b *testing.B)  { benchmarkAllReduce(b, ScheduleRing, 8, 1<<20) }
func BenchmarkAllReduceRHD(b *testing.B)   { benchmarkAllReduce(b, ScheduleRHD, 8, 1<<20) }
func BenchmarkAllReduceChain(b *testing.B) { benchmarkAllReduce(b, ScheduleChain, 8, 1<<20) }

// Bucketed-versus-monolithic allreduce: the same 4 MB tree allreduce run
// monolithically and as overlapped per-bucket Range collectives (one forked
// proc per bucket per party, every bucket a distinct in-flight round). The
// sim_ms metric shows the simulated completion time; ns/op the engine's
// real cost of simulating the extra message waves. BENCH_overlap.json holds
// the checked-in baseline.
func benchmarkBucketedAllReduce(b *testing.B, parties, elems, buckets int) {
	b.Helper()
	layer := elems / buckets
	sizes := make([]int64, buckets)
	for i := range sizes {
		sizes[i] = int64(layer) * 4
	}
	sizes[buckets-1] += int64(elems-layer*buckets) * 4
	plan := Plan{LayerBytes: sizes, Packed: true}
	bz := NewBucketizer(plan, 1) // one bucket per segment
	ids := Ranks(parties)
	inputs := make([][]float32, parties)
	for i := range inputs {
		inputs[i] = make([]float32, elems)
		for j := range inputs[i] {
			inputs[i][j] = float32(i + j)
		}
	}
	var simTime float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		env := sim.NewEnv()
		topo := NewUniform(env, parties, hw.MellanoxFDR)
		c := NewCommunicator(topo, CommConfig{Parties: ids, Plan: plan})
		bufs := make([][]float32, parties)
		for i := range bufs {
			bufs[i] = append([]float32(nil), inputs[i]...)
		}
		for r := 0; r < parties; r++ {
			rank := r
			env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
				var comps []*sim.Completion
				for _, bk := range bz.Buckets() {
					bk := bk
					comps = append(comps, env.Fork(fmt.Sprintf("b%d.%d", rank, bk.ID), func(bp *sim.Proc) {
						c.Endpoint(rank).AllReduceRange(bp, bk.ID, bufs[rank], bk.Lo, bk.Hi)
					}))
				}
				for _, cm := range comps {
					cm.Wait(p)
				}
			})
		}
		simTime = env.Run()
		env.Close()
	}
	b.ReportMetric(simTime*1e3, "sim_ms")
}

func BenchmarkAllReduceBucketedMono(b *testing.B) { benchmarkBucketedAllReduce(b, 8, 1<<20, 1) }
func BenchmarkAllReduceBucketed4(b *testing.B)    { benchmarkBucketedAllReduce(b, 8, 1<<20, 4) }
func BenchmarkAllReduceBucketed16(b *testing.B)   { benchmarkBucketedAllReduce(b, 8, 1<<20, 16) }

// Hierarchical allreduce microbenchmark: the same 4 MB payload over a
// composed 4-node × 8-GPU cluster (PCIe peer DMA inside each node, FDR
// InfiniBand between leaders; tree intra, recursive halving/doubling
// inter). ns/op is the real cost of simulating the two-level message
// waves; sim_ms the simulated completion time — compare against the flat
// 8-party schedules above, which put every byte on one link. The composed
// α-β oracle equality is pinned by TestHierAllReduceMatchesComposedOracle,
// bit-identity by TestHierAllReduceBitIdenticalToReduceSum.
func BenchmarkAllReduceHier(b *testing.B) { benchmarkHierAllReduceSize(b, 4, 8, 1<<20) }

// BenchmarkAllReduceP1024 is the thousand-node sweep workload the ROADMAP
// asks to make routine: a size-only hierarchical allreduce over 32 nodes ×
// 32 GPUs = 1024 parties. ns/op here is the real CPU cost of one sweep
// point; the BENCH_sim.json gate pins it so kernel regressions that would
// turn a P=1024 scaling curve back into minutes can't land silently. The
// deterministic events/op metric doubles as the fault-free-overhead
// contract of the chaos layer: with no Chaos installed a send must cost
// the same wake-ups as before the fault tier existed, so the gate pins
// the count exactly — ack round-trips or timers leaking into the fast
// path would inflate it far past any tolerance.
func BenchmarkAllReduceP1024(b *testing.B) { benchmarkHierAllReduceSize(b, 32, 32, 1<<20) }

func benchmarkHierAllReduceSize(b *testing.B, nodes, gpus, elems int) {
	b.Helper()
	var simTime float64
	var events int64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		env := sim.NewEnv()
		ml := NewMultiLevel(env, MultiLevelConfig{
			Nodes: nodes,
			PerNode: func(env *sim.Env, node int) *Topology {
				return NewUniform(env, gpus, hw.GPUPeer)
			},
			Fabric: hw.MellanoxFDR,
		})
		locals := make([]int, gpus)
		for i := range locals {
			locals[i] = i
		}
		hc := NewHierCommunicator(ml.Topology(), HierConfig{
			Groups: ml.Groups(locals...),
			Plan:   packedPlan(elems),
			Intra:  ScheduleTree,
			Inter:  ScheduleRHD,
		})
		for r := 0; r < hc.Size(); r++ {
			rank := r
			env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) {
				hc.Endpoint(rank).AllReduceSize(p, 0)
			})
		}
		simTime = env.Run()
		events = env.Events()
		env.Close()
	}
	b.ReportMetric(simTime*1e3, "sim_ms")
	b.ReportMetric(float64(events), "events/op")
}
