package comm

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"scaledl/internal/hw"
	"scaledl/internal/par"
	"scaledl/internal/quant"
	"scaledl/internal/sim"
	"scaledl/internal/tensor"
)

// packedPlan is a single-segment plan of n float32 elements.
func packedPlan(elems int) Plan {
	return Plan{LayerBytes: []int64{int64(elems) * 4}, Packed: true}
}

// randInputs builds P deterministic pseudo-random contribution vectors.
func randInputs(p, elems int, seed int64) [][]float32 {
	g := tensor.NewRNG(seed)
	out := make([][]float32, p)
	for i := range out {
		out[i] = make([]float32, elems)
		g.FillNormal(out[i], 0, 1)
	}
	return out
}

// runCollective spawns one process per party, runs body(rank) on each and
// returns the simulated completion time.
func runCollective(t *testing.T, topo *Topology, c *Communicator, body func(p *sim.Proc, rank int)) float64 {
	t.Helper()
	env := topo.Env()
	for r := 0; r < c.Size(); r++ {
		rank := r
		env.Spawn(fmt.Sprintf("party%d", rank), func(p *sim.Proc) { body(p, rank) })
	}
	end := env.Run()
	env.Close()
	return end
}

// simAllReduce runs one allreduce over inputs and returns (end time, bufs).
func simAllReduce(t *testing.T, sched Schedule, parties, elems int, inputs [][]float32) (float64, [][]float32) {
	t.Helper()
	env := sim.NewEnv()
	topo := NewUniform(env, parties, testLink)
	ids := make([]int, parties)
	for i := range ids {
		ids[i] = i
	}
	c := NewCommunicator(topo, CommConfig{Parties: ids, Plan: packedPlan(elems), Schedule: sched})
	bufs := make([][]float32, parties)
	for i := range bufs {
		bufs[i] = append([]float32(nil), inputs[i]...)
	}
	end := runCollective(t, topo, c, func(p *sim.Proc, rank int) {
		c.Endpoint(rank).AllReduce(p, 0, bufs[rank])
	})
	return end, bufs
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// The tentpole invariant: on a uniform contention-free topology the
// simulated collectives complete at exactly the closed-form α-β times.
func TestSimulatedAllReduceMatchesClosedForm(t *testing.T) {
	cases := []struct {
		sched   Schedule
		oracle  func(l Transferer, n int64, p int) float64
		parties []int
	}{
		{ScheduleTree, TreeAllReduceTime, []int{2, 3, 4, 5, 7, 8, 16}},
		{ScheduleRing, RingAllReduceTime, []int{2, 3, 4, 5, 8}},
		{ScheduleRHD, RHDAllReduceTime, []int{2, 4, 8, 16}},
		{ScheduleLinear, func(l Transferer, n int64, p int) float64 {
			return LinearReduceTime(l, n, p) + LinearBroadcastTime(l, n, p)
		}, []int{2, 3, 4, 8}},
	}
	for _, c := range cases {
		for _, p := range c.parties {
			for _, elems := range []int{1, 17, 256, 4000, 65536} {
				inputs := randInputs(p, elems, int64(p*elems+1))
				end, _ := simAllReduce(t, c.sched, p, elems, inputs)
				want := c.oracle(testLink, int64(elems)*4, p)
				if relErr(end, want) > 1e-9 {
					t.Errorf("%v P=%d elems=%d: simulated %v, closed-form %v",
						c.sched, p, elems, end, want)
				}
			}
		}
	}
}

// RHD at a non-power-of-two party count falls back to the tree, in both
// the engine and the oracle.
func TestRHDFallsBackToTree(t *testing.T) {
	p, elems := 6, 1024
	inputs := randInputs(p, elems, 3)
	end, _ := simAllReduce(t, ScheduleRHD, p, elems, inputs)
	if want := RHDAllReduceTime(testLink, int64(elems)*4, p); relErr(end, want) > 1e-9 {
		t.Errorf("fallback time %v, oracle %v", end, want)
	}
	if RHDAllReduceTime(testLink, 4096, 6) != TreeAllReduceTime(testLink, 4096, 6) {
		t.Error("oracle fallback does not equal the tree formula")
	}
}

// Simulated standalone Broadcast and Reduce match their oracles too.
func TestSimulatedBcastReduceMatchClosedForm(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8, 13} {
		elems := 1000
		env := sim.NewEnv()
		topo := NewUniform(env, p, testLink)
		ids := make([]int, p)
		for i := range ids {
			ids[i] = i
		}
		c := NewCommunicator(topo, CommConfig{Parties: ids, Plan: packedPlan(elems)})
		end := runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
			c.Endpoint(rank).BroadcastSize(pr, 0, 0)
			c.Endpoint(rank).ReduceSize(pr, 1, 0)
		})
		want := TreeBroadcastTime(testLink, int64(elems)*4, p) + TreeReduceTime(testLink, int64(elems)*4, p)
		if relErr(end, want) > 1e-9 {
			t.Errorf("P=%d: bcast+reduce %v, closed-form %v", p, end, want)
		}
	}
}

// The ordered-reduction invariant: every schedule's allreduce result is
// bit-identical to ReduceSum over the contributions in rank order — the
// schedule choice can never change training mathematics.
func TestAllReduceBitIdenticalToReduceSum(t *testing.T) {
	for _, sched := range []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleChain, ScheduleLinear} {
		for _, p := range []int{2, 3, 4, 5, 8} {
			elems := 257
			inputs := randInputs(p, elems, int64(p)*7)
			_, bufs := simAllReduce(t, sched, p, elems, inputs)
			want := make([]float32, elems)
			ReduceSum(want, inputs...)
			for rank, buf := range bufs {
				for i := range want {
					if buf[i] != want[i] {
						t.Fatalf("%v P=%d rank %d: buf[%d]=%v, ReduceSum=%v (not bit-identical)",
							sched, p, rank, i, buf[i], want[i])
					}
				}
			}
		}
	}
}

// Reduce leaves non-root buffers untouched and the root holds the
// rank-ordered sum; Broadcast replicates the root's values.
func TestReduceAndBroadcastData(t *testing.T) {
	p, elems := 5, 64
	inputs := randInputs(p, elems, 11)
	env := sim.NewEnv()
	topo := NewUniform(env, p, testLink)
	ids := []int{0, 1, 2, 3, 4}
	c := NewCommunicator(topo, CommConfig{Parties: ids, Plan: packedPlan(elems)})
	bufs := make([][]float32, p)
	for i := range bufs {
		bufs[i] = append([]float32(nil), inputs[i]...)
	}
	runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
		c.Endpoint(rank).Reduce(pr, 0, 2, bufs[rank])
		c.Endpoint(rank).Broadcast(pr, 1, 2, bufs[rank])
	})
	want := make([]float32, elems)
	ReduceSum(want, inputs...)
	for rank := range bufs {
		if !reflect.DeepEqual(bufs[rank], want) {
			t.Fatalf("rank %d: reduce+bcast result differs from ordered sum", rank)
		}
	}
}

// Per-layer plans pay one latency per layer per round plus the gather
// staging pass — the simulated counterpart of Plan.AllReduceTime, which is
// what makes Figure 10's packed-vs-unpacked gap emergent.
func TestPerLayerPlanMatchesPlanOracle(t *testing.T) {
	layers := []int64{2080 * 4, 25050 * 4, 400500 * 4, 5010 * 4}
	for _, packed := range []bool{false, true} {
		plan := Plan{LayerBytes: layers, Packed: packed, GatherBW: 6e9}
		p := 4
		env := sim.NewEnv()
		topo := NewUniform(env, p, testLink)
		c := NewCommunicator(topo, CommConfig{Parties: []int{0, 1, 2, 3}, Plan: plan})
		end := runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
			c.Endpoint(rank).AllReduceSize(pr, 0)
		})
		want := plan.AllReduceTime(testLink, p)
		if relErr(end, want) > 1e-9 {
			t.Errorf("packed=%v: simulated %v, Plan.AllReduceTime %v", packed, end, want)
		}
	}
}

// Size-only collectives complete at exactly the data-carrying times.
func TestSizeOnlyMatchesDataTime(t *testing.T) {
	for _, sched := range []Schedule{ScheduleTree, ScheduleRing, ScheduleRHD, ScheduleChain} {
		p, elems := 4, 3000
		inputs := randInputs(p, elems, 5)
		dataEnd, _ := simAllReduce(t, sched, p, elems, inputs)
		env := sim.NewEnv()
		topo := NewUniform(env, p, testLink)
		c := NewCommunicator(topo, CommConfig{Parties: []int{0, 1, 2, 3}, Plan: packedPlan(elems), Schedule: sched})
		sizeEnd := runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
			c.Endpoint(rank).AllReduceSize(pr, 0)
		})
		if dataEnd != sizeEnd {
			t.Errorf("%v: data %v vs size-only %v", sched, dataEnd, sizeEnd)
		}
	}
}

// The pipelined chain overlaps chunk hops: for a bandwidth-dominated
// message it beats both the synchronized linear chain it refines and the
// tree, approaching n·β as chunks shrink.
func TestChainPipeliningBeatsTreeOnLargeMessages(t *testing.T) {
	p, elems := 8, 1<<20 // 4 MB
	inputs := randInputs(p, elems, 9)
	chainEnd, bufs := simAllReduce(t, ScheduleChain, p, elems, inputs)
	treeEnd, _ := simAllReduce(t, ScheduleTree, p, elems, inputs)
	linEnd, _ := simAllReduce(t, ScheduleLinear, p, elems, inputs)
	if chainEnd >= treeEnd {
		t.Errorf("pipelined chain (%v) not faster than tree (%v) on 4 MB", chainEnd, treeEnd)
	}
	if chainEnd >= linEnd {
		t.Errorf("pipelined chain (%v) not faster than linear (%v)", chainEnd, linEnd)
	}
	want := make([]float32, elems)
	ReduceSum(want, inputs...)
	if !reflect.DeepEqual(bufs[p-1], want) {
		t.Error("chain result differs from ordered sum")
	}
}

// Contention emerges from shared segments: on a capacity-1 bus the tree's
// "parallel" pair transfers serialize, so a reduce costs (P−1) transfers
// instead of log2(P) waves.
func TestBusContentionSerializesTree(t *testing.T) {
	p, elems := 8, 1024
	mk := func(cap_ int) float64 {
		env := sim.NewEnv()
		var topo *Topology
		if cap_ == 0 {
			topo = NewUniform(env, p, testLink)
		} else {
			topo = NewBus(env, p, testLink, cap_)
		}
		ids := make([]int, p)
		for i := range ids {
			ids[i] = i
		}
		c := NewCommunicator(topo, CommConfig{Parties: ids, Plan: packedPlan(elems)})
		return runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
			c.Endpoint(rank).ReduceSize(pr, 0, 0)
		})
	}
	free, bus := mk(0), mk(1)
	unit := testLink.Time(int64(elems) * 4)
	if relErr(free, 3*unit) > 1e-9 { // log2(8) waves
		t.Errorf("contention-free reduce %v, want 3 waves (%v)", free, 3*unit)
	}
	if relErr(bus, 7*unit) > 1e-9 { // P-1 serialized transfers
		t.Errorf("bus reduce %v, want 7 serialized transfers (%v)", bus, 7*unit)
	}
	// Intermediate capacity interpolates.
	half := mk(2)
	if !(half > free && half < bus) {
		t.Errorf("capacity-2 reduce %v outside (%v, %v)", half, free, bus)
	}
}

// The PCIe-tree topology routes GPU↔GPU traffic over peer DMA (or host
// staging) and shares the switch when bounded.
func TestPCIeTreeTopologyRouting(t *testing.T) {
	env := sim.NewEnv()
	topo := NewPCIeTree(env, PCIeConfig{GPUs: 4, Host: hw.PCIePinned, Peer: hw.GPUPeer})
	if topo.Nodes() != 5 || topo.Host() != 4 {
		t.Fatalf("nodes=%d host=%d", topo.Nodes(), topo.Host())
	}
	var gpuAt, hostAt float64
	env.Spawn("gpu0", func(p *sim.Proc) {
		topo.Send(p, 0, 1, 0, nil, 1<<20)
		gpuAt = p.Now()
		topo.Send(p, 0, topo.Host(), 1, nil, 1<<20)
		hostAt = p.Now() - gpuAt
	})
	env.Run()
	env.Close()
	if relErr(gpuAt, hw.GPUPeer.Time(1<<20)) > 1e-9 {
		t.Errorf("peer hop %v, want %v", gpuAt, hw.GPUPeer.Time(1<<20))
	}
	if relErr(hostAt, hw.PCIePinned.Time(1<<20)) > 1e-9 {
		t.Errorf("host hop %v, want %v", hostAt, hw.PCIePinned.Time(1<<20))
	}

	// Host-staged GPU↔GPU (the Sync EASGD1 mode) rides the host link.
	env2 := sim.NewEnv()
	staged := NewPCIeTree(env2, PCIeConfig{GPUs: 4, Host: hw.PCIeUnpinned, Peer: hw.GPUPeer, HostStaged: true})
	var at float64
	env2.Spawn("gpu0", func(p *sim.Proc) {
		staged.Send(p, 0, 1, 0, nil, 1<<20)
		at = p.Now()
	})
	env2.Run()
	env2.Close()
	if relErr(at, hw.PCIeUnpinned.Time(1<<20)) > 1e-9 {
		t.Errorf("staged hop %v, want %v", at, hw.PCIeUnpinned.Time(1<<20))
	}
}

// A bounded switch makes collective rounds queue. Capacity 2 lets a 4-GPU
// tree round (2 pair transfers) run in parallel; capacity 1 halves it.
func TestSwitchConcurrencyContention(t *testing.T) {
	mk := func(cap_ int) float64 {
		env := sim.NewEnv()
		topo := NewPCIeTree(env, PCIeConfig{GPUs: 4, Host: hw.PCIePinned, Peer: hw.GPUPeer, SwitchConcurrency: cap_})
		c := NewCommunicator(topo, CommConfig{Parties: []int{0, 1, 2, 3}, Plan: packedPlan(1 << 18)})
		return runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
			c.Endpoint(rank).AllReduceSize(pr, 0)
		})
	}
	free, bounded := mk(2), mk(1)
	if bounded <= free {
		t.Errorf("capacity-1 switch (%v) not slower than capacity-2 (%v)", bounded, free)
	}
}

// Per-message wire sizes flow through the WireFunc: with 1-bit compression
// the allreduce completes at the closed-form time of the compressed bytes.
func TestWireFuncChargesCompressedBytes(t *testing.T) {
	p, elems := 4, 100000
	env := sim.NewEnv()
	topo := NewUniform(env, p, testLink)
	wire := func(e int) int64 { return quant.WireBytes(quant.OneBit, e) }
	c := NewCommunicator(topo, CommConfig{Parties: []int{0, 1, 2, 3}, Plan: packedPlan(elems), Wire: wire})
	end := runCollective(t, topo, c, func(pr *sim.Proc, rank int) {
		c.Endpoint(rank).AllReduceSize(pr, 0)
	})
	want := TreeAllReduceTime(testLink, quant.WireBytes(quant.OneBit, elems), p)
	if relErr(end, want) > 1e-9 {
		t.Errorf("compressed allreduce %v, closed-form over wire bytes %v", end, want)
	}
	full := TreeAllReduceTime(testLink, int64(elems)*4, p)
	if end >= full/20 {
		t.Errorf("1-bit allreduce %v not ≈32× cheaper than fp32 %v", end, full)
	}
}

// Engine determinism: identical runs produce identical times and bits, and
// the par pool's width/serial mode cannot leak into simulated collectives.
func TestCollectiveDeterministicAcrossPoolWidths(t *testing.T) {
	type outcome struct {
		end  float64
		bufs [][]float32
	}
	run := func() outcome {
		inputs := randInputs(5, 1234, 77)
		end, bufs := simAllReduce(t, ScheduleRing, 5, 1234, inputs)
		return outcome{end, bufs}
	}
	base := run()
	for _, width := range []int{1, 4} {
		par.SetWidth(width)
		got := run()
		par.SetWidth(0)
		if got.end != base.end || !reflect.DeepEqual(got.bufs, base.bufs) {
			t.Fatalf("width %d changed the collective outcome", width)
		}
	}
	par.SetSerial(true)
	got := run()
	par.SetSerial(false)
	if got.end != base.end || !reflect.DeepEqual(got.bufs, base.bufs) {
		t.Fatal("serial mode changed the collective outcome")
	}
}

// Overlapped collectives on one communicator: a forked broadcast of round
// t+1 runs concurrently with the reduce of round t, with selective receive
// keeping the interleaved streams apart.
func TestOverlappedCollectivesInterleave(t *testing.T) {
	p, elems := 4, 512
	inputs := randInputs(p, elems, 13)
	center := randInputs(1, elems, 14)[0]
	env := sim.NewEnv()
	topo := NewUniform(env, p, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: []int{0, 1, 2, 3}, Plan: packedPlan(elems)})
	sums := make([][]float32, p)
	got := make([][]float32, p)
	for rank := 0; rank < p; rank++ {
		rank := rank
		sums[rank] = append([]float32(nil), inputs[rank]...)
		got[rank] = make([]float32, elems)
		if rank == 0 {
			copy(got[0], center)
		}
		env.Spawn(fmt.Sprintf("party%d", rank), func(pr *sim.Proc) {
			bc := env.Fork(fmt.Sprintf("bcast%d", rank), func(bp *sim.Proc) {
				c.Endpoint(rank).Broadcast(bp, 1, 0, got[rank])
			})
			c.Endpoint(rank).Reduce(pr, 0, 0, sums[rank])
			bc.Wait(pr)
		})
	}
	end := env.Run()
	env.Close()
	want := make([]float32, elems)
	ReduceSum(want, inputs...)
	if !reflect.DeepEqual(sums[0], want) {
		t.Error("overlapped reduce result wrong")
	}
	for rank := range got {
		if !reflect.DeepEqual(got[rank], center) {
			t.Errorf("rank %d overlapped bcast result wrong", rank)
		}
	}
	// Both collectives ran concurrently: the wall time is below their sum.
	seq := TreeReduceTime(testLink, int64(elems)*4, p) + TreeBroadcastTime(testLink, int64(elems)*4, p)
	if end >= seq {
		t.Errorf("overlapped collectives took %v, not faster than sequential %v", end, seq)
	}
}

func TestCommunicatorDegenerateAndValidation(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	topo := NewUniform(env, 1, testLink)
	c := NewCommunicator(topo, CommConfig{Parties: []int{0}, Plan: packedPlan(8)})
	buf := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	env.Spawn("solo", func(p *sim.Proc) {
		c.Endpoint(0).AllReduce(p, 0, buf) // P=1: free no-op
	})
	if end := env.Run(); end != 0 {
		t.Errorf("single-party allreduce took %v", end)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched buffer did not panic")
			}
		}()
		c.Endpoint(0).AllReduce(nil, 1, []float32{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-float32 plan did not panic")
			}
		}()
		NewCommunicator(topo, CommConfig{Parties: []int{0}, Plan: Plan{LayerBytes: []int64{7}}})
	}()
}

func TestParseSchedule(t *testing.T) {
	for _, name := range Schedules() {
		s, err := ParseSchedule(name)
		if err != nil || s.String() != name {
			t.Errorf("ParseSchedule(%q) = %v, %v", name, s, err)
		}
	}
	if s, err := ParseSchedule(""); err != nil || s != ScheduleTree {
		t.Errorf("empty schedule should default to tree, got %v, %v", s, err)
	}
	if _, err := ParseSchedule("carrier-pigeon"); err == nil {
		t.Error("unknown schedule did not error")
	}
}
