package comm

import "fmt"

// This file is the gradient-bucketing layer of the streaming communication
// path. A backward pass emits per-layer gradient-ready events last layer
// first (nn.GradEvent); communicating every layer separately would pay one
// collective latency per layer (the Figure 10 failure mode), while waiting
// for the whole model serializes communication behind computation. The
// Bucketizer is the standard middle ground (Poseidon's wait-free backprop,
// modern DDP buckets): coalesce ready layers into ~BucketBytes buckets, and
// launch each bucket's collective the moment its last layer lands, so
// bucket k's wire time hides under the tail of backprop (and under bucket
// k+1's computation).
//
// Buckets respect the existing Plan segments: a bucket is a contiguous run
// of whole plan segments (layers), never a partial one, so the packed
// parameter layout's invariants — and the ordered-reduction bit-identity of
// the collective engine — carry over unchanged: the concatenation of all
// bucket ranges is exactly [0, TotalBytes/4), each element is reduced once,
// in rank order, no matter how the buckets are drawn.

// Bucket is one coalesced communication unit: a contiguous [Lo,Hi) element
// range of the model vector covering the plan segments SegLo..SegHi
// (inclusive). Buckets are numbered in emission (backward) order: bucket 0
// holds the *last* layers — the first gradients backprop finishes — and the
// final bucket ends at element 0.
type Bucket struct {
	ID           int
	Lo, Hi       int // element range within the packed model vector
	SegLo, SegHi int // plan segment (layer) index range, inclusive
}

// Elems returns the bucket's element count.
func (b Bucket) Elems() int { return b.Hi - b.Lo }

// Bytes returns the bucket's raw fp32 payload size.
func (b Bucket) Bytes() int64 { return int64(b.Elems()) * 4 }

// Bucketizer partitions a Plan's segments into ~bucketBytes buckets, walking
// the segments in backward (descending) order and closing a bucket as soon
// as it reaches bucketBytes. Degenerate sizes behave as documented:
// bucketBytes smaller than every segment yields one bucket per segment
// (buckets never split a segment); bucketBytes at least the plan's total —
// or ≤ 0 — yields a single whole-model bucket, which is exactly the
// monolithic path.
type Bucketizer struct {
	plan    Plan
	buckets []Bucket
	segOf   []int // plan segment index -> bucket ID
}

// NewBucketizer builds the bucket layout for a plan. The plan must have at
// least one segment of whole float32s.
func NewBucketizer(plan Plan, bucketBytes int64) *Bucketizer {
	return NewBucketizerMasked(plan, bucketBytes, nil)
}

// NewBucketizerMasked builds the bucket layout with some plan segments
// excluded: skip[seg] marks segments that travel outside the bucketed
// allreduce stream (the hybrid comm mode's SFB layers, whose factors ride
// their own collective). Skipped segments belong to no bucket, and a bucket
// never spans a skipped segment — each contiguous run of unskipped segments
// buckets independently, preserving the contiguity invariant. A nil skip is
// the plain NewBucketizer.
func NewBucketizerMasked(plan Plan, bucketBytes int64, skip []bool) *Bucketizer {
	if len(plan.LayerBytes) == 0 {
		panic("comm: bucketizer needs a plan with at least one segment")
	}
	if skip != nil && len(skip) != len(plan.LayerBytes) {
		panic(fmt.Sprintf("comm: %d skip flags for %d plan segments", len(skip), len(plan.LayerBytes)))
	}
	// Element offsets of each segment.
	offs := make([]int, len(plan.LayerBytes)+1)
	for i, b := range plan.LayerBytes {
		if b%4 != 0 {
			panic(fmt.Sprintf("comm: plan segment of %d bytes is not whole float32s", b))
		}
		offs[i+1] = offs[i] + int(b/4)
	}
	bz := &Bucketizer{plan: plan, segOf: make([]int, len(plan.LayerBytes))}
	for i := range bz.segOf {
		bz.segOf[i] = -1
	}
	if bucketBytes <= 0 {
		bucketBytes = plan.TotalBytes()
	}
	close := func(lo, hi int) {
		id := len(bz.buckets)
		bz.buckets = append(bz.buckets, Bucket{
			ID: id, Lo: offs[lo], Hi: offs[hi+1], SegLo: lo, SegHi: hi,
		})
		for s := lo; s <= hi; s++ {
			bz.segOf[s] = id
		}
	}
	hiSeg := -1 // top segment of the open run, -1 when none
	var acc int64
	for seg := len(plan.LayerBytes) - 1; seg >= 0; seg-- {
		if skip != nil && skip[seg] {
			if hiSeg >= 0 {
				close(seg+1, hiSeg)
				hiSeg, acc = -1, 0
			}
			continue
		}
		if hiSeg < 0 {
			hiSeg = seg
		}
		acc += plan.LayerBytes[seg]
		if acc >= bucketBytes || seg == 0 {
			close(seg, hiSeg)
			hiSeg, acc = -1, 0
		}
	}
	return bz
}

// Skipped reports whether plan segment seg was excluded by the mask.
func (bz *Bucketizer) Skipped(seg int) bool { return bz.segOf[seg] < 0 }

// NumBuckets returns the bucket count.
func (bz *Bucketizer) NumBuckets() int { return len(bz.buckets) }

// Buckets returns the buckets in emission (backward) order.
func (bz *Bucketizer) Buckets() []Bucket { return bz.buckets }

// BucketOf returns the bucket holding plan segment seg; it panics for a
// segment the mask excluded (see Skipped).
func (bz *Bucketizer) BucketOf(seg int) Bucket {
	if bz.segOf[seg] < 0 {
		panic(fmt.Sprintf("comm: plan segment %d is masked out of the bucket layout", seg))
	}
	return bz.buckets[bz.segOf[seg]]
}

// SubPlan returns the plan restricted to one bucket's segments, preserving
// packing and the gather-staging bandwidth — the message plan of a
// point-to-point transfer that moves just this bucket.
func (bz *Bucketizer) SubPlan(b Bucket) Plan {
	return Plan{
		LayerBytes: bz.plan.LayerBytes[b.SegLo : b.SegHi+1],
		Packed:     bz.plan.Packed,
		GatherBW:   bz.plan.GatherBW,
	}
}

// SplitWire divides a total wire size across the buckets pro rata to their
// raw sizes (the last bucket absorbs rounding), mirroring planWire: an
// uncompressed model splits into exactly the bucket byte counts, a
// compressed stream shrinks every bucket by the same ratio.
func (bz *Bucketizer) SplitWire(wireBytes int64) []int64 {
	total := bz.plan.TotalBytes()
	out := make([]int64, len(bz.buckets))
	if total == 0 {
		return out
	}
	var used int64
	for i, b := range bz.buckets[:len(bz.buckets)-1] {
		out[i] = wireBytes * b.Bytes() / total
		used += out[i]
	}
	out[len(out)-1] = wireBytes - used
	return out
}
