package hw

import "fmt"

// MCDRAMMode is the configuration of KNL's 16 GB on-package MCDRAM
// (paper §2.1 and Figure 2).
type MCDRAMMode int

const (
	// MCDRAMCache uses MCDRAM as a last-level cache in front of DDR4.
	MCDRAMCache MCDRAMMode = iota
	// MCDRAMFlat exposes MCDRAM as explicitly allocatable memory.
	MCDRAMFlat
	// MCDRAMHybrid splits MCDRAM: half cache, half flat.
	MCDRAMHybrid
)

func (m MCDRAMMode) String() string {
	switch m {
	case MCDRAMCache:
		return "cache"
	case MCDRAMFlat:
		return "flat"
	case MCDRAMHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("MCDRAMMode(%d)", int(m))
	}
}

// ClusterMode is KNL's on-chip cache-coherence clustering (paper §2.1):
// all-to-all, quadrant/hemisphere, or sub-NUMA SNC-4/2.
type ClusterMode int

const (
	// ClusterAll2All distributes addresses uniformly over all tag directories.
	ClusterAll2All ClusterMode = iota
	// ClusterQuadrant keeps a memory controller's addresses in its quadrant.
	ClusterQuadrant
	// ClusterSNC4 exposes the four quadrants as NUMA nodes so software can
	// pin threads next to their data — the mode §6.2's partitioning exploits.
	ClusterSNC4
)

func (m ClusterMode) String() string {
	switch m {
	case ClusterAll2All:
		return "all-to-all"
	case ClusterQuadrant:
		return "quadrant"
	case ClusterSNC4:
		return "snc-4"
	default:
		return fmt.Sprintf("ClusterMode(%d)", int(m))
	}
}

// meshLatencyFactor scales on-chip communication latency per cluster mode:
// all-to-all pays cross-chip tag-directory lookups on every miss, quadrant
// keeps them local, SNC-4 additionally keeps software NUMA-local.
func (m ClusterMode) meshLatencyFactor() float64 {
	switch m {
	case ClusterAll2All:
		return 1.5
	case ClusterQuadrant:
		return 1.0
	case ClusterSNC4:
		return 0.8
	default:
		return 1.0
	}
}

// bandwidthFactor scales sustained memory bandwidth per cluster mode: the
// longer coherence paths of all-to-all mode cost throughput on every miss,
// while SNC-4 with NUMA-pinned software shortens them below quadrant mode.
func (m ClusterMode) bandwidthFactor() float64 {
	switch m {
	case ClusterAll2All:
		return 0.85
	case ClusterQuadrant:
		return 1.0
	case ClusterSNC4:
		return 1.06
	default:
		return 1.0
	}
}

// KNLChip models one Xeon Phi 7250 node of Cori: 68 cores at 1.4 GHz,
// 6 SP TFLOPS peak, 16 GB MCDRAM at 475 GB/s measured STREAM (paper §2.1),
// 384 GB DDR4 at 90 GB/s.
type KNLChip struct {
	Cores     int
	PeakFLOPS float64
	Eff       float64 // achieved fraction of peak for the workload
	MCDRAM    int64
	MCDRAMBW  float64
	DDR       int64
	DDRBW     float64
	MCMode    MCDRAMMode
	CLMode    ClusterMode
}

// NewKNL7250 returns the paper's KNL node with the given workload efficiency.
func NewKNL7250(eff float64) KNLChip {
	return KNLChip{
		Cores:     68,
		PeakFLOPS: 6e12,
		Eff:       eff,
		MCDRAM:    16 << 30,
		MCDRAMBW:  475e9,
		DDR:       384 << 30,
		DDRBW:     90e9,
		MCMode:    MCDRAMCache,
		CLMode:    ClusterQuadrant,
	}
}

// EffectiveBW returns the memory bandwidth available to a working set of
// the given footprint under the chip's MCDRAM mode. Fitting in MCDRAM gets
// near-STREAM bandwidth; spilling blends toward DDR in proportion to the
// overflow (cache mode still catches the hot fraction).
func (k KNLChip) EffectiveBW(footprint int64) float64 {
	if footprint < 0 {
		panic("hw: negative footprint")
	}
	capMC := k.MCDRAM
	bwMC := k.MCDRAMBW
	switch k.MCMode {
	case MCDRAMCache:
		bwMC = k.MCDRAMBW * 0.85 // cache mode runs below flat-mode STREAM
	case MCDRAMHybrid:
		capMC = k.MCDRAM / 2
	}
	cl := k.CLMode.bandwidthFactor()
	if footprint <= capMC {
		return bwMC * cl
	}
	// Weighted harmonic blend: the fitting fraction streams from MCDRAM,
	// the overflow from DDR.
	fit := float64(capMC) / float64(footprint)
	return cl / (fit/bwMC + (1-fit)/k.DDRBW)
}

// ComputeTime charges a compute phase on coresUsed of the chip's cores, as
// the larger of the FLOP time and the memory-streaming time of the phase's
// working set (roofline). bytesTouched is the bytes streamed per phase and
// footprint the resident working set that determines which memory level
// serves it.
func (k KNLChip) ComputeTime(flops, bytesTouched, footprint int64, coresUsed int) float64 {
	if coresUsed <= 0 || coresUsed > k.Cores {
		panic(fmt.Sprintf("hw: coresUsed %d of %d", coresUsed, k.Cores))
	}
	frac := float64(coresUsed) / float64(k.Cores)
	t := float64(flops) / (k.PeakFLOPS * k.Eff * frac)
	// A core subset also gets a proportional share of bandwidth, but a
	// single quadrant can still draw ~1/2 of chip bandwidth, so share decays
	// slower than core fraction.
	bwShare := frac + (1-frac)*0.3
	if bt := float64(bytesTouched) / (k.EffectiveBW(footprint) * bwShare); bt > t {
		t = bt
	}
	return t
}

// OnChipLink returns the mesh link between chip partitions, with latency
// scaled by the cluster mode.
func (k KNLChip) OnChipLink() Link {
	return Link{
		Name:  "KNL mesh (" + k.CLMode.String() + ")",
		Alpha: KNLOnChip.Alpha * k.CLMode.meshLatencyFactor(),
		Beta:  KNLOnChip.Beta,
	}
}
