// Package hw models the hardware the paper evaluated on: Tesla K80/M40
// multi-GPU nodes with PCIe switches, Intel Knights Landing (Xeon Phi 7250)
// chips with MCDRAM, and the interconnects of Table 2 (InfiniBand under the
// α-β model) plus Cori's Cray Aries. The models provide *time* for the
// discrete-event simulator: computation is charged as FLOPs over effective
// throughput, transfers as α + bytes·β, and memory-bound phases as bytes
// over the bandwidth of whichever memory level the working set fits in.
//
// None of this hardware exists in this environment; DESIGN.md documents the
// simulation as the substitution for the paper's testbeds. The paper's
// results are communication-structure results (Θ(log P) vs Θ(P), packed vs
// per-layer messages, data placement, overlap), which are properties of
// these cost models rather than of silicon.
package hw

import "fmt"

// Link is an α-β communication channel: transferring n bytes costs
// α + n·β seconds. β is the reciprocal bandwidth.
type Link struct {
	Name  string
	Alpha float64 // latency, seconds
	Beta  float64 // seconds per byte
}

// Time returns the cost of moving n bytes across the link.
func (l Link) Time(n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("hw: negative transfer size %d", n))
	}
	return l.Alpha + float64(n)*l.Beta
}

// Bandwidth returns the asymptotic bandwidth in bytes/second.
func (l Link) Bandwidth() float64 { return 1 / l.Beta }

// Table 2 of the paper: InfiniBand performance under the α-β model.
var (
	// MellanoxFDR is Mellanox 56 Gb/s FDR InfiniBand (α=0.7µs, β=0.2ns/B).
	MellanoxFDR = Link{Name: "Mellanox 56Gb/s FDR IB", Alpha: 0.7e-6, Beta: 0.2e-9}
	// IntelQDR is Intel 40 Gb/s QDR InfiniBand (α=1.2µs, β=0.3ns/B).
	IntelQDR = Link{Name: "Intel 40Gb/s QDR IB", Alpha: 1.2e-6, Beta: 0.3e-9}
	// Intel10GbE is the Intel 10GbE NetEffect NE020 (α=7.2µs, β=0.9ns/B).
	Intel10GbE = Link{Name: "Intel 10GbE NetEffect NE020", Alpha: 7.2e-6, Beta: 0.9e-9}
)

// Intra-node links of the paper's GPU systems.
var (
	// PCIeUnpinned models per-tensor staged cudaMemcpy through pageable host
	// memory — the transfer mode of the original per-layer EASGD code. Small
	// messages pay the full launch+staging latency and pageable copies reach
	// well under peak PCIe bandwidth.
	PCIeUnpinned = Link{Name: "PCIe gen3 pageable", Alpha: 20e-6, Beta: 1 / 0.8e9}
	// PCIePinned models a single packed pinned-buffer DMA (the §5.2 layout).
	PCIePinned = Link{Name: "PCIe gen3 pinned", Alpha: 10e-6, Beta: 1 / 10e9}
	// GPUPeer models GPU↔GPU peer-to-peer DMA through the 96-lane PCIe
	// switch the M40 nodes have (no host staging at all).
	GPUPeer = Link{Name: "PCIe switch P2P", Alpha: 6e-6, Beta: 1 / 12e9}
	// KNLOnChip models the on-die mesh between NUMA quadrants of one KNL
	// chip (§6.2's partition communication).
	KNLOnChip = Link{Name: "KNL on-chip mesh", Alpha: 0.3e-6, Beta: 1 / 80e9}
)

// SaturatingLink models an interconnect whose effective bandwidth rises with
// message size toward an asymptote (real MPI collectives behave this way:
// rendezvous protocol, pipelining and packetization overheads amortize only
// on large transfers). Effective bandwidth for an n-byte message is
// BWMax · n/(n + HalfSize).
type SaturatingLink struct {
	Name     string
	Alpha    float64
	BWMax    float64 // bytes/second asymptote
	HalfSize float64 // message size at which half of BWMax is reached
}

// Time returns the cost of an n-byte transfer.
func (l SaturatingLink) Time(n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("hw: negative transfer size %d", n))
	}
	if n == 0 {
		return l.Alpha
	}
	bw := l.BWMax * float64(n) / (float64(n) + l.HalfSize)
	return l.Alpha + float64(n)/bw
}

// EffectiveBandwidth reports bytes/second achieved for n-byte messages.
func (l SaturatingLink) EffectiveBandwidth(n int64) float64 {
	return float64(n) / (l.Time(n) - l.Alpha)
}

// Aries is Cori's Cray Aries interconnect as seen by large collective
// operations on a shared dragonfly fabric: per-hop latency 1.5µs and
// effective per-stage bandwidth saturating toward 0.8 GB/s with half-
// saturation at 28 MB messages. These are far below the NIC peak because
// they describe *collective* stages on a busy shared fabric; they are
// calibrated so that the paper's own Table 4 overheads (GoogleNet 92.3% /
// VGG 78.5% weak-scaling efficiency at 2176 cores) are reproduced —
// EXPERIMENTS.md records the calibration.
var Aries = SaturatingLink{Name: "Cray Aries (Cori)", Alpha: 1.5e-6, BWMax: 0.8e9, HalfSize: 28e6}

// Device is a compute device with a throughput cost model. Eff is the
// fraction of peak a real DNN workload achieves on the device (small LeNet
// kernels run far below peak; large GEMMs approach it).
type Device struct {
	Name      string
	PeakFLOPS float64 // single precision peak
	Eff       float64 // achieved fraction of peak for the workload
	MemBytes  int64   // device memory capacity
	MemBW     float64 // device memory bandwidth, bytes/s
}

// ComputeTime returns the time to execute the given FLOPs, floor-bounded by
// streaming bytesTouched from device memory (roofline model).
func (d Device) ComputeTime(flops, bytesTouched int64) float64 {
	t := float64(flops) / (d.PeakFLOPS * d.Eff)
	if d.MemBW > 0 {
		if mt := float64(bytesTouched) / d.MemBW; mt > t {
			t = mt
		}
	}
	return t
}

// Devices from the paper's experimental systems (§10.4).
var (
	// TeslaK80Half is one GK210 half of a K80: 12 GB GDDR5, ~4.4 SP TFLOPS.
	TeslaK80Half = Device{Name: "Tesla K80 (half)", PeakFLOPS: 4.37e12, Eff: 0.35, MemBytes: 12 << 30, MemBW: 240e9}
	// TeslaM40 has 12 GB GDDR5 and ~7 SP TFLOPS.
	TeslaM40 = Device{Name: "Tesla M40", PeakFLOPS: 6.8e12, Eff: 0.35, MemBytes: 12 << 30, MemBW: 288e9}
	// XeonE5 approximates the host CPUs (E5-1680v2/E5-2680v3) for the small
	// amount of master-side update work they do.
	XeonE5 = Device{Name: "Xeon E5", PeakFLOPS: 0.48e12, Eff: 0.5, MemBytes: 256 << 30, MemBW: 60e9}
)

// BatchEfficiency scales a device's DNN efficiency with batch size: BLAS
// kernels on small batches underutilize the device, saturating as batches
// grow (§7.2: "larger batch size makes BLAS functions run more
// efficiently"). Returns a multiplier in (0, 1].
func BatchEfficiency(batch int) float64 {
	if batch <= 0 {
		panic("hw: batch must be positive")
	}
	return float64(batch) / (float64(batch) + 32)
}
