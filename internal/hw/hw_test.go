package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkTime(t *testing.T) {
	l := Link{Name: "test", Alpha: 1e-6, Beta: 1e-9}
	if got := l.Time(0); got != 1e-6 {
		t.Errorf("zero-byte time %v, want alpha", got)
	}
	if got := l.Time(1000); math.Abs(got-2e-6) > 1e-15 {
		t.Errorf("1000B time %v, want 2µs", got)
	}
	if bw := l.Bandwidth(); math.Abs(bw-1e9) > 1 {
		t.Errorf("bandwidth %v", bw)
	}
}

func TestLinkNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	MellanoxFDR.Time(-1)
}

func TestTable2Constants(t *testing.T) {
	// The exact values of the paper's Table 2.
	cases := []struct {
		l     Link
		alpha float64
		beta  float64
	}{
		{MellanoxFDR, 0.7e-6, 0.2e-9},
		{IntelQDR, 1.2e-6, 0.3e-9},
		{Intel10GbE, 7.2e-6, 0.9e-9},
	}
	for _, c := range cases {
		if c.l.Alpha != c.alpha || c.l.Beta != c.beta {
			t.Errorf("%s: α=%v β=%v, want α=%v β=%v", c.l.Name, c.l.Alpha, c.l.Beta, c.alpha, c.beta)
		}
	}
	// Ordering the paper relies on: FDR < QDR < 10GbE in both α and β.
	if !(MellanoxFDR.Alpha < IntelQDR.Alpha && IntelQDR.Alpha < Intel10GbE.Alpha) {
		t.Error("latency ordering broken")
	}
	if !(MellanoxFDR.Beta < IntelQDR.Beta && IntelQDR.Beta < Intel10GbE.Beta) {
		t.Error("bandwidth ordering broken")
	}
}

// Property: for every Table 2 link, small messages are latency-bound
// (α dominates) and large messages bandwidth-bound — the fact §5.2's packed
// communication exploits.
func TestAlphaDominatesSmallMessages(t *testing.T) {
	for _, l := range []Link{MellanoxFDR, IntelQDR, Intel10GbE} {
		small := l.Time(64)
		if small > 2*l.Alpha {
			t.Errorf("%s: 64B message time %v not latency-dominated (α=%v)", l.Name, small, l.Alpha)
		}
		big := l.Time(100 << 20)
		if big < 10*l.Alpha {
			t.Errorf("%s: 100MB message %v not bandwidth-dominated", l.Name, big)
		}
	}
}

// Property: sending one packed n-byte message is never slower than sending
// the same bytes as k messages — the packing theorem behind Figure 10.
func TestPackingNeverSlowerProperty(t *testing.T) {
	f := func(nRaw uint32, kRaw uint8) bool {
		n := int64(nRaw%10_000_000) + 1
		k := int64(kRaw%30) + 1
		for _, l := range []Link{MellanoxFDR, IntelQDR, Intel10GbE, PCIeUnpinned, PCIePinned} {
			packed := l.Time(n)
			var split float64
			per := n / k
			rem := n - per*(k-1)
			for i := int64(0); i < k-1; i++ {
				split += l.Time(per)
			}
			split += l.Time(rem)
			if packed > split+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSaturatingLinkMonotonicBandwidth(t *testing.T) {
	sizes := []int64{1 << 10, 1 << 16, 1 << 20, 1 << 24, 1 << 28}
	prev := 0.0
	for _, n := range sizes {
		bw := Aries.EffectiveBandwidth(n)
		if bw <= prev {
			t.Errorf("Aries effective bandwidth not increasing at %d: %v <= %v", n, bw, prev)
		}
		prev = bw
	}
	if prev > Aries.BWMax {
		t.Errorf("effective bandwidth %v exceeds asymptote %v", prev, Aries.BWMax)
	}
	if got := Aries.Time(0); got != Aries.Alpha {
		t.Errorf("zero-byte saturating time %v", got)
	}
}

func TestDeviceComputeTime(t *testing.T) {
	d := Device{Name: "d", PeakFLOPS: 1e12, Eff: 0.5, MemBW: 100e9}
	// FLOP-bound: 5e9 flops at 0.5e12 effective = 10ms.
	if got := d.ComputeTime(5e9, 0); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("flop-bound time %v", got)
	}
	// Memory-bound: 10 GB at 100 GB/s = 100ms > flop time.
	if got := d.ComputeTime(5e9, 10e9); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("memory-bound time %v", got)
	}
}

func TestBatchEfficiencyMonotonic(t *testing.T) {
	prev := 0.0
	for _, b := range []int{1, 16, 64, 256, 1024, 4096} {
		e := BatchEfficiency(b)
		if e <= prev || e > 1 {
			t.Errorf("BatchEfficiency(%d) = %v not in (prev, 1]", b, e)
		}
		prev = e
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BatchEfficiency(0) did not panic")
			}
		}()
		BatchEfficiency(0)
	}()
}

func TestKNLEffectiveBWModes(t *testing.T) {
	k := NewKNL7250(0.1)
	small := int64(1 << 30)  // 1 GB fits MCDRAM
	huge := int64(100 << 30) // 100 GB spills to DDR

	k.MCMode = MCDRAMFlat
	if bw := k.EffectiveBW(small); bw != k.MCDRAMBW {
		t.Errorf("flat fit bw %v, want %v", bw, k.MCDRAMBW)
	}
	k.MCMode = MCDRAMCache
	if bw := k.EffectiveBW(small); bw >= k.MCDRAMBW || bw < k.DDRBW {
		t.Errorf("cache fit bw %v out of (DDR, MCDRAM)", bw)
	}
	spill := k.EffectiveBW(huge)
	if spill >= k.EffectiveBW(small) {
		t.Error("spilled working set should see lower bandwidth")
	}
	if spill < k.DDRBW*0.9 {
		t.Errorf("spill bw %v below DDR %v", spill, k.DDRBW)
	}
	// Hybrid halves the MCDRAM capacity: an 10 GB set fits in 16 but not 8.
	k.MCMode = MCDRAMHybrid
	ten := int64(10 << 30)
	if k.EffectiveBW(ten) >= k.MCDRAMBW {
		t.Error("hybrid mode should spill a 10GB set")
	}
}

func TestKNLEffectiveBWMonotonicInFootprint(t *testing.T) {
	k := NewKNL7250(0.1)
	prev := math.Inf(1)
	for _, fp := range []int64{1 << 30, 8 << 30, 16 << 30, 32 << 30, 128 << 30} {
		bw := k.EffectiveBW(fp)
		if bw > prev {
			t.Errorf("bandwidth increased with footprint at %d", fp)
		}
		prev = bw
	}
}

func TestKNLComputeTimeScalesWithCores(t *testing.T) {
	k := NewKNL7250(0.1)
	full := k.ComputeTime(1e12, 0, 0, 68)
	quarter := k.ComputeTime(1e12, 0, 0, 17)
	if math.Abs(quarter/full-4) > 1e-9 {
		t.Errorf("17-core time %v not 4× the 68-core %v", quarter, full)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("coresUsed=0 did not panic")
			}
		}()
		k.ComputeTime(1, 0, 0, 0)
	}()
}

func TestKNLClusterModeBandwidthOrdering(t *testing.T) {
	// A2A's chip-wide tag lookups cost sustained bandwidth; SNC-4 with
	// NUMA-pinned software beats quadrant.
	mk := func(m ClusterMode) float64 {
		k := NewKNL7250(0.1)
		k.CLMode = m
		return k.EffectiveBW(1 << 30)
	}
	a2a, quad, snc := mk(ClusterAll2All), mk(ClusterQuadrant), mk(ClusterSNC4)
	if !(a2a < quad && quad < snc) {
		t.Errorf("bandwidth ordering wrong: a2a=%v quad=%v snc=%v", a2a, quad, snc)
	}
}

func TestKNLClusterModeLatency(t *testing.T) {
	k := NewKNL7250(0.1)
	k.CLMode = ClusterAll2All
	a2a := k.OnChipLink().Alpha
	k.CLMode = ClusterQuadrant
	quad := k.OnChipLink().Alpha
	k.CLMode = ClusterSNC4
	snc := k.OnChipLink().Alpha
	if !(snc < quad && quad < a2a) {
		t.Errorf("mesh latency ordering wrong: snc=%v quad=%v a2a=%v", snc, quad, a2a)
	}
}

func TestModeStrings(t *testing.T) {
	if MCDRAMCache.String() != "cache" || MCDRAMFlat.String() != "flat" || MCDRAMHybrid.String() != "hybrid" {
		t.Error("MCDRAM mode strings wrong")
	}
	if ClusterAll2All.String() != "all-to-all" || ClusterSNC4.String() != "snc-4" {
		t.Error("cluster mode strings wrong")
	}
	if MCDRAMMode(9).String() == "" || ClusterMode(9).String() == "" {
		t.Error("unknown modes should still print")
	}
}

// Paper §6.2 accounting: "MCDRAM can hold at most 16 copies of weight and
// data" for AlexNet (249 MB) + one CIFAR copy (687 MB):
// 16 × 936 MB ≈ 15 GB ≤ 16 GB, but 32 copies do not fit. This bounds
// Figure 12 at 16 partitions.
func TestMCDRAMFitRuleFigure12(t *testing.T) {
	k := NewKNL7250(0.1)
	copyBytes := int64(249+687) << 20
	fits := func(parts int64) bool { return parts*copyBytes <= k.MCDRAM }
	if !fits(16) {
		t.Error("16 copies should fit in MCDRAM (paper: works for P ≤ 16)")
	}
	if fits(32) {
		t.Error("32 copies should not fit")
	}
}
