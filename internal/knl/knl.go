// Package knl implements the paper's §6.2 Knights Landing optimization: a
// single KNL chip is partitioned into P NUMA-style groups (as under
// Quad/SNC-4 clustering); every group holds its own copy of the weights and
// a shard of the replicated data; each round all groups compute gradients
// in parallel, the gradients are tree-summed on the on-chip mesh, and every
// group updates its replica with the shared sum — a divide-and-conquer that
// both avoids chip-wide BLAS synchronization and multiplies the samples
// consumed per round. The paper reports 1605 s → 490 s (3.3×) to accuracy
// 0.625 going from 1 to 16 partitions, with 16 being the MCDRAM-fit limit
// for AlexNet (249 MB) replicas plus a CIFAR copy (687 MB).
//
// The time model captures the three effects the paper describes:
//
//  1. Chip-wide synchronization: a BLAS pass across c cores pays a per-layer
//     sync/straggler cost that grows with c (and with crossing quadrant
//     boundaries), which is what makes whole-chip training of small models
//     inefficient.
//  2. On-chip tree reduction of the gradient sum over P groups.
//  3. MCDRAM fit: P weight replicas plus the data copy must fit in the
//     16 GB MCDRAM to stream at ~475 GB/s; spilling blends toward DDR.
//
// Convergence comes from real training: gradients of P groups are averaged
// each round (identical replicas stay identical), so a P-partition round is
// mathematically a P·b-batch step, reproducing the paper's
// fewer-rounds-to-target behaviour.
package knl

import (
	"fmt"
	"math"

	"scaledl/internal/comm"
	"scaledl/internal/data"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
	"scaledl/internal/sim"
)

// Config describes one partitioned-chip training run.
type Config struct {
	// Chip is the KNL hardware model.
	Chip hw.KNLChip
	// Parts is P, the number of chip partitions (1 = whole chip).
	Parts int
	// Def is the executed network (may be a scaled-down stand-in; the
	// modeled footprints below can describe the paper's full workload).
	Def nn.NetDef
	// Train/Test are the datasets; each group samples Train independently.
	Train *data.Dataset
	Test  *data.Dataset
	// Batch is b, the per-group minibatch size.
	Batch int
	// LR is η for the averaged-gradient step.
	LR float32
	// Rounds is the maximum number of rounds to run.
	Rounds int
	// TargetAcc stops the run once the test accuracy reaches it (0 = never).
	TargetAcc float64
	// Seed drives all randomness.
	Seed int64
	// EvalEvery probes accuracy every k rounds (default 10).
	EvalEvery int

	// WeightBytes models the per-replica weight footprint (default: the
	// executed network's size). Set to the paper's 249 MB AlexNet to
	// reproduce Figure 12's MCDRAM accounting with a scaled-down executed
	// network.
	WeightBytes int64
	// DataCopyBytes models the on-chip data copy (paper: 687 MB CIFAR).
	DataCopyBytes int64
	// FLOPsPerSample models training cost per sample (default: executed
	// network's 3× forward FLOPs).
	FLOPsPerSample int64
	// SyncPerCoreLayer is the per-core, per-layer-pass synchronization cost
	// of a chip-spanning BLAS pass (default 1.2 µs); the cost that makes
	// 68-core small-batch training sync-bound.
	SyncPerCoreLayer float64
	// LayerPasses is the number of barrier-synchronized passes per round
	// (default 3 per layer: forward, backward-data, backward-weights).
	LayerPasses int
	// CoreScalingHalf is the strong-scaling saturation constant: a
	// small-batch BLAS pass on c cores achieves s(c) = c·H/(c+H)
	// core-equivalents, so the whole 68-core chip delivers only ~10
	// core-equivalents on one small batch while a 4-core group delivers
	// nearly 3 — the inefficiency §6.2's partitioning removes. Default 12,
	// calibrated so a 16-way partition yields the paper's ≈3.3× (Figure 12).
	CoreScalingHalf float64
}

// RoundCost is the modeled cost of one training round.
type RoundCost struct {
	Arithmetic float64 // FLOP time on the group's core share
	Sync       float64 // per-layer chip synchronization
	Reduce     float64 // on-chip gradient tree-sum across groups
	Memory     float64 // bandwidth floor for streaming the working set
	FitsMCDRAM bool
	BW         float64 // effective bandwidth serving the working set
}

// Total is the round's wall time: compute phases are rooflined against the
// memory floor, then the reduction is added.
func (r RoundCost) Total() float64 {
	t := r.Arithmetic + r.Sync
	if r.Memory > t {
		t = r.Memory
	}
	return t + r.Reduce
}

// Result is the outcome of a partitioned run.
type Result struct {
	Parts        int
	Rounds       int // rounds actually executed
	Cost         RoundCost
	SimTime      float64 // rounds × per-round cost
	TimeToTarget float64 // simulated seconds to TargetAcc (0 if not reached)
	ReachedAcc   float64
	Curve        []Point
	Samples      int64
}

// Point is one accuracy probe.
type Point struct {
	Round   int
	SimTime float64
	Loss    float64
	TestAcc float64
}

func (c *Config) defaults() error {
	if c.Parts < 1 {
		return fmt.Errorf("knl: parts must be >= 1, got %d", c.Parts)
	}
	if c.Chip.Cores < c.Parts {
		return fmt.Errorf("knl: %d parts exceed %d cores", c.Parts, c.Chip.Cores)
	}
	if c.Train == nil || c.Train.Len() == 0 {
		return fmt.Errorf("knl: empty training set")
	}
	if c.Batch < 1 || c.Rounds < 1 {
		return fmt.Errorf("knl: batch and rounds must be >= 1")
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 10
	}
	if c.SyncPerCoreLayer == 0 {
		c.SyncPerCoreLayer = 1.2e-6
	}
	if c.CoreScalingHalf == 0 {
		c.CoreScalingHalf = 12
	}
	probe := c.Def.Build(0)
	if c.WeightBytes == 0 {
		c.WeightBytes = probe.ParamBytes()
	}
	if c.DataCopyBytes == 0 {
		c.DataCopyBytes = c.Train.Spec.TrainBytes()
	}
	if c.FLOPsPerSample == 0 {
		c.FLOPsPerSample = probe.TrainFLOPsPerSample()
	}
	if c.LayerPasses == 0 {
		c.LayerPasses = 3 * len(c.Def.Specs)
	}
	return nil
}

// simulatedMeshReduce executes the partition gradient sum as a size-only
// tree reduce on the collective engine: P group processes over a bus
// topology (every transfer holds the shared memory-system segment), each
// hop moving one replica's gradient volume at 2/bw seconds per byte
// (read + write) behind the mesh's per-hop latency.
func simulatedMeshReduce(parts int, weightBytes int64, meshAlpha, bw float64) float64 {
	weightBytes = (weightBytes + 3) / 4 * 4 // whole float32s
	env := sim.NewEnv()
	defer env.Close()
	link := hw.Link{Name: "knl-mesh", Alpha: meshAlpha, Beta: 2 / bw}
	topo := comm.NewBus(env, parts, link, 1)
	parties := comm.Ranks(parts)
	cm := comm.NewCommunicator(topo, comm.CommConfig{
		Parties: parties,
		Plan:    comm.Plan{LayerBytes: []int64{weightBytes}, Packed: true},
	})
	for id := 0; id < parts; id++ {
		id := id
		ep := cm.Endpoint(id)
		env.Spawn(fmt.Sprintf("group%d", id), func(p *sim.Proc) {
			ep.ReduceSize(p, 0, 0)
		})
	}
	return env.Run()
}

// PerRoundCost evaluates the time model for one round under cfg.
func PerRoundCost(cfg Config) (RoundCost, error) {
	if err := cfg.defaults(); err != nil {
		return RoundCost{}, err
	}
	chip := cfg.Chip
	coresPerGroup := chip.Cores / cfg.Parts
	if coresPerGroup < 1 {
		coresPerGroup = 1
	}
	var rc RoundCost

	// (1) Arithmetic: each group trains b samples on its core share. Core
	// scaling saturates per CoreScalingHalf: one small batch cannot feed 68
	// cores, so the whole-chip configuration wastes most of them, while a
	// small group runs near-linearly — the partitioning win.
	flops := cfg.FLOPsPerSample * int64(cfg.Batch)
	effCores := float64(coresPerGroup) * cfg.CoreScalingHalf / (float64(coresPerGroup) + cfg.CoreScalingHalf)
	perCore := chip.PeakFLOPS * chip.Eff / float64(chip.Cores)
	rc.Arithmetic = float64(flops) / (perCore * effCores)

	// (2) Synchronization: each layer pass barriers the group's cores; a
	// group spanning multiple quadrants (more than a quarter of the chip)
	// pays the cross-quadrant mesh factor.
	syncPerPass := cfg.SyncPerCoreLayer * float64(coresPerGroup)
	if coresPerGroup > chip.Cores/4 {
		syncPerPass *= 1.0 + 0.8*float64(coresPerGroup*4-chip.Cores)/float64(3*chip.Cores)
	}
	rc.Sync = syncPerPass * float64(cfg.LayerPasses)

	// (3) Gradient sum across groups, run as a simulated tree reduce over
	// the on-chip mesh (internal/comm's collective engine). On a
	// shared-memory chip the conquer step's transfers all stream through
	// one memory system, so every path shares a capacity-1 bus segment:
	// the tree's "parallel" waves serialize into P−1 combining
	// transactions, each reading and writing one replica's gradients
	// (2·W bytes at the footprint's effective bandwidth) plus the cluster
	// mode's mesh latency — contention emerging from the simulation
	// rather than a closed-form bandwidth formula.
	if cfg.Parts > 1 {
		mesh := chip.OnChipLink()
		footprintR := int64(cfg.Parts) * (cfg.WeightBytes + cfg.DataCopyBytes)
		rc.Reduce = simulatedMeshReduce(cfg.Parts, cfg.WeightBytes, mesh.Alpha, chip.EffectiveBW(footprintR))
	}

	// (4) Memory floor: the round streams each replica's weights (3 passes)
	// plus its batch; the resident working set is P copies of weight AND
	// data ("MCDRAM can hold at most 16 copies of weight and data",
	// 16×(249 MB + 687 MB) ≈ 15 GB — the paper's Figure 12 bound).
	footprint := int64(cfg.Parts) * (cfg.WeightBytes + cfg.DataCopyBytes)
	rc.FitsMCDRAM = footprint <= chip.MCDRAM
	rc.BW = chip.EffectiveBW(footprint)
	bytesPerGroup := 3*cfg.WeightBytes + int64(cfg.Batch)*cfg.Train.Spec.SampleBytes()
	// Groups stream concurrently and share chip bandwidth.
	rc.Memory = float64(bytesPerGroup) * float64(cfg.Parts) / rc.BW
	return rc, nil
}

// Run executes the partitioned training: real gradient math (P group
// batches averaged per round — replicas remain identical, so one replica is
// materialized) under the modeled per-round time.
func Run(cfg Config) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	cost, err := PerRoundCost(cfg)
	if err != nil {
		return Result{}, err
	}
	perRound := cost.Total()

	net := cfg.Def.Build(cfg.Seed)
	// One shared sample stream feeds every group in turn: P groups drawing
	// b samples each consume exactly the indices one group drawing P·b
	// would, so a partitioned round is the same SGD step as the whole-chip
	// round (Figure 12 compares pure throughput, not different algorithms).
	sampler := data.NewSampler(cfg.Train, cfg.Seed+1)
	sum := make([]float32, len(net.Grads))
	batches := make([]*data.Batch, cfg.Parts)

	res := Result{Parts: cfg.Parts, Cost: cost}
	var lastLoss float64
	for round := 1; round <= cfg.Rounds; round++ {
		for i := range sum {
			sum[i] = 0
		}
		lastLoss = 0
		for g := 0; g < cfg.Parts; g++ {
			batches[g] = sampler.Next(cfg.Batch, batches[g])
			net.ZeroGrad()
			loss, _ := net.LossAndGrad(batches[g].X, batches[g].Labels, cfg.Batch)
			lastLoss += loss
			comm.ReduceSum(sum, net.Grads)
		}
		lastLoss /= float64(cfg.Parts)
		scale := -cfg.LR / float32(cfg.Parts)
		for i, g := range sum {
			net.Params[i] += scale * g
		}
		res.Rounds = round
		res.Samples += int64(cfg.Parts * cfg.Batch)
		now := float64(round) * perRound

		if round%cfg.EvalEvery == 0 || round == cfg.Rounds {
			acc := evalAcc(net, cfg)
			res.Curve = append(res.Curve, Point{Round: round, SimTime: now, Loss: lastLoss, TestAcc: acc})
			res.ReachedAcc = acc
			if cfg.TargetAcc > 0 && acc >= cfg.TargetAcc && res.TimeToTarget == 0 {
				res.TimeToTarget = now
				break
			}
		}
	}
	res.SimTime = float64(res.Rounds) * perRound
	return res, nil
}

func evalAcc(net *nn.Net, cfg Config) float64 {
	if cfg.Test == nil || cfg.Test.Len() == 0 {
		return 0
	}
	return net.Evaluate(cfg.Test.Images, cfg.Test.Labels, 256)
}

// MaxPartsFittingMCDRAM returns the largest power-of-two partition count
// whose weight and data copies fit in MCDRAM — the paper's "MCDRAM can
// hold at most 16 copies of weight and data" bound for AlexNet+CIFAR
// (16 × (249 MB + 687 MB) ≈ 15 GB ≤ 16 GB).
func MaxPartsFittingMCDRAM(chip hw.KNLChip, weightBytes, dataCopyBytes int64) int {
	p := 1
	for {
		next := p * 2
		if next > chip.Cores {
			return p
		}
		if int64(next)*(weightBytes+dataCopyBytes) > chip.MCDRAM {
			return p
		}
		p = next
	}
}

// Sweep runs Run for each partition count, returning results in order; it
// is the engine behind Figure 12.
func Sweep(base Config, parts []int) ([]Result, error) {
	var out []Result
	for _, p := range parts {
		cfg := base
		cfg.Parts = p
		r, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("knl: parts=%d: %w", p, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// SpeedupToTarget returns t(base)/t(other) using TimeToTarget when both
// runs reached the target, else NaN.
func SpeedupToTarget(base, other Result) float64 {
	if base.TimeToTarget == 0 || other.TimeToTarget == 0 {
		return math.NaN()
	}
	return base.TimeToTarget / other.TimeToTarget
}
