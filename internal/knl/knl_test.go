package knl

import (
	"math"
	"testing"

	"scaledl/internal/data"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
)

func testCfg(t *testing.T, parts, rounds int) Config {
	t.Helper()
	spec := data.Spec{Name: "cifarish", Channels: 1, Height: 12, Width: 12, Classes: 4}
	train, test := data.Synthetic(data.Config{Spec: spec, TrainN: 512, TestN: 256, Seed: 31})
	train.Normalize()
	test.Normalize()
	return Config{
		Chip:   hw.NewKNL7250(0.1),
		Parts:  parts,
		Def:    nn.TinyCNN(nn.Shape{C: 1, H: 12, W: 12}, 4),
		Train:  train,
		Test:   test,
		Batch:  8,
		LR:     0.05,
		Rounds: rounds,
		Seed:   5,
	}
}

// paperCfg overlays the Figure 12 workload footprints (AlexNet 249 MB,
// CIFAR copy 687 MB, AlexNet-scale FLOPs) on the executed toy network.
func paperCfg(t *testing.T, parts, rounds int) Config {
	cfg := testCfg(t, parts, rounds)
	cfg.WeightBytes = 249 << 20
	cfg.DataCopyBytes = 687 << 20
	cfg.FLOPsPerSample = 360e6 // ≈3× AlexNet-on-CIFAR forward FLOPs
	return cfg
}

func TestPerRoundCostComponents(t *testing.T) {
	c, err := PerRoundCost(paperCfg(t, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if c.Arithmetic <= 0 || c.Sync <= 0 || c.Reduce <= 0 || c.Memory <= 0 {
		t.Errorf("nonpositive component: %+v", c)
	}
	if c.Total() < c.Arithmetic+c.Sync {
		t.Error("total below compute phases")
	}
	if !c.FitsMCDRAM {
		t.Error("4×(249MB+687MB) should fit 16GB MCDRAM")
	}
}

func TestCoreScalingSaturation(t *testing.T) {
	// The whole-chip (P=1) arithmetic must run far below 68-core linear
	// scaling, while a 16-way partition's groups run near-linearly — the
	// §6.2 mechanism. Per-round arithmetic therefore grows much slower than
	// the P× it would under perfect scaling.
	c1, _ := PerRoundCost(paperCfg(t, 1, 10))
	c16, _ := PerRoundCost(paperCfg(t, 16, 10))
	ratio := c16.Arithmetic / c1.Arithmetic
	if ratio >= 8 {
		t.Errorf("P=16 arithmetic %.1f× P=1; saturation should keep it well under the 16× of linear scaling", ratio)
	}
	if ratio <= 1 {
		t.Errorf("P=16 per-round arithmetic should still exceed P=1 (ratio %.2f)", ratio)
	}
}

func TestSyncCostDropsWithPartitioning(t *testing.T) {
	// The whole-chip run pays the chip-spanning per-layer sync; partitioned
	// groups pay proportionally less — the §6.2 mechanism.
	c1, _ := PerRoundCost(testCfg(t, 1, 10))
	c16, _ := PerRoundCost(testCfg(t, 16, 10))
	if c16.Sync >= c1.Sync {
		t.Errorf("sync cost did not drop: P=1 %v, P=16 %v", c1.Sync, c16.Sync)
	}
	// Arithmetic per round rises with P (fewer cores per group).
	if c16.Arithmetic <= c1.Arithmetic {
		t.Errorf("per-group arithmetic should rise with P: %v vs %v", c1.Arithmetic, c16.Arithmetic)
	}
}

func TestMCDRAMSpillRaisesMemoryCost(t *testing.T) {
	fit := paperCfg(t, 16, 10)
	cFit, _ := PerRoundCost(fit)
	spill := paperCfg(t, 32, 10)
	cSpill, _ := PerRoundCost(spill)
	if !cFit.FitsMCDRAM {
		t.Fatal("P=16 should fit (paper: works for P ≤ 16)")
	}
	if cSpill.FitsMCDRAM {
		t.Fatal("P=32 should spill (32×(249MB+687MB) ≫ 16GB)")
	}
	if cSpill.BW >= cFit.BW {
		t.Errorf("spilled bandwidth %v not below fitting %v", cSpill.BW, cFit.BW)
	}
}

func TestMaxPartsFittingMCDRAM(t *testing.T) {
	chip := hw.NewKNL7250(0.1)
	// Paper: AlexNet 249 MB + CIFAR 687 MB → 16 copies fit, 32 do not
	// (paper says "MCDRAM can hold at most 16 copies", its Figure 12 limit).
	got := MaxPartsFittingMCDRAM(chip, 249<<20, 687<<20)
	if got != 16 {
		t.Errorf("max fitting parts = %d, paper says 16", got)
	}
	// A tiny model is capped by the core count.
	if got := MaxPartsFittingMCDRAM(chip, 1<<20, 1<<20); got != 64 {
		t.Errorf("tiny model should cap at 64 (power of two ≤ 68 cores), got %d", got)
	}
}

func TestRunLearnsAndIsDeterministic(t *testing.T) {
	r1, err := Run(testCfg(t, 4, 60))
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReachedAcc < 0.8 {
		t.Errorf("accuracy %.3f after 60 rounds on separable data", r1.ReachedAcc)
	}
	if r1.SimTime <= 0 || r1.Samples != int64(4*8*60) {
		t.Errorf("bookkeeping wrong: %+v", r1)
	}
	r2, err := Run(testCfg(t, 4, 60))
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReachedAcc != r2.ReachedAcc || r1.SimTime != r2.SimTime {
		t.Error("same-seed runs differ")
	}
}

func TestTargetAccStopsEarly(t *testing.T) {
	cfg := testCfg(t, 8, 400)
	cfg.TargetAcc = 0.7
	cfg.EvalEvery = 5
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeToTarget == 0 {
		t.Fatal("target accuracy never reached")
	}
	if r.Rounds >= 400 {
		t.Error("run did not stop early")
	}
	if math.Abs(r.TimeToTarget-float64(r.Rounds)*r.Cost.Total()) > 1e-9 {
		t.Error("TimeToTarget inconsistent with rounds × per-round cost")
	}
}

func TestPartitioningSpeedsUpTimeToTarget(t *testing.T) {
	// Figure 12's shape: with a fixed total batch split across groups (so
	// SGD semantics are identical), more partitions reach the target
	// accuracy sooner because small groups escape the chip-wide strong-
	// scaling saturation (until the MCDRAM limit).
	target := 0.70
	totalBatch := 32
	var prevTime float64
	for _, p := range []int{1, 4, 16} {
		cfg := testCfg(t, p, 600)
		cfg.Batch = totalBatch / p
		cfg.TargetAcc = target
		cfg.EvalEvery = 5
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.TimeToTarget == 0 {
			t.Fatalf("P=%d never reached %.2f (acc %.3f)", p, target, r.ReachedAcc)
		}
		if prevTime > 0 && r.TimeToTarget >= prevTime {
			t.Errorf("P=%d time-to-target %v not faster than previous %v", p, r.TimeToTarget, prevTime)
		}
		prevTime = r.TimeToTarget
	}
}

func TestSweep(t *testing.T) {
	rs, err := Sweep(testCfg(t, 1, 20), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Parts != 1 || rs[2].Parts != 4 {
		t.Errorf("sweep results wrong: %+v", rs)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Parts = 0 },
		func(c *Config) { c.Parts = 1000 },
		func(c *Config) { c.Train = nil },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.Rounds = 0 },
	}
	for i, mutate := range bad {
		cfg := testCfg(t, 1, 10)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSpeedupToTarget(t *testing.T) {
	a := Result{TimeToTarget: 10}
	b := Result{TimeToTarget: 2}
	if s := SpeedupToTarget(a, b); s != 5 {
		t.Errorf("speedup %v", s)
	}
	if !math.IsNaN(SpeedupToTarget(a, Result{})) {
		t.Error("unreached target should give NaN")
	}
}

func TestClusterModeAffectsReduce(t *testing.T) {
	cfgA := testCfg(t, 8, 10)
	cfgA.Chip.CLMode = hw.ClusterAll2All
	cfgS := testCfg(t, 8, 10)
	cfgS.Chip.CLMode = hw.ClusterSNC4
	a, _ := PerRoundCost(cfgA)
	s, _ := PerRoundCost(cfgS)
	if s.Reduce >= a.Reduce {
		t.Errorf("SNC-4 reduce %v not cheaper than all-to-all %v", s.Reduce, a.Reduce)
	}
}
