package data

import (
	"math"
	"testing"
	"testing/quick"
)

func smallCfg(seed int64) Config {
	return Config{
		Spec:   Spec{Name: "toy", Channels: 1, Height: 8, Width: 8, Classes: 4, Train: 256, Test: 64},
		Seed:   seed,
		TrainN: 256,
		TestN:  64,
	}
}

func TestSpecGeometry(t *testing.T) {
	if MNISTSpec.SampleDim() != 28*28 {
		t.Errorf("MNIST dim = %d", MNISTSpec.SampleDim())
	}
	if CIFARSpec.SampleDim() != 3*32*32 {
		t.Errorf("CIFAR dim = %d", CIFARSpec.SampleDim())
	}
	if ImageNetSpec.Classes != 1000 {
		t.Errorf("ImageNet classes = %d", ImageNetSpec.Classes)
	}
	if got := CIFARSpec.SampleBytes(); got != 3*32*32*4 {
		t.Errorf("CIFAR sample bytes = %d", got)
	}
	// Paper §6.2: "one Cifar data copy is 687 MB" (50k samples + test overhead).
	// Our float32 training copy: 50000*3*32*32*4 = 585.9 MiB — same order.
	gb := float64(CIFARSpec.TrainBytes()) / (1 << 20)
	if gb < 400 || gb > 800 {
		t.Errorf("CIFAR train copy = %.0f MiB, expected few hundred MiB", gb)
	}
}

func TestSyntheticShapesAndLabels(t *testing.T) {
	train, test := Synthetic(smallCfg(1))
	if train.Len() != 256 || test.Len() != 64 {
		t.Fatalf("sizes: train %d test %d", train.Len(), test.Len())
	}
	if len(train.Images) != 256*64 {
		t.Fatalf("train image buffer %d", len(train.Images))
	}
	for _, l := range train.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label out of range: %d", l)
		}
	}
	// All classes should appear in 256 draws of 4 classes.
	seen := map[int]bool{}
	for _, l := range train.Labels {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Errorf("only %d classes present", len(seen))
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, _ := Synthetic(smallCfg(42))
	b, _ := Synthetic(smallCfg(42))
	for i := range a.Images {
		if a.Images[i] != b.Images[i] {
			t.Fatal("same-seed datasets differ")
		}
	}
	c, _ := Synthetic(smallCfg(43))
	same := true
	for i := range a.Images {
		if a.Images[i] != c.Images[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different-seed datasets identical")
	}
}

func TestSyntheticIsLearnableByNearestPrototype(t *testing.T) {
	// A nearest-class-mean classifier fit on train should beat random guess
	// by a wide margin on test; this guards the "learnable" property that
	// the accuracy experiments depend on.
	train, test := Synthetic(smallCfg(7))
	dim := train.Spec.SampleDim()
	means := make([][]float64, train.Spec.Classes)
	counts := make([]int, train.Spec.Classes)
	for k := range means {
		means[k] = make([]float64, dim)
	}
	for i := 0; i < train.Len(); i++ {
		k := train.Labels[i]
		counts[k]++
		for j, v := range train.Sample(i) {
			means[k][j] += float64(v)
		}
	}
	for k := range means {
		for j := range means[k] {
			means[k][j] /= float64(counts[k])
		}
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		img := test.Sample(i)
		best, bestD := -1, math.Inf(1)
		for k := range means {
			var d float64
			for j, v := range img {
				dv := float64(v) - means[k][j]
				d += dv * dv
			}
			if d < bestD {
				best, bestD = k, d
			}
		}
		if best == test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.7 {
		t.Errorf("nearest-mean accuracy %.2f; dataset not learnable enough", acc)
	}
}

func TestNormalize(t *testing.T) {
	train, _ := Synthetic(smallCfg(3))
	train.Normalize()
	dim := train.Spec.SampleDim()
	n := train.Len()
	// Check a few pixel positions for mean≈0, std≈1.
	for _, j := range []int{0, dim / 2, dim - 1} {
		var mean float64
		for i := 0; i < n; i++ {
			mean += float64(train.Images[i*dim+j])
		}
		mean /= float64(n)
		var vari float64
		for i := 0; i < n; i++ {
			d := float64(train.Images[i*dim+j]) - mean
			vari += d * d
		}
		std := math.Sqrt(vari / float64(n))
		if math.Abs(mean) > 1e-4 {
			t.Errorf("pixel %d mean %v after Normalize", j, mean)
		}
		if math.Abs(std-1) > 1e-3 {
			t.Errorf("pixel %d std %v after Normalize", j, std)
		}
	}
}

func TestStatsAndNormalizeWith(t *testing.T) {
	train, test := Synthetic(smallCfg(4))
	mean, std := train.Stats()
	test.NormalizeWith(mean, std)
	// Test set normalized with train stats should be near-standardized.
	dim := test.Spec.SampleDim()
	var m float64
	for i := 0; i < test.Len(); i++ {
		m += float64(test.Images[i*dim])
	}
	m /= float64(test.Len())
	if math.Abs(m) > 0.5 {
		t.Errorf("test pixel mean %v after NormalizeWith train stats", m)
	}
}

func TestSamplerReproducibleAndInRange(t *testing.T) {
	train, _ := Synthetic(smallCfg(5))
	s1 := NewSampler(train, 10)
	s2 := NewSampler(train, 10)
	b1 := s1.Next(16, nil)
	b2 := s2.Next(16, nil)
	for i := range b1.Labels {
		if b1.Labels[i] != b2.Labels[i] {
			t.Fatal("same-seed samplers diverged")
		}
	}
	if b1.B != 16 || b1.Dim != train.Spec.SampleDim() {
		t.Fatalf("batch geometry %d/%d", b1.B, b1.Dim)
	}
}

func TestSamplerReuseBuffer(t *testing.T) {
	train, _ := Synthetic(smallCfg(6))
	s := NewSampler(train, 1)
	b := s.Next(8, nil)
	ptr := &b.X[0]
	b2 := s.Next(8, b)
	if &b2.X[0] != ptr {
		t.Error("reused batch reallocated")
	}
	b3 := s.Next(4, b)
	if b3.B != 4 {
		t.Error("size-changed batch not rebuilt")
	}
}

func TestSamplerPanicsOnZeroBatch(t *testing.T) {
	train, _ := Synthetic(smallCfg(6))
	s := NewSampler(train, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Next(0) did not panic")
		}
	}()
	s.Next(0, nil)
}

func TestShardPartition(t *testing.T) {
	train, _ := Synthetic(smallCfg(8))
	p := 4
	total := 0
	for i := 0; i < p; i++ {
		sh := train.Shard(i, p)
		total += sh.Len()
		if sh.Len() == 0 {
			t.Errorf("shard %d empty", i)
		}
	}
	if total != train.Len() {
		t.Errorf("shards cover %d of %d samples", total, train.Len())
	}
	// Shards share storage.
	sh := train.Shard(0, p)
	sh.Images[0] = 1234
	if train.Images[0] != 1234 {
		t.Error("shard does not alias parent storage")
	}
}

func TestShardPanicsOnBadArgs(t *testing.T) {
	train, _ := Synthetic(smallCfg(8))
	for _, c := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(%d,%d) did not panic", c[0], c[1])
				}
			}()
			train.Shard(c[0], c[1])
		}()
	}
}

// Property: shard boundaries are contiguous and exhaustive for any (n, p).
func TestShardCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := seed
		if g < 0 {
			g = -g
		}
		p := int(g%7) + 1
		cfg := smallCfg(seed)
		cfg.TrainN = int(g%50) + p // at least one per shard not guaranteed, just coverage
		train, _ := Synthetic(cfg)
		total := 0
		for i := 0; i < p; i++ {
			total += train.Shard(i, p).Len()
		}
		return total == train.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
