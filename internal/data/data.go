// Package data provides the datasets used by the paper's evaluation. The
// paper trains on MNIST, CIFAR-10 and ImageNet (ILSVRC-2012); this offline
// reproduction substitutes seeded synthetic prototype datasets with matching
// shapes and class counts. Each class k has a smoothed random prototype
// image; a sample is the prototype plus Gaussian pixel noise, so the
// classification task is learnable and accuracy-versus-iteration curves have
// the same qualitative behaviour as on the real benchmarks. ImageNet-scale
// workloads are represented only by their Spec (the paper likewise reports
// time, not accuracy, at that scale).
package data

import (
	"fmt"
	"math"

	"scaledl/internal/tensor"
)

// Spec describes a dataset's geometry: it is everything the cost models and
// network builders need even when no pixels are materialized.
type Spec struct {
	Name     string
	Channels int
	Height   int
	Width    int
	Classes  int
	Train    int // number of training images
	Test     int // number of test images
}

// SampleBytes returns the size in bytes of one float32 sample.
func (s Spec) SampleBytes() int64 {
	return int64(s.Channels) * int64(s.Height) * int64(s.Width) * 4
}

// TrainBytes returns the total float32 byte size of the training set; this
// drives the MCDRAM-fit rule of the paper's §6.2 (one CIFAR copy = 687 MB in
// the paper's accounting).
func (s Spec) TrainBytes() int64 { return s.SampleBytes() * int64(s.Train) }

// SampleDim returns elements per sample.
func (s Spec) SampleDim() int { return s.Channels * s.Height * s.Width }

// Standard benchmark geometries from Table 1 of the paper.
var (
	// MNISTSpec matches Table 1: 60k train / 10k test, 28×28, 10 classes.
	MNISTSpec = Spec{Name: "mnist", Channels: 1, Height: 28, Width: 28, Classes: 10, Train: 60000, Test: 10000}
	// CIFARSpec matches Table 1: 50k train / 10k test, 3×32×32, 10 classes.
	CIFARSpec = Spec{Name: "cifar", Channels: 3, Height: 32, Width: 32, Classes: 10, Train: 50000, Test: 10000}
	// ImageNetSpec matches Table 1: 1.2M train, 3×256×256, 1000 classes.
	ImageNetSpec = Spec{Name: "imagenet", Channels: 3, Height: 256, Width: 256, Classes: 1000, Train: 1200000, Test: 150000}
)

// Dataset is an in-memory labeled image set. Images are stored as one
// contiguous float32 block (n × C·H·W row-major), which mirrors the packed
// memory layout the paper advocates and keeps batch copies cache-friendly.
type Dataset struct {
	Spec   Spec
	Images []float32 // len = n * SampleDim
	Labels []int     // len = n
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Sample returns a view of image i (no copy).
func (d *Dataset) Sample(i int) []float32 {
	dim := d.Spec.SampleDim()
	return d.Images[i*dim : (i+1)*dim]
}

// Config controls synthetic dataset generation.
type Config struct {
	Spec       Spec
	TrainN     int     // overrides Spec.Train when > 0 (scaled-down runs)
	TestN      int     // overrides Spec.Test when > 0
	Noise      float64 // pixel noise stddev relative to prototype contrast
	Smoothing  int     // box-blur passes applied to prototypes
	Seed       int64
	Difficulty float64 // 0..1, fraction of prototype replaced with a second class (label noise in feature space)
}

// Synthetic generates a learnable prototype dataset. Train and test sets are
// drawn from the same distribution with disjoint RNG streams.
func Synthetic(cfg Config) (train, test *Dataset) {
	if cfg.Noise == 0 {
		cfg.Noise = 0.35
	}
	if cfg.Smoothing == 0 {
		cfg.Smoothing = 2
	}
	trainN := cfg.TrainN
	if trainN <= 0 {
		trainN = cfg.Spec.Train
	}
	testN := cfg.TestN
	if testN <= 0 {
		testN = cfg.Spec.Test
	}
	g := tensor.NewRNG(cfg.Seed)
	protos := makePrototypes(g, cfg.Spec, cfg.Smoothing)
	train = sampleFromPrototypes(g.Fork(), cfg.Spec, protos, trainN, cfg.Noise, cfg.Difficulty)
	test = sampleFromPrototypes(g.Fork(), cfg.Spec, protos, testN, cfg.Noise, cfg.Difficulty)
	return train, test
}

func makePrototypes(g *tensor.RNG, spec Spec, smoothing int) [][]float32 {
	dim := spec.SampleDim()
	protos := make([][]float32, spec.Classes)
	for k := range protos {
		p := make([]float32, dim)
		g.FillNormal(p, 0, 1)
		for s := 0; s < smoothing; s++ {
			boxBlur(p, spec.Channels, spec.Height, spec.Width)
		}
		// Re-normalize after blurring so class contrast stays comparable.
		normalizeInPlace(p)
		protos[k] = p
	}
	return protos
}

func sampleFromPrototypes(g *tensor.RNG, spec Spec, protos [][]float32, n int, noise, difficulty float64) *Dataset {
	dim := spec.SampleDim()
	d := &Dataset{
		Spec:   spec,
		Images: make([]float32, n*dim),
		Labels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		k := g.Intn(spec.Classes)
		d.Labels[i] = k
		img := d.Images[i*dim : (i+1)*dim]
		proto := protos[k]
		mix := float32(0)
		var other []float32
		if difficulty > 0 && g.Float64() < difficulty {
			other = protos[g.Intn(spec.Classes)]
			mix = 0.3
		}
		for j := range img {
			v := proto[j]
			if other != nil {
				v = (1-mix)*v + mix*other[j]
			}
			img[j] = v + float32(noise)*float32(g.NormFloat64())
		}
	}
	return d
}

// boxBlur applies one pass of a 3×3 box blur per channel (reflect-free: the
// border keeps partial sums normalized by actual tap count).
func boxBlur(img []float32, c, h, w int) {
	tmp := make([]float32, h*w)
	for ch := 0; ch < c; ch++ {
		plane := img[ch*h*w : (ch+1)*h*w]
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var s float32
				var cnt float32
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= h || xx < 0 || xx >= w {
							continue
						}
						s += plane[yy*w+xx]
						cnt++
					}
				}
				tmp[y*w+x] = s / cnt
			}
		}
		copy(plane, tmp)
	}
}

func normalizeInPlace(x []float32) {
	var mean float64
	for _, v := range x {
		mean += float64(v)
	}
	mean /= float64(len(x))
	var vari float64
	for _, v := range x {
		d := float64(v) - mean
		vari += d * d
	}
	std := math.Sqrt(vari/float64(len(x))) + 1e-8
	for i, v := range x {
		x[i] = float32((float64(v) - mean) / std)
	}
}

// Normalize standardizes the whole dataset to mean 0 and stddev 1 per pixel
// position, matching line 1 of the paper's Algorithms 1-4 ("Normalize X on
// CPU by standard deviation: E(X)=0 and σ(X)=1").
func (d *Dataset) Normalize() {
	dim := d.Spec.SampleDim()
	n := d.Len()
	if n == 0 {
		return
	}
	for j := 0; j < dim; j++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += float64(d.Images[i*dim+j])
		}
		mean /= float64(n)
		var vari float64
		for i := 0; i < n; i++ {
			v := float64(d.Images[i*dim+j]) - mean
			vari += v * v
		}
		std := math.Sqrt(vari/float64(n)) + 1e-8
		for i := 0; i < n; i++ {
			d.Images[i*dim+j] = float32((float64(d.Images[i*dim+j]) - mean) / std)
		}
	}
}

// NormalizeWith applies an externally computed per-pixel mean/std (e.g. the
// training set's statistics applied to the test set).
func (d *Dataset) NormalizeWith(mean, std []float32) {
	dim := d.Spec.SampleDim()
	if len(mean) != dim || len(std) != dim {
		panic(fmt.Sprintf("data: NormalizeWith stats of dim %d/%d for sample dim %d", len(mean), len(std), dim))
	}
	for i := 0; i < d.Len(); i++ {
		img := d.Sample(i)
		for j := range img {
			img[j] = (img[j] - mean[j]) / std[j]
		}
	}
}

// Stats returns the per-pixel mean and stddev of the dataset.
func (d *Dataset) Stats() (mean, std []float32) {
	dim := d.Spec.SampleDim()
	n := d.Len()
	mean = make([]float32, dim)
	std = make([]float32, dim)
	for j := 0; j < dim; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += float64(d.Images[i*dim+j])
		}
		m /= float64(n)
		var vari float64
		for i := 0; i < n; i++ {
			v := float64(d.Images[i*dim+j]) - m
			vari += v * v
		}
		mean[j] = float32(m)
		std[j] = float32(math.Sqrt(vari/float64(n)) + 1e-8)
	}
	return mean, std
}

// Batch is a minibatch view materialized into contiguous buffers, ready for
// a forward pass.
type Batch struct {
	X      []float32 // b × SampleDim
	Labels []int     // b
	B      int
	Dim    int
}

// Sampler draws random minibatches with replacement, matching the paper's
// "randomly picks b samples at each iteration". Each Sampler owns a private
// RNG stream so simulated workers sample independently yet reproducibly.
type Sampler struct {
	d   *Dataset
	g   *tensor.RNG
	dim int
}

// NewSampler creates a seeded sampler over d.
func NewSampler(d *Dataset, seed int64) *Sampler {
	return &Sampler{d: d, g: tensor.NewRNG(seed), dim: d.Spec.SampleDim()}
}

// Next fills (or allocates) a batch of size b.
func (s *Sampler) Next(b int, reuse *Batch) *Batch {
	if b <= 0 {
		panic("data: batch size must be positive")
	}
	bt := reuse
	if bt == nil || bt.B != b {
		bt = &Batch{X: make([]float32, b*s.dim), Labels: make([]int, b), B: b, Dim: s.dim}
	}
	n := s.d.Len()
	for i := 0; i < b; i++ {
		idx := s.g.Intn(n)
		copy(bt.X[i*s.dim:(i+1)*s.dim], s.d.Sample(idx))
		bt.Labels[i] = s.d.Labels[idx]
	}
	return bt
}

// Shard returns the i-th of p contiguous shards of the dataset (data
// parallelism partitioning, Figure 4.1 of the paper). Shard shares backing
// storage with d.
func (d *Dataset) Shard(i, p int) *Dataset {
	if p <= 0 || i < 0 || i >= p {
		panic(fmt.Sprintf("data: invalid shard %d of %d", i, p))
	}
	n := d.Len()
	lo := i * n / p
	hi := (i + 1) * n / p
	dim := d.Spec.SampleDim()
	return &Dataset{
		Spec:   d.Spec,
		Images: d.Images[lo*dim : hi*dim],
		Labels: d.Labels[lo:hi],
	}
}
