package par

import (
	"sync"
	"testing"
)

func TestArenaReusesBuffers(t *testing.T) {
	var a Arena[float32]
	b1 := a.Get(100)
	if len(b1) != 100 {
		t.Fatalf("Get(100) returned len %d", len(b1))
	}
	a.Put(b1)
	b2 := a.Get(50)
	if len(b2) != 50 || cap(b2) < 100 {
		t.Fatalf("Get(50) after Put should reuse the 100-cap buffer, got len %d cap %d", len(b2), cap(b2))
	}
	a.Put(b2)
	b3 := a.Get(200)
	if len(b3) != 200 {
		t.Fatalf("Get(200) returned len %d", len(b3))
	}
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	var a Arena[float32]
	a.Put(a.Get(256)) // warm up
	if allocs := testing.AllocsPerRun(100, func() {
		buf := a.Get(256)
		a.Put(buf)
	}); allocs != 0 {
		t.Errorf("steady-state Get/Put allocated %v times per run, want 0", allocs)
	}
}

// TestArenaConcurrentDistinctBuffers checks that concurrent holders never
// share a buffer — the property the packed GEMM relies on when several pool
// tasks pack operands at once.
func TestArenaConcurrentDistinctBuffers(t *testing.T) {
	var a Arena[int]
	const workers = 8
	var mu sync.Mutex
	live := make(map[*int]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				buf := a.Get(64)
				p := &buf[0]
				mu.Lock()
				if owner, ok := live[p]; ok {
					t.Errorf("buffer shared between holders %d and %d", owner, id)
				}
				live[p] = id
				mu.Unlock()
				buf[0] = id
				if buf[0] != id {
					t.Errorf("buffer clobbered")
				}
				mu.Lock()
				delete(live, p)
				mu.Unlock()
				a.Put(buf)
			}
		}(w)
	}
	wg.Wait()
}

func TestArenaZeroValueAndNilPut(t *testing.T) {
	var a Arena[byte]
	a.Put(nil) // must be a no-op
	if got := a.Get(8); len(got) != 8 {
		t.Fatalf("Get(8) on zero-value arena returned len %d", len(got))
	}
}
