package par

import "sync"

// Arena is a free list of reusable scratch buffers for pool tasks. Hot
// kernels (the packed GEMM in internal/tensor) need packing buffers on every
// call; allocating them would dominate small operations and churn the GC, and
// a single global buffer would race when the same kernel runs concurrently on
// several pool slots (for example one GEMM per conv chunk of a worker
// fan-out). An Arena hands each concurrent caller its own slot: Get pops a
// retained buffer (growing it if needed) and Put returns it. In steady state
// the arena holds at most one buffer per concurrently-executing pool task —
// bounded by the pool width W — so after warm-up Get/Put allocate nothing,
// which is what keeps the packed GEMM at zero allocations per call.
//
// The zero value is ready to use. Buffers are returned with their previous
// contents (callers must overwrite what they read), and a buffer must not be
// used after Put.
type Arena[T any] struct {
	mu   sync.Mutex
	free [][]T
}

// Get returns a scratch buffer of length n, reusing a retained one when its
// capacity suffices. The contents are unspecified.
func (a *Arena[T]) Get(n int) []T {
	a.mu.Lock()
	var buf []T
	if last := len(a.free) - 1; last >= 0 {
		buf = a.free[last]
		a.free[last] = nil
		a.free = a.free[:last]
	}
	a.mu.Unlock()
	if cap(buf) < n {
		buf = make([]T, n)
	}
	return buf[:n]
}

// Put returns buf to the arena for reuse. buf may be nil.
func (a *Arena[T]) Put(buf []T) {
	if cap(buf) == 0 {
		return
	}
	a.mu.Lock()
	a.free = append(a.free, buf)
	a.mu.Unlock()
}
