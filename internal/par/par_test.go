package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withWidth runs f at a fixed pool width and restores the default after.
func withWidth(t *testing.T, w int, f func()) {
	t.Helper()
	SetWidth(w)
	defer SetWidth(0)
	f()
}

func TestWidthDefaultsToGOMAXPROCS(t *testing.T) {
	SetWidth(0)
	if got := Width(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Width() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWidth(3)
	if Width() != 3 {
		t.Errorf("Width() after SetWidth(3) = %d", Width())
	}
	SetWidth(-5)
	if got := Width(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Width() after SetWidth(-5) = %d, want GOMAXPROCS", got)
	}
	SetWidth(0)
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		withWidth(t, w, func() {
			for _, n := range []int{0, 1, 2, 7, 64, 1000} {
				counts := make([]int32, n)
				For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("width %d n %d: index %d ran %d times", w, n, i, c)
					}
				}
			}
		})
	}
}

func TestForParallelWritesAreJoined(t *testing.T) {
	// Index-distinct writes without atomics must be visible after the join.
	withWidth(t, 4, func() {
		out := make([]int, 512)
		For(len(out), func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d after join", i, v)
			}
		}
	})
}

func TestChunkRangesFixedAndExhaustive(t *testing.T) {
	withWidth(t, 4, func() {
		for _, n := range []int{1, 2, 3, 4, 5, 17, 100} {
			chunks := ChunkRanges(n)
			if len(chunks) > 4 {
				t.Fatalf("n=%d: %d chunks exceeds width", n, len(chunks))
			}
			next := 0
			for _, ch := range chunks {
				if ch[0] != next || ch[1] <= ch[0] {
					t.Fatalf("n=%d: bad chunk %v (expected lo %d)", n, ch, next)
				}
				next = ch[1]
			}
			if next != n {
				t.Fatalf("n=%d: chunks end at %d", n, next)
			}
		}
	})
}

func TestRangesMatchesChunkRanges(t *testing.T) {
	withWidth(t, 3, func() {
		want := ChunkRanges(10)
		var mu atomic.Int32
		got := make([][2]int, len(want))
		Ranges(10, func(lo, hi int) {
			got[mu.Add(1)-1] = [2]int{lo, hi}
		})
		// Order of execution is not fixed; compare as a set.
		seen := map[[2]int]bool{}
		for _, g := range got {
			seen[g] = true
		}
		for _, w := range want {
			if !seen[w] {
				t.Fatalf("range %v not executed (got %v)", w, got)
			}
		}
	})
}

func TestNestedFanOutCompletesAndIsBounded(t *testing.T) {
	// Nested For inside For must not deadlock and must keep concurrency
	// at or below the width.
	withWidth(t, 4, func() {
		var active, peak atomic.Int32
		enter := func() {
			a := active.Add(1)
			for {
				p := peak.Load()
				if a <= p || peak.CompareAndSwap(p, a) {
					break
				}
			}
		}
		out := make([][]int, 16)
		For(16, func(i int) {
			enter()
			defer active.Add(-1)
			row := make([]int, 32)
			For(32, func(j int) {
				enter()
				defer active.Add(-1)
				row[j] = i + j
			})
			out[i] = row
		})
		if p := peak.Load(); p > 4 {
			t.Errorf("peak concurrency %d exceeds width 4", p)
		}
		for i, row := range out {
			for j, v := range row {
				if v != i+j {
					t.Fatalf("out[%d][%d] = %d", i, j, v)
				}
			}
		}
	})
}

func TestSubmitOverlapsAndJoins(t *testing.T) {
	withWidth(t, 4, func() {
		vals := make([]int, 8)
		handles := make([]*Handle, 8)
		for i := range handles {
			i := i
			handles[i] = Submit(func() { vals[i] = i + 1 })
		}
		for i, h := range handles {
			h.Wait()
			h.Wait() // idempotent
			if vals[i] != i+1 {
				t.Fatalf("vals[%d] = %d after Wait", i, vals[i])
			}
		}
	})
}

func TestSubmitRunsInlineWhenSaturated(t *testing.T) {
	withWidth(t, 1, func() {
		ran := false
		h := Submit(func() { ran = true })
		if !ran {
			t.Fatal("width-1 Submit did not run inline")
		}
		h.Wait()
	})
}

func TestSerialWidthRunsInOrder(t *testing.T) {
	withWidth(t, 1, func() {
		var order []int
		For(10, func(i int) { order = append(order, i) })
		for i, v := range order {
			if v != i {
				t.Fatalf("serial order %v", order)
			}
		}
	})
}

func TestEnvWidthParsing(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int
	}{{"", 0}, {"0", 0}, {"-3", 0}, {"junk", 0}, {"1", 1}, {"4", 4}, {"16", 16}} {
		if got := envWidth(c.in); got != c.want {
			t.Errorf("envWidth(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEnvWidthAppliedViaSetWidth(t *testing.T) {
	defer SetWidth(0)
	SetWidth(envWidth("3"))
	if Width() != 3 {
		t.Errorf("width %d after env override, want 3", Width())
	}
	SetWidth(envWidth("nope"))
	if Width() < 1 {
		t.Errorf("fallback width %d", Width())
	}
}
