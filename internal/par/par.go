// Package par is the process-wide bounded-parallelism executor every real
// (wall-clock) computation in this module runs on. The paper's central
// observation is that data-parallel workers are embarrassingly parallel
// between reductions: the P replicas' forward/backward passes are
// independent, and only the parameter combine is ordered. The simulator in
// internal/sim serializes *virtual* time, but nothing requires the real
// gradient mathematics to run on one OS thread — so the core algorithms,
// the convolution batch fan-out and the GEMM row fan-out all schedule their
// work here, sharing one pool instead of each spawning unbounded goroutines
// and oversubscribing the machine when nested (worker × conv-chunk ×
// GEMM-row).
//
// # Execution model
//
// The pool has a fixed width W (GOMAXPROCS at startup unless overridden by
// SetWidth). At most W goroutines execute work at once: a fan-out's calling
// goroutine always participates, and up to W−1 helper slots are shared
// globally. Acquiring a helper never blocks — when the pool is saturated
// (for example a GEMM issued from inside a conv chunk that is itself inside
// a worker fan-out) the work simply runs inline on the caller. This makes
// nested fan-outs deadlock-free by construction and bounds total
// concurrency at W regardless of nesting depth.
//
// # Determinism
//
// Parallelism here never changes results. Fan-outs assign work to fixed
// index ranges (Ranges uses Width()-derived chunk boundaries, For
// dispatches whole indices), every unit writes only index-distinct state,
// and the join is a full barrier — so float summation order inside a unit
// is fixed, and callers that merge per-unit partials do so in fixed index
// order after the join. Results are therefore bit-identical to serial
// execution (SetSerial) at the same width; across different widths the
// chunk layout — and with it floating-point merge order — legitimately
// differs.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// pool holds the immutable state of one configuration; swapped atomically
// by SetWidth so readers need no lock.
type pool struct {
	width   int
	helpers chan struct{} // semaphore of width-1 helper slots
}

var current atomic.Pointer[pool]

func init() {
	SetWidth(envWidth(os.Getenv("SCALEDL_PAR_WIDTH")))
}

// envWidth parses the SCALEDL_PAR_WIDTH override (used by CI to pin the
// pool width for the race matrix); anything unparseable or < 1 falls back
// to 0, i.e. GOMAXPROCS.
func envWidth(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

func newPool(width int) *pool {
	if width < 1 {
		width = 1
	}
	return &pool{width: width, helpers: make(chan struct{}, width-1)}
}

// SetWidth fixes the pool width to n; n <= 0 resets it to GOMAXPROCS.
// Width determines both the concurrency bound and the chunk boundaries of
// Ranges, so changing it changes floating-point merge orders in callers
// that accumulate per-chunk partials (results are deterministic for a given
// width). Intended for startup and tests; concurrent in-flight fan-outs
// keep the pool they started with.
func SetWidth(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	current.Store(newPool(n))
}

// Width returns the current pool width.
func Width() int { return current.Load().width }

// serial forces every fan-out inline while leaving Width() — and therefore
// every chunk layout and floating-point merge order — untouched.
var serial atomic.Bool

// SetSerial toggles serial execution: when on, For, Ranges and Submit run
// their work inline on the caller with identical index assignment and
// ordering, so a serial run is the bitwise reference for a concurrent run
// at the same width. Used by determinism tests.
func SetSerial(on bool) { serial.Store(on) }

// acquire takes a helper slot if one is free, without blocking.
func (p *pool) acquire() bool {
	select {
	case p.helpers <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *pool) release() { <-p.helpers }

// For runs fn(i) for every i in [0, n) and returns after all calls have
// completed. Indices are dispatched dynamically to the caller plus up to
// width-1 helpers; fn must therefore only write state owned by its index.
// With width 1 (or a saturated pool) every call runs inline on the caller
// in increasing index order.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p := current.Load()
	if n == 1 || p.width == 1 || serial.Load() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < n-1 && h < p.width-1; h++ {
		if !p.acquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// ChunkRanges splits [0, n) into the contiguous ranges a Ranges call would
// fan out: up to Width() chunks of size ceil(n/chunks). The boundaries
// depend only on (n, Width()), never on scheduling, so callers that keep
// per-chunk state (partial-gradient buffers, scratch) can size and merge it
// reproducibly.
func ChunkRanges(n int) [][2]int {
	return AppendChunkRanges(nil, n)
}

// AppendChunkRanges is ChunkRanges appending into dst — steady-state
// alloc-free once dst's capacity has grown to Width() chunks, for hot
// paths (the serving batcher's per-batch conv forwards) that must not
// allocate per call.
func AppendChunkRanges(dst [][2]int, n int) [][2]int {
	w := Width()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		dst = append(dst, [2]int{lo, hi})
	}
	return dst
}

// Ranges partitions [0, n) into the fixed ChunkRanges chunks and runs
// fn(lo, hi) for each on the pool. It is the fan-out primitive for
// row-partitioned kernels (GEMM): each output row belongs to exactly one
// chunk, so per-row summation order is schedule-independent.
func Ranges(n int, fn func(lo, hi int)) {
	chunks := ChunkRanges(n)
	if len(chunks) == 1 {
		fn(chunks[0][0], chunks[0][1])
		return
	}
	For(len(chunks), func(c int) { fn(chunks[c][0], chunks[c][1]) })
}

// Handle is the join side of a Submit.
type Handle struct {
	done chan struct{} // nil when the task ran inline (already complete)
}

// Submit schedules fn on a helper slot and returns immediately; if no slot
// is free it runs fn inline before returning. It exists for the simulator's
// process-per-worker algorithms (async, round-robin, KNL cluster), where
// each simulated process starts its own gradient computation, yields
// virtual time to its peers — whose computations then genuinely overlap on
// the pool — and joins before the result is used.
func Submit(fn func()) *Handle {
	p := current.Load()
	if serial.Load() || !p.acquire() {
		fn()
		return &Handle{}
	}
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		defer p.release()
		fn()
	}()
	return h
}

// Wait blocks until the submitted task has completed. It is safe to call
// multiple times.
func (h *Handle) Wait() {
	if h.done != nil {
		<-h.done
	}
}
