package harness

import (
	"fmt"

	"scaledl/internal/core"
)

// RunFig10 reproduces Figure 10: Sync SGD with the §5.2 packed single-layer
// layout versus conventional per-layer communication, same data, same
// network (a deeper stand-in with AlexNet-like layer count so the per-layer
// plan pays one latency per layer plus the noncontiguous staging penalty).
// The two runs use different RNG streams only through their platforms'
// identical seeds, mirroring the paper's note that the two curves differ by
// seed.
func RunFig10(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{ID: "fig10", Title: "Packed single-layer vs per-layer communication", PaperRef: "Figure 10"}
	t := r.NewTable("Sync SGD accuracy vs simulated time", "Plan", "iters", "time(s)", "test accuracy")

	train, test, def := deepWorkload(o)
	results := map[bool]core.Result{}
	for _, packed := range []bool{false, true} {
		cfg := core.Config{
			Def:        def,
			Train:      train,
			Test:       test,
			Workers:    4,
			Batch:      32,
			LR:         0.05,
			Iterations: o.scaled(200),
			Seed:       o.Seed,
			Platform:   gpuPlatform(packed),
			EvalEvery:  20,
		}
		// Per-layer traffic must also ride the host path in both runs so the
		// only differences are message count and memory contiguity.
		cfg.Platform.HostParam = core.DefaultGPUPlatform(true).HostParam
		res, err := core.SyncSGD(cfg)
		if err != nil {
			return nil, err
		}
		results[packed] = res
		name := "per-layer"
		if packed {
			name = "packed"
		}
		for _, pt := range res.Curve {
			t.AddRow(name, fmt.Sprintf("%d", pt.Iter), fmt.Sprintf("%.4f", pt.SimTime), fmt.Sprintf("%.3f", pt.TestAcc))
		}
	}
	pu, pp := results[false], results[true]
	t2 := r.NewTable("summary (equal iterations)", "Plan", "layers msgs/xfer", "time(s)", "accuracy", "speedup")
	nLayers := len(def.Build(0).LayerParamSizes())
	t2.AddRow("per-layer", fmt.Sprintf("%d", nLayers), fmt.Sprintf("%.4f", pu.SimTime), fmt.Sprintf("%.3f", pu.FinalAcc), "1.0x")
	t2.AddRow("packed", "1", fmt.Sprintf("%.4f", pp.SimTime), fmt.Sprintf("%.3f", pp.FinalAcc), fmt.Sprintf("%.2fx", pu.SimTime/pp.SimTime))
	r.AddNote("packed wins on (1) one α instead of %d per transfer and (2) contiguous memory access (no gather/scatter staging) — §5.2's two effects", nLayers)
	return r, nil
}
