package harness

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
	"scaledl/internal/sim"
)

// The hier experiment: two-level (node-local + fabric) collectives and
// training on composed PCIe+fabric clusters, against the flat baselines the
// repo simulated before multi-level topologies existed. Three claims are on
// display:
//
//  1. The flat-topology assumption overcharges: a flat uniform-fabric model
//     prices every byte at fabric cost, where the composed topology routes
//     intra-node bytes over the PCIe tree.
//  2. On a composed cluster with a saturating single-port fabric (the
//     paper's Aries regime), the best hierarchical schedule pair beats the
//     best flat schedule run over every GPU — a rank-aligned flat binomial
//     tree is hierarchical in shape (it ties hier tree/tree exactly), but
//     mixing levels (recursive halving among leaders) wins outright, while
//     flat ring/RHD flood each node's NIC or chop the model into chunks the
//     saturating fabric charges nearly full price for.
//  3. Hierarchical training: hier-sync-sgd reproduces flat SyncSGD's
//     mathematics bit for bit while the bytes travel the two-level
//     topology; hier-sync-easgd's τ_local/τ_global knobs trade fabric
//     rounds for convergence like the EASGD communication period.

// hierCluster builds the composed PCIe-trees-under-Aries topology of the
// sweep: gpus per node behind a PCIe switch (peer DMA), one full-duplex
// fabric port per node.
func hierCluster(env *sim.Env, nodes, gpus int) *comm.MultiLevel {
	return comm.NewMultiLevel(env, comm.MultiLevelConfig{
		Nodes: nodes,
		PerNode: func(env *sim.Env, node int) *comm.Topology {
			return comm.NewPCIeTree(env, comm.PCIeConfig{GPUs: gpus, Host: hw.PCIePinned, Peer: hw.GPUPeer})
		},
		Fabric:         hw.Aries,
		NICConcurrency: 2,
	})
}

// simulateFlatComposed runs one size-only flat allreduce over every GPU of
// the composed cluster and returns the simulated seconds.
func simulateFlatComposed(nodes, gpus int, sched comm.Schedule, nBytes int64) float64 {
	env := sim.NewEnv()
	defer env.Close()
	ml := hierCluster(env, nodes, gpus)
	var parties []int
	for g := 0; g < nodes; g++ {
		for l := 0; l < gpus; l++ {
			parties = append(parties, ml.GlobalID(g, l))
		}
	}
	cm := comm.NewCommunicator(ml.Topology(), comm.CommConfig{
		Parties:  parties,
		Plan:     comm.Plan{LayerBytes: []int64{nBytes}, Packed: true},
		Schedule: sched,
	})
	for r := range parties {
		r := r
		env.Spawn(fmt.Sprintf("flat%d", r), func(p *sim.Proc) {
			cm.Endpoint(r).AllReduceSize(p, 0)
		})
	}
	return env.Run()
}

// simulateHierComposed runs one size-only hierarchical allreduce (intra
// schedule within each node, inter schedule among leaders) on the same
// composed cluster.
func simulateHierComposed(nodes, gpus int, intra, inter comm.Schedule, nBytes int64) float64 {
	env := sim.NewEnv()
	defer env.Close()
	ml := hierCluster(env, nodes, gpus)
	locals := make([]int, gpus)
	for i := range locals {
		locals[i] = i
	}
	hc := comm.NewHierCommunicator(ml.Topology(), comm.HierConfig{
		Groups: ml.Groups(locals...),
		Plan:   comm.Plan{LayerBytes: []int64{nBytes}, Packed: true},
		Intra:  intra,
		Inter:  inter,
	})
	for r := 0; r < hc.Size(); r++ {
		r := r
		env.Spawn(fmt.Sprintf("hier%d", r), func(p *sim.Proc) {
			hc.Endpoint(r).AllReduceSize(p, 0)
		})
	}
	return env.Run()
}

// simulateFlatUniform prices the same allreduce under the pre-composition
// flat model: every pair rides the fabric (the assumption the motivation
// calls out — intra-node and inter-node bytes charged identically).
func simulateFlatUniform(workers int, sched comm.Schedule, nBytes int64) float64 {
	t := mustSimulateAllReduce(sched.String(), hw.Aries, nBytes, workers)
	return t
}

// hierSweepSchedules are the flat schedules and hierarchical pairs of the
// collective sweep.
var hierFlatSchedules = []comm.Schedule{comm.ScheduleTree, comm.ScheduleRing, comm.ScheduleRHD, comm.ScheduleChain}
var hierPairs = []struct{ intra, inter comm.Schedule }{
	{comm.ScheduleTree, comm.ScheduleTree},
	{comm.ScheduleTree, comm.ScheduleRing},
	{comm.ScheduleTree, comm.ScheduleRHD},
	{comm.ScheduleChain, comm.ScheduleRHD},
}

// bestHierVsFlat runs the full sweep at one cluster shape and returns the
// best (minimum) simulated times of each family — the quantity the
// acceptance test pins (hier < flat at 4 nodes × 8 GPUs).
func bestHierVsFlat(nodes, gpus int, nBytes int64) (bestHier, bestFlat float64) {
	for i, s := range hierFlatSchedules {
		t := simulateFlatComposed(nodes, gpus, s, nBytes)
		if i == 0 || t < bestFlat {
			bestFlat = t
		}
	}
	for i, pr := range hierPairs {
		t := simulateHierComposed(nodes, gpus, pr.intra, pr.inter, nBytes)
		if i == 0 || t < bestHier {
			bestHier = t
		}
	}
	return bestHier, bestFlat
}

// RunHier regenerates the hierarchical-cluster study.
func RunHier(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:       "hier",
		Title:    "Hierarchical two-level clusters: node-local + fabric collectives",
		PaperRef: "Sections 6.2, 7.1 (multi-node scaling); FireCaffe/Poseidon",
	}

	// Collective sweep at GoogleNet scale (the paper's Table 4 workload):
	// nodes × 8 GPUs, PCIe trees under Aries with one full-duplex port.
	nBytes := nn.GoogleNetCost().ParamBytes()
	t1 := r.NewTable(fmt.Sprintf("allreduce of %s (GoogleNet weights) on composed PCIe+Aries clusters, sim ms", byteSize(nBytes)),
		"cluster", "family", "schedule", "sim(ms)")
	for _, sh := range []struct{ nodes, gpus int }{{2, 4}, {4, 8}} {
		name := fmt.Sprintf("%dx%d", sh.nodes, sh.gpus)
		flatUni := simulateFlatUniform(sh.nodes*sh.gpus, comm.ScheduleTree, nBytes)
		t1.AddRow(name, "flat-uniform", "tree (all bytes at fabric cost)", fmt.Sprintf("%.1f", flatUni*1e3))
		var bestFlat, bestHier float64
		var bestFlatName, bestHierName string
		for _, s := range hierFlatSchedules {
			tm := simulateFlatComposed(sh.nodes, sh.gpus, s, nBytes)
			t1.AddRow(name, "flat-composed", s.String(), fmt.Sprintf("%.1f", tm*1e3))
			if bestFlatName == "" || tm < bestFlat {
				bestFlat, bestFlatName = tm, s.String()
			}
		}
		for _, pr := range hierPairs {
			tm := simulateHierComposed(sh.nodes, sh.gpus, pr.intra, pr.inter, nBytes)
			t1.AddRow(name, "hierarchical", fmt.Sprintf("%s/%s", pr.intra, pr.inter), fmt.Sprintf("%.1f", tm*1e3))
			if bestHierName == "" || tm < bestHier {
				bestHier, bestHierName = tm, fmt.Sprintf("%s/%s", pr.intra, pr.inter)
			}
		}
		r.AddNote("%s: best hierarchical %s = %.1f ms vs best flat %s = %.1f ms (%.2fx); flat-uniform tree would have charged %.1f ms",
			name, bestHierName, bestHier*1e3, bestFlatName, bestFlat*1e3, bestFlat/bestHier, flatUni*1e3)
	}

	// Training: hier-sync-sgd against flat SyncSGD at the same worker count
	// (2 nodes × 2 GPUs), identical mathematics by construction.
	iters := o.scaled(8)
	mk := func(nodes, gpus int, inter comm.Schedule, overlap bool) (core.Result, error) {
		cfg := baseConfig(o, iters, true)
		cfg.EvalEvery = 0
		cfg.Overlap = overlap
		if nodes > 0 {
			cfg.Nodes, cfg.GPUsPerNode = nodes, gpus
			cfg.HierSchedule = inter
			return core.HierSyncSGD(cfg)
		}
		return core.SyncSGD(cfg)
	}
	t2 := r.NewTable("SyncSGD flat vs hierarchical (4 workers, MNIST regime)",
		"method", "inter", "overlap", "step(µs)", "final loss", "math")
	flat, err := mk(0, 0, comm.ScheduleTree, false)
	if err != nil {
		return nil, err
	}
	fi := float64(iters)
	addT2 := func(method, inter, overlap string, res core.Result) {
		math := "== flat"
		if res.FinalLoss != flat.FinalLoss {
			math = "DIVERGED"
		}
		t2.AddRow(method, inter, overlap, fmt.Sprintf("%.1f", res.SimTime/fi*1e6),
			fmt.Sprintf("%.6f", res.FinalLoss), math)
	}
	addT2("sync-sgd", "-", "off", flat)
	for _, inter := range []comm.Schedule{comm.ScheduleTree, comm.ScheduleRHD} {
		res, err := mk(2, 2, inter, false)
		if err != nil {
			return nil, err
		}
		addT2("hier-sync-sgd", inter.String(), "off", res)
	}
	ov, err := mk(2, 2, comm.ScheduleRHD, true)
	if err != nil {
		return nil, err
	}
	addT2("hier-sync-sgd", "rhd", "on", ov)
	r.AddNote("hier-sync-sgd's allreduce is bit-identical to ReduceSum, so every row's mathematics equals the flat run — topology changes when and where bytes move, never what is summed")

	// Node-group EASGD: τ_local/τ_global pacing. Rarer fabric rounds cut
	// simulated time per step; convergence degrades gracefully (the EASGD
	// communication-period trade).
	t3 := r.NewTable("hier-sync-easgd τ pacing (2 nodes × 2 GPUs)",
		"tau_local", "tau_global", "fabric syncs", "step(µs)", "final acc")
	easgdIters := o.scaled(12)
	for _, tau := range []struct{ local, global int }{{1, 2}, {1, 4}, {2, 8}} {
		cfg := baseConfig(o, easgdIters, true)
		cfg.EvalEvery = 0
		cfg.Nodes, cfg.GPUsPerNode = 2, 2
		cfg.TauLocal, cfg.TauGlobal = tau.local, tau.global
		res, err := core.HierSyncEASGD(cfg)
		if err != nil {
			return nil, err
		}
		t3.AddRow(fmt.Sprintf("%d", tau.local), fmt.Sprintf("%d", tau.global),
			fmt.Sprintf("%d", res.Updates()),
			fmt.Sprintf("%.1f", res.SimTime/float64(easgdIters)*1e6),
			fmt.Sprintf("%.3f", res.FinalAcc))
	}
	return r, nil
}
