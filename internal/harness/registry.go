package harness

import (
	"fmt"
	"sort"
)

// Experiment is one regenerable artifact of the paper.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(Options) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

func init() {
	register(Experiment{ID: "table2", Title: "InfiniBand performance under the α-β model", PaperRef: "Table 2", Run: RunTable2})
	register(Experiment{ID: "table3", Title: "Breakdown of time for EASGD variants", PaperRef: "Table 3", Run: RunTable3})
	register(Experiment{ID: "fig11", Title: "Breakdown of time for EASGD variants (chart data)", PaperRef: "Figure 11", Run: RunFig11})
	register(Experiment{ID: "fig6.1", Title: "Async EASGD vs Async SGD", PaperRef: "Figure 6.1", Run: runFig6Panel("fig6.1", "async-easgd", "async-sgd")})
	register(Experiment{ID: "fig6.2", Title: "Async MEASGD vs Async MSGD", PaperRef: "Figure 6.2", Run: runFig6Panel("fig6.2", "async-measgd", "async-msgd")})
	register(Experiment{ID: "fig6.3", Title: "Hogwild EASGD vs Hogwild SGD", PaperRef: "Figure 6.3", Run: runFig6Panel("fig6.3", "hogwild-easgd", "hogwild-sgd")})
	register(Experiment{ID: "fig6.4", Title: "Sync EASGD vs Original EASGD", PaperRef: "Figure 6.4", Run: runFig6Panel("fig6.4", "sync-easgd3", "original-easgd")})
	register(Experiment{ID: "fig8", Title: "Overall comparison (log10 error rate vs time)", PaperRef: "Figure 8", Run: RunFig8})
	register(Experiment{ID: "fig10", Title: "Packed single-layer vs per-layer communication", PaperRef: "Figure 10", Run: RunFig10})
	register(Experiment{ID: "fig12", Title: "KNL chip partitioning", PaperRef: "Figure 12", Run: RunFig12})
	register(Experiment{ID: "fig13", Title: "Weak-scaling benefit: more machines and more data", PaperRef: "Figure 13", Run: RunFig13})
	register(Experiment{ID: "table4", Title: "Weak scaling for ImageNet (GoogleNet/VGG vs Intel Caffe)", PaperRef: "Table 4", Run: RunTable4})
	register(Experiment{ID: "batch", Title: "Impact of batch size", PaperRef: "Section 7.2", Run: RunBatchImpact})
	register(Experiment{ID: "ablation", Title: "Co-design ablation (tree, placement, overlap, collectives)", PaperRef: "Section 6.1", Run: RunAblation})
	register(Experiment{ID: "lowprec", Title: "Low-precision gradient communication", PaperRef: "Section 3.4 (future work)", Run: RunLowPrecision})
	register(Experiment{ID: "overlap", Title: "Layer-streaming backprop: hidden communication ablation", PaperRef: "Section 5.1 (overlap)", Run: RunOverlap})
	register(Experiment{ID: "knlmodes", Title: "MCDRAM and cluster-mode ablation", PaperRef: "Sections 2.1, 6.2", Run: RunKNLModes})
	register(Experiment{ID: "hier", Title: "Hierarchical two-level clusters (node-local + fabric collectives)", PaperRef: "Sections 6.2, 7.1; FireCaffe/Poseidon", Run: RunHier})
	register(Experiment{ID: "scale", Title: "Thousand-node sweeps: collectives and weak scaling to P=1024", PaperRef: "Sections 6.2, 7.1; Table 4 (cluster scale)", Run: RunScale})
	register(Experiment{ID: "hybrid", Title: "Hybrid communication: sufficient-factor broadcasting vs dense allreduce", PaperRef: "Section 5.1 (communication); Poseidon (Zhang et al.)", Run: RunHybrid})
	register(Experiment{ID: "faults", Title: "Failure scenarios: stragglers, degraded links, fail-stop recovery", PaperRef: "Section 7 (robustness discussion); model extension", Run: RunFaults})
	register(Experiment{ID: "chaos", Title: "Survivable collectives: loss, corruption, fail-stop without checkpoint", PaperRef: "Section 7 (robustness discussion); model extension", Run: RunChaos})
	register(Experiment{ID: "serving", Title: "Batched inference serving: latency and shed rate vs offered load", PaperRef: "ROADMAP serving leg; Poseidon (system boundary incl. serving)", Run: RunServing})
}

// List returns all experiments ordered by ID.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get looks an experiment up by ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (use one of %v)", id, ids())
	}
	return e, nil
}

func ids() []string {
	var out []string
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment in ID order.
func RunAll(o Options) ([]*Report, error) {
	var out []*Report
	for _, e := range List() {
		r, err := e.Run(o)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
