package harness

import (
	"strconv"
	"strings"
	"testing"

	"scaledl/internal/comm"
	"scaledl/internal/nn"
)

func TestRegistryCompleteAndSorted(t *testing.T) {
	want := []string{"ablation", "batch", "chaos", "faults", "fig10", "fig11",
		"fig12", "fig13", "fig6.1", "fig6.2", "fig6.3", "fig6.4", "fig8", "hier",
		"hybrid", "knlmodes", "lowprec", "overlap", "scale", "serving", "table2",
		"table3", "table4"}
	got := List()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Run == nil || e.Title == "" || e.PaperRef == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get of unknown experiment did not error")
	}
	if e, err := Get("table2"); err != nil || e.ID != "table2" {
		t.Errorf("Get(table2) = %v, %v", e.ID, err)
	}
}

func TestTableFormatting(t *testing.T) {
	r := &Report{ID: "x", Title: "T", PaperRef: "ref"}
	tb := r.NewTable("demo", "a", "bb")
	tb.AddRow("1", "2")
	tb.AddRowf(3.5, 42)
	out := r.String()
	for _, want := range []string{"=== x — T (ref) ===", "demo", "a", "bb", "3.500", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "a,bb\n1,2\n") {
		t.Errorf("CSV output wrong: %q", sb.String())
	}
	if tb.Cell(0, 1) != "2" {
		t.Errorf("Cell(0,1) = %q", tb.Cell(0, 1))
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tb := &Table{Title: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestOptionsDefaultsAndScaling(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 1 || o.Scale != 1 {
		t.Errorf("defaults wrong: %+v", o)
	}
	o.Scale = 0.1
	if got := o.scaled(100); got != 10 {
		t.Errorf("scaled(100) at 0.1 = %d", got)
	}
	if got := o.scaled(1); got != 1 {
		t.Errorf("scaled must floor at 1, got %d", got)
	}
}

func TestTable2ReportValues(t *testing.T) {
	r, err := RunTable2(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	// The paper's exact Table 2 constants must appear.
	for _, want := range []string{"7.0e-07 s", "1.2e-06 s", "7.2e-06 s", "2.0e-10", "3.0e-10", "9.0e-10"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q", cell)
	}
	return v
}

func TestTable4WeakScalingShape(t *testing.T) {
	r, err := RunTable4(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("want 2 tables (GoogleNet, VGG), got %d", len(r.Tables))
	}
	for ti, tb := range r.Tables {
		name := []string{"googlenet", "vgg19"}[ti]
		prevEff := 101.0
		for ri := range tb.Rows {
			eff := parsePct(t, tb.Cell(ri, 2))
			caffe := parsePct(t, tb.Cell(ri, 5))
			if eff > prevEff+1e-9 {
				t.Errorf("%s: efficiency increased at row %d", name, ri)
			}
			prevEff = eff
			if caffe > eff {
				t.Errorf("%s row %d: caffe %v beats ours %v", name, ri, caffe, eff)
			}
		}
	}
	// Paper landing zones at 2176 cores (row index 5): GoogleNet ≈92.3%,
	// VGG ≈78.5%, Caffe 87%/62%.
	gn := parsePct(t, r.Tables[0].Cell(5, 2))
	if gn < 88 || gn > 96 {
		t.Errorf("GoogleNet efficiency at 2176 cores = %v%%, paper 92.3%%", gn)
	}
	vgg := parsePct(t, r.Tables[1].Cell(5, 2))
	if vgg < 72 || vgg > 85 {
		t.Errorf("VGG efficiency at 2176 cores = %v%%, paper 78.5%%", vgg)
	}
	gnCaffe := parsePct(t, r.Tables[0].Cell(5, 5))
	if gnCaffe < 80 || gnCaffe > 91 {
		t.Errorf("GoogleNet Caffe efficiency = %v%%, paper 87%%", gnCaffe)
	}
	vggCaffe := parsePct(t, r.Tables[1].Cell(5, 5))
	if vggCaffe < 55 || vggCaffe > 70 {
		t.Errorf("VGG Caffe efficiency = %v%%, paper 62%%", vggCaffe)
	}
	// VGG (575 MB) must scale worse than GoogleNet (27 MB).
	if vgg >= gn {
		t.Errorf("VGG efficiency %v should be below GoogleNet %v", vgg, gn)
	}
}

func TestWeakScalingEfficiencyAPI(t *testing.T) {
	eff, err := WeakScalingEfficiency("googlenet", 32)
	if err != nil {
		t.Fatal(err)
	}
	if eff < 0.85 || eff > 1 {
		t.Errorf("efficiency %v out of range", eff)
	}
	if _, err := WeakScalingEfficiency("resnet", 4); err == nil {
		t.Error("unknown model did not error")
	}
}

func TestFig12PartitioningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r, err := RunFig12(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	// Rows: P = 1, 4, 8, 16, 32. Speedup at 16 parts lands near the paper's
	// 3.3×; the 32-part row spills MCDRAM and collapses.
	sp := func(ri int) float64 {
		cell := tb.Cell(ri, 5)
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", cell)
		}
		return v
	}
	s4, s8, s16, s32 := sp(1), sp(2), sp(3), sp(4)
	if !(s4 > 1.2 && s8 >= s4 && s16 >= s8) {
		t.Errorf("speedups not increasing to 16 parts: %v %v %v", s4, s8, s16)
	}
	if s16 < 2 || s16 > 5.5 {
		t.Errorf("16-part speedup %v; paper 3.3x", s16)
	}
	if s32 >= s16 {
		t.Errorf("32 parts (%vx) should collapse after MCDRAM spill vs 16 (%vx)", s32, s16)
	}
	if tb.Cell(4, 1) != "false" {
		t.Error("32-part row should not fit MCDRAM")
	}
}

func TestTable3BreakdownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	rows, err := runTable3Methods(Options{Seed: 1, Scale: 1}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]table3Row{}
	for _, row := range rows {
		byName[row.name] = row
		if !row.reached {
			t.Errorf("%s never reached the target accuracy", row.name)
		}
	}
	rr := byName["original-easgd"]
	s3 := byName["sync-easgd3"]
	if rr.res.Breakdown.CommRatio() < 0.6 {
		t.Errorf("round-robin comm ratio %.2f, expected >0.6 (paper 87%%)", rr.res.Breakdown.CommRatio())
	}
	if s3.res.Breakdown.CommRatio() > 0.4 {
		t.Errorf("sync3 comm ratio %.2f, expected <0.4 (paper 14%%)", s3.res.Breakdown.CommRatio())
	}
	speedup := rr.timeTo / s3.timeTo
	if speedup < 2.5 {
		t.Errorf("sync3 speedup %.1fx over round-robin; paper 5.3x (≥2.5 required)", speedup)
	}
	// Co-design chain ordering at equal accuracy.
	if !(byName["sync-easgd1"].timeTo >= byName["sync-easgd2"].timeTo &&
		byName["sync-easgd2"].timeTo >= byName["sync-easgd3"].timeTo) {
		t.Errorf("co-design chain not monotone: %v %v %v",
			byName["sync-easgd1"].timeTo, byName["sync-easgd2"].timeTo, byName["sync-easgd3"].timeTo)
	}
}

func TestFig13MoreNodesReachTargetSooner(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r, err := RunFig13(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Table 2 is the horizontal cut: time to target accuracy per node count.
	// The figure's claim is that more machines+data beat one machine; exact
	// ordering between adjacent large counts can tie within probe
	// granularity, so allow 15% slack there but insist multi-node beats
	// single-node outright.
	tb := r.Tables[1]
	times := make([]float64, len(tb.Rows))
	for ri := range tb.Rows {
		cell := tb.Cell(ri, 1)
		if cell == "not reached" {
			t.Fatalf("nodes=%s never reached the target", tb.Cell(ri, 0))
		}
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatal(err)
		}
		times[ri] = v
	}
	for ri := 1; ri < len(times); ri++ {
		if times[ri] >= times[0] {
			t.Errorf("row %d (%s nodes): %v not faster than single node %v", ri, tb.Cell(ri, 0), times[ri], times[0])
		}
		if times[ri] > times[ri-1]*1.15 {
			t.Errorf("row %d regressed more than 15%% over previous: %v vs %v", ri, times[ri], times[ri-1])
		}
	}
}

func TestOverlapExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r, err := RunOverlap(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// No row may flag diverged math: streaming never changes gradient sums.
	for _, tb := range r.Tables {
		for ri := range tb.Rows {
			for _, cell := range tb.Rows[ri] {
				if cell == "MATH DIVERGED" {
					t.Fatalf("overlap ablation row %d reports diverged math", ri)
				}
			}
		}
	}
	// Paper-scale table: overlap on must beat off (speedup > 1) and hide
	// most of the allreduce (hidden > exposed), lifting efficiency.
	tb := r.Tables[1]
	offEff := parsePct(t, tb.Cell(0, 5))
	for ri := 1; ri < len(tb.Rows); ri++ {
		sp, err := strconv.ParseFloat(strings.TrimSuffix(tb.Cell(ri, 6), "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if sp <= 1.1 {
			t.Errorf("row %d (bucket %s): speedup %v, want > 1.1x", ri, tb.Cell(ri, 0), sp)
		}
		exposed, _ := strconv.ParseFloat(tb.Cell(ri, 3), 64)
		hidden, _ := strconv.ParseFloat(tb.Cell(ri, 4), 64)
		if hidden <= exposed {
			t.Errorf("row %d: hidden comm %v not above exposed %v", ri, hidden, exposed)
		}
		if eff := parsePct(t, tb.Cell(ri, 5)); eff <= offEff+10 {
			t.Errorf("row %d: efficiency %v%% not a band above the %v%% baseline", ri, eff, offEff)
		}
	}
}

func TestFig10PackedFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r, err := RunFig10(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := r.Tables[1]
	per, _ := strconv.ParseFloat(sum.Cell(0, 2), 64)
	packed, _ := strconv.ParseFloat(sum.Cell(1, 2), 64)
	if packed >= per {
		t.Errorf("packed (%v) not faster than per-layer (%v)", packed, per)
	}
}

func TestFig6PanelsOursBeatBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	// The paper's Figure 6 claim: each of our methods reaches a common
	// accuracy no later than its existing counterpart on equal hardware and
	// hyperparameters. Check the two sharpest panels.
	for _, panel := range []struct {
		id, ours, baseline string
	}{
		{"fig6.1", "async-easgd", "async-sgd"},
		{"fig6.3", "hogwild-easgd", "hogwild-sgd"},
	} {
		run := runFig6Panel(panel.id, panel.ours, panel.baseline)
		r, err := run(Options{Seed: 1, Scale: 1})
		if err != nil {
			t.Fatalf("%s: %v", panel.id, err)
		}
		// The "time to accuracy" table has baseline then ours.
		tb := r.Tables[1]
		base, ours := tb.Cell(0, 1), tb.Cell(1, 1)
		if ours == "not reached" {
			t.Errorf("%s: %s never reached the panel target", panel.id, panel.ours)
			continue
		}
		if base == "not reached" {
			continue // baseline diverged — an even stronger win
		}
		bv, _ := strconv.ParseFloat(base, 64)
		ov, _ := strconv.ParseFloat(ours, 64)
		if ov > bv {
			t.Errorf("%s: %s (%v) slower than %s (%v)", panel.id, panel.ours, ov, panel.baseline, bv)
		}
	}
}

// The hier experiment's acceptance claim: at 4 nodes × 8 GPUs on the
// composed PCIe+Aries cluster, the best hierarchical schedule pair beats
// the best flat schedule in simulated time (and everything beats the
// pre-composition flat-uniform pricing).
func TestHierBeatsBestFlatAtFourByEight(t *testing.T) {
	nBytes := nn.GoogleNetCost().ParamBytes()
	bestHier, bestFlat := bestHierVsFlat(4, 8, nBytes)
	if bestHier >= bestFlat {
		t.Errorf("best hierarchical allreduce %.1f ms not faster than best flat %.1f ms at 4x8",
			bestHier*1e3, bestFlat*1e3)
	}
	uniform := simulateFlatUniform(32, comm.ScheduleTree, nBytes)
	if bestFlat >= uniform {
		t.Errorf("composed flat %.1f ms not cheaper than flat-uniform pricing %.1f ms", bestFlat*1e3, uniform*1e3)
	}
	t.Logf("4x8 GoogleNet allreduce: hier %.1f ms, flat %.1f ms (%.2fx), flat-uniform %.1f ms",
		bestHier*1e3, bestFlat*1e3, bestFlat/bestHier, uniform*1e3)
}

func TestHierExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r, err := RunHier(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("hier experiment produced %d tables, want 3", len(r.Tables))
	}
	// No training row may report diverged mathematics.
	for _, row := range r.Tables[1].Rows {
		if row[len(row)-1] == "DIVERGED" {
			t.Fatalf("hier-sync-sgd diverged from flat math: %v", row)
		}
	}
	// τ table: rarer fabric syncs (later rows) must not cost more per step.
	tb := r.Tables[2]
	first, _ := strconv.ParseFloat(tb.Cell(0, 3), 64)
	last, _ := strconv.ParseFloat(tb.Cell(len(tb.Rows)-1, 3), 64)
	if last > first {
		t.Errorf("τ_global pacing did not cut step time: first %v µs, last %v µs", first, last)
	}
}

// The hybrid experiment's acceptance claims: on the fc-heavy net the sfb and
// hybrid transports cut wire bytes at small batch, hybrid never runs slower
// than dense, the big-batch rows cross back over (sfb wire overtakes dense),
// and no row's mathematics diverges from the dense baseline.
func TestHybridExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r, err := RunHybrid(Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("hybrid experiment produced %d tables, want 3", len(r.Tables))
	}
	// Selector table: at least one sfb row (the fc block) and at least one
	// conv row pinned dense with no factor form.
	sfb, noFactor := false, false
	for ri := range r.Tables[0].Rows {
		switch r.Tables[0].Cell(ri, 3) {
		case "sfb":
			sfb = true
		case "dense (no factor form)":
			noFactor = true
		}
	}
	if !sfb || !noFactor {
		t.Errorf("selector table lacks an sfb row (%v) or a no-factor-form conv row (%v)", sfb, noFactor)
	}
	wire := func(tb *Table, ri int) int64 {
		v, err := strconv.ParseInt(tb.Cell(ri, 3), 10, 64)
		if err != nil {
			t.Fatalf("bad wire cell %q", tb.Cell(ri, 3))
		}
		return v
	}
	step := func(tb *Table, ri int) float64 {
		v, err := strconv.ParseFloat(tb.Cell(ri, 4), 64)
		if err != nil {
			t.Fatalf("bad step cell %q", tb.Cell(ri, 4))
		}
		return v
	}
	for _, tb := range r.Tables[1:] {
		for ri := range tb.Rows {
			if tb.Cell(ri, 6) != "ok" {
				t.Errorf("%s row %d: math diverged from the dense baseline", tb.Title, ri)
			}
		}
	}
	// fc-heavy table, rows in (B,P)-groups of three: dense, sfb, hybrid.
	fc := r.Tables[1]
	if fc.Cell(0, 2) != "dense" || fc.Cell(1, 2) != "sfb" || fc.Cell(2, 2) != "hybrid" {
		t.Fatalf("unexpected fc-heavy row order: %v", fc.Rows)
	}
	// Small batch (B=8): factors cut wire, and hybrid is never slower.
	if wire(fc, 1) >= wire(fc, 0) {
		t.Errorf("B=8: sfb wire %d not below dense %d", wire(fc, 1), wire(fc, 0))
	}
	if wire(fc, 2) >= wire(fc, 0) {
		t.Errorf("B=8: hybrid wire %d not below dense %d", wire(fc, 2), wire(fc, 0))
	}
	for g := 0; g+2 < len(fc.Rows); g += 3 {
		if s := step(fc, g+2); s > step(fc, g)*1.0001 {
			t.Errorf("rows %d-%d: hybrid step %.4f ms slower than dense %.4f ms", g, g+2, s, step(fc, g))
		}
	}
	// Big batch (B=64, P=8, last group): the factor payload overtakes the
	// dense gradient — the crossover the selector exists to catch.
	last := len(fc.Rows) - 3
	if wire(fc, last+1) <= wire(fc, last) {
		t.Errorf("B=64: sfb wire %d did not overtake dense %d (no crossover to show)", wire(fc, last+1), wire(fc, last))
	}
}

func TestRunAllAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	reports, err := RunAll(Options{Seed: 1, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(List()) {
		t.Errorf("got %d reports for %d experiments", len(reports), len(List()))
	}
	for _, r := range reports {
		if len(r.Tables) == 0 {
			t.Errorf("%s produced no tables", r.ID)
		}
		if r.String() == "" {
			t.Errorf("%s renders empty", r.ID)
		}
	}
}
