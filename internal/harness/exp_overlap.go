package harness

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/nn"
)

// nnLeNet returns the paper's LeNet at MNIST geometry.
func nnLeNet() nn.NetDef { return nn.LeNet(nn.Shape{C: 1, H: 28, W: 28}, 10) }

// RunOverlap ablates the layer-streaming communication pipeline: overlap
// on/off × bucket size × allreduce schedule, on the MNIST-regime SyncSGD
// workload. The paper's efficiency claim — communication hidden behind
// computation (§5.1's overlap, EASGD3) — here falls out of the dependency
// structure: the backward pass emits per-layer gradient-ready events,
// ready layers coalesce into ~BucketBytes buckets, and each bucket's
// allreduce launches the moment its last layer lands. The table reports
// the step time, the exposed (critical-path) versus hidden communication,
// and the resulting efficiency band (busy time / wall time): with overlap
// on and buckets sized so the bulk of the model streams early, efficiency
// approaches the compute bound; with overlap off it sits at
// compute/(compute+allreduce). Gradient mathematics is bit-identical in
// every row — streaming changes when bytes move, never what is summed.
func RunOverlap(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:       "overlap",
		Title:    "Layer-streaming backprop: hidden communication ablation",
		PaperRef: "Section 5.1 (overlap); Poseidon/FireCaffe wait-free backprop",
	}

	iters := o.scaled(8)
	run := func(overlap bool, bucketBytes int64, sched string) (core.Result, error) {
		cfg := baseConfig(o, iters, true)
		cfg.EvalEvery = 0
		cfg.Overlap = overlap
		cfg.BucketBytes = bucketBytes
		s, err := comm.ParseSchedule(sched)
		if err != nil {
			return core.Result{}, err
		}
		cfg.Schedule = s
		return core.SyncSGD(cfg)
	}

	t := r.NewTable("SyncSGD step time under streaming (4 workers, MNIST regime)",
		"schedule", "bucket", "overlap", "step(µs)", "exposed comm(µs)", "hidden comm(µs)", "efficiency", "speedup")
	var refLoss float64
	first := true
	for _, sched := range []string{"tree", "ring"} {
		base, err := run(false, 0, sched)
		if err != nil {
			return nil, err
		}
		fi := float64(iters)
		baseStep := base.SimTime / fi
		busy := (base.Breakdown.Times[core.CatCPUGPUData] +
			base.Breakdown.Times[core.CatForwardBackward] +
			base.Breakdown.Times[core.CatGPUUpdate]) / fi
		addRow := func(bucket, overlap string, res core.Result) {
			step := res.SimTime / fi
			exposed := res.Breakdown.Times[core.CatCPUGPUParam] / fi
			hidden := res.Breakdown.HiddenComm / fi
			t.AddRow(sched, bucket, overlap,
				fmt.Sprintf("%.1f", step*1e6),
				fmt.Sprintf("%.1f", exposed*1e6),
				fmt.Sprintf("%.1f", hidden*1e6),
				fmt.Sprintf("%.1f%%", busy/step*100),
				fmt.Sprintf("%.2fx", baseStep/step))
			if first {
				refLoss = res.FinalLoss
				first = false
			} else if res.FinalLoss != refLoss {
				t.AddRow(sched, bucket, "MATH DIVERGED", "", "", "", "", "")
			}
		}
		addRow("-", "off", base)
		for _, bucketBytes := range []int64{8 << 10, 32 << 10, 1 << 20} {
			res, err := run(true, bucketBytes, sched)
			if err != nil {
				return nil, err
			}
			addRow(byteSize(bucketBytes), "on", res)
		}
	}
	r.AddNote("efficiency = busy(data+compute+update) / step wall time; overlap on hides the bucketed allreduce under the tail of backprop, so efficiency climbs toward the compute bound — the paper's hidden-communication band — while FinalLoss stays bit-identical across every row")
	r.AddNote("the 1 MiB default bucket exceeds this stand-in model (36 KB), degrading to a single bucket that can only launch at backward completion; small buckets stream layers but pay one collective latency α each — the trade real bucket-size tuning balances")

	// Paper-scale section: LeNet's 1.72 MB of parameters make the allreduce
	// bandwidth-dominated, the regime where streaming earns its keep — the
	// big dense block's gradient is ready first (its backward share is
	// tiny), so ~95% of its wire time rides under the conv backward.
	lenetIters := o.scaled(6)
	runLeNet := func(overlap bool, bucketBytes int64) (core.Result, error) {
		train, test, _ := mnistWorkload(o)
		cfg := core.Config{
			Def:         nnLeNet(),
			Train:       train,
			Test:        test,
			Workers:     4,
			Batch:       32,
			LR:          0.01,
			Iterations:  lenetIters,
			Seed:        o.Seed,
			Platform:    gpuPlatform(true),
			Overlap:     overlap,
			BucketBytes: bucketBytes,
		}
		return core.SyncSGD(cfg)
	}
	t2 := r.NewTable("paper-scale model (LeNet, 1.72 MB, tree allreduce)",
		"bucket", "overlap", "step(ms)", "exposed comm(ms)", "hidden comm(ms)", "efficiency", "speedup")
	lBase, err := runLeNet(false, 0)
	if err != nil {
		return nil, err
	}
	li := float64(lenetIters)
	lBusy := (lBase.Breakdown.Times[core.CatCPUGPUData] +
		lBase.Breakdown.Times[core.CatForwardBackward] +
		lBase.Breakdown.Times[core.CatGPUUpdate]) / li
	addLeNet := func(bucket, overlap string, res core.Result) {
		step := res.SimTime / li
		t2.AddRow(bucket, overlap,
			fmt.Sprintf("%.3f", step*1e3),
			fmt.Sprintf("%.3f", res.Breakdown.Times[core.CatCPUGPUParam]/li*1e3),
			fmt.Sprintf("%.3f", res.Breakdown.HiddenComm/li*1e3),
			fmt.Sprintf("%.1f%%", lBusy/step*100),
			fmt.Sprintf("%.2fx", lBase.SimTime/res.SimTime))
	}
	addLeNet("-", "off", lBase)
	for _, bucketBytes := range []int64{64 << 10, 256 << 10} {
		res, err := runLeNet(true, bucketBytes)
		if err != nil {
			return nil, err
		}
		addLeNet(byteSize(bucketBytes), "on", res)
	}
	return r, nil
}
