package harness

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/sim"
)

// SimulateAllReduce executes one size-only allreduce of nBytes over
// parties nodes on a contention-free fabric of the given link, under the
// named schedule ("tree", "ring", "rhd", "chain", "linear"), and returns
// the simulated completion seconds. It is the harness's bridge to the
// message-level engine: experiments select schedules by name and *run*
// the collective they used to price with a closed-form formula (on a
// contention-free topology the two agree to 1e-9 for the synchronized
// schedules; the pipelined chain has no closed form).
func SimulateAllReduce(schedule string, link comm.Transferer, nBytes int64, parties int) (float64, error) {
	sched, err := comm.ParseSchedule(schedule)
	if err != nil {
		return 0, err
	}
	if parties < 2 {
		return 0, nil
	}
	nBytes = (nBytes + 3) / 4 * 4 // whole float32s
	env := sim.NewEnv()
	defer env.Close()
	topo := comm.NewUniform(env, parties, link)
	ids := comm.Ranks(parties)
	cm := comm.NewCommunicator(topo, comm.CommConfig{
		Parties:  ids,
		Plan:     comm.Plan{LayerBytes: []int64{nBytes}, Packed: true},
		Schedule: sched,
	})
	for id := 0; id < parties; id++ {
		id := id
		ep := cm.Endpoint(id)
		env.Spawn(fmt.Sprintf("rank%d", id), func(p *sim.Proc) {
			ep.AllReduceSize(p, 0)
		})
	}
	return env.Run(), nil
}

// mustSimulateAllReduce panics on a bad schedule name — for harness-internal
// call sites with literal names.
func mustSimulateAllReduce(schedule string, link comm.Transferer, nBytes int64, parties int) float64 {
	t, err := SimulateAllReduce(schedule, link, nBytes, parties)
	if err != nil {
		panic(err)
	}
	return t
}
