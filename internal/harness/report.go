// Package harness regenerates every table and figure of the paper's
// evaluation: Table 2 (α-β network constants), Table 3 / Figure 11 (time
// breakdown of the EASGD variants), Table 4 (ImageNet weak scaling vs Intel
// Caffe), Figures 6 and 8 (accuracy-versus-time method comparisons),
// Figure 10 (packed single-layer communication), Figure 12 (KNL chip
// partitioning) and Figure 13 (weak-scaling benefit), plus the §7.2
// batch-size study, a co-design ablation, and two model extensions: the
// "scale" thousand-node sweeps (size-only collectives and weak scaling to
// P=1024) and the "faults" failure-scenario battery (stragglers, degraded
// links, fail-stop recovery). Each experiment produces a Report of
// formatted tables; cmd/scaledl-bench prints them and bench_test.go wraps
// them as benchmarks.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Options controls experiment execution.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Scale multiplies iteration budgets and dataset sizes: 1.0 reproduces
	// the default (seconds-scale) runs, smaller values give quick smoke
	// runs, larger values sharpen the curves. Default 1.0.
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

// scaled returns max(1, round(n·Scale)).
func (o Options) scaled(n int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Report is one experiment's output.
type Report struct {
	ID       string
	Title    string
	PaperRef string
	Tables   []*Table
	Notes    []string
}

// AddNote appends a free-form note rendered after the tables.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// NewTable creates a table, registers it on the report and returns it.
func (r *Report) NewTable(title string, columns ...string) *Table {
	t := &Table{Title: title, Columns: columns}
	r.Tables = append(r.Tables, t)
	return t
}

// Format renders the report as aligned text.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s (%s) ===\n", r.ID, r.Title, r.PaperRef)
	for _, t := range r.Tables {
		fmt.Fprintln(w)
		t.Format(w)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	r.Format(&sb)
	return sb.String()
}

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row of %d cells for %d columns in %q", len(cells), len(t.Columns), t.Title))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "-- %s --\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Cell returns the cell at (row, col) for tests and post-processing.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }
