package harness

import (
	"fmt"

	"scaledl/internal/core"
	"scaledl/internal/data"
	"scaledl/internal/nn"
)

// convHeavyDef is a conv-dominated stand-in (three widening conv blocks, a
// 10-unit head): ~93% of its parameters sit in conv layers, whose gradients
// have no sufficient-factor form — the workload where hybrid communication
// must degrade gracefully to the dense allreduce.
func convHeavyDef() nn.NetDef {
	return nn.NetDef{
		Name:    "convheavy",
		In:      nn.Shape{C: 3, H: 16, W: 16},
		Classes: 10,
		Specs: []nn.LayerSpec{
			{Kind: "conv", Filters: 16, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "conv", Filters: 32, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "conv", Filters: 64, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "dense", Units: 10},
		},
	}
}

// RunHybrid is the hybrid-communication study (Poseidon's sufficient-factor
// broadcasting): the same training run under the three gradient transports —
// dense (every layer allreduces F·D+F elements), sfb (every dense layer
// allgathers its B·(F+D) sufficient factors and each receiver reconstructs
// Σₚ dYₚᵀ·Xₚ locally), and hybrid (the per-layer winner of the analytic α-β
// cost model, core.SelectCommModes). The first table prints the selector's
// per-layer verdicts at the fc-heavy operating point — conv layers have no
// factor form and stay dense; the big fc block crosses over to factors. The
// sweep tables then measure what the choice buys end to end: wire bytes and
// step time across batch size and party count on an fc-heavy net (LeNet, 93%
// of parameters in one 500×800 block) and a conv-heavy net (where hybrid
// degrades to dense). Every row of one (net, B, P) group trains to the same
// FinalLoss bit for bit: the transports move different bytes, never
// different sums.
func RunHybrid(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:       "hybrid",
		Title:    "Hybrid communication: sufficient-factor broadcasting vs dense allreduce",
		PaperRef: "Section 5.1 (communication); Poseidon (Zhang et al.) hybrid communication",
	}
	iters := o.scaled(4)

	mnistTrain, mnistTest, _ := mnistWorkload(o)
	cifarTrain, cifarTest, _ := cifarWorkload(o)
	cfgFor := func(def nn.NetDef, train, test *data.Dataset, batch, workers int, mode core.CommMode) core.Config {
		return core.Config{
			Def:        def,
			Train:      train,
			Test:       test,
			Workers:    workers,
			Batch:      batch,
			LR:         0.01,
			Iterations: iters,
			Seed:       o.Seed,
			Platform:   gpuPlatform(true),
			CommMode:   mode,
		}
	}

	// Per-layer selector verdicts at the fc-heavy operating point: the
	// crossover the sweep below realizes, straight from the cost model.
	selCfg := cfgFor(nnLeNet(), mnistTrain, mnistTest, 32, 8, core.CommHybrid)
	sel, err := core.SelectCommModes(selCfg)
	if err != nil {
		return nil, err
	}
	t1 := r.NewTable(fmt.Sprintf("per-layer transport selection (LeNet, B=32, P=%d, hybrid mode)", sel.Workers),
		"layer", "kind", "elems", "transport", "dense bytes", "sfb bytes", "dense(µs)", "sfb(µs)")
	for _, c := range sel.Choices {
		if !c.SFBOK {
			t1.AddRow(fmt.Sprintf("%d", c.Layer), c.Kind, fmt.Sprintf("%d", c.Elems),
				"dense (no factor form)", fmt.Sprintf("%d", c.DenseBytes), "-",
				fmt.Sprintf("%.1f", c.DenseTime*1e6), "-")
			continue
		}
		transport := "dense"
		if c.UseSFB {
			transport = "sfb"
		}
		t1.AddRow(fmt.Sprintf("%d", c.Layer), c.Kind, fmt.Sprintf("%d", c.Elems), transport,
			fmt.Sprintf("%d", c.DenseBytes), fmt.Sprintf("%d", c.SFBBytes),
			fmt.Sprintf("%.1f", c.DenseTime*1e6), fmt.Sprintf("%.1f", c.SFBTime*1e6))
	}

	// End-to-end sweep: wire bytes and step time per transport across the
	// batch/party grid. Factor wire grows with B (P(P−1)·4·B(F+D)) while
	// dense wire is B-independent, so the big-batch rows walk the fc block
	// back across the crossover.
	sweep := func(t *Table, def nn.NetDef, train, test *data.Dataset, points [][2]int) error {
		for _, pt := range points {
			batch, workers := pt[0], pt[1]
			var dense core.Result
			for _, mode := range []core.CommMode{core.CommDense, core.CommSFB, core.CommHybrid} {
				res, err := core.SyncSGD(cfgFor(def, train, test, batch, workers, mode))
				if err != nil {
					return err
				}
				if mode == core.CommDense {
					dense = res
				}
				mathCell := "ok"
				if res.FinalLoss != dense.FinalLoss {
					mathCell = "MATH DIVERGED"
				}
				fi := float64(iters)
				t.AddRow(fmt.Sprintf("%d", batch), fmt.Sprintf("%d", workers), mode.String(),
					fmt.Sprintf("%d", res.Breakdown.ParamTraffic()/int64(iters)),
					fmt.Sprintf("%.3f", res.SimTime/fi*1e3),
					fmt.Sprintf("%.2fx", dense.SimTime/res.SimTime),
					mathCell)
			}
		}
		return nil
	}
	t2 := r.NewTable("fc-heavy net (LeNet, 431K params, 93% in fc500)",
		"B", "P", "mode", "wire/iter(B)", "step(ms)", "vs dense", "math")
	if err := sweep(t2, nnLeNet(), mnistTrain, mnistTest, [][2]int{{8, 4}, {32, 8}, {64, 8}}); err != nil {
		return nil, err
	}
	t3 := r.NewTable("conv-heavy net (convheavy, 24K params, 93% in conv)",
		"B", "P", "mode", "wire/iter(B)", "step(ms)", "vs dense", "math")
	if err := sweep(t3, convHeavyDef(), cifarTrain, cifarTest, [][2]int{{8, 4}, {32, 8}}); err != nil {
		return nil, err
	}

	r.AddNote("fc-heavy: the fc500 block (400K of 431K params) ships as B·(F+D) factors, cutting wire by ~F·D/(B·(F+D)) at small B; as B grows the factor payload overtakes the dense gradient and hybrid hands the layer back to the allreduce — the per-layer crossover of Poseidon's hybrid communication")
	r.AddNote("conv-heavy: conv gradients have no low-rank factor form and always ride the allreduce; only the tiny head is factor-eligible, so there is no fc win to collect and every transport lands within a few percent of dense (the per-layer cost model does not amortize the packed allreduce's shared α across layers, so it may route a small head to factors for a marginal realized loss)")
	r.AddNote("math column: every transport reconstructs the identical gradient sum (ascending-rank reconstruction mirrors the allreduce's ordered sum), so FinalLoss is bit-identical across each (B, P) group")
	return r, nil
}
