package harness

import (
	"fmt"

	"scaledl/internal/core"
)

// The faults experiment exercises the failure-scenario knobs (core.FaultPlan
// and Platform.LinkScale) across the four algorithm families — round-robin,
// synchronous, asynchronous and hierarchical EASGD — under one scenario
// battery:
//
//	straggler  — rank 1 computes 4x slower for the whole run
//	weak link  — host, peer and fabric links degraded 3x
//	fail+ckpt  — rank 0 fail-stops mid-run and recovers from the latest
//	             periodic checkpoint (reload + replay)
//
// Faults are timing-only: every knob stretches delays or inserts stalls and
// never touches the gradient math, so for the deterministic schedules the
// faulty run's losses and accuracies are bit-identical to the clean twin's
// (the "math" column). The asynchronous family may reorder master service
// under a straggler, so only its slowdown is meaningful there.

// faultFamilies picks one representative per family. The round-robin entry
// is the serial variant: in the overlapped one a straggler's compute hides
// behind the master's exchanges with the other workers. Round-robin
// worker-local steps advance once per master sweep, so its fail step is
// scaled down by the worker count.
var faultFamilies = []struct {
	name      string
	family    string
	exactMath bool
	stepDiv   int // worker-local steps per run = iterations / stepDiv
}{
	{"original-easgd*", "round-robin", true, 4},
	{"sync-easgd3", "synchronous", true, 1},
	{"async-easgd", "asynchronous", false, 1},
	{"hier-sync-easgd", "hierarchical", true, 1},
}

// RunFaults regenerates the failure-scenario study.
func RunFaults(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:       "faults",
		Title:    "Failure scenarios: stragglers, degraded links, fail-stop recovery",
		PaperRef: "Section 7 (robustness discussion); model extension",
	}
	iters := o.scaled(40)

	t := r.NewTable("simulated wall-clock under faults (ms; same math unless noted)",
		"method", "family", "clean", "straggler 4x", "link 3x", "fail+ckpt", "recovery", "math")
	for _, f := range faultFamilies {
		mk := func() core.Config {
			cfg := baseConfig(o, iters, true)
			if f.name == "hier-sync-easgd" {
				cfg.Nodes, cfg.GPUsPerNode = 2, 2
			}
			return cfg
		}
		run := func(mut func(*core.Config)) (core.Result, error) {
			cfg := mk()
			mut(&cfg)
			res, err := core.Methods[f.name](cfg)
			if err != nil {
				return core.Result{}, fmt.Errorf("%s: %w", f.name, err)
			}
			return res, nil
		}

		clean, err := run(func(*core.Config) {})
		if err != nil {
			return nil, err
		}
		straggler, err := run(func(cfg *core.Config) {
			cfg.Faults = core.FaultPlan{StragglerFactor: 4, StragglerRanks: []int{1}}
		})
		if err != nil {
			return nil, err
		}
		link, err := run(func(cfg *core.Config) {
			cfg.Platform.LinkScale = map[string]float64{"host": 3, "peer": 3, "fabric": 3}
		})
		if err != nil {
			return nil, err
		}
		failStep := maxInt(2, iters/2/f.stepDiv)
		failed, err := run(func(cfg *core.Config) {
			cfg.Faults = core.FaultPlan{
				FailRank:        0,
				FailAtStep:      failStep,
				CheckpointEvery: maxInt(2, failStep/2),
			}
		})
		if err != nil {
			return nil, err
		}

		math := "bit-identical"
		if !f.exactMath {
			math = "may reorder"
		} else {
			for _, res := range []core.Result{straggler, link, failed} {
				if res.FinalLoss != clean.FinalLoss || res.FinalAcc != clean.FinalAcc {
					return nil, fmt.Errorf("%s: fault changed the math (loss %v vs %v)",
						f.name, res.FinalLoss, clean.FinalLoss)
				}
			}
		}
		t.AddRow(f.name, f.family,
			fmt.Sprintf("%.1f", clean.SimTime*1e3),
			fmt.Sprintf("%.1f (%.2fx)", straggler.SimTime*1e3, straggler.SimTime/clean.SimTime),
			fmt.Sprintf("%.1f (%.2fx)", link.SimTime*1e3, link.SimTime/clean.SimTime),
			fmt.Sprintf("%.1f (%.2fx)", failed.SimTime*1e3, failed.SimTime/clean.SimTime),
			fmt.Sprintf("%.2f", failed.Breakdown.Times[core.CatRecovery]*1e3),
			math)
	}
	r.AddNote("faults are timing-only: deterministic schedules reproduce the clean run's losses and accuracies bit-for-bit while paying the stalls in simulated time")
	r.AddNote("round-robin recovery shows 0 by design — the master's ordered collect absorbs the stall as exposed compute wait, keeping its breakdown sum-exact")
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
