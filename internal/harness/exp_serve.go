package harness

import (
	"fmt"
	"time"

	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/serve"
	"scaledl/internal/serve/loadgen"
)

// RunServing measures the inference side of the system: a trained model
// behind the micro-batching admission queue (internal/serve), driven by
// the open-loop load generator across a sweep of offered rates. The sweep
// is calibrated from the measured forward times, so the table always
// brackets the batching knee: below saturation the batcher coalesces just
// enough to keep p50 near one MaxDelay; past saturation the queue fills,
// the shed rate climbs and p99 pins at the queue's drain time. The closing
// row is the closed-loop capacity at the same concurrency for contrast.
func RunServing(o Options) (*Report, error) {
	o = o.withDefaults()
	train, test, def := mnistWorkload(o)
	model := trainServingModel(o, train, def)

	const (
		maxBatch = 16
		maxDelay = 2 * time.Millisecond
	)
	cfg := serve.BatchConfig{MaxBatch: maxBatch, MaxDelay: maxDelay}
	b, err := serve.NewBatcher(model, cfg)
	if err != nil {
		return nil, err
	}
	defer b.Drain()

	// Calibrate the sweep: a full batch amortizes one forward over
	// maxBatch requests, so saturation sits near maxBatch/t(batch).
	soloT, batchT := forwardTimes(model, maxBatch)
	capacity := float64(maxBatch) / batchT.Seconds()

	r := &Report{
		ID:       "serving",
		Title:    "Batched inference serving: latency and shed rate vs offered load",
		PaperRef: "ROADMAP serving leg; Poseidon (system boundary incl. serving)",
	}
	r.AddNote("model %s (%d params), batch-1 forward %.3fms, batch-%d forward %.3fms (%.1fx amortization), calibrated capacity %.0f req/s",
		def.Name, model.ParamCount(), ms(soloT), maxBatch, ms(batchT),
		float64(maxBatch)*soloT.Seconds()/batchT.Seconds(), capacity)

	t := r.NewTable(
		fmt.Sprintf("open loop, MaxBatch=%d MaxDelay=%v QueueBound=%d", maxBatch, maxDelay, b.Config().QueueBound),
		"offered(req/s)", "achieved", "p50(ms)", "p99(ms)", "p99.9(ms)", "mean batch", "shed%")

	dur := time.Duration(float64(400*time.Millisecond) * o.Scale)
	if dur < 100*time.Millisecond {
		dur = 100 * time.Millisecond
	}
	for _, mult := range []float64{0.25, 0.5, 1, 1.5, 2} {
		before := b.Stats()
		res := loadgen.Run(b.Do, loadgen.Options{
			Dim:         model.InputDim(),
			Classes:     model.Classes(),
			Duration:    dur,
			Rate:        mult * capacity,
			Concurrency: 4 * maxBatch,
			Seed:        o.Seed,
		})
		after := b.Stats()
		t.AddRow(
			fmt.Sprintf("%.0f (%.2fx)", res.Offered, mult),
			fmt.Sprintf("%.0f", res.Achieved),
			fmt.Sprintf("%.2f", ms(res.P50)),
			fmt.Sprintf("%.2f", ms(res.P99)),
			fmt.Sprintf("%.2f", ms(res.P999)),
			meanBatch(before, after),
			fmt.Sprintf("%.1f", res.ShedRate()*100),
		)
	}

	closed := loadgen.Run(b.Do, loadgen.Options{
		Dim:         model.InputDim(),
		Classes:     model.Classes(),
		Duration:    dur,
		Concurrency: 4 * maxBatch,
		Seed:        o.Seed,
	})
	t.AddRow(
		fmt.Sprintf("%.0f (closed)", closed.Offered),
		fmt.Sprintf("%.0f", closed.Achieved),
		fmt.Sprintf("%.2f", ms(closed.P50)),
		fmt.Sprintf("%.2f", ms(closed.P99)),
		fmt.Sprintf("%.2f", ms(closed.P999)),
		"-",
		fmt.Sprintf("%.1f", closed.ShedRate()*100),
	)

	quantNote(r, model, test)
	r.AddNote("the knee: below capacity the batcher trades one MaxDelay of waiting for amortized forwards and sheds nothing; past it the queue saturates and backpressure (shed%%) absorbs the overload instead of latency growing without bound")
	return r, nil
}

// trainServingModel trains the workload model just far enough that logits
// are meaningful; serving timing does not depend on accuracy.
func trainServingModel(o Options, train *data.Dataset, def nn.NetDef) *nn.Model {
	net := def.Build(o.Seed)
	s := data.NewSampler(train, o.Seed+1)
	var batch *data.Batch
	for i := 0; i < o.scaled(30); i++ {
		batch = s.Next(32, batch)
		net.ZeroGrad()
		net.LossAndGrad(batch.X, batch.Labels, 32)
		net.SGDStep(0.05)
	}
	return nn.NewModel(net)
}

// forwardTimes measures the model's batch-1 and batch-n forward times.
func forwardTimes(m *nn.Model, n int) (solo, batch time.Duration) {
	in := make([]float32, n*m.InputDim())
	out := make([]float32, n*m.Classes())
	_ = m.PredictInto(in, n, out)
	_ = m.PredictInto(in[:m.InputDim()], 1, out[:m.Classes()])
	const reps = 10
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		_ = m.PredictInto(in[:m.InputDim()], 1, out[:m.Classes()])
	}
	solo = time.Since(t0) / reps
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		_ = m.PredictInto(in, n, out)
	}
	batch = time.Since(t0) / reps
	return solo, batch
}

// meanBatch reports the mean coalesced batch size between two stat
// snapshots.
func meanBatch(before, after serve.Stats) string {
	db := after.Batches - before.Batches
	ds := after.Served - before.Served
	if db == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(ds)/float64(db))
}

// quantNote appends the int8 footprint/accuracy comparison to the report.
func quantNote(r *Report, m *nn.Model, test *data.Dataset) {
	evalN := len(test.Labels)
	if evalN > 256 {
		evalN = 256
	}
	if evalN == 0 {
		return
	}
	dim := m.InputDim()
	fp32Acc := m.Evaluate(test.Images[:evalN*dim], test.Labels[:evalN], 64)
	m.QuantizeInt8()
	int8Acc := m.Evaluate(test.Images[:evalN*dim], test.Labels[:evalN], 64)
	r.AddNote("int8 post-training quantization: accuracy %.3f -> %.3f on %d held-out samples, snapshot ~4x smaller (weights 1 byte each)",
		fp32Acc, int8Acc, evalN)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
