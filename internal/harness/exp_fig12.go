package harness

import (
	"fmt"

	"scaledl/internal/hw"
	"scaledl/internal/knl"
)

// RunFig12 reproduces Figure 12: partitioning one KNL chip into 1/4/8/16
// groups and training AlexNet-on-CIFAR to a fixed accuracy. A fixed total
// batch of 64 samples per round is split across the groups, so the SGD
// semantics are identical at every partition count; what changes is
// throughput — a 68-core chip-wide BLAS pass on one small batch runs far
// below linear core scaling, while small NUMA-local groups run near-
// linearly (the §6.2 mechanism: "make full use of the fast memory and
// reduce communication"). The executed network is the CIFAR TinyCNN
// stand-in; the time model carries the paper's true footprints (AlexNet
// 249 MB replicas, a 687 MB CIFAR copy per group, AlexNet-scale FLOPs).
//
// Paper numbers: 1605 s (1 part) → 1025 s (4) → 823 s (8) → 490 s (16) to
// accuracy 0.625, a 3.3× total speedup, with 16 parts the MCDRAM-fit
// limit. The sweep extends to 32 parts to show the spill penalty the paper
// predicts.
func RunFig12(o Options) (*Report, error) {
	o = o.withDefaults()
	train, test, def := cifarWorkload(o)
	chip := hw.NewKNL7250(0.1)
	const target = 0.75
	const totalBatch = 64

	parts := []int{1, 4, 8, 16, 32}
	var results []knl.Result
	for _, p := range parts {
		cfg := knl.Config{
			Chip:      chip,
			Parts:     p,
			Def:       def,
			Train:     train,
			Test:      test,
			Batch:     totalBatch / p, // fixed total batch per round
			LR:        0.05,
			Rounds:    o.scaled(1200),
			TargetAcc: target,
			Seed:      o.Seed,
			EvalEvery: 2,
			// The paper's Figure 12 workload footprints and scale.
			WeightBytes:    249 << 20,
			DataCopyBytes:  687 << 20,
			FLOPsPerSample: 360e6, // ≈3× AlexNet-on-CIFAR forward FLOPs
		}
		res, err := knl.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("parts=%d: %w", p, err)
		}
		results = append(results, res)
	}

	r := &Report{ID: "fig12", Title: "KNL chip partitioning", PaperRef: "Figure 12"}
	t := r.NewTable(fmt.Sprintf("time to accuracy %.2f, total batch %d split over partitions", target, totalBatch),
		"Parts", "fits MCDRAM", "round cost(s)", "rounds", "time(s)", "speedup vs 1 part", "paper speedup")
	paper := map[int]string{1: "1.00x (1605s)", 4: "1.57x (1025s)", 8: "1.95x (823s)", 16: "3.27x (490s)", 32: "- (beyond fit limit)"}
	baseRes := results[0]
	for _, res := range results {
		tt := res.TimeToTarget
		timeCell, speedCell := "not reached", "-"
		if tt > 0 {
			timeCell = fmt.Sprintf("%.2f", tt)
			if s := knl.SpeedupToTarget(baseRes, res); s == s { // not NaN
				speedCell = fmt.Sprintf("%.2fx", s)
			}
		}
		t.AddRow(fmt.Sprintf("%d", res.Parts),
			fmt.Sprintf("%v", res.Cost.FitsMCDRAM),
			fmt.Sprintf("%.4f", res.Cost.Total()),
			fmt.Sprintf("%d", res.Rounds),
			timeCell, speedCell, paper[res.Parts])
	}

	t2 := r.NewTable("per-round cost model components", "Parts", "arithmetic(s)", "sync(s)", "reduce(s)", "memory floor(s)", "effective BW (GB/s)")
	for _, res := range results {
		c := res.Cost
		t2.AddRow(fmt.Sprintf("%d", res.Parts),
			fmt.Sprintf("%.4f", c.Arithmetic), fmt.Sprintf("%.5f", c.Sync),
			fmt.Sprintf("%.5f", c.Reduce), fmt.Sprintf("%.4f", c.Memory),
			fmt.Sprintf("%.0f", c.BW/1e9))
	}

	maxFit := knl.MaxPartsFittingMCDRAM(chip, 249<<20, 687<<20)
	r.AddNote("MCDRAM fit limit: %d copies of weight+data (paper: \"MCDRAM can hold at most 16 copies\")", maxFit)
	r.AddNote("paper: 3.3x speedup at 16 parts (1605s -> 490s to accuracy 0.625); the 32-part row shows the MCDRAM spill the paper's limit predicts")
	return r, nil
}
