package harness

import (
	"fmt"

	"scaledl/internal/hw"
	"scaledl/internal/knl"
)

// RunKNLModes sweeps the two KNL configuration axes the paper's §2.1
// describes — MCDRAM mode (cache/flat/hybrid, Figure 2) and cluster mode
// (all-to-all/quadrant/SNC-4) — over the Figure 12 partitioned workload.
// The paper motivates its §6.2 design with these modes ("we partition the
// KNL chip into 4 parts like Quad or SNC-4 mode"); this ablation shows how
// much each axis contributes.
func RunKNLModes(o Options) (*Report, error) {
	o = o.withDefaults()
	train, test, def := cifarWorkload(o)

	base := knl.Config{
		Def:            def,
		Train:          train,
		Test:           test,
		Parts:          16,
		Batch:          4, // 64-sample total batch over 16 groups
		LR:             0.05,
		Rounds:         o.scaled(200),
		Seed:           o.Seed,
		EvalEvery:      10,
		WeightBytes:    249 << 20,
		DataCopyBytes:  687 << 20,
		FLOPsPerSample: 360e6,
	}

	r := &Report{ID: "knlmodes", Title: "MCDRAM and cluster-mode ablation", PaperRef: "§2.1 / §6.2"}

	// Axis 1: MCDRAM modes for fitting (16-part) and spilling (32-part)
	// footprints. Flat > cache > spilled for bandwidth.
	t1 := r.NewTable("MCDRAM mode vs per-round cost (16 parts fit; 32 parts spill)",
		"MCDRAM mode", "parts", "fits", "effective BW (GB/s)", "round cost(s)")
	for _, mode := range []hw.MCDRAMMode{hw.MCDRAMCache, hw.MCDRAMFlat, hw.MCDRAMHybrid} {
		for _, parts := range []int{16, 32} {
			cfg := base
			cfg.Chip = hw.NewKNL7250(0.1)
			cfg.Chip.MCMode = mode
			cfg.Parts = parts
			cfg.Batch = 64 / parts
			cost, err := knl.PerRoundCost(cfg)
			if err != nil {
				return nil, err
			}
			t1.AddRow(mode.String(), fmt.Sprintf("%d", parts), fmt.Sprintf("%v", cost.FitsMCDRAM),
				fmt.Sprintf("%.0f", cost.BW/1e9), fmt.Sprintf("%.4f", cost.Total()))
		}
	}

	// Axis 2: cluster modes change the on-chip mesh latency of the gradient
	// combine; SNC-4 (NUMA-pinned, the §6.2 design) is fastest.
	t2 := r.NewTable("cluster mode vs gradient-combine cost (16 parts)",
		"Cluster mode", "reduce(s)", "round cost(s)")
	for _, mode := range []hw.ClusterMode{hw.ClusterAll2All, hw.ClusterQuadrant, hw.ClusterSNC4} {
		cfg := base
		cfg.Chip = hw.NewKNL7250(0.1)
		cfg.Chip.CLMode = mode
		cost, err := knl.PerRoundCost(cfg)
		if err != nil {
			return nil, err
		}
		t2.AddRow(mode.String(), fmt.Sprintf("%.5f", cost.Reduce), fmt.Sprintf("%.4f", cost.Total()))
	}

	r.AddNote("flat mode streams at full MCDRAM bandwidth while the footprint fits; cache mode pays a tag overhead; hybrid halves the capacity")
	r.AddNote("SNC-4 keeps the §6.2 groups NUMA-local — the mode the paper's partitioning is designed around")
	return r, nil
}
