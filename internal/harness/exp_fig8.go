package harness

import (
	"fmt"
	"math"
	"sort"

	"scaledl/internal/core"
)

// fig8Methods lists the eight methods of Figure 8 in its legend order:
// four existing methods and four of the paper's.
var fig8Methods = []string{
	"original-easgd", "hogwild-sgd", "async-sgd", "async-msgd",
	"async-easgd", "async-measgd", "hogwild-easgd", "sync-easgd3",
}

// RunFig8 reproduces Figure 8: log10 error rate versus simulated training
// time for all methods on the same hardware and hyperparameters. The paper
// plots one point per independent run at increasing iteration budgets; we
// emit the probe curve of one run per method, which traces the same
// trajectory.
func RunFig8(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{ID: "fig8", Title: "Overall comparison", PaperRef: "Figure 8"}
	t := r.NewTable("log10 error-rate vs simulated time",
		"Method", "iters", "time(s)", "accuracy", "log10(error)")

	finals := map[string]core.Result{}
	for _, m := range fig8Methods {
		res, err := runCurve(o, m, m == "async-msgd" || m == "async-measgd")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		finals[m] = res
		for _, pt := range res.Curve {
			errRate := 1 - pt.TestAcc
			logErr := "-inf"
			if errRate > 0 {
				logErr = fmt.Sprintf("%.3f", math.Log10(errRate))
			}
			t.AddRow(m, fmt.Sprintf("%d", pt.Iter), fmt.Sprintf("%.4f", pt.SimTime),
				fmt.Sprintf("%.3f", pt.TestAcc), logErr)
		}
	}

	// Ranking by time to a common accuracy, the figure's qualitative story:
	// Sync EASGD and Hogwild EASGD essentially tied fastest.
	target := 0.90
	type rank struct {
		m  string
		tt float64
	}
	var ranks []rank
	for m, res := range finals {
		if tt := timeToAcc(res, target); tt > 0 {
			ranks = append(ranks, rank{m, tt})
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].tt < ranks[j].tt })
	t2 := r.NewTable(fmt.Sprintf("ranking by time to accuracy %.2f", target), "Rank", "Method", "time(s)")
	for i, rk := range ranks {
		t2.AddRow(fmt.Sprintf("%d", i+1), rk.m, fmt.Sprintf("%.4f", rk.tt))
	}
	r.AddNote("paper: Sync EASGD and Hogwild EASGD are essentially tied for fastest; every EASGD variant beats its SGD counterpart")
	return r, nil
}
