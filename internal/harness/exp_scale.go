package harness

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
)

// The scale experiment: the thousand-node sweeps the reworked sim/comm hot
// path exists for. Two views:
//
//  1. Collective scaling — one size-only allreduce of GoogleNet-scale
//     weights on composed PCIe+Aries clusters from 32 to 1024 parties,
//     hierarchical pairs against the flat binomial tree. This is the sweep
//     the direct-handoff kernel and the rule-based topology make cheap: a
//     P=1024 hierarchical allreduce simulates in single-digit real
//     milliseconds (pinned by BenchmarkAllReduceP1024 in BENCH_sim.json),
//     where the pre-rework engine took most of a second.
//  2. Weak scaling — the Algorithm 4 rank program in size-only mode
//     (core.KNLClusterWeakScaling) from 1 to 1024 KNL nodes, the
//     executable counterpart of Table 4's analytic model: per-iteration
//     time and parallel efficiency as the cluster grows with the work.
//
// At reduced Options.Scale the party counts are trimmed so smoke runs stay
// fast; full scale reaches P=1024 in both views.

// scaleShapes is the strong-scaling sweep: nodes × gpus up to 1024 parties.
var scaleShapes = []struct{ nodes, gpus int }{
	{4, 8}, {16, 8}, {64, 8}, {32, 32},
}

// scaleHierPairs are the hierarchical schedule pairs swept at scale.
var scaleHierPairs = []struct{ intra, inter comm.Schedule }{
	{comm.ScheduleTree, comm.ScheduleTree},
	{comm.ScheduleTree, comm.ScheduleRHD},
}

// RunScale regenerates the thousand-node scaling study.
func RunScale(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:       "scale",
		Title:    "Thousand-node sweeps: collectives and weak scaling to P=1024",
		PaperRef: "Sections 6.2, 7.1; Table 4 (cluster scale)",
	}
	maxParties := o.scaled(1024)

	// Collective scaling: hierarchical pairs vs the flat binomial tree (the
	// one flat schedule that is hierarchical in shape; ring and RHD flood
	// the per-node NICs long before this scale — the hier experiment shows
	// them at small P).
	nBytes := nn.GoogleNetCost().ParamBytes()
	t1 := r.NewTable(fmt.Sprintf("allreduce of %s (GoogleNet weights) on composed PCIe+Aries clusters, sim ms", byteSize(nBytes)),
		"parties", "cluster", "flat tree", "hier tree/tree", "hier tree/rhd", "best hier speedup")
	for _, sh := range scaleShapes {
		p := sh.nodes * sh.gpus
		if p > maxParties {
			r.AddNote("scale %.2f: sweep trimmed at %d parties (%dx%d and larger shapes skipped)",
				o.Scale, maxParties, sh.nodes, sh.gpus)
			break
		}
		flat := simulateFlatComposed(sh.nodes, sh.gpus, comm.ScheduleTree, nBytes)
		hier := make([]float64, len(scaleHierPairs))
		best := 0.0
		for i, pr := range scaleHierPairs {
			hier[i] = simulateHierComposed(sh.nodes, sh.gpus, pr.intra, pr.inter, nBytes)
			if i == 0 || hier[i] < best {
				best = hier[i]
			}
		}
		t1.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%dx%d", sh.nodes, sh.gpus),
			fmt.Sprintf("%.1f", flat*1e3),
			fmt.Sprintf("%.1f", hier[0]*1e3), fmt.Sprintf("%.1f", hier[1]*1e3),
			fmt.Sprintf("%.2fx", flat/best))
	}

	// Weak scaling: per-iteration time of the Algorithm 4 rank program as
	// nodes grow 4x per step with per-node work fixed. Efficiency is
	// t(1)/t(N) — the fraction of ideal weak scaling retained.
	const computePerIter = 0.25 // seconds of KNL compute per iteration (GoogleNet regime)
	const iters = 3
	t2 := r.NewTable("weak scaling of the KNL cluster EASGD round (size-only, Aries fabric)",
		"nodes", "iter(s)", "comm share", "efficiency")
	var t1node float64
	for _, nodes := range []int{1, 4, 16, 64, 256, 1024} {
		if nodes > maxParties {
			break
		}
		tIter, err := core.KNLClusterWeakScaling(nodes, nBytes, computePerIter, hw.Aries, iters)
		if err != nil {
			return nil, err
		}
		if nodes == 1 {
			t1node = tIter
		}
		t2.AddRow(fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%.3f", tIter),
			fmt.Sprintf("%.1f%%", (tIter-computePerIter)/tIter*100),
			fmt.Sprintf("%.2f", t1node/tIter))
	}
	r.AddNote("the whole sweep runs on the allocation-free direct-handoff kernel: P=1024 rows simulate in milliseconds of real time (gated by BENCH_sim.json)")
	return r, nil
}
