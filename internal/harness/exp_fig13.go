package harness

import (
	"fmt"

	"scaledl/internal/core"
)

// RunFig13 reproduces Figure 13: the benefit of using more machines and
// more data under weak scaling. Each KNL node holds one copy of the CIFAR
// workload and contributes a batch of 64 per round (Algorithm 4 /
// Communication-Efficient EASGD); with more nodes the run (1) reaches a
// target loss/accuracy in less time (the paper's horizontal line) and
// (2) reaches a better accuracy within a fixed time budget (the vertical
// line).
func RunFig13(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{ID: "fig13", Title: "Weak-scaling benefit: more machines and more data", PaperRef: "Figure 13"}
	curveT := r.NewTable("objective loss / accuracy vs simulated time", "Nodes", "round", "time(s)", "loss", "accuracy")

	nodes := []int{1, 2, 4, 8}
	results := map[int]core.Result{}
	for _, p := range nodes {
		train, test, def := cifarWorkload(o)
		cfg := core.Config{
			Def:        def,
			Train:      train,
			Test:       test,
			Workers:    p,
			Batch:      8,
			LR:         0.05,
			Iterations: o.scaled(200),
			Seed:       o.Seed,
			Platform:   knlClusterPlatform(),
			EvalEvery:  5,
		}
		res, err := core.SyncEASGD3(cfg)
		if err != nil {
			return nil, fmt.Errorf("nodes=%d: %w", p, err)
		}
		results[p] = res
		for _, pt := range res.Curve {
			curveT.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%d", pt.Iter),
				fmt.Sprintf("%.4f", pt.SimTime), fmt.Sprintf("%.4f", pt.Loss), fmt.Sprintf("%.3f", pt.TestAcc))
		}
	}

	// Horizontal cut: time to a common accuracy.
	target := 0.75
	t2 := r.NewTable(fmt.Sprintf("time to accuracy %.2f (horizontal line)", target), "Nodes", "time(s)")
	for _, p := range nodes {
		tt := timeToAcc(results[p], target)
		cell := "not reached"
		if tt > 0 {
			cell = fmt.Sprintf("%.4f", tt)
		}
		t2.AddRow(fmt.Sprintf("%d", p), cell)
	}

	// Vertical cut: best accuracy within an early single-node time budget
	// (a quarter of the single-node run, before it converges).
	var budget float64
	if res, ok := results[1]; ok && len(res.Curve) > 0 {
		budget = res.Curve[len(res.Curve)/4].SimTime
	}
	t3 := r.NewTable(fmt.Sprintf("accuracy within %.4fs (vertical line)", budget), "Nodes", "accuracy")
	for _, p := range nodes {
		best := 0.0
		for _, pt := range results[p].Curve {
			if pt.SimTime <= budget && pt.TestAcc > best {
				best = pt.TestAcc
			}
		}
		t3.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%.3f", best))
	}
	r.AddNote("paper: more machines+data give the target accuracy sooner and a higher accuracy in fixed time; each node holds one data copy, batch 64 per node")
	return r, nil
}
