package harness

import (
	"fmt"

	"scaledl/internal/core"
	"scaledl/internal/hw"
	"scaledl/internal/quant"
)

// RunLowPrecision implements the extension the paper defers to future work
// (§3.4): low-precision gradient representation to cut communication. Sync
// SGD runs on a bandwidth-starved interconnect (the paper's own Table 2
// 10GbE entry) with fp32, uint8 and 1-bit(+error feedback) gradients; the
// quantization error enters the real training, the wire volume enters the
// simulated time.
func RunLowPrecision(o Options) (*Report, error) {
	o = o.withDefaults()
	train, test, def := mnistWorkload(o)
	const target = 0.93

	r := &Report{ID: "lowprec", Title: "Low-precision gradient communication", PaperRef: "§3.4 (future work)"}
	t := r.NewTable(fmt.Sprintf("Sync SGD, 8 nodes on %s, to accuracy %.2f", hw.Intel10GbE.Name, target),
		"Scheme", "wire/iter", "compression", "time/iter(s)", "iters", "time to target(s)", "final acc")

	n := def.Build(0).ParamCount()
	for _, scheme := range []quant.Scheme{quant.None, quant.Uniform8, quant.OneBit} {
		cfg := core.Config{
			Def:        def,
			Train:      train,
			Test:       test,
			Workers:    8,
			Batch:      16,
			LR:         0.05,
			Iterations: o.scaled(300),
			Seed:       o.Seed,
			EvalEvery:  10,
			TargetAcc:  target,
			Platform: core.Platform{
				Worker:    hw.TeslaM40,
				Master:    hw.XeonE5,
				HostParam: hw.Intel10GbE,
				PeerParam: hw.Intel10GbE,
				Data:      hw.PCIePinned,
				Packed:    true,
			},
			Compression: scheme,
		}
		cfg.Platform.Worker.Eff = 0.04
		res, err := core.SyncSGD(cfg)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", scheme, err)
		}
		var tt float64
		iters := res.Iterations
		for _, pt := range res.Curve {
			if pt.TestAcc >= target {
				tt = pt.SimTime
				iters = pt.Iter
				break
			}
		}
		ttCell := "not reached"
		if tt > 0 {
			ttCell = fmt.Sprintf("%.4f", tt)
		}
		rounds := res.Iterations
		if len(res.Curve) > 0 {
			rounds = res.Curve[len(res.Curve)-1].Iter
		}
		perIter := res.SimTime / float64(max(1, rounds))
		t.AddRow(scheme.String(),
			byteSize(quant.WireBytes(scheme, n)),
			fmt.Sprintf("%.0fx", quant.CompressionRatio(scheme, n)),
			fmt.Sprintf("%.6f", perIter),
			fmt.Sprintf("%d", iters),
			ttCell,
			fmt.Sprintf("%.3f", res.FinalAcc))
	}
	r.AddNote("1-bit SGD (Seide et al. [22]) with error feedback: ~30x less traffic; the extra iterations from quantization error are far cheaper than the saved communication on slow links")
	return r, nil
}
