package harness

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/hw"
)

// RunTable2 reproduces Table 2: the α-β parameters of the three InfiniBand
// generations, plus derived transfer times that demonstrate the paper's
// observation that "β is much smaller than α, which is the major
// communication overhead" for the message sizes per-layer communication
// produces.
func RunTable2(o Options) (*Report, error) {
	r := &Report{ID: "table2", Title: "InfiniBand performance under the α-β model", PaperRef: "Table 2"}

	t := r.NewTable("α-β parameters", "Network", "alpha (latency)", "beta (1/bandwidth)")
	links := []hw.Link{hw.MellanoxFDR, hw.IntelQDR, hw.Intel10GbE}
	for _, l := range links {
		t.AddRow(l.Name, fmt.Sprintf("%.1e s", l.Alpha), fmt.Sprintf("%.1e s/B", l.Beta))
	}

	// Derived: transfer time per message size, showing the latency-bound
	// regime for small (per-layer) messages and the bandwidth-bound regime
	// for packed models.
	sizes := []int64{1 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20}
	cols := []string{"Message"}
	for _, l := range links {
		cols = append(cols, l.Name)
	}
	t2 := r.NewTable("transfer time by message size", cols...)
	for _, n := range sizes {
		row := []string{byteSize(n)}
		for _, l := range links {
			row = append(row, fmt.Sprintf("%.3g ms", l.Time(n)*1e3))
		}
		t2.AddRow(row...)
	}

	// α share of a 64 KiB (typical layer) message on each network.
	t3 := r.NewTable("latency share of a 64 KiB per-layer message", "Network", "alpha share")
	for _, l := range links {
		share := l.Alpha / l.Time(64<<10)
		t3.AddRow(l.Name, fmt.Sprintf("%.0f%%", share*100))
	}

	// Tree vs round-robin reduction of a LeNet-sized model (1.7 MB), the
	// Θ(log P) vs Θ(P) claim, on the FDR network.
	t4 := r.NewTable("reduce of 1.7MB model on FDR IB: round-robin Θ(P) vs tree Θ(log P)",
		"P", "round-robin (ms)", "tree (ms)", "speedup")
	for _, p := range []int{4, 16, 64, 256} {
		lin := comm.LinearReduceTime(hw.MellanoxFDR, 431080*4, p)
		tree := comm.TreeReduceTime(hw.MellanoxFDR, 431080*4, p)
		t4.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%.3f", lin*1e3),
			fmt.Sprintf("%.3f", tree*1e3), fmt.Sprintf("%.1fx", lin/tree))
	}
	r.AddNote("paper: β ≪ α makes one packed message cheaper than per-layer messages (§5.2)")
	return r, nil
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KiB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
