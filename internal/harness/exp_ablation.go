package harness

import (
	"fmt"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
)

// RunAblation isolates each co-design factor the paper stacks up in §5.2
// and §6.1, plus two design-space studies DESIGN.md calls out:
//
//  1. step-by-step speedup of the Sync EASGD chain at equal sample budgets
//     (tree reduction, then GPU-resident center, then overlap);
//  2. packed-vs-per-layer transfer cost on each Table 2 network for the
//     paper's real model sizes;
//  3. tree vs ring allreduce and their crossover, justifying the paper's
//     tree choice for latency-sensitive sizes.
func RunAblation(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{ID: "ablation", Title: "Co-design ablation", PaperRef: "Sections 5.2, 6.1"}

	// (1) Factor chain at equal samples: RR 4k iters ≡ sync k rounds.
	rounds := o.scaled(60)
	type step struct {
		name   string
		method string
		iters  int
		packed bool
		factor string
	}
	steps := []step{
		{"original-easgd (round-robin, per-layer, pageable)", "original-easgd", rounds * 4, false, "baseline"},
		{"+ tree reduction & packing (sync-easgd1)", "sync-easgd1", rounds, true, "Θ(P)→Θ(log P), 1 msg"},
		{"+ weights on GPU (sync-easgd2)", "sync-easgd2", rounds, true, "no host staging"},
		{"+ comm/compute overlap (sync-easgd3)", "sync-easgd3", rounds, true, "hide broadcast"},
	}
	t := r.NewTable("cumulative co-design factors (equal sample budgets)",
		"Configuration", "factor", "time(s)", "step speedup", "cumulative")
	var prev, base float64
	for i, s := range steps {
		cfg := baseConfig(o, s.iters, s.packed)
		res, err := core.Methods[s.method](cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.method, err)
		}
		tt := res.SimTime
		if i == 0 {
			base, prev = tt, tt
		}
		t.AddRow(s.name, s.factor, fmt.Sprintf("%.4f", tt),
			fmt.Sprintf("%.2fx", prev/tt), fmt.Sprintf("%.2fx", base/tt))
		prev = tt
	}
	r.AddNote("paper: Sync EASGD1 = 3.7x over Original EASGD, EASGD2 = 1.3x over EASGD1, EASGD3 = 1.1x over EASGD2 (5.3x total)")

	// (2) Packed vs per-layer transfers for the paper's real models on each
	// Table 2 interconnect.
	t2 := r.NewTable("one model transfer: per-layer vs packed (ms)",
		"Model", "Network", "per-layer", "packed", "speedup")
	models := []nn.ModelCost{nn.LeNetCost(), nn.AlexNetCost(), nn.GoogleNetCost(), nn.VGG19Cost()}
	for _, m := range models {
		var layerBytes []int64
		for _, s := range m.LayerParamSizes() {
			layerBytes = append(layerBytes, s*4)
		}
		for _, link := range []hw.Link{hw.MellanoxFDR, hw.Intel10GbE} {
			per := comm.Plan{LayerBytes: layerBytes, GatherBW: 6e9}.TransferTime(link)
			packed := comm.Plan{LayerBytes: layerBytes, Packed: true}.TransferTime(link)
			t2.AddRow(m.Name, link.Name,
				fmt.Sprintf("%.3f", per*1e3), fmt.Sprintf("%.3f", packed*1e3),
				fmt.Sprintf("%.2fx", per/packed))
		}
	}

	// (3) Tree vs ring allreduce crossover on FDR InfiniBand.
	t3 := r.NewTable("tree vs ring allreduce on FDR IB, P=16 (ms)",
		"size", "tree", "ring", "winner")
	for _, n := range []int64{64 << 10, 1 << 20, 28 << 20, 256 << 20, 575 << 20} {
		tree := comm.TreeAllReduceTime(hw.MellanoxFDR, n, 16)
		ring := comm.RingAllReduceTime(hw.MellanoxFDR, n, 16)
		winner := "tree"
		if ring < tree {
			winner = "ring"
		}
		t3.AddRow(byteSize(n), fmt.Sprintf("%.3f", tree*1e3), fmt.Sprintf("%.3f", ring*1e3), winner)
	}
	cross := comm.CrossoverBytes(hw.MellanoxFDR, 16)
	r.AddNote("the paper replaced the round-robin Θ(P) exchange with a tree, a %0.1fx win at P=16 regardless of size; the ring allreduce (not used by the paper) is a further bandwidth-side refinement that wins above %s on FDR",
		comm.LinearReduceTime(hw.MellanoxFDR, 1<<20, 16)/comm.TreeReduceTime(hw.MellanoxFDR, 1<<20, 16), byteSize(cross))

	// (4) The message-level engine: every allreduce schedule run as actual
	// simulated message waves (selected by name), next to its analytic
	// α-β oracle. The synchronized schedules match the oracle exactly on
	// the contention-free fabric; the pipelined chain has no closed form —
	// its chunk overlap is precisely what the formulas cannot express.
	t5 := r.NewTable("simulated allreduce schedules on FDR IB, P=16, LeNet |W| (ms)",
		"schedule", "simulated", "analytic oracle")
	lenetBytes := int64(431080 * 4)
	for _, name := range comm.Schedules() {
		simT, err := SimulateAllReduce(name, hw.MellanoxFDR, lenetBytes, 16)
		if err != nil {
			return nil, err
		}
		sched, _ := comm.ParseSchedule(name)
		oracle := "-"
		if an, ok := sched.AnalyticAllReduceTime(hw.MellanoxFDR, lenetBytes, 16); ok {
			oracle = fmt.Sprintf("%.4f", an*1e3)
		}
		t5.AddRow(name, fmt.Sprintf("%.4f", simT*1e3), oracle)
	}

	// (5) Hierarchical (two-level) allreduce on the paper's 16-node × 4-GPU
	// cluster shape: local PCIe-switch combine, then the fabric tree.
	t4 := r.NewTable("flat vs hierarchical allreduce, 16 nodes × 4 GPUs on FDR IB (ms)",
		"Model", "flat over fabric", "hierarchical", "speedup")
	for _, m := range models {
		n := m.ParamBytes()
		flat := comm.TreeAllReduceTime(hw.MellanoxFDR, n, 64)
		hier := comm.HierarchicalAllReduceTime(hw.GPUPeer, hw.MellanoxFDR, n, 16, 4)
		t4.AddRow(m.Name, fmt.Sprintf("%.3f", flat*1e3), fmt.Sprintf("%.3f", hier*1e3),
			fmt.Sprintf("%.2fx", flat/hier))
	}
	r.AddNote("the hierarchy keeps only one rank per node on the fabric — the design of the paper's acknowledged multi-node multi-GPU follow-up")
	return r, nil
}
