package harness

import (
	"fmt"

	"scaledl/internal/hw"
	"scaledl/internal/knl"
)

// RunBatchImpact reproduces §7.2's batch-size discussion as a measured
// sweep: small batches underutilize the device (BLAS efficiency grows with
// batch), very large batches converge worse per sample (sharp-minima
// regime), so throughput-optimal and time-to-accuracy-optimal batch sizes
// differ. Real training supplies iterations-to-accuracy; the hardware model
// supplies per-iteration time scaled by hw.BatchEfficiency.
func RunBatchImpact(o Options) (*Report, error) {
	o = o.withDefaults()
	train, test, def := mnistWorkload(o)
	chip := hw.NewKNL7250(0.1)
	const target = 0.93

	r := &Report{ID: "batch", Title: "Impact of batch size", PaperRef: "Section 7.2"}
	t := r.NewTable(fmt.Sprintf("single KNL node, time to accuracy %.2f", target),
		"batch", "BLAS eff", "time/round(s)", "samples/s", "rounds to target", "time to target(s)")

	for _, b := range []int{8, 16, 32, 64, 128, 256} {
		eff := hw.BatchEfficiency(b)
		cfg := knl.Config{
			Chip:      chip,
			Parts:     1,
			Def:       def,
			Train:     train,
			Test:      test,
			Batch:     b,
			LR:        0.05,
			Rounds:    o.scaled(3000) / b * 8, // sample-fair budgets
			TargetAcc: target,
			Seed:      o.Seed,
			EvalEvery: 2,
		}
		// Scale the chip's achieved efficiency with the batch.
		cfg.Chip.Eff = 0.1 * eff
		res, err := knl.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("batch=%d: %w", b, err)
		}
		perRound := res.Cost.Total()
		rate := float64(b) / perRound
		roundsCell, timeCell := "not reached", "-"
		if res.TimeToTarget > 0 {
			roundsCell = fmt.Sprintf("%d", res.Rounds)
			timeCell = fmt.Sprintf("%.3f", res.TimeToTarget)
		}
		t.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%.2f", eff),
			fmt.Sprintf("%.5f", perRound), fmt.Sprintf("%.0f", rate),
			roundsCell, timeCell)
	}
	r.AddNote("paper: increasing batch up to ~1024 speeds training via BLAS efficiency; beyond ~4096 convergence needs more epochs (sharp minima [12]); medium batches need lr/momentum retuning")
	return r, nil
}
