package harness

import (
	"fmt"
	"math"

	"scaledl/internal/core"
)

// fig6Budget returns the iteration budget and probe interval for a method:
// round-robin and asynchronous methods count single-batch master
// interactions, sync methods count 4-batch rounds, so budgets are scaled to
// equal sample counts.
func fig6Budget(o Options, method string) (iters, every int) {
	switch method {
	case "sync-easgd1", "sync-easgd2", "sync-easgd3", "sync-sgd":
		return o.scaled(120), 12
	default:
		return o.scaled(480), 48
	}
}

// runCurve trains one method and returns its accuracy-over-time curve. The
// learning rate is the same for both methods of a panel (the paper keeps
// hyperparameters equal within each comparison): η=0.08 puts asynchronous
// SGD near its staleness-amplified stability edge — the HPC regime the
// paper studies, where elastic averaging shows its advantage — while
// momentum panels use η=0.01 because µ=0.9 multiplies the effective step.
func runCurve(o Options, method string, momLR bool) (core.Result, error) {
	iters, every := fig6Budget(o, method)
	cfg := baseConfig(o, iters, true)
	cfg.LR = 0.08
	if method == "original-easgd" || method == "original-easgd*" {
		cfg.Platform = gpuPlatform(false) // the legacy implementation's platform
	}
	if momLR {
		cfg.LR = 0.01
	}
	cfg.EvalEvery = every
	return core.Methods[method](cfg)
}

// runFig6Panel builds one panel of Figure 6: two methods, accuracy versus
// simulated time, equal hardware and hyperparameters.
func runFig6Panel(id, ours, baseline string) func(Options) (*Report, error) {
	return func(o Options) (*Report, error) {
		o = o.withDefaults()
		momentum := ours == "async-measgd"
		r := &Report{ID: id, Title: ours + " vs " + baseline, PaperRef: "Figure 6"}
		t := r.NewTable("accuracy vs simulated time", "Method", "iters", "time(s)", "test accuracy")
		summary := map[string]core.Result{}
		for _, m := range []string{baseline, ours} {
			res, err := runCurve(o, m, momentum)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m, err)
			}
			summary[m] = res
			for _, pt := range res.Curve {
				t.AddRow(m, fmt.Sprintf("%d", pt.Iter), fmt.Sprintf("%.4f", pt.SimTime), fmt.Sprintf("%.3f", pt.TestAcc))
			}
		}
		// Headline: time for each method to reach the accuracy both achieved.
		target := math.Min(summary[ours].FinalAcc, summary[baseline].FinalAcc) * 0.98
		t2 := r.NewTable(fmt.Sprintf("time to accuracy %.3f", target), "Method", "time(s)")
		ratio := make(map[string]float64)
		for _, m := range []string{baseline, ours} {
			tt := timeToAcc(summary[m], target)
			ratio[m] = tt
			cell := "not reached"
			if tt > 0 {
				cell = fmt.Sprintf("%.4f", tt)
			}
			t2.AddRow(m, cell)
		}
		if ratio[ours] > 0 && ratio[baseline] > 0 {
			r.AddNote("%s reaches the target %.2fx faster than %s (paper: our methods are faster in every panel)",
				ours, ratio[baseline]/ratio[ours], baseline)
		}
		return r, nil
	}
}

// timeToAcc returns the first curve time reaching acc (0 if never).
func timeToAcc(res core.Result, acc float64) float64 {
	for _, pt := range res.Curve {
		if pt.TestAcc >= acc {
			return pt.SimTime
		}
	}
	return 0
}
