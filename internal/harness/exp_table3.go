package harness

import (
	"fmt"

	"scaledl/internal/core"
)

// table3Target is the common test accuracy every EASGD variant must reach,
// the analogue of the paper's 0.988 on MNIST.
const table3Target = 0.95

// table3Row is one method's measurement.
type table3Row struct {
	name    string
	res     core.Result
	timeTo  float64 // simulated seconds to table3Target
	itersTo int     // master iterations to target
	reached bool
}

// runTable3Methods executes the five Table 3 rows: the two Original EASGD
// baselines on the legacy (per-layer, pageable) platform and the three Sync
// EASGD co-design steps on the packed platform, all to the same target
// accuracy. Round-robin interactions process one minibatch; sync rounds
// process four, so round-robin budgets are 4× larger plus slack for its
// slower convergence.
func runTable3Methods(o Options) ([]table3Row, error) {
	type spec struct {
		name   string
		iters  int
		every  int
		packed bool
	}
	specs := []spec{
		{"original-easgd*", o.scaled(1400), 25, false},
		{"original-easgd", o.scaled(1400), 25, false},
		{"sync-easgd1", o.scaled(350), 5, true},
		{"sync-easgd2", o.scaled(350), 5, true},
		{"sync-easgd3", o.scaled(350), 5, true},
	}
	var rows []table3Row
	for _, s := range specs {
		cfg := baseConfig(o, s.iters, s.packed)
		cfg.EvalEvery = s.every
		cfg.TargetAcc = table3Target // stop at the common accuracy, like the paper
		res, err := core.Methods[s.name](cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		row := table3Row{name: s.name, res: res}
		for _, pt := range res.Curve {
			if pt.TestAcc >= table3Target {
				row.timeTo = pt.SimTime
				row.itersTo = pt.Iter
				row.reached = true
				break
			}
		}
		if !row.reached {
			// Fall back to the full run so the table still renders.
			row.timeTo = res.SimTime
			row.itersTo = res.Iterations
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTable3 reproduces Table 3: time and exposed-time breakdown for the
// EASGD variants at equal accuracy, with the comm-ratio collapse and the
// speedup over Original EASGD.
func RunTable3(o Options) (*Report, error) {
	o = o.withDefaults()
	rows, err := runTable3Methods(o)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "table3", Title: "Breakdown of time for EASGD variants", PaperRef: "Table 3"}
	t := r.NewTable(
		fmt.Sprintf("MNIST-regime, 4 GPUs, to test accuracy %.2f (simulated platform times)", table3Target),
		"Method", "accuracy", "iterations", "time(s)",
		"gpu-gpu para", "cpu-gpu data", "cpu-gpu para", "for/backward", "gpu update", "cpu update",
		"comm ratio", "speedup")

	var baseTime float64
	for _, row := range rows {
		if row.name == "original-easgd" {
			baseTime = row.timeTo
		}
	}
	for _, row := range rows {
		b := row.res.Breakdown
		acc := table3Target
		if !row.reached {
			acc = row.res.FinalAcc
		}
		speedup := "1.0x"
		if baseTime > 0 {
			speedup = fmt.Sprintf("%.1fx", baseTime/row.timeTo)
		}
		t.AddRow(
			row.name,
			fmt.Sprintf("%.3f", acc),
			fmt.Sprintf("%d", row.itersTo),
			fmt.Sprintf("%.4f", row.timeTo),
			pct(b.Share(core.CatGPUGPUParam)),
			pct(b.Share(core.CatCPUGPUData)),
			pct(b.Share(core.CatCPUGPUParam)),
			pct(b.Share(core.CatForwardBackward)),
			pct(b.Share(core.CatGPUUpdate)),
			pct(b.Share(core.CatCPUUpdate)),
			pct(b.CommRatio()),
			speedup,
		)
	}
	r.AddNote("paper (Table 3): comm ratio falls 87%% -> 14%%; Sync EASGD3 is 5.3x over Original EASGD at equal accuracy (0.988)")
	r.AddNote("executed network is the TinyCNN LeNet stand-in (DESIGN.md); breakdown uses exposed-time accounting from the coordinator, as the paper does")
	return r, nil
}

// RunFig11 renders the same measurement as Figure 11's stacked-percentage
// chart: one row per (method, category) pair for plotting.
func RunFig11(o Options) (*Report, error) {
	o = o.withDefaults()
	rows, err := runTable3Methods(o)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig11", Title: "Breakdown of time for EASGD variants (chart data)", PaperRef: "Figure 11"}
	t := r.NewTable("stacked shares per method", "Method", "Category", "share")
	for _, row := range rows {
		for _, c := range core.Categories() {
			t.AddRow(row.name, c.String(), pct(row.res.Breakdown.Share(c)))
		}
	}
	t2 := r.NewTable("comm vs compute", "Method", "comm ratio", "computation ratio")
	for _, row := range rows {
		cr := row.res.Breakdown.CommRatio()
		t2.AddRow(row.name, pct(cr), pct(1-cr))
	}
	return r, nil
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
