package harness

import (
	"fmt"

	"scaledl/internal/hw"
	"scaledl/internal/nn"
)

// Table 4 is the paper's large-scale result: weak scaling of ImageNet
// training on Cori's KNL partition, GoogleNet for 300 iterations and VGG
// for 80, from 68 to 4352 cores (1 to 64 nodes), against Intel Caffe.
// The paper does not report accuracy here — only time — so this experiment
// is a pure cost-model evaluation over the exact-dimension GoogleNet and
// VGG-19 layer tables.
//
// Model (calibration recorded in EXPERIMENTS.md):
//   - compute/iter: batch 256 × 3×fwdFLOPs / (6 TFLOPS × eff); eff is per
//     model (GoogleNet 0.08, VGG 0.30 — small inception kernels utilize KNL
//     far worse than VGG's large 3×3 GEMMs), landing within 1% of the
//     paper's single-node times (1533 s and 1318 s).
//   - our implementation: packed tree allreduce on Aries, 40% hidden by
//     compute overlap (§5.2 + Algorithm 4's overlap).
//   - Intel Caffe baseline: same allreduce volume with a 1.2× less
//     bandwidth-efficient collective, no overlap, plus a 2 GB/s
//     gather/scatter staging pass for its non-contiguous layer buffers.
type wsWorkload struct {
	model    nn.ModelCost
	iters    int
	batch    int
	eff      float64
	paperEff map[int]float64 // cores -> paper-reported efficiency (ours)
	caffeEff map[int]float64 // cores -> paper-reported Intel Caffe efficiency
}

const (
	wsOverlapHidden = 0.4  // fraction of allreduce our implementation hides
	wsCaffeFactor   = 1.2  // Caffe collective bandwidth inefficiency
	wsCaffeStageBW  = 2e9  // Caffe gather/scatter staging bandwidth
	wsKNLFlops      = 6e12 // KNL 7250 single-precision peak
)

func wsWorkloads() []wsWorkload {
	return []wsWorkload{
		{
			model: nn.GoogleNetCost(), iters: 300, batch: 256, eff: 0.08,
			paperEff: map[int]float64{68: 1, 136: .964, 272: .953, 544: .934, 1088: .940, 2176: .923, 4352: .916},
			caffeEff: map[int]float64{2176: .87},
		},
		{
			model: nn.VGG19Cost(), iters: 80, batch: 256, eff: 0.30,
			paperEff: map[int]float64{68: 1, 136: .915, 272: .890, 544: .865, 1088: .807, 2176: .785, 4352: .802},
			caffeEff: map[int]float64{2176: .62},
		},
	}
}

// wsComputePerIter is the per-iteration compute time of one node.
func wsComputePerIter(w wsWorkload) float64 {
	flops := float64(w.model.TrainFLOPsPerSample()) * float64(w.batch)
	return flops / (wsKNLFlops * w.eff)
}

// wsOurOverhead is the exposed per-iteration communication of our
// Communication-Efficient EASGD at the given node count. The allreduce is
// *simulated* — a size-only packed tree collective over the Aries fabric
// through the message-level engine (which matches TreeAllReduceTime on the
// contention-free fabric) — then partially hidden by the compute overlap.
func wsOurOverhead(w wsWorkload, nodes int) float64 {
	ar := mustSimulateAllReduce("tree", hw.Aries, w.model.ParamBytes(), nodes)
	return ar * (1 - wsOverlapHidden)
}

// wsCaffeOverhead is the per-iteration communication of the Intel Caffe
// baseline at the given node count: the same simulated allreduce volume
// with a less bandwidth-efficient collective, no overlap, plus the
// gather/scatter staging its non-contiguous layer buffers pay.
func wsCaffeOverhead(w wsWorkload, nodes int) float64 {
	if nodes == 1 {
		return 0
	}
	ar := mustSimulateAllReduce("tree", hw.Aries, w.model.ParamBytes(), nodes)
	staging := 2 * float64(w.model.ParamBytes()) / wsCaffeStageBW
	return ar*wsCaffeFactor + staging
}

// RunTable4 reproduces Table 4 plus the Intel Caffe comparison rows of
// §7.1.
func RunTable4(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{ID: "table4", Title: "Weak scaling for ImageNet", PaperRef: "Table 4 / §7.1"}
	nodes := []int{1, 2, 4, 8, 16, 32, 64}

	for _, w := range wsWorkloads() {
		comp := wsComputePerIter(w)
		t := r.NewTable(
			fmt.Sprintf("%s (%d iterations, batch %d/node, |W| = %.0f MB)",
				w.model.Name, w.iters, w.batch, float64(w.model.ParamBytes())/(1<<20)),
			"cores", "time(s)", "efficiency", "paper eff", "caffe time(s)", "caffe eff", "paper caffe")
		t1 := float64(w.iters) * comp
		for _, n := range nodes {
			cores := n * 68
			perIter := comp + wsOurOverhead(w, n)
			total := float64(w.iters) * perIter
			eff := t1 / total
			caffeTotal := float64(w.iters) * (comp + wsCaffeOverhead(w, n))
			caffeEff := t1 / caffeTotal
			paperCell := "-"
			if v, ok := w.paperEff[cores]; ok {
				paperCell = pct(v)
			}
			paperCaffe := "-"
			if v, ok := w.caffeEff[cores]; ok {
				paperCaffe = pct(v)
			}
			t.AddRow(fmt.Sprintf("%d", cores), fmt.Sprintf("%.0f", total), pct(eff), paperCell,
				fmt.Sprintf("%.0f", caffeTotal), pct(caffeEff), paperCaffe)
		}
	}
	r.AddNote("paper single-node times: GoogleNet 1533s/300 iters, VGG 1318s/80 iters")
	r.AddNote("paper at 2176 cores: GoogleNet ours 92.3%% vs Caffe 87%%; VGG ours 78.5%% vs Caffe 62%%")
	return r, nil
}

// WeakScalingEfficiency exposes the model for tests and the public API:
// it returns our implementation's efficiency for the named model at the
// given node count.
func WeakScalingEfficiency(model string, nodes int) (float64, error) {
	for _, w := range wsWorkloads() {
		if w.model.Name == model {
			comp := wsComputePerIter(w)
			return comp / (comp + wsOurOverhead(w, nodes)), nil
		}
	}
	return 0, fmt.Errorf("harness: unknown weak-scaling model %q", model)
}
