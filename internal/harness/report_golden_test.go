package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report files")

// goldenReport builds a fixed report exercising every formatting path the
// experiments rely on: table alignment and trailing-space trimming, the
// formatFloat magnitude branches, AddRowf's type dispatch, notes, and CSV
// escaping. Any drift in report.go's output lands here as a diff instead of
// being eyeballed in CI logs.
func goldenReport() *Report {
	r := &Report{ID: "golden", Title: "Report formatting fixture", PaperRef: "testdata"}
	t1 := r.NewTable("formatFloat magnitudes", "case", "value")
	t1.AddRowf("zero", 0.0)
	t1.AddRowf("large", 123456.789)
	t1.AddRowf("thousand", 1000.0)
	t1.AddRowf("tens", 42.125)
	t1.AddRowf("unit", 1.23456)
	t1.AddRowf("small", 0.012345)
	t1.AddRowf("tiny", 0.00012345)
	t1.AddRowf("negative", -3.5)
	t2 := r.NewTable("AddRowf type dispatch", "string", "float32", "int", "int64", "other")
	t2.AddRowf("s", float32(2.5), 7, int64(1<<40), struct{ X int }{9})
	t2.AddRow("wide column forces realignment", "1", "2", "3", "4")
	t3 := r.NewTable("", "untitled", "table")
	t3.AddRow("a", "b")
	r.AddNote("plain note")
	r.AddNote("formatted note: %d experiments, %.3f scale", 18, 0.15)
	return r
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// compareGolden checks got against the named golden file, rewriting the
// file under -update.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/harness -run Golden -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file (run with -update to accept):\n%s", name, diffLines(string(want), got))
	}
}

// diffLines renders a small line-by-line diff for golden mismatches.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
		}
	}
	return sb.String()
}

func TestReportFormatGolden(t *testing.T) {
	compareGolden(t, "report_format.golden", goldenReport().String())
}

func TestReportCSVGolden(t *testing.T) {
	var sb strings.Builder
	for _, tb := range goldenReport().Tables {
		if err := tb.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		sb.WriteString("\n")
	}
	compareGolden(t, "report_csv.golden", sb.String())
}
