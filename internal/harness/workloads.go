package harness

import (
	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/data"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
)

// This file defines the shared workloads and platforms. The executed
// networks are scaled-down stand-ins (documented in DESIGN.md) so that
// thousands of real training iterations fit in seconds of host time; the
// simulated platforms and, where relevant, the modeled footprints use the
// paper's true dimensions.

// mnistWorkload is the MNIST-regime workload of Figures 6, 8 and Table 3:
// 28×28 single-channel images, 10 classes, TinyCNN stand-in for LeNet.
func mnistWorkload(o Options) (train, test *data.Dataset, def nn.NetDef) {
	spec := data.Spec{Name: "mnist-syn", Channels: 1, Height: 28, Width: 28, Classes: 10}
	train, test = data.Synthetic(data.Config{
		Spec:   spec,
		TrainN: o.scaled(2048),
		TestN:  512,
		Seed:   o.Seed * 31,
		Noise:  1.5,
	})
	train.Normalize()
	test.Normalize()
	return train, test, nn.TinyCNN(nn.Shape{C: 1, H: 28, W: 28}, 10)
}

// cifarWorkload is the CIFAR-regime workload of Figures 12 and 13:
// 3-channel 16×16 images (scaled from 32×32), 10 classes. The noise level
// is set high so training is stochastic-gradient-noise limited — the regime
// where larger effective batches (more partitions, more machines) buy
// faster convergence, as in the paper's CIFAR experiments.
func cifarWorkload(o Options) (train, test *data.Dataset, def nn.NetDef) {
	spec := data.Spec{Name: "cifar-syn", Channels: 3, Height: 16, Width: 16, Classes: 10}
	train, test = data.Synthetic(data.Config{
		Spec:   spec,
		TrainN: o.scaled(2048),
		TestN:  256,
		Seed:   o.Seed * 67,
		Noise:  2.2,
	})
	train.Normalize()
	test.Normalize()
	return train, test, nn.TinyCNN(nn.Shape{C: 3, H: 16, W: 16}, 10)
}

// deepWorkload is a deeper stand-in (8 parameter layers, AlexNet-like
// layer count) for Figure 10, where per-layer communication pays one
// latency per layer.
func deepWorkload(o Options) (train, test *data.Dataset, def nn.NetDef) {
	spec := data.Spec{Name: "mnist-syn-deep", Channels: 1, Height: 28, Width: 28, Classes: 10}
	train, test = data.Synthetic(data.Config{
		Spec:   spec,
		TrainN: o.scaled(2048),
		TestN:  512,
		Seed:   o.Seed * 13,
		Noise:  0.8,
	})
	train.Normalize()
	test.Normalize()
	def = nn.NetDef{
		Name:    "deepcnn",
		In:      nn.Shape{C: 1, H: 28, W: 28},
		Classes: 10,
		Specs: []nn.LayerSpec{
			{Kind: "conv", Filters: 6, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "conv", Filters: 6, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "conv", Filters: 12, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "conv", Filters: 12, Kernel: 3, Stride: 1, Pad: 1},
			{Kind: "relu"},
			{Kind: "maxpool", Kernel: 2, Stride: 2},
			{Kind: "dense", Units: 48},
			{Kind: "relu"},
			{Kind: "dense", Units: 24},
			{Kind: "relu"},
			{Kind: "dense", Units: 10},
		},
	}
	return train, test, def
}

// knlClusterPlatform models one KNL node per worker on Cori's Aries fabric
// (the platform of Algorithm 4 and Figure 13): parameters ride the
// interconnect, minibatches come from node-local memory. Point-to-point
// stages here use the fabric's p2p α-β profile (8 GB/s class), not the
// saturating large-collective profile hw.Aries models for Table 4 — the
// executed stand-in model's messages are far below that profile's
// saturation regime.
func knlClusterPlatform() core.Platform {
	knl := hw.Device{Name: "KNL 7250", PeakFLOPS: 6e12, Eff: 0.02, MemBytes: 384 << 30, MemBW: 90e9}
	local := hw.Link{Name: "node-local DDR", Alpha: 1e-6, Beta: 1 / 90e9}
	fabric := hw.Link{Name: "Aries p2p", Alpha: 1.5e-6, Beta: 1 / 8e9}
	return core.Platform{
		Worker:    knl,
		Master:    knl,
		HostParam: fabric,
		PeerParam: fabric,
		Data:      local,
		Packed:    true,
	}
}

// gpuPlatform returns the paper's 4-GPU node (see core.DefaultGPUPlatform).
func gpuPlatform(packed bool) core.Platform { return core.DefaultGPUPlatform(packed) }

// baseConfig assembles a core.Config for the MNIST-regime GPU experiments.
func baseConfig(o Options, iters int, packed bool) core.Config {
	train, test, def := mnistWorkload(o)
	return core.Config{
		Def:        def,
		Train:      train,
		Test:       test,
		Workers:    4,
		Batch:      32,
		LR:         0.05,
		Momentum:   0.9,
		Iterations: iters,
		Seed:       o.Seed,
		Platform:   gpuPlatform(packed),
	}
}

// aggregate statistics helpers shared by experiments.

// minFloat returns the minimum of xs (0 for empty).
func minFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// transfererName names a link for table rows.
func transfererName(t comm.Transferer) string {
	switch l := t.(type) {
	case hw.Link:
		return l.Name
	case hw.SaturatingLink:
		return l.Name
	default:
		return "link"
	}
}
