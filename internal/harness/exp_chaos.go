package harness

import (
	"fmt"

	"scaledl/internal/core"
)

// The chaos experiment exercises the semantic fault tier — the knobs that
// change what happens rather than just when. Where the faults experiment
// stretches delays, chaos injects message loss, payload corruption and a
// mid-run fail-stop with no checkpoint, and shows the two survivability
// contracts side by side:
//
//   - loss and corruption are absorbed by comm's guarded delivery
//     (checksums, acks, timeout/backoff retries): the math stays
//     bit-identical to the clean twin while retries cost time (CatRetry)
//     and wire bytes (visible in Breakdown.Bytes);
//   - membership changes — fail-continue and partial-aggregation drops —
//     legitimately move the math, but deterministically: the same fault
//     seed reproduces the run bit-for-bit, which every scenario here
//     asserts by running twice.

// chaosMethods are the collective-driven representatives that support the
// semantic tier (hier-sync-sgd supports the global rates and fail-continue;
// sync-easgd3 loss/corruption only, so its fail column stays in recover
// mode).
var chaosMethods = []struct {
	name        string
	hier        bool
	canContinue bool
}{
	{"sync-sgd", false, true},
	{"sync-easgd3", false, false},
	{"hier-sync-sgd", true, true},
}

// RunChaos regenerates the survivable-collectives study.
func RunChaos(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:       "chaos",
		Title:    "Survivable collectives: loss, corruption, fail-stop without checkpoint",
		PaperRef: "Section 7 (robustness discussion); model extension",
	}
	iters := o.scaled(40)
	failStep := maxInt(2, iters/2)

	t := r.NewTable("simulated wall-clock under semantic faults (ms; loss/corrupt keep the math, fail-cont shrinks it)",
		"method", "clean", "loss 5%", "corrupt 3%", "fail-cont", "retry bytes", "math")
	for _, m := range chaosMethods {
		mk := func() core.Config {
			cfg := baseConfig(o, iters, true)
			if m.hier {
				cfg.Nodes, cfg.GPUsPerNode = 2, 2
			}
			return cfg
		}
		// Every faulty scenario runs twice and must reproduce bit-for-bit —
		// the determinism contract of the semantic tier.
		run := func(mut func(*core.Config)) (core.Result, error) {
			cfg := mk()
			mut(&cfg)
			res, err := core.Methods[m.name](cfg)
			if err != nil {
				return core.Result{}, fmt.Errorf("%s: %w", m.name, err)
			}
			again, err := core.Methods[m.name](cfg)
			if err != nil {
				return core.Result{}, fmt.Errorf("%s (repeat): %w", m.name, err)
			}
			if again.FinalLoss != res.FinalLoss || again.SimTime != res.SimTime {
				return core.Result{}, fmt.Errorf("%s: fault run not reproducible (loss %v vs %v, time %v vs %v)",
					m.name, res.FinalLoss, again.FinalLoss, res.SimTime, again.SimTime)
			}
			return res, nil
		}

		clean, err := run(func(*core.Config) {})
		if err != nil {
			return nil, err
		}
		lossy, err := run(func(cfg *core.Config) {
			cfg.Faults = core.FaultPlan{LossRate: 0.05}
		})
		if err != nil {
			return nil, err
		}
		corrupt, err := run(func(cfg *core.Config) {
			cfg.Faults = core.FaultPlan{CorruptRate: 0.03}
		})
		if err != nil {
			return nil, err
		}
		// Loss and corruption must never move the math: retries always
		// deliver a pristine payload eventually.
		for _, res := range []core.Result{lossy, corrupt} {
			if res.FinalLoss != clean.FinalLoss || res.FinalAcc != clean.FinalAcc {
				return nil, fmt.Errorf("%s: loss/corruption changed the math (loss %v vs %v)",
					m.name, res.FinalLoss, clean.FinalLoss)
			}
			if res.SimTime <= clean.SimTime {
				return nil, fmt.Errorf("%s: retries cost no simulated time", m.name)
			}
		}

		failCol := "n/a"
		if m.canContinue {
			failed, err := run(func(cfg *core.Config) {
				cfg.Faults = core.FaultPlan{
					FailMode:   core.FailContinue,
					FailRank:   1,
					FailAtStep: failStep,
				}
			})
			if err != nil {
				return nil, err
			}
			failCol = fmt.Sprintf("%.1f (%.2fx)", failed.SimTime*1e3, failed.SimTime/clean.SimTime)
		}
		t.AddRow(m.name,
			fmt.Sprintf("%.1f", clean.SimTime*1e3),
			fmt.Sprintf("%.1f (%.2fx)", lossy.SimTime*1e3, lossy.SimTime/clean.SimTime),
			fmt.Sprintf("%.1f (%.2fx)", corrupt.SimTime*1e3, corrupt.SimTime/clean.SimTime),
			failCol,
			fmt.Sprintf("+%d", lossy.Breakdown.ParamTraffic()-clean.Breakdown.ParamTraffic()),
			"identical under loss/corrupt")
	}

	// Partial aggregation on sync-sgd: a hard straggler misses the deadline
	// and its gradient is dropped from the straggling steps — deterministic
	// drops pinned by the repeat run inside run().
	pt := r.NewTable("partial aggregation (sync-sgd, K=3 of 4, rank 1 straggling 40x)",
		"scenario", "time (ms)", "dropped steps", "deadline wait (ms)")
	partial := func(straggle bool) (core.Result, error) {
		cfg := baseConfig(o, iters, true)
		cfg.Faults = core.FaultPlan{PartialK: 3}
		if straggle {
			cfg.Faults.StragglerFactor = 40
			cfg.Faults.StragglerRanks = []int{1}
		}
		res, err := core.SyncSGD(cfg)
		if err != nil {
			return core.Result{}, fmt.Errorf("partial: %w", err)
		}
		again, err := core.SyncSGD(cfg)
		if err != nil {
			return core.Result{}, err
		}
		if again.FinalLoss != res.FinalLoss || len(again.Dropped) != len(res.Dropped) {
			return core.Result{}, fmt.Errorf("partial: drops not reproducible (%d vs %d)",
				len(res.Dropped), len(again.Dropped))
		}
		return res, nil
	}
	quorum, err := partial(false)
	if err != nil {
		return nil, err
	}
	if len(quorum.Dropped) != 0 {
		return nil, fmt.Errorf("partial: full quorum dropped %d gradients", len(quorum.Dropped))
	}
	dropped, err := partial(true)
	if err != nil {
		return nil, err
	}
	if len(dropped.Dropped) == 0 {
		return nil, fmt.Errorf("partial: 40x straggler never missed the deadline")
	}
	pt.AddRow("all on time", fmt.Sprintf("%.1f", quorum.SimTime*1e3), "0",
		fmt.Sprintf("%.2f", quorum.Breakdown.Times[core.CatDropped]*1e3))
	pt.AddRow("rank 1 late", fmt.Sprintf("%.1f", dropped.SimTime*1e3),
		fmt.Sprintf("%d", len(dropped.Dropped)),
		fmt.Sprintf("%.2f", dropped.Breakdown.Times[core.CatDropped]*1e3))

	r.AddNote("loss and corruption never move the math — guarded delivery retries until a pristine payload lands; the cost is CatRetry time and retry bytes on the wire")
	r.AddNote("fail-cont and partial drops move the math deterministically: every scenario above ran twice and reproduced losses, drops and timing bit-for-bit")
	return r, nil
}
