package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation GEMM is checked against.
func naiveMatMul(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for t := 0; t < k; t++ {
				s += a.Data[i*k+t] * b.Data[t*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
}

func randMat(g *RNG, m, n int) *Tensor {
	t := New(m, n)
	g.FillNormal(t.Data, 0, 1)
	return t
}

func maxAbsDiff(a, b []float32) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i] - b[i])); v > d {
			d = v
		}
	}
	return d
}

func TestMatMulMatchesNaive(t *testing.T) {
	g := NewRNG(1)
	cases := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 1, 9}, {16, 64, 16}, {33, 17, 29}}
	for _, c := range cases {
		m, k, n := c[0], c[1], c[2]
		a := randMat(g, m, k)
		b := randMat(g, k, n)
		got := New(m, n)
		want := New(m, n)
		MatMul(got, a, b)
		naiveMatMul(want, a, b)
		if d := maxAbsDiff(got.Data, want.Data); d > 1e-3 {
			t.Errorf("MatMul %dx%dx%d diff %v", m, k, n, d)
		}
	}
}

func TestMatMulLargeParallelMatchesNaive(t *testing.T) {
	g := NewRNG(2)
	// Big enough to cross gemmParallelThreshold and exercise the parallel path.
	m, k, n := 300, 64, 300
	a := randMat(g, m, k)
	b := randMat(g, k, n)
	got := New(m, n)
	want := New(m, n)
	MatMul(got, a, b)
	naiveMatMul(want, a, b)
	if d := maxAbsDiff(got.Data, want.Data); d > 1e-2 {
		t.Errorf("parallel MatMul diff %v", d)
	}
}

func TestMatMulDeterministicAcrossRuns(t *testing.T) {
	g := NewRNG(3)
	m, k, n := 280, 70, 280
	a := randMat(g, m, k)
	b := randMat(g, k, n)
	c1 := New(m, n)
	c2 := New(m, n)
	MatMul(c1, a, b)
	MatMul(c2, a, b)
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatalf("MatMul nondeterministic at %d: %v vs %v", i, c1.Data[i], c2.Data[i])
		}
	}
}

func TestMatMulAddAccumulates(t *testing.T) {
	g := NewRNG(4)
	a := randMat(g, 3, 5)
	b := randMat(g, 5, 2)
	c := New(3, 2)
	c.Fill(1)
	want := New(3, 2)
	naiveMatMul(want, a, b)
	MatMulAdd(c, a, b)
	for i := range c.Data {
		if math.Abs(float64(c.Data[i]-(want.Data[i]+1))) > 1e-4 {
			t.Fatalf("MatMulAdd wrong at %d", i)
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	g := NewRNG(5)
	// A is k×m; compute C = Aᵀ·B.
	k, m, n := 6, 4, 3
	a := randMat(g, k, m)
	b := randMat(g, k, n)
	got := New(m, n)
	MatMulTransA(got, a, b)
	at := New(m, k)
	Transpose(at, a)
	want := New(m, n)
	naiveMatMul(want, at, b)
	if d := maxAbsDiff(got.Data, want.Data); d > 1e-4 {
		t.Errorf("MatMulTransA diff %v", d)
	}
}

func TestMatMulTransB(t *testing.T) {
	g := NewRNG(6)
	m, k, n := 4, 6, 3
	a := randMat(g, m, k)
	b := randMat(g, n, k)
	got := New(m, n)
	MatMulTransB(got, a, b)
	bt := New(k, n)
	Transpose(bt, b)
	want := New(m, n)
	naiveMatMul(want, a, bt)
	if d := maxAbsDiff(got.Data, want.Data); d > 1e-4 {
		t.Errorf("MatMulTransB diff %v", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	bad := []func(){
		func() { MatMul(New(2, 2), New(2, 3), New(4, 2)) },
		func() { MatMul(New(3, 2), New(2, 3), New(3, 2)) },
		func() { MatMulTransA(New(2, 2), New(3, 2), New(4, 2)) },
		func() { MatMulTransB(New(2, 2), New(2, 3), New(2, 4)) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMatVec(t *testing.T) {
	a := Wrap([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	x := []float32{1, 0, -1}
	y := make([]float32, 2)
	MatVec(y, a, x)
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MatVec got %v", y)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		m := 1 + g.Intn(20)
		n := 1 + g.Intn(20)
		a := randMat(g, m, n)
		at := New(n, m)
		back := New(m, n)
		Transpose(at, a)
		Transpose(back, at)
		for i := range a.Data {
			if a.Data[i] != back.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		m := 1 + g.Intn(12)
		k := 1 + g.Intn(12)
		n := 1 + g.Intn(12)
		a := randMat(g, m, k)
		b := randMat(g, k, n)
		ab := New(m, n)
		MatMul(ab, a, b)
		abT := New(n, m)
		Transpose(abT, ab)
		at := New(k, m)
		bt := New(n, k)
		Transpose(at, a)
		Transpose(bt, b)
		btat := New(n, m)
		MatMul(btat, bt, at)
		return maxAbsDiff(abT.Data, btat.Data) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	g := NewRNG(7)
	a := randMat(g, 128, 128)
	bb := randMat(g, 128, 128)
	c := New(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, bb)
	}
}

func BenchmarkMatMul512(b *testing.B) {
	g := NewRNG(8)
	a := randMat(g, 512, 512)
	bb := randMat(g, 512, 512)
	c := New(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, bb)
	}
}
