//go:build arm64

#include "textflag.h"

// NEON 8×8 micro-kernel: t[0:8][0:8] = Σ_p ap[p*8+i]·bp[p*8+j], stored
// row-major at stride 8 into the kernTile buffer.
//
// Register plan: V0–V15 hold the 8×8 accumulator tile, two 4-lane registers
// per output row (row i = V(2i) | V(2i+1)). Each k step loads the 8-float B
// row into V20:V21 and the 8-float A column into V22:V23, then broadcasts
// each A element across a vector (VDUP by lane) and issues two FMLAs per
// row. FMLA is a fused multiply-add, so this tier is ULP-bounded against the
// portable mul+add reference rather than bit-identical (see doc.go).

// func microKernelNEON(ap, bp *float32, kc int, t *kernTile)
TEXT ·microKernelNEON(SB), NOSPLIT, $0-32
	MOVD ap+0(FP), R0
	MOVD bp+8(FP), R1
	MOVD kc+16(FP), R2
	MOVD t+24(FP), R3

	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

neonLoop:
	VLD1.P 32(R1), [V20.S4, V21.S4] // B row: bp[p*8 .. p*8+7]
	VLD1.P 32(R0), [V22.S4, V23.S4] // A col: ap[p*8 .. p*8+7]

	VDUP  V22.S[0], V24.S4
	VFMLA V20.S4, V24.S4, V0.S4
	VFMLA V21.S4, V24.S4, V1.S4
	VDUP  V22.S[1], V25.S4
	VFMLA V20.S4, V25.S4, V2.S4
	VFMLA V21.S4, V25.S4, V3.S4
	VDUP  V22.S[2], V24.S4
	VFMLA V20.S4, V24.S4, V4.S4
	VFMLA V21.S4, V24.S4, V5.S4
	VDUP  V22.S[3], V25.S4
	VFMLA V20.S4, V25.S4, V6.S4
	VFMLA V21.S4, V25.S4, V7.S4
	VDUP  V23.S[0], V24.S4
	VFMLA V20.S4, V24.S4, V8.S4
	VFMLA V21.S4, V24.S4, V9.S4
	VDUP  V23.S[1], V25.S4
	VFMLA V20.S4, V25.S4, V10.S4
	VFMLA V21.S4, V25.S4, V11.S4
	VDUP  V23.S[2], V24.S4
	VFMLA V20.S4, V24.S4, V12.S4
	VFMLA V21.S4, V24.S4, V13.S4
	VDUP  V23.S[3], V25.S4
	VFMLA V20.S4, V25.S4, V14.S4
	VFMLA V21.S4, V25.S4, V15.S4

	SUBS $1, R2, R2
	BNE  neonLoop

	VST1.P [V0.S4, V1.S4], 32(R3)
	VST1.P [V2.S4, V3.S4], 32(R3)
	VST1.P [V4.S4, V5.S4], 32(R3)
	VST1.P [V6.S4, V7.S4], 32(R3)
	VST1.P [V8.S4, V9.S4], 32(R3)
	VST1.P [V10.S4, V11.S4], 32(R3)
	VST1.P [V12.S4, V13.S4], 32(R3)
	VST1.P [V14.S4, V15.S4], 32(R3)
	RET
