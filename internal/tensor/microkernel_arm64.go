//go:build arm64

package tensor

// Go-side wrapper of the arm64 NEON micro-kernel (microkernel_arm64.s).

// microKernelNEON is the NEON 8×8 register tile (stride 8): sixteen 4-lane
// V-register accumulators (two per output row), fed per k step by one
// 8-float B row and eight lane-broadcast A elements through fused
// multiply-adds (FMLA).
//
//go:noescape
func microKernelNEON(ap, bp *float32, kc int, t *kernTile)

func microKernelNEONWrap(ap, bp []float32, kc int, t *kernTile) {
	if kc == 0 {
		zeroTile(t, 8*8)
		return
	}
	microKernelNEON(&ap[0], &bp[0], kc, t)
}

func zeroTile(t *kernTile, n int) {
	for i := range t[:n] {
		t[i] = 0
	}
}
