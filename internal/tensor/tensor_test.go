package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndVolume(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{5}, 5},
		{[]int{2, 3}, 6},
		{[]int{4, 1, 7}, 28},
		{[]int{0, 9}, 0},
	}
	for _, c := range cases {
		if got := Volume(c.shape); got != c.want {
			t.Errorf("Volume(%v) = %d, want %d", c.shape, got, c.want)
		}
		tn := New(c.shape...)
		if tn.Len() != c.want {
			t.Errorf("New(%v).Len() = %d, want %d", c.shape, tn.Len(), c.want)
		}
	}
}

func TestWrapPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with wrong volume did not panic")
		}
	}()
	Wrap(make([]float32, 5), 2, 3)
}

func TestWrapAliases(t *testing.T) {
	buf := make([]float32, 6)
	v := Wrap(buf, 2, 3)
	v.Set(7, 1, 2)
	if buf[5] != 7 {
		t.Fatalf("view write not visible in backing buffer: %v", buf)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tn := New(3, 4, 5)
	want := float32(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				tn.Set(want, i, j, k)
				want++
			}
		}
	}
	for i, v := range tn.Data {
		if v != float32(i) {
			t.Fatalf("row-major order broken at %d: got %v", i, v)
		}
	}
	if got := tn.At(2, 3, 4); got != float32(len(tn.Data)-1) {
		t.Errorf("At(last) = %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tn := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	tn.At(0, 2)
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Set(9, 2, 3)
	if a.Data[11] != 9 {
		t.Fatal("Reshape does not share backing data")
	}
	if b.Dim(0) != 3 || b.Dim(1) != 4 {
		t.Fatalf("Reshape shape wrong: %v", b.Shape)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 5
	if a.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
}

func TestCopyFromAndZeroAndFill(t *testing.T) {
	a := New(3)
	a.Fill(2.5)
	b := New(3)
	b.CopyFrom(a)
	for _, v := range b.Data {
		if v != 2.5 {
			t.Fatalf("CopyFrom wrong: %v", b.Data)
		}
	}
	b.Zero()
	for _, v := range b.Data {
		if v != 0 {
			t.Fatalf("Zero wrong: %v", b.Data)
		}
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Error("equal shapes reported different")
	}
	if SameShape(New(2, 3), New(3, 2)) {
		t.Error("different shapes reported same")
	}
	if SameShape(New(6), New(2, 3)) {
		t.Error("different ranks reported same")
	}
}

func TestAXPY(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	AXPY(2, x, y)
	want := []float32{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY got %v, want %v", y, want)
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := []float32{1, -2, 3}
	b := []float32{4, 5, -6}
	dst := make([]float32, 3)
	Add(dst, a, b)
	if dst[0] != 5 || dst[1] != 3 || dst[2] != -3 {
		t.Errorf("Add got %v", dst)
	}
	Sub(dst, a, b)
	if dst[0] != -3 || dst[1] != -7 || dst[2] != 9 {
		t.Errorf("Sub got %v", dst)
	}
	if got := Dot(a, b); got != 4-10-18 {
		t.Errorf("Dot got %v", got)
	}
	Scale(0.5, a)
	if a[0] != 0.5 || a[1] != -1 || a[2] != 1.5 {
		t.Errorf("Scale got %v", a)
	}
}

func TestNorm2AndSum(t *testing.T) {
	x := []float32{3, 4}
	if got := Norm2(x); math.Abs(got-5) > 1e-9 {
		t.Errorf("Norm2 got %v", got)
	}
	if got := Sum(x); got != 7 {
		t.Errorf("Sum got %v", got)
	}
}

func TestMaxIndex(t *testing.T) {
	cases := []struct {
		in   []float32
		want int
	}{
		{nil, -1},
		{[]float32{1}, 0},
		{[]float32{1, 3, 2}, 1},
		{[]float32{5, 5, 5}, 0}, // first wins ties
		{[]float32{-4, -1, -9}, 1},
	}
	for _, c := range cases {
		if got := MaxIndex(c.in); got != c.want {
			t.Errorf("MaxIndex(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	x := []float32{-5, 0.5, 9}
	Clamp(x, -1, 1)
	if x[0] != -1 || x[1] != 0.5 || x[2] != 1 {
		t.Errorf("Clamp got %v", x)
	}
}

// Property: AXPY then AXPY with -alpha restores the original vector (up to
// float32 rounding, exact here because same magnitudes cancel).
func TestAXPYInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(256)
		x := make([]float32, n)
		y := make([]float32, n)
		g.FillNormal(x, 0, 1)
		g.FillNormal(y, 0, 1)
		orig := append([]float32(nil), y...)
		AXPY(3, x, y)
		AXPY(-3, x, y)
		for i := range y {
			if math.Abs(float64(y[i]-orig[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotBilinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(128)
		a := make([]float32, n)
		b := make([]float32, n)
		c := make([]float32, n)
		g.FillNormal(a, 0, 1)
		g.FillNormal(b, 0, 1)
		g.FillNormal(c, 0, 1)
		if math.Abs(float64(Dot(a, b)-Dot(b, a))) > 1e-3 {
			return false
		}
		sum := make([]float32, n)
		Add(sum, a, b)
		lhs := float64(Dot(sum, c))
		rhs := float64(Dot(a, c)) + float64(Dot(b, c))
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
