// Package tensor implements the dense float32 tensor and BLAS-like kernels
// that every other package in this repository builds on. It is the stand-in
// for the cuBLAS/cuDNN/MKL substrate used by the paper: shapes are dense and
// row-major, and every matrix product funnels into one packed,
// register-tiled GEMM engine (gemm.go, pack.go, microkernel.go) built on
// the BLIS blocking hierarchy — MC/KC/NC cache blocks around an MR×NR
// register tile, with operand transposition absorbed at pack time.
//
// # Kernel tiers
//
// The micro-kernel is selected once at init from the CPU's feature set,
// honoring the runtime's GODEBUG cpu.*=off downgrades (KernelTier reports
// the decision):
//
//	tier     tile    ISA                          arch
//	avx512   14×16   AVX-512 F/DQ/BW/VL, FMA      amd64
//	avx2      8×8    AVX2 + FMA                   amd64
//	sse2      4×8    SSE2 (GOAMD64=v1 baseline)   amd64
//	neon      8×8    NEON (armv8 baseline)        arm64
//	generic   4×8    pure Go                      everywhere
//
// All tiers share the same cache-blocking derivation (blocking.go) from the
// L1/L2 budgets that also size the Transpose tile and the Im2col tap
// blocking, so a tier change can never leave the packing, transposition and
// unrolling layers disagreeing about what fits where.
//
// # Determinism contract
//
// Reproducibility is layered, strongest first:
//
//   - Within a tier, every result is bit-deterministic: the parallel fan-out
//     partitions only output rows, each element keeps a fixed k-ordered
//     summation, and KC is identical across tiers, so pool width, scheduling
//     and serial mode never change a bit. This is the property the
//     distributed-training determinism tests build on.
//   - The sse2 and generic tiers are bit-identical to each other: both
//     compute unfused mul-then-add in the same order, so the assembly can be
//     swapped for the pure-Go reference without perturbing golden values.
//   - The FMA tiers (avx512, avx2, neon) differ from the unfused pair — and
//     from each other across tile widths — by bounded ULP-level rounding:
//     fused multiply-add keeps the infinitely-precise product, so each tier
//     is its own deterministic universe, ULP-close to the rest.
//   - MinMax and QuantizeUniform8 are bit-identical across all tiers
//     (order-free reduction; element-wise map with a fixed unfused op
//     sequence), which is why the gradient-compression package may ride the
//     vector dispatch without any trajectory risk. Dot32 is only
//     per-tier-deterministic, like the GEMMs.
//
// # Low precision
//
// SetComputePrecision selects bf16 or fp16 storage for the packed GEMM
// operand panels: values are narrowed once at pack time and every
// accumulation stays fp32, mirroring mixed-precision training practice.
// The avx512 tier decodes in assembly; every other tier shares a portable
// decode-and-accumulate kernel. The determinism contract above applies
// per (tier, precision) pair.
package tensor
