package tensor

import (
	"fmt"
	"math"
	"sync/atomic"

	"scaledl/internal/parse"
)

// Low-precision storage for the packed GEMM operand panels. The paper's
// KNL/GPU clusters lean on reduced-precision arithmetic to stay
// bandwidth-bound rather than compute-bound at scale; here the same idea is
// applied to the pack buffers: A and B panels may be stored as bf16 or IEEE
// half (uint16 lanes, half the pack-buffer footprint and memory traffic),
// while the micro-kernels always accumulate in fp32. Output, bias and
// residency formats are unchanged — precision is a property of the packed
// copies only, so it composes with every entry point and epilogue.
//
// Conversions:
//
//	bf16 encode  round-to-nearest-even on the dropped 16 mantissa bits
//	bf16 decode  exact (bf16 is truncated fp32: <<16)
//	fp16 encode  round-to-nearest-even IEEE binary16, overflow to ±Inf
//	fp16 decode  exact (every binary16 value is representable in fp32)

// Precision selects the storage format of packed GEMM operand panels.
type Precision uint32

const (
	// Float32 stores packed panels in full single precision (default).
	Float32 Precision = iota
	// BFloat16 stores packed panels as bfloat16 (8-bit exponent, 7-bit
	// mantissa): fp32 range, ~2-3 decimal digits. Robust default for
	// training-style workloads because no gradient over/underflows.
	BFloat16
	// Float16 stores packed panels as IEEE binary16 (5-bit exponent,
	// 10-bit mantissa): 3 more mantissa bits than bf16 but narrow range
	// (max ~65504); values beyond it saturate to ±Inf at pack time.
	Float16
)

func (p Precision) String() string {
	switch p {
	case Float32:
		return "fp32"
	case BFloat16:
		return "bf16"
	case Float16:
		return "fp16"
	}
	return fmt.Sprintf("Precision(%d)", uint32(p))
}

// Precisions lists the canonical compute-precision names accepted by
// ParsePrecision.
func Precisions() []string { return []string{"fp32", "bf16", "fp16"} }

// ParsePrecision maps a config string to a Precision. Accepted names:
// "fp32"/"float32"/"" (default), "bf16"/"bfloat16", "fp16"/"float16"/"half".
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "fp32", "float32":
		return Float32, nil
	case "bf16", "bfloat16":
		return BFloat16, nil
	case "fp16", "float16", "half":
		return Float16, nil
	}
	return Float32, parse.Errorf("compute precision", s, Precisions())
}

// computePrec is the process-wide packed-panel storage precision, read once
// per GEMM call. Atomic so harness code can flip it between runs while
// background goroutines finish unrelated work; switching mid-GEMM is not
// supported (each call snapshots it on entry).
var computePrec atomic.Uint32

// SetComputePrecision sets the packed-panel storage precision for subsequent
// GEMM calls and returns the previous setting.
func SetComputePrecision(p Precision) Precision {
	return Precision(computePrec.Swap(uint32(p)))
}

// ComputePrecision reports the current packed-panel storage precision.
func ComputePrecision() Precision { return Precision(computePrec.Load()) }

// f32ToBF16 encodes an fp32 value as bfloat16 with round-to-nearest-even.
// NaN payloads are squashed to a canonical quiet NaN so rounding can never
// turn a NaN into Inf.
func f32ToBF16(x float32) uint16 {
	b := math.Float32bits(x)
	if b&0x7fffffff > 0x7f800000 { // NaN
		return uint16(b>>16) | 0x0040
	}
	// Round to nearest even on the 16 dropped bits.
	b += 0x7fff + (b >> 16 & 1)
	return uint16(b >> 16)
}

// bf16ToF32 decodes bfloat16 (exact).
func bf16ToF32(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// f32ToFP16 encodes an fp32 value as IEEE binary16 with round-to-nearest-
// even. Overflow goes to ±Inf, underflow denormalizes then flushes to ±0.
func f32ToFP16(x float32) uint16 {
	b := math.Float32bits(x)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127
	man := b & 0x7fffff
	switch {
	case exp == 128: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 15: // overflow → Inf
		return sign | 0x7c00
	case exp >= -14: // normal
		// 10-bit mantissa; round to nearest even on the 13 dropped bits.
		v := uint32(exp+15)<<10 | man>>13
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
			v++ // may carry into the exponent; 0x7c00 (Inf) is then correct
		}
		return sign | uint16(v)
	case exp >= -25: // subnormal (−25 covers rounding up into the min subnormal)
		man |= 0x800000 // implicit leading 1
		// Align so 10 mantissa bits remain: total shift = 13 + (−14 − exp).
		s := uint32(13 + (-14 - exp))
		v := man >> s
		rem := man & (1<<s - 1)
		half := uint32(1) << (s - 1)
		if rem > half || (rem == half && v&1 == 1) {
			v++
		}
		return sign | uint16(v)
	default: // underflow → signed zero
		return sign
	}
}

// fp16ToF32 decodes IEEE binary16 (exact — every half value is an fp32).
func fp16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalize into fp32.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (man&0x3ff)<<13)
	case 31:
		if man == 0 {
			return math.Float32frombits(sign | 0x7f800000) // ±Inf
		}
		return math.Float32frombits(sign | 0x7fc00000 | man<<13) // NaN
	}
	return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
}
