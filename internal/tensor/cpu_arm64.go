//go:build arm64

package tensor

// Kernel tiers for arm64. Advanced SIMD (NEON) is part of the ARMv8-A
// baseline — every arm64 CPU has it — so no runtime feature probing is
// needed: the tier list is the NEON 8×8 FMA tile plus the portable generic
// fallback (reachable via GODEBUG=cpu.neon=off for A/B testing).
func detectKernels() []*kernel {
	return []*kernel{
		{
			tier:     "neon",
			bl:       blockingFor(8, 8),
			kern:     microKernelNEONWrap,
			kernBF16: microKernelLPGo(8, 8, bf16ToF32),
			kernFP16: microKernelLPGo(8, 8, fp16ToF32),
			dot:      dotUnroll,
			minMax:   minMaxGo,
			quant8:   quantize8Go,
		},
		genericKernel(),
	}
}
