package tensor

import (
	"math"
	"testing"

	"scaledl/internal/par"
)

// gemmRef is the retained naive reference the packed engine is validated
// against: a plain triple loop over the logical (possibly transposed)
// operands with a k-ordered scalar sum — no packing, no tiling, no
// parallelism.
func gemmRef(c, a, b *Tensor, transA, transB, acc bool) {
	m, n := c.Shape[0], c.Shape[1]
	var k int
	if transA {
		k = a.Shape[0]
	} else {
		k = a.Shape[1]
	}
	at := func(i, t int) float32 {
		if transA {
			return a.Data[t*a.Shape[1]+i]
		}
		return a.Data[i*a.Shape[1]+t]
	}
	bt := func(t, j int) float32 {
		if transB {
			return b.Data[j*b.Shape[1]+t]
		}
		return b.Data[t*b.Shape[1]+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for t := 0; t < k; t++ {
				s += at(i, t) * bt(t, j)
			}
			if acc {
				c.Data[i*n+j] += s
			} else {
				c.Data[i*n+j] = s
			}
		}
	}
}

// forEachTier runs fn as a subtest once per kernel tier the CPU can execute
// (every entry of availableKernels, which always ends with generic), with
// that tier forced active for the duration. This is how the whole engine
// suite covers the SSE2/AVX2/AVX-512/NEON kernels on one machine.
func forEachTier(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	for _, k := range availableKernels {
		tier := k.tier
		t.Run(tier, func(t *testing.T) {
			restore, err := forceKernel(tier)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()
			fn(t)
		})
	}
}

// engineVariant runs one public GEMM entry point and the matching reference.
type engineVariant struct {
	name           string
	transA, transB bool
	acc            bool
	run            func(c, a, b *Tensor)
}

var engineVariants = []engineVariant{
	{"MatMul", false, false, false, MatMul},
	{"MatMulAdd", false, false, true, MatMulAdd},
	{"MatMulTransA", true, false, false, MatMulTransA},
	{"MatMulAddTransA", true, false, true, MatMulAddTransA},
	{"MatMulTransB", false, true, false, MatMulTransB},
	{"MatMulAdd2TransB", false, true, true, MatMulAdd2TransB},
}

// operands builds A, B and a pre-filled C for a logical m×n×k product.
func operands(g *RNG, m, n, k int, v engineVariant) (c, a, b *Tensor) {
	if v.transA {
		a = randMat(g, k, m)
	} else {
		a = randMat(g, m, k)
	}
	if v.transB {
		b = randMat(g, n, k)
	} else {
		b = randMat(g, k, n)
	}
	c = randMat(g, m, n) // non-zero so acc and overwrite are distinguishable
	return c, a, b
}

// TestPackedEngineMatchesRef drives every variant across randomized and
// degenerate shapes at pool widths 1..4, on every kernel tier, comparing
// against gemmRef. Shapes include 1×n, m×1, k = 0, sub-tile edges relative
// to the tier's own register tile, and one product big enough to cross the
// parallel fan-out threshold.
func TestPackedEngineMatchesRef(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		defer par.SetWidth(0)
		bl := KernelBlocking()
		mr, nr, kc := bl.MR, bl.NR, bl.KC
		shapes := [][3]int{
			{1, 1, 1}, {1, 9, 5}, {9, 1, 5}, {3, 3, 0}, {1, 1, 0},
			{mr, nr, 1}, {mr - 1, nr - 1, 3}, {mr + 1, nr + 1, 7},
			{2*mr + 3, 3*nr + 5, kc + 9}, {33, 17, 29}, {5, 300, 40},
			{150, 150, 100}, // crosses gemmParallelFlops
		}
		g := NewRNG(41)
		for i := 0; i < 10; i++ {
			shapes = append(shapes, [3]int{1 + g.Intn(40), 1 + g.Intn(40), g.Intn(80)})
		}
		for w := 1; w <= 4; w++ {
			par.SetWidth(w)
			gw := NewRNG(int64(100 + w))
			for _, s := range shapes {
				m, n, k := s[0], s[1], s[2]
				for _, v := range engineVariants {
					c, a, b := operands(gw, m, n, k, v)
					want := c.Clone()
					v.run(c, a, b)
					gemmRef(want, a, b, v.transA, v.transB, v.acc)
					tol := 1e-4 * math.Sqrt(float64(k)+1)
					if d := maxAbsDiff(c.Data, want.Data); d > tol {
						t.Errorf("width %d %s %dx%dx%d: diff %v > %v", w, v.name, m, n, k, d, tol)
					}
				}
			}
		}
	})
}

// TestPackedEngineBitDeterministic pins the engine's determinism contract on
// every tier: for a product large enough to fan out, the packed-parallel
// result is bit-identical to a forced-serial run and to every other pool
// width — partitioning only splits the M dimension, so per-element summation
// order never changes.
func TestPackedEngineBitDeterministic(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		defer func() {
			par.SetSerial(false)
			par.SetWidth(0)
		}()
		m, n, k := 160, 200, 80 // m*n*k = 2.56M ≥ gemmParallelFlops
		g := NewRNG(42)
		for _, v := range engineVariants {
			c0, a, b := operands(g, m, n, k, v)
			base := c0.Clone()

			par.SetWidth(4)
			par.SetSerial(true)
			serial := base.Clone()
			v.run(serial, a, b)
			par.SetSerial(false)

			parallel := base.Clone()
			v.run(parallel, a, b)
			for i := range serial.Data {
				if serial.Data[i] != parallel.Data[i] {
					t.Fatalf("%s: serial vs parallel differ at %d: %v vs %v", v.name, i, serial.Data[i], parallel.Data[i])
				}
			}

			for _, w := range []int{1, 2, 3} {
				par.SetWidth(w)
				cw := base.Clone()
				v.run(cw, a, b)
				for i := range serial.Data {
					if serial.Data[i] != cw.Data[i] {
						t.Fatalf("%s: width 4 vs width %d differ at %d", v.name, w, i)
					}
				}
			}
			par.SetWidth(4)
		}
	})
}

// TestMicroKernelMatchesRef checks every tier's fp32 micro-kernel lane by
// lane against a float64-accumulated reference on the tier's own (mr, nr)
// panels, including the kc = 0 degenerate tile. FMA tiers contract a
// rounding step per multiply-add, so the comparison is tolerance-based; the
// exact-equality contract for the unfused tiers is pinned separately by
// TestMicroKernelUnfusedBitExact.
func TestMicroKernelMatchesRef(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		bl := KernelBlocking()
		mr, nr := bl.MR, bl.NR
		g := NewRNG(43)
		for _, kc := range []int{0, 1, 2, 3, 7, 31, bl.KC} {
			ap := make([]float32, mr*kc)
			bp := make([]float32, nr*kc)
			g.FillNormal(ap, 0, 1)
			g.FillNormal(bp, 0, 1)
			var got kernTile
			got[mr*nr-1] = 371 // canary: kernel must overwrite, not accumulate
			active.kern(ap, bp, kc, &got)
			tol := 1e-5 * math.Sqrt(float64(kc)+1)
			for i := 0; i < mr; i++ {
				for j := 0; j < nr; j++ {
					var want float64
					for p := 0; p < kc; p++ {
						want += float64(ap[p*mr+i]) * float64(bp[p*nr+j])
					}
					if d := math.Abs(float64(got[i*nr+j]) - want); d > tol {
						t.Fatalf("kc=%d lane (%d,%d): got %v want %v (diff %v)", kc, i, j, got[i*nr+j], want, d)
					}
				}
			}
		}
	})
}

// TestMicroKernelUnfusedBitExact pins bit-equality of the unfused 4×8 tiers
// (SSE2 assembly where present, generic everywhere) against the portable Go
// reference: same unfused multiply-add, same k order, so every lane must
// match exactly. This is the contract that lets sse2 and generic be
// interchangeable without perturbing golden values.
func TestMicroKernelUnfusedBitExact(t *testing.T) {
	for _, tier := range []string{"sse2", "generic"} {
		restore, err := forceKernel(tier)
		if err != nil {
			continue // sse2 only exists on amd64
		}
		g := NewRNG(43)
		for _, kc := range []int{0, 1, 2, 3, 7, 31, KernelBlocking().KC} {
			ap := make([]float32, 4*kc)
			bp := make([]float32, 8*kc)
			g.FillNormal(ap, 0, 1)
			g.FillNormal(bp, 0, 1)
			var got, want kernTile
			active.kern(ap, bp, kc, &got)
			microKernelGo(ap, bp, kc, &want)
			for i := range got[:4*8] {
				if got[i] != want[i] {
					t.Fatalf("%s kc=%d lane %d: dispatch %v vs Go %v", tier, kc, i, got[i], want[i])
				}
			}
		}
		restore()
	}
}

func TestMatMulBiasRow(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		bl := KernelBlocking()
		g := NewRNG(44)
		for _, s := range [][3]int{{3, 5, 4}, {bl.MR + 1, bl.NR + 3, bl.KC + 2}, {2, 3, 0}} {
			m, n, k := s[0], s[1], s[2]
			a := randMat(g, m, k)
			b := randMat(g, k, n)
			bias := make([]float32, m)
			g.FillNormal(bias, 0, 1)
			got := randMat(g, m, n)
			MatMulBiasRow(got, a, b, bias)
			want := New(m, n)
			gemmRef(want, a, b, false, false, false)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					want.Data[i*n+j] += bias[i]
				}
			}
			if d := maxAbsDiff(got.Data, want.Data); d > 1e-3 {
				t.Errorf("MatMulBiasRow %v: diff %v", s, d)
			}
		}
	})
}

func TestMatMulTransBBiasCol(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		bl := KernelBlocking()
		g := NewRNG(45)
		for _, s := range [][3]int{{3, 5, 4}, {bl.MR + 2, bl.NR + 1, bl.KC + 5}, {2, 3, 0}} {
			m, n, k := s[0], s[1], s[2]
			a := randMat(g, m, k)
			b := randMat(g, n, k)
			bias := make([]float32, n)
			g.FillNormal(bias, 0, 1)
			got := randMat(g, m, n)
			MatMulTransBBiasCol(got, a, b, bias)
			want := New(m, n)
			gemmRef(want, a, b, false, true, false)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					want.Data[i*n+j] += bias[j]
				}
			}
			if d := maxAbsDiff(got.Data, want.Data); d > 1e-3 {
				t.Errorf("MatMulTransBBiasCol %v: diff %v", s, d)
			}
		}
	})
}

// TestGEMMZeroAllocs asserts the packed hot path is allocation-free in
// steady state (after the scratch arena has warmed up), for every variant,
// on every tier, on conv-shaped operands.
func TestGEMMZeroAllocs(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		par.SetWidth(1)
		defer par.SetWidth(0)
		g := NewRNG(46)
		m, n, k := 20, 500, 576
		type op struct {
			name string
			run  func()
		}
		var ops []op
		for _, v := range engineVariants {
			c, a, b := operands(g, m, n, k, v)
			run := v.run
			ops = append(ops, op{v.name, func() { run(c, a, b) }})
		}
		{
			a := randMat(g, m, k)
			b := randMat(g, k, n)
			c := New(m, n)
			bias := make([]float32, m)
			ops = append(ops, op{"MatMulBiasRow", func() { MatMulBiasRow(c, a, b, bias) }})
		}
		{
			a := randMat(g, m, k)
			b := randMat(g, n, k)
			c := New(m, n)
			bias := make([]float32, n)
			ops = append(ops, op{"MatMulTransBBiasCol", func() { MatMulTransBBiasCol(c, a, b, bias) }})
		}
		for _, o := range ops {
			o.run() // warm the arena
			if allocs := testing.AllocsPerRun(5, o.run); allocs != 0 {
				t.Errorf("%s: %v allocs/op in steady state, want 0", o.name, allocs)
			}
		}
	})
}

// TestMatVecMatchesRef checks the dispatched MatVec against a plain dot on
// every tier.
func TestMatVecMatchesRef(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		g := NewRNG(47)
		for _, s := range [][2]int{{1, 1}, {3, 5}, {7, 63}, {50, 129}} {
			m, n := s[0], s[1]
			a := randMat(g, m, n)
			x := make([]float32, n)
			g.FillNormal(x, 0, 1)
			y := make([]float32, m)
			MatVec(y, a, x)
			for i := 0; i < m; i++ {
				var want float32
				for j := 0; j < n; j++ {
					want += a.Data[i*n+j] * x[j]
				}
				if math.Abs(float64(y[i]-want)) > 1e-3 {
					t.Errorf("MatVec %v row %d: got %v want %v", s, i, y[i], want)
				}
			}
		}
	})
}
