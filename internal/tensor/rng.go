package tensor

import (
	"math"
	"math/rand"
)

// RNG is a seeded random source for weight filling and sampling. Every
// stochastic component in this repository draws from an explicitly seeded
// RNG so that whole distributed-training runs replay bit-identically; the
// paper's Sync EASGD determinism claim is testable only because of this.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child generator. Children produced from the
// same parent state and label sequence are reproducible, which lets each
// simulated worker own a private stream.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Int63 returns a non-negative 63-bit random integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float32 returns a uniform float32 in [0, 1).
func (g *RNG) Float32() float32 { return g.r.Float32() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal float64.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// FillUniform fills x with uniform values in [lo, hi).
func (g *RNG) FillUniform(x []float32, lo, hi float32) {
	span := hi - lo
	for i := range x {
		x[i] = lo + span*g.r.Float32()
	}
}

// FillNormal fills x with Gaussian values of the given mean and stddev.
func (g *RNG) FillNormal(x []float32, mean, std float32) {
	for i := range x {
		x[i] = mean + std*float32(g.r.NormFloat64())
	}
}

// XavierFill initializes a weight tensor with the Xavier/Glorot uniform
// scheme used by the paper (Algorithm 1 line 2: "random and Xavier weight
// filling"): U(-a, a) with a = sqrt(6/(fanIn+fanOut)).
func (g *RNG) XavierFill(x []float32, fanIn, fanOut int) {
	a := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	g.FillUniform(x, -a, a)
}
