package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveConvSingle computes a direct convolution of one CHW image with one
// filter, used as the reference for the im2col+GEMM path.
func naiveConvSingle(src []float32, c, h, w int, filter []float32, kh, kw, stride, pad int) []float32 {
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	out := make([]float32, oh*ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			var s float32
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						iy := oy*stride + ky - pad
						ix := ox*stride + kx - pad
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							continue
						}
						s += src[ch*h*w+iy*w+ix] * filter[ch*kh*kw+ky*kw+kx]
					}
				}
			}
			out[oy*ow+ox] = s
		}
	}
	return out
}

func TestOutDim(t *testing.T) {
	cases := []struct {
		in, k, s, p, want int
	}{
		{28, 5, 1, 0, 24},
		{28, 5, 1, 2, 28},
		{32, 3, 1, 1, 32},
		{24, 2, 2, 0, 12},
		{227, 11, 4, 0, 55},
	}
	for _, c := range cases {
		if got := OutDim(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("OutDim(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestIm2colGEMMEqualsDirectConv(t *testing.T) {
	g := NewRNG(11)
	cases := []struct {
		c, h, w, kh, kw, stride, pad int
	}{
		{1, 6, 6, 3, 3, 1, 0},
		{2, 8, 8, 3, 3, 1, 1},
		{3, 7, 9, 5, 3, 2, 2},
		{1, 5, 5, 5, 5, 1, 0},
		{4, 10, 10, 3, 3, 2, 1},
		{1, 5, 2, 1, 4, 1, 2},  // kernel wider than the image: taps fully in padding
		{2, 9, 7, 3, 5, 2, 3},  // stride 2 with large padding
		{1, 1, 1, 3, 3, 1, 1},  // single pixel
		{2, 6, 11, 3, 3, 3, 1}, // stride 3
	}
	for _, tc := range cases {
		src := make([]float32, tc.c*tc.h*tc.w)
		g.FillNormal(src, 0, 1)
		filter := make([]float32, tc.c*tc.kh*tc.kw)
		g.FillNormal(filter, 0, 1)
		oh := OutDim(tc.h, tc.kh, tc.stride, tc.pad)
		ow := OutDim(tc.w, tc.kw, tc.stride, tc.pad)
		cols := make([]float32, tc.c*tc.kh*tc.kw*oh*ow)
		Im2col(cols, src, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)

		fm := Wrap(filter, 1, tc.c*tc.kh*tc.kw)
		cm := Wrap(cols, tc.c*tc.kh*tc.kw, oh*ow)
		out := New(1, oh*ow)
		MatMul(out, fm, cm)

		want := naiveConvSingle(src, tc.c, tc.h, tc.w, filter, tc.kh, tc.kw, tc.stride, tc.pad)
		for i := range want {
			if math.Abs(float64(out.Data[i]-want[i])) > 1e-3 {
				t.Errorf("case %+v: mismatch at %d: got %v want %v", tc, i, out.Data[i], want[i])
				break
			}
		}
	}
}

// Property: Col2im is the adjoint of Im2col, i.e. <Im2col(x), y> == <x, Col2im(y)>
// for all x, y. This is exactly the condition for the convolution backward
// pass to compute correct input gradients.
func TestCol2imAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		c := 1 + g.Intn(3)
		h := 4 + g.Intn(5)
		w := 4 + g.Intn(5)
		kh := 1 + g.Intn(3)
		kw := 1 + g.Intn(3)
		stride := 1 + g.Intn(2)
		pad := g.Intn(2)
		oh := OutDim(h, kh, stride, pad)
		ow := OutDim(w, kw, stride, pad)
		if oh <= 0 || ow <= 0 {
			return true
		}
		x := make([]float32, c*h*w)
		y := make([]float32, c*kh*kw*oh*ow)
		g.FillNormal(x, 0, 1)
		g.FillNormal(y, 0, 1)

		cx := make([]float32, len(y))
		Im2col(cx, x, c, h, w, kh, kw, stride, pad)
		lhs := float64(Dot(cx, y))

		ay := make([]float32, len(x))
		Col2im(ay, y, c, h, w, kh, kw, stride, pad)
		rhs := float64(Dot(x, ay))

		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// naiveIm2col is the per-element reference with the bounds branch in the
// inner loop — the layout contract the hoisted implementation must preserve.
func naiveIm2col(dst []float32, src []float32, c, h, w, kh, kw, stride, pad int) {
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	idx := 0
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							dst[idx] = 0
						} else {
							dst[idx] = src[ch*h*w+iy*w+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Property: the hoisted Im2col produces exactly the naive per-element layout
// for randomized geometries, including ones where whole taps fall in padding.
func TestIm2colMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		c := 1 + g.Intn(3)
		h := 1 + g.Intn(9)
		w := 1 + g.Intn(9)
		kh := 1 + g.Intn(4)
		kw := 1 + g.Intn(4)
		stride := 1 + g.Intn(3)
		pad := g.Intn(4)
		if OutDim(h, kh, stride, pad) <= 0 || OutDim(w, kw, stride, pad) <= 0 {
			return true
		}
		src := make([]float32, c*h*w)
		g.FillNormal(src, 0, 1)
		n := c * kh * kw * OutDim(h, kh, stride, pad) * OutDim(w, kw, stride, pad)
		got := make([]float32, n)
		want := make([]float32, n)
		for i := range got {
			got[i] = -999 // poison: every slot must be written
		}
		Im2col(got, src, c, h, w, kh, kw, stride, pad)
		naiveIm2col(want, src, c, h, w, kh, kw, stride, pad)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Large images cross the L1 source budget and take the tap-blocked path
// (blocking.go); the layout contract and the adjoint identity must be
// indistinguishable from the single-block path.
func TestIm2colBlockedLargeImage(t *testing.T) {
	for _, tc := range []struct {
		c, h, w, kh, kw, stride, pad int
	}{
		{2, 80, 80, 3, 3, 1, 1}, // 6400 floats/plane > im2colSrcBudget
		{1, 70, 96, 5, 5, 2, 2},
		{3, 64, 72, 3, 3, 3, 1},
		{1, 2, 4096, 3, 3, 1, 1}, // wider than the whole budget: 1-row blocks
	} {
		if tc.h*tc.w <= im2colSrcBudget {
			t.Fatalf("case %+v does not engage blocking", tc)
		}
		g := NewRNG(71)
		src := make([]float32, tc.c*tc.h*tc.w)
		g.FillNormal(src, 0, 1)
		n := tc.c * tc.kh * tc.kw * OutDim(tc.h, tc.kh, tc.stride, tc.pad) * OutDim(tc.w, tc.kw, tc.stride, tc.pad)
		got := make([]float32, n)
		want := make([]float32, n)
		for i := range got {
			got[i] = -999
		}
		Im2col(got, src, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		naiveIm2col(want, src, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("case %+v: mismatch at %d: got %v want %v", tc, i, got[i], want[i])
			}
		}
		// Adjoint identity through the blocked Col2im.
		y := make([]float32, n)
		g.FillNormal(y, 0, 1)
		ay := make([]float32, len(src))
		Col2im(ay, y, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		lhs := float64(Dot(got, y))
		rhs := float64(Dot(src, ay))
		if math.Abs(lhs-rhs) > 1e-2*(1+math.Abs(rhs)) {
			t.Fatalf("case %+v: adjoint identity broken: %v vs %v", tc, lhs, rhs)
		}
	}
}

func TestIm2colZeroPadding(t *testing.T) {
	// A 1x1 image with 3x3 kernel and pad 1: the center column holds the
	// pixel, all others are zero-padding.
	src := []float32{42}
	cols := make([]float32, 9)
	Im2col(cols, src, 1, 1, 1, 3, 3, 1, 1)
	for i, v := range cols {
		if i == 4 {
			if v != 42 {
				t.Errorf("center tap = %v, want 42", v)
			}
		} else if v != 0 {
			t.Errorf("pad tap %d = %v, want 0", i, v)
		}
	}
}

func TestIm2colSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Im2col with wrong dst size did not panic")
		}
	}()
	Im2col(make([]float32, 3), make([]float32, 16), 1, 4, 4, 2, 2, 1, 0)
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(99)
	b := NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestXavierFillRange(t *testing.T) {
	g := NewRNG(5)
	x := make([]float32, 10000)
	fanIn, fanOut := 100, 200
	g.XavierFill(x, fanIn, fanOut)
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	var sum float64
	for _, v := range x {
		if float64(v) < -bound || float64(v) >= bound {
			t.Fatalf("Xavier value %v outside [-%v, %v)", v, bound, bound)
		}
		sum += float64(v)
	}
	if mean := sum / float64(len(x)); math.Abs(mean) > bound/10 {
		t.Errorf("Xavier mean %v too far from 0", mean)
	}
}

func TestForkIndependentStreams(t *testing.T) {
	p := NewRNG(7)
	c1 := p.Fork()
	c2 := p.Fork()
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("forked streams look correlated: %d/50 equal draws", same)
	}
}
