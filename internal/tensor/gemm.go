package tensor

import (
	"scaledl/internal/par"
)

// gemmParallelThreshold is the output-element count above which MatMul
// fans work out across OS threads. Below it, goroutine fan-out costs more
// than it saves on the small matrices LeNet produces.
const gemmParallelThreshold = 64 * 1024

// blockK is the K-dimension blocking factor for the inner GEMM kernel.
const blockK = 64

// MatMul computes C = A·B for row-major matrices. A is m×k, B is k×n, and C
// must be m×n. The row partitioning across workers is fixed by row index, so
// the result is bit-deterministic regardless of scheduling or GOMAXPROCS:
// each output row is produced by exactly one worker with a fixed summation
// order.
func MatMul(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMul output shape mismatch")
	}
	gemm(c.Data, a.Data, b.Data, m, n, k, false)
}

// MatMulAdd computes C += A·B (accumulating into C).
func MatMulAdd(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulAdd inner dimension mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulAdd output shape mismatch")
	}
	gemm(c.Data, a.Data, b.Data, m, n, k, true)
}

// MatMulTransA computes C = Aᵀ·B where A is k×m (so Aᵀ is m×k), B is k×n.
func MatMulTransA(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransA output shape mismatch")
	}
	// Compute row i of C as sum over t of A[t][i] * B[t][:]. Deterministic
	// row partitioning as in gemm.
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for t := 0; t < k; t++ {
				av := a.Data[t*m+i]
				if av == 0 {
					continue
				}
				bt := b.Data[t*n : (t+1)*n]
				for j, bv := range bt {
					ci[j] += av * bv
				}
			}
		}
	}
	parallelRows(m, m*n, rows)
}

// MatMulAdd2TransB computes C += A·Bᵀ where A is m×k and B is n×k,
// accumulating into C. This is the convolution weight-gradient kernel
// (dW += dy·colsᵀ); it runs serially because callers accumulate per-chunk
// partials in parallel around it.
func MatMulAdd2TransB(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulAdd2TransB inner dimension mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulAdd2TransB output shape mismatch")
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for t, av := range ai {
				s += av * bj[t]
			}
			ci[j] += s
		}
	}
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is n×k.
func MatMulTransB(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransB output shape mismatch")
	}
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var s float32
				for t, av := range ai {
					s += av * bj[t]
				}
				ci[j] = s
			}
		}
	}
	parallelRows(m, m*n, rows)
}

// gemm is the shared row-major kernel: C (m×n) = A (m×k) · B (k×n), with
// optional accumulation. It blocks over K so the active B panel stays in
// cache, and vector-izes the inner loop over columns of B.
func gemm(c, a, b []float32, m, n, k int, acc bool) {
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			if !acc {
				for j := range ci {
					ci[j] = 0
				}
			}
			for t0 := 0; t0 < k; t0 += blockK {
				t1 := t0 + blockK
				if t1 > k {
					t1 = k
				}
				for t := t0; t < t1; t++ {
					av := a[i*k+t]
					if av == 0 {
						continue
					}
					bt := b[t*n : (t+1)*n]
					for j, bv := range bt {
						ci[j] += av * bv
					}
				}
			}
		}
	}
	parallelRows(m, m*n, rows)
}

// parallelRows splits [0,m) across the shared par pool when the output is
// big enough. Each chunk is a contiguous, statically assigned row range
// (par.ChunkRanges), so float summation order per output element never
// depends on scheduling; when this GEMM is itself issued from inside a pool
// task (a conv chunk of a worker fan-out) the nested call runs inline
// rather than oversubscribing the machine.
func parallelRows(m, outElems int, f func(lo, hi int)) {
	if outElems < gemmParallelThreshold || par.Width() < 2 || m < 2 {
		f(0, m)
		return
	}
	par.Ranges(m, f)
}

// MatVec computes y = A·x for a row-major m×n matrix A.
func MatVec(y []float32, a *Tensor, x []float32) {
	m, n := a.Shape[0], a.Shape[1]
	if len(x) != n || len(y) != m {
		panic("tensor: MatVec shape mismatch")
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*n : (i+1)*n]
		var s float32
		for j, v := range ai {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Transpose writes Aᵀ into dst. A is m×n, dst must be n×m.
func Transpose(dst, a *Tensor) {
	m, n := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != n || dst.Shape[1] != m {
		panic("tensor: Transpose shape mismatch")
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.Data[j*m+i] = a.Data[i*n+j]
		}
	}
}
