package tensor

import (
	"scaledl/internal/par"
)

// This file is the packed, register-tiled GEMM engine. Every matrix-product
// variant in the module — plain, accumulating, either-operand-transposed,
// bias-fused — funnels into one blocked kernel instead of five ad-hoc loop
// nests: the transposed layouts are absorbed while packing the operands
// (pack.go), so the gradient-path products run exactly as fast as the
// forward one, and the bias add of the conv/dense layers rides along in the
// store epilogue instead of a second pass over the output.
//
// The blocked driver is generic over the packed-panel element type: float32
// panels feed the active tier's fp32 micro-kernel, uint16 panels (bf16 or
// IEEE-half storage, selected by SetComputePrecision) feed its low-precision
// kernels with fp32 accumulation. Blocking parameters and the micro-kernel
// come from the dispatch tier selected at init (microkernel.go).
//
// # Determinism
//
// Every element of C is the k-ordered sum Σ_p A[i][p]·B[p][j]: the
// micro-kernel accumulates p strictly in order inside a KC panel, and the
// panels are applied in order by the serial pc loop. Parallel fan-out
// partitions only the M dimension (static par.ChunkRanges tiles), so each
// output element is produced entirely by one task with the same summation
// order as a serial run — results are bit-identical across pool widths,
// scheduling, and par.SetSerial, which is stronger than the per-width
// contract the rest of the module needs. Across kernel tiers the contract is
// weaker: KC is identical for every tier, so panel boundaries (and thus the
// fp32 summation order) match, but the FMA tiers contract the multiply-add
// rounding step the mul+add tiers keep — values agree to a few ULPs, not
// bits (doc.go spells out the full contract).

// gemmParallelFlops is the multiply-accumulate count above which a single
// GEMM fans its row tiles out across the par pool. Below it (every per-image
// conv GEMM in the model zoo) goroutine dispatch costs more than it saves,
// and the engine stays strictly allocation-free.
const gemmParallelFlops = 1 << 21

// gemmScratch and gemmScratch16 recycle the packing buffers for the fp32 and
// low-precision paths; see par.Arena. After warm-up the hot path performs
// zero allocations per call (pinned by TestGEMMZeroAllocs).
var (
	gemmScratch   par.Arena[float32]
	gemmScratch16 par.Arena[uint16]
	// gemmTileScratch recycles the micro-kernel output tiles (one per
	// concurrent chunk). The kernel is reached through a func value, so a
	// chunk-local tile array would defeat escape analysis and cost a heap
	// allocation per chunk; arena slots keep the hot path allocation-free.
	gemmTileScratch par.Arena[kernTile]
)

// gemmOp describes one C = α-less GEMM: C (m×n, row stride ldc) gains A·B
// with A read through strides (rsA, csA) as a logical m×k matrix and B
// through (rsB, csB) as a logical k×n one. acc accumulates into C instead of
// overwriting; biasRow/biasCol (mutually exclusive, only with acc=false)
// fold a per-row or per-column bias into the first store.
type gemmOp struct {
	c        []float32
	ldc      int
	a        []float32
	rsA, csA int
	b        []float32
	rsB, csB int
	m, n, k  int
	acc      bool
	biasRow  []float32
	biasCol  []float32
}

// MatMul computes C = A·B for row-major matrices. A is m×k, B is k×n, and C
// must be m×n.
func MatMul(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k})
}

// MatMulAdd computes C += A·B (accumulating into C).
func MatMulAdd(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k, acc: true})
}

// MatMulBiasRow computes C = A·B + bias with bias broadcast along rows:
// C[i][j] = (A·B)[i][j] + bias[i]. It is the conv-forward epilogue (one bias
// per filter row) fused into the GEMM store.
func MatMulBiasRow(c, a, b *Tensor, bias []float32) {
	m, n, k := checkMatMul(c, a, b, false, false)
	if len(bias) != m {
		panic("tensor: MatMulBiasRow bias length mismatch")
	}
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k, biasRow: bias})
}

// MatMulTransA computes C = Aᵀ·B where A is stored k×m (so Aᵀ is m×k) and B
// is k×n. The transposition is absorbed at pack time.
func MatMulTransA(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, true, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: 1, csA: m, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k})
}

// MatMulAddTransA computes C += Aᵀ·B where A is stored k×m and B is k×n.
// This is the dense-layer weight-gradient kernel (dW += dYᵀ·X) without any
// temporary.
func MatMulAddTransA(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, true, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: 1, csA: m, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k, acc: true})
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is stored n×k.
func MatMulTransB(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, true)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: 1, csB: k, m: m, n: n, k: k})
}

// MatMulTransBBiasCol computes C = A·Bᵀ + bias with bias broadcast along
// columns: C[i][j] = (A·Bᵀ)[i][j] + bias[j]. It is the dense-forward
// epilogue (one bias per output unit) fused into the GEMM store.
func MatMulTransBBiasCol(c, a, b *Tensor, bias []float32) {
	m, n, k := checkMatMul(c, a, b, false, true)
	if len(bias) != n {
		panic("tensor: MatMulTransBBiasCol bias length mismatch")
	}
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: 1, csB: k, m: m, n: n, k: k, biasCol: bias})
}

// MatMulAdd2TransB computes C += A·Bᵀ where A is m×k and B is stored n×k,
// accumulating into C. This is the convolution weight-gradient kernel
// (dW += dy·colsᵀ).
func MatMulAdd2TransB(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, true)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: 1, csB: k, m: m, n: n, k: k, acc: true})
}

// checkMatMul validates the operand shapes of a (possibly transposed)
// product and returns the logical (m, n, k).
func checkMatMul(c, a, b *Tensor, transA, transB bool) (m, n, k int) {
	m, k = a.Shape[0], a.Shape[1]
	if transA {
		k, m = m, k
	}
	kb, n := b.Shape[0], b.Shape[1]
	if transB {
		n, kb = kb, n
	}
	if k != kb {
		panic("tensor: MatMul inner dimension mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMul output shape mismatch")
	}
	return m, n, k
}

// panelElem constrains the packed-panel element type: full-precision panels
// are float32, low-precision panels are uint16 lanes (bf16 or IEEE half).
type panelElem interface{ float32 | uint16 }

// gemmEngine binds one GEMM execution to a panel element type: the active
// tier's blocking and micro-kernel for that storage format, the matching
// packers, and the scratch arena the packed panels come from. Values are
// built on the gemmRun stack per call — only the arenas are shared state.
type gemmEngine[E panelElem] struct {
	bl    Blocking
	kern  func(ap, bp []E, kc int, t *kernTile)
	packA func(dst []E, a []float32, rs, cs, i0, p0, mc, kc, mr int)
	packB func(dst []E, b []float32, rs, cs, p0, j0, nc, kc, nr int)
	arena *par.Arena[E]
}

// Top-level packer adapters: fixing the encoder here (instead of closing
// over it in gemmRun) keeps engine construction allocation-free.
func packABF16(dst []uint16, a []float32, rs, cs, i0, p0, mc, kc, mr int) {
	packA16(dst, a, rs, cs, i0, p0, mc, kc, mr, f32ToBF16)
}
func packBBF16(dst []uint16, b []float32, rs, cs, p0, j0, nc, kc, nr int) {
	packB16(dst, b, rs, cs, p0, j0, nc, kc, nr, f32ToBF16)
}
func packAFP16(dst []uint16, a []float32, rs, cs, i0, p0, mc, kc, mr int) {
	packA16(dst, a, rs, cs, i0, p0, mc, kc, mr, f32ToFP16)
}
func packBFP16(dst []uint16, b []float32, rs, cs, p0, j0, nc, kc, nr int) {
	packB16(dst, b, rs, cs, p0, j0, nc, kc, nr, f32ToFP16)
}

// gemmRun snapshots the active tier and compute precision, then hands the op
// to the engine instantiation for the selected panel storage.
func gemmRun(op gemmOp) {
	if op.m == 0 || op.n == 0 {
		return
	}
	if op.k == 0 {
		gemmEpilogueOnly(op)
		return
	}
	kr := active
	switch ComputePrecision() {
	case BFloat16:
		e := gemmEngine[uint16]{bl: kr.bl, kern: kr.kernBF16, packA: packABF16, packB: packBBF16, arena: &gemmScratch16}
		e.run(op)
	case Float16:
		e := gemmEngine[uint16]{bl: kr.bl, kern: kr.kernFP16, packA: packAFP16, packB: packBFP16, arena: &gemmScratch16}
		e.run(op)
	default:
		e := gemmEngine[float32]{bl: kr.bl, kern: kr.kern, packA: packA, packB: packB, arena: &gemmScratch}
		e.run(op)
	}
}

// run drives the blocked loops: jc over N in NC slabs, pc over K in KC
// panels (B packed once per slab×panel), then the M dimension — fanned out
// over the pool in static row-tile chunks when the product is big enough —
// packs A in MC blocks and sweeps the micro-kernel.
func (e gemmEngine[E]) run(op gemmOp) {
	m, n, k := op.m, op.n, op.k
	bl := e.bl
	mTiles := (m + bl.MR - 1) / bl.MR
	var chunks [][2]int
	if par.Width() > 1 && mTiles >= 2 && m*n*k >= gemmParallelFlops {
		chunks = par.ChunkRanges(mTiles)
	}
	nChunks := len(chunks)
	if nChunks == 0 {
		nChunks = 1
	}
	kcMax := k
	if kcMax > bl.KC {
		kcMax = bl.KC
	}
	ncMax := (n + bl.NR - 1) / bl.NR * bl.NR
	if ncMax > bl.NC {
		ncMax = bl.NC
	}
	aMax := mTiles * bl.MR
	if aMax > bl.MC {
		aMax = bl.MC
	}
	aMax *= kcMax
	buf := e.arena.Get(ncMax*kcMax + nChunks*aMax)
	bBuf := buf[:ncMax*kcMax]
	aBufs := buf[ncMax*kcMax:]
	tiles := gemmTileScratch.Get(nChunks)
	for jc := 0; jc < n; jc += bl.NC {
		nc := n - jc
		if nc > bl.NC {
			nc = bl.NC
		}
		for pc := 0; pc < k; pc += bl.KC {
			kc := k - pc
			if kc > bl.KC {
				kc = bl.KC
			}
			e.packB(bBuf, op.b, op.rsB, op.csB, pc, jc, nc, kc, bl.NR)
			first := pc == 0
			if len(chunks) <= 1 {
				e.chunk(op, aBufs[:aMax], bBuf, &tiles[0], jc, pc, nc, kc, 0, mTiles, first)
			} else {
				e.fanOut(op, aBufs, aMax, bBuf, tiles, jc, pc, nc, kc, chunks, first)
			}
		}
	}
	gemmTileScratch.Put(tiles)
	e.arena.Put(buf)
}

// fanOut runs one (jc, pc) panel's row tiles across the pool. It lives apart
// from run so the serial path never materializes the closure (that would
// cost an allocation per call even when it isn't taken). Chunk boundaries
// come from par.ChunkRanges, so tile ownership is static and each chunk
// packs A into its own slice of the scratch buffer.
func (e gemmEngine[E]) fanOut(op gemmOp, aBufs []E, aMax int, bBuf []E, tiles []kernTile, jc, pc, nc, kc int, chunks [][2]int, first bool) {
	par.For(len(chunks), func(ci int) {
		e.chunk(op, aBufs[ci*aMax:][:aMax], bBuf, &tiles[ci], jc, pc, nc, kc, chunks[ci][0], chunks[ci][1], first)
	})
}

// chunk computes the row tiles [tileLo, tileHi) of one (jc, pc) panel: for
// each MC block it packs A and sweeps the packed B panels with the
// micro-kernel, storing each MR×NR register tile through storeTile.
func (e gemmEngine[E]) chunk(op gemmOp, aBuf, bBuf []E, tile *kernTile, jc, pc, nc, kc, tileLo, tileHi int, first bool) {
	mr, nr := e.bl.MR, e.bl.NR
	mcMax := e.bl.MC
	rowEnd := tileHi * mr
	if rowEnd > op.m {
		rowEnd = op.m
	}
	for i0 := tileLo * mr; i0 < rowEnd; i0 += mcMax {
		mc := rowEnd - i0
		if mc > mcMax {
			mc = mcMax
		}
		e.packA(aBuf, op.a, op.rsA, op.csA, i0, pc, mc, kc, mr)
		mcTiles := (mc + mr - 1) / mr
		for jr := 0; jr < nc; jr += nr {
			bp := bBuf[(jr/nr)*nr*kc:][: nr*kc : nr*kc]
			nrv := nc - jr
			if nrv > nr {
				nrv = nr
			}
			for ti := 0; ti < mcTiles; ti++ {
				e.kern(aBuf[ti*mr*kc:][:mr*kc], bp, kc, tile)
				row := i0 + ti*mr
				mrv := op.m - row
				if mrv > mr {
					mrv = mr
				}
				storeTile(op, row, jc+jr, mrv, nrv, nr, tile, first)
			}
		}
	}
}

// storeTile writes the valid mr×nr region of a register tile (row-major at
// stride ts) into C. The first K panel overwrites (or seeds with the fused
// bias); later panels and accumulate-mode ops add.
func storeTile(op gemmOp, row, col, mr, nr, ts int, t *kernTile, first bool) {
	acc := op.acc || !first
	for i := 0; i < mr; i++ {
		ci := op.c[(row+i)*op.ldc+col:][:nr]
		ti := t[i*ts:][:nr]
		switch {
		case acc:
			for j, v := range ti {
				ci[j] += v
			}
		case op.biasRow != nil:
			br := op.biasRow[row+i]
			for j, v := range ti {
				ci[j] = v + br
			}
		case op.biasCol != nil:
			bc := op.biasCol[col:][:nr]
			for j, v := range ti {
				ci[j] = v + bc[j]
			}
		default:
			copy(ci, ti)
		}
	}
}

// gemmEpilogueOnly handles the degenerate k = 0 product: the sum over an
// empty K dimension is zero, so C is zeroed (or seeded with the bias) unless
// the op accumulates, in which case it is untouched.
func gemmEpilogueOnly(op gemmOp) {
	if op.acc {
		return
	}
	for i := 0; i < op.m; i++ {
		ci := op.c[i*op.ldc:][:op.n]
		switch {
		case op.biasRow != nil:
			br := op.biasRow[i]
			for j := range ci {
				ci[j] = br
			}
		case op.biasCol != nil:
			copy(ci, op.biasCol[:op.n])
		default:
			for j := range ci {
				ci[j] = 0
			}
		}
	}
}

// MatVec computes y = A·x for a row-major m×n matrix A, through the active
// tier's dot product (deterministic per tier; see doc.go).
func MatVec(y []float32, a *Tensor, x []float32) {
	m, n := a.Shape[0], a.Shape[1]
	if len(x) != n || len(y) != m {
		panic("tensor: MatVec shape mismatch")
	}
	dot := active.dot
	for i := 0; i < m; i++ {
		y[i] = dot(a.Data[i*n:(i+1)*n], x)
	}
}

// Transpose writes Aᵀ into dst. A is m×n, dst must be n×m. Tiles are
// transposeBlock-square (blocking.go) so source and destination stay
// cache-resident together; within a tile it moves a transposeStrip-row strip
// of the source per sweep, so every strided destination step retires four
// contiguous writes instead of one.
func Transpose(dst, a *Tensor) {
	const strip = transposeStrip
	m, n := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != n || dst.Shape[1] != m {
		panic("tensor: Transpose shape mismatch")
	}
	d, s := dst.Data, a.Data
	for ii := 0; ii < m; ii += transposeBlock {
		iHi := ii + transposeBlock
		if iHi > m {
			iHi = m
		}
		for jj := 0; jj < n; jj += transposeBlock {
			jHi := jj + transposeBlock
			if jHi > n {
				jHi = n
			}
			i := ii
			for ; i+strip <= iHi; i += strip {
				r0 := s[i*n : i*n+n]
				r1 := s[(i+1)*n : (i+1)*n+n]
				r2 := s[(i+2)*n : (i+2)*n+n]
				r3 := s[(i+3)*n : (i+3)*n+n]
				di := jj*m + i
				for j := jj; j < jHi; j++ {
					d[di] = r0[j]
					d[di+1] = r1[j]
					d[di+2] = r2[j]
					d[di+3] = r3[j]
					di += m
				}
			}
			for ; i < iHi; i++ {
				row := s[i*n+jj : i*n+jHi]
				di := jj*m + i
				for _, v := range row {
					d[di] = v
					di += m
				}
			}
		}
	}
}
